"""SASS generators for the fused Winograd kernel family.

Two tile families share this module:

* :class:`WinogradF22Kernel` — the paper's F(2×2, 3×3) kernel of §3-§4
  (bk×32 tiles, 4×4 transformed elements, one 16-bit P2R mask);
* :class:`WinogradF44Kernel` — the §8.1 extension to F(4×4, 3×3) at the
  best feasible blocking from ``perfmodel.f44_study`` (bk=16 / bn=32 /
  bc=8): 6×6 transformed tiles, a 36-bit two-word predicate mask, and a
  register-resident input/output transform (no shared-memory transpose
  buffer — each thread owns all 36 transformed elements of its tiles).

:func:`kernel_for_tile` dispatches on a
:class:`~repro.winograd.tilespec.TileSpec`, which is how the build
cache, runner and benchmarks stay tile-agnostic.

The F(2×2) generator writes, in the TuringAs dialect, the kernel of
§3-§4:

* 256 threads per block computing ``bk × bn`` output tiles (Fig. 1);
* CHWN input / CR'S'K transformed filter / KHWN output (Table 4);
* implicit zero padding with a 16-bit mask packed by P2R and unpacked
  with R2P inside the loop (§3.5);
* software-pipelined main loop — global prefetch double-buffered in
  registers, shared-memory fragments double-buffered per k-step, exactly
  1024 FFMAs + 32 ITF FADDs per thread per bc-iteration (§3.4, §4.2);
* the Fig. 3 lane arrangement for conflict-free LDS.128 and the Fig. 4
  register-bank-aware FFMA ordering with ``.reuse`` flags (§4.3);
* the four-round output transform through a padded shared-memory
  transpose buffer (§4.4, Fig. 5);
* the full 253-register budget of Table 5.

Every §6 scheduling knob is a :class:`Tunables` field: the yield-flag
strategy (Fig. 7), LDG interleave distance (Fig. 8), STS interleave
distance (Fig. 9), the cache-block size ``bk`` (cuDNN's 32 vs ours 64),
and the shared-buffer layout (the transposed layout of Table 4 vs the
naive tile-major layout, whose bank conflicts are why the transpose
exists at all).

The generated kernel is *layer-specialized*: geometry (H, W, N, K, C)
is compiled into immediates and magic-number divisions, which is also
how the original SASS kernels are produced per layer family.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.errors import ConvConfigError
from ..common.problem import ConvProblem
from ..sass.assembler import AssembledKernel, assemble
from ..winograd.tilespec import TILE_F44, TileSpec, get_tile
from .schedules import apply_yield_strategy, weave

BC = 8  # channels per iteration; fixed as in the paper
BN = 32  # input tiles per block; fixed (one tile per thread per iteration)
THREADS = 256
WARPS = 8


@dataclasses.dataclass(frozen=True)
class Tunables:
    """The SASS-level knobs studied in §6 (plus the §3.3 block size)."""

    yield_strategy: str = "natural"  # natural | nvcc8 | cudnn7   (Fig. 7)
    ldg_interleave: int = 8          # FFMAs between LDGs          (Fig. 8)
    sts_interleave: int = 6          # FFMAs between STSs          (Fig. 9)
    bk: int = 64                     # filters per block           (§3.3)
    smem_layout: str = "transposed"  # transposed | tile_major     (§4.3)
    use_p2r: bool = True             # pack masks with P2R/R2P     (§3.5)
    double_buffer: int = 2           # fragment buffer depth       (§3.4)

    def __post_init__(self) -> None:
        if self.bk not in (32, 64):
            raise ConvConfigError("bk must be 32 (cuDNN-like) or 64 (paper)")
        if self.smem_layout not in ("transposed", "tile_major"):
            raise ConvConfigError("smem_layout must be transposed or tile_major")
        if self.ldg_interleave < 1 or self.sts_interleave < 1:
            raise ConvConfigError("interleave distances must be >= 1")
        if self.double_buffer not in (1, 2):
            raise ConvConfigError(
                "double_buffer must be 2 (the paper's register ping-pong) "
                "or 1 (single-buffered fragment ablation)"
            )


@dataclasses.dataclass(frozen=True)
class F44Tunables(Tunables):
    """Tunables for the F(4×4, 3×3) generator.

    The F(4×4) kernel fixes the structural knobs its thread mapping is
    built around — bk=16 (one filter per thread, tile pairs), the
    transposed shared layout, and register ping-pong fragments — so only
    the §6 scheduling knobs (yield strategy, LDG/STS interleave) and the
    §3.5 mask ablation remain tunable.
    """

    bk: int = 16

    def __post_init__(self) -> None:
        if self.bk != 16:
            raise ConvConfigError(
                "the F(4×4) kernel implements bk=16 (the best feasible "
                f"blocking from perfmodel.f44_study), got bk={self.bk}"
            )
        if self.smem_layout != "transposed":
            raise ConvConfigError(
                "the F(4×4) kernel has no tile-major ablation; "
                "smem_layout must be 'transposed'"
            )
        if self.double_buffer != 2:
            raise ConvConfigError(
                "the F(4×4) kernel is register ping-pong only; "
                "double_buffer must be 2"
            )
        if self.ldg_interleave < 1 or self.sts_interleave < 1:
            raise ConvConfigError("interleave distances must be >= 1")


def default_tunables(tile: TileSpec | str | None = None) -> Tunables:
    """The family-appropriate default tunables for *tile* (f22 if None)."""
    return Tunables() if get_tile(tile).m == 2 else F44Tunables()


def _magic_u32(divisor: int) -> int:
    """ceil(2^32 / d): exact unsigned division for dividends < 2^32/d."""
    return -(-(1 << 32) // divisor)


class WinogradF22Kernel:
    """Generator + launch helper for one layer's fused Winograd kernel."""

    def __init__(self, prob: ConvProblem, tunables: Tunables | None = None):
        tunables = tunables or Tunables()
        if prob.r != 3 or prob.s != 3 or prob.pad != 1:
            raise ConvConfigError("the fused kernel implements 3×3 / pad 1")
        if prob.n % BN:
            raise ConvConfigError(f"N must be a multiple of {BN} (got {prob.n})")
        if prob.c % BC:
            raise ConvConfigError(f"C must be a multiple of {BC} (got {prob.c})")
        if prob.k % tunables.bk:
            raise ConvConfigError(
                f"K must be a multiple of bk={tunables.bk} (got {prob.k})"
            )
        self.prob = prob
        self.t = tunables
        self.depth = tunables.double_buffer
        self.bk = tunables.bk
        self.cols = self.bk // 8  # filter columns per thread per GEMM (8 or 4)
        self.th = prob.tiles_h(2)
        self.tw = prob.tiles_w(2)
        self.total_tiles = self.th * self.tw * prob.n
        self.iters = prob.c // BC

        # ---- register map (Table 5) ---------------------------------------
        self.n_acc = 2 * 8 * self.cols  # 128 (bk=64) / 64 (bk=32)
        self.frag_block = 2 * 8 + 2 * self.cols  # in(16) + fil(16/8)
        self.cur = [self.n_acc, self.n_acc + self.frag_block]  # ping-pong bases
        self.pf_fil = self.n_acc + 2 * self.frag_block
        self.n_pf_fil = 16 * (2 if self.bk == 64 else 1)
        self.pf_in = self.pf_fil + self.n_pf_fil
        scal = self.pf_in + 16
        self.PTR_IN = scal  # 64-bit pair (even-aligned by construction)
        self.PTR_FIL = scal + 2  # pair
        self.ITER = scal + 4
        self.MASK = scal + 5
        self.STS_IN = scal + 6
        self.STS_FIL = scal + 7
        self.LDS_IN = scal + 8
        self.LDS_FIL = scal + 9
        self.TMP = (scal + 10, scal + 11, scal + 12)
        self.num_regs = scal + 13
        assert self.num_regs <= 253
        assert self.PTR_IN % 2 == 0

        # ---- shared memory map (Table 4 / Table 7) -------------------------
        self.smem_fil_base = 0
        self.smem_fil_bytes = 16 * BC * self.bk * 4  # 32 KB at bk=64
        self.smem_in_base = self.smem_fil_bytes
        self.smem_in_bytes = 16 * BC * BN * 4  # 16 KB
        # The paper's block uses 48 KB whichever layout; the OTF transpose
        # buffer reuses this allocation (§4.4).  The paper pads rows to 40
        # floats (Table 4: (16, 2, 8, 40)) with the Fig. 5 interleave; this
        # generator reaches the same goal — conflict-free transpose stores
        # — with a 33-float row stride plus a bit-swapped k index (the
        # ``perm(k) = (k>>2) + c_width·(k&3)`` permutation), which makes a
        # store's bank = c' + c_width·j + t (mod 32): injective over the
        # active lanes.
        self.smem_bytes = self.smem_fil_bytes + self.smem_in_bytes
        self.otf_row_floats = 33

    # ------------------------------------------------------------------
    # Launch metadata (available without assembling)
    # ------------------------------------------------------------------
    @property
    def launch_smem_bytes(self) -> int:
        """Shared memory the launch reserves (main buffers or OTF buffer,
        whichever is larger) — the ``.smem`` header value."""
        return max(self.smem_bytes, 16 * 2 * 8 * self.otf_row_floats * 4)

    # ------------------------------------------------------------------
    # Register helpers
    # ------------------------------------------------------------------
    def acc(self, g: int, i: int, j: int) -> int:
        return g * (8 * self.cols) + j * 8 + i

    def in_frag(self, blk: int, g: int, i: int) -> int:
        return self.cur[blk] + g * 8 + i

    def fil_frag(self, blk: int, g: int, j: int) -> int:
        return self.cur[blk] + 16 + g * self.cols + j

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _ctl(wait=0, rbar=None, wbar=None, stall=1, yld=False) -> str:
        waits = "".join(str(i) if wait & (1 << i) else "-" for i in range(6))
        r = "-" if rbar is None else str(rbar)
        w = "-" if wbar is None else str(wbar)
        y = "Y" if yld else "-"
        return f"[B{waits}:R{r}:W{w}:{y}:S{stall:02d}]"

    def _emit_udiv(self, lines, dst, src, divisor, tmp_pair):
        """dst = src / divisor (unsigned); divisor is a generation-time const."""
        if divisor & (divisor - 1) == 0:
            shift = divisor.bit_length() - 1
            lines.append(f"SHF.R.U32 R{dst}, R{src}, {shift:#x}, RZ;")
            return
        magic = _magic_u32(divisor)
        assert tmp_pair % 2 == 0
        lines.append(f"IMAD.WIDE.U32 R{tmp_pair}, R{src}, {magic:#x}, RZ;")
        lines.append(f"MOV R{dst}, R{tmp_pair + 1};")

    def _emit_mod(self, lines, dst, src, quotient, divisor):
        """dst = src - quotient*divisor (valid after _emit_udiv)."""
        neg = (-divisor) & 0xFFFFFFFF
        lines.append(f"IMAD R{dst}, R{quotient}, {neg:#x}, R{src};")

    # ------------------------------------------------------------------
    # FFMA block for one k-step (the Fig. 4 ordering with .reuse)
    # ------------------------------------------------------------------
    def ffma_step(self, blk: int) -> list[str]:
        lines = []
        for g in range(2):
            for j in range(self.cols):
                first = 1 if j % 2 == 0 else 0  # §4.3: even cols start odd row
                fil = self.fil_frag(blk, g, j)
                for pair in range(4):
                    i0 = 2 * pair + first
                    i1 = 2 * pair + (1 - first)
                    a0, a1 = self.acc(g, i0, j), self.acc(g, i1, j)
                    r0, r1 = self.in_frag(blk, g, i0), self.in_frag(blk, g, i1)
                    lines.append(f"FFMA R{a0}, R{r0}, R{fil}.reuse, R{a0};")
                    lines.append(f"FFMA R{a1}, R{r1}, R{fil}, R{a1};")
        return lines

    # ------------------------------------------------------------------
    # Fragment loads for one k-step (Fig. 3 lane map baked into LDS bases)
    # ------------------------------------------------------------------
    def lds_step(self, blk: int, kk: int) -> list[str]:
        """Load k-step ``kk`` fragments into register block ``blk``."""
        bar = 2 + blk  # B2 for block 0, B3 for block 1
        lines = []
        if self.t.smem_layout == "transposed":
            for g in range(2):
                for h in range(2):
                    imm = kk * 128 + h * 64 + g * 8192
                    dest = self.in_frag(blk, g, 4 * h)
                    lines.append(
                        f"{self._ctl(wbar=bar)} LDS.128 R{dest}, "
                        f"[R{self.LDS_IN} + {imm:#x}];"
                    )
        else:  # tile_major ablation: strided scalar loads, 4-way conflicts
            for g in range(2):
                for h in range(2):
                    for i in range(4):
                        imm = kk * 2048 + (16 * h + i) * 64 + g * 32
                        dest = self.in_frag(blk, g, 4 * h + i)
                        lines.append(
                            f"{self._ctl(wbar=bar)} LDS.32 R{dest}, "
                            f"[R{self.LDS_IN} + {imm:#x}];"
                        )
        fil_halves = 2 if self.bk == 64 else 1
        for g in range(2):
            for h in range(fil_halves):
                # (16, bc, bk) floats: +kk → bk floats; +8 e's for GEMM 1.
                imm = kk * (self.bk * 4) + h * 128 + g * (8 * BC * self.bk * 4)
                dest = self.fil_frag(blk, g, 4 * h)
                lines.append(
                    f"{self._ctl(wbar=bar)} LDS.128 R{dest}, "
                    f"[R{self.LDS_FIL} + {imm:#x}];"
                )
        return lines

    # ------------------------------------------------------------------
    # Global prefetch stream (one iteration's LDGs, woven into steps 0-5)
    # ------------------------------------------------------------------
    def ldg_stream(self) -> list[str]:
        lines = []
        fil_tiles = 2 if self.bk == 64 else 1
        k = self.prob.k
        first = True
        for t2 in range(fil_tiles):
            for e in range(16):
                imm = 4 * k * (e + 64 * t2)
                wait = 1 << 4 if first else 0  # WAR with last body's STS (B4)
                first = False
                lines.append(
                    f"{self._ctl(wait=wait, wbar=1)} LDG.E R{self.pf_fil + 16 * t2 + e}, "
                    f"[R{self.PTR_FIL} + {imm:#x}];"
                )
        w, n = self.prob.w, self.prob.n
        for x in range(4):
            if self.t.use_p2r:
                # §3.5: unpack 4 of the 16 packed mask bits at a time.
                lines.append(
                    f"SHF.R.U32 R{self.TMP[0]}, R{self.MASK}, {4 * x:#x}, RZ;"
                )
                lines.append(f"R2P R{self.TMP[0]}, 0xf;")
            else:
                # Ablation: recompute the predicates every iteration the
                # way compiler-generated code must when the mask cannot
                # be packed (MASK/TMP1 hold h0/w0 instead of the bits).
                lines.append(f"IADD3 R{self.TMP[0]}, R{self.MASK}, {x:#x}, RZ;")
                lines.append(
                    f"ISETP.LT.U32.AND P4, PT, R{self.TMP[0]}, "
                    f"{self.prob.h:#x}, PT;"
                )
                for y in range(4):
                    lines.append(
                        f"IADD3 R{self.TMP[0]}, R{self.TMP[1]}, {y:#x}, RZ;"
                    )
                    lines.append(
                        f"ISETP.LT.U32.AND P{y}, PT, R{self.TMP[0]}, "
                        f"{self.prob.w:#x}, P4;"
                    )
            for y in range(4):
                imm = 4 * (x * w + y) * n
                lines.append(
                    f"{self._ctl(wbar=0)} @P{y} LDG.E R{self.pf_in + 4 * x + y}, "
                    f"[R{self.PTR_IN} + {imm:#x}];"
                )
        return lines

    # ------------------------------------------------------------------
    # ITF: 32 FADDs, BᵀIB on the prefetched tile (§4.2), scratch = block-0
    # input-fragment registers (free during step 7).
    # ------------------------------------------------------------------
    def itf_stream(self) -> list[str]:
        """BᵀIB on the prefetched tile, into scratch registers.

        The prefetch registers are read-only here: their statically
        masked (implicit-zero) elements must stay zero across every
        iteration, since the predicated LDGs never write them (§3.5).
        The column pass writes block-0's input-fragment registers (dead
        during step 7); the row pass finishes in place with one temp.
        """
        d = lambda x, y: self.pf_in + 4 * x + y
        s = lambda x, y: self.itf_scratch + 4 * x + y  # 16 scratch regs
        tmp = self.TMP[0]
        lines = []
        first = self._ctl(wait=1 << 0)  # wait B0: prefetched input landed
        # Column pass: S = BᵀI  (rows: d0-d2, d1+d2, d2-d1, d1-d3).
        for y in range(4):
            ctl = first if y == 0 else ""
            lines.append(f"{ctl} FADD R{s(0, y)}, R{d(0, y)}, -R{d(2, y)};".strip())
            lines.append(f"FADD R{s(1, y)}, R{d(1, y)}, R{d(2, y)};")
            lines.append(f"FADD R{s(2, y)}, R{d(2, y)}, -R{d(1, y)};")
            lines.append(f"FADD R{s(3, y)}, R{d(1, y)}, -R{d(3, y)};")
        # Row pass in place: per row, save s1 then s0-s2, s1+s2, s2-s1, s1-s3.
        for x in range(4):
            lines.append(f"FADD R{tmp}, R{s(x, 1)}, RZ;")
            lines.append(f"FADD R{s(x, 0)}, R{s(x, 0)}, -R{s(x, 2)};")
            lines.append(f"FADD R{s(x, 1)}, R{s(x, 1)}, R{s(x, 2)};")
            lines.append(f"FADD R{s(x, 2)}, R{s(x, 2)}, -R{tmp};")
            lines.append(f"FADD R{s(x, 3)}, R{tmp}, -R{s(x, 3)};")
        return lines

    # ------------------------------------------------------------------
    # STS streams (§4.1-§4.2 data staging; read barrier B4 guards the WAR
    # with the next iteration's prefetch).
    # ------------------------------------------------------------------
    def sts_filter_stream(self) -> list[str]:
        lines = []
        fil_tiles = 2 if self.bk == 64 else 1
        first = True
        for t2 in range(fil_tiles):
            for e in range(16):
                # (16, bc, bk) floats: +e → bc*bk floats; +4 channels → 4*bk.
                imm = e * (BC * self.bk * 4) + t2 * (4 * self.bk * 4)
                wait = 1 << 1 if first else 0
                first = False
                lines.append(
                    f"{self._ctl(wait=wait, rbar=4)} STS "
                    f"[R{self.STS_FIL} + {imm:#x}], R{self.pf_fil + 16 * t2 + e};"
                )
        return lines

    @property
    def itf_scratch(self) -> int:
        """Base of the 16 ITF scratch registers (the BᵀIB outputs).

        Depth 2: the ITF runs during step 7, which computes from block 1,
        so block 0's input fragments are dead and serve as scratch.
        Depth 1: every step reads block 0, so the otherwise-unused
        block-1 input fragments are the scratch instead.
        """
        return self.in_frag(0 if self.depth == 2 else 1, 0, 0)

    def sts_input_stream(self) -> list[str]:
        scratch = self.itf_scratch  # the ITF's output registers
        lines = []
        for e in range(16):
            if self.t.smem_layout == "transposed":
                imm = e * (BC * BN * 4)  # (16, bc, bn)
            else:
                imm = e * 4  # tile-major (bc, bn, 16)
            lines.append(
                f"{self._ctl(rbar=4)} STS [R{self.STS_IN} + {imm:#x}], "
                f"R{scratch + e};"
            )
        return lines

    # ------------------------------------------------------------------
    # Prologue
    # ------------------------------------------------------------------
    def prologue(self) -> list[str]:
        p = self.prob
        L: list[str] = []
        T = lambda i: self.pf_fil + i  # prologue scratch in the prefetch block

        L.append(f"S2R R{T(0)}, SR_TID.X;")
        L.append(f"S2R R{T(2)}, SR_CTAID.X;")  # tile block tb
        L.append(f"S2R R{T(3)}, SR_CTAID.Y;")  # filter block kb
        L.append(f"LOP3.AND R{T(1)}, R{T(0)}, 0x1f, RZ;")  # lane / tile slot
        L.append(f"SHF.R.U32 R{T(4)}, R{T(0)}, 0x5, RZ;")  # warp = channel slot

        # Global tile id g = tb*32 + lane → (n, w̃, h̃).
        L.append(f"IMAD R{T(5)}, R{T(2)}, 0x20, R{T(1)};")
        self._emit_udiv(L, T(6), T(5), p.n, T(8))  # hw = g / N
        self._emit_mod(L, T(7), T(5), T(6), p.n)  # n = g % N
        self._emit_udiv(L, T(10), T(6), self.tw, T(12))  # h̃ = hw / tw
        self._emit_mod(L, T(11), T(6), T(10), self.tw)  # w̃ = hw % tw

        # Input base address: in_ptr + 4·(((w·H + 2h̃−1)·W + 2w̃−1)·N + n).
        L.append(f"IMAD R{T(14)}, R{T(10)}, 0x2, RZ;")
        L.append(f"IADD3 R{T(14)}, R{T(14)}, -1, RZ;")  # h0 = 2h̃ − 1
        L.append(f"IMAD R{T(15)}, R{T(4)}, {p.h:#x}, R{T(14)};")  # w·H + h0
        L.append(f"IMAD R{T(9)}, R{T(11)}, 0x2, RZ;")
        L.append(f"IADD3 R{T(9)}, R{T(9)}, -1, RZ;")  # w0 = 2w̃ − 1
        L.append(f"IMAD R{T(15)}, R{T(15)}, {p.w:#x}, R{T(9)};")
        L.append(f"IMAD R{T(15)}, R{T(15)}, {p.n:#x}, R{T(7)};")
        # 64-bit base: in_ptr + 4·idx (idx may be negative at the top/left
        # padding edge, so the carry into the high word matters).
        L.append(f"MOV R{self.PTR_IN}, c[0x0][0x160];")
        L.append(f"MOV R{self.PTR_IN + 1}, c[0x0][0x164];")
        L.append(f"IMAD.WIDE R{self.PTR_IN}, R{T(15)}, 0x4, R{self.PTR_IN};")

        if self.t.use_p2r:
            # Zero-padding mask (§3.5): rowok/colok nibbles → 16-bit mask.
            for x in range(4):
                L.append(f"IADD3 R{T(8)}, R{T(14)}, {x:#x}, RZ;")
                L.append(f"ISETP.LT.U32.AND P{x}, PT, R{T(8)}, {p.h:#x}, PT;")
            L.append(f"P2R R{T(8)}, 0xf;")  # row-ok nibble
            for y in range(4):
                L.append(f"IADD3 R{T(12)}, R{T(9)}, {y:#x}, RZ;")
                L.append(f"ISETP.LT.U32.AND P{y}, PT, R{T(12)}, {p.w:#x}, PT;")
            L.append(f"P2R R{T(13)}, 0xf;")  # col-ok nibble
            L.append(f"MOV R{self.MASK}, 0x0;")
            L.append(f"R2P R{T(8)}, 0xf;")  # P_x = rowok(x)
            for x in range(4):
                L.append(f"SHF.L.U32 R{T(12)}, R{T(13)}, {4 * x:#x}, RZ;")
                L.append(
                    f"@P{x} LOP3.OR R{self.MASK}, R{self.MASK}, R{T(12)}, RZ;"
                )
        else:
            # Ablation: keep the raw tile origin; predicates recomputed
            # inside the loop (costing ALU work every iteration).
            L.append(f"MOV R{self.MASK}, R{T(14)};")  # h0
            L.append(f"MOV R{self.TMP[1]}, R{T(9)};")  # w0

        # Filter base: fil_ptr + 4·(cf·16·K + kb·bk + kk).
        kk_mask = self.bk - 1
        kk_shift = 6 if self.bk == 64 else 5
        L.append(f"LOP3.AND R{T(8)}, R{T(0)}, {kk_mask:#x}, RZ;")  # kk
        L.append(f"SHF.R.U32 R{T(12)}, R{T(0)}, {kk_shift:#x}, RZ;")  # cf
        L.append(f"IMAD R{T(8)}, R{T(3)}, {self.bk:#x}, R{T(8)};")  # + kb·bk
        L.append(f"IMAD R{T(8)}, R{T(12)}, {16 * p.k:#x}, R{T(8)};")
        L.append(f"MOV R{self.PTR_FIL}, c[0x0][0x168];")
        L.append(f"MOV R{self.PTR_FIL + 1}, c[0x0][0x16c];")
        L.append(f"IMAD.WIDE R{self.PTR_FIL}, R{T(8)}, 0x4, R{self.PTR_FIL};")

        # STS base addresses.
        if self.t.smem_layout == "transposed":
            L.append(f"IMAD R{T(8)}, R{T(4)}, 0x20, R{T(1)};")  # ci·32 + tile
            L.append(f"SHF.L.U32 R{T(8)}, R{T(8)}, 0x2, RZ;")
        else:  # tile-major: (ci·32 + tile)·16 floats
            L.append(f"IMAD R{T(8)}, R{T(4)}, 0x20, R{T(1)};")
            L.append(f"SHF.L.U32 R{T(8)}, R{T(8)}, 0x6, RZ;")
        L.append(f"IADD3 R{self.STS_IN}, R{T(8)}, {self.smem_in_base:#x}, RZ;")
        kk_mask_l = self.bk - 1
        L.append(f"LOP3.AND R{T(8)}, R{T(0)}, {kk_mask_l:#x}, RZ;")
        L.append(f"SHF.R.U32 R{T(12)}, R{T(0)}, {kk_shift:#x}, RZ;")
        L.append(f"IMAD R{T(8)}, R{T(12)}, {self.bk:#x}, R{T(8)};")  # cf·bk + kk
        L.append(f"SHF.L.U32 R{self.STS_FIL}, R{T(8)}, 0x2, RZ;")

        # Fragment LDS bases (Fig. 3: r = (sub&1) + 2·quad, c = sub>>1).
        L.append(f"LOP3.AND R{T(8)}, R{T(1)}, 0xf, RZ;")  # sub
        L.append(f"SHF.R.U32 R{T(12)}, R{T(1)}, 0x4, RZ;")  # quad
        L.append(f"SHF.R.U32 R{T(13)}, R{T(8)}, 0x1, RZ;")  # c
        L.append(f"LOP3.AND R{T(14)}, R{T(8)}, 0x1, RZ;")
        L.append(f"IMAD R{T(14)}, R{T(12)}, 0x2, R{T(14)};")  # r
        if self.t.smem_layout == "transposed":
            L.append(f"IMAD R{T(15)}, R{T(4)}, {BC * BN * 4 // 8 * 8:#x}, RZ;")
            L.append(f"IMAD R{T(15)}, R{T(14)}, 0x10, R{T(15)};")  # + 4r floats
        else:  # tile-major: base = (4r·16 + e0)·4 with e0 = warp
            L.append(f"SHF.L.U32 R{T(15)}, R{T(4)}, 0x2, RZ;")  # e0·4 bytes
            L.append(f"IMAD R{T(15)}, R{T(14)}, 0x100, R{T(15)};")
        L.append(
            f"IADD3 R{self.LDS_IN}, R{T(15)}, {self.smem_in_base:#x}, RZ;"
        )
        L.append(f"IMAD R{T(15)}, R{T(4)}, {16 * BC * self.bk * 4 // 16:#x}, RZ;")
        L.append(f"IMAD R{self.LDS_FIL}, R{T(13)}, 0x10, R{T(15)};")

        # Zero the accumulators and the (statically masked) input prefetch.
        for r in range(self.n_acc):
            L.append(f"MOV R{r}, RZ;")
        for e in range(16):
            L.append(f"MOV R{self.pf_in + e}, RZ;")
        L.append(f"MOV R{self.ITER}, {self.iters:#x};")
        L.append(f"MOV R{self.TMP[2]}, 0x1;")  # constant 1 for 64-bit bumps
        return L

    # ------------------------------------------------------------------
    # One staging phase: prefetch → (wait) → ITF → STS → BAR → LDS k0.
    # Used standalone in the prologue; inside the loop the same streams
    # are woven into the FFMA stream instead.
    # ------------------------------------------------------------------
    def staging_phase(self) -> list[str]:
        L = list(self.ldg_stream())
        L += self.advance_pointers()
        L += self.itf_stream()
        L += self.sts_filter_stream()
        L += self.sts_input_stream()
        L.append("BAR.SYNC;")  # smem ordering is by MIO issue order
        L += self.lds_step(0, 0)
        return L

    def advance_pointers(self) -> list[str]:
        # 64-bit pointer bumps: base + 1·step via IMAD.WIDE (TMP2 holds 1;
        # the base may be "negative" at the padding edge, see prologue).
        p = self.prob
        in_step = BC * p.h * p.w * p.n * 4
        fil_step = BC * 16 * p.k * 4
        one = self.TMP[2]
        return [
            f"IMAD.WIDE R{self.PTR_IN}, R{one}, {in_step:#x}, R{self.PTR_IN};",
            f"IMAD.WIDE R{self.PTR_FIL}, R{one}, {fil_step:#x}, R{self.PTR_FIL};",
        ]

    # ------------------------------------------------------------------
    # Main loop body
    # ------------------------------------------------------------------
    def loop_body(self) -> list[str]:
        if self.depth == 1:
            return self._loop_body_single()
        # Fragment loads are spread through each step's FFMAs (one LDS per
        # ~14 FFMAs) instead of bursting at step boundaries: a back-to-back
        # clump of 8 LDS.128 from every warp at once would convoy on the
        # shared MIO pipe and stall the in-order FFMA streams behind it.
        lds_spacing = max(1, 128 // (len(self.lds_step(0, 0)) + 1))
        L: list[str] = []
        # Steps 0..6: FFMAs + next-step LDS, with the LDG stream woven in.
        steps06: list[str] = []
        for k in range(7):
            blk = k % 2
            ffmas = self.ffma_step(blk)
            ffmas[0] = f"{self._ctl(wait=1 << (2 + blk))} {ffmas[0]}"
            steps06 += weave(ffmas, self.lds_step(1 - blk, k + 1), lds_spacing)
        steps06 = weave(steps06, self.ldg_stream(), self.t.ldg_interleave)
        L += steps06

        # All shared-memory reads are now *issued*; the in-order MIO pipe
        # serves them before any post-barrier STS, so no scoreboard wait.
        L.append("BAR.SYNC;")

        # Step 7: 128 FFMAs with ITF + STS woven in.
        step7 = self.ffma_step(1)
        step7[0] = f"{self._ctl(wait=1 << 3)} {step7[0]}"
        tail = weave(step7, self.itf_stream(), 2)  # ITF as early as possible
        tail = weave(tail, self.sts_filter_stream(), self.t.sts_interleave)
        tail = weave(tail, self.sts_input_stream(), self.t.sts_interleave,
                     start=len(step7) // 2)
        L += tail

        L += self.advance_pointers()
        L.append(f"IADD3 R{self.ITER}, R{self.ITER}, -1, RZ;")
        L.append(f"ISETP.NE.AND P5, PT, R{self.ITER}, RZ, PT;")
        L.append("BAR.SYNC;")
        for line in self.lds_step(0, 0):
            L.append(_predicate(line, "P5"))
        L.append("@P5 BRA MAIN_LOOP;")
        return L

    def _loop_body_single(self) -> list[str]:
        """The ``double_buffer=1`` ablation: one fragment buffer (§3.4).

        Every k-step computes from register block 0 and the next step's
        fragment loads are issued as a burst *after* the step's FFMAs
        (in-order issue keeps the write-after-read safe: FFMA operands
        are consumed at issue, before any later LDS can write back).
        Each step's first FFMA then waits on B2 for that burst to land,
        so the FFMA stream stalls on the shared-memory latency once per
        k-step — the serialization the paper's ping-pong register
        double-buffering exists to hide.
        """
        L: list[str] = []
        # Steps 0..6: FFMAs, then the next step's LDS burst; the LDG
        # stream is woven over the whole stretch as in the paper path.
        steps06: list[str] = []
        for k in range(7):
            ffmas = self.ffma_step(0)
            ffmas[0] = f"{self._ctl(wait=1 << 2)} {ffmas[0]}"
            steps06 += ffmas
            steps06 += self.lds_step(0, k + 1)
        steps06 = weave(steps06, self.ldg_stream(), self.t.ldg_interleave)
        L += steps06

        # Same MIO-ordering argument as the ping-pong path: every
        # shared-memory read is issued before the barrier, so the
        # post-barrier STS cannot overtake them.
        L.append("BAR.SYNC;")

        # Step 7: 128 FFMAs with ITF + STS woven in (scratch lives in
        # the idle block-1 fragment registers, see ``itf_scratch``).
        step7 = self.ffma_step(0)
        step7[0] = f"{self._ctl(wait=1 << 2)} {step7[0]}"
        tail = weave(step7, self.itf_stream(), 2)
        tail = weave(tail, self.sts_filter_stream(), self.t.sts_interleave)
        tail = weave(tail, self.sts_input_stream(), self.t.sts_interleave,
                     start=len(step7) // 2)
        L += tail

        L += self.advance_pointers()
        L.append(f"IADD3 R{self.ITER}, R{self.ITER}, -1, RZ;")
        L.append(f"ISETP.NE.AND P5, PT, R{self.ITER}, RZ, PT;")
        L.append("BAR.SYNC;")
        for line in self.lds_step(0, 0):
            L.append(_predicate(line, "P5"))
        L.append("@P5 BRA MAIN_LOOP;")
        return L

    # ------------------------------------------------------------------
    # Output transform (§4.4): 4 rounds of store → BAR → load+ATÔA → STG.
    # ------------------------------------------------------------------
    def epilogue(self) -> list[str]:
        p = self.prob
        L: list[str] = []
        T = lambda i: self.cur[0] + i  # frag regs are free after the loop
        OUT_LO, OUT_HI = self.PTR_IN, self.PTR_IN + 1  # reuse pointer pair
        ADDR = self.PTR_FIL  # per-store 64-bit address pair
        row = self.otf_row_floats

        # Recompute thread geometry (registers were reused by the loop).
        L.append(f"S2R R{T(0)}, SR_TID.X;")
        L.append(f"S2R R{T(2)}, SR_CTAID.X;")
        L.append(f"S2R R{T(3)}, SR_CTAID.Y;")
        L.append(f"LOP3.AND R{T(1)}, R{T(0)}, 0x1f, RZ;")  # lane = tile slot
        L.append(f"SHF.R.U32 R{T(4)}, R{T(0)}, 0x5, RZ;")  # warp
        L.append(f"IMAD R{T(5)}, R{T(2)}, 0x20, R{T(1)};")  # global tile id
        self._emit_udiv(L, T(6), T(5), p.n, T(8))
        self._emit_mod(L, T(7), T(5), T(6), p.n)
        self._emit_udiv(L, T(10), T(6), self.tw, T(12))
        self._emit_mod(L, T(11), T(6), T(10), self.tw)

        # Output base: out_ptr + 4·(((kb·bk + w)·H' + 2h̃)·W' + 2w̃)·N + n).
        oh, ow = p.out_h, p.out_w
        L.append(f"IMAD R{T(8)}, R{T(3)}, {self.bk:#x}, R{T(4)};")
        L.append(f"IMAD R{T(9)}, R{T(10)}, 0x2, RZ;")  # oy = 2h̃
        L.append(f"IMAD R{T(8)}, R{T(8)}, {oh:#x}, R{T(9)};")
        L.append(f"IMAD R{T(12)}, R{T(11)}, 0x2, RZ;")  # ox = 2w̃
        L.append(f"IMAD R{T(8)}, R{T(8)}, {ow:#x}, R{T(12)};")
        L.append(f"IMAD R{T(8)}, R{T(8)}, {p.n:#x}, R{T(7)};")
        L.append(f"MOV R{OUT_LO}, c[0x0][0x170];")
        L.append(f"MOV R{OUT_HI}, c[0x0][0x174];")
        L.append(f"IMAD.WIDE R{OUT_LO}, R{T(8)}, 0x4, R{OUT_LO};")

        # Edge predicates (the F(2×2) overcompute cropped by stores, §7.3).
        L.append(f"IADD3 R{T(9)}, R{T(9)}, 0x1, RZ;")
        L.append(f"ISETP.LT.AND P1, PT, R{T(9)}, {oh:#x}, PT;")  # row 1 ok
        L.append(f"IADD3 R{T(12)}, R{T(12)}, 0x1, RZ;")
        L.append(f"ISETP.LT.AND P0, PT, R{T(12)}, {ow:#x}, PT;")  # col 1 ok
        # P2 = P0 & P1: clear P2, then under @P1 set it to (false OR P0).
        L.append("ISETP.NE.AND P2, PT, RZ, RZ, PT;")
        L.append("@P1 ISETP.NE.OR P2, PT, RZ, RZ, P0;")

        # Lane sub-coordinates (same as the main loop's Fig. 3 map).
        L.append(f"LOP3.AND R{T(13)}, R{T(1)}, 0xf, RZ;")
        L.append(f"SHF.R.U32 R{T(14)}, R{T(1)}, 0x4, RZ;")
        L.append(f"SHF.R.U32 R{T(15)}, R{T(13)}, 0x1, RZ;")  # c
        L.append(f"LOP3.AND R{T(13)}, R{T(13)}, 0x1, RZ;")
        L.append(f"IMAD R{T(14)}, R{T(14)}, 0x2, R{T(13)};")  # r

        # Read-phase base: (perm(w)·row + lane)·4 with the conflict-free
        # k permutation perm(k) = (k>>2) + c_width·(k&3) (see __init__).
        c_width = 4 if self.bk == 64 else 2
        L.append(f"SHF.R.U32 R{T(13)}, R{T(4)}, 0x2, RZ;")
        L.append(f"LOP3.AND R{T(12)}, R{T(4)}, 0x3, RZ;")
        L.append(f"IMAD R{T(13)}, R{T(12)}, {c_width:#x}, R{T(13)};")  # perm(w)
        L.append(f"IMAD R{T(13)}, R{T(13)}, {row * 4:#x}, RZ;")
        L.append(f"SHF.L.U32 R{T(12)}, R{T(1)}, 0x2, RZ;")
        L.append(f"IADD3 R{T(13)}, R{T(13)}, R{T(12)}, RZ;")  # read base

        rounds = 4
        k_per_round = self.bk // 4
        # Each round handles 1/4 of the k_locals: for bk=64, (j half, c
        # half); for bk=32, a pair of c values.  c_group lanes store.
        c_shift, c_width = (2, 4) if self.bk == 64 else (1, 2)
        for rnd in range(rounds):
            if self.bk == 64:
                jh, ch = rnd >> 1, rnd & 1
                j0 = 4 * jh
            else:
                jh, ch = 0, rnd
                j0 = 0
            # P3: does this thread store in this round?  c_group == ch.
            L.append(f"SHF.R.U32 R{T(12)}, R{T(15)}, {c_shift:#x}, RZ;")
            L.append(f"ISETP.EQ.AND P3, PT, R{T(12)}, {ch:#x}, PT;")
            # Store base with the perm'd k index: word = e·K_r·row +
            # (cc + c_width·j)·row + t, so cc's byte coefficient is row·4.
            L.append(
                f"IADD3 R{T(12)}, R{T(15)}, {(-c_width * ch) & 0xFFFFFFFF:#x}, RZ;"
            )
            L.append(f"IMAD R{T(12)}, R{T(12)}, {row * 4:#x}, RZ;")
            L.append(
                f"IMAD R{T(12)}, R{T(4)}, {k_per_round * row * 4:#x}, R{T(12)};"
            )
            L.append(f"IMAD R{T(12)}, R{T(14)}, 0x10, R{T(12)};")
            for g in range(2):
                for dj in range(4):
                    for i in range(8):
                        a = self.acc(g, i, j0 + dj)
                        t_part = 4 * i if i < 4 else 64 + 4 * (i - 4)
                        imm = (
                            g * (8 * k_per_round * row * 4)
                            + dj * (c_width * row * 4)
                            + t_part
                        )
                        L.append(
                            f"{self._ctl(rbar=4)} @P3 STS [R{T(12)} + {imm:#x}], R{a};"
                        )
            L.append("BAR.SYNC;")

            # Read + transform + store, two (k, tile) pairs per thread.
            pairs = 2 if self.bk == 64 else 1
            for pp in range(pairs):
                dregs = self.pf_fil + 16 * pp  # 16 Ô elements
                for e in range(16):
                    # perm(w + 8) = perm(w) + 2, so pair 1 sits 2 rows up.
                    imm = e * (k_per_round * row * 4) + pp * (2 * row * 4)
                    L.append(
                        f"{self._ctl(wbar=0)} LDS.32 R{dregs + e}, "
                        f"[R{T(13)} + {imm:#x}];"
                    )
                # OTF: AᵀÔA → 4 outputs (24 FADDs, §2.1).
                m = self.pf_in  # 8 temps
                o = self.pf_in + 8 + 4 * pp  # 4 outputs
                d4 = lambda x, y: dregs + 4 * x + y
                first = True
                for y in range(4):
                    ctl = self._ctl(wait=1 << 0) + " " if first else ""
                    first = False
                    L.append(
                        f"{ctl}FADD R{m + y}, R{d4(0, y)}, R{d4(1, y)};"
                    )
                    L.append(f"FADD R{m + y}, R{m + y}, R{d4(2, y)};")
                    L.append(f"FADD R{m + 4 + y}, R{d4(1, y)}, -R{d4(2, y)};")
                    L.append(f"FADD R{m + 4 + y}, R{m + 4 + y}, -R{d4(3, y)};")
                for x in range(2):
                    L.append(f"FADD R{o + 2 * x}, R{m + 4 * x}, R{m + 4 * x + 1};")
                    L.append(
                        f"FADD R{o + 2 * x}, R{o + 2 * x}, R{m + 4 * x + 2};"
                    )
                    L.append(
                        f"FADD R{o + 2 * x + 1}, R{m + 4 * x + 1}, -R{m + 4 * x + 2};"
                    )
                    L.append(
                        f"FADD R{o + 2 * x + 1}, R{o + 2 * x + 1}, -R{m + 4 * x + 3};"
                    )
                # Global stores with crop predicates.
                k_off = k_per_round * rnd + 8 * pp
                k_stride = oh * ow * p.n * 4
                L.append(
                    f"IADD3 R{ADDR}, R{OUT_LO}, {k_off * k_stride:#x}, RZ;"
                )
                L.append(f"MOV R{ADDR + 1}, R{OUT_HI};")
                guards = {(0, 0): "", (0, 1): "@P0 ", (1, 0): "@P1 ", (1, 1): "@P2 "}
                for dy in range(2):
                    for dx in range(2):
                        imm = 4 * (dy * ow + dx) * p.n
                        L.append(
                            f"{self._ctl(rbar=5)} {guards[(dy, dx)]}STG.E "
                            f"[R{ADDR} + {imm:#x}], R{o + 2 * dy + dx};"
                        )
            if rnd != rounds - 1:
                L.append("BAR.SYNC;")
        L.append(f"{self._ctl(wait=1 << 5)} EXIT;")
        return L

    # ------------------------------------------------------------------
    # Whole-kernel assembly
    # ------------------------------------------------------------------
    def source(self, main_loop_only: bool = False, iters: int | None = None) -> str:
        name = f"winograd_f22_bk{self.bk}"
        header = [
            f".kernel {name}",
            f".registers {self.num_regs}",
            f".smem {self.launch_smem_bytes}",
            ".param 8 in_ptr",
            ".param 8 fil_ptr",
            ".param 8 out_ptr",
        ]
        body: list[str] = []
        body += self.prologue()
        if iters is not None:
            body.append(f"MOV R{self.ITER}, {iters:#x};")
        body += self.staging_phase()
        body.append("MAIN_LOOP:")
        body += self.loop_body()
        if main_loop_only:
            body.append("EXIT;")
        else:
            body += self.epilogue()
        lines = apply_yield_strategy(body, self.t.yield_strategy)
        return "\n".join(header + lines)

    def build(
        self, main_loop_only: bool = False, iters: int | None = None
    ) -> AssembledKernel:
        return assemble(self.source(main_loop_only, iters), auto_schedule=True)

    # ------------------------------------------------------------------
    # Launch helpers
    # ------------------------------------------------------------------
    @property
    def grid(self) -> tuple[int, int]:
        return (self.total_tiles // BN, self.prob.k // self.bk)

    def alloc_buffers(self, gmem, x_chwn: np.ndarray, f_transformed: np.ndarray):
        """Allocate padded device buffers; returns (params, out_ptr).

        One extra ``bc`` channel block of zeros pads the input and the
        transformed filter so the final iteration's prefetch never reads
        past the arrays (the kernel prefetches unconditionally and the
        prefetched data is simply never consumed).
        """
        p = self.prob
        pad_in = np.zeros((BC, p.h, p.w, p.n), dtype=np.float32)
        pad_fil = np.zeros((BC, 4, 4, p.k), dtype=np.float32)
        in_ptr = gmem.alloc_array(
            np.concatenate([x_chwn.astype(np.float32), pad_in], axis=0)
        )
        fil_ptr = gmem.alloc_array(
            np.concatenate([f_transformed.astype(np.float32), pad_fil], axis=0),
            l2_resident=True,
        )
        out_bytes = p.k * p.out_h * p.out_w * p.n * 4
        out_ptr = gmem.alloc(out_bytes)
        params = {"in_ptr": in_ptr, "fil_ptr": fil_ptr, "out_ptr": out_ptr}
        return params, out_ptr


class WinogradF44Kernel:
    """Generator + launch helper for the fused F(4×4, 3×3) kernel (§8.1).

    Blocking is the best feasible point from ``perfmodel.f44_study``:
    bk=16 filters × bn=32 tiles × bc=8 channels per block, 256 threads.
    Thread ``t`` owns filter ``kl = t & 15`` and the tile *pair*
    ``{2p, 2p+1}`` with ``p = t >> 4`` — and, unlike the F(2×2) GEMM
    arrangement, **all 36 transformed elements** of those tiles, so the
    output transform runs entirely in registers (72 accumulators, no
    shared-memory transpose buffer).  The 6×6 input window needs a
    36-bit zero-pad mask: two words, rows 0-4 unpacked by ``SHF.R`` +
    ``R2P 0x3f``, row 5 through a cross-word funnel (§3.5 generalized —
    the same split ``repro.winograd.tiling.pack_mask`` models).
    """

    ALPHA = 6  # transformed tile edge (m + r − 1)
    E = 36  # transformed elements per tile

    _ctl = staticmethod(WinogradF22Kernel._ctl)
    _emit_udiv = WinogradF22Kernel._emit_udiv
    _emit_mod = WinogradF22Kernel._emit_mod

    def __init__(self, prob: ConvProblem, tunables: Tunables | None = None):
        tunables = tunables or F44Tunables()
        if prob.r != 3 or prob.s != 3 or prob.pad != 1:
            raise ConvConfigError("the fused kernel implements 3×3 / pad 1")
        if prob.n % BN:
            raise ConvConfigError(f"N must be a multiple of {BN} (got {prob.n})")
        if prob.c % BC:
            raise ConvConfigError(f"C must be a multiple of {BC} (got {prob.c})")
        if prob.k % 16:
            raise ConvConfigError(f"K must be a multiple of 16 (got {prob.k})")
        if tunables.bk != 16 or tunables.smem_layout != "transposed" \
                or tunables.double_buffer != 2:
            raise ConvConfigError(
                "the F(4×4) kernel requires bk=16, transposed smem layout "
                "and double_buffer=2 (see F44Tunables)"
            )
        self.prob = prob
        self.t = tunables
        self.bk = 16
        self.th = prob.tiles_h(4)
        self.tw = prob.tiles_w(4)
        self.total_tiles = self.th * self.tw * prob.n
        self.iters = prob.c // BC
        tf = TILE_F44.transform(np.float32)
        self.bt = [[float(v) for v in row] for row in tf.bt]
        self.at = [[float(v) for v in row] for row in tf.at]

        # ---- register map -------------------------------------------------
        # 72 accumulators: acc(e, u) = 2e + u for element e, tile u∈{0,1}.
        self.n_acc = 2 * self.E
        # Fragment ping-pong: per buffer, 6 input pairs (LDS.64, so the
        # pair base must be even: 72 and 90 both are) + 6 filter scalars.
        self.frag = self.n_acc  # 72
        self.pf_in = self.frag + 36  # 108: the 6×6 predicated prefetch
        self.pf_fil = self.pf_in + 36  # 144: 18 filter prefetch regs
        self.itf_out = self.pf_fil + 18  # 162: BᵀdB results (36)
        scal = self.itf_out + 36  # 198
        self.PTR_IN = scal  # pair (even by construction)
        self.PTR_FIL = scal + 2  # pair
        self.ITER = scal + 4
        self.MASK = scal + 5  # mask word 0 (bits 0-31)
        self.MASK_HI = scal + 6  # mask word 1 (bits 32-35)
        self.STS_IN = scal + 7
        self.STS_FIL = scal + 8
        self.LDS_IN = scal + 9
        self.LDS_FIL = scal + 10
        self.TMP = (scal + 11, scal + 12, scal + 13)
        self.num_regs = scal + 14
        assert self.num_regs <= 253
        assert self.PTR_IN % 2 == 0 and self.frag % 2 == 0

        # ---- shared memory map --------------------------------------------
        # Filter (bc, 36, bk) floats so the flat (c·36+e) staging index is
        # also the store index; input (36, bc, bn) floats so one LDS.64 at
        # [e][c][2p] fetches both of a thread's tiles (8-byte aligned:
        # 2p·4 is a multiple of 8).
        self.smem_fil_base = 0
        self.smem_fil_bytes = BC * self.E * self.bk * 4  # 18 KB
        self.smem_in_base = self.smem_fil_bytes
        self.smem_in_bytes = self.E * BC * BN * 4  # 36 KB
        self.smem_bytes = self.smem_fil_bytes + self.smem_in_bytes  # 54 KB

    # ------------------------------------------------------------------
    # Launch metadata
    # ------------------------------------------------------------------
    @property
    def launch_smem_bytes(self) -> int:
        """No OTF transpose buffer: the main buffers are the whole budget."""
        return self.smem_bytes

    # ------------------------------------------------------------------
    # Register helpers
    # ------------------------------------------------------------------
    def acc(self, e: int, u: int) -> int:
        return 2 * e + u

    def in_frag(self, blk: int, j: int) -> int:
        return self.frag + 18 * blk + 2 * j  # pair for tiles {2p, 2p+1}

    def fil_frag(self, blk: int, j: int) -> int:
        return self.frag + 18 * blk + 12 + j

    # ------------------------------------------------------------------
    # Float linear combinations (the transform emitter)
    # ------------------------------------------------------------------
    @staticmethod
    def _fimm(value: float) -> str:
        return f"{float(value)}"

    def _emit_lincomb(self, lines, dst, terms, ctl="") -> None:
        """dst = Σ coef·R[src] over nonzero (src, coef) terms.

        ±1 coefficients use FADD (with source negation); others carry
        the coefficient as a float immediate in FMUL/FFMA — the
        transform matrices of F(4×4,3×3) only need ±2.0/±4.0/±5.0/±8.0.
        """
        first = True
        for reg, coef in terms:
            if first:
                if coef == 1.0:
                    op = f"FADD R{dst}, R{reg}, RZ;"
                elif coef == -1.0:
                    op = f"FADD R{dst}, -R{reg}, RZ;"
                else:
                    op = f"FMUL R{dst}, R{reg}, {self._fimm(coef)};"
                lines.append(f"{ctl} {op}" if ctl else op)
                first = False
            elif coef == 1.0:
                lines.append(f"FADD R{dst}, R{dst}, R{reg};")
            elif coef == -1.0:
                lines.append(f"FADD R{dst}, R{dst}, -R{reg};")
            else:
                lines.append(
                    f"FFMA R{dst}, R{reg}, {self._fimm(coef)}, R{dst};"
                )

    # ------------------------------------------------------------------
    # Compute streams: one (channel, e-group) step = 12 FFMAs + 12 LDS
    # ------------------------------------------------------------------
    def ffma_group(self, blk: int, g: int) -> list[str]:
        lines = []
        for j in range(6):
            e = 6 * g + j
            fil = self.fil_frag(blk, j)
            i0 = self.in_frag(blk, j)
            a0, a1 = self.acc(e, 0), self.acc(e, 1)
            lines.append(f"FFMA R{a0}, R{i0}, R{fil}.reuse, R{a0};")
            lines.append(f"FFMA R{a1}, R{i0 + 1}, R{fil}, R{a1};")
        return lines

    def lds_group(self, blk: int, c: int, g: int) -> list[str]:
        """Fragments for channel-step *c*, element group *g* (e = 6g..6g+5)."""
        bar = 2 + blk
        lines = []
        for j in range(6):
            e = 6 * g + j
            imm = e * (BC * BN * 4) + c * (BN * 4)
            lines.append(
                f"{self._ctl(wbar=bar)} LDS.64 R{self.in_frag(blk, j)}, "
                f"[R{self.LDS_IN} + {imm:#x}];"
            )
        for j in range(6):
            e = 6 * g + j
            imm = c * (self.E * self.bk * 4) + e * (self.bk * 4)
            lines.append(
                f"{self._ctl(wbar=bar)} LDS.32 R{self.fil_frag(blk, j)}, "
                f"[R{self.LDS_FIL} + {imm:#x}];"
            )
        return lines

    # ------------------------------------------------------------------
    # Global prefetch: 18 filter LDGs + 36 predicated input LDGs
    # ------------------------------------------------------------------
    def ldg_stream(self) -> list[str]:
        p = self.prob
        lines = []
        first = True
        for i in range(18):
            imm = 4 * p.k * 16 * i
            wait = 1 << 4 if first else 0  # WAR with last body's STS (B4)
            first = False
            lines.append(
                f"{self._ctl(wait=wait, wbar=1)} LDG.E R{self.pf_fil + i}, "
                f"[R{self.PTR_FIL} + {imm:#x}];"
            )
        for x in range(6):
            if self.t.use_p2r:
                if x < 5:
                    lines.append(
                        f"SHF.R.U32 R{self.TMP[0]}, R{self.MASK}, "
                        f"{6 * x:#x}, RZ;"
                    )
                else:
                    # Row 5 straddles the mask words: (M0 >> 30) | (M1 << 2).
                    lines.append(
                        f"SHF.R.U32 R{self.TMP[0]}, R{self.MASK}, 0x1e, RZ;"
                    )
                    lines.append(
                        f"SHF.L.U32 R{self.TMP[1]}, R{self.MASK_HI}, 0x2, RZ;"
                    )
                    lines.append(
                        f"LOP3.OR R{self.TMP[0]}, R{self.TMP[0]}, "
                        f"R{self.TMP[1]}, RZ;"
                    )
                lines.append(f"R2P R{self.TMP[0]}, 0x3f;")
            else:
                # Ablation: recompute the row/column predicates in-loop
                # (MASK/TMP1 hold h0/w0).  P6 is free here — the loop
                # trip-count ISETP runs later in the body.
                lines.append(f"IADD3 R{self.TMP[0]}, R{self.MASK}, {x:#x}, RZ;")
                lines.append(
                    f"ISETP.LT.U32.AND P6, PT, R{self.TMP[0]}, "
                    f"{p.h:#x}, PT;"
                )
                for y in range(6):
                    lines.append(
                        f"IADD3 R{self.TMP[0]}, R{self.TMP[1]}, {y:#x}, RZ;"
                    )
                    lines.append(
                        f"ISETP.LT.U32.AND P{y}, PT, R{self.TMP[0]}, "
                        f"{p.w:#x}, P6;"
                    )
            for y in range(6):
                imm = 4 * (x * p.w + y) * p.n
                lines.append(
                    f"{self._ctl(wbar=0)} @P{y} LDG.E R{self.pf_in + 6 * x + y}, "
                    f"[R{self.PTR_IN} + {imm:#x}];"
                )
        return lines

    # ------------------------------------------------------------------
    # ITF: BᵀdB on the prefetched 6×6 window, entirely in registers.
    # Column pass scratch = the 36 fragment registers (dead once the
    # last step's FFMAs have issued); outputs land in ``itf_out``.
    # ------------------------------------------------------------------
    def itf_stream(self) -> list[str]:
        d = lambda x, y: self.pf_in + 6 * x + y  # read-only (masked zeros)
        s1 = lambda x, y: self.frag + 6 * x + y
        out = lambda x, y: self.itf_out + 6 * x + y
        lines: list[str] = []
        first_ctl = self._ctl(wait=1 << 0)  # prefetched input landed
        for x in range(6):
            for y in range(6):
                terms = [
                    (d(i, y), self.bt[x][i])
                    for i in range(6) if self.bt[x][i] != 0.0
                ]
                ctl = first_ctl if (x == 0 and y == 0) else ""
                self._emit_lincomb(lines, s1(x, y), terms, ctl=ctl)
        for x in range(6):
            for y in range(6):
                terms = [
                    (s1(x, j), self.bt[y][j])
                    for j in range(6) if self.bt[y][j] != 0.0
                ]
                self._emit_lincomb(lines, out(x, y), terms)
        return lines

    # ------------------------------------------------------------------
    # STS streams (B4 read barrier guards the WAR with the next prefetch)
    # ------------------------------------------------------------------
    def sts_filter_stream(self) -> list[str]:
        lines = []
        first = True
        for i in range(18):
            imm = THREADS * 4 * i  # flat (c·36+e) index advances by 256
            wait = 1 << 1 if first else 0
            first = False
            lines.append(
                f"{self._ctl(wait=wait, rbar=4)} STS "
                f"[R{self.STS_FIL} + {imm:#x}], R{self.pf_fil + i};"
            )
        return lines

    def sts_input_stream(self) -> list[str]:
        lines = []
        for e in range(self.E):
            imm = e * (BC * BN * 4)
            lines.append(
                f"{self._ctl(rbar=4)} STS [R{self.STS_IN} + {imm:#x}], "
                f"R{self.itf_out + e};"
            )
        return lines

    # ------------------------------------------------------------------
    # Prologue
    # ------------------------------------------------------------------
    def prologue(self) -> list[str]:
        p = self.prob
        L: list[str] = []
        T = lambda i: self.pf_in + i  # scratch; zeroed before first use

        L.append(f"S2R R{T(0)}, SR_TID.X;")
        L.append(f"S2R R{T(2)}, SR_CTAID.X;")  # tile block tb
        L.append(f"S2R R{T(3)}, SR_CTAID.Y;")  # filter block kb
        L.append(f"LOP3.AND R{T(1)}, R{T(0)}, 0x1f, RZ;")  # staging tile slot
        L.append(f"SHF.R.U32 R{T(4)}, R{T(0)}, 0x5, RZ;")  # staging channel c'

        # Staging tile id g = tb·32 + slot → (n, w̃, h̃).
        L.append(f"IMAD R{T(5)}, R{T(2)}, 0x20, R{T(1)};")
        self._emit_udiv(L, T(6), T(5), p.n, T(8))
        self._emit_mod(L, T(7), T(5), T(6), p.n)
        self._emit_udiv(L, T(10), T(6), self.tw, T(12))
        self._emit_mod(L, T(11), T(6), T(10), self.tw)

        # Input base: in_ptr + 4·(((c'·H + 4h̃−1)·W + 4w̃−1)·N + n).
        L.append(f"IMAD R{T(14)}, R{T(10)}, 0x4, RZ;")
        L.append(f"IADD3 R{T(14)}, R{T(14)}, -1, RZ;")  # h0 = 4h̃ − 1
        L.append(f"IMAD R{T(15)}, R{T(4)}, {p.h:#x}, R{T(14)};")
        L.append(f"IMAD R{T(9)}, R{T(11)}, 0x4, RZ;")
        L.append(f"IADD3 R{T(9)}, R{T(9)}, -1, RZ;")  # w0 = 4w̃ − 1
        L.append(f"IMAD R{T(15)}, R{T(15)}, {p.w:#x}, R{T(9)};")
        L.append(f"IMAD R{T(15)}, R{T(15)}, {p.n:#x}, R{T(7)};")
        L.append(f"MOV R{self.PTR_IN}, c[0x0][0x160];")
        L.append(f"MOV R{self.PTR_IN + 1}, c[0x0][0x164];")
        L.append(f"IMAD.WIDE R{self.PTR_IN}, R{T(15)}, 0x4, R{self.PTR_IN};")

        if self.t.use_p2r:
            # 36-bit zero-pad mask: bit 6x+y = rowok(x) & colok(y),
            # packed into MASK (bits 0-31) and MASK_HI (bits 32-35).
            for x in range(6):
                L.append(f"IADD3 R{T(8)}, R{T(14)}, {x:#x}, RZ;")
                L.append(f"ISETP.LT.U32.AND P{x}, PT, R{T(8)}, {p.h:#x}, PT;")
            L.append(f"P2R R{T(8)}, 0x3f;")  # row-ok 6-bit field
            for y in range(6):
                L.append(f"IADD3 R{T(12)}, R{T(9)}, {y:#x}, RZ;")
                L.append(f"ISETP.LT.U32.AND P{y}, PT, R{T(12)}, {p.w:#x}, PT;")
            L.append(f"P2R R{T(13)}, 0x3f;")  # col-ok 6-bit field
            L.append(f"MOV R{self.MASK}, 0x0;")
            L.append(f"MOV R{self.MASK_HI}, 0x0;")
            L.append(f"R2P R{T(8)}, 0x3f;")  # P_x = rowok(x)
            for x in range(5):
                L.append(f"SHF.L.U32 R{T(12)}, R{T(13)}, {6 * x:#x}, RZ;")
                L.append(
                    f"@P{x} LOP3.OR R{self.MASK}, R{self.MASK}, R{T(12)}, RZ;"
                )
            # Row 5 (bits 30-35) straddles the word boundary.
            L.append(f"SHF.L.U32 R{T(12)}, R{T(13)}, 0x1e, RZ;")
            L.append(f"@P5 LOP3.OR R{self.MASK}, R{self.MASK}, R{T(12)}, RZ;")
            L.append(f"SHF.R.U32 R{T(12)}, R{T(13)}, 0x2, RZ;")
            L.append(
                f"@P5 LOP3.OR R{self.MASK_HI}, R{self.MASK_HI}, R{T(12)}, RZ;"
            )
        else:
            L.append(f"MOV R{self.MASK}, R{T(14)};")  # h0
            L.append(f"MOV R{self.TMP[1]}, R{T(9)};")  # w0

        # Filter base: fil_ptr + 4·(q·K + kb·16 + kl), q = t>>4, kl = t&15.
        L.append(f"LOP3.AND R{T(8)}, R{T(0)}, 0xf, RZ;")
        L.append(f"SHF.R.U32 R{T(12)}, R{T(0)}, 0x4, RZ;")
        L.append(f"IMAD R{T(8)}, R{T(3)}, 0x10, R{T(8)};")
        L.append(f"IMAD R{T(8)}, R{T(12)}, {p.k:#x}, R{T(8)};")
        L.append(f"MOV R{self.PTR_FIL}, c[0x0][0x168];")
        L.append(f"MOV R{self.PTR_FIL + 1}, c[0x0][0x16c];")
        L.append(f"IMAD.WIDE R{self.PTR_FIL}, R{T(8)}, 0x4, R{self.PTR_FIL};")

        # STS bases: input at 4·(c'·32 + slot); filter at 4·(q·16 + kl).
        L.append(f"IMAD R{T(8)}, R{T(4)}, 0x20, R{T(1)};")
        L.append(f"SHF.L.U32 R{T(8)}, R{T(8)}, 0x2, RZ;")
        L.append(f"IADD3 R{self.STS_IN}, R{T(8)}, {self.smem_in_base:#x}, RZ;")
        L.append(f"LOP3.AND R{T(8)}, R{T(0)}, 0xf, RZ;")
        L.append(f"IMAD R{T(8)}, R{T(12)}, 0x10, R{T(8)};")
        L.append(f"SHF.L.U32 R{self.STS_FIL}, R{T(8)}, 0x2, RZ;")

        # Fragment LDS bases: pair p = t>>4 (8·p into the input buffer),
        # filter column kl = t&15.
        L.append(f"IMAD R{T(13)}, R{T(12)}, 0x8, RZ;")
        L.append(f"IADD3 R{self.LDS_IN}, R{T(13)}, {self.smem_in_base:#x}, RZ;")
        L.append(f"LOP3.AND R{T(13)}, R{T(0)}, 0xf, RZ;")
        L.append(f"SHF.L.U32 R{self.LDS_FIL}, R{T(13)}, 0x2, RZ;")

        # Zero the accumulators and the statically masked input prefetch.
        for r in range(self.n_acc):
            L.append(f"MOV R{r}, RZ;")
        for e in range(self.E):
            L.append(f"MOV R{self.pf_in + e}, RZ;")
        L.append(f"MOV R{self.ITER}, {self.iters:#x};")
        L.append(f"MOV R{self.TMP[2]}, 0x1;")  # constant 1 for 64-bit bumps
        return L

    # ------------------------------------------------------------------
    # Staging: prefetch → ITF → STS → BAR → first fragment group
    # ------------------------------------------------------------------
    def staging_phase(self) -> list[str]:
        L = list(self.ldg_stream())
        L += self.advance_pointers()
        L += self.itf_stream()
        L += self.sts_filter_stream()
        L += self.sts_input_stream()
        L.append("BAR.SYNC;")  # smem ordering is by MIO issue order
        L += self.lds_group(0, 0, 0)
        return L

    def advance_pointers(self) -> list[str]:
        p = self.prob
        in_step = BC * p.h * p.w * p.n * 4
        fil_step = BC * self.E * p.k * 4
        one = self.TMP[2]
        return [
            f"IMAD.WIDE R{self.PTR_IN}, R{one}, {in_step:#x}, R{self.PTR_IN};",
            f"IMAD.WIDE R{self.PTR_FIL}, R{one}, {fil_step:#x}, R{self.PTR_FIL};",
        ]

    # ------------------------------------------------------------------
    # Main loop body: 48 (channel, e-group) steps, ping-pong fragments
    # ------------------------------------------------------------------
    def loop_body(self) -> list[str]:
        L: list[str] = []
        steps: list[str] = []
        for st in range(47):
            c, g = divmod(st, 6)
            blk = st % 2
            ffmas = self.ffma_group(blk, g)
            ffmas[0] = f"{self._ctl(wait=1 << (2 + blk))} {ffmas[0]}"
            nc, ng = divmod(st + 1, 6)
            steps += weave(ffmas, self.lds_group(1 - blk, nc, ng), 1)
        steps = weave(steps, self.ldg_stream(), self.t.ldg_interleave)
        L += steps

        # Every fragment read is issued; the in-order MIO pipe serves
        # them before any post-barrier STS.
        L.append("BAR.SYNC;")

        # Step 47 computes from buffer 1.  The ITF reuses *all* fragment
        # registers as scratch, so it runs strictly after these FFMAs
        # (in-order issue: their operands are consumed at issue).
        tail = self.ffma_group(1, 5)
        tail[0] = f"{self._ctl(wait=1 << 3)} {tail[0]}"
        L += tail
        L += weave(
            self.itf_stream(), self.sts_filter_stream(), self.t.sts_interleave
        )
        L += self.sts_input_stream()

        L += self.advance_pointers()
        L.append(f"IADD3 R{self.ITER}, R{self.ITER}, -1, RZ;")
        L.append(f"ISETP.NE.AND P6, PT, R{self.ITER}, RZ, PT;")
        L.append("BAR.SYNC;")
        for line in self.lds_group(0, 0, 0):
            L.append(_predicate(line, "P6"))
        L.append("@P6 BRA MAIN_LOOP;")
        return L

    # ------------------------------------------------------------------
    # Epilogue: per-tile register OTF (AᵀMA) + 16 cropped stores
    # ------------------------------------------------------------------
    def epilogue(self) -> list[str]:
        p = self.prob
        L: list[str] = []
        T = lambda i: self.pf_in + i  # prefetch regs are free after the loop
        ADDR = self.PTR_FIL  # per-tile 64-bit output address pair
        s2 = lambda x, y: self.itf_out + 6 * x + y  # 4×6 column-pass output
        o = lambda x, y: self.pf_fil + 4 * x + y  # 4×4 outputs
        oh, ow = p.out_h, p.out_w

        L.append(f"S2R R{T(0)}, SR_TID.X;")
        L.append(f"S2R R{T(2)}, SR_CTAID.X;")
        L.append(f"S2R R{T(3)}, SR_CTAID.Y;")
        L.append(f"LOP3.AND R{T(1)}, R{T(0)}, 0xf, RZ;")  # kl
        L.append(f"SHF.R.U32 R{T(4)}, R{T(0)}, 0x4, RZ;")  # tile pair p
        L.append(f"IMAD R{T(5)}, R{T(3)}, 0x10, R{T(1)};")  # k = kb·16 + kl

        for u in range(2):
            # Tile id g = tb·32 + 2p + u → (n, w̃, h̃), output origin.
            L.append(f"IMAD R{T(6)}, R{T(4)}, 0x2, RZ;")
            if u:
                L.append(f"IADD3 R{T(6)}, R{T(6)}, 0x1, RZ;")
            L.append(f"IMAD R{T(6)}, R{T(2)}, 0x20, R{T(6)};")
            self._emit_udiv(L, T(7), T(6), p.n, T(8))
            self._emit_mod(L, T(9), T(6), T(7), p.n)
            self._emit_udiv(L, T(10), T(7), self.tw, T(12))
            self._emit_mod(L, T(11), T(7), T(10), self.tw)
            L.append(f"IMAD R{T(12)}, R{T(10)}, 0x4, RZ;")  # oy = 4h̃
            L.append(f"IMAD R{T(13)}, R{T(11)}, 0x4, RZ;")  # ox = 4w̃
            L.append(f"IMAD R{T(14)}, R{T(5)}, {oh:#x}, R{T(12)};")
            L.append(f"IMAD R{T(14)}, R{T(14)}, {ow:#x}, R{T(13)};")
            L.append(f"IMAD R{T(14)}, R{T(14)}, {p.n:#x}, R{T(9)};")
            L.append(f"MOV R{ADDR}, c[0x0][0x170];")
            L.append(f"MOV R{ADDR + 1}, c[0x0][0x174];")
            L.append(f"IMAD.WIDE R{ADDR}, R{T(14)}, 0x4, R{ADDR};")

            # Column-crop predicates (column 0 is valid by construction).
            for dx in range(1, 4):
                L.append(f"IADD3 R{T(15)}, R{T(13)}, {dx:#x}, RZ;")
                L.append(
                    f"ISETP.LT.AND P{dx - 1}, PT, R{T(15)}, {ow:#x}, PT;"
                )

            # Column pass S = Aᵀ·M with M[i][y] = acc(6i+y, u).  The
            # first write reuses registers the last iteration's STS read
            # (read barrier B4), so it waits for those stores.
            for x in range(4):
                for y in range(6):
                    terms = [
                        (self.acc(6 * i + y, u), self.at[x][i])
                        for i in range(6) if self.at[x][i] != 0.0
                    ]
                    ctl = (
                        self._ctl(wait=1 << 4)
                        if (u == 0 and x == 0 and y == 0) else ""
                    )
                    self._emit_lincomb(L, s2(x, y), terms, ctl=ctl)
            # Row pass O = S·A.  Tile 1 overwrites the registers tile
            # 0's STG.E reads (read barrier B5), so its first write
            # waits for those stores to drain.
            for x in range(4):
                for y in range(4):
                    terms = [
                        (s2(x, j), self.at[y][j])
                        for j in range(6) if self.at[y][j] != 0.0
                    ]
                    ctl = (
                        self._ctl(wait=1 << 5)
                        if (u == 1 and x == 0 and y == 0) else ""
                    )
                    self._emit_lincomb(L, o(x, y), terms, ctl=ctl)

            # Cropped stores (the F(4×4) overcompute, §7.3 generalized):
            # row 0 / column 0 always land; rows combine with the column
            # predicates via the clear-then-@OR trick.
            for dy in range(4):
                if dy == 0:
                    guards = ["", "@P0 ", "@P1 ", "@P2 "]
                else:
                    L.append(f"IADD3 R{T(15)}, R{T(12)}, {dy:#x}, RZ;")
                    L.append(
                        f"ISETP.LT.AND P3, PT, R{T(15)}, {oh:#x}, PT;"
                    )
                    for i in range(3):
                        L.append(f"ISETP.NE.AND P{4 + i}, PT, RZ, RZ, PT;")
                        L.append(
                            f"@P{i} ISETP.NE.OR P{4 + i}, PT, RZ, RZ, P3;"
                        )
                    guards = ["@P3 ", "@P4 ", "@P5 ", "@P6 "]
                for dx in range(4):
                    imm = 4 * (dy * ow + dx) * p.n
                    L.append(
                        f"{self._ctl(rbar=5)} {guards[dx]}STG.E "
                        f"[R{ADDR} + {imm:#x}], R{o(dy, dx)};"
                    )
        L.append(f"{self._ctl(wait=1 << 5)} EXIT;")
        return L

    # ------------------------------------------------------------------
    # Whole-kernel assembly
    # ------------------------------------------------------------------
    def source(self, main_loop_only: bool = False, iters: int | None = None) -> str:
        name = f"winograd_f44_bk{self.bk}"
        header = [
            f".kernel {name}",
            f".registers {self.num_regs}",
            f".smem {self.launch_smem_bytes}",
            ".param 8 in_ptr",
            ".param 8 fil_ptr",
            ".param 8 out_ptr",
        ]
        body: list[str] = []
        body += self.prologue()
        if iters is not None:
            body.append(f"MOV R{self.ITER}, {iters:#x};")
        body += self.staging_phase()
        body.append("MAIN_LOOP:")
        body += self.loop_body()
        if main_loop_only:
            body.append("EXIT;")
        else:
            body += self.epilogue()
        lines = apply_yield_strategy(body, self.t.yield_strategy)
        return "\n".join(header + lines)

    def build(
        self, main_loop_only: bool = False, iters: int | None = None
    ) -> AssembledKernel:
        return assemble(self.source(main_loop_only, iters), auto_schedule=True)

    # ------------------------------------------------------------------
    # Launch helpers
    # ------------------------------------------------------------------
    @property
    def grid(self) -> tuple[int, int]:
        return (self.total_tiles // BN, self.prob.k // self.bk)

    def alloc_buffers(self, gmem, x_chwn: np.ndarray, f_transformed: np.ndarray):
        """Allocate padded device buffers; returns (params, out_ptr).

        As for F(2×2): one extra ``bc`` channel block of zeros pads both
        operands so the final iteration's unconditional prefetch stays
        in bounds (the prefetched data is never consumed).
        """
        p = self.prob
        pad_in = np.zeros((BC, p.h, p.w, p.n), dtype=np.float32)
        pad_fil = np.zeros((BC, 6, 6, p.k), dtype=np.float32)
        in_ptr = gmem.alloc_array(
            np.concatenate([x_chwn.astype(np.float32), pad_in], axis=0)
        )
        fil_ptr = gmem.alloc_array(
            np.concatenate([f_transformed.astype(np.float32), pad_fil], axis=0),
            l2_resident=True,
        )
        out_ptr = gmem.alloc(p.k * p.out_h * p.out_w * p.n * 4)
        params = {"in_ptr": in_ptr, "fil_ptr": fil_ptr, "out_ptr": out_ptr}
        return params, out_ptr


def kernel_for_tile(
    prob: ConvProblem,
    tile: TileSpec | str | None = None,
    tunables: Tunables | None = None,
):
    """The family generator for *tile*: F(2×2) (default) or F(4×4)."""
    spec = get_tile(tile)
    if spec.m == 2:
        return WinogradF22Kernel(prob, tunables or Tunables())
    if spec.m == 4:
        return WinogradF44Kernel(prob, tunables or F44Tunables())
    raise ConvConfigError(
        f"no SASS generator for tile family {spec.name!r} "
        f"(F({spec.m}x{spec.m},{spec.r}x{spec.r}))"
    )


def _predicate(line: str, pred: str) -> str:
    """Guard an emitted line with @pred (after any control prefix)."""
    text = line.strip()
    if text.startswith("["):
        end = text.index("]") + 1
        return f"{text[:end]} @{pred} {text[end:].strip()}"
    return f"@{pred} {text}"
