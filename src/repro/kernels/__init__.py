"""SASS kernel generators and simulator runners (the paper's kernels)."""

from .cache import (
    BuildKey,
    KernelBuildCache,
    KernelCacheStats,
    SimCacheStats,
    build_fused_kernel,
    clear_kernel_cache,
    clear_simulation_cache,
    code_fingerprint,
    get_kernel_cache_stats,
    get_sim_cache_stats,
    reset_kernel_cache_stats,
    reset_sim_cache_stats,
    set_kernel_cache_limit,
)
from .ftf import TILES_PER_BLOCK, FilterTransformKernel
from .gemm import BM, BN_GEMM, E_PER_BLOCK, BatchedGemmKernel
from .runner import (
    MainLoopMeasurement,
    measure_main_loop,
    run_fused_sass_conv,
)
from .schedules import (
    YIELD_STRATEGIES,
    apply_yield_strategy,
    is_float_line,
    weave,
)
from .winograd_f22 import BC, BN, THREADS, WARPS, Tunables, WinogradF22Kernel

__all__ = [
    "BC",
    "BM",
    "BN",
    "BN_GEMM",
    "BatchedGemmKernel",
    "BuildKey",
    "E_PER_BLOCK",
    "FilterTransformKernel",
    "KernelBuildCache",
    "KernelCacheStats",
    "MainLoopMeasurement",
    "SimCacheStats",
    "THREADS",
    "TILES_PER_BLOCK",
    "Tunables",
    "WARPS",
    "WinogradF22Kernel",
    "YIELD_STRATEGIES",
    "apply_yield_strategy",
    "build_fused_kernel",
    "clear_kernel_cache",
    "clear_simulation_cache",
    "code_fingerprint",
    "get_kernel_cache_stats",
    "get_sim_cache_stats",
    "is_float_line",
    "measure_main_loop",
    "reset_kernel_cache_stats",
    "reset_sim_cache_stats",
    "run_fused_sass_conv",
    "set_kernel_cache_limit",
    "weave",
]
