"""SASS kernel generators and simulator runners (the paper's kernels)."""

from .ftf import TILES_PER_BLOCK, FilterTransformKernel
from .gemm import BM, BN_GEMM, E_PER_BLOCK, BatchedGemmKernel
from .runner import (
    MainLoopMeasurement,
    measure_main_loop,
    run_fused_sass_conv,
)
from .schedules import (
    YIELD_STRATEGIES,
    apply_yield_strategy,
    is_float_line,
    weave,
)
from .winograd_f22 import BC, BN, THREADS, WARPS, Tunables, WinogradF22Kernel

__all__ = [
    "BC",
    "BM",
    "BN",
    "BN_GEMM",
    "BatchedGemmKernel",
    "E_PER_BLOCK",
    "FilterTransformKernel",
    "MainLoopMeasurement",
    "THREADS",
    "TILES_PER_BLOCK",
    "Tunables",
    "WARPS",
    "WinogradF22Kernel",
    "YIELD_STRATEGIES",
    "apply_yield_strategy",
    "is_float_line",
    "measure_main_loop",
    "run_fused_sass_conv",
    "weave",
]
