"""Compatibility shim: the F(2×2, 3×3) generator moved to
``repro.kernels.winograd_fused`` when the kernel layer was generalized
over :class:`~repro.winograd.tilespec.TileSpec` families.

Import from :mod:`repro.kernels.winograd_fused` (or the package root)
in new code; this module re-exports the historical names so existing
imports keep working.
"""

from __future__ import annotations

from .winograd_fused import (  # noqa: F401
    BC,
    BN,
    THREADS,
    WARPS,
    F44Tunables,
    Tunables,
    WinogradF22Kernel,
    WinogradF44Kernel,
    _magic_u32,
    _predicate,
    default_tunables,
    kernel_for_tile,
)

__all__ = [
    "BC",
    "BN",
    "THREADS",
    "WARPS",
    "F44Tunables",
    "Tunables",
    "WinogradF22Kernel",
    "WinogradF44Kernel",
    "default_tunables",
    "kernel_for_tile",
]
