"""Build-once/run-many caching for the simulation pipeline.

Every Fig. 7-13 experiment used to re-parse, re-schedule and re-assemble
the same SASS kernels from scratch — once for the long differential run,
once for the short one, and again for every repeated sweep.  This module
gives the hot path the same build-once/run-many structure that maxDNN
and the Volta tensor-core generators use for their compiled kernels:

* :class:`KernelBuildCache` — a thread-safe LRU of assembled kernels
  keyed by ``(ConvProblem, Tunables, device, main_loop_only, iters)``.
  A hit returns the exact
  :class:`~repro.sass.assembler.AssembledKernel` object that the first
  build produced (the simulator never mutates instructions, so sharing
  is safe), which means the long/short differential runs and repeated
  bench sweeps assemble each kernel exactly once per process.

* :class:`SimulationCache` — a memo for *deterministic* simulation
  results (``LaunchResult`` payloads).  The simulator is a pure
  function of (kernel, device, buffer layout), so a measurement keyed
  by its full input signature **and** a fingerprint of the generator +
  simulator source files can be replayed bit-identically.  The memory
  tier is always available; a disk tier activates when
  ``REPRO_SIM_CACHE_DIR`` points somewhere (the benchmark suite sets it
  to ``benchmarks/.simcache``), making repeated sweeps nearly free.

Both caches are owned by an :class:`repro.runtime.ExecutionContext`
(one pair per context; the module-level helpers operate on the active
context, which is the process-wide default unless one is activated).
They expose hit/miss/eviction counters next to the PR-1 dispatch
metrics (``get_kernel_cache_stats`` / ``get_sim_cache_stats``) and obey
kill switches (``REPRO_KERNEL_CACHE=0`` / ``REPRO_SIM_CACHE=0``) so the
uncached serial path stays one environment variable away.

See ``docs/simulation_performance.md`` for keys, invalidation and the
determinism guarantees.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import json
import os
import tempfile
import threading

from ..common.problem import ConvProblem
from ..sass.assembler import AssembledKernel
from ..sass.encoder import INSTRUCTION_BYTES, encode_instruction
from ..sass.operands import Imm
from ..winograd.tilespec import get_tile
from .winograd_fused import Tunables, default_tunables, kernel_for_tile

_SCHEMA_VERSION = 1  # bump to invalidate every persisted payload

# ---------------------------------------------------------------------------
# Source fingerprint: any edit to the generator / assembler / simulator
# invalidates persisted simulation results automatically.
# ---------------------------------------------------------------------------
_FINGERPRINT_DIRS = ("gpusim", "sass")
_FINGERPRINT_FILES = (
    "common/problem.py",
    "kernels/cache.py",
    "kernels/runner.py",
    "kernels/schedules.py",
    "kernels/winograd_f22.py",
    "kernels/winograd_fused.py",
    "perfmodel/layer_model.py",
)

_fingerprint_lock = threading.Lock()
_fingerprint: str | None = None


def code_fingerprint() -> str:
    """SHA-256 over the source files that determine simulation results."""
    global _fingerprint
    with _fingerprint_lock:
        if _fingerprint is not None:
            return _fingerprint
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = []
        for sub in _FINGERPRINT_DIRS:
            base = os.path.join(root, sub)
            for name in sorted(os.listdir(base)):
                if name.endswith(".py"):
                    paths.append(os.path.join(base, name))
        paths.extend(os.path.join(root, rel) for rel in _FINGERPRINT_FILES)
        digest = hashlib.sha256()
        digest.update(str(_SCHEMA_VERSION).encode())
        for path in paths:
            digest.update(path.rsplit(os.sep + "repro" + os.sep, 1)[-1].encode())
            with open(path, "rb") as fh:
                digest.update(fh.read())
        _fingerprint = digest.hexdigest()
        return _fingerprint


def _env_enabled(name: str) -> bool:
    return os.environ.get(name, "1").lower() not in ("0", "false", "off", "no")


# ---------------------------------------------------------------------------
# Kernel build cache
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class BuildKey:
    """Identity of one generated-and-assembled kernel."""

    prob: ConvProblem
    tunables: Tunables
    device: str
    main_loop_only: bool = False
    iters: int | None = None
    tile: str = "f22"


@dataclasses.dataclass
class KernelCacheStats:
    """Counters for :class:`KernelBuildCache` (queryable at runtime)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    builds: int = 0  # assembler passes actually performed via the cache
    size: int = 0
    max_entries: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class KernelBuildCache:
    """Thread-safe LRU of assembled kernels, keyed by :class:`BuildKey`."""

    def __init__(self, max_entries: int = 64):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._lock = threading.RLock()
        self._entries: collections.OrderedDict = collections.OrderedDict()
        self._max_entries = max_entries
        self._stats = KernelCacheStats(max_entries=max_entries)

    def get_or_build(self, key: BuildKey, builder):
        """Return the cached kernel for *key*, building (once) on a miss."""
        with self._lock:
            kernel = self._entries.get(key)
            if kernel is not None:
                self._entries.move_to_end(key)
                self._stats.hits += 1
                return kernel
            self._stats.misses += 1
        # Build outside the lock: assembly is the expensive part and must
        # not serialize concurrent builders of *different* kernels.
        kernel = builder()
        with self._lock:
            self._stats.builds += 1
            if key not in self._entries:
                self._entries[key] = kernel
                while len(self._entries) > self._max_entries:
                    self._entries.popitem(last=False)
                    self._stats.evictions += 1
            return self._entries[key]

    def find_family_member(self, key: BuildKey):
        """A cached ``(iters, kernel)`` differing from *key* only in ``iters``.

        Used to derive trip-count variants without a full assembler pass
        (see :func:`_reiterate_kernel`); returns ``None`` when no sibling
        with a concrete ``iters`` is cached.
        """
        with self._lock:
            for k in reversed(self._entries):
                if (
                    isinstance(k, BuildKey)
                    and k.iters is not None
                    and k.iters != key.iters
                    and k.prob == key.prob
                    and k.tunables == key.tunables
                    and k.device == key.device
                    and k.main_loop_only == key.main_loop_only
                    and k.tile == key.tile
                ):
                    return k.iters, self._entries[k]
        return None

    def set_limit(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        with self._lock:
            self._max_entries = max_entries
            self._stats.max_entries = max_entries
            while len(self._entries) > max_entries:
                self._entries.popitem(last=False)
                self._stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> KernelCacheStats:
        with self._lock:
            snap = dataclasses.replace(self._stats)
            snap.size = len(self._entries)
            return snap

    def reset_stats(self) -> None:
        with self._lock:
            self._stats = KernelCacheStats(max_entries=self._max_entries)


def _ctx(context=None):
    """The explicit context if given, else the active/default one."""
    if context is not None:
        return context
    from ..runtime import current_context

    return current_context()


def _reiterate_kernel(
    kernel: AssembledKernel, iter_reg: int, old_iters: int, new_iters: int
) -> AssembledKernel | None:
    """Derive an ``iters=new_iters`` build from an assembled sibling.

    Builds of one (problem, tunables, device, build mode) family differ
    in exactly one instruction: the ``MOV R_iter, <imm>`` trip-count
    override emitted after the prologue.  Cloning the sibling with that
    immediate swapped and the one 16-byte word re-encoded in place is
    bit-identical to a fresh assembler pass (the hazard pass keys on
    registers, never immediate values) at none of the cost.  Returns
    ``None`` if the override cannot be located (caller falls back to a
    full build).
    """
    idx = None
    for pos, instr in enumerate(kernel.instructions):
        if (
            instr.name == "MOV"
            and not instr.flags
            and instr.dest is not None
            and instr.dest.index == iter_reg
            and len(instr.srcs) == 1
            and isinstance(instr.srcs[0], Imm)
            and instr.srcs[0].value == old_iters
        ):
            idx = pos  # keep the last match: the post-prologue override
    if idx is None:
        return None
    old = kernel.instructions[idx]
    patched = dataclasses.replace(
        old,
        srcs=(Imm(new_iters),),
        control=dataclasses.replace(old.control),
    )
    instructions = list(kernel.instructions)
    instructions[idx] = patched
    text = bytearray(kernel.text)
    word = encode_instruction(patched)
    text[idx * INSTRUCTION_BYTES : (idx + 1) * INSTRUCTION_BYTES] = (
        word.to_bytes(INSTRUCTION_BYTES, "little")
    )
    derived = AssembledKernel(
        meta=kernel.meta,
        instructions=instructions,
        labels=kernel.labels,
        text=bytes(text),
    )
    # Seed the simulator's decode cache from the sibling's decode too:
    # everything but the patched immediate carries over.
    from ..gpusim.decode import derive_decode

    derive_decode(kernel.instructions, instructions, idx)
    return derived


def build_fused_kernel(
    prob: ConvProblem,
    tunables: Tunables | None,
    device_name: str,
    main_loop_only: bool = False,
    iters: int | None = None,
    *,
    tile: str | None = None,
    context=None,
):
    """Assemble (or fetch) the fused Winograd kernel for one problem.

    The single entry point the runner, layer model and benchmarks use.
    *tile* selects the kernel family (``"f22"`` default, ``"f44"`` for
    the F(4x4,3x3) generator); tunables default per family via
    :func:`~repro.kernels.winograd_fused.default_tunables`.  The build
    cache lives on the :class:`~repro.runtime.ExecutionContext`
    (*context*, default: the current one); ``REPRO_KERNEL_CACHE=0``
    bypasses it and rebuilds every call (the uncached baseline path).
    Every actual assembler pass records a ``"build"`` trace span.  When a
    sibling differing only in ``iters`` is already cached, the kernel is
    derived from it by patching the trip-count immediate instead of
    assembling from scratch (see :func:`_reiterate_kernel`).
    """
    ctx = _ctx(context)
    spec = get_tile(tile)
    tunables = tunables or default_tunables(spec)

    def _full_build():
        with ctx.span(
            "build", prob.label(), device=device_name,
            main_loop_only=main_loop_only, tile=spec.name,
        ):
            return kernel_for_tile(prob, spec, tunables).build(
                main_loop_only, iters
            )

    if not _env_enabled("REPRO_KERNEL_CACHE"):
        return _full_build()
    key = BuildKey(prob, tunables, device_name, main_loop_only, iters, spec.name)

    def _build():
        if iters is not None:
            found = ctx.kernel_cache.find_family_member(key)
            if found is not None:
                sib_iters, sib = found
                iter_reg = kernel_for_tile(prob, spec, tunables).ITER
                derived = _reiterate_kernel(sib, iter_reg, sib_iters, iters)
                if derived is not None:
                    return derived
        return _full_build()

    return ctx.kernel_cache.get_or_build(key, _build)


def get_kernel_cache_stats(context=None) -> KernelCacheStats:
    """Snapshot of the build-cache counters (independent of the live object)."""
    return _ctx(context).kernel_cache.stats()


def reset_kernel_cache_stats(context=None) -> None:
    _ctx(context).kernel_cache.reset_stats()


def clear_kernel_cache(context=None) -> None:
    _ctx(context).kernel_cache.clear()


def set_kernel_cache_limit(max_entries: int, context=None) -> None:
    _ctx(context).kernel_cache.set_limit(max_entries)


# ---------------------------------------------------------------------------
# Simulation-result cache
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class SimCacheStats:
    """Counters for :class:`SimulationCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    size: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SimulationCache:
    """Two-tier (memory + optional disk) memo for simulation payloads.

    Values are plain JSON dicts; keys are produced by
    :func:`sim_cache_key`, which folds in :func:`code_fingerprint` so a
    change to any generator/simulator source file invalidates every
    previously persisted result.
    """

    def __init__(self, max_entries: int = 512):
        self._lock = threading.RLock()
        self._entries: collections.OrderedDict = collections.OrderedDict()
        self._max_entries = max_entries
        self._stats = SimCacheStats()

    # -- disk tier -----------------------------------------------------
    @staticmethod
    def _disk_dir() -> str | None:
        if not _env_enabled("REPRO_SIM_CACHE"):
            return None
        return os.environ.get("REPRO_SIM_CACHE_DIR") or None

    def _disk_path(self, key: str) -> str | None:
        base = self._disk_dir()
        if base is None:
            return None
        return os.path.join(base, key[:2], f"{key}.json")

    def _disk_read(self, key: str):
        path = self._disk_path(key)
        if path is None:
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None  # missing or corrupt → plain miss

    def _disk_write(self, key: str, value: dict) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(value, fh)
            os.replace(tmp, path)  # atomic: safe under parallel workers
        except OSError:
            pass  # persistence is best-effort; the memory tier still hit

    # -- public API ----------------------------------------------------
    def get(self, key: str):
        if not _env_enabled("REPRO_SIM_CACHE"):
            return None
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self._stats.memory_hits += 1
                return value
        value = self._disk_read(key)
        with self._lock:
            if value is not None:
                self._stats.disk_hits += 1
                self._remember(key, value)
            else:
                self._stats.misses += 1
        return value

    def put(self, key: str, value: dict) -> None:
        if not _env_enabled("REPRO_SIM_CACHE"):
            return
        with self._lock:
            self._stats.stores += 1
            self._remember(key, value)
        self._disk_write(key, value)

    def _remember(self, key: str, value: dict) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
            self._stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> SimCacheStats:
        with self._lock:
            snap = dataclasses.replace(self._stats)
            snap.size = len(self._entries)
            return snap

    def reset_stats(self) -> None:
        with self._lock:
            self._stats = SimCacheStats()


def sim_cache_key(site: str, **params) -> str:
    """Stable key for one simulation call site and its full input signature.

    ``params`` must be JSON-serializable; dataclasses (``ConvProblem``,
    ``Tunables``, ``DeviceSpec``) are flattened with ``asdict`` so every
    field participates in the identity.
    """
    def normalize(value):
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return dataclasses.asdict(value)
        return value

    payload = {name: normalize(value) for name, value in params.items()}
    blob = json.dumps(
        {"site": site, "params": payload, "fingerprint": code_fingerprint()},
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def simulation_cache(context=None) -> SimulationCache:
    """The current context's simulation-result cache."""
    return _ctx(context).sim_cache


def get_sim_cache_stats(context=None) -> SimCacheStats:
    return _ctx(context).sim_cache.stats()


def reset_sim_cache_stats(context=None) -> None:
    _ctx(context).sim_cache.reset_stats()


def clear_simulation_cache(context=None) -> None:
    _ctx(context).sim_cache.clear()
