"""Instruction scheduling machinery for generated kernels (paper §6).

The paper's SASS-level studies are all about *where* non-FFMA
instructions sit inside the FFMA stream:

* LDG interleaving — cuDNN places an LDG every 2 FFMAs; the paper's
  kernel every 8 (Fig. 8, up to 1.24×);
* STS interleaving — 2 (cuDNN/NVCC heuristic) vs 6 (Fig. 9, +2%);
* the yield flag — NVCC clears the "stay" bit every 8 float
  instructions, cuDNN every 7, the paper's kernel never (Fig. 7, ~1.1×).

:func:`weave` merges a primary instruction stream with side streams at a
given spacing; :func:`apply_yield_strategy` post-processes a line list
to scatter yield flags the way each producer does.
"""

from __future__ import annotations

from typing import Iterable, Sequence

YIELD_STRATEGIES = ("natural", "nvcc8", "cudnn7")

_FLOAT_MNEMONICS = ("FFMA", "FADD", "FMUL", "FMNMX")


def weave(
    primary: Sequence[str],
    side: Sequence[str],
    spacing: int,
    start: int = 0,
) -> list[str]:
    """Insert one side instruction after every ``spacing`` primary ones.

    A primary line carrying a ``.reuse`` flag is never split from its
    successor: the register reuse cache only survives back-to-back
    issues from the same warp (§5.2.2), so an interposed instruction
    would reintroduce the bank conflict the flag exists to remove.

    If the side stream is longer than the primary stream allows, the
    remainder is appended at the end (the generator sizes streams so
    this does not happen in the main loop).
    """
    out: list[str] = []
    side_iter = iter(side)
    pending = next(side_iter, None)
    count = -start
    for line in primary:
        out.append(line)
        count += 1
        if pending is not None and count >= spacing and ".reuse" not in line:
            out.append(pending)
            pending = next(side_iter, None)
            count = 0
    while pending is not None:
        out.append(pending)
        pending = next(side_iter, None)
    return out


def is_float_line(line: str) -> bool:
    text = line.strip()
    if text.startswith("["):
        text = text[text.index("]") + 1 :].strip()
    if text.startswith("@"):
        text = text.split(None, 1)[1] if " " in text else text
    return text.startswith(_FLOAT_MNEMONICS)


def apply_yield_strategy(lines: Iterable[str], strategy: str) -> list[str]:
    """Scatter yield flags over a source listing.

    ``natural``  — leave every instruction's stay bit alone (the paper);
    ``nvcc8``    — request a warp switch every 8 float instructions;
    ``cudnn7``   — every 7 (the cuDNN heuristic the paper infers).

    Lines must carry no explicit control prefix for the flag to be
    injected (the generator emits controls separately); lines that do
    have a prefix keep it.
    """
    if strategy not in YIELD_STRATEGIES:
        raise ValueError(f"unknown yield strategy {strategy!r}; use {YIELD_STRATEGIES}")
    if strategy == "natural":
        return list(lines)
    period = 8 if strategy == "nvcc8" else 7
    out: list[str] = []
    float_seen = 0
    for line in lines:
        if is_float_line(line):
            float_seen += 1
            if float_seen % period == 0:
                line = _set_yield(line)
        out.append(line)
    return out


def _set_yield(line: str) -> str:
    text = line.strip()
    indent = line[: len(line) - len(text)]
    if text.startswith("["):
        end = text.index("]")
        control = text[: end + 1]
        rest = text[end + 1 :]
        # control format [B......:R.:W.:<Y|->:Sxx] — flip the yield char.
        parts = control[1:-1].split(":")
        parts[3] = "Y"
        return f"{indent}[{':'.join(parts)}]{rest}"
    return f"{indent}[B------:R-:W-:Y:S01] {text}"


def round_robin_slots(total_slots: int, items: int) -> list[int]:
    """Evenly spread ``items`` insertion points over ``total_slots``."""
    if items <= 0:
        return []
    step = total_slots / items
    return [int(step * (i + 1)) - 1 for i in range(items)]
