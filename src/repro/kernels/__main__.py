"""Kernel generation CLI.

Dump the paper's kernels as SASS source or assembled cubins:

    python -m repro.kernels winograd --layer Conv3 --batch 32 -o conv3.sass
    python -m repro.kernels winograd --layer Conv2 --batch 32 --cubin conv2.cubin \
        --yield-strategy cudnn7 --ldg 2
    python -m repro.kernels ftf --layer Conv4 --batch 32 -o ftf.sass
    python -m repro.kernels gemm --batch 16 --m 64 --n 32 --kd 64 -o gemm.sass

The emitted .sass reassembles with ``python -m repro.sass as``.
"""

from __future__ import annotations

import argparse
import sys

from ..models import resnet_layer
from ..sass.cubin import write_cubin
from .ftf import FilterTransformKernel
from .gemm import BatchedGemmKernel
from .winograd_f22 import Tunables, WinogradF22Kernel


def _tunables(args: argparse.Namespace) -> Tunables:
    return Tunables(
        yield_strategy=args.yield_strategy,
        ldg_interleave=args.ldg,
        sts_interleave=args.sts,
        bk=args.bk,
        smem_layout=args.smem_layout,
        use_p2r=not args.no_p2r,
    )


def _emit(args: argparse.Namespace, generator) -> int:
    if args.cubin:
        kernel = generator.build()
        with open(args.cubin, "wb") as fh:
            fh.write(write_cubin(kernel))
        print(f"{args.cubin}: {kernel.num_instructions} instructions, "
              f"{kernel.meta.registers} registers")
    source = generator.source() if hasattr(generator, "source") else None
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(source + "\n")
        print(f"{args.output}: {len(source.splitlines())} lines of SASS")
    elif not args.cubin:
        print(source)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.kernels",
        description="Generate the paper's SASS kernels",
    )
    parser.add_argument("-o", "--output", help="write SASS source here")
    parser.add_argument("--cubin", help="assemble and write a cubin here")
    sub = parser.add_subparsers(dest="command", required=True)

    common_layer = argparse.ArgumentParser(add_help=False)
    common_layer.add_argument("--layer", default="Conv3",
                              choices=["Conv2", "Conv3", "Conv4", "Conv5"])
    common_layer.add_argument("--batch", type=int, default=32)

    p_w = sub.add_parser("winograd", parents=[common_layer],
                         help="the fused F(2x2,3x3) kernel")
    p_w.add_argument("--yield-strategy", default="natural",
                     choices=["natural", "nvcc8", "cudnn7"])
    p_w.add_argument("--ldg", type=int, default=8)
    p_w.add_argument("--sts", type=int, default=6)
    p_w.add_argument("--bk", type=int, default=64, choices=[32, 64])
    p_w.add_argument("--smem-layout", default="transposed",
                     choices=["transposed", "tile_major"])
    p_w.add_argument("--no-p2r", action="store_true")
    p_w.set_defaults(kind="winograd")

    p_f = sub.add_parser("ftf", parents=[common_layer],
                         help="the filter-transform kernel (§4.1)")
    p_f.set_defaults(kind="ftf")

    p_g = sub.add_parser("gemm", help="the 16-way batched GEMM kernel (§2.3)")
    p_g.add_argument("--batch", type=int, default=16)
    p_g.add_argument("--m", type=int, default=64)
    p_g.add_argument("--n", type=int, default=32)
    p_g.add_argument("--kd", type=int, default=64)
    p_g.set_defaults(kind="gemm")

    args = parser.parse_args(argv)
    if args.kind == "winograd":
        prob = resnet_layer(args.layer, args.batch)
        return _emit(args, WinogradF22Kernel(prob, _tunables(args)))
    if args.kind == "ftf":
        prob = resnet_layer(args.layer, args.batch)
        return _emit(args, FilterTransformKernel(prob))
    return _emit(args, BatchedGemmKernel(args.batch, args.m, args.n, args.kd))


if __name__ == "__main__":
    sys.exit(main())
