"""SASS generator for the filter-transform (FTF) kernel (paper §4.1).

The paper implements the filter transformation ``F̂ = G F Gᵀ`` as a
separate kernel (the "FX variant" of Lavin & Gray): it reads the CRSK
filter tensor, transforms each 3×3 tile with the 4×3 ``G`` of §2.1, and
writes the CR'S'K workspace the fused kernel consumes.

Work decomposition follows §4.1: 256 threads per block, each thread
transforming two (c, k) tiles; consecutive threads handle consecutive
``k``, so every global load and store is a fully coalesced 128-byte
transaction in the k-fastest layouts.  A single predicate guards the
ragged tail when C·K is not a multiple of 512.

The transform is pure register arithmetic (~35 float instructions per
tile with this factorization; the paper counts 28 with a couple more
shared subexpressions).  Either way the kernel is memory-bound — the
FTF point at the far left of Fig. 2 — and a negligible slice of layer
time, which is why the paper fuses everything *except* this step.
"""

from __future__ import annotations

from ..common.errors import ConvConfigError
from ..common.problem import ConvProblem
from ..sass.assembler import AssembledKernel, assemble
from .winograd_f22 import THREADS, _magic_u32

TILES_PER_THREAD = 2
TILES_PER_BLOCK = THREADS * TILES_PER_THREAD  # 512, as in §4.1
_BLOCK_STRIDE = 40  # registers per tile stage


class FilterTransformKernel:
    """Generator + launch helper for one layer's FTF kernel."""

    def __init__(self, prob: ConvProblem):
        if prob.r != 3 or prob.s != 3:
            raise ConvConfigError("the FTF kernel transforms 3×3 filters")
        self.prob = prob
        self.total_tiles = prob.c * prob.k
        self.num_regs = 16 + TILES_PER_THREAD * _BLOCK_STRIDE

    @property
    def grid(self) -> int:
        return -(-self.total_tiles // TILES_PER_BLOCK)

    def source(self) -> str:
        k = self.prob.k
        L = [
            ".kernel winograd_ftf",
            f".registers {self.num_regs}",
            ".param 8 fil_ptr",
            ".param 8 out_ptr",
            "S2R R0, SR_TID.X;",
            "S2R R6, SR_CTAID.X;",
            f"IMAD R1, R6, {TILES_PER_BLOCK:#x}, R0;",
            "MOV R2, param:fil_ptr;",
            "MOV R3, c[0x0][0x164];",
            "MOV R4, param:out_ptr;",
            "MOV R5, c[0x0][0x16c];",
        ]
        for t in range(TILES_PER_THREAD):
            L += self._tile(t)
        L.append("EXIT;")
        return "\n".join(L)

    def _tile(self, t: int) -> list[str]:
        """Load, transform and store one (c, k) tile (guarded by P{t})."""
        k = self.prob.k
        base = 16 + _BLOCK_STRIDE * t
        f = lambda r, s: base + 3 * r + s  # B+0..8: the 3×3 filter
        m1 = lambda s: base + 9 + s  # row 1 of G·F
        m2 = lambda s: base + 12 + s  # row 2 of G·F
        o1 = lambda i: base + 16 + i  # output column 1 per row
        o2 = lambda i: base + 20 + i  # output column 2 per row
        ta, tb = base + 15, base + 24
        ain = base + 26  # 64-bit pair (base even → even offset 26 stays even)
        aout = base + 28
        dv = base + 30  # IMAD.WIDE scratch pair (c lands in dv+1)
        flat, kk, idx = base + 32, base + 33, base + 34
        bar = t  # scoreboard barrier for this tile's loads
        guard = f"@P{t}"

        L = [f"IADD3 R{flat}, R1, {THREADS * t:#x}, RZ;"]
        L.append(
            f"ISETP.LT.U32.AND P{t}, PT, R{flat}, {self.total_tiles:#x}, PT;"
        )
        # c = flat / K, kk = flat % K (K is a generation-time constant).
        if k & (k - 1) == 0:
            shift = k.bit_length() - 1
            L.append(f"SHF.R.U32 R{dv + 1}, R{flat}, {shift:#x}, RZ;")
        else:
            L.append(
                f"IMAD.WIDE.U32 R{dv}, R{flat}, {_magic_u32(k):#x}, RZ;"
            )
        L.append(f"IMAD R{kk}, R{dv + 1}, {(-k) & 0xFFFFFFFF:#x}, R{flat};")

        # Input base: fil_ptr + 4·(c·9K + kk); taps at +4·e·K.
        L.append(f"IMAD R{idx}, R{dv + 1}, {9 * k:#x}, R{kk};")
        L.append(f"MOV R{ain}, R2;")
        L.append(f"MOV R{ain + 1}, R3;")
        L.append(f"IMAD.WIDE R{ain}, R{idx}, 0x4, R{ain};")
        for e in range(9):
            L.append(
                f"{_ctl_wbar(bar)} {guard} LDG.E R{f(e // 3, e % 3)}, "
                f"[R{ain} + {4 * e * k:#x}];"
            )

        # Output base: out_ptr + 4·(c·16K + kk); elements at +4·(4i+j)·K.
        L.append(f"IMAD R{idx}, R{dv + 1}, {16 * k:#x}, R{kk};")
        L.append(f"MOV R{aout}, R4;")
        L.append(f"MOV R{aout + 1}, R5;")
        L.append(f"IMAD.WIDE R{aout}, R{idx}, 0x4, R{aout};")

        # Column pass M = G·F: rows 0/3 alias f rows 0/2; rows 1/2 are
        # 0.5·(f0 ± f1 + f2) per column.
        first = f"[B{'0' if bar == 0 else '-'}{'1' if bar == 1 else '-'}----:R-:W-:-:S01]"
        for s in range(3):
            ctl = first if s == 0 else ""
            L.append(f"{ctl} FADD R{ta}, R{f(0, s)}, R{f(2, s)};".strip())
            L.append(f"FADD R{tb}, R{ta}, R{f(1, s)};")
            L.append(f"FMUL R{m1(s)}, R{tb}, 0.5;")
            L.append(f"FADD R{tb}, R{ta}, -R{f(1, s)};")
            L.append(f"FMUL R{m2(s)}, R{tb}, 0.5;")
        # Row pass F̂ = M·Gᵀ: columns 0/3 alias M's columns 0/2.
        rows = [
            (f(0, 0), f(0, 1), f(0, 2)),
            (m1(0), m1(1), m1(2)),
            (m2(0), m2(1), m2(2)),
            (f(2, 0), f(2, 1), f(2, 2)),
        ]
        for i, (r0, r1, r2) in enumerate(rows):
            L.append(f"FADD R{ta}, R{r0}, R{r2};")
            L.append(f"FADD R{tb}, R{ta}, R{r1};")
            L.append(f"FMUL R{o1(i)}, R{tb}, 0.5;")
            L.append(f"FADD R{tb}, R{ta}, -R{r1};")
            L.append(f"FMUL R{o2(i)}, R{tb}, 0.5;")
        # Stores: (i, 0) = row's col 0, (i, 3) = row's col 2.
        for i, (r0, _r1, r2) in enumerate(rows):
            for j, src in ((0, r0), (1, o1(i)), (2, o2(i)), (3, r2)):
                imm = 4 * (4 * i + j) * k
                L.append(
                    f"{_ctl_rbar(2 + t)} {guard} STG.E [R{aout} + {imm:#x}], R{src};"
                )
        return L

    def build(self) -> AssembledKernel:
        return assemble(self.source(), auto_schedule=True)


def _ctl_wbar(bar: int) -> str:
    return f"[B------:R-:W{bar}:-:S01]"


def _ctl_rbar(bar: int) -> str:
    return f"[B------:R{bar}:W-:-:S01]"
