"""SASS generator for 16-way batched GEMM (paper §2.3).

"Batched GEMM is a subproblem of Winograd convolution.  All the
techniques we have developed in Section 4.3 can be applied to batched
GEMM."  This kernel is that statement made executable: it is the
Winograd kernel's EWMM machinery — the Fig. 3 lane arrangement, the
Fig. 4 register plan with ``.reuse``, the software pipelining and the
§6 scheduling — with the Winograd-specific parts (input transform,
zero-padding masks, output transform) removed.

Computes, for every batch e:

    C[e, m, n] = Σ_kd  A[e, kd, m] · B[e, kd, n]

with both operands K-major ("TN" GEMM), the exact shape of the EWMM
step (Eq. 9).  Layouts are chosen for coalescing like the paper's
Table 4: A is (Kd, E, M) with m fastest, B is (Kd, E, N) with n
fastest, C is (E, M, N).

Each thread block handles 16 consecutive batches and a 64×32 (M×N)
tile; grid = (E/16, (M/64)·(N/32)).
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ConvConfigError
from ..sass.assembler import AssembledKernel, assemble
from .schedules import apply_yield_strategy, weave
from .winograd_f22 import BC, THREADS, Tunables, WinogradF22Kernel, _magic_u32

E_PER_BLOCK = 16
BM = 64  # M tile per block (the Winograd bk)
BN_GEMM = 32  # N tile per block (the Winograd bn)


class BatchedGemmKernel(WinogradF22Kernel):
    """Batched-GEMM kernel built from the Winograd kernel's machinery."""

    def __init__(
        self,
        batch: int,
        m: int,
        n: int,
        kd: int,
        tunables: Tunables | None = None,
    ):
        tunables = tunables or Tunables()
        if tunables.bk != 64:
            raise ConvConfigError("the batched-GEMM kernel uses the bk=64 plan")
        if tunables.smem_layout != "transposed":
            raise ConvConfigError("the batched-GEMM kernel uses the Table-4 layout")
        if batch % E_PER_BLOCK:
            raise ConvConfigError(f"batch must be a multiple of {E_PER_BLOCK}")
        if m % BM or n % BN_GEMM or kd % BC:
            raise ConvConfigError(
                f"need M % {BM} == 0, N % {BN_GEMM} == 0, Kd % {BC} == 0"
            )
        # Deliberately skip WinogradF22Kernel.__init__ (no ConvProblem);
        # replicate only the resource map it would have produced.
        self.t = tunables
        self.depth = tunables.double_buffer
        self.bk = 64
        self.cols = 8
        self.batch, self.m, self.n, self.kd = batch, m, n, kd
        self.iters = kd // BC

        self.n_acc = 128
        self.frag_block = 32
        self.cur = [128, 160]
        self.pf_fil = 192  # A prefetch (32 regs)
        self.n_pf_fil = 32
        self.pf_in = 224  # B prefetch (16 regs)
        scal = 240
        self.PTR_IN = scal  # B pointer pair
        self.PTR_FIL = scal + 2  # A pointer pair
        self.ITER = scal + 4
        self.MASK = scal + 5  # unused (no zero padding); kept for layout parity
        self.STS_IN = scal + 6
        self.STS_FIL = scal + 7
        self.LDS_IN = scal + 8
        self.LDS_FIL = scal + 9
        self.TMP = (scal + 10, scal + 11, scal + 12)
        self.num_regs = scal + 13

        self.smem_fil_base = 0
        self.smem_fil_bytes = 16 * BC * 64 * 4
        self.smem_in_base = self.smem_fil_bytes
        self.smem_in_bytes = 16 * BC * 32 * 4
        self.smem_bytes = self.smem_fil_bytes + self.smem_in_bytes
        self.otf_row_floats = 33  # unused; parity with the parent

    # ------------------------------------------------------------------
    @property
    def grid(self) -> tuple[int, int]:
        return (self.batch // E_PER_BLOCK, (self.m // BM) * (self.n // BN_GEMM))

    @property
    def ntiles_n(self) -> int:
        return self.n // BN_GEMM

    # ------------------------------------------------------------------
    # Streams (override the Winograd-specific ones)
    # ------------------------------------------------------------------
    def ldg_stream(self) -> list[str]:
        """Prefetch the next iteration's A (32 loads) and B (16 loads)."""
        lines = []
        first = True
        for t2 in range(2):
            for e in range(16):
                # (Kd, E, M): +e → M floats; the second tile is 4 kd rows up.
                imm = 4 * self.m * e + t2 * (4 * self.batch * self.m * 4)
                wait = 1 << 4 if first else 0
                first = False
                lines.append(
                    f"{self._ctl(wait=wait, wbar=1)} LDG.E "
                    f"R{self.pf_fil + 16 * t2 + e}, [R{self.PTR_FIL} + {imm:#x}];"
                )
        for e in range(16):
            imm = 4 * self.n * e
            lines.append(
                f"{self._ctl(wbar=0)} LDG.E R{self.pf_in + e}, "
                f"[R{self.PTR_IN} + {imm:#x}];"
            )
        return lines

    def itf_stream(self) -> list[str]:
        return []  # plain GEMM: nothing to transform

    def sts_input_stream(self) -> list[str]:
        lines = []
        for e in range(16):
            imm = e * (BC * BN_GEMM * 4)
            wait = 1 << 0 if e == 0 else 0  # B prefetch landed
            lines.append(
                f"{self._ctl(wait=wait, rbar=4)} STS "
                f"[R{self.STS_IN} + {imm:#x}], R{self.pf_in + e};"
            )
        return lines

    def advance_pointers(self) -> list[str]:
        a_step = BC * self.batch * self.m * 4
        b_step = BC * self.batch * self.n * 4
        one = self.TMP[2]
        return [
            f"IMAD.WIDE R{self.PTR_FIL}, R{one}, {a_step:#x}, R{self.PTR_FIL};",
            f"IMAD.WIDE R{self.PTR_IN}, R{one}, {b_step:#x}, R{self.PTR_IN};",
        ]

    # ------------------------------------------------------------------
    def prologue(self) -> list[str]:
        L: list[str] = []
        T = lambda i: self.pf_fil + i
        L.append(f"S2R R{T(0)}, SR_TID.X;")
        L.append(f"S2R R{T(2)}, SR_CTAID.X;")  # batch group eg
        L.append(f"S2R R{T(3)}, SR_CTAID.Y;")  # tile index ty
        L.append(f"LOP3.AND R{T(1)}, R{T(0)}, 0x1f, RZ;")  # lane
        L.append(f"SHF.R.U32 R{T(4)}, R{T(0)}, 0x5, RZ;")  # warp

        # Tile decomposition: mi = ty / ntiles_n, ni = ty % ntiles_n.
        self._emit_udiv(L, T(5), T(3), self.ntiles_n, T(8))
        self._emit_mod(L, T(6), T(3), T(5), self.ntiles_n)

        # A base: a_ptr + 4·((ci_a·E + eg·16)·M + mi·64 + (tid&63)).
        L.append(f"LOP3.AND R{T(7)}, R{T(0)}, 0x3f, RZ;")
        L.append(f"SHF.R.U32 R{T(9)}, R{T(0)}, 0x6, RZ;")  # ci_a
        L.append(f"IMAD R{T(10)}, R{T(9)}, {self.batch:#x}, RZ;")
        L.append(f"IMAD R{T(10)}, R{T(2)}, 0x10, R{T(10)};")  # + eg·16
        L.append(f"IMAD R{T(10)}, R{T(10)}, {self.m:#x}, R{T(7)};")
        L.append(f"IMAD R{T(10)}, R{T(5)}, 0x40, R{T(10)};")  # + mi·64
        L.append(f"MOV R{self.PTR_FIL}, c[0x0][0x160];")
        L.append(f"MOV R{self.PTR_FIL + 1}, c[0x0][0x164];")
        L.append(f"IMAD.WIDE R{self.PTR_FIL}, R{T(10)}, 0x4, R{self.PTR_FIL};")

        # B base: b_ptr + 4·((ci_b·E + eg·16)·N + ni·32 + lane).
        L.append(f"SHF.R.U32 R{T(9)}, R{T(0)}, 0x5, RZ;")  # ci_b
        L.append(f"IMAD R{T(10)}, R{T(9)}, {self.batch:#x}, RZ;")
        L.append(f"IMAD R{T(10)}, R{T(2)}, 0x10, R{T(10)};")
        L.append(f"IMAD R{T(10)}, R{T(10)}, {self.n:#x}, R{T(1)};")
        L.append(f"IMAD R{T(10)}, R{T(6)}, 0x20, R{T(10)};")  # + ni·32
        L.append(f"MOV R{self.PTR_IN}, c[0x0][0x168];")
        L.append(f"MOV R{self.PTR_IN + 1}, c[0x0][0x16c];")
        L.append(f"IMAD.WIDE R{self.PTR_IN}, R{T(10)}, 0x4, R{self.PTR_IN};")

        # STS bases: A → (e, ci_a, 64), B → (e, ci_b, 32) (Table-4 shapes).
        L.append(f"SHF.R.U32 R{T(9)}, R{T(0)}, 0x6, RZ;")
        L.append(f"IMAD R{T(10)}, R{T(9)}, 0x40, R{T(7)};")
        L.append(f"SHF.L.U32 R{self.STS_FIL}, R{T(10)}, 0x2, RZ;")
        L.append(f"SHF.R.U32 R{T(9)}, R{T(0)}, 0x5, RZ;")
        L.append(f"IMAD R{T(10)}, R{T(9)}, 0x20, R{T(1)};")
        L.append(f"SHF.L.U32 R{T(10)}, R{T(10)}, 0x2, RZ;")
        L.append(f"IADD3 R{self.STS_IN}, R{T(10)}, {self.smem_in_base:#x}, RZ;")

        # Fragment LDS bases: identical to the Winograd kernel (Fig. 3).
        L.append(f"LOP3.AND R{T(8)}, R{T(1)}, 0xf, RZ;")
        L.append(f"SHF.R.U32 R{T(12)}, R{T(1)}, 0x4, RZ;")
        L.append(f"SHF.R.U32 R{T(13)}, R{T(8)}, 0x1, RZ;")  # c
        L.append(f"LOP3.AND R{T(14)}, R{T(8)}, 0x1, RZ;")
        L.append(f"IMAD R{T(14)}, R{T(12)}, 0x2, R{T(14)};")  # r
        L.append(f"IMAD R{T(15)}, R{T(4)}, {BC * BN_GEMM * 4:#x}, RZ;")
        L.append(f"IMAD R{T(15)}, R{T(14)}, 0x10, R{T(15)};")
        L.append(f"IADD3 R{self.LDS_IN}, R{T(15)}, {self.smem_in_base:#x}, RZ;")
        L.append(f"IMAD R{T(15)}, R{T(4)}, {BC * BM * 4:#x}, RZ;")
        L.append(f"IMAD R{self.LDS_FIL}, R{T(13)}, 0x10, R{T(15)};")

        for r in range(self.n_acc):
            L.append(f"MOV R{r}, RZ;")
        L.append(f"MOV R{self.ITER}, {self.iters:#x};")
        L.append(f"MOV R{self.TMP[2]}, 0x1;")
        return L

    # ------------------------------------------------------------------
    def epilogue(self) -> list[str]:
        """Store the 2×64 accumulators directly to C (E, M, N).

        No transpose round is needed: C's natural layout accepts the
        register tile directly.  Warp lanes scatter over 8 m-rows, so
        stores coalesce at 16-byte granularity rather than 128 — the
        price the Winograd kernel's OTF transpose avoids for its own
        output; acceptable here since GEMM stores once per (M·N·Kd/8)
        FFMAs.
        """
        L: list[str] = []
        T = lambda i: self.cur[0] + i
        L.append(f"S2R R{T(0)}, SR_TID.X;")
        L.append(f"S2R R{T(2)}, SR_CTAID.X;")
        L.append(f"S2R R{T(3)}, SR_CTAID.Y;")
        L.append(f"LOP3.AND R{T(1)}, R{T(0)}, 0x1f, RZ;")
        L.append(f"SHF.R.U32 R{T(4)}, R{T(0)}, 0x5, RZ;")
        self._emit_udiv(L, T(5), T(3), self.ntiles_n, T(8))
        self._emit_mod(L, T(6), T(3), T(5), self.ntiles_n)
        # Lane map (Fig. 3): c = (lane&15)>>1, r = (lane&1) + 2·(lane>>4).
        L.append(f"LOP3.AND R{T(8)}, R{T(1)}, 0xf, RZ;")
        L.append(f"SHF.R.U32 R{T(12)}, R{T(1)}, 0x4, RZ;")
        L.append(f"SHF.R.U32 R{T(13)}, R{T(8)}, 0x1, RZ;")
        L.append(f"LOP3.AND R{T(14)}, R{T(8)}, 0x1, RZ;")
        L.append(f"IMAD R{T(14)}, R{T(12)}, 0x2, R{T(14)};")

        # Base for e0 = warp: ((e0 + eg·16)·M + mi·64 + 4c)·N + ni·32 + 4r.
        L.append(f"IMAD R{T(9)}, R{T(2)}, 0x10, R{T(4)};")
        L.append(f"IMAD R{T(9)}, R{T(9)}, {self.m:#x}, RZ;")
        L.append(f"IMAD R{T(9)}, R{T(5)}, 0x40, R{T(9)};")
        L.append(f"IMAD R{T(10)}, R{T(13)}, 0x4, R{T(9)};")  # + 4c
        L.append(f"IMAD R{T(10)}, R{T(10)}, {self.n:#x}, RZ;")
        L.append(f"IMAD R{T(10)}, R{T(6)}, 0x20, R{T(10)};")
        L.append(f"IMAD R{T(11)}, R{T(14)}, 0x4, R{T(10)};")  # + 4r
        ADDR = self.PTR_FIL
        L.append(f"MOV R{ADDR}, c[0x0][0x170];")
        L.append(f"MOV R{ADDR + 1}, c[0x0][0x174];")
        L.append(f"IMAD.WIDE R{ADDR}, R{T(11)}, 0x4, R{ADDR};")

        # Per-GEMM-1 base: e0+8 → +8·M·N elements (too large for an imm).
        ADDR2 = self.PTR_IN
        L.append(f"MOV R{T(15)}, 0x1;")
        L.append(f"MOV R{ADDR2}, R{ADDR};")
        L.append(f"MOV R{ADDR2 + 1}, R{ADDR + 1};")
        L.append(
            f"IMAD.WIDE R{ADDR2}, R{T(15)}, {8 * self.m * self.n * 4:#x}, R{ADDR2};"
        )
        for g, base in ((0, ADDR), (1, ADDR2)):
            for j in range(8):
                m_off = j if j < 4 else 32 + (j - 4)
                for i in range(8):
                    n_off = i if i < 4 else 16 + (i - 4)
                    imm = 4 * (m_off * self.n + n_off)
                    L.append(
                        f"{self._ctl(rbar=5)} STG.E [R{base} + {imm:#x}], "
                        f"R{self.acc(g, i, j)};"
                    )
        L.append(f"{self._ctl(wait=1 << 5)} EXIT;")
        return L

    # ------------------------------------------------------------------
    def source(self, main_loop_only: bool = False, iters: int | None = None) -> str:
        header = [
            ".kernel batched_gemm",
            f".registers {self.num_regs}",
            f".smem {self.smem_bytes}",
            ".param 8 a_ptr",
            ".param 8 b_ptr",
            ".param 8 c_ptr",
        ]
        body: list[str] = []
        body += self.prologue()
        if iters is not None:
            body.append(f"MOV R{self.ITER}, {iters:#x};")
        body += self.staging_phase()
        body.append("MAIN_LOOP:")
        body += self.loop_body()
        if main_loop_only:
            body.append("EXIT;")
        else:
            body += self.epilogue()
        lines = apply_yield_strategy(body, self.t.yield_strategy)
        return "\n".join(header + lines)

    # ------------------------------------------------------------------
    # Host-side helpers
    # ------------------------------------------------------------------
    def reference(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """NumPy oracle: C[e] = A[:, e, :]ᵀ-style contraction over kd."""
        # a: (Kd, E, M), b: (Kd, E, N) → c: (E, M, N)
        return np.einsum("kem,ken->emn", a, b, optimize=True).astype(np.float32)

    def alloc_buffers(self, gmem, a: np.ndarray, b: np.ndarray):
        pad_a = np.zeros((BC, self.batch, self.m), dtype=np.float32)
        pad_b = np.zeros((BC, self.batch, self.n), dtype=np.float32)
        a_ptr = gmem.alloc_array(np.concatenate([a.astype(np.float32), pad_a]))
        b_ptr = gmem.alloc_array(np.concatenate([b.astype(np.float32), pad_b]))
        c_ptr = gmem.alloc(4 * self.batch * self.m * self.n)
        return {"a_ptr": a_ptr, "b_ptr": b_ptr, "c_ptr": c_ptr}, c_ptr
