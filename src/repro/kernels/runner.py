"""High-level helpers to run generated SASS kernels on the simulator.

``run_fused_sass_conv`` is the end-to-end path the integration tests and
examples use: host-side filter transform (the FTF kernel is separate in
the paper too), device buffers in the kernel's layouts, a full-grid
simulation, and the output back as NCHW.

``measure_main_loop`` is the microbenchmark path behind Figures 7-9:
it builds the main-loop-only kernel for a layer, runs one SM's worth of
resident blocks for a few iterations, and reports the achieved
main-loop TFLOPS extrapolated to the whole device.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.errors import ConvConfigError, LintError
from ..common.layouts import kcrs_to_crsk, khwn_to_nkhw, nchw_to_chwn
from ..common.problem import ConvProblem
from ..gpusim.arch import DeviceSpec, V100
from ..gpusim.counters import Counters
from ..gpusim.launch import (
    LaunchResult,
    run_grid,
    simulate_batch,
    simulate_resident_blocks,
)
from ..gpusim.memory import GlobalMemory
from ..sass.analysis import errors as lint_errors
from ..sass.analysis import lint_kernel
from ..sass.assembler import AssembledKernel
from ..winograd.fused import FusedWinogradConv
from ..winograd.tilespec import get_tile
from .cache import build_fused_kernel, sim_cache_key, simulation_cache
from .winograd_fused import Tunables, default_tunables, kernel_for_tile

class LintGate:
    """Launch gate: refuse kernels with error-severity lint findings.

    Remembers kernels (by name + text-section hash) already proven
    error-free, so repeated launches of a cached build skip the ~0.4 s
    analysis.  One instance per
    :class:`~repro.runtime.ExecutionContext`.
    """

    def __init__(self) -> None:
        self._clean: set = set()

    def ensure(self, kernel: AssembledKernel, family=None) -> None:
        """Lint *kernel* (once); raise :class:`LintError` on any error.

        Warnings (bank conflicts, wasted ``.reuse`` flags) are allowed
        through — ablation kernels produce them on purpose — but a
        kernel with a data hazard, a misaligned/out-of-bounds shared
        access or a blown register budget would silently compute garbage
        on hardware, so it must not run here either.

        *family* (hashable, optional) names a group of kernels known to
        share one lint verdict: same problem/tunables/device/build mode,
        differing only in the main-loop trip count.  The generator emits
        the same per-iteration instruction stream regardless of
        ``iters``, so once one member lints clean the whole family does
        — e.g. the differential ``iters``/``iters − 2`` measurement pair
        pays for a single analysis.
        """
        key = (kernel.meta.name, hash(kernel.text))
        if key in self._clean:
            return
        fam_key = ("family", family) if family is not None else None
        if fam_key is not None and fam_key in self._clean:
            self._clean.add(key)
            return
        found = lint_errors(lint_kernel(kernel))
        if found:
            report = "\n".join(d.text() for d in found)
            raise LintError(
                f"kernel {kernel.meta.name!r} failed static analysis with "
                f"{len(found)} error(s):\n{report}",
                diagnostics=found,
            )
        self._clean.add(key)
        if fam_key is not None:
            self._clean.add(fam_key)

    def clear(self) -> None:
        self._clean.clear()


def _ctx(context=None):
    if context is not None:
        return context
    from ..runtime import current_context

    return current_context()


def ensure_lint_clean(kernel: AssembledKernel, context=None, family=None) -> None:
    """Run the current context's :class:`LintGate` over *kernel*."""
    _ctx(context).lint_gate.ensure(kernel, family=family)


def lint_family_key(prob, device, tunables, main_loop_only=True, tile=None):
    """Family key for :meth:`LintGate.ensure`: everything but ``iters``.

    Builds of the same (problem, tile family, tunables, device, build
    mode) differ only in how many times the identical bc-iteration body
    runs, so one clean lint covers every iteration count.
    """
    return (
        "main_loop" if main_loop_only else "full",
        get_tile(tile).name,
        dataclasses.astuple(prob),
        device.name,
        dataclasses.astuple(tunables),
    )


def run_fused_sass_conv(
    x_nchw: np.ndarray,
    f_kcrs: np.ndarray,
    device: DeviceSpec | None = None,
    tunables: Tunables | None = None,
    prob: ConvProblem | None = None,
    ftf_on_device: bool = False,
    tile=None,
    context=None,
):
    """Run the generated Winograd kernel end to end; returns (y_nchw, counters).

    *tile* picks the kernel family (``"f22"`` default or ``"f44"``); the
    generator, filter-transform shape and buffer sizing all follow it.
    With ``ftf_on_device=True`` the filter transform also runs as a SASS
    kernel on the simulator (the paper's separate FTF kernel, §4.1;
    implemented for the f22 family only) — otherwise it is computed
    host-side (the default, since the FTF is a negligible, memory-bound
    prelude).  The build cache and lint gate come from *context*
    (default: the current execution context, whose device — V100 unless
    configured otherwise — also fills in a ``None`` *device*).
    """
    from ..runtime import activate

    ctx = _ctx(context)
    spec = get_tile(tile)
    with activate(ctx):
        device = device or ctx.device
        tunables = tunables or default_tunables(spec)
        n, c, h, w = x_nchw.shape
        k = f_kcrs.shape[0]
        prob = prob or ConvProblem(n=n, c=c, h=h, w=w, k=k)
        gen = kernel_for_tile(prob, spec, tunables)
        kernel = build_fused_kernel(prob, tunables, device.name, tile=spec)

        x_chwn = nchw_to_chwn(x_nchw.astype(np.float32))
        f_crsk = kcrs_to_crsk(f_kcrs.astype(np.float32))
        gmem = GlobalMemory(
            size=max(
                64 << 20,
                4 * x_chwn.nbytes
                + 4 * spec.elements * prob.c * prob.k
                + (8 << 20),
            )
        )
        if ftf_on_device:
            if spec.name != "f22":
                raise ConvConfigError(
                    "ftf_on_device is only implemented for the f22 family; "
                    f"got {spec.label()}"
                )
            from .ftf import FilterTransformKernel

            ftf = FilterTransformKernel(prob)
            fil_ptr = gmem.alloc_array(f_crsk)
            ft_ptr = gmem.alloc(4 * prob.c * 16 * prob.k)
            ftf_kernel = ftf.build()
            ensure_lint_clean(ftf_kernel)
            run_grid(
                ftf_kernel, device, grid=ftf.grid, threads_per_block=256,
                params={"fil_ptr": fil_ptr, "out_ptr": ft_ptr}, gmem=gmem,
            )
            f_t = gmem.read_array(ft_ptr, (prob.c, 4, 4, prob.k))
        else:
            f_t = FusedWinogradConv(tile=spec).transform_filters(f_crsk)
        params, out_ptr = gen.alloc_buffers(gmem, x_chwn, f_t)
        ensure_lint_clean(kernel)
        result = run_grid(
            kernel, device, grid=gen.grid, threads_per_block=256, params=params,
            gmem=gmem,
        )
        y_khwn = gmem.read_array(out_ptr, (k, prob.out_h, prob.out_w, n))
        return khwn_to_nkhw(y_khwn), result.counters


@dataclasses.dataclass
class MainLoopMeasurement:
    counters: Counters
    iters: int
    cycles_per_iter: float  # steady-state cycles per bc-iteration per SM
    tflops: float  # whole-device raw FFMA throughput (the Fig. 7-9 axis)
    sol: float  # steady-state FP32 pipe utilization (the Fig. 10-11 metric)


_ARENAS: dict = {}  # prob signature -> (GlobalMemory, params)
_MAX_ARENAS = 8


def _main_loop_arena(prob, tile=None) -> tuple[GlobalMemory, dict[str, int]]:
    """The shared synthetic buffer image for main-loop sims of *prob*.

    Buffer contents never affect timing — only layout, size and L2
    residency do, and those are a pure function of the problem and the
    tile family — so one :class:`GlobalMemory` image serves every
    candidate schedule and iteration count (the batched measurement path
    hands it to :func:`~repro.gpusim.launch.simulate_batch`).
    """
    spec = get_tile(tile)
    key = (spec.name, dataclasses.astuple(prob))
    arena = _ARENAS.get(key)
    if arena is None:
        gmem = GlobalMemory(size=128 << 20)
        in_elems = (prob.c + 8) * prob.h * prob.w * prob.n
        fil_elems = (prob.c + 8) * spec.elements * prob.k
        in_ptr = gmem.alloc(4 * in_elems)
        fil_ptr = gmem.alloc(4 * fil_elems, l2_resident=True)
        out_ptr = gmem.alloc(4 * prob.k * prob.out_h * prob.out_w * prob.n)
        arena = (gmem, {"in_ptr": in_ptr, "fil_ptr": fil_ptr, "out_ptr": out_ptr})
        while len(_ARENAS) >= _MAX_ARENAS:
            _ARENAS.pop(next(iter(_ARENAS)))
        _ARENAS[key] = arena
    return arena


def _main_loop_key(prob, device, tunables, iters, num_blocks, tile=None) -> str:
    return sim_cache_key(
        "main_loop",
        prob=prob,
        device=device,
        tunables=tunables,
        iters=iters,
        num_blocks=num_blocks,
        tile=get_tile(tile).name,
    )


def _simulate_main_loop(
    prob, device, tunables, iters, num_blocks, context=None, tile=None
):
    """One main-loop-only resident-blocks simulation, memoized.

    The simulation is a pure function of its signature (synthetic buffer
    *contents* never affect timing, only layout — which the signature
    determines), so the result is served from the context's (or disk)
    simulation cache when available and is bit-identical either way.
    """
    spec = get_tile(tile)
    cache = simulation_cache(context)
    key = _main_loop_key(prob, device, tunables, iters, num_blocks, spec)
    payload = cache.get(key)
    if payload is not None:
        return LaunchResult.from_payload(payload)
    kernel = build_fused_kernel(
        prob, tunables, device.name, main_loop_only=True, iters=iters, tile=spec
    )
    ensure_lint_clean(
        kernel, family=lint_family_key(prob, device, tunables, tile=spec)
    )
    gmem, params = _main_loop_arena(prob, spec)
    result = simulate_resident_blocks(
        kernel, device, params=params, gmem=gmem, threads_per_block=256,
        num_blocks=num_blocks,
    )
    cache.put(key, result.to_payload())
    return result


def prefetch_main_loop_sims(
    prob,
    device,
    tunables_list,
    iters_list,
    num_blocks=None,
    context=None,
    tile=None,
) -> int:
    """Batch-simulate every (tunables × iters) pair not already cached.

    The batched front door to :func:`~repro.gpusim.launch.simulate_batch`:
    one shared decode per program and one shared ``GlobalMemory`` image
    across the whole candidate set.  Afterwards every
    :func:`_simulate_main_loop` call for these pairs is a cache hit, so
    callers (the successive-halving rungs, the perf-regression sweep)
    keep their per-candidate scoring unchanged.  Returns the number of
    simulations actually run.
    """
    spec = get_tile(tile)
    cache = simulation_cache(context)
    gmem, params = _main_loop_arena(prob, spec)
    jobs = []
    keys = []
    for tunables in tunables_list:
        for iters in iters_list:
            key = _main_loop_key(prob, device, tunables, iters, num_blocks, spec)
            if cache.get(key) is not None or key in keys:
                continue
            kernel = build_fused_kernel(
                prob, tunables, device.name, main_loop_only=True, iters=iters,
                tile=spec, context=context,
            )
            ensure_lint_clean(
                kernel, context=context,
                family=lint_family_key(prob, device, tunables, tile=spec),
            )
            keys.append(key)
            jobs.append((kernel, params, num_blocks))
    if not jobs:
        return 0
    results = simulate_batch(jobs, device, gmem, threads_per_block=256)
    for key, result in zip(keys, results):
        cache.put(key, result.to_payload())
    return len(results)


def measure_main_loop(
    prob: ConvProblem,
    device: DeviceSpec = V100,
    tunables: Tunables | None = None,
    iters: int = 3,
    num_blocks: int | None = None,
    context=None,
    tile=None,
) -> MainLoopMeasurement:
    """Measure steady-state main-loop throughput on one SM.

    Two runs (``iters`` and ``iters − 2`` bc-iterations) are differenced
    to cancel the prologue/staging transient — the standard technique for
    steady-state microbenchmarks.  TFLOPS is the raw FFMA rate, which is
    what the paper plots in Figs. 7-9 (its ceiling is the device FP32
    peak); SOL is the FP32-pipe utilization of the marginal iterations.
    """
    from ..runtime import activate

    spec = get_tile(tile)
    tunables = tunables or default_tunables(spec)
    if iters < 3:
        raise ValueError("need at least 3 iterations for a differential measure")
    ctx = _ctx(context)
    with activate(ctx):
        long_run = _simulate_main_loop(
            prob, device, tunables, iters, num_blocks, ctx, spec
        )
        short_run = _simulate_main_loop(
            prob, device, tunables, iters - 2, num_blocks, ctx, spec
        )
    c_long, c_short = long_run.counters, short_run.counters
    d_cycles = c_long.cycles - c_short.cycles
    d_ffma = c_long.ffma_instrs - c_short.ffma_instrs
    d_fma_busy = c_long.fma_pipe_busy - c_short.fma_pipe_busy
    cycles_per_iter = d_cycles / 2.0
    flops = d_ffma * 32 * 2
    seconds = d_cycles / (device.clock_ghz * 1e9)
    per_sm = flops / seconds / 1e12 if seconds > 0 else 0.0
    sol = d_fma_busy / (d_cycles * device.schedulers_per_sm) if d_cycles else 0.0
    return MainLoopMeasurement(
        counters=c_long,
        iters=iters,
        cycles_per_iter=cycles_per_iter,
        tflops=per_sm * device.num_sms,
        sol=sol,
    )
