"""TuringAs reimplementation: a SASS assembler for Volta/Turing (paper §5).

Typical use::

    from repro.sass import assemble, write_cubin

    kernel = assemble('''
        .kernel saxpy
        .registers 8
        .param 8 x_ptr
        .param 4 a
        {%
        for i in range(4):
            emit(f"FFMA R{i}, R{i+4}, c[0x0][0x168], R{i};")
        %}
        EXIT;
    ''', auto_schedule=True)
    blob = write_cubin(kernel)
"""

from .analysis import (
    AnalysisContext,
    AnalysisPass,
    ControlCodePass,
    Diagnostic,
    LivenessPass,
    RegisterBankPass,
    Severity,
    SharedMemoryPass,
    lint_instructions,
    lint_kernel,
)
from .assembler import AssembledKernel, assemble, assemble_file
from .control import NO_BARRIER, ControlCode, parse_control
from .cubin import LoadedCubin, read_cubin, write_cubin
from .encoder import (
    INSTRUCTION_BYTES,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from .hazards import schedule, validate_control
from .instruction import Instruction
from .isa import (
    MAX_USABLE_REGISTERS,
    NUM_PREDICATES,
    NUM_WAIT_BARRIERS,
    OPCODES,
    PT,
    RZ,
    OpSpec,
    spec_for,
    width_of,
)
from .operands import Const, Imm, Mem, Pred, Reg, parse_operand
from .parser import parse_line, parse_program
from .preprocess import PARAM_BASE, KernelMeta, preprocess

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "AssembledKernel",
    "Const",
    "ControlCode",
    "ControlCodePass",
    "Diagnostic",
    "INSTRUCTION_BYTES",
    "Imm",
    "Instruction",
    "KernelMeta",
    "LivenessPass",
    "LoadedCubin",
    "MAX_USABLE_REGISTERS",
    "Mem",
    "NO_BARRIER",
    "NUM_PREDICATES",
    "NUM_WAIT_BARRIERS",
    "OPCODES",
    "OpSpec",
    "PARAM_BASE",
    "PT",
    "Pred",
    "RZ",
    "Reg",
    "RegisterBankPass",
    "Severity",
    "SharedMemoryPass",
    "assemble",
    "assemble_file",
    "decode_instruction",
    "decode_program",
    "encode_instruction",
    "encode_program",
    "lint_instructions",
    "lint_kernel",
    "parse_control",
    "parse_line",
    "parse_operand",
    "parse_program",
    "preprocess",
    "read_cubin",
    "schedule",
    "spec_for",
    "validate_control",
    "width_of",
    "write_cubin",
]
