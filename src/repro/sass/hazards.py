"""Automatic control-code generation and hazard validation (§5.1.4).

On Volta/Turing "it is the programmer's/compiler's responsibility to
prevent data hazards": fixed-latency producers are covered by stalling
the issuing warp, variable-latency producers by the six scoreboard wait
barriers.  The paper's kernels set these by hand; this module provides

* :func:`schedule` — a compiler-like pass that fills in stall counts and
  allocates barriers for a straight-line (or single-loop) program whose
  control codes were left at the defaults, and
* :func:`validate_control` — a checker the tests use to prove that
  generated kernels (including the hand-scheduled Winograd main loop)
  are hazard-free under the latency model.

The scheduling pass is linear over the instruction list; a backward
branch is handled by re-running the pass over the loop body with the
body's own end-state as the loop-carried input until the control codes
stop changing (a fixpoint: stalls only rise and waits only accumulate,
so it terminates).  Validation is fully path-sensitive — it runs the
analyzer's CFG-based :class:`ControlCodePass` fixpoint, see
:mod:`repro.sass.analysis.ctrlcodes`.
"""

from __future__ import annotations

import dataclasses

from ..common.errors import AssemblerError
from .control import NO_BARRIER
from .instruction import Instruction
from .isa import NUM_WAIT_BARRIERS

# Issue-to-read latency assumed for fixed-latency pipes when the producer
# stalls are computed (cycles).  Matches the OpSpec table.
DUAL_ISSUE_SAFE_STALL = 1


@dataclasses.dataclass
class _PendingBarrier:
    kind: str  # "write" or "read"
    regs: set[int]
    preds: set[int]
    space: str = ""  # memory space of the producing op ("shared", "global", ...)


#: Backstop on the loop-carried scheduling fixpoint.  Stalls are capped
#: at 15 and waits only accumulate, so each reg can force at most a few
#: rounds; real kernels converge in 2.
_MAX_SCHEDULE_ROUNDS = 16


def schedule(instructions: list[Instruction], loop_start: int | None = None) -> None:
    """Fill stall counts and scoreboard barriers in place.

    Only instructions whose control is still the default get modified;
    hand-written control codes are preserved (and later validated).
    When ``loop_start`` is None, a single-loop body is discovered from
    the program's backward branches; pass it explicitly to override.
    """
    _schedule_pass(instructions, {}, {})
    if loop_start is None:
        loop_start = _find_loop_start(instructions)
    if loop_start is not None:
        # Iterate with loop-carried latencies — the state at the end of
        # the body feeds its beginning — until the control codes reach a
        # fixed point.  Raising a stall shifts every later issue time,
        # which can surface a new deficit, hence the loop.
        for _ in range(_MAX_SCHEDULE_ROUNDS):
            ready_reg, ready_pred = _collect_end_state(instructions, loop_start)
            changed = _schedule_pass(
                instructions[loop_start:], ready_reg, ready_pred
            )
            if not changed:
                break


def _find_loop_start(instructions: list[Instruction]) -> int | None:
    """Earliest backward-branch target: the loop head, if the program
    has one (the generated kernels are straight-line or single-loop)."""
    loop_start: int | None = None
    for pos, instr in enumerate(instructions):
        if instr.name == "BRA" and isinstance(instr.target, int):
            target = pos + 1 + instr.target
            if 0 <= target <= pos and (loop_start is None or target < loop_start):
                loop_start = target
    return loop_start


def _collect_end_state(
    instructions: list[Instruction], loop_start: int
) -> tuple[dict[int, int], dict[int, int]]:
    ready_reg: dict[int, int] = {}
    ready_pred: dict[int, int] = {}
    t = 0
    for instr in instructions[loop_start:]:
        spec = instr.spec
        if spec.latency is not None:
            for reg in instr.writes_registers():
                ready_reg[reg] = t + spec.latency
            for p in instr.writes_predicates():
                ready_pred[p] = t + spec.latency
        t += max(instr.control.stall, 1)
    # Shift to be relative to the loop start (time 0 = next iteration begin).
    return (
        {r: v - t for r, v in ready_reg.items() if v > t},
        {p: v - t for p, v in ready_pred.items() if v > t},
    )


def _schedule_pass(
    instructions: list[Instruction],
    ready_reg: dict[int, int],
    ready_pred: dict[int, int],
) -> bool:
    """One linear scheduling sweep; returns True if any control changed."""
    ready_reg = dict(ready_reg)
    ready_pred = dict(ready_pred)
    barriers: dict[int, _PendingBarrier] = {}
    t = 0
    prev: Instruction | None = None
    changed = False

    for instr in instructions:
        spec = instr.spec
        reads = set(instr.reads_registers())
        writes = set(instr.writes_registers())
        pred_reads = set(instr.reads_predicates())
        pred_writes = set(instr.writes_predicates())

        # ---- wait on scoreboard barriers ---------------------------------
        need_wait = 0
        for idx, pending in barriers.items():
            # Note: BAR.SYNC needs no scoreboard waits for shared-memory
            # ordering — the MIO pipe processes LDS/STS in issue order, so
            # a barrier separating the issues is sufficient.  Register
            # dependencies are awaited by their consumers as usual.
            touched = (
                (pending.kind == "write" and (pending.regs & (reads | writes) or pending.preds & (pred_reads | pred_writes)))
                or (pending.kind == "read" and pending.regs & writes)
            )
            if touched and not instr.control.waits_on(idx):
                need_wait |= 1 << idx
        if need_wait:
            instr.control = dataclasses.replace(
                instr.control, wait_mask=instr.control.wait_mask | need_wait
            )
            changed = True
        for idx in list(barriers):
            if instr.control.waits_on(idx):
                del barriers[idx]

        # ---- stall for fixed-latency hazards ------------------------------
        deficit = 0
        for reg in reads | writes:
            if reg in ready_reg:
                deficit = max(deficit, ready_reg[reg] - t)
        for p in pred_reads | pred_writes:
            if p in ready_pred:
                deficit = max(deficit, ready_pred[p] - t)
        if deficit > 0 and prev is not None:
            extra = deficit
            new_stall = min(15, prev.control.stall + extra)
            if new_stall != prev.control.stall:
                t += new_stall - prev.control.stall
                prev.control = prev.control.with_stall(new_stall)
                changed = True

        # ---- allocate barriers for variable-latency results ---------------
        if spec.latency is None and instr.name not in ("BRA", "EXIT", "BAR", "NOP"):
            if spec.is_store:
                if instr.control.read_bar == NO_BARRIER:
                    idx = _free_barrier(barriers, instr)
                    instr.control = dataclasses.replace(instr.control, read_bar=idx)
                    changed = True
                _merge_barrier(
                    barriers, instr.control.read_bar, "read", reads, set(),
                    spec.mem_space,
                )
            else:
                if instr.control.write_bar == NO_BARRIER:
                    idx = _free_barrier(barriers, instr)
                    instr.control = dataclasses.replace(instr.control, write_bar=idx)
                    changed = True
                _merge_barrier(
                    barriers, instr.control.write_bar, "write", writes, pred_writes,
                    spec.mem_space,
                )

        # ---- publish fixed-latency results --------------------------------
        if spec.latency is not None:
            for reg in writes:
                ready_reg[reg] = t + spec.latency
            for p in pred_writes:
                ready_pred[p] = t + spec.latency

        t += max(instr.control.stall, 1)
        prev = instr
    return changed


def _merge_barrier(
    barriers: dict[int, _PendingBarrier],
    idx: int,
    kind: str,
    regs: set[int],
    preds: set[int],
    space: str = "",
) -> None:
    """Several in-flight ops may share one barrier; track the reg union."""
    pending = barriers.get(idx)
    if pending is not None and pending.kind == kind:
        pending.regs |= regs
        pending.preds |= preds
        pending.space = pending.space or space
    else:
        barriers[idx] = _PendingBarrier(kind, set(regs), set(preds), space)


def _free_barrier(barriers: dict[int, _PendingBarrier], instr: Instruction) -> int:
    for idx in range(NUM_WAIT_BARRIERS):
        if idx not in barriers:
            return idx
    # All busy: force a wait on barrier 0 at this instruction and reuse it.
    instr.control = instr.control.with_wait(0)
    del barriers[0]
    return 0


def validate_control(instructions: list[Instruction]) -> list[str]:
    """Return a list of hazard violations (empty = provably hazard-free).

    Thin wrapper over the analyzer's
    :class:`~repro.sass.analysis.ctrlcodes.ControlCodePass` — a CFG
    fixpoint: fixed-latency results must be covered by accumulated
    stalls and variable-latency results (registers *and* predicates) by
    a scoreboard barrier some instruction waits on before consuming,
    joined over every control-flow path including loop back edges —
    rendered in this function's historical string format.
    """
    from .analysis.base import AnalysisContext
    from .analysis.ctrlcodes import ControlCodePass

    ctx = AnalysisContext(instructions=instructions)
    return [
        f"instr {d.pos} ({d.instruction}) {d.message}"
        for d in ControlCodePass().run(ctx)
    ]


class HazardError(AssemblerError):
    """Raised when strict assembly finds control-code hazards."""
