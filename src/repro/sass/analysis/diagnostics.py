"""The shared diagnostic vocabulary of the SASS static analyzer.

Every analysis pass reports :class:`Diagnostic` records — a rule id, a
severity, the instruction position the finding anchors to, a message and
an optional fix hint — so that the CLI, the launch gate and CI can treat
findings from very different analyses (register banks, shared-memory
addressing, liveness, control codes) uniformly.

Severity semantics:

* ``ERROR``   — the kernel is wrong or cannot behave as encoded (data
  hazard, misaligned vector access, register budget overflow).  The
  launch gate in :mod:`repro.kernels.runner` refuses to run these.
* ``WARNING`` — the kernel is functionally correct but leaves the
  performance the paper fights for on the table (bank conflicts, wasted
  ``.reuse`` flags).  Ablation kernels trip these on purpose.
* ``INFO``    — measurements worth surfacing (peak live registers).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Iterable


class Severity(enum.Enum):
    """Diagnostic severity, ordered ``INFO < WARNING < ERROR``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding from one analysis pass.

    ``pos`` is the instruction index in the analyzed program (-1 for
    program-level findings such as the liveness summary); ``instruction``
    is the mnemonic at that position, kept separate from the message so
    renderers can choose their own framing.

    ``pass_name``, ``block`` and ``line`` are annotated by
    :func:`~repro.sass.analysis.base.run_passes` after the pass returns:
    the emitting pass's stable name, the CFG basic-block id containing
    ``pos`` (-1 for program-level findings) and the source line of the
    instruction (0 when the program was built in memory).  Passes never
    set them; a :class:`Diagnostic` constructed by hand reports
    "unknown" defaults.
    """

    rule: str
    severity: Severity
    pos: int
    instruction: str
    message: str
    hint: str = ""
    pass_name: str = ""
    block: int = -1
    line: int = 0

    def text(self) -> str:
        """One-line rendering: ``instr 12 (FFMA): error RB002: ...``."""
        where = f"instr {self.pos} ({self.instruction})" if self.pos >= 0 else "program"
        line = f"{where}: {self.severity.value} {self.rule}: {self.message}"
        if self.hint:
            line += f" [hint: {self.hint}]"
        return line

    def to_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "pos": self.pos,
            "instruction": self.instruction,
            "message": self.message,
            "hint": self.hint,
            "pass": self.pass_name,
            "block": self.block,
            "line": self.line,
        }


def max_severity(diagnostics: Iterable[Diagnostic]) -> Severity | None:
    """Highest severity present, or None for an empty report."""
    best: Severity | None = None
    for diag in diagnostics:
        if best is None or diag.severity.rank > best.rank:
            best = diag.severity
    return best


def errors(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    """The error-severity subset (what the launch gate refuses to run)."""
    return [d for d in diagnostics if d.severity is Severity.ERROR]


def count_by_severity(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    counts = {s.value: 0 for s in Severity}
    for diag in diagnostics:
        counts[diag.severity.value] += 1
    return counts
