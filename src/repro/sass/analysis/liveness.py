"""Liveness / register-pressure pass (§5.2.1, Table 5).

The paper's main loop is budgeted against the 253 usable general-purpose
registers per thread (256 minus RZ and the two-register slack the
hardware reserves — footnote 7); Table 5 accounts for 128 accumulators,
64+16 double-buffered operands and the addressing scaffolding.  This
pass computes the same number statically: a backward may-live dataflow
over the control-flow graph, with registers killed only by unpredicated
writes (a ``@P0`` write may not execute, so the old value can survive).

Rules:

* ``LV001`` (info)  — the peak live-register count and where it occurs,
  so codegen changes that quietly grow pressure are visible in reports;
* ``LV002`` (error) — peak pressure exceeds the 253-register budget: the
  kernel cannot be allocated without spills, which the paper's design
  rules out.

The CFG is minimal: ``EXIT`` ends a path, an unpredicated ``BRA`` goes
only to its target, a predicated ``BRA`` to both target and
fall-through.  Unresolved (label) targets conservatively fall through.
"""

from __future__ import annotations

from ..instruction import Instruction
from ..isa import MAX_USABLE_REGISTERS
from .base import AnalysisContext, AnalysisPass
from .diagnostics import Diagnostic, Severity


def _successors(instructions: list[Instruction], pos: int) -> list[int]:
    instr = instructions[pos]
    n = len(instructions)
    if instr.name == "EXIT":
        return []
    if instr.name == "BRA" and isinstance(instr.target, int):
        target = pos + 1 + instr.target
        succ = [target] if 0 <= target < n else []
        if not (instr.guard.is_pt and not instr.guard.negated):
            if pos + 1 < n:
                succ.append(pos + 1)
        return succ
    return [pos + 1] if pos + 1 < n else []


def compute_live_in(instructions: list[Instruction]) -> list[int]:
    """Per-instruction live-in register sets as 256-bit masks."""
    n = len(instructions)
    uses = []
    defs = []
    for instr in instructions:
        use_mask = 0
        for reg in instr.reads_registers():
            use_mask |= 1 << reg
        def_mask = 0
        # Predicated writes may not retire; only unpredicated writes kill.
        if instr.guard.is_pt and not instr.guard.negated:
            for reg in instr.writes_registers():
                def_mask |= 1 << reg
        uses.append(use_mask)
        defs.append(def_mask)

    succs = [_successors(instructions, pos) for pos in range(n)]
    live_in = [0] * n
    changed = True
    while changed:
        changed = False
        for pos in range(n - 1, -1, -1):
            live_out = 0
            for s in succs[pos]:
                live_out |= live_in[s]
            new = uses[pos] | (live_out & ~defs[pos])
            if new != live_in[pos]:
                live_in[pos] = new
                changed = True
    return live_in


class LivenessPass(AnalysisPass):
    name = "liveness"
    rules = ("LV001", "LV002", "LV003")

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        if not ctx.instructions:
            return []
        live_in = compute_live_in(ctx.instructions)
        peak = 0
        peak_pos = 0
        for pos, mask in enumerate(live_in):
            count = bin(mask).count("1")
            if count > peak:
                peak, peak_pos = count, pos

        diags = [Diagnostic(
            rule="LV001",
            severity=Severity.INFO,
            pos=peak_pos,
            instruction=ctx.instructions[peak_pos].name,
            message=(
                f"peak register pressure: {peak} live registers "
                f"(budget {MAX_USABLE_REGISTERS}, Table 5)"
            ),
        )]
        if peak > MAX_USABLE_REGISTERS:
            diags.append(Diagnostic(
                rule="LV002",
                severity=Severity.ERROR,
                pos=peak_pos,
                instruction=ctx.instructions[peak_pos].name,
                message=(
                    f"{peak} registers live at once exceeds the "
                    f"{MAX_USABLE_REGISTERS}-register budget (footnote 7): "
                    "the kernel cannot be allocated without spills"
                ),
                hint="shrink the double-buffering window or re-derive "
                     "addresses instead of keeping them live (Table 5)",
            ))
        declared = ctx.meta.registers if ctx.meta is not None else None
        if declared is not None and peak > declared:
            diags.append(Diagnostic(
                rule="LV003",
                severity=Severity.ERROR,
                pos=peak_pos,
                instruction=ctx.instructions[peak_pos].name,
                message=(
                    f"{peak} registers live at once exceeds the "
                    f".registers {declared} declaration"
                ),
                hint="raise the .registers directive to cover the peak",
            ))
        return diags
