"""Control-flow graph over a SASS instruction stream.

Every whole-program analysis in this package (path-sensitive control
codes, reaching definitions, barrier divergence, the shared-memory race
detector) runs over the same block decomposition:

* **Leaders** are instruction 0, every resolved ``BRA`` target, and the
  instruction after any ``BRA``, ``EXIT`` or ``BAR``.
* ``BAR`` terminates its block even though it falls straight through —
  this aligns block boundaries with barrier *epochs*, which is what the
  race detector reasons about.
* Edges are **predicate-aware**: a ``@P5 BRA`` contributes a taken edge
  conditioned on ``P5 == True`` and a fall-through edge conditioned on
  ``P5 == False`` (inverted for ``@!P5``).  Passes that can prove a
  guarded access did not execute along an edge use these conditions
  (:class:`EdgeCondition`) to kill facts.

Unresolved (string-label) branch targets fall through conservatively —
the same choice :mod:`repro.sass.analysis.liveness` has always made —
so programs straight out of ``parse_program`` remain analyzable.

Rules emitted by :class:`CfgPass`:

* ``CFG001`` (warning) — a block is unreachable from the entry;
  downstream dataflow passes skip it, so dead code is not vetted.
* ``CFG002`` (error) — a resolved branch target lies outside the
  program; the instruction stream cannot have been assembled correctly.
"""

from __future__ import annotations

import dataclasses

from ..instruction import Instruction
from .base import AnalysisContext, AnalysisPass
from .diagnostics import Diagnostic, Severity

#: Block terminator opcodes.  BAR terminates so blocks align with
#: barrier epochs; BRA/EXIT terminate because control transfers.
TERMINATORS = ("BRA", "EXIT", "BAR")


@dataclasses.dataclass(frozen=True)
class EdgeCondition:
    """``pred == value`` must hold for the edge to be taken."""

    pred: int
    value: bool

    def text(self) -> str:
        return f"{'' if self.value else '!'}P{self.pred}"


@dataclasses.dataclass(frozen=True)
class Edge:
    """A CFG edge; ``cond`` is None for unconditional edges.

    ``kind`` is ``"taken"`` (branch taken), ``"fall"`` (branch not
    taken / conservative fall-through past an unresolved target) or
    ``"seq"`` (plain sequential flow, including past a BAR).
    """

    src: int
    dst: int
    kind: str
    cond: EdgeCondition | None = None


@dataclasses.dataclass(frozen=True)
class BasicBlock:
    """Half-open instruction range ``[start, end)``."""

    id: int
    start: int
    end: int

    def positions(self) -> range:
        return range(self.start, self.end)


class ControlFlowGraph:
    """Blocks, edges and reachability for one instruction stream."""

    def __init__(
        self,
        instructions: list[Instruction],
        blocks: list[BasicBlock],
        edges: list[Edge],
        diagnostics: list[Diagnostic],
    ):
        self.instructions = instructions
        self.blocks = blocks
        self.edges = edges
        self.diagnostics = diagnostics
        #: instruction position -> owning block id
        self.block_of: list[int] = [0] * len(instructions)
        for block in blocks:
            for pos in block.positions():
                self.block_of[pos] = block.id
        self.successors: list[list[Edge]] = [[] for _ in blocks]
        self.predecessors: list[list[Edge]] = [[] for _ in blocks]
        for edge in edges:
            self.successors[edge.src].append(edge)
            self.predecessors[edge.dst].append(edge)
        self.reachable = self._reachable_from(0) if blocks else set()

    # ------------------------------------------------------------------
    def _reachable_from(self, entry: int) -> set[int]:
        seen = {entry}
        stack = [entry]
        while stack:
            for edge in self.successors[stack.pop()]:
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    stack.append(edge.dst)
        return seen

    def reachable_from(self, entry: int) -> set[int]:
        """Block ids reachable from ``entry`` (inclusive)."""
        if not self.blocks:
            return set()
        return self._reachable_from(entry)

    def rpo(self) -> list[int]:
        """Reverse postorder over the blocks reachable from the entry."""
        if not self.blocks:
            return []
        order: list[int] = []
        seen: set[int] = set()

        def visit(block_id: int) -> None:
            # Iterative DFS: kernels can have long block chains.
            stack: list[tuple[int, int]] = [(block_id, 0)]
            seen.add(block_id)
            while stack:
                current, edge_idx = stack[-1]
                succs = self.successors[current]
                if edge_idx < len(succs):
                    stack[-1] = (current, edge_idx + 1)
                    nxt = succs[edge_idx].dst
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, 0))
                else:
                    order.append(current)
                    stack.pop()

        visit(0)
        order.reverse()
        return order


def _branch_conditions(
    instr: Instruction,
) -> tuple[EdgeCondition | None, EdgeCondition | None]:
    """(taken, fall) conditions for a control transfer's guard."""
    if instr.guard.is_pt and not instr.guard.negated:
        return None, None
    pred = instr.guard.index
    return (
        EdgeCondition(pred, not instr.guard.negated),
        EdgeCondition(pred, instr.guard.negated),
    )


def build_cfg(instructions: list[Instruction]) -> ControlFlowGraph:
    """Decompose ``instructions`` into basic blocks with typed edges."""
    n = len(instructions)
    if n == 0:
        return ControlFlowGraph(instructions, [], [], [])

    diagnostics: list[Diagnostic] = []
    bad_targets: set[int] = set()
    leaders = {0}
    for pos, instr in enumerate(instructions):
        if instr.name == "BRA" and isinstance(instr.target, int):
            target = pos + 1 + instr.target
            if 0 <= target < n:
                leaders.add(target)
            else:
                bad_targets.add(pos)
                diagnostics.append(Diagnostic(
                    rule="CFG002",
                    severity=Severity.ERROR,
                    pos=pos,
                    instruction=instr.name,
                    message=(
                        f"branch target {target} lies outside the "
                        f"{n}-instruction program"
                    ),
                    hint="fix the branch offset; analyses treat this "
                         "branch as falling through",
                ))
        if instr.name in TERMINATORS and pos + 1 < n:
            leaders.add(pos + 1)

    starts = sorted(leaders)
    blocks = [
        BasicBlock(id=i, start=start, end=end)
        for i, (start, end) in enumerate(zip(starts, starts[1:] + [n]))
    ]
    block_at = {block.start: block.id for block in blocks}

    edges: list[Edge] = []
    for block in blocks:
        last_pos = block.end - 1
        last = instructions[last_pos]
        fall_id = block_at.get(block.end)

        def fall(kind: str, cond: EdgeCondition | None = None) -> None:
            if fall_id is not None:
                edges.append(Edge(block.id, fall_id, kind, cond))

        if last.name == "BRA":
            taken_cond, fall_cond = _branch_conditions(last)
            resolved = (
                isinstance(last.target, int) and last_pos not in bad_targets
            )
            if resolved:
                assert isinstance(last.target, int)
                target = last_pos + 1 + last.target
                edges.append(
                    Edge(block.id, block_at[target], "taken", taken_cond)
                )
                if fall_cond is not None:  # predicated: both ways possible
                    fall("fall", fall_cond)
            else:
                # Unresolved label or out-of-range target: conservative
                # fall-through, matching the liveness pass.
                fall("fall")
        elif last.name == "EXIT":
            _, fall_cond = _branch_conditions(last)
            if not (last.guard.is_pt and not last.guard.negated):
                fall("fall", fall_cond)
        else:
            # Plain block end (next pos is a leader) or a BAR.
            fall("seq")

    cfg = ControlFlowGraph(instructions, blocks, edges, diagnostics)
    _flag_unreachable(cfg, diagnostics)
    return cfg


def _flag_unreachable(
    cfg: ControlFlowGraph, diagnostics: list[Diagnostic]
) -> None:
    instructions = cfg.instructions
    for block in cfg.blocks:
        if block.id not in cfg.reachable:
            diagnostics.append(Diagnostic(
                rule="CFG001",
                severity=Severity.WARNING,
                pos=block.start,
                instruction=instructions[block.start].name,
                message=(
                    f"block {block.id} (instructions {block.start}.."
                    f"{block.end - 1}) is unreachable from the entry"
                ),
                hint="dead code is skipped by the dataflow passes; "
                     "delete it or fix the branch that should reach it",
            ))


def get_cfg(ctx: AnalysisContext) -> ControlFlowGraph:
    """Build (or reuse) the context's CFG.

    Every dataflow pass in a ``run_passes`` invocation analyzes the same
    instruction list, so the graph is memoized on the context object.
    """
    cached = ctx.__dict__.get("_cfg_cache")
    if cached is None:
        cached = build_cfg(ctx.instructions)
        ctx.__dict__["_cfg_cache"] = cached
    return cached


class CfgPass(AnalysisPass):
    """Surfaces the graph builder's own findings (CFG001/CFG002)."""

    name = "cfg"
    rules = ("CFG001", "CFG002")

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        return list(get_cfg(ctx).diagnostics)

