"""Uninitialized-register-read pass (reaching definitions).

Registers and predicates have no defined value at kernel entry; the
prologue must write them (``S2R``, constant loads, ``ISETP``) before
anything reads them.  A straight-line checker cannot see a definition
that exists on only one arm of a branch — this pass runs a forward
reaching-definitions dataflow over the CFG and distinguishes:

* ``UR001`` (error)   — a read with **no** definition on *any* path
  from the entry: the value is garbage whenever this executes;
* ``UR002`` (warning) — a read defined on *some* paths but not all:
  correct only if the undefined paths are dynamically impossible,
  which the analysis cannot prove.

Definitions are tracked as bitmasks.  The may-defined set joins with
union; the must-defined set joins with intersection (the solver's
optimistic initialization makes that precise around loops).

A **predicated write counts as a full definition** on both sets.  The
paper's kernels zero a prefetch register and then conditionally
overwrite it with ``@Py LDG`` — the zero already defines it — but the
idiom of defining a register *only* under a predicate and reading it
under the same predicate (e.g. ``@P0 MOV R5,…; @P0 FADD …,R5``) is
common and correct, and path-splitting on predicate values is beyond a
bitmask analysis.  The cost is that a genuinely one-sided predicated
definition read unconditionally goes unreported here; the CTRL pass
still vets its latencies.
"""

from __future__ import annotations

from typing import Sequence

from .base import AnalysisContext, AnalysisPass
from .cfg import BasicBlock, get_cfg
from .dataflow import solve_forward
from .diagnostics import Diagnostic, Severity

# State: (may_regs, must_regs, may_preds, must_preds) bitmasks.
_State = tuple[int, int, int, int]


class UninitRegisterPass(AnalysisPass):
    name = "uninit"
    rules = ("UR001", "UR002")

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        if not ctx.instructions:
            return []
        cfg = get_cfg(ctx)
        instructions = ctx.instructions

        def defs_of(pos: int) -> tuple[int, int]:
            instr = instructions[pos]
            reg_mask = 0
            for reg in instr.writes_registers():
                reg_mask |= 1 << reg
            pred_mask = 0
            for p in instr.writes_predicates():
                pred_mask |= 1 << p
            return reg_mask, pred_mask

        def transfer(block: BasicBlock, state: _State) -> _State:
            may_r, must_r, may_p, must_p = state
            for pos in block.positions():
                reg_mask, pred_mask = defs_of(pos)
                may_r |= reg_mask
                must_r |= reg_mask
                may_p |= pred_mask
                must_p |= pred_mask
            return may_r, must_r, may_p, must_p

        def join(states: Sequence[_State]) -> _State:
            may_r, must_r, may_p, must_p = states[0]
            for other in states[1:]:
                may_r |= other[0]
                must_r &= other[1]
                may_p |= other[2]
                must_p &= other[3]
            return may_r, must_r, may_p, must_p

        in_states, _ = solve_forward(cfg, (0, 0, 0, 0), transfer, join)

        diags: list[Diagnostic] = []
        seen: set[tuple[int, str, str]] = set()

        def emit(rule: str, severity: Severity, pos: int,
                 what: str, detail: str, hint: str) -> None:
            key = (pos, rule, what)
            if key in seen:
                return
            seen.add(key)
            diags.append(Diagnostic(
                rule=rule,
                severity=severity,
                pos=pos,
                instruction=instructions[pos].name,
                message=f"reads {what} {detail}",
                hint=hint,
            ))

        for block in cfg.blocks:
            state = in_states[block.id]
            if state is None:
                continue  # unreachable: CFG001 already flags it
            may_r, must_r, may_p, must_p = state
            for pos in block.positions():
                instr = instructions[pos]
                for reg in instr.reads_registers():
                    bit = 1 << reg
                    if not may_r & bit:
                        emit(
                            "UR001", Severity.ERROR, pos, f"R{reg}",
                            "which no path from the kernel entry defines",
                            "initialize the register before this read",
                        )
                    elif not must_r & bit:
                        emit(
                            "UR002", Severity.WARNING, pos, f"R{reg}",
                            "which is defined on some paths from the "
                            "entry but not all",
                            "define the register on every path (or hoist "
                            "the definition above the branch)",
                        )
                for p in instr.reads_predicates():
                    bit = 1 << p
                    if not may_p & bit:
                        emit(
                            "UR001", Severity.ERROR, pos, f"P{p}",
                            "which no path from the kernel entry defines",
                            "initialize the predicate before this read",
                        )
                    elif not must_p & bit:
                        emit(
                            "UR002", Severity.WARNING, pos, f"P{p}",
                            "which is defined on some paths from the "
                            "entry but not all",
                            "define the predicate on every path (or "
                            "hoist the definition above the branch)",
                        )
                reg_mask, pred_mask = (0, 0)
                for reg in instr.writes_registers():
                    reg_mask |= 1 << reg
                for p in instr.writes_predicates():
                    pred_mask |= 1 << p
                may_r |= reg_mask
                must_r |= reg_mask
                may_p |= pred_mask
                must_p |= pred_mask
        return diags
