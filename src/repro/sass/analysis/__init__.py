"""Static analysis over assembled SASS instruction streams (``sasslint``).

Four passes over :class:`~repro.sass.instruction.Instruction` lists,
reporting through a shared :class:`Diagnostic` vocabulary:

* :class:`RegisterBankPass`   — even/odd operand-bank conflicts and
  ``.reuse``-cache validity (RB001–RB004);
* :class:`SharedMemoryPass`   — per-warp shared-memory bank conflicts,
  vector alignment and bounds (SM001–SM004);
* :class:`LivenessPass`       — peak live registers vs. the 253 budget
  (LV001–LV003);
* :class:`ControlCodePass`    — stall/scoreboard hazard freedom
  (CTRL001–CTRL003).

Entry points: :func:`lint_kernel` / :func:`lint_instructions` for code,
``python -m repro.sass lint`` for the shell, and the launch gate in
:mod:`repro.kernels.runner` which refuses to run kernels with
error-severity findings.  ``docs/sass_lint.md`` is the rule catalogue.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Sequence

from ..instruction import Instruction
from ..preprocess import KernelMeta
from .base import DEFAULT_NUM_WARPS, AnalysisContext, AnalysisPass, run_passes
from .ctrlcodes import ControlCodePass
from .diagnostics import (
    Diagnostic,
    Severity,
    count_by_severity,
    errors,
    max_severity,
)
from .liveness import LivenessPass
from .regbank import RegisterBankPass
from .smem import SharedMemoryPass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (assembler imports us)
    from ..assembler import AssembledKernel

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "ControlCodePass",
    "DEFAULT_NUM_WARPS",
    "Diagnostic",
    "LivenessPass",
    "RegisterBankPass",
    "Severity",
    "SharedMemoryPass",
    "count_by_severity",
    "default_passes",
    "errors",
    "lint_instructions",
    "lint_kernel",
    "max_severity",
    "render_json",
    "render_text",
    "run_passes",
]


def default_passes() -> list[AnalysisPass]:
    """The pass list ``python -m repro.sass lint`` runs, in order."""
    return [
        ControlCodePass(),
        RegisterBankPass(),
        SharedMemoryPass(),
        LivenessPass(),
    ]


def lint_instructions(
    instructions: list[Instruction],
    meta: KernelMeta | None = None,
    *,
    num_warps: int = DEFAULT_NUM_WARPS,
    passes: Sequence[AnalysisPass] | None = None,
) -> list[Diagnostic]:
    """Run the analyzer over a raw instruction list."""
    ctx = AnalysisContext(
        instructions=instructions, meta=meta, num_warps=num_warps
    )
    return run_passes(ctx, default_passes() if passes is None else passes)


def lint_kernel(
    kernel: "AssembledKernel",
    *,
    num_warps: int = DEFAULT_NUM_WARPS,
    passes: Sequence[AnalysisPass] | None = None,
) -> list[Diagnostic]:
    """Run the analyzer over an assembled kernel (uses its metadata)."""
    return lint_instructions(
        kernel.instructions,
        meta=kernel.meta,
        num_warps=num_warps,
        passes=passes,
    )


def render_text(
    diagnostics: Sequence[Diagnostic], *, kernel_name: str = ""
) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [d.text() for d in diagnostics]
    counts = count_by_severity(diagnostics)
    label = f"{kernel_name}: " if kernel_name else ""
    lines.append(
        f"{label}{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info"
    )
    return "\n".join(lines)


def render_json(
    diagnostics: Sequence[Diagnostic], *, kernel_name: str = ""
) -> str:
    """Machine-readable report (stable schema, used by the CI artifact)."""
    payload: dict[str, Any] = {
        "kernel": kernel_name,
        "summary": count_by_severity(diagnostics),
        "diagnostics": [d.to_json() for d in diagnostics],
    }
    return json.dumps(payload, indent=2)
