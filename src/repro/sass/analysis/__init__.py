"""Static analysis over assembled SASS instruction streams (``sasslint``).

The analyses share one whole-program foundation — a control-flow graph
(:mod:`.cfg`) and a generic worklist dataflow solver (:mod:`.dataflow`)
— and report through a shared :class:`Diagnostic` vocabulary:

* :class:`CfgPass`              — graph-construction findings:
  unreachable blocks, bad branch targets (CFG001–CFG002);
* :class:`ControlCodePass`      — path-sensitive stall/scoreboard
  hazard freedom over every CFG path (CTRL001–CTRL003);
* :class:`UninitRegisterPass`   — reaching-definitions check for reads
  of never/partially-defined registers and predicates (UR001–UR002);
* :class:`BarrierDivergencePass` — BAR.SYNC under (or behind a branch
  on) a lane-divergent predicate (BD001–BD002);
* :class:`RegisterBankPass`     — even/odd operand-bank conflicts and
  ``.reuse``-cache validity (RB001–RB004);
* :class:`SharedMemoryPass`     — per-warp shared-memory bank
  conflicts, vector alignment and bounds (SM001–SM004);
* :class:`SharedRacePass`       — cross-warp shared-memory races
  between barrier epochs (RACE001–RACE002);
* :class:`LivenessPass`         — peak live registers vs. the 253
  budget (LV001–LV003);
* :class:`OccupancyPass`        — static issue/pressure/occupancy
  report (OCC001–OCC003); :func:`static_report` feeds the schedule
  autotuner's pre-simulation pruner.

Entry points: :func:`lint_kernel` / :func:`lint_instructions` for code,
``python -m repro.sass lint`` for the shell, and the launch gate in
:mod:`repro.kernels.runner` which refuses to run kernels with
error-severity findings.  ``docs/sass_lint.md`` is the rule catalogue.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Sequence

from ..instruction import Instruction
from ..preprocess import KernelMeta
from .barrier import BarrierDivergencePass
from .base import DEFAULT_NUM_WARPS, AnalysisContext, AnalysisPass, run_passes
from .cfg import (
    BasicBlock,
    CfgPass,
    ControlFlowGraph,
    Edge,
    EdgeCondition,
    build_cfg,
    get_cfg,
)
from .ctrlcodes import ControlCodePass
from .dataflow import solve_backward, solve_forward
from .diagnostics import (
    Diagnostic,
    Severity,
    count_by_severity,
    errors,
    max_severity,
)
from .liveness import LivenessPass
from .occupancy import (
    TURING_LIMITS,
    VOLTA_LIMITS,
    ArchLimits,
    OccupancyPass,
    StaticReport,
    static_report,
)
from .race import SharedRacePass
from .regbank import RegisterBankPass
from .smem import SharedMemoryPass, shared_access_table
from .uninit import UninitRegisterPass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (assembler imports us)
    from ..assembler import AssembledKernel

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "ArchLimits",
    "BarrierDivergencePass",
    "BasicBlock",
    "CfgPass",
    "ControlCodePass",
    "ControlFlowGraph",
    "DEFAULT_NUM_WARPS",
    "Diagnostic",
    "Edge",
    "EdgeCondition",
    "LivenessPass",
    "OccupancyPass",
    "RegisterBankPass",
    "Severity",
    "SharedMemoryPass",
    "SharedRacePass",
    "StaticReport",
    "TURING_LIMITS",
    "UninitRegisterPass",
    "VOLTA_LIMITS",
    "build_cfg",
    "count_by_severity",
    "default_passes",
    "errors",
    "get_cfg",
    "lint_instructions",
    "lint_kernel",
    "max_severity",
    "render_json",
    "render_text",
    "run_passes",
    "shared_access_table",
    "solve_backward",
    "solve_forward",
    "static_report",
]


def default_passes() -> list[AnalysisPass]:
    """The pass list ``python -m repro.sass lint`` runs, in order."""
    return [
        CfgPass(),
        ControlCodePass(),
        UninitRegisterPass(),
        BarrierDivergencePass(),
        RegisterBankPass(),
        SharedMemoryPass(),
        SharedRacePass(),
        LivenessPass(),
        OccupancyPass(),
    ]


def lint_instructions(
    instructions: list[Instruction],
    meta: KernelMeta | None = None,
    *,
    num_warps: int = DEFAULT_NUM_WARPS,
    passes: Sequence[AnalysisPass] | None = None,
) -> list[Diagnostic]:
    """Run the analyzer over a raw instruction list."""
    ctx = AnalysisContext(
        instructions=instructions, meta=meta, num_warps=num_warps
    )
    return run_passes(ctx, default_passes() if passes is None else passes)


def lint_kernel(
    kernel: "AssembledKernel",
    *,
    num_warps: int = DEFAULT_NUM_WARPS,
    passes: Sequence[AnalysisPass] | None = None,
) -> list[Diagnostic]:
    """Run the analyzer over an assembled kernel (uses its metadata)."""
    return lint_instructions(
        kernel.instructions,
        meta=kernel.meta,
        num_warps=num_warps,
        passes=passes,
    )


def render_text(
    diagnostics: Sequence[Diagnostic], *, kernel_name: str = ""
) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [d.text() for d in diagnostics]
    counts = count_by_severity(diagnostics)
    label = f"{kernel_name}: " if kernel_name else ""
    lines.append(
        f"{label}{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info"
    )
    return "\n".join(lines)


def render_json(
    diagnostics: Sequence[Diagnostic], *, kernel_name: str = ""
) -> str:
    """Machine-readable report (stable schema, used by the CI artifact).

    Schema (version 1): ``kernel`` (name), ``summary`` (count per
    severity) and ``diagnostics`` — each with ``rule``, ``severity``,
    ``pos``, ``instruction``, ``message``, ``hint``, plus the pass name
    (``pass``), CFG basic-block id (``block``, -1 for program-level
    findings) and source ``line`` annotated by :func:`run_passes`.
    New fields may be added; existing fields never change meaning.
    """
    payload: dict[str, Any] = {
        "version": 1,
        "kernel": kernel_name,
        "summary": count_by_severity(diagnostics),
        "diagnostics": [d.to_json() for d in diagnostics],
    }
    return json.dumps(payload, indent=2)
