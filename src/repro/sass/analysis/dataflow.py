"""Generic worklist dataflow solver over :mod:`repro.sass.analysis.cfg`.

Forward and backward solvers share one shape: per-block transfer
functions are iterated to a fixpoint with *optimistic* initialization —
a block's output is ``None`` ("not yet computed") until its transfer has
run, and joins see only the already-computed inputs.  That convention
makes must-analyses (AND-style joins, e.g. "defined on every path")
converge to the precise greatest fixpoint instead of being destroyed by
an all-empty initial value, and may-analyses (OR-style joins) are
unaffected.

The solver knows nothing about the state type ``S`` beyond the three
callbacks:

* ``transfer(block, state) -> state`` — must not mutate its input;
* ``join(states) -> state`` — called with ≥1 computed predecessor
  state (plus the boundary state at the entry block);
* ``edge_transfer(edge, state) -> state`` — optional per-edge filter
  (predicate-aware kills use the edge's :class:`EdgeCondition`).

States are compared with ``==`` (override with ``equal``) to detect the
fixpoint; all analyses in this package use finite-height lattices, so
the iteration cap is a defensive backstop, not a tuning knob.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from .cfg import BasicBlock, ControlFlowGraph, Edge

S = TypeVar("S")

#: Defensive cap on worklist pops per solve.  Every analysis here has a
#: finite-height lattice, so hitting this means a broken transfer/join.
_MAX_VISITS_PER_BLOCK = 256


class DataflowDiverged(RuntimeError):
    """A solve exceeded the visit cap: transfer/join is not monotone."""


def solve_forward(
    cfg: ControlFlowGraph,
    entry_state: S,
    transfer: Callable[[BasicBlock, S], S],
    join: Callable[[Sequence[S]], S],
    edge_transfer: Callable[[Edge, S], S] | None = None,
    equal: Callable[[S, S], bool] | None = None,
) -> tuple[list[S | None], list[S | None]]:
    """Forward fixpoint from the entry block.

    Returns ``(in_states, out_states)`` indexed by block id; entries are
    ``None`` for blocks unreachable from the entry (their transfer never
    runs) and for reachable blocks only transiently during iteration.
    """
    n = len(cfg.blocks)
    in_states: list[S | None] = [None] * n
    out_states: list[S | None] = [None] * n
    if n == 0:
        return in_states, out_states

    order = cfg.rpo()
    position = {block_id: i for i, block_id in enumerate(order)}
    eq = equal if equal is not None else lambda a, b: a == b

    worklist = list(order)
    queued = set(order)
    visits = 0
    cap = _MAX_VISITS_PER_BLOCK * n
    while worklist:
        # Pop the earliest block in RPO: loop bodies stabilize before
        # their exits are revisited, minimizing re-evaluation.
        worklist.sort(key=position.__getitem__)
        block_id = worklist.pop(0)
        queued.discard(block_id)
        visits += 1
        if visits > cap:
            raise DataflowDiverged(
                f"forward dataflow did not converge in {cap} visits"
            )

        inputs: list[S] = []
        if block_id == 0:
            inputs.append(entry_state)
        for edge in cfg.predecessors[block_id]:
            pred_out = out_states[edge.src]
            if pred_out is None:
                continue
            if edge_transfer is not None:
                pred_out = edge_transfer(edge, pred_out)
            inputs.append(pred_out)
        if not inputs:
            continue  # no computed input yet; a predecessor will requeue us
        state_in = join(inputs)
        in_states[block_id] = state_in
        state_out = transfer(cfg.blocks[block_id], state_in)
        old = out_states[block_id]
        if old is not None and eq(old, state_out):
            continue
        out_states[block_id] = state_out
        for edge in cfg.successors[block_id]:
            if edge.dst not in queued:
                queued.add(edge.dst)
                worklist.append(edge.dst)
    return in_states, out_states


def solve_backward(
    cfg: ControlFlowGraph,
    exit_state: S,
    transfer: Callable[[BasicBlock, S], S],
    join: Callable[[Sequence[S]], S],
    edge_transfer: Callable[[Edge, S], S] | None = None,
    equal: Callable[[S, S], bool] | None = None,
) -> tuple[list[S | None], list[S | None]]:
    """Backward fixpoint; ``exit_state`` seeds blocks with no successors.

    Returns ``(in_states, out_states)``: ``in_states[b]`` is the state
    at the *top* of block ``b`` (the transfer's result), ``out_states[b]``
    the join over its successors' tops.  Blocks unreachable from the
    entry are skipped, mirroring :func:`solve_forward`.
    """
    n = len(cfg.blocks)
    in_states: list[S | None] = [None] * n
    out_states: list[S | None] = [None] * n
    if n == 0:
        return in_states, out_states

    order = cfg.rpo()
    # Post-order seeding: process sinks first so predecessors see them.
    position = {block_id: i for i, block_id in enumerate(reversed(order))}
    eq = equal if equal is not None else lambda a, b: a == b

    worklist = list(reversed(order))
    queued = set(worklist)
    visits = 0
    cap = _MAX_VISITS_PER_BLOCK * n
    while worklist:
        worklist.sort(key=position.__getitem__)
        block_id = worklist.pop(0)
        queued.discard(block_id)
        visits += 1
        if visits > cap:
            raise DataflowDiverged(
                f"backward dataflow did not converge in {cap} visits"
            )

        inputs: list[S] = []
        succs = cfg.successors[block_id]
        if not succs:
            inputs.append(exit_state)
        for edge in succs:
            succ_in = in_states[edge.dst]
            if succ_in is None:
                continue
            if edge_transfer is not None:
                succ_in = edge_transfer(edge, succ_in)
            inputs.append(succ_in)
        if not inputs:
            # All successors uncomputed (e.g. a block that only jumps
            # into a loop not yet visited): seed with the exit state so
            # cyclic regions bootstrap.
            inputs.append(exit_state)
        state_out = join(inputs)
        out_states[block_id] = state_out
        state_in = transfer(cfg.blocks[block_id], state_out)
        old = in_states[block_id]
        if old is not None and eq(old, state_in):
            continue
        in_states[block_id] = state_in
        for edge in cfg.predecessors[block_id]:
            if edge.src not in queued:
                queued.add(edge.src)
                worklist.append(edge.src)
    return in_states, out_states
