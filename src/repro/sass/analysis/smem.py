"""Shared-memory bank-conflict and alignment pass (§4.3-§4.4).

The paper's Table 4 layout, Fig. 3 lane arrangement and Fig. 5 transpose
interleave exist to make every LDS/STS in the kernel conflict-free on
the 32-bank × 4-byte shared memory.  This pass proves those properties
*statically*: it symbolically executes the integer/address portion of
the instruction stream for each warp — seeding ``S2R SR_TID.X`` with the
warp's concrete thread ids and evaluating IMAD/IADD3/LOP3/SHF/ISETP/...
exactly as the simulator's engine does — and then replays every shared
access against the same phase/bank model the simulator charges cycles
with (:func:`repro.gpusim.memory.bank_conflict_report`; the model is
duplicated here so the assembler layer does not import the simulator,
and a differential test keeps the two in lock step).

Registers whose values depend on memory contents or kernel parameters
become *unknown* and poison anything computed from them; shared-memory
addressing in the paper's kernels is a pure function of ``threadIdx``,
so the evaluator resolves every access.  Accesses with unknown
addresses are skipped and summarized in one info diagnostic.

Rules:

* ``SM001`` (warning) — an n-way bank conflict: distinct 32-bit words in
  the same bank within one access phase serialize (n−1 extra MIO cycles
  per phase);
* ``SM002`` (error) — a lane's address is not aligned to the access
  width (requirement (ii) of §4.3; the hardware faults);
* ``SM003`` (error) — an access falls outside the ``.smem`` window
  declared by the kernel;
* ``SM004`` (info) — accesses whose addresses could not be resolved
  statically (count, for auditability).

Control flow is handled linearly: backward branches are not re-executed
(loop bodies recompute nothing that shared addressing depends on — base
registers are loop-invariant in all generated kernels), and lanes masked
off by a statically known guard predicate are excluded exactly as the
hardware excludes them.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..instruction import Instruction
from ..isa import RZ, SETP_BOOL, SETP_CMP, SPECIAL_REGISTERS, width_of
from ..operands import Const, Imm, Pred, Reg
from .base import AnalysisContext, AnalysisPass
from .diagnostics import Diagnostic, Severity

NUM_BANKS = 32
BANK_BYTES = 4

_U32 = np.uint32

_FULL_MASK = np.ones(32, dtype=bool)
_FULL_MASK.setflags(write=False)  # shared by every unguarded step


def warp_access_cycles(
    addrs: np.ndarray, width: int, mask: np.ndarray
) -> tuple[int, int, int]:
    """(phases, cycles, worst multiplicity) for one warp shared access.

    Mirror of :func:`repro.gpusim.memory.bank_conflict_report`: a
    ``width``-byte access is served in ``width/4`` phases of
    ``128/width × 4`` consecutive lanes; within a phase the classic
    32-bit rule applies to all words the phase's lanes touch (same-word
    broadcast, distinct words in one bank serialize).
    """
    phases = width // BANK_BYTES
    lanes_per_phase = 32 // phases
    if not mask.any():
        return phases, phases, 1
    cycles = 0
    worst = 1
    words_per_lane = width // BANK_BYTES
    lane_ids = np.arange(addrs.size)
    offsets = np.arange(words_per_lane, dtype=np.int64)
    for p in range(phases):
        sel = (lane_ids // lanes_per_phase == p) & mask
        if not sel.any():
            cycles += 1
            continue
        words = np.unique(
            (addrs[sel][:, None] // BANK_BYTES + offsets[None, :]).ravel()
        )
        banks = words % NUM_BANKS
        multiplicity = int(np.bincount(banks, minlength=NUM_BANKS).max())
        cycles += max(multiplicity, 1)
        worst = max(worst, multiplicity)
    return phases, cycles, worst


# Tunables that share a layout produce the same warp access patterns,
# and a double-buffered loop repeats each pattern every iteration — the
# conflict report is a pure function of (addrs, width, mask), so
# memoize it module-wide.
_ACCESS_MEMO: dict[tuple, tuple[int, int, int]] = {}
_ACCESS_MEMO_MAX = 8192


def _access_cycles_cached(
    addrs: np.ndarray, width: int, mask: np.ndarray
) -> tuple[int, int, int]:
    key = (width, addrs.tobytes(), mask.tobytes())
    hit = _ACCESS_MEMO.get(key)
    if hit is None:
        if len(_ACCESS_MEMO) >= _ACCESS_MEMO_MAX:
            _ACCESS_MEMO.clear()
        hit = warp_access_cycles(addrs, width, mask)
        _ACCESS_MEMO[key] = hit
    return hit


# ---------------------------------------------------------------------------
# Symbolic per-warp evaluation
# ---------------------------------------------------------------------------


class _WarpEval:
    """Concrete lane evaluation with unknown-poisoning, all warps at once.

    Register and predicate files hold either a lane vector or None
    (unknown).  Values are ``(num_warps, 32)`` arrays — or ``(32,)``
    when warp-invariant, which broadcasts identically — so one pass
    evaluates every warp in lockstep.  The arithmetic mirrors
    ``repro.gpusim.engine`` so the static address model cannot drift
    from the dynamic one.
    """

    def __init__(self, num_warps: int):
        self.nw = num_warps
        self.lanes = np.arange(32, dtype=_U32)
        wid = np.arange(num_warps, dtype=_U32)[:, None]
        self.warp_ids = np.broadcast_to(wid, (num_warps, 32))
        self.tids = (wid * _U32(32) + self.lanes[None, :]).astype(_U32)
        self.regs: dict[int, np.ndarray | None] = {}
        self.preds: dict[int, np.ndarray | None] = {
            i: np.zeros(32, dtype=bool) for i in range(7)
        }
        self.preds[7] = np.ones(32, dtype=bool)

    # ---- file access -----------------------------------------------------
    def reg(self, idx: int) -> np.ndarray | None:
        if idx == RZ:
            return np.zeros(32, dtype=_U32)
        return self.regs.get(idx)

    def set_reg(
        self, idx: int, value: np.ndarray | None, mask: np.ndarray | None
    ) -> None:
        """Masked write; an unknown mask or value poisons the register."""
        if idx == RZ:
            return
        if value is None or mask is None:
            self.regs[idx] = None
            return
        if mask.all():
            self.regs[idx] = value.astype(_U32, copy=False)
            return
        old = self.regs.get(idx)
        if old is None:
            self.regs[idx] = None  # partial write over unknown stays unknown
        else:
            self.regs[idx] = np.where(mask, value.astype(_U32), old)

    def pred(self, p: Pred) -> np.ndarray | None:
        value = self.preds.get(p.index)
        if value is None:
            return None
        return ~value if p.negated else value

    def set_pred(
        self, idx: int, value: np.ndarray | None, mask: np.ndarray | None
    ) -> None:
        if idx == 7:
            return
        if value is None or mask is None:
            self.preds[idx] = None
            return
        old = self.preds.get(idx)
        if mask.all():
            self.preds[idx] = value.copy()
        elif old is None:
            self.preds[idx] = None
        else:
            self.preds[idx] = np.where(mask, value, old)

    def src(self, op: object) -> np.ndarray | None:
        if isinstance(op, Reg):
            value = self.reg(op.index)
            if value is not None and op.negated:
                value = value ^ _U32(0x80000000)
            return value
        if isinstance(op, Imm):
            return np.full(32, op.bits, dtype=_U32)
        if isinstance(op, Const):
            return None  # kernel parameters are launch-time values
        return None

    def guard_mask(self, instr: Instruction) -> np.ndarray | None:
        if instr.guard.is_pt and not instr.guard.negated:
            return _FULL_MASK
        return self.pred(instr.guard)

    # ---- one instruction ---------------------------------------------------
    def step(self, instr: Instruction) -> None:
        name = instr.name
        if name in ("BRA", "EXIT", "BAR", "NOP"):
            return
        spec = instr.spec
        if spec.pipe == "fma" or name == "MUFU":
            # FP results never feed shared addressing; ``_alu`` would
            # evaluate the sources only to return None, so jump straight
            # to the poisoned destination it produces.
            if instr.dest is not None and instr.dest.index != RZ:
                self.regs[instr.dest.index] = None
            return
        mask = self.guard_mask(instr)

        if name == "S2R":
            assert instr.dest is not None
            sr = next(f for f in instr.flags if f.startswith("SR_"))
            sr_id = SPECIAL_REGISTERS[sr]
            if sr_id == 0:
                vals: np.ndarray | None = self.tids
            elif sr_id in (1, 2, 3, 4, 5):
                vals = np.zeros(32, dtype=_U32)  # 1-D blocks, block (0,0,0)
            elif sr_id == 6:
                vals = self.lanes
            else:
                vals = self.warp_ids
            self.set_reg(instr.dest.index, vals, mask)
            return
        if instr.spec.is_load:
            self._clobber_dest(instr, mask)
            return
        if instr.spec.is_store:
            return
        if name == "ISETP":
            a = self.src(instr.srcs[0])
            b = self.src(instr.srcs[1])
            assert instr.src_pred is not None
            combine = self.pred(instr.src_pred)
            result: np.ndarray | None
            if a is None or b is None or combine is None:
                result = None
            else:
                if "U32" in instr.flags:
                    a_cmp, b_cmp = a.astype(np.uint64), b.astype(np.uint64)
                else:
                    a_cmp, b_cmp = a.view(np.int32), b.view(np.int32)
                cmp_name = next((f for f in instr.flags if f in SETP_CMP), "EQ")
                result = {
                    "EQ": a_cmp == b_cmp, "NE": a_cmp != b_cmp,
                    "LT": a_cmp < b_cmp, "LE": a_cmp <= b_cmp,
                    "GT": a_cmp > b_cmp, "GE": a_cmp >= b_cmp,
                }[cmp_name]
                bool_name = next((f for f in instr.flags if f in SETP_BOOL), "AND")
                if bool_name == "AND":
                    result = result & combine
                elif bool_name == "OR":
                    result = result | combine
                else:
                    result = result ^ combine
            self.set_pred(instr.dest_preds[0].index, result, mask)
            return
        if name == "P2R":
            assert instr.dest is not None
            pack = instr.srcs[0].bits if isinstance(instr.srcs[0], Imm) else 0x7F
            vals = np.zeros(32, dtype=_U32)
            known = True
            for i in range(7):
                if pack & (1 << i):
                    p = self.preds.get(i)
                    if p is None:
                        known = False
                        break
                    vals = vals | (p.astype(_U32) << _U32(i))
            self.set_reg(instr.dest.index, vals if known else None, mask)
            return
        if name == "R2P":
            src_op = instr.srcs[0]
            src = self.reg(src_op.index) if isinstance(src_op, Reg) else None
            unpack = instr.srcs[1].bits if isinstance(instr.srcs[1], Imm) else 0
            for i in range(7):
                if unpack & (1 << i):
                    bit = None if src is None else (src >> _U32(i)) & _U32(1) != 0
                    self.set_pred(i, bit, mask)
            return

        srcs = [self.src(op) for op in instr.srcs]
        if name == "IMAD" and "WIDE" in instr.flags:
            self._imad_wide(instr, srcs, mask)
            return
        out = self._alu(instr, srcs)
        if instr.dest is not None:
            self.set_reg(instr.dest.index, out, mask)

    def _alu(
        self, instr: Instruction, srcs: list[np.ndarray | None]
    ) -> np.ndarray | None:
        name = instr.name
        if name == "CS2R":
            return np.zeros(32, dtype=_U32)
        if any(s is None for s in srcs):
            return None
        known = [s for s in srcs if s is not None]
        if name == "MOV":
            return known[0]
        if name == "IADD3":
            a, b, c = known
            return a + b + c
        if name == "IMAD":
            a, b, c = known
            return (
                a.astype(np.int64) * b.astype(np.int64) + c.astype(np.int64)
            ).astype(np.uint64).astype(_U32)
        if name == "LOP3":
            a, b, c = known
            op_name = next(
                (f for f in instr.flags if f in ("AND", "OR", "XOR")), "AND"
            )
            if op_name == "AND":
                return (a & b) ^ c
            if op_name == "OR":
                return (a | b) ^ c
            return a ^ b ^ c
        if name == "SHF":
            a, sh, c = known
            sh = sh & _U32(31)
            if "L" in instr.flags:
                hi_in = np.where(sh > 0, c >> ((_U32(32) - sh) & _U32(31)), _U32(0))
                return ((a << sh) | hi_in).astype(_U32)
            lo = a >> sh
            hi_in = np.where(sh > 0, c << ((_U32(32) - sh) & _U32(31)), _U32(0))
            return (lo | hi_in).astype(_U32)
        if name == "SEL":
            return known[0]  # engine models SEL the same way
        if name == "POPC":
            v = np.ascontiguousarray(
                np.broadcast_to(known[0], (self.nw, 32)).astype(_U32)
            )
            return (
                np.unpackbits(v.view(np.uint8))
                .reshape(v.shape + (32,))
                .sum(axis=-1)
                .astype(_U32)
            )
        return None  # FP pipe etc.: values never feed shared addressing

    def _imad_wide(
        self,
        instr: Instruction,
        srcs: list[np.ndarray | None],
        mask: np.ndarray | None,
    ) -> None:
        assert instr.dest is not None
        a, b = srcs[0], srcs[1]
        c_op = instr.srcs[2]
        addend: np.ndarray | None
        if isinstance(c_op, Reg) and not c_op.is_rz:
            lo, hi = self.reg(c_op.index), self.reg(c_op.index + 1)
            addend = (
                None
                if lo is None or hi is None
                else lo.astype(np.int64) | (hi.astype(np.int64) << 32)
            )
        else:
            addend = None if srcs[2] is None else srcs[2].astype(np.int64)
        if a is None or b is None or addend is None:
            self.set_reg(instr.dest.index, None, mask)
            self.set_reg(instr.dest.index + 1, None, mask)
            return
        if "U32" in instr.flags:
            prod = a.astype(np.int64) * b.astype(np.int64)
        else:
            prod = a.view(np.int32).astype(np.int64) * b.view(np.int32).astype(
                np.int64
            )
        total = (prod + addend).astype(np.uint64)
        self.set_reg(instr.dest.index, (total & 0xFFFFFFFF).astype(_U32), mask)
        self.set_reg(instr.dest.index + 1, (total >> 32).astype(_U32), mask)

    def _clobber_dest(
        self, instr: Instruction, mask: np.ndarray | None
    ) -> None:
        """A load's destination vector becomes unknown (memory contents)."""
        for reg in instr.writes_registers():
            self.set_reg(reg, None, mask)

    # ---- shared-memory address resolution ---------------------------------
    def shared_addrs(
        self, instr: Instruction
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """(addrs, active-lane mask) as ``(num_warps, 32)`` arrays, or
        None if not statically known."""
        assert instr.mem is not None
        mask = self.guard_mask(instr)
        if mask is None:
            return None
        base = instr.mem.base.index
        if base == RZ:
            addrs = np.full(32, instr.mem.offset, dtype=np.int64)
        else:
            lo = self.reg(base)
            if lo is None:
                return None
            if "E" in instr.flags:
                hi = self.reg(base + 1)
                if hi is None:
                    return None
                addrs = (
                    lo.astype(np.int64) | (hi.astype(np.int64) << 32)
                ) + instr.mem.offset
            else:
                addrs = lo.astype(np.int64) + instr.mem.offset
        shape = (self.nw, 32)
        return np.broadcast_to(addrs, shape), np.broadcast_to(mask, shape)


# ---------------------------------------------------------------------------
# Shared access table — one symbolic walk, shared by every consumer
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class SharedAccess:
    """One shared-memory access with statically resolved lane addresses.

    ``addrs``/``active`` are ``(num_warps, 32)`` arrays (byte address
    and participation mask per lane), or None when the evaluator could
    not resolve the address — consumers must count those as unaudited.
    """

    pos: int
    instr: Instruction
    is_store: bool
    width: int
    addrs: np.ndarray | None
    active: np.ndarray | None

    @property
    def resolved(self) -> bool:
        return self.addrs is not None


def shared_access_table(ctx: AnalysisContext) -> list[SharedAccess]:
    """Every shared-memory access in program order, addresses resolved.

    Both :class:`SharedMemoryPass` (bank conflicts, alignment, bounds)
    and the cross-warp race detector consume this; the symbolic warp
    evaluation runs once per context and is memoized on it.
    """
    cached = ctx.__dict__.get("_shared_access_cache")
    if cached is not None:
        return cached

    table: list[SharedAccess] = []
    state = _WarpEval(ctx.num_warps)
    for pos, instr in enumerate(ctx.instructions):
        if instr.spec.mem_space == "shared":
            resolved = state.shared_addrs(instr)
            addrs, active = resolved if resolved is not None else (None, None)
            table.append(SharedAccess(
                pos=pos,
                instr=instr,
                is_store=instr.spec.is_store,
                width=width_of(instr.flags),
                addrs=addrs,
                active=active,
            ))
        state.step(instr)
    ctx.__dict__["_shared_access_cache"] = table
    return table


# ---------------------------------------------------------------------------
# The pass
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _Finding:
    severity: Severity
    message: str
    hint: str
    worst: int = 0  # n-way multiplicity, to keep the worst warp's report


class SharedMemoryPass(AnalysisPass):
    name = "smem-bank"
    rules = ("SM001", "SM002", "SM003", "SM004")

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        findings: dict[tuple[int, str], _Finding] = {}
        unknown_positions: set[int] = set()
        smem_bytes = ctx.smem_bytes

        for access in shared_access_table(ctx):
            if access.addrs is None or access.active is None:
                unknown_positions.add(access.pos)
                continue
            for warp_id in range(ctx.num_warps):
                self._check_access(
                    access.pos, access.instr, warp_id,
                    access.addrs[warp_id], access.active[warp_id],
                    smem_bytes=smem_bytes, findings=findings,
                )

        diags = [
            Diagnostic(
                rule=rule,
                severity=f.severity,
                pos=pos,
                instruction=ctx.instructions[pos].name,
                message=f.message,
                hint=f.hint,
            )
            for (pos, rule), f in findings.items()
        ]
        if unknown_positions:
            diags.append(Diagnostic(
                rule="SM004",
                severity=Severity.INFO,
                pos=-1,
                instruction="",
                message=(
                    f"{len(unknown_positions)} shared-memory access(es) have "
                    "statically unknown addresses and were not checked "
                    f"(instructions {sorted(unknown_positions)[:8]}...)"
                    if len(unknown_positions) > 8 else
                    f"{len(unknown_positions)} shared-memory access(es) have "
                    "statically unknown addresses and were not checked "
                    f"(instructions {sorted(unknown_positions)})"
                ),
                hint="shared addressing should be a pure function of "
                     "threadIdx; data-dependent addresses cannot be audited",
            ))
        return diags

    def _check_access(
        self,
        pos: int,
        instr: Instruction,
        warp_id: int,
        addrs: np.ndarray,
        mask: np.ndarray,
        smem_bytes: int | None,
        findings: dict[tuple[int, str], _Finding],
    ) -> None:
        width = width_of(instr.flags)
        active = addrs[mask]
        if active.size == 0:
            return

        misaligned = active[active % width != 0]
        if misaligned.size:
            self._keep(findings, pos, "SM002", _Finding(
                severity=Severity.ERROR,
                message=(
                    f"warp {warp_id}: {width}-byte access at address "
                    f"{int(misaligned[0]):#x} is not {width}-byte aligned "
                    "(the hardware faults; §4.3 requirement (ii))"
                ),
                hint=f"make the byte address a multiple of {width} for "
                     "every lane",
            ))

        if smem_bytes is not None and (
            active.min() < 0 or int(active.max()) + width > smem_bytes
        ):
            bad = int(active[(active < 0) | (active + width > smem_bytes)][0])
            self._keep(findings, pos, "SM003", _Finding(
                severity=Severity.ERROR,
                message=(
                    f"warp {warp_id}: access at {bad:#x} falls outside the "
                    f"{smem_bytes}-byte .smem window"
                ),
                hint="raise the .smem directive or fix the address "
                     "computation",
            ))

        phases, cycles, worst = _access_cycles_cached(addrs, width, mask)
        if cycles > phases:
            self._keep(findings, pos, "SM001", _Finding(
                severity=Severity.WARNING,
                message=(
                    f"warp {warp_id}: {worst}-way bank conflict "
                    f"({cycles - phases} extra MIO cycle(s) over the "
                    f"{phases}-phase minimum)"
                ),
                hint="re-map addresses so each phase's lanes touch 32 "
                     "distinct banks (Table 4 / Fig. 5 layouts)",
                worst=worst,
            ))

    @staticmethod
    def _keep(
        findings: dict[tuple[int, str], _Finding],
        pos: int,
        rule: str,
        finding: _Finding,
    ) -> None:
        """Keep one finding per (instruction, rule): the worst warp's."""
        key = (pos, rule)
        existing = findings.get(key)
        if existing is None or finding.worst > existing.worst:
            findings[key] = finding
