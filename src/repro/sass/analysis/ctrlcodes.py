"""Path-sensitive control-code hazard pass (§5.1.4).

On Volta/Turing the hardware does not interlock: fixed-latency results
must be covered by the issuing warp's stall counts, variable-latency
results (memory, MUFU, S2R) by one of the six scoreboard barriers that
some later instruction waits on.  This pass proves an instruction stream
hazard-free under the same latency model ``schedule`` uses — but over
the **control-flow graph**, not a straight line: the hazard state is
propagated along every CFG path with a worklist fixpoint
(:func:`~repro.sass.analysis.dataflow.solve_forward`), joining
pessimistically at merge points, so a wait barrier missing on only one
arm of a branch — or a latency carried around a loop back edge — is
found exactly like a straight-line hazard.

The state per program point:

* remaining cycles until each fixed-latency result is ready (the
  linear scan's ``ready[reg] = t + latency`` recast as a relative
  countdown so it can be joined across paths — joins take the max);
* which registers/predicates each armed scoreboard barrier guards
  (joins take the union);
* variable-latency results that carry **no** barrier (joins keep the
  earliest producer, so messages are deterministic).

Unlike the original checker this pass tracks **predicates** alongside
registers: a variable-latency producer can write predicates (e.g. a
load with a predicate destination), and a consumer reading that
predicate without a barrier wait is just as much a hazard as a register
read.

Rules (all errors — a hazard means wrong results on hardware):

* ``CTRL001`` — touching a register/predicate guarded by a scoreboard
  barrier without waiting on that barrier;
* ``CTRL002`` — touching the result of a variable-latency producer that
  carries no barrier at all (nothing *can* wait for it);
* ``CTRL003`` — consuming a fixed-latency result before the producer's
  latency has elapsed (insufficient stall cycles) on at least one path.

``repro.sass.hazards.validate_control`` remains as a thin wrapper that
renders these diagnostics in its historical string format; for programs
without branches the output is identical to the old linear scan.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

from ..control import NO_BARRIER
from ..instruction import Instruction
from ..isa import NUM_WAIT_BARRIERS
from .base import AnalysisContext, AnalysisPass
from .cfg import BasicBlock, get_cfg
from .dataflow import solve_forward
from .diagnostics import Diagnostic, Severity

_Emit = Callable[[str, int, str, str, str], None]

_GuardedMap = dict[tuple[int, str], tuple[frozenset[int], frozenset[int]]]


@dataclasses.dataclass
class _State:
    """Hazard facts at one program point (see module docstring)."""

    rem_reg: dict[int, int] = dataclasses.field(default_factory=dict)
    rem_pred: dict[int, int] = dataclasses.field(default_factory=dict)
    guarded: _GuardedMap = dataclasses.field(default_factory=dict)
    unguarded_reg: dict[int, int] = dataclasses.field(default_factory=dict)
    unguarded_pred: dict[int, int] = dataclasses.field(default_factory=dict)

    def copy(self) -> "_State":
        return _State(
            rem_reg=dict(self.rem_reg),
            rem_pred=dict(self.rem_pred),
            guarded=dict(self.guarded),
            unguarded_reg=dict(self.unguarded_reg),
            unguarded_pred=dict(self.unguarded_pred),
        )


def _join(states: Sequence[_State]) -> _State:
    """Pessimistic merge: a hazard on any incoming path is a hazard."""
    merged = states[0].copy()
    for state in states[1:]:
        for rem, other in (
            (merged.rem_reg, state.rem_reg),
            (merged.rem_pred, state.rem_pred),
        ):
            for key, value in other.items():
                if value > rem.get(key, 0):
                    rem[key] = value
        for key, (regs, preds) in state.guarded.items():
            have = merged.guarded.get(key)
            if have is None:
                merged.guarded[key] = (regs, preds)
            else:
                merged.guarded[key] = (have[0] | regs, have[1] | preds)
        for ung, other_ung in (
            (merged.unguarded_reg, state.unguarded_reg),
            (merged.unguarded_pred, state.unguarded_pred),
        ):
            for key, pos in other_ung.items():
                if key not in ung or pos < ung[key]:
                    ung[key] = pos
    return merged


def _step(
    state: _State, pos: int, instr: Instruction, emit: _Emit | None
) -> None:
    """Advance ``state`` over one instruction, reporting via ``emit``.

    The check/publish order replicates the original linear scan exactly,
    so single-block programs produce byte-identical diagnostics.
    """
    spec = instr.spec
    reads = set(instr.reads_registers())
    writes = set(instr.writes_registers())
    pred_reads = set(instr.reads_predicates())
    pred_writes = set(instr.writes_predicates())

    # ---- waits retire barriers (and the unguarded flags they cover) ----
    for idx in range(NUM_WAIT_BARRIERS):
        if not instr.control.waits_on(idx):
            continue
        for kind in ("write", "read"):
            pending = state.guarded.pop((idx, kind), None)
            if pending is None:
                continue
            for reg in pending[0]:
                state.unguarded_reg.pop(reg, None)
            for p in pending[1]:
                state.unguarded_pred.pop(p, None)

    # ---- CTRL001: touching guarded results without waiting --------------
    if emit is not None:
        for (idx, kind), (regs, preds) in sorted(state.guarded.items()):
            if kind == "write":
                reg_hazard = regs & (reads | writes)
                pred_hazard = preds & (pred_reads | pred_writes)
            else:
                reg_hazard = regs & writes
                pred_hazard = preds & pred_writes
            if reg_hazard:
                reg = sorted(reg_hazard)[0]
                emit(
                    "CTRL001", pos, instr.name,
                    f"touches R{reg} guarded by barrier {idx} without "
                    "waiting on it",
                    f"add barrier {idx} to this instruction's wait mask",
                )
            if pred_hazard:
                p = sorted(pred_hazard)[0]
                emit(
                    "CTRL001", pos, instr.name,
                    f"touches P{p} guarded by barrier {idx} without "
                    "waiting on it",
                    f"add barrier {idx} to this instruction's wait mask",
                )

        # ---- CTRL002/CTRL003: unawaited and too-early results -----------
        for reg in sorted(reads | writes):
            if reg in state.unguarded_reg:
                emit(
                    "CTRL002", pos, instr.name,
                    f"touches R{reg} whose variable-latency producer at "
                    f"{state.unguarded_reg[reg]} was not awaited",
                    "give the producer a write barrier and wait on it "
                    "here",
                )
            if state.rem_reg.get(reg, 0) > 0:
                emit(
                    "CTRL003", pos, instr.name,
                    f"reads/writes R{reg} {state.rem_reg[reg]} cycles "
                    "too early",
                    "raise the producer's stall count to cover its "
                    "latency",
                )
        for p in sorted(pred_reads | pred_writes):
            if p in state.unguarded_pred:
                emit(
                    "CTRL002", pos, instr.name,
                    f"touches P{p} whose variable-latency producer at "
                    f"{state.unguarded_pred[p]} was not awaited",
                    "give the producer a write barrier and wait on it "
                    "here",
                )
        for p in sorted(pred_reads):
            if state.rem_pred.get(p, 0) > 0:
                emit(
                    "CTRL003", pos, instr.name,
                    f"reads P{p} {state.rem_pred[p]} cycles too early",
                    "raise the producer's stall count to cover its "
                    "latency",
                )

    # ---- publish this instruction's results -----------------------------
    if spec.latency is not None:
        for reg in writes:
            state.rem_reg[reg] = spec.latency
        for p in pred_writes:
            state.rem_pred[p] = spec.latency
    elif instr.name not in ("BRA", "EXIT", "BAR", "NOP"):
        bar = (
            instr.control.read_bar
            if spec.is_store
            else instr.control.write_bar
        )
        tracked_regs = reads if spec.is_store else writes
        tracked_preds: set[int] = set() if spec.is_store else pred_writes
        if bar == NO_BARRIER:
            if not spec.is_store:
                for reg in tracked_regs:
                    state.unguarded_reg[reg] = pos
                for p in tracked_preds:
                    state.unguarded_pred[p] = pos
        else:
            kind = "read" if spec.is_store else "write"
            # Re-arming a barrier with the opposite kind replaces it (the
            # linear scan's behavior); the same kind accumulates.
            state.guarded.pop((bar, "read" if kind == "write" else "write"),
                              None)
            have = state.guarded.get((bar, kind))
            if have is not None:
                state.guarded[(bar, kind)] = (
                    have[0] | tracked_regs, have[1] | tracked_preds
                )
            else:
                state.guarded[(bar, kind)] = (
                    frozenset(tracked_regs), frozenset(tracked_preds)
                )

    # ---- time advances: countdowns shrink by this instruction's stall ---
    elapsed = max(instr.control.stall, 1)
    for rem in (state.rem_reg, state.rem_pred):
        for key in list(rem):
            left = rem[key] - elapsed
            if left > 0:
                rem[key] = left
            else:
                del rem[key]


class ControlCodePass(AnalysisPass):
    name = "control-codes"
    rules = ("CTRL001", "CTRL002", "CTRL003")

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        if not ctx.instructions:
            return []
        cfg = get_cfg(ctx)
        instructions = ctx.instructions

        def transfer(block: BasicBlock, state: _State) -> _State:
            state = state.copy()
            for pos in block.positions():
                _step(state, pos, instructions[pos], None)
            return state

        in_states, _ = solve_forward(cfg, _State(), transfer, _join)

        diags: list[Diagnostic] = []

        def emit(rule: str, pos: int, name: str, message: str,
                 hint: str) -> None:
            diags.append(Diagnostic(
                rule=rule,
                severity=Severity.ERROR,
                pos=pos,
                instruction=name,
                message=message,
                hint=hint,
            ))

        # Reporting sweep: replay each reachable block from its fixpoint
        # in-state.  Unreachable blocks carry no state (CFG001 flags
        # them); they cannot hazard because they never execute.
        for block in cfg.blocks:
            state = in_states[block.id]
            if state is None:
                continue
            state = state.copy()
            for pos in block.positions():
                _step(state, pos, instructions[pos], emit)
        return diags
