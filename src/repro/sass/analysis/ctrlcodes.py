"""Control-code hazard pass (§5.1.4) — the old ``validate_control``.

On Volta/Turing the hardware does not interlock: fixed-latency results
must be covered by the issuing warp's stall counts, variable-latency
results (memory, MUFU, S2R) by one of the six scoreboard barriers that
some later instruction waits on.  This pass proves an instruction stream
hazard-free under the same linear-scan latency model ``schedule`` uses.

Unlike the original checker this pass tracks **predicates** alongside
registers: a variable-latency producer can write predicates (e.g. a
load with a predicate destination), and a consumer reading that
predicate without a barrier wait is just as much a hazard as a register
read — the original ``guarded`` map silently dropped them.

Rules (all errors — a hazard means wrong results on hardware):

* ``CTRL001`` — touching a register/predicate guarded by a scoreboard
  barrier without waiting on that barrier;
* ``CTRL002`` — touching the result of a variable-latency producer that
  carries no barrier at all (nothing *can* wait for it);
* ``CTRL003`` — consuming a fixed-latency result before the producer's
  latency has elapsed (insufficient stall cycles).

``repro.sass.hazards.validate_control`` remains as a thin wrapper that
renders these diagnostics in its historical string format.
"""

from __future__ import annotations

import dataclasses

from ..control import NO_BARRIER
from ..isa import NUM_WAIT_BARRIERS
from .base import AnalysisContext, AnalysisPass
from .diagnostics import Diagnostic, Severity


@dataclasses.dataclass
class _Guarded:
    kind: str  # "write" or "read"
    regs: set[int]
    preds: set[int]


class ControlCodePass(AnalysisPass):
    name = "control-codes"

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        ready_reg: dict[int, int] = {}
        ready_pred: dict[int, int] = {}
        guarded: dict[int, _Guarded] = {}
        unguarded_reg: dict[int, int] = {}  # reg -> producer pos
        unguarded_pred: dict[int, int] = {}  # pred -> producer pos
        t = 0

        def emit(rule: str, pos: int, name: str, message: str, hint: str) -> None:
            diags.append(Diagnostic(
                rule=rule,
                severity=Severity.ERROR,
                pos=pos,
                instruction=name,
                message=message,
                hint=hint,
            ))

        for pos, instr in enumerate(ctx.instructions):
            spec = instr.spec
            reads = set(instr.reads_registers())
            writes = set(instr.writes_registers())
            pred_reads = set(instr.reads_predicates())
            pred_writes = set(instr.writes_predicates())

            for idx in range(NUM_WAIT_BARRIERS):
                if instr.control.waits_on(idx) and idx in guarded:
                    pending = guarded.pop(idx)
                    for reg in pending.regs:
                        unguarded_reg.pop(reg, None)
                    for p in pending.preds:
                        unguarded_pred.pop(p, None)

            for idx, pending in guarded.items():
                if pending.kind == "write":
                    reg_hazard = pending.regs & (reads | writes)
                    pred_hazard = pending.preds & (pred_reads | pred_writes)
                else:
                    reg_hazard = pending.regs & writes
                    pred_hazard = pending.preds & pred_writes
                if reg_hazard:
                    reg = sorted(reg_hazard)[0]
                    emit(
                        "CTRL001", pos, instr.name,
                        f"touches R{reg} guarded by barrier {idx} without "
                        "waiting on it",
                        f"add barrier {idx} to this instruction's wait mask",
                    )
                if pred_hazard:
                    p = sorted(pred_hazard)[0]
                    emit(
                        "CTRL001", pos, instr.name,
                        f"touches P{p} guarded by barrier {idx} without "
                        "waiting on it",
                        f"add barrier {idx} to this instruction's wait mask",
                    )

            for reg in sorted(reads | writes):
                if reg in unguarded_reg:
                    emit(
                        "CTRL002", pos, instr.name,
                        f"touches R{reg} whose variable-latency producer at "
                        f"{unguarded_reg[reg]} was not awaited",
                        "give the producer a write barrier and wait on it "
                        "here",
                    )
                if ready_reg.get(reg, 0) > t:
                    emit(
                        "CTRL003", pos, instr.name,
                        f"reads/writes R{reg} {ready_reg[reg] - t} cycles "
                        "too early",
                        "raise the producer's stall count to cover its "
                        "latency",
                    )
            for p in sorted(pred_reads | pred_writes):
                if p in unguarded_pred:
                    emit(
                        "CTRL002", pos, instr.name,
                        f"touches P{p} whose variable-latency producer at "
                        f"{unguarded_pred[p]} was not awaited",
                        "give the producer a write barrier and wait on it "
                        "here",
                    )
            for p in sorted(pred_reads):
                if ready_pred.get(p, 0) > t:
                    emit(
                        "CTRL003", pos, instr.name,
                        f"reads P{p} {ready_pred[p] - t} cycles too early",
                        "raise the producer's stall count to cover its "
                        "latency",
                    )

            if spec.latency is not None:
                for reg in writes:
                    ready_reg[reg] = t + spec.latency
                for p in pred_writes:
                    ready_pred[p] = t + spec.latency
            elif instr.name not in ("BRA", "EXIT", "BAR", "NOP"):
                bar = (
                    instr.control.read_bar
                    if spec.is_store
                    else instr.control.write_bar
                )
                tracked_regs = reads if spec.is_store else writes
                tracked_preds = set() if spec.is_store else pred_writes
                if bar == NO_BARRIER:
                    if not spec.is_store:
                        for reg in tracked_regs:
                            unguarded_reg[reg] = pos
                        for p in tracked_preds:
                            unguarded_pred[p] = pos
                else:
                    kind = "read" if spec.is_store else "write"
                    pending = guarded.get(bar)
                    if pending is not None and pending.kind == kind:
                        pending.regs |= tracked_regs
                        pending.preds |= tracked_preds
                    else:
                        guarded[bar] = _Guarded(
                            kind, set(tracked_regs), set(tracked_preds)
                        )

            t += max(instr.control.stall, 1)
        return diags
