"""Barrier-divergence pass.

``BAR.SYNC`` assumes every warp (and every lane of every warp) arrives.
Under Volta's independent thread scheduling a barrier executed under a
lane-divergent predicate — or reachable on only one arm of a
lane-divergent branch — can deadlock the block or silently desynchronize
the producer/consumer hand-off the paper's pipeline depends on.

The pass runs a forward **uniformity taint** dataflow over the CFG: a
register/predicate is *nonuniform* when its value may differ between
lanes of one warp.  Sources of nonuniformity are ``S2R SR_TID.*`` and
``SR_LANEID`` and anything loaded from memory; ``SR_CTAID.*``, warp
ids, immediates and constant-bank reads are uniform.  ALU results taint
from their inputs; a write under a nonuniform guard taints its
destination (lanes where the guard is false keep the old value).  Joins
are unions — tainted on any path means possibly divergent.

Rules:

* ``BD001`` (error)   — ``BAR`` guarded by a nonuniform predicate: the
  warp's lanes disagree about arriving;
* ``BD002`` (warning) — ``BAR`` reachable from one arm of a branch on a
  nonuniform predicate but not the other (static reachability
  over-approximates re-convergence, hence warning, not error).
"""

from __future__ import annotations

from typing import Sequence

from ..instruction import Instruction
from ..isa import RZ, SPECIAL_REGISTERS
from ..operands import Const, Imm, Reg
from .base import AnalysisContext, AnalysisPass
from .cfg import BasicBlock, ControlFlowGraph, get_cfg
from .dataflow import solve_forward
from .diagnostics import Diagnostic, Severity

#: SR ids whose value differs between lanes of one warp (SR_TID.*
#: because threads of a warp have consecutive tids, and SR_LANEID).
_NONUNIFORM_SR_IDS = frozenset({0, 6})

# State: (nonuniform_regs, nonuniform_preds) bitmasks.
_State = tuple[int, int]


def _input_taint(instr: Instruction, regs: int, preds: int) -> bool:
    for src in instr.srcs:
        if isinstance(src, Reg):
            if src.index != RZ and regs >> src.index & 1:
                return True
        elif not isinstance(src, (Imm, Const)):
            return True  # unknown operand kind: assume divergent
    if instr.mem is not None and not instr.mem.base.is_rz:
        if regs >> instr.mem.base.index & 1:
            return True
    if instr.src_pred is not None and not instr.src_pred.is_pt:
        if preds >> instr.src_pred.index & 1:
            return True
    return False


def _guard_taint(instr: Instruction, preds: int) -> bool:
    return not instr.guard.is_pt and bool(preds >> instr.guard.index & 1)


def _step(instr: Instruction, state: _State) -> _State:
    regs, preds = state
    if instr.name in ("BRA", "EXIT", "BAR", "NOP"):
        return state
    guarded = _guard_taint(instr, preds)

    if instr.name == "S2R":
        sr = next((f for f in instr.flags if f.startswith("SR_")), "SR_TID.X")
        tainted = SPECIAL_REGISTERS.get(sr, 0) in _NONUNIFORM_SR_IDS or guarded
        assert instr.dest is not None
        return _set_regs(regs, [instr.dest.index], tainted), preds

    if instr.spec.is_load:
        # Memory contents are unknown: assume lane-divergent values.
        return _set_regs(regs, instr.writes_registers(), True), preds

    if instr.spec.is_store:
        return state

    tainted = _input_taint(instr, regs, preds) or guarded
    if guarded:
        # A partial write mixes old and new lanes: only ever *adds*
        # taint, never clears it.
        if not tainted:
            return state
    new_regs = _set_regs(regs, instr.writes_registers(), tainted)
    new_preds = preds
    for p in instr.writes_predicates():
        if tainted:
            new_preds |= 1 << p
        else:
            new_preds &= ~(1 << p)
    return new_regs, new_preds


def _set_regs(mask: int, targets: Sequence[int], tainted: bool) -> int:
    for reg in targets:
        if reg == RZ:
            continue
        if tainted:
            mask |= 1 << reg
        else:
            mask &= ~(1 << reg)
    return mask


class BarrierDivergencePass(AnalysisPass):
    name = "barrier-divergence"
    rules = ("BD001", "BD002")

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        if not ctx.instructions:
            return []
        cfg = get_cfg(ctx)
        instructions = ctx.instructions

        def transfer(block: BasicBlock, state: _State) -> _State:
            for pos in block.positions():
                state = _step(instructions[pos], state)
            return state

        def join(states: Sequence[_State]) -> _State:
            regs, preds = states[0]
            for other in states[1:]:
                regs |= other[0]
                preds |= other[1]
            return regs, preds

        in_states, out_states = solve_forward(cfg, (0, 0), transfer, join)

        diags: list[Diagnostic] = []

        # BD001: a BAR whose own guard is nonuniform at that point.
        for block in cfg.blocks:
            state = in_states[block.id]
            if state is None:
                continue
            for pos in block.positions():
                instr = instructions[pos]
                if instr.name == "BAR" and _guard_taint(instr, state[1]):
                    diags.append(Diagnostic(
                        rule="BD001",
                        severity=Severity.ERROR,
                        pos=pos,
                        instruction=instr.name,
                        message=(
                            f"BAR.SYNC guarded by P{instr.guard.index}, "
                            "whose value may differ between lanes of one "
                            "warp"
                        ),
                        hint="barriers must be executed uniformly; "
                             "compute the guard from uniform inputs or "
                             "drop it",
                    ))
                state = _step(instr, state)

        # BD002: a BAR on only one arm of a nonuniform conditional branch.
        flagged: set[int] = set()
        for block in cfg.blocks:
            state = out_states[block.id]
            if state is None:
                continue
            last_pos = block.end - 1
            last = instructions[last_pos]
            if last.name != "BRA" or (last.guard.is_pt and not last.guard.negated):
                continue
            if not state[1] >> last.guard.index & 1:
                continue
            arms: dict[str, set[int]] = {"taken": set(), "fall": set()}
            for edge in cfg.successors[block.id]:
                if edge.kind in arms:
                    arms[edge.kind] |= cfg.reachable_from(edge.dst)
            for bar_pos in self._bars_in(
                cfg, arms["taken"] ^ arms["fall"]
            ):
                if bar_pos in flagged:
                    continue
                flagged.add(bar_pos)
                diags.append(Diagnostic(
                    rule="BD002",
                    severity=Severity.WARNING,
                    pos=bar_pos,
                    instruction="BAR",
                    message=(
                        "BAR.SYNC is reachable from one arm of the "
                        f"branch at instruction {last_pos} (on "
                        f"P{last.guard.index}, which may be "
                        "lane-divergent) but not the other"
                    ),
                    hint="hoist the barrier above the divergent branch "
                         "or make the branch condition warp-uniform",
                ))
        return diags

    @staticmethod
    def _bars_in(cfg: ControlFlowGraph, block_ids: set[int]) -> list[int]:
        positions: list[int] = []
        for block_id in sorted(block_ids):
            block = cfg.blocks[block_id]
            for pos in block.positions():
                if cfg.instructions[pos].name == "BAR":
                    positions.append(pos)
        return positions
