"""Pass protocol and driver for the SASS static analyzer.

A pass consumes an :class:`AnalysisContext` — the instruction stream plus
whatever launch metadata is known — and returns :class:`Diagnostic`
records.  The driver (:func:`run_passes`) runs a pass list in order and
returns the merged, position-sorted report; :data:`DEFAULT_PASSES`
mirrors ``python -m repro.sass lint``.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Sequence

from ..instruction import Instruction
from ..preprocess import KernelMeta
from .diagnostics import Diagnostic

#: Warps per block assumed when the launch configuration is unknown.
#: All of the paper's kernels run 256 threads (§3.3).
DEFAULT_NUM_WARPS = 8


@dataclasses.dataclass
class AnalysisContext:
    """Everything a pass may inspect.

    ``meta`` is optional: programs straight out of :func:`parse_program`
    have no directives, so passes must degrade gracefully (e.g. the
    shared-memory pass skips bounds checks without a ``.smem`` size).
    """

    instructions: list[Instruction]
    meta: KernelMeta | None = None
    num_warps: int = DEFAULT_NUM_WARPS

    @property
    def smem_bytes(self) -> int | None:
        if self.meta is None or self.meta.smem_bytes <= 0:
            return None
        return self.meta.smem_bytes


class AnalysisPass(abc.ABC):
    """One analysis over an instruction stream."""

    #: Stable machine name (used in ``--json`` output and docs).
    name: str = "pass"

    #: Every rule code the pass can emit (the docs-sync test walks this).
    rules: tuple[str, ...] = ()

    @abc.abstractmethod
    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        """Analyze ``ctx.instructions`` and return findings."""


def run_passes(
    ctx: AnalysisContext, passes: Sequence[AnalysisPass]
) -> list[Diagnostic]:
    """Run ``passes`` in order; merge and sort findings by position.

    Each finding is annotated with the emitting pass's name, the CFG
    basic-block id that contains its anchor instruction and that
    instruction's source line, so renderers (``--json`` in particular)
    need no further context to localize a diagnostic.
    """
    from .cfg import get_cfg  # deferred: cfg imports this module

    cfg = get_cfg(ctx) if ctx.instructions else None
    merged: list[Diagnostic] = []
    for pass_ in passes:
        for diag in pass_.run(ctx):
            block = -1
            line = diag.line
            if 0 <= diag.pos < len(ctx.instructions):
                if cfg is not None:
                    block = cfg.block_of[diag.pos]
                line = ctx.instructions[diag.pos].line
            merged.append(dataclasses.replace(
                diag, pass_name=pass_.name, block=block, line=line
            ))
    merged.sort(key=lambda d: (d.pos, d.rule))
    return merged
