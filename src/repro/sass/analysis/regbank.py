"""Register-bank-conflict and ``.reuse`` validation pass (§4.3, §5.2.2).

Volta/Turing split the register file into two 64-bit banks (even/odd
register index — paper footnote 6).  An FMA/ALU instruction whose
register sources all live in one bank pays an extra issue cycle unless
one of them is served by the operand **reuse cache**: a ``.reuse`` flag
on operand slot *s* keeps that register's value latched for the *next*
instruction's slot *s*.

The pass replays the cache exactly the way the simulator's issue logic
does (:func:`repro.gpusim.engine._register_bank_conflict` is the
dynamic twin) and reports:

* ``RB001`` (warning) — three or more distinct un-cached register
  sources in one bank: the conflict the Fig. 4 register plan eliminates;
* ``RB002`` (error) — a consumer is served a **stale** value: the
  cached register was overwritten after the flag latched it.  The
  functional simulator reads the register file and hides this, but real
  hardware serves the latched (old) value;
* ``RB003`` (warning) — a ``.reuse`` flag no instruction consumes (the
  next instruction's matching slot reads a different register), i.e.
  the flag buys nothing — usually an interleaving bug, see
  :func:`repro.kernels.schedules.weave`;
* ``RB004`` (warning) — ``.reuse`` combined with the yield flag: a
  requested warp switch forfeits the cache (§6.1), so the flag cannot
  serve its consumer.

The cache model is intentionally the simulator's: only instructions on
the generic FMA/ALU issue path read or replace the cache; memory
instructions pass it through untouched; branches and branch targets
reset it (the incoming state is ambiguous across control flow).
"""

from __future__ import annotations

import dataclasses

from ..instruction import Instruction
from ..operands import Reg
from .base import AnalysisContext, AnalysisPass
from .diagnostics import Diagnostic, Severity

#: Opcodes that read operands through the banked register-file path and
#: therefore (a) can pay bank conflicts and (b) read/replace the reuse
#: cache.  Mirrors the generic ALU/FMA path of the simulator's engine.
_EXCLUDED_ALU = ("ISETP", "P2R", "R2P")


def _on_generic_alu_path(instr: Instruction) -> bool:
    return instr.spec.pipe in ("fma", "alu") and instr.name not in _EXCLUDED_ALU


@dataclasses.dataclass
class _CacheEntry:
    reg: int
    producer_pos: int
    stale: bool = False  # overwritten since the flag latched it


class RegisterBankPass(AnalysisPass):
    name = "register-bank"
    rules = ("RB001", "RB002", "RB003", "RB004")

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        diags: list[Diagnostic] = []
        cache: dict[int, _CacheEntry] = {}
        consumed: set[tuple[int, int]] = set()  # (producer_pos, slot) pairs

        branch_targets = _branch_targets(ctx.instructions)

        for pos, instr in enumerate(ctx.instructions):
            if pos in branch_targets:
                # Incoming cache state is ambiguous across control flow;
                # drop entries without judging their consumption.
                for slot in list(cache):
                    consumed.add((cache[slot].producer_pos, slot))
                cache.clear()

            # Any write invalidates matching cache entries (the latch keeps
            # the old value; hardware will happily serve it — stale).
            writes = set(instr.writes_registers())
            for entry in cache.values():
                if entry.reg in writes:
                    entry.stale = True

            if not _on_generic_alu_path(instr):
                if instr.name in ("BRA", "EXIT", "BAR"):
                    for slot in list(cache):
                        consumed.add((cache[slot].producer_pos, slot))
                    cache.clear()
                continue

            # ---- consume: which sources are served by the cache? ----------
            banks: list[int] = []
            seen: set[int] = set()
            for slot, op in enumerate(instr.srcs):
                if not isinstance(op, Reg) or op.is_rz:
                    continue
                entry = cache.get(slot)
                if entry is not None and entry.reg == op.index:
                    consumed.add((entry.producer_pos, slot))
                    if entry.stale:
                        diags.append(Diagnostic(
                            rule="RB002",
                            severity=Severity.ERROR,
                            pos=pos,
                            instruction=instr.name,
                            message=(
                                f"operand slot {slot} reads R{op.index} from the "
                                f"reuse cache, but R{op.index} was overwritten "
                                f"after instr {entry.producer_pos} latched it — "
                                "hardware serves the stale value"
                            ),
                            hint="drop the .reuse flag or move the overwrite "
                                 "after the consumer",
                        ))
                    continue  # served by the cache, no bank-port read
                if op.index in seen:
                    continue  # one physical read feeds both operands
                seen.add(op.index)
                banks.append(op.index & 1)

            if len(banks) >= 3 and len(set(banks)) == 1:
                which = "odd" if banks[0] else "even"
                regs = ", ".join(
                    f"R{op.index}" for op in instr.srcs
                    if isinstance(op, Reg) and not op.is_rz
                )
                diags.append(Diagnostic(
                    rule="RB001",
                    severity=Severity.WARNING,
                    pos=pos,
                    instruction=instr.name,
                    message=(
                        f"all register sources ({regs}) read the {which} "
                        "64-bit bank: +1 issue cycle per warp instruction"
                    ),
                    hint="re-allocate one operand to the other bank or serve "
                         "one via a .reuse flag (Fig. 4)",
                ))

            # ---- publish: this instruction's reuse flags replace the cache.
            new_cache: dict[int, _CacheEntry] = {}
            for slot, op in enumerate(instr.srcs):
                if isinstance(op, Reg) and instr.control.reuse & (1 << slot):
                    if instr.control.yield_flag:
                        diags.append(Diagnostic(
                            rule="RB004",
                            severity=Severity.WARNING,
                            pos=pos,
                            instruction=instr.name,
                            message=(
                                f"slot {slot} .reuse flag is combined with the "
                                "yield flag: the warp switch forfeits the reuse "
                                "cache, so the flag cannot serve its consumer"
                            ),
                            hint="keep .reuse producers on non-yield "
                                 "instructions (§6.1)",
                        ))
                        consumed.add((pos, slot))  # judged; don't also RB003
                        continue
                    entry = _CacheEntry(reg=op.index, producer_pos=pos)
                    if op.index in writes:
                        entry.stale = True
                    new_cache[slot] = entry
            # Entries the consumer did not pick up are judged when replaced.
            for slot, entry in cache.items():
                key = (entry.producer_pos, slot)
                if key not in consumed:
                    consumed.add(key)
                    diags.append(_dead_reuse(ctx.instructions, entry, slot))
            cache = new_cache

        for slot, entry in cache.items():
            if (entry.producer_pos, slot) not in consumed:
                diags.append(_dead_reuse(ctx.instructions, entry, slot))
        return diags


def _dead_reuse(
    instructions: list[Instruction], entry: _CacheEntry, slot: int
) -> Diagnostic:
    instr = instructions[entry.producer_pos]
    return Diagnostic(
        rule="RB003",
        severity=Severity.WARNING,
        pos=entry.producer_pos,
        instruction=instr.name,
        message=(
            f"slot {slot} .reuse flag on R{entry.reg} has no consumer: the "
            "next register-file instruction does not read "
            f"R{entry.reg} in slot {slot}"
        ),
        hint="the reuse cache only survives to the immediately following "
             "instruction — keep producer/consumer back-to-back "
             "(schedules.weave never splits them)",
    )


def _branch_targets(instructions: list[Instruction]) -> set[int]:
    targets: set[int] = set()
    for pos, instr in enumerate(instructions):
        if instr.name == "BRA" and isinstance(instr.target, int):
            targets.add(pos + 1 + instr.target)
    return targets
