"""Static occupancy / pressure report (§7.1's occupancy argument).

Summarizes what a kernel *statically* costs before any simulation: the
issue-slot mix per pipe, the serialized issue cycles implied by the
control codes (every instruction issues for ``max(stall, 1)`` cycles
from its warp's perspective, plus one for each yield, which forces a
warp switch), register pressure (live-range peak and the ``.registers``
declaration) and shared-memory footprint, folded into a blocks-per-SM
occupancy figure.

The schedule autotuner (:mod:`repro.sched.search`) uses
``static_issue_cycles`` as a pre-simulation cost: two candidates with
identical instruction streams but different control codes (yield
strategies, interleaves, buffering depths) differ statically in exactly
the quantity the simulator will charge per warp, so candidates whose
static cost is far above the best candidate's can be pruned before
paying for simulation.

The occupancy arithmetic mirrors ``DeviceSpec.occupancy`` in
:mod:`repro.gpusim.arch`; the limits are duplicated here because the
assembler layer must not import the simulator (the shared-memory pass
sets the precedent), and a differential test keeps the two in lock
step.

Rules:

* ``OCC001`` (info)  — the static issue profile (slots, cycles, mix);
* ``OCC002`` (info)  — blocks per SM and which resource limits them;
* ``OCC003`` (error) — the kernel cannot be launched at all: zero
  blocks fit on an SM (registers, shared memory or warp count).
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..isa import MAX_USABLE_REGISTERS
from .base import AnalysisContext, AnalysisPass
from .diagnostics import Diagnostic, Severity
from .liveness import compute_live_in


@dataclasses.dataclass(frozen=True)
class ArchLimits:
    """Per-SM resource limits (mirror of ``DeviceSpec``'s fields)."""

    name: str = "turing-sm"
    max_warps_per_sm: int = 32
    max_threads_per_block: int = 1024
    registers_per_sm: int = 65536
    smem_per_sm: int = 64 * 1024
    smem_per_block: int = 64 * 1024
    max_registers_per_thread: int = 255


#: Default limits: the Turing SM the perf-regression gate targets.
TURING_LIMITS = ArchLimits()
VOLTA_LIMITS = ArchLimits(
    name="volta-sm",
    max_warps_per_sm=64,
    smem_per_sm=96 * 1024,
    smem_per_block=96 * 1024,
)


@dataclasses.dataclass(frozen=True)
class StaticReport:
    """Everything the pruner (and OCC001/OCC002) reports about a kernel."""

    num_instructions: int
    issue_slots: dict[str, int]
    static_issue_cycles: int
    yields: int
    peak_live_regs: int
    declared_regs: int | None
    smem_bytes: int
    num_warps: int
    occupancy_blocks: int
    occupancy_limiter: str
    limits_name: str

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


def static_report(
    ctx: AnalysisContext, limits: ArchLimits | None = None
) -> StaticReport:
    """Compute the report; pure function of the context (memoized on it)."""
    if limits is None:
        limits = TURING_LIMITS
    cached = ctx.__dict__.get("_static_report_cache")
    if cached is not None and cached[0] == limits:
        report: StaticReport = cached[1]
        return report

    issue_slots: dict[str, int] = {}
    cycles = 0
    yields = 0
    for instr in ctx.instructions:
        pipe = instr.spec.pipe
        issue_slots[pipe] = issue_slots.get(pipe, 0) + 1
        cycles += max(instr.control.stall, 1)
        if instr.control.yield_flag:
            # A cleared hardware bit asks the scheduler to switch warps,
            # which costs one extra issue cycle (§6.1).
            yields += 1
    cycles += yields

    peak = 0
    if ctx.instructions:
        for mask in compute_live_in(ctx.instructions):
            count = bin(mask).count("1")
            if count > peak:
                peak = count

    declared = ctx.meta.registers if ctx.meta is not None else None
    smem_bytes = ctx.smem_bytes or 0
    regs = declared if declared else peak
    blocks, limiter = _occupancy(ctx.num_warps, regs, smem_bytes, limits)

    report = StaticReport(
        num_instructions=len(ctx.instructions),
        issue_slots=issue_slots,
        static_issue_cycles=cycles,
        yields=yields,
        peak_live_regs=peak,
        declared_regs=declared,
        smem_bytes=smem_bytes,
        num_warps=ctx.num_warps,
        occupancy_blocks=blocks,
        occupancy_limiter=limiter,
        limits_name=limits.name,
    )
    ctx.__dict__["_static_report_cache"] = (limits, report)
    return report


def _occupancy(
    warps: int, regs_per_thread: int, smem_bytes: int, limits: ArchLimits
) -> tuple[int, str]:
    """Blocks/SM + limiting resource (mirror of ``DeviceSpec.occupancy``)."""
    if warps * 32 > limits.max_threads_per_block:
        return 0, "threads-per-block limit"
    if regs_per_thread > limits.max_registers_per_thread:
        return 0, "registers-per-thread limit"
    if smem_bytes > limits.smem_per_block:
        return 0, "shared-memory-per-block limit"
    by = {
        "warps": limits.max_warps_per_sm // max(warps, 1),
        # The register file allocates per warp in 256-register granules.
        "registers": limits.registers_per_sm
        // (max(regs_per_thread, 1) * 32 * max(warps, 1)),
        "shared memory": (
            limits.smem_per_sm // smem_bytes
            if smem_bytes > 0
            else limits.max_warps_per_sm
        ),
    }
    limiter = min(by, key=lambda k: (by[k], k))
    return max(0, by[limiter]), limiter


class OccupancyPass(AnalysisPass):
    name = "occupancy"
    rules = ("OCC001", "OCC002", "OCC003")

    def __init__(self, limits: ArchLimits | None = None):
        self.limits = limits if limits is not None else TURING_LIMITS

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        if not ctx.instructions:
            return []
        report = static_report(ctx, self.limits)
        mix = ", ".join(
            f"{pipe}={count}"
            for pipe, count in sorted(
                report.issue_slots.items(), key=lambda kv: (-kv[1], kv[0])
            )
        )
        diags = [
            Diagnostic(
                rule="OCC001",
                severity=Severity.INFO,
                pos=-1,
                instruction="",
                message=(
                    f"static issue profile: {report.num_instructions} "
                    f"instructions, {report.static_issue_cycles} issue "
                    f"cycles ({report.yields} yields); pipes: {mix}"
                ),
            ),
            Diagnostic(
                rule="OCC002",
                severity=Severity.INFO,
                pos=-1,
                instruction="",
                message=(
                    f"occupancy: {report.occupancy_blocks} block(s)/SM on "
                    f"{report.limits_name} (limited by "
                    f"{report.occupancy_limiter}); "
                    f"{report.declared_regs or report.peak_live_regs} "
                    f"regs/thread, {report.smem_bytes} B smem, "
                    f"{report.num_warps} warps/block"
                ),
            ),
        ]
        if report.occupancy_blocks == 0:
            diags.append(Diagnostic(
                rule="OCC003",
                severity=Severity.ERROR,
                pos=-1,
                instruction="",
                message=(
                    "kernel cannot launch: zero blocks fit on an SM "
                    f"({report.occupancy_limiter}; "
                    f"{report.declared_regs or report.peak_live_regs} "
                    f"regs/thread of budget {MAX_USABLE_REGISTERS}, "
                    f"{report.smem_bytes} B smem of "
                    f"{self.limits.smem_per_block})"
                ),
                hint="shrink register pressure or the shared-memory "
                     "footprint until at least one block fits",
            ))
        return diags
