"""Cross-warp shared-memory race detector.

The paper's producer/consumer structure (§4: LDG→STS input/filter
stages feeding the FFMA tile) is only correct because ``BAR.SYNC``
separates one warp's stores from another warp's loads of the same
words.  Control codes cannot express this — scoreboards are per-warp —
so it is a distinct class of bug from everything CTRL checks.

The analysis reasons about **barrier epochs** over the CFG: a forward
dataflow tracks the set of shared accesses issued since the last
``BAR`` on each path (``BAR`` terminates a basic block, so epochs align
with block boundaries; the join is set-union).  Two accesses pending in
the same epoch race when different warps touch a common 32-bit word and
at least one access is a store.  Lane addresses come from the same
symbolic warp evaluation the bank-conflict pass uses
(:func:`~repro.sass.analysis.smem.shared_access_table`).

Predicate-aware edges kill pending accesses the path contradicts: a
``@P5 LDS`` is dropped along the ``P5 == False`` edge of the loop
branch, so the tail loads of the last iteration do not falsely race
with the epilogue's stores.  The kill is only sound while the guard
still holds its value, so it is disabled for an access once any
instruction rewrites its guard predicate.

Rules:

* ``RACE001`` (error) — two warps touch the same shared-memory word
  with no ``BAR.SYNC`` between the accesses, at least one a store;
* ``RACE002`` (info)  — shared accesses whose addresses could not be
  resolved statically were excluded from race checking (count).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .base import AnalysisContext, AnalysisPass
from .cfg import BasicBlock, Edge, get_cfg
from .dataflow import solve_forward
from .diagnostics import Diagnostic, Severity
from .smem import BANK_BYTES, shared_access_table

#: Sentinel predicate for "unguarded or guard no longer trustworthy".
_NO_GUARD = (-1, False)


@dataclasses.dataclass
class _AccessInfo:
    """Precomputed word footprint of one resolved shared access."""

    pos: int
    name: str
    is_store: bool
    guard: tuple[int, bool]  # (pred index, active value) or _NO_GUARD
    per_warp: list[frozenset[int]]  # 32-bit word indices per warp
    union: frozenset[int]
    cross_warp_write_overlap: bool  # the access races with itself


def _access_info(ctx: AnalysisContext) -> dict[int, _AccessInfo]:
    infos: dict[int, _AccessInfo] = {}
    for access in shared_access_table(ctx):
        if access.addrs is None or access.active is None:
            continue
        words_per_lane = max(1, access.width // BANK_BYTES)
        offsets = np.arange(words_per_lane, dtype=np.int64)
        per_warp: list[frozenset[int]] = []
        total = 0
        for warp in range(access.addrs.shape[0]):
            active = access.addrs[warp][access.active[warp]]
            if active.size == 0:
                per_warp.append(frozenset())
                continue
            words = np.unique(
                (active[:, None] // BANK_BYTES + offsets[None, :]).ravel()
            )
            per_warp.append(frozenset(int(w) for w in words))
            total += words.size
        union = frozenset().union(*per_warp) if per_warp else frozenset()
        guard = _NO_GUARD
        g = access.instr.guard
        if not g.is_pt:
            guard = (g.index, not g.negated)
        infos[access.pos] = _AccessInfo(
            pos=access.pos,
            name=access.instr.name,
            is_store=access.is_store,
            guard=guard,
            per_warp=per_warp,
            union=union,
            # Distinct warps sharing a word on one store instruction is
            # itself a race (per-warp sets are deduplicated, so any
            # shrink in the union is cross-warp).
            cross_warp_write_overlap=access.is_store and total > len(union),
        )
    return infos


# State: frozenset of (pos, (guard_pred, guard_value)) pending entries.
_StateT = frozenset


class SharedRacePass(AnalysisPass):
    name = "smem-race"
    rules = ("RACE001", "RACE002")

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        if not ctx.instructions:
            return []
        infos = _access_info(ctx)
        unresolved = [
            a.pos for a in shared_access_table(ctx) if a.addrs is None
        ]
        cfg = get_cfg(ctx)
        instructions = ctx.instructions

        def step(state: set, pos: int) -> None:
            instr = instructions[pos]
            if instr.name == "BAR":
                state.clear()
                return
            written = instr.writes_predicates()
            if written:
                # The guard value of a pending access is only known
                # while nothing rewrites that predicate.
                stale = {
                    entry for entry in state
                    if entry[1][0] in written
                }
                for entry in stale:
                    state.discard(entry)
                    state.add((entry[0], _NO_GUARD))
            if pos in infos:
                state.add((pos, infos[pos].guard))

        def transfer(block: BasicBlock, state: _StateT) -> _StateT:
            out = set(state)
            for pos in block.positions():
                step(out, pos)
            return frozenset(out)

        def join(states: list) -> _StateT:
            merged: frozenset = frozenset()
            for state in states:
                merged |= state
            return merged

        def edge_transfer(edge: Edge, state: _StateT) -> _StateT:
            if edge.cond is None:
                return state
            pred, value = edge.cond.pred, edge.cond.value
            # _NO_GUARD's pred of -1 never matches, so those survive.
            return frozenset(
                entry for entry in state
                if entry[1][0] != pred or entry[1][1] == value
            )

        in_states, _ = solve_forward(
            cfg, frozenset(), transfer, join, edge_transfer=edge_transfer
        )

        # Reporting sweep over the fixpoint; each (earlier, later) pair
        # is judged once, globally.
        findings: dict[tuple[int, int], Diagnostic] = {}
        checked: set[tuple[int, int]] = set()
        for block in cfg.blocks:
            state_in = in_states[block.id]
            if state_in is None:
                continue
            state = set(state_in)
            for pos in block.positions():
                info = infos.get(pos)
                if info is not None:
                    self._check(info, state, infos, checked, findings)
                step(state, pos)

        diags = [findings[key] for key in sorted(findings)]
        if unresolved:
            shown = sorted(unresolved)[:8]
            suffix = "..." if len(unresolved) > 8 else ""
            diags.append(Diagnostic(
                rule="RACE002",
                severity=Severity.INFO,
                pos=-1,
                instruction="",
                message=(
                    f"{len(unresolved)} shared-memory access(es) have "
                    "statically unknown addresses and were excluded from "
                    f"race checking (instructions {shown}{suffix})"
                ),
                hint="shared addressing should be a pure function of "
                     "threadIdx; data-dependent addresses cannot be "
                     "audited",
            ))
        return diags

    # ------------------------------------------------------------------
    def _check(
        self,
        info: _AccessInfo,
        pending: set,
        infos: dict[int, _AccessInfo],
        checked: set[tuple[int, int]],
        findings: dict[tuple[int, int], Diagnostic],
    ) -> None:
        if info.cross_warp_write_overlap:
            key = (info.pos, info.pos)
            if key not in findings:
                findings[key] = self._diag(
                    info.pos, info.name,
                    f"warps write overlapping shared-memory words at "
                    f"instruction {info.pos} with no intervening BAR.SYNC",
                )
        for other_pos, _guard in pending:
            if other_pos == info.pos:
                continue
            key = (min(info.pos, other_pos), max(info.pos, other_pos))
            if key in checked:
                continue
            checked.add(key)
            other = infos.get(other_pos)
            if other is None:
                continue
            if not (info.is_store or other.is_store):
                continue  # read/read never races
            if not (info.union & other.union):
                continue
            if self._cross_warp_overlap(info, other):
                a, b = sorted((info, other), key=lambda i: i.pos)
                findings[key] = self._diag(
                    b.pos, b.name,
                    f"races with the {'store' if a.is_store else 'load'} "
                    f"at instruction {a.pos}: different warps touch the "
                    "same shared-memory word with no BAR.SYNC between "
                    "them and at least one is a store",
                )

    @staticmethod
    def _cross_warp_overlap(a: _AccessInfo, b: _AccessInfo) -> bool:
        for w, words_a in enumerate(a.per_warp):
            if not words_a:
                continue
            for v, words_b in enumerate(b.per_warp):
                if v == w or not words_b:
                    continue
                if words_a & words_b:
                    return True
        return False

    @staticmethod
    def _diag(pos: int, name: str, message: str) -> Diagnostic:
        return Diagnostic(
            rule="RACE001",
            severity=Severity.ERROR,
            pos=pos,
            instruction=name,
            message=message,
            hint="insert a BAR.SYNC between the producing store and the "
                 "consuming access (or separate the buffers; §3.4 "
                 "double buffering)",
        )
