"""TuringAs-style command-line interface.

The original TuringAs "accepts the SASS source file as input and
generates .cubin files"; this CLI mirrors that plus a disassembler and
an inspector:

    python -m repro.sass as kernel.sass -o kernel.cubin --schedule --strict
    python -m repro.sass dis kernel.cubin
    python -m repro.sass info kernel.cubin
    python -m repro.sass lint kernel.sass --schedule --json

``as`` and ``lint`` also take ``-D name=value`` definitions visible to
inline Python blocks and ``{{ }}`` splices.  ``lint`` accepts either a
``.sass`` source or an assembled ``.cubin`` and exits non-zero when any
diagnostic at or above ``--fail-on`` severity is found (default:
``error``; see ``docs/sass_lint.md``).
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (
    Severity,
    lint_instructions,
    max_severity,
    render_json,
    render_text,
)
from .assembler import AssembledKernel, assemble
from .cubin import LoadedCubin, read_cubin, write_cubin


def _parse_defines(defines: list[str]) -> dict[str, int | str]:
    env: dict[str, int | str] = {}
    for item in defines:
        if "=" not in item:
            raise SystemExit(f"-D expects name=value, got {item!r}")
        name, value = item.split("=", 1)
        try:
            env[name] = int(value, 0)
        except ValueError:
            env[name] = value
    return env


def cmd_as(args: argparse.Namespace) -> int:
    with open(args.source, "r", encoding="utf-8") as fh:
        source = fh.read()
    kernel = assemble(
        source,
        env=_parse_defines(args.define or []),
        auto_schedule=args.schedule,
        strict=args.strict,
    )
    out = args.output or (args.source.rsplit(".", 1)[0] + ".cubin")
    with open(out, "wb") as fh:
        fh.write(write_cubin(kernel))
    print(
        f"{out}: kernel {kernel.meta.name!r}, {kernel.num_instructions} "
        f"instructions, {kernel.meta.registers} registers, "
        f"{kernel.meta.smem_bytes} B smem"
    )
    return 0


def _load(path: str) -> LoadedCubin:
    with open(path, "rb") as fh:
        return read_cubin(fh.read())


def cmd_dis(args: argparse.Namespace) -> int:
    loaded = _load(args.cubin)
    index_to_label = {v: k for k, v in loaded.labels.items()}
    for i, instr in enumerate(loaded.instructions()):
        if i in index_to_label:
            print(f"{index_to_label[i]}:")
        if instr.name == "BRA" and isinstance(instr.target, int):
            target = i + 1 + instr.target
            instr.target = index_to_label.get(target, f"{16 * target:#x}")
        addr = f"/*{16 * i:04x}*/" if args.addresses else ""
        print(f"    {addr} {instr.text()}".rstrip())
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    loaded = _load(args.cubin)
    meta = loaded.meta
    print(f"kernel:     {meta.name}")
    print(f"registers:  {meta.registers}")
    print(f"smem:       {meta.smem_bytes} B")
    print(f"text:       {len(loaded.text)} B "
          f"({len(loaded.text) // 16} instructions)")
    if meta.params:
        print("params:")
        for name, offset, size in meta.params:
            print(f"  c[0x0][{offset:#x}]  {name}  ({size} B)")
    if loaded.labels:
        print("labels:")
        for name, idx in sorted(loaded.labels.items(), key=lambda kv: kv[1]):
            print(f"  {16 * idx:#06x}  {name}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    if args.source.endswith(".cubin"):
        loaded = _load(args.source)
        instructions = loaded.instructions()
        meta = loaded.meta
        name = meta.name
    else:
        with open(args.source, "r", encoding="utf-8") as fh:
            source = fh.read()
        kernel = assemble(
            source,
            env=_parse_defines(args.define or []),
            auto_schedule=args.schedule,
            strict=False,
        )
        instructions = kernel.instructions
        meta = kernel.meta
        name = kernel.meta.name

    diagnostics = lint_instructions(
        instructions, meta=meta, num_warps=args.warps
    )
    if args.json:
        print(render_json(diagnostics, kernel_name=name))
    else:
        print(render_text(diagnostics, kernel_name=name))
    threshold = Severity(args.fail_on)
    worst = max_severity(diagnostics)
    return 1 if worst is not None and worst.rank >= threshold.rank else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sass",
        description="Assemble, disassemble and inspect Volta/Turing SASS",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_as = sub.add_parser("as", help="assemble a .sass file into a .cubin")
    p_as.add_argument("source")
    p_as.add_argument("-o", "--output", help="output path (default: .cubin)")
    p_as.add_argument("-D", "--define", action="append", metavar="NAME=VALUE",
                      help="variable for inline Python blocks")
    p_as.add_argument("--schedule", action="store_true",
                      help="auto-fill stalls and scoreboard barriers")
    p_as.add_argument("--strict", action="store_true",
                      help="fail on control-code hazards")
    p_as.set_defaults(func=cmd_as)

    p_dis = sub.add_parser("dis", help="disassemble a .cubin")
    p_dis.add_argument("cubin")
    p_dis.add_argument("-a", "--addresses", action="store_true",
                       help="prefix instruction byte offsets")
    p_dis.set_defaults(func=cmd_dis)

    p_info = sub.add_parser("info", help="show cubin metadata")
    p_info.add_argument("cubin")
    p_info.set_defaults(func=cmd_info)

    p_lint = sub.add_parser(
        "lint", help="statically analyze a .sass or .cubin kernel"
    )
    p_lint.add_argument("source", help=".sass source or assembled .cubin")
    p_lint.add_argument("-D", "--define", action="append",
                        metavar="NAME=VALUE",
                        help="variable for inline Python blocks")
    p_lint.add_argument("--schedule", action="store_true",
                        help="auto-fill control codes before linting")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable report")
    p_lint.add_argument("--warps", type=int, default=8,
                        help="warps per block for the shared-memory model "
                             "(default: 8)")
    p_lint.add_argument("--fail-on", choices=["error", "warning"],
                        default="error",
                        help="lowest severity that makes the exit status "
                             "non-zero (default: error)")
    p_lint.set_defaults(func=cmd_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
