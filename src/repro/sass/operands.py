"""SASS operand model: registers, predicates, immediates, constants, memory.

An operand knows how to render itself back to source text (for the
disassembler) and how to validate its encodable range; the bit packing
itself lives in :mod:`repro.sass.encoder` so the field layout is defined
in exactly one place.
"""

from __future__ import annotations

import dataclasses
import re
import struct
from typing import Union

from ..common.errors import EncodingError, SassSyntaxError
from .isa import NUM_PREDICATES, PT, RZ


@dataclasses.dataclass(frozen=True)
class Reg:
    """Regular 32-bit register R0..R254, or RZ (index 255).

    ``reuse`` marks the operand for the register reuse cache (§4.3's
    bank-conflict elimination); it is positional — the encoder maps it to
    the reuse bit of the operand's slot.  ``negated`` is the float
    source-negation modifier (``FADD R0, R1, -R2``).
    """

    index: int
    reuse: bool = False
    negated: bool = False

    def __post_init__(self) -> None:
        if not (0 <= self.index <= RZ):
            raise EncodingError(f"register index {self.index} out of range")

    @property
    def is_rz(self) -> bool:
        return self.index == RZ

    @property
    def bank(self) -> int:
        """64-bit register bank (0 = even, 1 = odd) — §5.2.2."""
        return self.index & 1

    def text(self) -> str:
        base = "RZ" if self.is_rz else f"R{self.index}"
        return ("-" if self.negated else "") + base + (".reuse" if self.reuse else "")


@dataclasses.dataclass(frozen=True)
class Pred:
    """Predicate register P0..P6 or PT (index 7), possibly negated."""

    index: int
    negated: bool = False

    def __post_init__(self) -> None:
        if not (0 <= self.index <= PT):
            raise EncodingError(f"predicate index {self.index} out of range")

    @property
    def is_pt(self) -> bool:
        return self.index == PT

    def text(self) -> str:
        name = "PT" if self.is_pt else f"P{self.index}"
        return ("!" if self.negated else "") + name

    @property
    def nibble(self) -> int:
        """4-bit encoding: low 3 bits index, bit 3 negate (paper §5.1.2)."""
        return self.index | (0x8 if self.negated else 0)

    @classmethod
    def from_nibble(cls, nib: int) -> "Pred":
        return cls(index=nib & 0x7, negated=bool(nib & 0x8))


@dataclasses.dataclass(frozen=True)
class Imm:
    """32-bit immediate; floats are carried as their IEEE-754 bit pattern."""

    value: int

    def __post_init__(self) -> None:
        if not (-(1 << 31) <= self.value < (1 << 32)):
            raise EncodingError(f"immediate {self.value:#x} does not fit in 32 bits")

    @property
    def bits(self) -> int:
        return self.value & 0xFFFFFFFF

    @classmethod
    def from_float(cls, value: float) -> "Imm":
        return cls(struct.unpack("<I", struct.pack("<f", value))[0])

    def as_float(self) -> float:
        return struct.unpack("<f", struct.pack("<I", self.bits))[0]

    def text(self) -> str:
        return f"{self.bits:#x}"


@dataclasses.dataclass(frozen=True)
class Const:
    """Constant memory operand ``c[bank][offset]`` (kernel params live in
    bank 0 from offset 0x160, §5.1.2)."""

    bank: int
    offset: int

    def __post_init__(self) -> None:
        if not (0 <= self.bank < 32):
            raise EncodingError(f"constant bank {self.bank} out of range")
        if not (0 <= self.offset < (1 << 16)) or self.offset % 4:
            raise EncodingError(
                f"constant offset {self.offset:#x} must be a word offset < 64KB"
            )

    def text(self) -> str:
        return f"c[{self.bank:#x}][{self.offset:#x}]"


@dataclasses.dataclass(frozen=True)
class Mem:
    """Memory reference ``[Rbase + offset]`` for LDG/STG/LDS/STS."""

    base: Reg
    offset: int = 0

    def __post_init__(self) -> None:
        if not (-(1 << 23) <= self.offset < (1 << 23)):
            raise EncodingError(f"memory offset {self.offset:#x} exceeds 24 bits")

    def text(self) -> str:
        if self.offset == 0:
            return f"[{self.base.text()}]"
        sign = "+" if self.offset >= 0 else "-"
        return f"[{self.base.text()} {sign} {abs(self.offset):#x}]"


Operand = Union[Reg, Pred, Imm, Const, Mem]  # anything an operand slot holds

_REG_RE = re.compile(r"^(-?)R(\d+|Z)(\.reuse)?$")
_PRED_RE = re.compile(r"^(!?)P(\d+|T)$")
_CONST_RE = re.compile(r"^c\[(0x[0-9a-fA-F]+|\d+)\]\[(0x[0-9a-fA-F]+|\d+)\]$")
_MEM_RE = re.compile(
    r"^\[\s*R(\d+|Z)\s*(?:([+-])\s*(0x[0-9a-fA-F]+|\d+)\s*)?\]$"
)


def parse_operand(token: str, line: int | None = None) -> "Reg | Pred | Imm | Const | Mem":
    """Parse one operand token into its operand object."""
    token = token.strip()
    m = _REG_RE.match(token)
    if m:
        idx = RZ if m.group(2) == "Z" else int(m.group(2))
        return Reg(idx, reuse=bool(m.group(3)), negated=bool(m.group(1)))
    m = _PRED_RE.match(token)
    if m:
        idx = PT if m.group(2) == "T" else int(m.group(2))
        if idx > PT:
            raise SassSyntaxError(f"no such predicate P{idx}", line)
        if idx >= NUM_PREDICATES and idx != PT:
            raise SassSyntaxError(f"P{idx} exceeds the 7 predicate registers", line)
        return Pred(idx, negated=bool(m.group(1)))
    m = _CONST_RE.match(token)
    if m:
        return Const(int(m.group(1), 0), int(m.group(2), 0))
    m = _MEM_RE.match(token)
    if m:
        base = RZ if m.group(1) == "Z" else int(m.group(1))
        offset = int(m.group(3), 0) if m.group(3) else 0
        if m.group(2) == "-":
            offset = -offset
        return Mem(Reg(base), offset)
    # Immediates: hex, decimal, or float literal.
    try:
        if re.match(r"^[+-]?(0x[0-9a-fA-F]+|\d+)$", token):
            return Imm(int(token, 0))
        if re.match(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$", token) or token in (
            "INF",
            "-INF",
        ):
            return Imm.from_float(float(token.replace("INF", "inf")))
    except EncodingError:
        raise
    raise SassSyntaxError(f"cannot parse operand {token!r}", line)
