"""Minimal ``.cubin`` (ELF64) writer and reader.

TuringAs "accepts the SASS source file as input and generates .cubin
files" loadable by the CUDA runtime.  Without a CUDA driver in this
environment, we implement the container honestly — a genuine ELF64
object with ``EM_CUDA`` machine type, a ``.text.<kernel>`` section
holding the 128-bit instruction words and a ``.nv.info.<kernel>``
metadata section (register count, shared memory, parameter table) — and
the simulator's loader plays the driver's role.  Compared to NVIDIA's
real cubins the metadata section uses a JSON payload rather than the
undocumented binary attribute format; everything else round-trips
through standard ELF tooling (``readelf`` parses these files).
"""

from __future__ import annotations

import dataclasses
import io
import json
import struct

from ..common.errors import AssemblerError
from .assembler import AssembledKernel
from .encoder import decode_program
from .instruction import Instruction
from .preprocess import KernelMeta

EM_CUDA = 190
_ELF_MAGIC = b"\x7fELF"
_SHT_PROGBITS = 1
_SHT_STRTAB = 3


@dataclasses.dataclass
class _Section:
    name: str
    kind: int
    data: bytes
    flags: int = 0
    addralign: int = 1


def write_cubin(kernel: AssembledKernel) -> bytes:
    """Serialize an assembled kernel into an ELF64 cubin image."""
    meta = kernel.meta
    info = {
        "kernel": meta.name,
        "registers": meta.registers,
        "smem_bytes": meta.smem_bytes,
        "params": [list(p) for p in meta.params],
        "labels": kernel.labels,
        "arch": "sm_75",  # Turing; informational
    }
    sections = [
        _Section(f".text.{meta.name}", _SHT_PROGBITS, kernel.text, flags=0x6,
                 addralign=128),
        _Section(
            f".nv.info.{meta.name}",
            _SHT_PROGBITS,
            json.dumps(info, sort_keys=True).encode(),
        ),
    ]
    return _write_elf(sections)


def _write_elf(sections: list[_Section]) -> bytes:
    # Build .shstrtab.
    shstr = io.BytesIO()
    shstr.write(b"\x00")
    name_off: dict[str, int] = {}
    for sec in sections + [_Section(".shstrtab", _SHT_STRTAB, b"")]:
        name_off[sec.name] = shstr.tell()
        shstr.write(sec.name.encode() + b"\x00")
    shstrtab = _Section(".shstrtab", _SHT_STRTAB, shstr.getvalue())
    all_sections = sections + [shstrtab]

    ehsize = 64
    shentsize = 64
    # Layout: header | section data ... | section header table.
    offsets = []
    cursor = ehsize
    for sec in all_sections:
        align = sec.addralign
        cursor = (cursor + align - 1) // align * align
        offsets.append(cursor)
        cursor += len(sec.data)
    shoff = (cursor + 7) // 8 * 8

    out = io.BytesIO()
    num_sections = len(all_sections) + 1  # + NULL section
    out.write(_ELF_MAGIC)
    out.write(bytes([2, 1, 1, 0]))  # 64-bit, little endian, v1, SysV
    out.write(b"\x00" * 8)
    out.write(struct.pack("<HHIQQQIHHHHHH",
                          1,          # ET_REL
                          EM_CUDA,    # e_machine
                          1,          # e_version
                          0, 0, shoff,
                          0,          # e_flags
                          ehsize, 0, 0,
                          shentsize, num_sections,
                          num_sections - 1))  # shstrndx = last
    for sec, off in zip(all_sections, offsets):
        pad = off - out.tell()
        out.write(b"\x00" * pad)
        out.write(sec.data)
    out.write(b"\x00" * (shoff - out.tell()))
    # NULL section header.
    out.write(b"\x00" * shentsize)
    for sec, off in zip(all_sections, offsets):
        out.write(struct.pack("<IIQQQQIIQQ",
                              name_off[sec.name],
                              sec.kind,
                              sec.flags,
                              0,  # addr
                              off,
                              len(sec.data),
                              0, 0,
                              sec.addralign,
                              0))
    return out.getvalue()


@dataclasses.dataclass
class LoadedCubin:
    """Parsed cubin contents (what the driver would hand the hardware)."""

    meta: KernelMeta
    text: bytes
    labels: dict[str, int]

    def instructions(self) -> list[Instruction]:
        return decode_program(self.text)


def read_cubin(blob: bytes) -> LoadedCubin:
    """Parse a cubin produced by :func:`write_cubin`."""
    if blob[:4] != _ELF_MAGIC:
        raise AssemblerError("not an ELF file")
    if blob[4] != 2 or blob[5] != 1:
        raise AssemblerError("cubin must be 64-bit little-endian ELF")
    (e_type, e_machine, _v, _entry, _phoff, shoff, _flags, _ehsize,
     _phentsize, _phnum, shentsize, shnum, shstrndx) = struct.unpack_from(
        "<HHIQQQIHHHHHH", blob, 16
    )
    if e_machine != EM_CUDA:
        raise AssemblerError(f"unexpected machine type {e_machine}")
    headers = []
    for i in range(shnum):
        fields = struct.unpack_from("<IIQQQQIIQQ", blob, shoff + i * shentsize)
        headers.append(fields)
    shstr_off, shstr_size = headers[shstrndx][4], headers[shstrndx][5]
    shstr = blob[shstr_off : shstr_off + shstr_size]

    def name_of(hdr) -> str:
        start = hdr[0]
        end = shstr.find(b"\x00", start)
        return shstr[start:end].decode()

    text = None
    info = None
    for hdr in headers[1:]:
        name = name_of(hdr)
        data = blob[hdr[4] : hdr[4] + hdr[5]]
        if name.startswith(".text."):
            text = data
        elif name.startswith(".nv.info."):
            info = json.loads(data.decode())
    if text is None or info is None:
        raise AssemblerError("cubin is missing .text or .nv.info sections")
    meta = KernelMeta(
        name=info["kernel"],
        registers=info["registers"],
        smem_bytes=info["smem_bytes"],
        params=[tuple(p) for p in info["params"]],
    )
    return LoadedCubin(meta=meta, text=text, labels=info.get("labels", {}))
