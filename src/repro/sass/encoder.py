"""128-bit instruction encoding and decoding (paper Fig. 6).

Field map (bit positions in the 128-bit little-endian word):

====================  =========================================================
bits                  contents
====================  =========================================================
[11:0]                opcode; operand-B form folded in (+0x200 imm, +0x400 const)
[15:12]               guard predicate nibble (index | negate<<3; 7 = PT)
[23:16]               destination register (0xFF = none/RZ);
                      for ISETP: Pdst nibble [19:16], Pdst2 nibble [23:20]
[31:24]               source register 0 / memory base register
[63:32]               operand B: rs1 at [39:32] (register form),
                      32-bit immediate, or constant {offset/4 [47:32],
                      bank [53:48]}; memory offset (signed 24-bit) at [55:32]
                      for loads/stores; branch displacement for BRA
[71:64]               source register 2 / store data register;
                      ISETP combine-predicate nibble at [67:64]
[95:72]               per-opcode flag bits (bit 72+i ⇔ spec.valid_flags[i])
[125:105]             control code (see :mod:`repro.sass.control`)
====================  =========================================================

The decoder reverses every field, and ``tests/sass`` proves the
round-trip for each supported instruction shape.
"""

from __future__ import annotations

from ..common.errors import EncodingError
from .control import CONTROL_LSB, ControlCode
from .instruction import Instruction
from .isa import (
    FORM_CONSTANT,
    FORM_IMMEDIATE,
    OPCODE_TO_NAME,
    OPCODES,
    spec_for,
)
from .operands import Const, Imm, Mem, Operand, Pred, Reg

INSTRUCTION_BYTES = 16
_NONE_REG = 0xFF


def _flag_bits(name: str, flags: tuple[str, ...]) -> int:
    spec = spec_for(name)
    bits = 0
    for flag in flags:
        try:
            idx = spec.valid_flags.index(flag)
        except ValueError:
            raise EncodingError(f"{name}: flag .{flag} is not encodable") from None
        if idx >= 24:
            raise EncodingError(f"{name}: flag .{flag} exceeds the 24 flag bits")
        bits |= 1 << idx
    return bits


def _flags_from_bits(name: str, bits: int) -> tuple[str, ...]:
    spec = spec_for(name)
    return tuple(
        flag for idx, flag in enumerate(spec.valid_flags) if bits & (1 << idx)
    )


def encode_instruction(instr: Instruction) -> int:
    """Encode one instruction into its 128-bit word (as a Python int)."""
    instr.validate()
    spec = instr.spec
    word = 0

    # ---- operand B and form ------------------------------------------------
    form = 0
    b_value = 0
    rs0 = _NONE_REG
    rs2 = _NONE_REG
    b_slot = instr.b_slot()
    srcs = list(instr.srcs)

    if instr.mem is not None:
        rs0 = instr.mem.base.index
        b_value = instr.mem.offset & 0xFFFFFF
        if spec.is_store:
            rs2 = srcs[-1].index
            srcs = srcs[:-1]
        b_slot = None  # memory ops have no B operand
    if instr.target is not None:
        if not isinstance(instr.target, int):
            raise EncodingError(
                f"BRA target {instr.target!r} not resolved; assemble via Assembler"
            )
        b_value = instr.target & 0xFFFFFFFF
        form = FORM_IMMEDIATE

    reg_slots: list[int] = []
    for i, src in enumerate(srcs):
        if i == b_slot:
            if isinstance(src, Imm):
                form = FORM_IMMEDIATE
                b_value = src.bits
            elif isinstance(src, Const):
                form = FORM_CONSTANT
                b_value = (src.offset // 4) | (src.bank << 16)
            else:
                b_value = src.index  # rs1 at [39:32]
        else:
            if not isinstance(src, Reg):
                raise EncodingError(f"{instr.name}: slot {i} must be a register")
            reg_slots.append(src.index)
    if reg_slots:
        rs0 = reg_slots[0] if instr.mem is None else rs0
        if instr.mem is not None and reg_slots:
            raise EncodingError(f"{instr.name}: too many register operands")
    if len(reg_slots) > 1:
        rs2 = reg_slots[1]
    if len(reg_slots) > 2:
        raise EncodingError(f"{instr.name}: too many register operands")

    word |= (spec.opcode + form) & 0xFFF
    word |= instr.guard.nibble << 12

    # ---- destination -------------------------------------------------------
    if instr.dest_preds:
        dst_bits = instr.dest_preds[0].nibble
        if len(instr.dest_preds) > 1:
            dst_bits |= instr.dest_preds[1].nibble << 4
        word |= dst_bits << 16
    else:
        word |= (instr.dest.index if instr.dest is not None else _NONE_REG) << 16

    word |= rs0 << 24
    word |= (b_value & 0xFFFFFFFF) << 32
    if instr.src_pred is not None:
        rs2 = instr.src_pred.nibble  # ISETP: nibble in the rs2 byte
    word |= rs2 << 64
    word |= _flag_bits(instr.name, _encodable_flags(instr)) << 72
    # Source negation modifiers (float ops): bits [98:96], one per slot.
    for slot, src in enumerate(instr.srcs[:3]):
        if isinstance(src, Reg) and src.negated:
            word |= 1 << (96 + slot)
    word |= instr.control.encode() << CONTROL_LSB
    return word


def _encodable_flags(instr: Instruction) -> tuple[str, ...]:
    return instr.flags


def decode_instruction(word: int) -> Instruction:
    """Decode a 128-bit word back into the IR."""
    opcode = word & 0xFFF
    form = 0
    name = OPCODE_TO_NAME.get(opcode)
    if name is None and opcode - FORM_IMMEDIATE in OPCODE_TO_NAME:
        name = OPCODE_TO_NAME[opcode - FORM_IMMEDIATE]
        form = FORM_IMMEDIATE
    if name is None and opcode - FORM_CONSTANT in OPCODE_TO_NAME:
        name = OPCODE_TO_NAME[opcode - FORM_CONSTANT]
        form = FORM_CONSTANT
    if name is None:
        raise EncodingError(f"unknown opcode {opcode:#05x}")
    spec = OPCODES[name]

    guard = Pred.from_nibble((word >> 12) & 0xF)
    rd_byte = (word >> 16) & 0xFF
    rs0 = (word >> 24) & 0xFF
    b_value = (word >> 32) & 0xFFFFFFFF
    rs2 = (word >> 64) & 0xFF
    flag_bits = (word >> 72) & 0xFFFFFF
    control = ControlCode.decode((word >> CONTROL_LSB) & 0x1FFFFF)
    flags = _flags_from_bits(name, flag_bits)

    instr = Instruction(name=name, flags=flags, guard=guard, control=control)

    if name == "BRA":
        disp = b_value
        if disp & 0x80000000:
            disp -= 1 << 32
        instr.target = disp
        return _restore_reuse(instr, word)
    if name in ("EXIT", "NOP", "BAR"):
        return instr
    if name == "S2R":
        instr.dest = Reg(rd_byte)
        return instr
    if name == "ISETP":
        instr.dest_preds = (
            Pred.from_nibble(rd_byte & 0xF),
            Pred.from_nibble((rd_byte >> 4) & 0xF),
        )
        b = _decode_b(form, b_value)
        instr.srcs = (Reg(rs0), b)
        instr.src_pred = Pred.from_nibble(rs2 & 0xF)
        return _restore_reuse(instr, word)
    if name == "P2R":
        instr.dest = Reg(rd_byte)
        instr.srcs = (Imm(b_value),)
        return instr
    if name == "R2P":
        instr.srcs = (Reg(rs0), Imm(b_value))
        return instr
    if spec.is_load or spec.is_store:
        offset = b_value & 0xFFFFFF
        if offset & 0x800000:
            offset -= 1 << 24
        instr.mem = Mem(Reg(rs0), offset)
        if spec.is_load:
            instr.dest = Reg(rd_byte)
        else:
            instr.srcs = (Reg(rs2),)
        return instr

    # Generic ALU/FMA.
    if spec.has_dest:
        instr.dest = Reg(rd_byte)
    srcs: list[Operand] = []
    n = spec.num_srcs
    b_slot = 1 if n >= 2 else (0 if n == 1 else None)
    reg_queue = [rs0, rs2]
    for i in range(n):
        if i == b_slot:
            srcs.append(_decode_b(form, b_value))
        else:
            srcs.append(Reg(reg_queue.pop(0)))
    instr.srcs = tuple(srcs)
    return _restore_reuse(instr, word)


def _decode_b(form: int, b_value: int) -> Imm | Const | Reg:
    if form == FORM_IMMEDIATE:
        return Imm(b_value)
    if form == FORM_CONSTANT:
        return Const(bank=(b_value >> 16) & 0x3F, offset=(b_value & 0xFFFF) * 4)
    return Reg(b_value & 0xFF)


def _restore_reuse(instr: Instruction, word: int = 0) -> Instruction:
    """Reflect control reuse bits and negation bits onto source operands."""
    neg = (word >> 96) & 0x7
    if not instr.control.reuse and not neg:
        return instr
    srcs = list(instr.srcs)
    for slot, src in enumerate(srcs):
        if isinstance(src, Reg):
            srcs[slot] = Reg(
                src.index,
                reuse=bool(instr.control.reuse & (1 << slot)),
                negated=bool(neg & (1 << slot)),
            )
    instr.srcs = tuple(srcs)
    return instr


def encode_program(instructions: list[Instruction]) -> bytes:
    """Encode an instruction list into the flat .text byte image."""
    blob = bytearray()
    for instr in instructions:
        word = encode_instruction(instr)
        blob += word.to_bytes(INSTRUCTION_BYTES, "little")
    return bytes(blob)


def decode_program(blob: bytes) -> list[Instruction]:
    if len(blob) % INSTRUCTION_BYTES:
        raise EncodingError(
            f".text size {len(blob)} is not a multiple of {INSTRUCTION_BYTES}"
        )
    out = []
    for off in range(0, len(blob), INSTRUCTION_BYTES):
        word = int.from_bytes(blob[off : off + INSTRUCTION_BYTES], "little")
        out.append(decode_instruction(word))
    return out
