"""The per-instruction control code (paper §5.1.4).

Volta/Turing delegate hazard management to the compiler: every 128-bit
instruction embeds a control word at bits [125:105] that the schedulers
obey blindly.  Fields (low to high):

* ``stall``  [108:105] — cycles to stall before issuing the *next*
  instruction from this warp (fixed-latency hazard cover).
* ``yield`` [109] — the load-balancing flag this paper is the first to
  study.  In the hardware encoding, bit=1 means "prefer to stay on the
  current warp"; the *cleared* bit asks the scheduler to switch, which
  costs one extra cycle and disables the reuse cache.  To keep the
  source text readable we expose the positive action: ``yield_flag=True``
  ⇒ "switch warps here" ⇒ encoded bit 0.
* ``write_bar`` [112:110] — scoreboard barrier set when this variable-
  latency instruction's *result* lands (7 = none).
* ``read_bar`` [115:113] — barrier set when source operands have been
  consumed (lets dependents overwrite them; 7 = none).
* ``wait_mask`` [121:116] — barriers this instruction must wait on.
* ``reuse`` [125:122] — operand-slot reuse cache flags.
"""

from __future__ import annotations

import dataclasses
import re

from ..common.errors import EncodingError, SassSyntaxError
from .isa import NUM_WAIT_BARRIERS

NO_BARRIER = 7

CONTROL_LSB = 105
CONTROL_MASK_BITS = 21


@dataclasses.dataclass(frozen=True)
class ControlCode:
    """Decoded control word; defaults describe a hazard-free instruction."""

    stall: int = 1
    yield_flag: bool = False  # True ⇒ ask the scheduler to switch warps
    write_bar: int = NO_BARRIER
    read_bar: int = NO_BARRIER
    wait_mask: int = 0
    reuse: int = 0

    def __post_init__(self) -> None:
        if not (0 <= self.stall <= 15):
            raise EncodingError(f"stall {self.stall} out of range 0..15")
        for label, bar in (("write", self.write_bar), ("read", self.read_bar)):
            if bar != NO_BARRIER and not (0 <= bar < NUM_WAIT_BARRIERS):
                raise EncodingError(f"{label} barrier {bar} out of range 0..5")
        if not (0 <= self.wait_mask < (1 << NUM_WAIT_BARRIERS)):
            raise EncodingError(f"wait mask {self.wait_mask:#x} exceeds 6 bits")
        if not (0 <= self.reuse < 16):
            raise EncodingError(f"reuse flags {self.reuse:#x} exceed 4 bits")

    # -- encoding ----------------------------------------------------------
    def encode(self) -> int:
        """Pack into the 21 control bits (relative to bit 105)."""
        word = self.stall
        word |= (0 if self.yield_flag else 1) << 4  # hw bit 1 = stay
        word |= self.write_bar << 5
        word |= self.read_bar << 8
        word |= self.wait_mask << 11
        word |= self.reuse << 17
        return word

    @classmethod
    def decode(cls, word: int) -> "ControlCode":
        return cls(
            stall=word & 0xF,
            yield_flag=not bool((word >> 4) & 1),
            write_bar=(word >> 5) & 0x7,
            read_bar=(word >> 8) & 0x7,
            wait_mask=(word >> 11) & 0x3F,
            reuse=(word >> 17) & 0xF,
        )

    # -- helpers -----------------------------------------------------------
    def waits_on(self, barrier: int) -> bool:
        return bool(self.wait_mask & (1 << barrier))

    def with_wait(self, barrier: int) -> "ControlCode":
        return dataclasses.replace(self, wait_mask=self.wait_mask | (1 << barrier))

    def with_stall(self, stall: int) -> "ControlCode":
        return dataclasses.replace(self, stall=stall)

    def with_yield(self, flag: bool = True) -> "ControlCode":
        return dataclasses.replace(self, yield_flag=flag)

    def with_reuse_slot(self, slot: int) -> "ControlCode":
        if not (0 <= slot < 4):
            raise EncodingError(f"reuse slot {slot} out of range")
        return dataclasses.replace(self, reuse=self.reuse | (1 << slot))

    # -- text form -----------------------------------------------------------
    # [B--12--:R-:W3:Y:S04]  — wait barriers, read bar, write bar, yield, stall
    def text(self) -> str:
        waits = "".join(
            str(i) if self.waits_on(i) else "-" for i in range(NUM_WAIT_BARRIERS)
        )
        rd = "-" if self.read_bar == NO_BARRIER else str(self.read_bar)
        wr = "-" if self.write_bar == NO_BARRIER else str(self.write_bar)
        y = "Y" if self.yield_flag else "-"
        return f"[B{waits}:R{rd}:W{wr}:{y}:S{self.stall:02d}]"


_CONTROL_RE = re.compile(
    r"^\[B([0-5-]{6}):R([0-5-]):W([0-5-]):([Y-]):S(\d{1,2})\]$"
)


def parse_control(token: str, line: int | None = None) -> ControlCode:
    """Parse the ``[B------:R-:W-:-:S01]`` prefix notation."""
    m = _CONTROL_RE.match(token.strip())
    if not m:
        raise SassSyntaxError(f"malformed control code {token!r}", line)
    waits, rd, wr, y, stall = m.groups()
    wait_mask = 0
    for pos, ch in enumerate(waits):
        if ch == "-":
            continue
        if int(ch) != pos:
            raise SassSyntaxError(
                f"wait slot {pos} must be '-' or '{pos}', got {ch!r}", line
            )
        wait_mask |= 1 << pos
    return ControlCode(
        stall=int(stall),
        yield_flag=(y == "Y"),
        write_bar=NO_BARRIER if wr == "-" else int(wr),
        read_bar=NO_BARRIER if rd == "-" else int(rd),
        wait_mask=wait_mask,
    )
