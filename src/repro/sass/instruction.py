"""Instruction IR — the common currency of parser, encoder and simulator.

A parsed/decoded instruction keeps its operands in *semantic* slots
rather than raw text order:

* ``guard`` — the @Pn predicate gate (PT when absent);
* ``dest`` — destination regular register, if any;
* ``dest_preds`` — predicate destinations (ISETP);
* ``srcs`` — register/immediate/constant source operands in ISA order;
* ``src_pred`` — the predicate *input* of ISETP's boolean combine;
* ``mem`` — the ``[Rn + off]`` reference of memory instructions;
* ``flags`` — ``.SUFFIX`` modifiers, validated against the opcode table.

Operand-B convention (see :mod:`repro.sass.isa`): in multi-source
instructions source slot 1 may be an immediate or constant; in
single-source instructions slot 0 may.  Everything else must be a
register.
"""

from __future__ import annotations

import dataclasses
import functools

from ..common.errors import EncodingError
from .control import ControlCode
from .isa import OpSpec, spec_for
from .operands import Const, Imm, Mem, Operand, Pred, Reg


@dataclasses.dataclass
class Instruction:
    name: str
    flags: tuple[str, ...] = ()
    guard: Pred = dataclasses.field(default_factory=lambda: Pred(7))
    dest: Reg | None = None
    dest_preds: tuple[Pred, ...] = ()
    srcs: tuple[Operand, ...] = ()
    src_pred: Pred | None = None
    mem: Mem | None = None
    control: ControlCode = dataclasses.field(default_factory=ControlCode)
    target: str | int | None = None  # BRA: label name, or resolved offset
    line: int = 0

    @functools.cached_property
    def spec(self) -> OpSpec:
        return spec_for(self.name)

    # ------------------------------------------------------------------
    def b_slot(self) -> int | None:
        """Index in ``srcs`` that may hold an Imm/Const, or None."""
        n = len(self.srcs)
        if n == 0:
            return None
        return 1 if n >= 2 else 0

    def validate(self) -> None:
        """Structural checks shared by the parser and programmatic builders."""
        spec = self.spec
        for flag in self.flags:
            if spec.valid_flags and flag not in spec.valid_flags:
                raise EncodingError(f"{self.name}: invalid flag .{flag}")
        if spec.has_dest and self.dest is None:
            raise EncodingError(f"{self.name}: missing destination register")
        if not spec.has_dest and self.dest is not None:
            raise EncodingError(f"{self.name}: unexpected destination register")
        b = self.b_slot()
        for i, src in enumerate(self.srcs):
            if isinstance(src, (Imm, Const)) and i != b:
                raise EncodingError(
                    f"{self.name}: operand {i} cannot be an immediate/constant "
                    f"(only slot {b} encodes operand B)"
                )
            if not isinstance(src, (Reg, Imm, Const)):
                raise EncodingError(
                    f"{self.name}: bad source operand {src!r} in slot {i}"
                )
        # Reuse bits are per *register* source slot; a flag on any other
        # slot has no operand to cache and no textual representation.
        for slot in range(4):
            if self.control.reuse & (1 << slot):
                if slot >= len(self.srcs) or not isinstance(self.srcs[slot], Reg):
                    raise EncodingError(
                        f"{self.name}: reuse flag on slot {slot}, which holds "
                        "no register operand"
                    )
        if (spec.is_load or spec.is_store) and spec.mem_space != "constant":
            if self.mem is None:
                raise EncodingError(f"{self.name}: memory instruction needs [R + off]")
        # Vector-register alignment: destination of a 64/128-bit access must
        # be a 2/4-aligned register (requirement (i) of §4.3).
        width = {"64": 2, "128": 4}
        for flag in self.flags:
            if flag in width:
                vec = width[flag]
                reg = self.dest if spec.is_load else self._store_data_reg()
                if reg is not None and not reg.is_rz and reg.index % vec:
                    raise EncodingError(
                        f"{self.name}.{flag}: R{reg.index} must be "
                        f"{vec}-register aligned"
                    )

    def _store_data_reg(self) -> Reg | None:
        if self.spec.is_store and self.srcs:
            data = self.srcs[-1]
            return data if isinstance(data, Reg) else None
        return None

    # ------------------------------------------------------------------
    def reads_registers(self) -> list[int]:
        """Regular-register indices this instruction reads (RZ excluded)."""
        cached = self.__dict__.get("_reads_cache")
        if cached is not None:
            return cached
        data = self._store_data_reg()
        regs: list[int] = []
        for src in self.srcs:
            if isinstance(src, Reg) and not src.is_rz and src is not data:
                regs.append(src.index)
        if self.mem is not None and not self.mem.base.is_rz:
            regs.append(self.mem.base.index)
        # Wide memory stores read a register vector starting at the data reg.
        if data is not None and not data.is_rz:
            from .isa import width_of

            nregs = max(1, width_of(self.flags) // 4)
            regs.extend(range(data.index, data.index + nregs))
        # Operands are immutable after parsing (only ``control`` is
        # rewritten by the scheduler), so the answer never changes.
        self.__dict__["_reads_cache"] = regs
        return regs

    def writes_registers(self) -> list[int]:
        """Regular-register indices this instruction writes."""
        cached = self.__dict__.get("_writes_cache")
        if cached is not None:
            return cached
        if self.dest is None or self.dest.is_rz:
            regs: list[int] = []
        else:
            from .isa import width_of

            if self.spec.is_load:
                nregs = max(1, width_of(self.flags) // 4)
                regs = list(range(self.dest.index, self.dest.index + nregs))
            elif self.name == "IMAD" and "WIDE" in self.flags:
                regs = [self.dest.index, self.dest.index + 1]
            else:
                regs = [self.dest.index]
        self.__dict__["_writes_cache"] = regs
        return regs

    def reads_predicates(self) -> list[int]:
        cached = self.__dict__.get("_rpreds_cache")
        if cached is not None:
            return cached
        preds = []
        if not self.guard.is_pt:
            preds.append(self.guard.index)
        if self.src_pred is not None and not self.src_pred.is_pt:
            preds.append(self.src_pred.index)
        self.__dict__["_rpreds_cache"] = preds
        return preds

    def writes_predicates(self) -> list[int]:
        cached = self.__dict__.get("_wpreds_cache")
        if cached is not None:
            return cached
        preds = [p.index for p in self.dest_preds if not p.is_pt]
        if self.name == "R2P" and self.srcs:
            mask = self.srcs[-1]
            if isinstance(mask, Imm):
                preds.extend(i for i in range(7) if mask.bits & (1 << i))
        self.__dict__["_wpreds_cache"] = preds
        return preds

    # ------------------------------------------------------------------
    def text(self, with_control: bool = True) -> str:
        """Render back to canonical source text."""
        parts = []
        if with_control:
            parts.append(self.control.text())
        if not self.guard.is_pt or self.guard.negated:
            parts.append(f"@{self.guard.text()}")
        if self.name == "S2R":
            # The SR name is carried as a flag but printed as an operand.
            sr = next((f for f in self.flags if f.startswith("SR_")), "SR_TID.X")
            parts.append(f"S2R {self.dest.text()}, {sr};")
            return " ".join(parts)
        mnem = self.name + "".join(f".{f}" for f in self.flags)
        operand_texts: list[str] = []
        for p in self.dest_preds:
            operand_texts.append(p.text())
        if self.dest is not None:
            operand_texts.append(self.dest.text())
        if self.spec.is_store and self.mem is not None:
            operand_texts.append(self.mem.text())
            operand_texts.extend(s.text() for s in self.srcs[-1:])
        else:
            operand_texts.extend(s.text() for s in self.srcs)
            if self.mem is not None:
                operand_texts.append(self.mem.text())
        if self.src_pred is not None:
            operand_texts.append(self.src_pred.text())
        if self.target is not None:
            operand_texts.append(
                self.target if isinstance(self.target, str) else f"{self.target:#x}"
            )
        body = mnem + (" " + ", ".join(operand_texts) if operand_texts else "")
        parts.append(body + ";")
        return " ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text()
