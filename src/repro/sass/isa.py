"""Volta/Turing SASS instruction set description (paper §5.1).

The paper documents the 128-bit instruction word (Fig. 6):

* bits [11:0]    — 12-bit opcode (FFMA=0x223, FADD=0x221, LDG=0x381,
                   LDS=0x984, ...);
* bits [15:12]   — guard predicate (3-bit index, 7 = PT, bit 15 = negate);
* bits [23:16]   — destination register;
* bits [31:24]   — source register 0;
* bits [63:32]   — source register 1 / 32-bit immediate / constant memory;
* bits [95:64]   — flags / source register 2;
* bits [125:105] — control code (stall, yield, barriers, wait mask, reuse).

Like real Volta, the *form* of operand B is folded into the opcode: the
register form uses the base opcode, `+0x200` selects the immediate form
and `+0x400` the constant-memory form (e.g. FFMA R,R,R,R = 0x223,
FFMA R,R,imm,R = 0x423, FFMA R,R,c[..],R = 0x623).

Each opcode also carries the scheduling metadata the hazard pass and the
simulator need: execution pipe, fixed latency (or ``None`` for
variable-latency instructions, which must use scoreboard barriers), and
operand signature.

Where the public record is incomplete (NVIDIA has never documented this
encoding), field placements follow the paper's description plus the
conventions of the open-source TuringAs; internal consistency is
guaranteed by the encoder/decoder round-trip tests and by the simulator
executing only decoded words.
"""

from __future__ import annotations

import dataclasses

# ---------------------------------------------------------------------------
# Opcode form offsets for operand B (paper §5.1.2)
# ---------------------------------------------------------------------------
FORM_REGISTER = 0x000
FORM_IMMEDIATE = 0x200
FORM_CONSTANT = 0x400

# Architectural limits (paper §5.2.1)
NUM_REGULAR_REGISTERS = 255  # R0..R254; R255 is RZ
MAX_USABLE_REGISTERS = 253  # paper footnote 7: >=253 breaks the encoding
NUM_PREDICATES = 7  # P0..P6; 7 encodes PT
NUM_WAIT_BARRIERS = 6
RZ = 255
PT = 7


@dataclasses.dataclass(frozen=True)
class OpSpec:
    """Static description of one SASS opcode.

    Attributes
    ----------
    name: mnemonic (without flags), e.g. ``"FFMA"``.
    opcode: 12-bit base opcode (register form).
    pipe: execution pipe — ``fma`` (FP32), ``alu`` (int/logic), ``lsu``
        (global memory), ``mio`` (shared memory / S2R / shuffles),
        ``branch``, or ``none`` (NOP).
    latency: fixed result latency in cycles, or ``None`` when the
        latency is variable and the producer must set a write barrier.
    num_srcs: register-file source operand slots used.
    has_dest: writes a regular register.
    writes_pred: writes predicate register(s) (ISETP, R2P).
    is_load / is_store: memory semantics.
    mem_space: ``"global"``, ``"shared"`` or ``""``.
    valid_flags: accepted ``.FLAG`` suffixes.
    """

    name: str
    opcode: int
    pipe: str
    latency: int | None
    num_srcs: int = 2
    has_dest: bool = True
    writes_pred: bool = False
    is_load: bool = False
    is_store: bool = False
    mem_space: str = ""
    valid_flags: tuple[str, ...] = ()


_WIDTH_FLAGS = ("32", "64", "128", "16", "E", "U8", "S8")
_SETP_FLAGS = (
    "EQ", "NE", "LT", "LE", "GT", "GE", "AND", "OR", "XOR", "U32", "S32",
)

# Fixed latencies follow the microbenchmark literature the paper cites
# (Jia et al. [5]): 4 cycles for the FP32 pipe, 5 for the heavier INT
# ops, with variable-latency memory ops handled by scoreboard barriers.
OPCODES: dict[str, OpSpec] = {
    spec.name: spec
    for spec in [
        # ---- FP32 pipe -----------------------------------------------------
        OpSpec("FFMA", 0x223, "fma", 4, num_srcs=3,
               valid_flags=("FTZ", "RN")),
        OpSpec("FADD", 0x221, "fma", 4, num_srcs=2, valid_flags=("FTZ",)),
        OpSpec("FMUL", 0x220, "fma", 4, num_srcs=2, valid_flags=("FTZ",)),
        OpSpec("FMNMX", 0x209, "fma", 4, num_srcs=3),
        OpSpec("FSEL", 0x208, "fma", 4, num_srcs=2),
        # Packed-half arithmetic (§8.3's fp16 port): each 32-bit register
        # holds two fp16 lanes, doubling flops per issue on the same pipe.
        OpSpec("HFMA2", 0x231, "fma", 4, num_srcs=3),
        OpSpec("HADD2", 0x232, "fma", 4, num_srcs=2),
        OpSpec("HMUL2", 0x233, "fma", 4, num_srcs=2),
        OpSpec("MUFU", 0x308, "mio", None, num_srcs=1,
               valid_flags=("RCP", "RSQ", "EX2", "LG2", "SIN", "COS")),
        # ---- INT/logic pipe ------------------------------------------------
        OpSpec("IADD3", 0x210, "alu", 5, num_srcs=3),
        OpSpec("IMAD", 0x224, "alu", 5, num_srcs=3,
               valid_flags=("WIDE", "U32", "HI", "MOV", "SHL")),
        # LOP3's full 8-bit LUT is reduced to the three named ops this
        # library's kernels use: d = (a OP b) ^ c (c = RZ for plain OP).
        OpSpec("LOP3", 0x212, "alu", 5, num_srcs=3,
               valid_flags=("AND", "OR", "XOR", "LUT")),
        OpSpec("SHF", 0x219, "alu", 5, num_srcs=3,
               valid_flags=("L", "R", "U32", "S32", "W", "HI")),
        OpSpec("SEL", 0x207, "alu", 5, num_srcs=2),
        OpSpec("MOV", 0x202, "alu", 4, num_srcs=1),
        OpSpec("ISETP", 0x20C, "alu", 5, num_srcs=2, has_dest=False,
               writes_pred=True, valid_flags=_SETP_FLAGS + ("EX",)),
        OpSpec("PLOP3", 0x81C, "alu", 5, num_srcs=0, has_dest=False,
               writes_pred=True, valid_flags=("LUT",)),
        # Predicate pack/unpack — the paper's register-saving trick (§3.5).
        OpSpec("P2R", 0x803, "alu", 5, num_srcs=1),
        OpSpec("R2P", 0x804, "alu", 5, num_srcs=1, has_dest=False,
               writes_pred=True),
        OpSpec("POPC", 0x309, "alu", 10, num_srcs=1),
        # ---- Memory --------------------------------------------------------
        OpSpec("LDG", 0x381, "lsu", None, num_srcs=1, is_load=True,
               mem_space="global", valid_flags=_WIDTH_FLAGS + ("STRONG", "CI")),
        OpSpec("STG", 0x386, "lsu", None, num_srcs=2, has_dest=False,
               is_store=True, mem_space="global", valid_flags=_WIDTH_FLAGS),
        OpSpec("LDS", 0x984, "mio", None, num_srcs=1, is_load=True,
               mem_space="shared", valid_flags=_WIDTH_FLAGS),
        OpSpec("STS", 0x388, "mio", None, num_srcs=2, has_dest=False,
               is_store=True, mem_space="shared", valid_flags=_WIDTH_FLAGS),
        OpSpec("LDC", 0x582, "mio", None, num_srcs=1, is_load=True,
               mem_space="constant", valid_flags=_WIDTH_FLAGS),
        # ---- Special registers / control ------------------------------------
        OpSpec("S2R", 0x919, "mio", None, num_srcs=0,
               valid_flags=("SR_TID.X", "SR_TID.Y", "SR_TID.Z",
                            "SR_CTAID.X", "SR_CTAID.Y", "SR_CTAID.Z",
                            "SR_LANEID", "SR_VIRTID")),
        OpSpec("CS2R", 0x805, "alu", 5, num_srcs=0, valid_flags=("32",)),
        OpSpec("BAR", 0xB1D, "branch", None, num_srcs=0, has_dest=False,
               valid_flags=("SYNC",)),
        OpSpec("BRA", 0x947, "branch", None, num_srcs=0, has_dest=False,
               valid_flags=("U",)),
        OpSpec("EXIT", 0x94D, "branch", None, num_srcs=0, has_dest=False),
        OpSpec("NOP", 0x918, "none", 1, num_srcs=0, has_dest=False),
    ]
}

OPCODE_TO_NAME: dict[int, str] = {spec.opcode: name for name, spec in OPCODES.items()}

# Special-register ids for S2R (our own stable numbering).
SPECIAL_REGISTERS = {
    "SR_TID.X": 0,
    "SR_TID.Y": 1,
    "SR_TID.Z": 2,
    "SR_CTAID.X": 3,
    "SR_CTAID.Y": 4,
    "SR_CTAID.Z": 5,
    "SR_LANEID": 6,
    "SR_VIRTID": 7,
}
SPECIAL_REGISTER_NAMES = {v: k for k, v in SPECIAL_REGISTERS.items()}

# ISETP comparison / boolean sub-ops (encoded in the flags field).
SETP_CMP = {"EQ": 0, "NE": 1, "LT": 2, "LE": 3, "GT": 4, "GE": 5}
SETP_CMP_NAMES = {v: k for k, v in SETP_CMP.items()}
SETP_BOOL = {"AND": 0, "OR": 1, "XOR": 2}
SETP_BOOL_NAMES = {v: k for k, v in SETP_BOOL.items()}

# Memory width in bytes per flag.
WIDTH_BYTES = {"16": 2, "32": 4, "64": 8, "128": 16}


def width_of(flags: tuple[str, ...]) -> int:
    """Access width in bytes implied by a memory instruction's flags."""
    for flag in flags:
        if flag in WIDTH_BYTES:
            return WIDTH_BYTES[flag]
    return 4


def spec_for(name: str) -> OpSpec:
    try:
        return OPCODES[name]
    except KeyError:
        raise KeyError(f"unknown SASS mnemonic {name!r}") from None
