"""The assembler driver: source text → assembled kernel.

Pipeline (mirroring TuringAs):

1. :mod:`preprocess` — inline Python, register aliases, directives;
2. :mod:`parser` — text → IR, labels collected;
3. label resolution — ``BRA`` targets become relative instruction
   displacements (in instructions, i.e. 16-byte units);
4. optional :mod:`hazards` scheduling pass (``auto_schedule=True``) and
   validation (``strict=True``);
5. register audit — highest register used must stay under the 253-register
   ceiling the paper measured (footnote 7);
6. :mod:`encoder` — IR → 128-bit words.

The result bundles everything the simulator and the cubin writer need.
"""

from __future__ import annotations

import dataclasses

from ..common.errors import AssemblerError, RegisterBudgetError, SassSyntaxError
from .encoder import encode_program
from .hazards import schedule, validate_control
from .instruction import Instruction
from .isa import MAX_USABLE_REGISTERS
from .parser import parse_program
from .preprocess import KernelMeta, preprocess


@dataclasses.dataclass
class AssembledKernel:
    """A fully assembled kernel ready to write to a cubin or simulate."""

    meta: KernelMeta
    instructions: list[Instruction]
    labels: dict[str, int]
    text: bytes

    @property
    def num_instructions(self) -> int:
        return len(self.instructions)

    def max_register(self) -> int:
        """Highest regular register index referenced (or -1 if none)."""
        top = -1
        for instr in self.instructions:
            for reg in instr.reads_registers() + instr.writes_registers():
                if reg < 255:
                    top = max(top, reg)
        return top

    def disassemble(self) -> str:
        """Canonical listing with labels and control codes.

        Resolved branch displacements are rendered back as labels so the
        listing reassembles to the same bytes.
        """
        index_to_label = {v: k for k, v in self.labels.items()}
        lines = []
        for i, instr in enumerate(self.instructions):
            if i in index_to_label:
                lines.append(f"{index_to_label[i]}:")
            if instr.name == "BRA" and isinstance(instr.target, int):
                target_idx = i + 1 + instr.target
                if target_idx in index_to_label:
                    saved = instr.target
                    instr.target = index_to_label[target_idx]
                    lines.append("    " + instr.text())
                    instr.target = saved
                    continue
            lines.append("    " + instr.text())
        return "\n".join(lines)


def assemble(
    source: str,
    env: dict[str, object] | None = None,
    auto_schedule: bool = False,
    strict: bool = False,
) -> AssembledKernel:
    """Assemble SASS source text.

    Parameters
    ----------
    source: SASS listing (may contain directives and inline Python).
    env: variables visible to inline Python blocks and ``{{ }}`` splices.
    auto_schedule: run the hazard pass to fill default control codes.
    strict: raise if :func:`hazards.validate_control` finds violations.
    """
    pre = preprocess(source, env)
    parsed = parse_program(pre.source)
    instructions = parsed.instructions
    if not instructions:
        raise AssemblerError("empty program")

    # Resolve BRA labels to relative displacements (in instructions).
    loop_start = None
    for pos, instr in enumerate(instructions):
        if instr.name == "BRA" and isinstance(instr.target, str):
            label = instr.target
            if label not in parsed.labels:
                raise SassSyntaxError(f"undefined label {label!r}", instr.line)
            target_idx = parsed.labels[label]
            instr.target = target_idx - (pos + 1)
            if target_idx <= pos:
                loop_start = target_idx if loop_start is None else min(
                    loop_start, target_idx
                )

    if auto_schedule:
        schedule(instructions, loop_start=loop_start)
    if strict:
        problems = validate_control(instructions)
        if problems:
            raise AssemblerError(
                "control-code hazards detected:\n  " + "\n  ".join(problems[:20])
            )

    top = -1
    for instr in instructions:
        for reg in instr.reads_registers() + instr.writes_registers():
            if reg < 255:
                top = max(top, reg)
    if top + 1 > MAX_USABLE_REGISTERS:
        raise RegisterBudgetError(
            f"kernel uses R{top} but only {MAX_USABLE_REGISTERS} registers are "
            "usable (paper §5.2.1 footnote: the hardware rejects >= 253)"
        )
    meta = pre.meta
    if meta.registers < top + 1:
        meta = dataclasses.replace(meta, registers=top + 1)

    return AssembledKernel(
        meta=meta,
        instructions=instructions,
        labels=parsed.labels,
        text=encode_program(instructions),
    )


def assemble_file(
    path: str,
    env: dict[str, object] | None = None,
    auto_schedule: bool = False,
    strict: bool = False,
) -> AssembledKernel:
    with open(path, "r", encoding="utf-8") as fh:
        return assemble(fh.read(), env, auto_schedule, strict)
