"""Source preprocessor: directives, register name mapping, inline Python.

TuringAs's productivity features (paper §5.3):

* **Inline Python** — used to "print the long sequence unrolled SASS
  loop".  Two forms:

  - block::

        {%
        for i in range(8):
            emit(f"FFMA R{i}, R{i+8}, R{i+16}, R{i};")
        %}

    The block runs with an ``emit(line)`` function plus any variables
    passed in ``env``; emitted lines replace the block.

  - expression splice: ``LDG.E R{{ 2*i }}, [R2 + {{ hex(i*16) }}];`` —
    each ``{{ expr }}`` is evaluated and substituted into the line.

* **Register name mapping** — ``.alias index R1`` lets the source use
  ``index`` instead of ``R1`` ("a meaningful register name rather than a
  register index").

* **Kernel directives** — ``.kernel NAME``, ``.registers N``,
  ``.smem BYTES``, ``.param BYTES [NAME]`` describe launch metadata; the
  parameter list assigns constant-bank addresses from ``c[0x0][0x160]``
  upward (§5.1.2), exposed as ``param:NAME`` aliases.
"""

from __future__ import annotations

import dataclasses
import re

from ..common.errors import SassSyntaxError

PARAM_BASE = 0x160  # kernel parameters start here in constant bank 0


@dataclasses.dataclass
class KernelMeta:
    """Launch metadata gathered from directives."""

    name: str = "kernel"
    registers: int = 32
    smem_bytes: int = 0
    params: list[tuple[str, int, int]] = dataclasses.field(default_factory=list)
    # (name, byte offset in constant bank 0, size)

    def param_offset(self, name: str) -> int:
        for pname, offset, _ in self.params:
            if pname == name:
                return offset
        raise KeyError(f"no kernel parameter named {name!r}")


@dataclasses.dataclass
class PreprocessResult:
    source: str
    meta: KernelMeta


_ALIAS_RE = re.compile(r"^\.alias\s+([A-Za-z_][A-Za-z_0-9]*)\s+(\S+)\s*$")
_EXPR_RE = re.compile(r"\{\{(.*?)\}\}")


def preprocess(source: str, env: dict[str, object] | None = None) -> PreprocessResult:
    """Expand inline Python, apply aliases, collect directives."""
    env = dict(env or {})
    meta = KernelMeta()
    aliases: dict[str, str] = {}
    out_lines: list[str] = []
    lines = source.splitlines()
    i = 0
    param_cursor = PARAM_BASE

    def expand_exprs(line: str, lineno: int) -> str:
        def repl(m: re.Match) -> str:
            try:
                return str(eval(m.group(1), {"__builtins__": __builtins__}, env))
            except Exception as exc:
                raise SassSyntaxError(
                    f"inline expression {m.group(1)!r} failed: {exc}", lineno
                ) from None

        return _EXPR_RE.sub(repl, line)

    def apply_aliases(line: str) -> str:
        for name, target in aliases.items():
            line = re.sub(rf"(?<![\w.]){re.escape(name)}(?![\w])", target, line)
        return line

    while i < len(lines):
        raw = lines[i]
        stripped = raw.strip()
        lineno = i + 1

        # ---- inline Python block ------------------------------------------
        if stripped.startswith("{%"):
            block: list[str] = []
            body = stripped[2:]
            i += 1
            closed = body.rstrip().endswith("%}")
            if closed:
                block.append(body.rstrip()[:-2])
            else:
                if body.strip():
                    block.append(body)
                while i < len(lines):
                    text = lines[i]
                    if text.strip().endswith("%}"):
                        block.append(text.rstrip()[: text.rstrip().rfind("%}")])
                        i += 1
                        closed = True
                        break
                    block.append(text)
                    i += 1
            if not closed:
                raise SassSyntaxError("unterminated '{%' block", lineno)
            emitted: list[str] = []
            code = "\n".join(block)
            # Normalize indentation of the block body.
            code = _dedent(code)
            local_env = dict(env)
            local_env["emit"] = emitted.append
            try:
                exec(code, {"__builtins__": __builtins__}, local_env)
            except Exception as exc:
                raise SassSyntaxError(
                    f"inline Python block failed: {exc!r}", lineno
                ) from None
            env.update(
                {k: v for k, v in local_env.items() if k != "emit"}
            )
            for e_line in emitted:
                out_lines.append(apply_aliases(e_line))
            continue

        line = expand_exprs(raw, lineno)
        stripped = line.strip()

        # ---- directives ----------------------------------------------------
        if stripped.startswith("."):
            m = _ALIAS_RE.match(stripped)
            if m:
                aliases[m.group(1)] = m.group(2)
                i += 1
                continue
            fields = stripped.split()
            directive = fields[0]
            if directive == ".kernel" and len(fields) == 2:
                meta.name = fields[1]
            elif directive == ".registers" and len(fields) == 2:
                meta.registers = int(fields[1], 0)
            elif directive == ".smem" and len(fields) == 2:
                meta.smem_bytes = int(fields[1], 0)
            elif directive == ".param" and len(fields) in (2, 3):
                size = int(fields[1], 0)
                name = fields[2] if len(fields) == 3 else f"arg{len(meta.params)}"
                meta.params.append((name, param_cursor, size))
                aliases[f"param:{name}"] = f"c[0x0][{param_cursor:#x}]"
                param_cursor += max(size, 4)
            else:
                raise SassSyntaxError(f"unknown directive {stripped!r}", lineno)
            i += 1
            continue

        out_lines.append(apply_aliases(line))
        i += 1

    return PreprocessResult("\n".join(out_lines), meta)


def _dedent(code: str) -> str:
    lines = [l for l in code.splitlines()]
    indents = [
        len(l) - len(l.lstrip()) for l in lines if l.strip()
    ]
    if not indents:
        return code
    cut = min(indents)
    return "\n".join(l[cut:] if l.strip() else "" for l in lines)
