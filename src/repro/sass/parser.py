"""SASS source parser: text → :class:`Instruction` IR.

Accepted line grammar (one statement per line)::

    LABEL:
    [B------:R-:W-:-:S01] @!P3 FFMA.FTZ R0, R1, c[0x0][0x160], R2;  // note
    LDG.E.128 R16, [R2 + 0x100];
    ISETP.LT.AND P0, PT, R3, 0x20, PT;
    S2R R0, SR_TID.X;
    P2R R5, 0xf;      R2P R5, 0xf;
    BRA MAIN_LOOP;    BAR.SYNC;    EXIT;

The control-code prefix is optional; when omitted it defaults to
``ControlCode()`` and the hazard pass (:mod:`repro.sass.hazards`) is
expected to fill in stalls and barriers.  ``.reuse`` operand suffixes
set that operand slot's reuse bit in the control word.
"""

from __future__ import annotations

import copy
import dataclasses
import re

from ..common.errors import SassSyntaxError
from .control import ControlCode, parse_control
from .instruction import Instruction
from .isa import SPECIAL_REGISTERS, spec_for
from .operands import Const, Imm, Mem, Pred, Reg, parse_operand

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z_0-9.$]*):$")
_GUARD_RE = re.compile(r"^@(!?)(P[0-6T])$")
_MNEMONIC_RE = re.compile(r"^[A-Z][A-Z0-9]*(\.[A-Za-z0-9_.]+)*$")


@dataclasses.dataclass
class ParsedProgram:
    """Instruction list plus label → instruction-index map."""

    instructions: list[Instruction]
    labels: dict[str, int]


def _strip_comment(line: str) -> str:
    for marker in ("//", "#"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _split_operands(text: str) -> list[str]:
    """Split on commas that are not inside ``[...]`` memory brackets."""
    parts: list[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


# Kernel sources repeat the same statement text heavily (unrolled FFMA
# blocks, and whole loop bodies shared across tunables that differ only
# in layout), so successful parses are memoized by statement text.  The
# memo holds a prototype; callers get a shallow copy, which is safe
# because operands are frozen and every post-parse rewrite (control,
# target) is a per-instance attribute assignment.
_PARSE_MEMO: dict[str, Instruction] = {}
_PARSE_MEMO_MAX = 65536


def parse_line(line: str, lineno: int = 0) -> Instruction | None:
    """Parse one source line; returns None for blank/comment lines."""
    text = _strip_comment(line)
    if not text:
        return None
    proto = _PARSE_MEMO.get(text)
    if proto is None:
        proto = _parse_statement(text, lineno)
        if len(_PARSE_MEMO) >= _PARSE_MEMO_MAX:
            _PARSE_MEMO.clear()
        _PARSE_MEMO[text] = proto
    instr = copy.copy(proto)
    instr.line = lineno
    return instr


def _parse_statement(text: str, lineno: int) -> Instruction:
    control = ControlCode()
    if text.startswith("["):
        end = text.find("]")
        if end < 0:
            raise SassSyntaxError("unterminated control code", lineno)
        control = parse_control(text[: end + 1], lineno)
        text = text[end + 1 :].strip()

    guard = Pred(7)
    if text.startswith("@"):
        head, _, rest = text.partition(" ")
        m = _GUARD_RE.match(head)
        if not m:
            raise SassSyntaxError(f"malformed guard predicate {head!r}", lineno)
        idx = 7 if m.group(2) == "PT" else int(m.group(2)[1])
        guard = Pred(idx, negated=bool(m.group(1)))
        text = rest.strip()

    if not text.endswith(";"):
        raise SassSyntaxError("missing trailing ';'", lineno)
    text = text[:-1].strip()

    mnem, _, operand_text = text.partition(" ")
    if not _MNEMONIC_RE.match(mnem):
        raise SassSyntaxError(f"malformed mnemonic {mnem!r}", lineno)
    name, *flags = mnem.split(".")
    try:
        spec = spec_for(name)
    except KeyError as exc:
        raise SassSyntaxError(str(exc), lineno) from None
    # Canonicalize flag order to the opcode table's order so that
    # parse → encode → decode → text round-trips exactly.
    flags.sort(
        key=lambda f: spec.valid_flags.index(f) if f in spec.valid_flags else 99
    )

    tokens = _split_operands(operand_text) if operand_text.strip() else []
    instr = Instruction(
        name=name,
        flags=tuple(flags),
        guard=guard,
        control=control,
        line=lineno,
    )

    # ---- per-category operand assembly -----------------------------------
    if name == "BRA":
        if len(tokens) != 1:
            raise SassSyntaxError("BRA takes exactly one target", lineno)
        instr.target = tokens[0]
        _apply_reuse(instr)
        return instr
    if name in ("EXIT", "NOP", "BAR"):
        if tokens:
            raise SassSyntaxError(f"{name} takes no operands", lineno)
        return instr
    if name == "S2R":
        if len(tokens) != 2 or tokens[1] not in SPECIAL_REGISTERS:
            raise SassSyntaxError(
                f"S2R needs 'S2R Rd, SR_NAME' with SR in {sorted(SPECIAL_REGISTERS)}",
                lineno,
            )
        instr.dest = _expect_reg(tokens[0], lineno)
        instr.flags = instr.flags + (tokens[1],)
        return instr

    ops = [
        tok if tok in SPECIAL_REGISTERS else parse_operand(tok, lineno)
        for tok in tokens
    ]

    if name == "ISETP":
        # ISETP.CMP.BOOL Pdst, Pdst2, Ra, B, Pcombine
        if len(ops) != 5:
            raise SassSyntaxError("ISETP needs 5 operands", lineno)
        p0, p1, ra, b, pc = ops
        if not isinstance(p0, Pred) or not isinstance(p1, Pred):
            raise SassSyntaxError("ISETP destinations must be predicates", lineno)
        if not isinstance(pc, Pred):
            raise SassSyntaxError("ISETP combine source must be a predicate", lineno)
        instr.dest_preds = (p0, p1)
        instr.srcs = (ra, b)
        instr.src_pred = pc
    elif name in ("P2R", "R2P"):
        if len(ops) != 2 or not isinstance(ops[0], Reg) or not isinstance(ops[1], Imm):
            raise SassSyntaxError(f"{name} needs 'Rd, mask-immediate'", lineno)
        if name == "P2R":
            instr.dest = ops[0]
            instr.srcs = (ops[1],)
        else:
            instr.srcs = (ops[0], ops[1])
    elif spec.is_store:
        if len(ops) != 2 or not isinstance(ops[0], Mem):
            raise SassSyntaxError(f"{name} needs '[Rb + off], Rdata'", lineno)
        instr.mem = ops[0]
        instr.srcs = (_expect_reg_operand(ops[1], lineno),)
    elif spec.is_load:
        if len(ops) != 2 or not isinstance(ops[1], Mem):
            raise SassSyntaxError(f"{name} needs 'Rd, [Rb + off]'", lineno)
        instr.dest = _expect_reg_operand(ops[0], lineno)
        instr.mem = ops[1]
    else:
        # Generic ALU/FMA: Rd, then spec.num_srcs sources.
        expected = (1 if spec.has_dest else 0) + spec.num_srcs
        if len(ops) != expected:
            raise SassSyntaxError(
                f"{mnem} expects {expected} operands, got {len(ops)}", lineno
            )
        if spec.has_dest:
            instr.dest = _expect_reg_operand(ops[0], lineno)
            instr.srcs = tuple(ops[1:])
        else:
            instr.srcs = tuple(ops)

    _apply_reuse(instr)
    try:
        instr.validate()
    except Exception as exc:  # re-raise with line info
        raise SassSyntaxError(str(exc), lineno) from None
    return instr


def _expect_reg(token: str, lineno: int) -> Reg:
    op = parse_operand(token, lineno)
    return _expect_reg_operand(op, lineno)


def _expect_reg_operand(op, lineno: int) -> Reg:
    if not isinstance(op, Reg):
        raise SassSyntaxError(f"expected a register, got {op!r}", lineno)
    return op


def _apply_reuse(instr: Instruction) -> None:
    """Fold per-operand ``.reuse`` suffixes into the control word."""
    control = instr.control
    for slot, src in enumerate(instr.srcs):
        if isinstance(src, Reg) and src.reuse:
            control = control.with_reuse_slot(slot)
    instr.control = control


def parse_program(source: str) -> ParsedProgram:
    """Parse a full SASS listing (after preprocessing)."""
    instructions: list[Instruction] = []
    labels: dict[str, int] = {}
    for lineno, raw in enumerate(source.splitlines(), start=1):
        text = _strip_comment(raw)
        if not text:
            continue
        m = _LABEL_RE.match(text)
        if m:
            label = m.group(1)
            if label in labels:
                raise SassSyntaxError(f"duplicate label {label!r}", lineno)
            labels[label] = len(instructions)
            continue
        instr = parse_line(text, lineno)
        if instr is not None:
            instructions.append(instr)
    return ParsedProgram(instructions, labels)
