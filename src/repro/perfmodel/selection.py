"""Model-driven algorithm selection for the runtime dispatcher.

This module is the analytical half of ``repro.convolution.autotune``: it
reuses the calibrated cuDNN time models (Figs. 12-13) and the workspace
formulas (Fig. 14) to answer, for an arbitrary :class:`ConvProblem`,

* which dispatcher algorithms are *structurally* able to run it
  (the fused paper kernel only implements 3×3/pad-1),
* which of those fit inside a caller-supplied workspace budget
  (the Fig. 14 workspace-limited selection, as a runtime component), and
* in what order the surviving candidates should be tried (cheapest
  predicted time first, ``DIRECT`` pinned last as the unconditional
  fallback).

It is intentionally free of any NumPy execution: everything here is
closed-form so ``AUTO_HEURISTIC`` can pick an algorithm without touching
the data, mirroring cuDNN's ``cudnnGetConvolutionForwardAlgorithm``
(heuristic) vs ``cudnnFind...`` (measured) split.
"""

from __future__ import annotations

from ..common.errors import ModelError
from ..common.problem import ConvProblem
from ..gpusim.arch import DeviceSpec
from .breakeven import fused_time
from .cudnn_model import (
    _io_time,
    fft_time,
    fft_tiling_time,
    gemm_time,
    implicit_gemm_time,
    implicit_precomp_gemm_time,
    winograd_nonfused_time,
)
from .workspace import dispatch_workspace_bytes

# Every algorithm the dispatcher may execute, in Fig. 12-14 column order.
# ``DIRECT`` is the library's arithmetic ground truth: it has no
# workspace, no shape restrictions, and therefore terminates every
# fallback chain.
DISPATCH_CANDIDATES = (
    "WINOGRAD",
    "WINOGRAD_F44",
    "WINOGRAD_DWM",
    "WINOGRAD_NONFUSED",
    "IMPLICIT_PRECOMP_GEMM",
    "IMPLICIT_GEMM",
    "GEMM",
    "FFT",
    "FFT_TILING",
    "DIRECT",
)

# A shift-and-accumulate direct convolution runs one tap at a time with
# no data reuse in registers; a small fraction of peak is generous.
EFF_DIRECT = 0.10


def direct_time(prob: ConvProblem, device: DeviceSpec) -> float:
    """Model of the last-resort direct convolution (not a cuDNN column)."""
    compute = prob.direct_flops / (EFF_DIRECT * device.peak_fp32_tflops * 1e12)
    return max(compute, _io_time(prob, device))


def fused_winograd_time(prob: ConvProblem, device: DeviceSpec) -> float:
    """§8.1's idealized model of *this library's* fused F(2×2) kernel."""
    return max(fused_time(prob, device), _io_time(prob, device))


def fused_winograd_f44_time(prob: ConvProblem, device: DeviceSpec) -> float:
    """The fused F(4×4,3×3) kernel at its best feasible blocking (§8.1).

    Uses the ``f44_study`` projection: 4× multiplication reduction with
    6×6-tile overcompute, capped by the blocking's attainable
    (memory-limited) SOL — the model that predicts F(4×4) only beats
    F(2×2) on deep, high-K layers.
    """
    from .f44_study import projected_fused_f44_time

    return max(projected_fused_f44_time(prob, device), _io_time(prob, device))


# DWM launches one fused kernel per part plus the polyphase gather /
# partial-sum traffic; a flat per-part tax keeps the trivial one-part
# plan ranked (slightly) behind the native fused kernel it wraps.
DWM_PART_OVERHEAD = 1.15


def dwm_winograd_time(prob: ConvProblem, device: DeviceSpec) -> float:
    """DWM decomposition: fused F(2×2) parts over the decomposed problem.

    Each part is a VALID 3×3 stride-1 convolution producing the full
    output extent, so the per-part cost is the fused model on the
    equivalent (out + 2)² pad-0 problem; parts run sequentially.
    """
    from ..convolution.dwm import dwm_plan

    plan = dwm_plan(prob.r, prob.s, prob.pad, prob.stride)
    part = ConvProblem(
        n=prob.n, c=prob.c, h=prob.out_h + 2, w=prob.out_w + 2, k=prob.k, pad=0
    )
    per_part = max(fused_time(part, device), _io_time(part, device))
    return plan.num_parts * per_part * DWM_PART_OVERHEAD


_TIME_MODELS = {
    "DIRECT": direct_time,
    "GEMM": gemm_time,
    "IMPLICIT_GEMM": implicit_gemm_time,
    "IMPLICIT_PRECOMP_GEMM": implicit_precomp_gemm_time,
    "FFT": fft_time,
    "FFT_TILING": fft_tiling_time,
    "WINOGRAD": fused_winograd_time,
    "WINOGRAD_F44": fused_winograd_f44_time,
    "WINOGRAD_DWM": dwm_winograd_time,
    "WINOGRAD_NONFUSED": winograd_nonfused_time,
}


def predicted_time(prob: ConvProblem, device: DeviceSpec, algo: str) -> float:
    """Predicted seconds for one forward pass of *algo* on *prob*."""
    try:
        fn = _TIME_MODELS[algo]
    except KeyError:
        raise ModelError(
            f"no time model for dispatcher algorithm {algo!r}; "
            f"choose from {sorted(_TIME_MODELS)}"
        ) from None
    return fn(prob, device)


def algorithm_supports(algo: str, prob: ConvProblem) -> bool:
    """Structural eligibility: can *algo* run this problem shape at all?

    The tile-family Winograd pipelines (F(2×2) and F(4×4)) implement the
    paper's 3×3/pad-1/stride-1 case only (``conv2d`` raises
    ``ConvConfigError`` outside it).  ``WINOGRAD_DWM`` decomposes any
    square filter at stride 1 or 2 into such sub-problems.  Only DWM and
    DIRECT run strided problems; everything else additionally handles
    arbitrary R×S and padding at stride 1.
    """
    if algo == "WINOGRAD_DWM":
        return prob.r == prob.s and prob.stride in (1, 2)
    if prob.stride != 1:
        return algo == "DIRECT"
    if algo in ("WINOGRAD", "WINOGRAD_F44", "WINOGRAD_NONFUSED"):
        return (prob.r, prob.s) == (3, 3) and prob.pad == 1
    return algo in _TIME_MODELS


def rank_algorithms(
    prob: ConvProblem,
    device: DeviceSpec,
    workspace_limit_bytes: int | None = None,
    candidates: tuple[str, ...] = DISPATCH_CANDIDATES,
) -> tuple[list[str], dict[str, str]]:
    """Order *candidates* for a problem under a workspace budget.

    Returns ``(ranked, excluded)``: *ranked* is the eligible candidates
    sorted by predicted time (``DIRECT`` always last, whatever its
    prediction, so the fallback chain ends at the unconditional
    algorithm), and *excluded* maps each rejected candidate to a
    human-readable reason — the same bookkeeping the dispatcher surfaces
    through ``get_dispatch_stats()``.
    """
    ranked: list[str] = []
    excluded: dict[str, str] = {}
    for algo in candidates:
        if not algorithm_supports(algo, prob):
            excluded[algo] = (
                f"unsupported shape: {prob.r}x{prob.s}/pad={prob.pad}"
                f"/stride={prob.stride} (tile kernels run 3x3/pad-1/"
                "stride-1; WINOGRAD_DWM decomposes larger or strided)"
            )
            continue
        if workspace_limit_bytes is not None:
            need = dispatch_workspace_bytes(prob, algo)
            if need > workspace_limit_bytes:
                excluded[algo] = (
                    f"workspace {need} B exceeds limit {workspace_limit_bytes} B"
                )
                continue
        ranked.append(algo)
    ranked.sort(
        key=lambda a: (a == "DIRECT", predicted_time(prob, device, a))
    )
    return ranked, excluded
