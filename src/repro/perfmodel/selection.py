"""Model-driven algorithm selection for the runtime dispatcher.

This module is the analytical half of ``repro.convolution.autotune``: it
reuses the calibrated cuDNN time models (Figs. 12-13) and the workspace
formulas (Fig. 14) to answer, for an arbitrary :class:`ConvProblem`,

* which dispatcher algorithms are *structurally* able to run it
  (the fused paper kernel only implements 3×3/pad-1),
* which of those fit inside a caller-supplied workspace budget
  (the Fig. 14 workspace-limited selection, as a runtime component), and
* in what order the surviving candidates should be tried (cheapest
  predicted time first, ``DIRECT`` pinned last as the unconditional
  fallback).

It is intentionally free of any NumPy execution: everything here is
closed-form so ``AUTO_HEURISTIC`` can pick an algorithm without touching
the data, mirroring cuDNN's ``cudnnGetConvolutionForwardAlgorithm``
(heuristic) vs ``cudnnFind...`` (measured) split.
"""

from __future__ import annotations

from ..common.errors import ModelError
from ..common.problem import ConvProblem
from ..gpusim.arch import DeviceSpec
from .breakeven import fused_time
from .cudnn_model import (
    _io_time,
    fft_time,
    fft_tiling_time,
    gemm_time,
    implicit_gemm_time,
    implicit_precomp_gemm_time,
    winograd_nonfused_time,
)
from .workspace import dispatch_workspace_bytes

# Every algorithm the dispatcher may execute, in Fig. 12-14 column order.
# ``DIRECT`` is the library's arithmetic ground truth: it has no
# workspace, no shape restrictions, and therefore terminates every
# fallback chain.
DISPATCH_CANDIDATES = (
    "WINOGRAD",
    "WINOGRAD_NONFUSED",
    "IMPLICIT_PRECOMP_GEMM",
    "IMPLICIT_GEMM",
    "GEMM",
    "FFT",
    "FFT_TILING",
    "DIRECT",
)

# A shift-and-accumulate direct convolution runs one tap at a time with
# no data reuse in registers; a small fraction of peak is generous.
EFF_DIRECT = 0.10


def direct_time(prob: ConvProblem, device: DeviceSpec) -> float:
    """Model of the last-resort direct convolution (not a cuDNN column)."""
    compute = prob.direct_flops / (EFF_DIRECT * device.peak_fp32_tflops * 1e12)
    return max(compute, _io_time(prob, device))


def fused_winograd_time(prob: ConvProblem, device: DeviceSpec) -> float:
    """§8.1's idealized model of *this library's* fused F(2×2) kernel."""
    return max(fused_time(prob, device), _io_time(prob, device))


_TIME_MODELS = {
    "DIRECT": direct_time,
    "GEMM": gemm_time,
    "IMPLICIT_GEMM": implicit_gemm_time,
    "IMPLICIT_PRECOMP_GEMM": implicit_precomp_gemm_time,
    "FFT": fft_time,
    "FFT_TILING": fft_tiling_time,
    "WINOGRAD": fused_winograd_time,
    "WINOGRAD_NONFUSED": winograd_nonfused_time,
}


def predicted_time(prob: ConvProblem, device: DeviceSpec, algo: str) -> float:
    """Predicted seconds for one forward pass of *algo* on *prob*."""
    try:
        fn = _TIME_MODELS[algo]
    except KeyError:
        raise ModelError(
            f"no time model for dispatcher algorithm {algo!r}; "
            f"choose from {sorted(_TIME_MODELS)}"
        ) from None
    return fn(prob, device)


def algorithm_supports(algo: str, prob: ConvProblem) -> bool:
    """Structural eligibility: can *algo* run this problem shape at all?

    The two Winograd pipelines implement the paper's 3×3/pad-1 case only
    (``conv2d`` raises ``ConvConfigError`` outside it); everything else
    handles arbitrary R×S and padding.
    """
    if algo in ("WINOGRAD", "WINOGRAD_NONFUSED"):
        return (prob.r, prob.s) == (3, 3) and prob.pad == 1
    return algo in _TIME_MODELS


def rank_algorithms(
    prob: ConvProblem,
    device: DeviceSpec,
    workspace_limit_bytes: int | None = None,
    candidates: tuple[str, ...] = DISPATCH_CANDIDATES,
) -> tuple[list[str], dict[str, str]]:
    """Order *candidates* for a problem under a workspace budget.

    Returns ``(ranked, excluded)``: *ranked* is the eligible candidates
    sorted by predicted time (``DIRECT`` always last, whatever its
    prediction, so the fallback chain ends at the unconditional
    algorithm), and *excluded* maps each rejected candidate to a
    human-readable reason — the same bookkeeping the dispatcher surfaces
    through ``get_dispatch_stats()``.
    """
    ranked: list[str] = []
    excluded: dict[str, str] = {}
    for algo in candidates:
        if not algorithm_supports(algo, prob):
            excluded[algo] = (
                f"unsupported shape: {prob.r}x{prob.s}/pad={prob.pad} "
                "(paper kernels implement 3x3/pad-1 only)"
            )
            continue
        if workspace_limit_bytes is not None:
            need = dispatch_workspace_bytes(prob, algo)
            if need > workspace_limit_bytes:
                excluded[algo] = (
                    f"workspace {need} B exceeds limit {workspace_limit_bytes} B"
                )
                continue
        ranked.append(algo)
    ranked.sort(
        key=lambda a: (a == "DIRECT", predicted_time(prob, device, a))
    )
    return ranked, excluded
