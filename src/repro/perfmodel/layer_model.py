"""Whole-layer performance of the generated kernel, from the simulator.

A full ResNet layer runs billions of lane-FFMAs — far too many to
simulate instruction by instruction in Python — so the layer model does
what one does on real hardware with a single-SM microbenchmark:

1. measure the **steady-state main-loop cycles per bc-iteration** on one
   simulated SM (differential measurement, see ``kernels.runner``);
2. measure the **per-block overhead** (prologue + first staging +
   output transform) by simulating the *full* kernel on a surrogate
   problem and subtracting the main-loop portion;
3. extrapolate: ``time = waves × block_cycles / clock`` with
   ``waves = ⌈blocks / (SMs · occupancy)⌉`` — which also captures the
   small-batch tail effect behind the Conv4N32/Conv5N32 SOL dips in
   Figs. 10-11.

Per-block work is layer-independent at fixed (bk, bn, bc) — layers only
change the iteration count (C/8), the grid size and the tail — so the
two measurements are cached per (device, tunables) pair and reused for
all 16 layers.
"""

from __future__ import annotations

import dataclasses
import math

from ..common.problem import ConvProblem
from ..gpusim.arch import DeviceSpec
from ..kernels.cache import build_fused_kernel, sim_cache_key, simulation_cache
from ..kernels.runner import (
    MainLoopMeasurement,
    _simulate_main_loop,
    measure_main_loop,
)
from ..kernels.winograd_f22 import BC, BN, Tunables, WinogradF22Kernel

_SURROGATE = ConvProblem(n=32, c=32, h=16, w=16, k=64, name="surrogate")

_cache: dict = {}


def prime_measurement_cache(
    device_name: str,
    tunables: Tunables,
    main: MainLoopMeasurement,
    overhead: float,
    overhead_fma: float,
) -> None:
    """Seed the per-(device, tunables) measurement memo.

    Used by the parallel benchmark harness to install measurements that
    were computed in worker processes, so the parent never re-simulates.
    """
    _cache[(device_name, tunables)] = (main, overhead, overhead_fma)


@dataclasses.dataclass
class LayerPerformance:
    """Predicted whole-layer execution of the fused kernel."""

    prob: ConvProblem
    device_name: str
    blocks: int
    occupancy: int
    waves: int
    iters: int
    cycles_per_iter: float
    overhead_cycles: float
    time_s: float
    tflops_effective: float  # direct-conv flops / time (Fig. 12-13 basis)
    sol_main_loop: float
    sol_total: float


def _measurements(
    device: DeviceSpec, tunables: Tunables
) -> tuple[MainLoopMeasurement, float, float]:
    """(main-loop measurement, overhead cycles, overhead fma-busy) cached."""
    key = (device.name, tunables)
    if key in _cache:
        return _cache[key]
    surrogate = _SURROGATE
    if tunables.bk != 64:
        surrogate = dataclasses.replace(surrogate, k=tunables.bk)
    main = measure_main_loop(surrogate, device, tunables, iters=3)
    # Full kernel (with OTF epilogue) at the same iteration count → the
    # difference is prologue + staging + epilogue ("overhead").
    full = _simulate_full_kernel(surrogate, device, tunables, iters=3)
    main_only = _simulate_main_loop(surrogate, device, tunables, 3, None)
    overhead = max(
        0.0, full.counters.cycles - main_only.counters.cycles
    ) + (main_only.counters.cycles - 3 * main.cycles_per_iter)
    overhead_fma_busy = max(
        0, full.counters.fma_pipe_busy - main_only.counters.fma_pipe_busy
    )
    result = (main, overhead, float(overhead_fma_busy))
    _cache[key] = result
    return result


def _simulate_full_kernel(prob, device, tunables, iters):
    """Resident-blocks run of the *full* kernel (with epilogue), memoized
    in the simulation cache exactly like the main-loop-only runs."""
    from ..gpusim.launch import LaunchResult, simulate_resident_blocks
    from ..gpusim.memory import GlobalMemory

    cache = simulation_cache()
    key = sim_cache_key(
        "layer_overhead_full",
        prob=prob, device=device, tunables=tunables, iters=iters,
    )
    payload = cache.get(key)
    if payload is not None:
        return LaunchResult.from_payload(payload)
    kernel_full = build_fused_kernel(
        prob, tunables, device.name, main_loop_only=False, iters=iters
    )
    gmem = GlobalMemory(size=128 << 20)
    p = prob
    in_ptr = gmem.alloc(4 * (p.c + BC) * p.h * p.w * p.n)
    fil_ptr = gmem.alloc(4 * (p.c + BC) * 16 * p.k, l2_resident=True)
    out_ptr = gmem.alloc(4 * p.k * p.out_h * p.out_w * p.n)
    result = simulate_resident_blocks(
        kernel_full,
        device,
        params={"in_ptr": in_ptr, "fil_ptr": fil_ptr, "out_ptr": out_ptr},
        gmem=gmem,
        threads_per_block=256,
    )
    cache.put(key, result.to_payload())
    return result


def our_layer_performance(
    prob: ConvProblem,
    device: DeviceSpec,
    tunables: Tunables | None = None,
) -> LayerPerformance:
    """Predict the fused kernel's full-layer execution on *device*."""
    tunables = tunables or Tunables()
    main, overhead, overhead_fma = _measurements(device, tunables)
    gen = WinogradF22Kernel(prob, tunables)
    blocks = gen.grid[0] * gen.grid[1]
    # The header metadata (registers, smem) is layer-independent and
    # known without assembling — identical to kernel.meta by
    # construction, so the per-layer build the seed did here was waste.
    occupancy = device.occupancy(256, gen.num_regs, gen.launch_smem_bytes)
    iters = prob.c // BC
    block_cycles = overhead + iters * main.cycles_per_iter
    waves = math.ceil(blocks / (device.num_sms * occupancy))
    time_s = waves * block_cycles / (device.clock_ghz * 1e9)
    tflops = prob.direct_flops / time_s / 1e12

    # SOL: fma-busy over issue capacity; the tail wave dilutes it by the
    # grid utilization (empty SMs issue nothing but the clock runs).
    util = blocks / (waves * device.num_sms * occupancy)
    main_busy = main.sol * device.schedulers_per_sm * main.cycles_per_iter * iters
    total_busy = main_busy + overhead_fma
    sol_total = total_busy / (block_cycles * device.schedulers_per_sm) * util
    return LayerPerformance(
        prob=prob,
        device_name=device.name,
        blocks=blocks,
        occupancy=occupancy,
        waves=waves,
        iters=iters,
        cycles_per_iter=main.cycles_per_iter,
        overhead_cycles=overhead,
        time_s=time_s,
        tflops_effective=tflops,
        sol_main_loop=main.sol * util,
        sol_total=sol_total,
    )


def clear_cache() -> None:
    _cache.clear()
