"""Values the paper reports, transcribed for paper-vs-measured comparisons.

Sources: Table 2, Table 6, Figures 12-14 cell values, and the headline
claims of §6 and §7 of Yan, Wang & Chu (PPoPP '20).  These are used two
ways: (a) EXPERIMENTS.md comparisons printed by the benches, and (b) the
cuDNN-internal ratios (Table 2) calibrate the cuDNN Winograd baseline
model (see DESIGN.md §2's substitution table — we cannot run cuDNN).
"""

LAYER_ORDER = [
    f"Conv{layer}N{n}" for layer in (2, 3, 4, 5) for n in (32, 64, 96, 128)
]

ALGO_ORDER = [
    "FFT",
    "FFT_TILING",
    "GEMM",
    "IMPLICIT_GEMM",
    "IMPLICIT_PRECOMP_GEMM",
    "WINOGRAD_NONFUSED",
]

# Table 2: cuDNN Winograd speedup over cuDNN GEMM-based conv on V100.
PAPER_TABLE2_V100 = {
    "Conv2N32": 1.57, "Conv3N32": 1.53, "Conv4N32": 1.62, "Conv5N32": 1.10,
    "Conv2N64": 1.54, "Conv3N64": 1.50, "Conv4N64": 1.57, "Conv5N64": 0.91,
    "Conv2N96": 1.59, "Conv3N96": 1.53, "Conv4N96": 1.58, "Conv5N96": 0.81,
    "Conv2N128": 1.55, "Conv3N128": 1.48, "Conv4N128": 1.67, "Conv5N128": 0.86,
}

# Table 6: speedup of the paper's kernel over cuDNN's Winograd convolution.
PAPER_TABLE6 = {
    "RTX2070": {
        "Conv2N32": 1.67, "Conv3N32": 1.85, "Conv4N32": 1.73, "Conv5N32": 2.59,
        "Conv2N64": 1.65, "Conv3N64": 1.83, "Conv4N64": 1.79, "Conv5N64": 2.47,
        "Conv2N96": 1.68, "Conv3N96": 1.83, "Conv4N96": 1.74, "Conv5N96": 2.65,
        "Conv2N128": 1.67, "Conv3N128": 1.82, "Conv4N128": 1.77, "Conv5N128": 2.57,
    },
    "V100": {
        "Conv2N32": 1.32, "Conv3N32": 1.42, "Conv4N32": 1.31, "Conv5N32": 1.95,
        "Conv2N64": 1.24, "Conv3N64": 1.40, "Conv4N64": 1.41, "Conv5N64": 1.77,
        "Conv2N96": 1.24, "Conv3N96": 1.38, "Conv4N96": 1.34, "Conv5N96": 2.13,
        "Conv2N128": 1.23, "Conv3N128": 1.38, "Conv4N128": 1.38, "Conv5N128": 1.97,
    },
}

# Figure 12: speedup of the paper's kernel over every cuDNN algorithm on
# RTX2070; rows in LAYER_ORDER, columns in ALGO_ORDER.
PAPER_FIG12_RTX2070 = {
    "Conv2N32": [3.21, 1.94, 6.27, 3.68, 1.86, 2.00],
    "Conv2N64": [2.81, 1.76, 6.47, 3.72, 1.85, 2.15],
    "Conv2N96": [2.62, 1.65, 6.43, 3.79, 1.86, 2.16],
    "Conv2N128": [2.53, 1.68, 6.44, 3.80, 1.87, 2.15],
    "Conv3N32": [2.21, 1.73, 3.85, 2.78, 2.12, 1.09],
    "Conv3N64": [1.41, 1.42, 3.95, 2.81, 1.94, 1.10],
    "Conv3N96": [1.32, 1.32, 3.92, 2.76, 2.00, 1.10],
    "Conv3N128": [1.26, 1.27, 3.93, 2.73, 1.96, 1.12],
    "Conv4N32": [2.15, 5.11, 3.36, 2.61, 2.14, 1.01],
    "Conv4N64": [1.36, 4.53, 3.20, 2.59, 2.12, 1.06],
    "Conv4N96": [1.20, 4.10, 3.14, 2.49, 2.13, 1.05],
    "Conv4N128": [1.15, 4.03, 3.08, 2.39, 2.04, 1.08],
    "Conv5N32": [6.07, 14.11, 2.35, 2.38, 2.05, 0.83],
    "Conv5N64": [3.38, 11.34, 2.36, 2.27, 1.66, 0.71],
    "Conv5N96": [3.24, 11.44, 2.55, 2.19, 1.78, 0.73],
    "Conv5N128": [2.94, 10.57, 2.15, 1.92, 1.60, 0.70],
}

# Figure 13: same on V100.
PAPER_FIG13_V100 = {
    "Conv2N32": [2.84, 1.93, 5.13, 16.06, 2.09, 1.56],
    "Conv2N64": [2.61, 1.68, 5.66, 2.71, 1.93, 1.92],
    "Conv2N96": [2.42, 1.67, 4.84, 2.71, 1.98, 1.98],
    "Conv2N128": [2.33, 1.85, 4.85, 2.71, 1.91, 2.01],
    "Conv3N32": [2.14, 1.51, 3.21, 2.56, 2.19, 1.15],
    "Conv3N64": [1.32, 1.16, 3.26, 2.46, 2.10, 1.09],
    "Conv3N96": [1.19, 1.08, 3.33, 2.45, 2.13, 1.05],
    "Conv3N128": [1.16, 1.00, 3.21, 2.40, 2.04, 1.05],
    "Conv4N32": [2.05, 4.01, 2.63, 2.44, 2.13, 0.98],
    "Conv4N64": [1.39, 3.60, 2.89, 2.67, 2.23, 1.06],
    "Conv4N96": [1.14, 3.07, 2.73, 2.45, 2.12, 0.97],
    "Conv4N128": [1.12, 3.10, 2.85, 2.70, 2.31, 1.00],
    "Conv5N32": [5.82, 10.45, 1.98, 2.27, 2.16, 0.79],
    "Conv5N64": [3.15, 8.11, 1.85, 1.88, 1.63, 0.69],
    "Conv5N96": [3.22, 8.74, 1.97, 1.97, 1.73, 0.78],
    "Conv5N128": [2.87, 7.87, 1.93, 1.94, 1.71, 0.72],
}

# Figure 14: workspace (MB) per cuDNN algorithm.
PAPER_FIG14_WORKSPACE_MB = {
    "Conv2N32": [198.1, 51.0, 220.5, 0.0, 0.0, 110.8],
    "Conv2N64": [264.1, 85.0, 441.0, 0.0, 0.0, 221.1],
    "Conv2N96": [330.1, 119.0, 661.5, 0.0, 0.0, 331.3],
    "Conv2N128": [396.1, 153.1, 882.0, 0.0, 0.0, 441.6],
    "Conv3N32": [170.6, 102.0, 110.2, 0.0, 0.0, 57.4],
    "Conv3N64": [204.6, 136.0, 220.5, 0.0, 0.0, 112.5],
    "Conv3N96": [238.6, 170.0, 330.8, 0.0, 0.0, 167.6],
    "Conv3N128": [272.6, 204.0, 441.0, 0.0, 0.0, 222.8],
    "Conv4N32": [164.2, 340.0, 55.1, 0.0, 0.0, 45.0],
    "Conv4N64": [182.2, 408.0, 110.2, 0.0, 0.0, 81.0],
    "Conv4N96": [200.2, 476.0, 165.4, 0.0, 0.0, 117.0],
    "Conv4N128": [218.2, 544.0, 220.5, 0.0, 0.0, 153.0],
    "Conv5N32": [621.0, 1224.0, 27.6, 0.0, 0.0, 54.0],
    "Conv5N64": [657.0, 1360.0, 55.1, 0.0, 0.0, 72.0],
    "Conv5N96": [693.0, 1496.0, 82.7, 0.0, 0.0, 90.0],
    "Conv5N128": [729.0, 1632.0, 110.2, 0.0, 0.0, 108.0],
}

# §6 / §7 headline claims.
PAPER_CLAIMS = {
    "yield_natural_over_nvcc": 1.09,
    "yield_natural_over_cudnn": 1.11,
    "ldg8_over_ldg2": 1.24,
    "sts6_over_sts2": 1.02,
    "sol_main_loop_max": 0.93,
    "sol_main_loop_min_large_batch": 0.875,
    "table2_avg_speedup": 1.4,
    "table6_avg_rtx2070": 1.95,  # abstract: 1.96; §7.1 text: 1.95
    "table6_avg_v100": 1.5,
    "break_even_k_v100": 129,
    "break_even_k_rtx2070": 127,
    "bk64_intensity_gain": 1.33,
    "ours_workspace_mb": {"Conv2": 0.25, "Conv3": 1.0, "Conv4": 4.0, "Conv5": 16.0},
}
