"""Calibrated models of cuDNN 7.6.1's convolution algorithms.

cuDNN is closed source and there is no GPU here, so the baselines of
Tables 2/6 and Figures 12-13 are *models* (see DESIGN.md §2).  The
calibration discipline:

* constants are calibrated **only against cuDNN-internal data** the
  paper publishes (Table 2: cuDNN Winograd vs cuDNN GEMM on V100) plus
  first-principles efficiency assumptions for library GEMMs — never
  against the paper's "ours vs cuDNN" headline numbers, so this
  library's speedup tables remain genuine predictions of its simulated
  kernel against these baselines;
* per-layer *variation* comes from structure (roofline terms, tile
  overcompute, occupancy), not per-layer fudge factors — with one
  exception: ``CUDNN_WINOGRAD`` uses the Table 2 per-layer ratios
  directly on V100, because that table *is* the paper's measurement of
  that kernel, and a Turing degradation factor derived from the §7.1
  occupancy argument (cuDNN's 48 KB block fits twice on a V100 SM but
  once on Turing).

Every function returns seconds for one forward convolution.
"""

from __future__ import annotations

import math

import numpy as np

from ..common.errors import ModelError
from ..common.problem import ConvProblem
from ..gpusim.arch import DeviceSpec
from .paper_data import PAPER_TABLE2_V100
from .workspace import fft_tiling_workspace_bytes, gemm_workspace_bytes

# First-principles efficiency of a large library SGEMM / implicit-GEMM
# convolution (fraction of FP32 peak).
EFF_IMPLICIT_PRECOMP = 0.88
EFF_IMPLICIT = 0.52  # recomputes offsets; ~2× slower than precomp (Fig. 12)
EFF_FFT_POINTWISE = 0.60  # batched complex GEMM over the spectra
EFF_NONFUSED_GEMM = 0.80  # the non-fused variant's batched SGEMM step
# §7.1: cuDNN's Winograd loses concurrency on Turing (occupancy 2 → 1).
TURING_WINOGRAD_PENALTY = 1.30


def _device_key(device: DeviceSpec) -> str:
    return "RTX2070" if device.arch == "turing" else "V100"


def tile_overcompute(prob: ConvProblem, m: int = 2) -> float:
    """Wasted-pixel factor of F(m×m) tiling (≈1.31 for 7×7 outputs, §7.3)."""
    th, tw = prob.tiles_h(m), prob.tiles_w(m)
    return (th * m / prob.out_h) * (tw * m / prob.out_w)


def _direct_flops(prob: ConvProblem) -> float:
    return float(prob.direct_flops)


def _io_time(prob: ConvProblem, device: DeviceSpec) -> float:
    """Compulsory DRAM traffic: input + filter + output, once each."""
    bytes_ = prob.input_bytes + prob.filter_bytes + prob.output_bytes
    return bytes_ / (device.dram_gbps * 1e9)


def _gemm_utilization(prob: ConvProblem, device: DeviceSpec, tile: int = 128) -> float:
    """SM utilization of a tiled GEMM over the implicit conv matrix.

    The GEMM is (N·H'·W') × K; with tile×tile thread blocks the grid may
    not fill the device — the reason cuDNN's GEMM kernels degrade on
    small-output layers like Conv5 (few tiles, many SMs idle in the tail
    wave).
    """
    m_dim = prob.n * prob.out_h * prob.out_w
    blocks = math.ceil(m_dim / tile) * math.ceil(prob.k / tile)
    waves = math.ceil(blocks / device.num_sms)
    return blocks / (waves * device.num_sms)


def implicit_precomp_gemm_time(prob: ConvProblem, device: DeviceSpec) -> float:
    eff = EFF_IMPLICIT_PRECOMP * _gemm_utilization(prob, device)
    compute = _direct_flops(prob) / (eff * device.peak_fp32_tflops * 1e12)
    return max(compute, _io_time(prob, device))


def implicit_gemm_time(prob: ConvProblem, device: DeviceSpec) -> float:
    # Plain implicit GEMM uses smaller tiles, so its grid fills the
    # device even on Conv5; no utilization penalty on top of its lower
    # base efficiency.
    compute = _direct_flops(prob) / (
        EFF_IMPLICIT * device.peak_fp32_tflops * 1e12
    )
    return max(compute, _io_time(prob, device))


def gemm_time(prob: ConvProblem, device: DeviceSpec) -> float:
    """Explicit im2col: the lowering writes and re-reads the 9× matrix."""
    ws = gemm_workspace_bytes(prob)
    lowering = 2 * ws / (device.dram_gbps * 1e9)
    return implicit_precomp_gemm_time(prob, device) + lowering


def fft_time(prob: ConvProblem, device: DeviceSpec) -> float:
    """Whole-image FFT: spectra traffic + transform + pointwise cgemm.

    Traffic moves the Hermitian-packed half-spectra (half the allocated
    workspace) three times: write after forward FFT, read + write around
    the pointwise product.
    """
    fh = prob.h + 2 * prob.pad
    fw = prob.w + 2 * prob.pad
    fw_half = fw // 2 + 1
    packed = (
        (prob.n * prob.c + prob.k * prob.c + prob.n * prob.k) * fh * fw_half * 8
    )
    traffic = 3 * packed / (device.dram_gbps * 1e9)
    transform_flops = (
        5.0 * (prob.n * prob.c + prob.k * prob.c + prob.n * prob.k)
        * fh * fw * math.log2(max(fh * fw, 2))
    )
    pointwise_flops = 8.0 * prob.n * prob.k * prob.c * fh * fw_half
    # Tiny batched FFT/cgemm problems run far below library efficiency —
    # the structural reason cuDNN's FFT algorithm collapses on Conv5
    # (9×9 spectra), Figs. 12-13.
    eff = EFF_FFT_POINTWISE * min(1.0, math.sqrt(fh * fw / 512.0))
    compute = (transform_flops + pointwise_flops) / (
        eff * device.peak_fp32_tflops * 1e12
    )
    return traffic + compute


def fft_tiling_time(prob: ConvProblem, device: DeviceSpec, size: int = 32) -> float:
    """Tiled FFT with cuDNN's fixed 32-point transforms.

    Every tile — and every image smaller than a tile — is padded to the
    fixed ``size``.  The filter spectra alone are C·K·size·(size/2+1)
    complex values, which is what blows this algorithm up on Conv4/Conv5
    (Figs. 12-14: 4-14× worse than our kernel, gigabyte workspaces).
    """
    half = size // 2 + 1
    out_tile = size - prob.r + 1
    tiles = (-(-prob.out_h // out_tile)) * (-(-prob.out_w // out_tile))
    ws = fft_tiling_workspace_bytes(prob, size)
    traffic = 3 * ws / (device.dram_gbps * 1e9)
    pointwise_flops = 8.0 * prob.n * prob.k * prob.c * size * half * tiles
    transform_flops = (
        5.0 * (prob.n * prob.c + prob.n * prob.k) * size * size
        * math.log2(size * size) * tiles
        + 5.0 * prob.k * prob.c * size * size * math.log2(size * size)
    )
    compute = (transform_flops + pointwise_flops) / (
        EFF_FFT_POINTWISE * device.peak_fp32_tflops * 1e12
    )
    return traffic + compute


def winograd_nonfused_time(prob: ConvProblem, device: DeviceSpec) -> float:
    """§8.1's non-fused F(4×4) model with a library-GEMM efficiency.

    Both scatter passes are charged: the input side moves the original
    plus the 2.25×-inflated transformed input through DRAM (write +
    read), and symmetrically the output side moves the transformed
    output (write + read) plus the final gather's store.
    """
    over = tile_overcompute(prob, m=4)
    compute = over * _direct_flops(prob) / (
        4.0 * EFF_NONFUSED_GEMM * device.peak_fp32_tflops * 1e12
    )
    in_volume = prob.n * prob.c * prob.h * prob.w
    out_volume = prob.n * prob.k * prob.out_h * prob.out_w
    traffic_bytes = (in_volume + out_volume) * (1 + 2.25) * 2 * 4
    return compute + traffic_bytes / (device.dram_gbps * 1e9)


def cudnn_winograd_time(prob: ConvProblem, device: DeviceSpec) -> float:
    """cuDNN's fused F(2×2) Winograd kernel.

    Anchored to Table 2: on V100, cuDNN Winograd = cuDNN GEMM time ÷
    the published per-layer-family ratio.  Batch sizes within a family
    share the family's interpolated ratio; Turing applies the §7.1
    occupancy degradation.
    """
    family = prob.name.split("N")[0] if prob.name else None
    ratio = PAPER_TABLE2_V100.get(prob.name or "")
    if ratio is None and family:
        family_vals = [
            v for k, v in PAPER_TABLE2_V100.items() if k.startswith(family + "N")
        ]
        ratio = sum(family_vals) / len(family_vals) if family_vals else None
    if ratio is None:
        # Unnamed layer: fall back to a structural model — the 2.25×
        # reduction at the non-fused GEMM efficiency, with overcompute.
        ratio = 2.25 * 0.62 * EFF_IMPLICIT_PRECOMP / tile_overcompute(prob)
    time = implicit_precomp_gemm_time(prob, device) / ratio
    if device.arch == "turing":
        time *= TURING_WINOGRAD_PENALTY
    return time


CUDNN_ALGORITHMS = {
    "FFT": fft_time,
    "FFT_TILING": fft_tiling_time,
    "GEMM": gemm_time,
    "IMPLICIT_GEMM": implicit_gemm_time,
    "IMPLICIT_PRECOMP_GEMM": implicit_precomp_gemm_time,
    "WINOGRAD": cudnn_winograd_time,
    "WINOGRAD_NONFUSED": winograd_nonfused_time,
}


def cudnn_time(prob: ConvProblem, device: DeviceSpec, algo: str) -> float:
    try:
        fn = CUDNN_ALGORITHMS[algo]
    except KeyError:
        raise ModelError(
            f"unknown cuDNN algorithm {algo!r}; choose from {sorted(CUDNN_ALGORITHMS)}"
        ) from None
    return fn(prob, device)
