"""Workspace requirements per convolution algorithm (paper Fig. 14).

Formulas mirror this library's implementations exactly (each is the
closed form of the corresponding ``*RunStats.workspace_bytes``), so the
bench regenerates Fig. 14 from the same accounting the functional code
reports.  cuDNN's absolute numbers differ somewhat (its FFT pads and
tiles differently), but the figure's structure — FFT enormous, explicit
GEMM large, implicit GEMM zero, non-fused Winograd mid, our fused kernel
only the 16·K·C transformed filter — is reproduced.
"""

from __future__ import annotations


from ..common.problem import ConvProblem

MB = 1024.0 * 1024.0


def fft_workspace_bytes(prob: ConvProblem) -> int:
    """Whole-image FFT: complex input, filter and output spectra.

    Allocated as full (unpacked) complex planes, which is what cuDNN's
    reported workspaces correspond to (198 MB for Conv2N32 vs 217 MB
    here); the *transferred* traffic in the time model uses the packed
    Hermitian half.
    """
    fh = prob.h + 2 * prob.pad
    fw = prob.w + 2 * prob.pad
    spectra = prob.n * prob.c + prob.k * prob.c + prob.n * prob.k
    return spectra * fh * fw * 8  # complex64


def fft_tiling_workspace_bytes(prob: ConvProblem, size: int = 32) -> int:
    """Tiled FFT with fixed 32-point transforms (cuDNN's choice).

    The input spectra for every tile plus the filter spectra: with
    size = 32 this reproduces cuDNN's reported numbers closely (51 MB on
    Conv2N32, 340 MB on Conv4N32, 1.2 GB on Conv5N32 — Fig. 14), the
    filter term C·K·size·(size/2+1)·8 dominating the deep layers.
    """
    half = size // 2 + 1
    out_tile = size - prob.r + 1
    tiles = (-(-prob.out_h // out_tile)) * (-(-prob.out_w // out_tile))
    return (prob.n * prob.c * tiles + prob.c * prob.k) * size * half * 8


def gemm_workspace_bytes(prob: ConvProblem) -> int:
    """Explicit im2col matrix: (N·H'·W') × (C·R·S) fp32."""
    return prob.n * prob.out_h * prob.out_w * prob.c * prob.r * prob.s * 4


def implicit_gemm_workspace_bytes(prob: ConvProblem) -> int:
    return 0


def implicit_precomp_gemm_workspace_bytes(prob: ConvProblem) -> int:
    """Precomputed gather offsets: one index per C·R·S patch column."""
    return prob.c * prob.r * prob.s * 4


def winograd_nonfused_workspace_bytes(prob: ConvProblem, m: int = 4) -> int:
    """Transformed input + filter + output in global memory (F(4×4,3×3))."""
    alpha = m + prob.r - 1
    total_tiles = prob.total_tiles(m)
    a2 = alpha * alpha
    return 4 * a2 * (
        prob.c * total_tiles + prob.c * prob.k + prob.k * total_tiles
    )


def winograd_fused_workspace_bytes(prob: ConvProblem) -> int:
    """Our kernel: only the 16·K·C transformed filter (§7.3: 0.25 MB-16 MB)."""
    return 16 * prob.k * prob.c * 4


def winograd_fused_f44_workspace_bytes(prob: ConvProblem) -> int:
    """Fused F(4×4,3×3): the 36·K·C transformed filter (6×6 tiles)."""
    return 36 * prob.k * prob.c * 4


def winograd_dwm_workspace_bytes(prob: ConvProblem) -> int:
    """DWM decomposition: explicitly padded input copy plus one part's
    16·K·C transformed sub-filter (parts run sequentially, so the filter
    workspace is reused, not multiplied by the part count)."""
    padded = 4 * prob.n * prob.c * (prob.h + 2 * prob.pad) * (prob.w + 2 * prob.pad)
    return padded + 16 * prob.k * prob.c * 4


def direct_workspace_bytes(prob: ConvProblem) -> int:
    """Shift-and-accumulate direct convolution allocates nothing."""
    return 0


ALGORITHM_WORKSPACE = {
    "FFT": fft_workspace_bytes,
    "FFT_TILING": fft_tiling_workspace_bytes,
    "GEMM": gemm_workspace_bytes,
    "IMPLICIT_GEMM": implicit_gemm_workspace_bytes,
    "IMPLICIT_PRECOMP_GEMM": implicit_precomp_gemm_workspace_bytes,
    "WINOGRAD_NONFUSED": winograd_nonfused_workspace_bytes,
    "OURS": winograd_fused_workspace_bytes,
}

# The same accounting keyed by the *dispatcher's* algorithm names
# (repro.convolution.ALGORITHMS): the fused paper kernel is "WINOGRAD"
# there, and DIRECT joins as the workspace-free last resort.  This is
# the budget filter behind conv2d(..., workspace_limit_bytes=...).
DISPATCH_WORKSPACE = {
    "DIRECT": direct_workspace_bytes,
    "GEMM": gemm_workspace_bytes,
    "IMPLICIT_GEMM": implicit_gemm_workspace_bytes,
    "IMPLICIT_PRECOMP_GEMM": implicit_precomp_gemm_workspace_bytes,
    "FFT": fft_workspace_bytes,
    "FFT_TILING": fft_tiling_workspace_bytes,
    "WINOGRAD": winograd_fused_workspace_bytes,
    "WINOGRAD_F44": winograd_fused_f44_workspace_bytes,
    "WINOGRAD_DWM": winograd_dwm_workspace_bytes,
    "WINOGRAD_NONFUSED": winograd_nonfused_workspace_bytes,
}


def workspace_mb(prob: ConvProblem, algo: str) -> float:
    return ALGORITHM_WORKSPACE[algo](prob) / MB


def dispatch_workspace_bytes(prob: ConvProblem, algo: str) -> int:
    """Workspace for a dispatcher algorithm name (KeyError on unknown)."""
    return DISPATCH_WORKSPACE[algo](prob)
