"""Roofline model (paper Fig. 2).

Attainable TFLOPS = min(peak, intensity × bandwidth), drawn against the
DRAM (900 GB/s) and L2 (2.5 TB/s) ceilings of the V100.  The interesting
points are the Winograd pipeline stages:

* ITF / FTF / OTF — a handful of FADDs over a tile's bytes: deeply
  memory-bound (left edge of the figure);
* the batched-GEMM (EWMM) step at ``bk = 32`` → 8 flops/byte and at
  ``bk = 64`` → 10.67 flops/byte (+33%, §3.3) — the blocking change that
  moves the kernel to the right of the DRAM ridge point provided L2
  catches the filter traffic;
* blocked direct convolution at ``bk = 64`` for comparison.
"""

from __future__ import annotations

import dataclasses

from ..gpusim.arch import DeviceSpec, V100
from ..winograd.transforms import (
    PAPER_FTF_FLOPS,
    PAPER_ITF_FLOPS,
    PAPER_OTF_FLOPS,
)


@dataclasses.dataclass(frozen=True)
class RooflinePoint:
    name: str
    intensity: float  # flops per DRAM byte

    def attainable_tflops(self, device: DeviceSpec, level: str = "dram") -> float:
        bw = device.dram_gbps if level == "dram" else device.l2_gbps
        return min(device.peak_fp32_tflops, self.intensity * bw / 1e3)

    def bound(self, device: DeviceSpec, level: str = "dram") -> str:
        return (
            "compute"
            if self.attainable_tflops(device, level) >= device.peak_fp32_tflops
            else "memory"
        )


def gemm_step_intensity(bk: int, bn: int = 32, bc: int = 8) -> float:
    """EWMM arithmetic intensity: 2·16·bk·bn·bc flops over the loaded tiles.

    Per iteration a block loads (bk + bn)·bc transformed tiles of 16
    floats; §3.3's numbers: 8 ops/byte at bk=32, 10.67 at bk=64.
    """
    flops = 2 * 16 * bk * bn * bc
    gmem_bytes = 16 * (bk + bn) * bc * 4
    return flops / gmem_bytes


def direct_conv_intensity(bk: int = 64, bn: int = 32, bc: int = 8) -> float:
    """Blocked direct 3×3 convolution: bk filters × bn output pixels.

    The bn output pixels are modelled as an 8×4 spatial patch so the 3×3
    halo is shared: (8+2)·(4+2) input values per channel.
    """
    flops = 2 * bk * bn * 9 * bc
    halo_inputs = (8 + 2) * (4 + 2)
    gmem_bytes = (bk * 9 + halo_inputs) * bc * 4
    return flops / gmem_bytes


def transform_intensity(kind: str) -> float:
    """ITF/FTF/OTF steps: a few FADDs per tile of traffic (memory-bound)."""
    if kind == "ITF":
        # 32 FADDs; reads a 4×4 tile, writes a 4×4 transformed tile.
        return PAPER_ITF_FLOPS / ((16 + 16) * 4)
    if kind == "FTF":
        # 28 float ops; reads 3×3, writes 4×4.
        return PAPER_FTF_FLOPS / ((9 + 16) * 4)
    if kind == "OTF":
        # 24 FADDs; reads 4×4, writes 2×2.
        return PAPER_OTF_FLOPS / ((16 + 4) * 4)
    raise ValueError(f"unknown transform {kind!r}")


def paper_points() -> list[RooflinePoint]:
    """The labelled points of Fig. 2."""
    return [
        RooflinePoint("ITF", transform_intensity("ITF")),
        RooflinePoint("FTF", transform_intensity("FTF")),
        RooflinePoint("OTF", transform_intensity("OTF")),
        RooflinePoint("batched GEMM (bk=32)", gemm_step_intensity(32)),
        RooflinePoint("batched GEMM (bk=64)", gemm_step_intensity(64)),
        RooflinePoint("Direct Convolution (bk=64)", direct_conv_intensity(64)),
    ]


def roofline_table(device: DeviceSpec = V100) -> list[dict]:
    """Rows for the Fig. 2 reproduction bench."""
    rows = []
    for point in paper_points():
        rows.append(
            {
                "step": point.name,
                "intensity": point.intensity,
                "dram_tflops": point.attainable_tflops(device, "dram"),
                "l2_tflops": point.attainable_tflops(device, "l2"),
                "bound@dram": point.bound(device, "dram"),
                "bound@l2": point.bound(device, "l2"),
            }
        )
    return rows
