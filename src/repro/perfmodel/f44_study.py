"""Design study: a fused F(4×4, 3×3) kernel (paper §8.1's future work).

"We expect greater speedup in the future if the fused F(4×4, 3×3) is
well optimized."  This module makes that expectation quantitative — and
shows why the paper did not just build it: the transformed tile is 6×6,
so the EWMM becomes a *36*-batched GEMM, and the register accounting
that fit F(2×2) exactly into 253 registers (Table 5) no longer closes
at the same block size.

For a candidate blocking (bk, bn, bc) with 256 threads the per-thread
budget is (mirroring Table 5):

* accumulators:      36·bk·bn / 256
* double-buffered smem fragments: 2 · 36·(bk + bn)·bc / 256 / warps'
  share … modelled as 2·(bk + bn)·bc·36/256/8-per-k-step fragments =
  2·(frag_in + frag_fil) with frag sizes bk·bc·36/256-style terms;
* global prefetch:   (bk + bn)·bc·36 / 256
* ~13 scalars.

The study enumerates feasible blockings, reports their register/smem
pressure and arithmetic intensity, and projects the layer-level speedup
of the best feasible configuration using the §8.1 time model with the
4× multiplication reduction.
"""

from __future__ import annotations

import dataclasses
import math

from ..common.problem import ConvProblem
from ..gpusim.arch import DeviceSpec

THREADS = 256
ALPHA2 = 36  # 6×6 transformed tiles for F(4×4, 3×3)
MAX_REGS = 253
MAX_SMEM = 64 * 1024  # Turing per-block limit (§7.1)


@dataclasses.dataclass(frozen=True)
class F44Blocking:
    """One candidate (bk, bn, bc) for a fused F(4×4,3×3) kernel."""

    bk: int
    bn: int
    bc: int

    @property
    def accumulators(self) -> int:
        return ALPHA2 * self.bk * self.bn // THREADS

    @property
    def gmem_prefetch_regs(self) -> int:
        # Input tiles are 6×6 = 36 values; filters arrive pre-transformed.
        return (self.bk + self.bn) * self.bc * ALPHA2 // THREADS

    @property
    def frag_regs(self) -> int:
        # Per k-step each thread consumes bk·bn·36/256 outputs from
        # (bk + bn)-proportional fragments; double buffered.
        per_step = (self.bk + self.bn) * ALPHA2 // THREADS * 4
        return 2 * max(per_step, 8)

    @property
    def registers(self) -> int:
        return self.accumulators + self.gmem_prefetch_regs + self.frag_regs + 13

    @property
    def smem_bytes(self) -> int:
        """(36, bc, bk) + (36, bc, bn) staging buffers."""
        return ALPHA2 * self.bc * (self.bk + self.bn) * 4

    @property
    def arithmetic_intensity(self) -> float:
        flops = 2 * ALPHA2 * self.bk * self.bn * self.bc
        gmem = ALPHA2 * (self.bk + self.bn) * self.bc * 4
        return flops / gmem

    @property
    def feasible(self) -> bool:
        return (
            self.registers <= MAX_REGS
            and self.smem_bytes <= MAX_SMEM
            and self.accumulators * THREADS == ALPHA2 * self.bk * self.bn
        )


def enumerate_blockings() -> list[F44Blocking]:
    """All (bk, bn, bc) candidates on the paper's natural grid."""
    out = []
    for bk in (16, 32, 64):
        for bn in (8, 16, 32):
            for bc in (4, 8):
                out.append(F44Blocking(bk, bn, bc))
    return out


def best_feasible() -> F44Blocking | None:
    feasible = [b for b in enumerate_blockings() if b.feasible]
    if not feasible:
        return None
    # Intensity is bc-independent (it cancels), so break ties toward the
    # deeper channel step: fewer main-loop iterations, barriers and
    # prologue overheads per accumulated channel.
    return max(feasible, key=lambda b: (b.arithmetic_intensity, b.bc))


def f22_reference_blocking_infeasible() -> F44Blocking:
    """The paper's F(2×2) blocking transplanted to F(4×4): over budget."""
    return F44Blocking(64, 32, 8)


def attainable_sol(blocking: F44Blocking, device: DeviceSpec) -> float:
    """FP32-pipe utilization ceiling the blocking's intensity permits.

    Raw-FFMA intensity is the blocking's effective-flops intensity ÷ 4
    (the multiplication reduction); even served from L2, the feasible
    F(4×4) blockings sit below the balance point — the quantitative
    version of the §8.1 obstacle (F(2×2)'s 10.67 flops/B does not).
    """
    l2_attainable = blocking.arithmetic_intensity * device.l2_gbps / 1e3
    return min(0.92, l2_attainable / device.peak_fp32_tflops)


def projected_fused_f44_time(
    prob: ConvProblem, device: DeviceSpec, blocking: F44Blocking | None = None
) -> float:
    """Projected fused F(4×4) layer time for a feasible blocking.

    4× multiplication reduction with F(4×4)'s tile overcompute, capped
    by the blocking's attainable (memory-limited) SOL.
    """
    blocking = blocking or best_feasible()
    sol = attainable_sol(blocking, device)
    th = -(-prob.out_h // 4)
    tw = -(-prob.out_w // 4)
    over = (4 * th / prob.out_h) * (4 * tw / prob.out_w)
    flops = over * 2 * prob.n * prob.c * prob.out_h * prob.out_w * prob.k * 9
    return flops / (4.0 * sol * device.peak_fp32_tflops * 1e12)


def projected_speedup_over_f22(
    prob: ConvProblem,
    device: DeviceSpec,
    blocking: F44Blocking | None = None,
    sol_f22: float = 0.91,
) -> float:
    """Projected fused-F(4×4) speedup over our fused F(2×2) kernel."""
    th2, tw2 = -(-prob.out_h // 2), -(-prob.out_w // 2)
    over2 = (2 * th2 / prob.out_h) * (2 * tw2 / prob.out_w)
    f22 = over2 * 2 * prob.n * prob.c * prob.out_h * prob.out_w * prob.k * 9 / (
        2.25 * sol_f22 * device.peak_fp32_tflops * 1e12
    )
    return f22 / projected_fused_f44_time(prob, device, blocking)
