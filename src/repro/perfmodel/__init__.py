"""Analytical performance models: roofline, workspace, break-even, baselines."""

from .breakeven import break_even_k, faster_variant, fused_time, nonfused_time
from .cudnn_model import (
    CUDNN_ALGORITHMS,
    cudnn_time,
    cudnn_winograd_time,
    tile_overcompute,
)
from .layer_model import LayerPerformance, clear_cache, our_layer_performance
from .paper_data import (
    ALGO_ORDER,
    LAYER_ORDER,
    PAPER_CLAIMS,
    PAPER_FIG12_RTX2070,
    PAPER_FIG13_V100,
    PAPER_FIG14_WORKSPACE_MB,
    PAPER_TABLE2_V100,
    PAPER_TABLE6,
)
from .roofline import (
    RooflinePoint,
    direct_conv_intensity,
    gemm_step_intensity,
    paper_points,
    roofline_table,
    transform_intensity,
)
from .selection import (
    DISPATCH_CANDIDATES,
    algorithm_supports,
    direct_time,
    dwm_winograd_time,
    fused_winograd_f44_time,
    fused_winograd_time,
    predicted_time,
    rank_algorithms,
)
from .workspace import (
    ALGORITHM_WORKSPACE,
    DISPATCH_WORKSPACE,
    dispatch_workspace_bytes,
    workspace_mb,
)

__all__ = [
    "ALGORITHM_WORKSPACE",
    "ALGO_ORDER",
    "DISPATCH_CANDIDATES",
    "DISPATCH_WORKSPACE",
    "CUDNN_ALGORITHMS",
    "LAYER_ORDER",
    "LayerPerformance",
    "PAPER_CLAIMS",
    "PAPER_FIG12_RTX2070",
    "PAPER_FIG13_V100",
    "PAPER_FIG14_WORKSPACE_MB",
    "PAPER_TABLE2_V100",
    "PAPER_TABLE6",
    "RooflinePoint",
    "algorithm_supports",
    "break_even_k",
    "clear_cache",
    "cudnn_time",
    "cudnn_winograd_time",
    "direct_conv_intensity",
    "direct_time",
    "dispatch_workspace_bytes",
    "dwm_winograd_time",
    "faster_variant",
    "fused_time",
    "fused_winograd_f44_time",
    "fused_winograd_time",
    "gemm_step_intensity",
    "nonfused_time",
    "our_layer_performance",
    "paper_points",
    "predicted_time",
    "rank_algorithms",
    "roofline_table",
    "tile_overcompute",
    "transform_intensity",
    "workspace_mb",
]
