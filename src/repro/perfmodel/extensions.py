"""Projections for the paper's §8.3 extensions (fp16 and tensor cores).

"The implementation can be ported to the fp16 version by increasing bn
to 64.  To further increase the throughput with the newly introduced
tensor core, the data layout needs a redesign.  Nevertheless, many
techniques introduced in this work ... can be adopted."

These are analytical projections (no fp16 kernel is generated), built
from the same blocking arithmetic as the fp32 model; the simulator's
HFMA2 support (``tests/gpusim/test_fp16.py``) demonstrates the 2×
flops-per-issue substrate the projection rests on.
"""

from __future__ import annotations

import dataclasses

from ..gpusim.arch import DeviceSpec


@dataclasses.dataclass(frozen=True)
class Fp16Projection:
    """The §8.3 fp16 port of the fused kernel's blocking."""

    bk: int = 64
    bn: int = 64  # doubled, per §8.3
    bc: int = 8

    @property
    def arithmetic_intensity(self) -> float:
        """Main-loop flops per global byte (fp16 halves the bytes)."""
        flops = 2 * 16 * self.bk * self.bn * self.bc
        gmem_bytes = 16 * (self.bk + self.bn) * self.bc * 2  # 2-byte elements
        return flops / gmem_bytes

    def peak_tflops(self, device: DeviceSpec) -> float:
        """HFMA2 doubles flops per FP32-pipe issue."""
        return 2 * device.peak_fp32_tflops

    @property
    def smem_bytes(self) -> int:
        """(16, bc, bk) + (16, bc, bn) half-precision buffers."""
        return 16 * self.bc * (self.bk + self.bn) * 2

    @property
    def ffma2_per_thread_per_iter(self) -> int:
        """Packed-half FMAs per thread per bc-iteration (two lanes each)."""
        return 16 * self.bk * self.bn * self.bc // 256 // 2


def fp16_projection_summary(device: DeviceSpec) -> dict:
    """The §8.3 claims as numbers for a given device."""
    fp32_intensity = 2 * 16 * 64 * 32 * 8 / (16 * (64 + 32) * 8 * 4)
    proj = Fp16Projection()
    return {
        "fp32_intensity_flops_per_byte": fp32_intensity,
        "fp16_intensity_flops_per_byte": proj.arithmetic_intensity,
        "fp16_peak_tflops": proj.peak_tflops(device),
        "fp16_smem_bytes_per_block": proj.smem_bytes,
        "hfma2_per_thread_per_iter": proj.ffma2_per_thread_per_iter,
        "fits_turing_smem": proj.smem_bytes <= 64 * 1024,
    }
