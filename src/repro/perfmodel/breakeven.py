"""Fused F(2×2) vs non-fused F(4×4) break-even analysis (paper §8.1).

The paper's two-term model:

* fused F(2×2,3×3), compute-bound:  ``T_f = 2NCHWKRS / (2.25 · FLOPS)``
* non-fused F(4×4,3×3): a 4× multiplication reduction plus the
  memory-bound transform passes moving ``(1 + 2.25)`` input volumes
  twice (write + read) through DRAM:

  ``T_nf = 2NCHWKRS / (4 · FLOPS) + NCHW · 3.25 · 2 · 4 / BW``

Setting them equal, NCHW cancels and the break-even is a pure function
of K and the machine balance: the paper reports K = 129 on V100 and
K = 127 on RTX 2070 (with its sheet peak), in line with its Figs. 12-13
where the non-fused algorithm only wins on Conv5 (K = 512).
"""

from __future__ import annotations

from ..common.problem import ConvProblem
from ..gpusim.arch import DeviceSpec


def fused_time(prob: ConvProblem, device: DeviceSpec) -> float:
    """§8.1's idealized fused-kernel time (seconds)."""
    flops = 2 * prob.n * prob.c * prob.h * prob.w * prob.k * prob.r * prob.s
    return flops / (2.25 * device.peak_fp32_tflops * 1e12)


def nonfused_time(prob: ConvProblem, device: DeviceSpec) -> float:
    """§8.1's idealized non-fused F(4×4) time (seconds)."""
    flops = 2 * prob.n * prob.c * prob.h * prob.w * prob.k * prob.r * prob.s
    compute = flops / (4.0 * device.peak_fp32_tflops * 1e12)
    volume = prob.n * prob.c * prob.h * prob.w  # input elements
    traffic = volume * (1 + 2.25) * 2 * 4  # bytes through DRAM
    return compute + traffic / (device.dram_gbps * 1e9)


def break_even_k(device: DeviceSpec, rs: int = 9) -> float:
    """K where the two models cross (independent of N, C, H, W).

    Derivation: equate the §8.1 expressions and cancel NCHW:

        2·K·RS·(1/2.25 − 1/4)/FLOPS = 3.25·8/BW
        K = 13·FLOPS / (RS·(1/2.25 − 1/4)·BW)
    """
    flops = device.peak_fp32_tflops * 1e12
    bw = device.dram_gbps * 1e9
    return 13.0 * flops / (rs * (1 / 2.25 - 1 / 4.0) * bw)


def faster_variant(prob: ConvProblem, device: DeviceSpec) -> str:
    """Which §8.1 variant the model predicts wins for this layer."""
    return (
        "fused_f2x2"
        if fused_time(prob, device) <= nonfused_time(prob, device)
        else "nonfused_f4x4"
    )
