"""Nsight-Compute-style profile reports from simulator counters.

The paper reads its §7.2 results off Nsight Compute's "Speed Of Light"
section ("the achieved percentage of utilization with respect to the
theoretical maximum").  This module renders the simulator's
:class:`~repro.gpusim.counters.Counters` the same way, so a kernel run
can be inspected like a profile: SOL, compute workload, scheduler
statistics and memory workload.
"""

from __future__ import annotations

import dataclasses

from .arch import DeviceSpec
from .counters import Counters
from .memory import SECTOR_BYTES


@dataclasses.dataclass
class ProfileSection:
    title: str
    rows: list[tuple[str, str]]

    def render(self) -> str:
        width = max(len(name) for name, _ in self.rows) if self.rows else 0
        lines = [f"  {self.title}", "  " + "-" * max(len(self.title), 24)]
        for name, value in self.rows:
            lines.append(f"    {name.ljust(width)}  {value}")
        return "\n".join(lines)


@dataclasses.dataclass
class ProfileReport:
    title: str
    sections: list[ProfileSection]

    def render(self) -> str:
        header = [self.title, "=" * len(self.title)]
        return "\n".join(header + [s.render() for s in self.sections])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _pct(x: float) -> str:
    return f"{100 * x:.1f}%"


def profile_report(
    counters: Counters, device: DeviceSpec, title: str = "kernel"
) -> ProfileReport:
    """Build a profile report for one simulated run on one SM."""
    c = counters
    cycles = max(c.cycles, 1)
    seconds = c.seconds(device.clock_ghz)
    issue_capacity = cycles * device.schedulers_per_sm

    sol = ProfileSection("GPU Speed Of Light", [
        ("SM [%]", _pct(c.sol(device.schedulers_per_sm))),
        ("Issue slots busy [%]", _pct(c.instructions / issue_capacity)),
        ("MIO pipe busy [%]", _pct(c.mio_pipe_busy / cycles)),
        ("LSU pipe busy [%]", _pct(c.lsu_pipe_busy / cycles)),
        ("Duration [cycles]", f"{c.cycles}"),
        ("Duration [us]", f"{1e6 * seconds:.2f}"),
    ])

    ffma_flops = 2 * 32 * c.ffma_instrs
    compute = ProfileSection("Compute Workload", [
        ("Warp instructions issued", f"{c.instructions}"),
        ("FFMA warp instructions", f"{c.ffma_instrs}"),
        ("FP32 flops", f"{c.flops}"),
        ("Achieved TFLOPS (per SM)", f"{c.tflops_per_sm(device.clock_ghz):.4f}"),
        ("FFMA share of flops", _pct(ffma_flops / max(c.flops, 1))),
        ("Register bank conflicts", f"{c.reg_bank_conflicts}"),
    ])

    sched = ProfileSection("Scheduler Statistics", [
        ("IPC (per SM)", f"{c.instructions / cycles:.2f}"),
        ("Issue-idle scheduler cycles", f"{c.issue_idle_cycles}"),
        ("Yield-requested switches", f"{c.warp_switches}"),
        ("Switch penalty cycles", f"{c.switch_penalty_cycles}"),
        ("Scoreboard-blocked warp-cycles", f"{c.barrier_wait_cycles}"),
    ])

    dram_bytes = c.dram_sectors * SECTOR_BYTES
    l2_bytes = c.l2_sectors * SECTOR_BYTES
    dram_bw = dram_bytes / seconds / 1e9 if seconds else 0.0
    memory = ProfileSection("Memory Workload", [
        ("DRAM sectors", f"{c.dram_sectors}"),
        ("DRAM traffic", f"{dram_bytes / 1024:.1f} KiB"),
        ("DRAM throughput (per SM)", f"{dram_bw:.2f} GB/s"),
        ("DRAM utilization (fair share)", _pct(
            min(1.0, dram_bw / (device.dram_gbps / device.num_sms))
            if seconds else 0.0
        )),
        ("L2-resident sectors", f"{c.l2_sectors}"),
        ("Shared-memory conflict cycles", f"{c.smem_conflict_cycles}"),
    ])

    return ProfileReport(title=title, sections=[sol, compute, sched, memory])
