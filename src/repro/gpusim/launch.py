"""Kernel launch API — the simulator's stand-in for the CUDA driver.

Typical flow::

    gmem = GlobalMemory()
    in_ptr = gmem.alloc_array(x)
    out_ptr = gmem.alloc(out_bytes)
    kernel = assemble(src, ...)            # or read_cubin(blob)
    result = run_grid(kernel, V100, grid=blocks, threads_per_block=256,
                      params={"in_ptr": in_ptr, "out_ptr": out_ptr}, gmem=gmem)
    y = gmem.read_array(out_ptr, shape)

``run_grid`` executes every block (functional correctness);
``simulate_resident_blocks`` runs only one SM's worth of concurrent
blocks for timing studies, and :func:`estimate_grid_time` extrapolates a
full launch from that measurement the way one extrapolates from a
single-SM microbenchmark on real hardware.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..common.errors import SimLaunchError
from ..sass.assembler import AssembledKernel
from ..sass.cubin import LoadedCubin
from ..sass.preprocess import KernelMeta
from .arch import DeviceSpec
from .counters import Counters
from .memory import GlobalMemory
from .sm import BlockSpec, SMSimulator

CONST_BANK_BYTES = 4096


@dataclasses.dataclass
class PreparedKernel:
    """A kernel with its launchable parts resolved exactly once.

    ``run_grid`` / ``simulate_resident_blocks`` accept this wherever they
    accept an :class:`AssembledKernel` or :class:`LoadedCubin`; preparing
    a kernel up front lets callers launch the same object many times
    without re-decoding cubin instructions or re-validating the type per
    call (the build-once/run-many path used by the kernel build cache).
    The simulator never mutates instructions, so one prepared kernel may
    be shared by any number of sequential or threaded launches.
    """

    meta: KernelMeta
    instructions: list


def prepare_kernel(kernel) -> PreparedKernel:
    """Resolve a kernel's meta + instruction list for repeated launches."""
    if isinstance(kernel, PreparedKernel):
        return kernel
    if isinstance(kernel, AssembledKernel):
        return PreparedKernel(kernel.meta, kernel.instructions)
    if isinstance(kernel, LoadedCubin):
        return PreparedKernel(kernel.meta, kernel.instructions())
    raise SimLaunchError(f"cannot launch object of type {type(kernel).__name__}")


def _kernel_parts(kernel) -> tuple[KernelMeta, list]:
    prepared = prepare_kernel(kernel)
    return prepared.meta, prepared.instructions


def _launch_span(label: str, **attrs):
    """A ``"launch"`` trace span on the active execution context.

    Imported lazily so ``repro.gpusim`` keeps no runtime state of its
    own — the tracer (like the caches and the lint gate) lives on
    :class:`repro.runtime.ExecutionContext`.
    """
    from ..runtime import current_context

    return current_context().span("launch", label, **attrs)


def build_const_bank(meta: KernelMeta, params: dict[str, int]) -> np.ndarray:
    """Materialize constant bank 0 with the kernel parameters."""
    bank = np.zeros(CONST_BANK_BYTES, dtype=np.uint8)
    declared = {name for name, _, _ in meta.params}
    unknown = set(params) - declared
    if unknown:
        raise SimLaunchError(
            f"parameters {sorted(unknown)} not declared by kernel "
            f"{meta.name!r} (declared: {sorted(declared)})"
        )
    for name, offset, size in meta.params:
        value = params.get(name, 0)
        bank[offset : offset + size] = np.frombuffer(
            int(value).to_bytes(size, "little", signed=value < 0), dtype=np.uint8
        )
    return bank


@dataclasses.dataclass
class LaunchResult:
    counters: Counters
    groups: int  # number of sequential SM rounds simulated
    occupancy: int

    def to_payload(self) -> dict:
        """Plain-JSON form (for the simulation-result cache)."""
        return {
            "counters": dataclasses.asdict(self.counters),
            "groups": self.groups,
            "occupancy": self.occupancy,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "LaunchResult":
        return cls(
            counters=Counters(**payload["counters"]),
            groups=payload["groups"],
            occupancy=payload["occupancy"],
        )


def run_grid(
    kernel,
    device: DeviceSpec,
    grid: int | tuple[int, ...],
    threads_per_block: int,
    params: dict[str, int],
    gmem: GlobalMemory,
    concurrent: int | None = None,
) -> LaunchResult:
    """Execute every block of the launch (functional + timing).

    ``grid`` may be an int (1-D) or an (x, y[, z]) tuple.  Blocks are
    simulated in rounds of ``concurrent`` (defaults to the occupancy
    limit), mimicking one SM draining the whole grid; use
    :func:`estimate_grid_time` to convert the counters to a multi-SM
    device time.
    """
    meta, program = _kernel_parts(kernel)
    if threads_per_block % 32:
        raise SimLaunchError("threads_per_block must be a multiple of 32")
    occupancy = device.occupancy(threads_per_block, meta.registers, meta.smem_bytes)
    if occupancy == 0:
        raise SimLaunchError(
            f"kernel {meta.name!r} cannot be resident on {device.name}: "
            f"{meta.registers} regs, {meta.smem_bytes} B smem"
        )
    if isinstance(grid, int):
        grid = (grid,)
    gx = grid[0]
    gy = grid[1] if len(grid) > 1 else 1
    gz = grid[2] if len(grid) > 2 else 1
    all_blocks = [
        (x, y, z) for z in range(gz) for y in range(gy) for x in range(gx)
    ]
    concurrent = concurrent or occupancy
    const = build_const_bank(meta, params)
    total = Counters()
    warps = threads_per_block // 32
    groups = 0
    cycles = 0
    with _launch_span(
        meta.name, device=device.name, blocks=len(all_blocks),
        mode="run_grid",
    ):
        for g0 in range(0, len(all_blocks), concurrent):
            specs = [
                BlockSpec(block_idx=x, num_warps=warps, const_bank=const,
                          smem_bytes=meta.smem_bytes, block_idx_y=y, block_idx_z=z)
                for (x, y, z) in all_blocks[g0 : g0 + concurrent]
            ]
            sim = SMSimulator(device, program, gmem)
            counters = sim.run(specs)
            cycles += counters.cycles
            counters.cycles = 0
            total.merge(counters)
            groups += 1
    total.cycles = cycles
    return LaunchResult(counters=total, groups=groups, occupancy=occupancy)


def simulate_resident_blocks(
    kernel,
    device: DeviceSpec,
    params: dict[str, int],
    gmem: GlobalMemory,
    threads_per_block: int,
    num_blocks: int | None = None,
    first_block: int = 0,
) -> LaunchResult:
    """Run one SM's worth of concurrently-resident blocks (timing study)."""
    meta, program = _kernel_parts(kernel)
    occupancy = device.occupancy(threads_per_block, meta.registers, meta.smem_bytes)
    if occupancy == 0:
        raise SimLaunchError(f"kernel {meta.name!r} not resident on {device.name}")
    num_blocks = num_blocks or occupancy
    const = build_const_bank(meta, params)
    warps = threads_per_block // 32
    specs = [
        BlockSpec(block_idx=first_block + i, num_warps=warps, const_bank=const,
                  smem_bytes=meta.smem_bytes)
        for i in range(num_blocks)
    ]
    with _launch_span(
        meta.name, device=device.name, blocks=num_blocks,
        mode="resident_blocks",
    ):
        sim = SMSimulator(device, program, gmem)
        counters = sim.run(specs)
    return LaunchResult(counters=counters, groups=1, occupancy=occupancy)


def simulate_batch(
    jobs,
    device: DeviceSpec,
    gmem: GlobalMemory,
    threads_per_block: int = 256,
) -> list[LaunchResult]:
    """Run many candidate kernels against one shared memory image.

    *jobs* is a sequence of ``(kernel, params, num_blocks)`` triples
    (``num_blocks=None`` for full occupancy).  Buffer *contents* never
    affect timing — only layout does — so a single
    :class:`~repro.gpusim.memory.GlobalMemory` image whose allocations
    cover every job's pointers serves the whole batch; each unique
    program is decoded once up front (the schedule search's
    successive-halving rungs and the perf-regression sweep route their
    candidate measurements through here).  Results are returned in job
    order.
    """
    from .decode import decode_program

    jobs = list(jobs)
    seen: set[int] = set()
    for kernel, _params, _num_blocks in jobs:
        _meta, program = _kernel_parts(kernel)
        if id(program) not in seen:
            seen.add(id(program))
            decode_program(program)  # warm the shared decode cache
    return [
        simulate_resident_blocks(
            kernel, device, params=params, gmem=gmem,
            threads_per_block=threads_per_block, num_blocks=num_blocks,
        )
        for kernel, params, num_blocks in jobs
    ]


def estimate_grid_time(
    device: DeviceSpec,
    resident: LaunchResult,
    total_blocks: int,
    blocks_simulated: int | None = None,
) -> float:
    """Extrapolate a full-grid time (seconds) from a resident-group run.

    ``waves × group_cycles / clock``: the standard single-SM
    microbenchmark extrapolation.  The tail wave is modelled at the same
    rate (slightly pessimistic for partial waves, like real launches).
    """
    blocks_simulated = blocks_simulated or resident.occupancy
    per_wave = device.num_sms * blocks_simulated
    waves = math.ceil(total_blocks / per_wave)
    return waves * resident.counters.cycles / (device.clock_ghz * 1e9)
