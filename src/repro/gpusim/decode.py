"""Pre-decoded instruction programs for the fast simulator.

The reference cycle loop (:mod:`repro.gpusim.sm` + ``engine.execute``)
re-inspects each :class:`~repro.sass.instruction.Instruction` object on
every dynamic issue: isinstance checks over operands, flag-string
scans, dict-keyed reuse caches.  That work is loop-invariant — an
instruction's pipe, control fields, operand slots and bank-conflict
behavior depend only on the program text, not on when it issues.

:func:`decode_program` lowers a program once into flat per-instruction
arrays (plain Python lists — the consumers index them with scalar ints,
where list access beats NumPy scalar access) plus one small
:class:`DecodedInstr` record per instruction for the vectorized
functional replay in :mod:`repro.gpusim.fastsim`.

Register-bank conflicts (§5.2.2) are resolved *statically* here: a
conflict depends only on the instruction's register sources and on the
reuse cache left by the dynamically-previous participating instruction.
``conflict_cleared[i]`` is the conflict with an empty cache;
:meth:`DecodedProgram.conflict_cached` memoizes the conflict given the
predecessor's reuse flags.  The timing loop then only tracks *which*
predecessor applies (one int per warp) and whether the cache survived
(cleared by warp switches and yield flags, §6.1).
"""

from __future__ import annotations

from ..common.errors import SimulatorError
from ..sass.control import NO_BARRIER
from ..sass.instruction import Instruction
from ..sass.isa import RZ, SETP_BOOL, SETP_CMP, SPECIAL_REGISTERS, width_of
from ..sass.operands import Const, Imm, Reg

# Replay dispatch kinds.
K_ALU = 0       # vectorizable ALU/FMA arithmetic (incl. MUFU)
K_MEM_GLOBAL = 1
K_MEM_SHARED = 2
K_MEM_CONST = 3
K_S2R = 4
K_ISETP = 5
K_P2R = 6
K_R2P = 7
K_EXIT = 8
K_BRA = 9
K_BAR = 10
K_NOP = 11
K_UNSUPPORTED = 12

PIPE_FMA = 0
PIPE_ALU = 1
PIPE_LSU = 2
PIPE_MIO = 3
PIPE_BRANCH = 4
PIPE_NONE = 5

PIPE_IDS = {
    "fma": PIPE_FMA, "alu": PIPE_ALU, "lsu": PIPE_LSU,
    "mio": PIPE_MIO, "branch": PIPE_BRANCH, "none": PIPE_NONE,
}

# Counter classes for fma-pipe instructions (Counters bookkeeping).
CC_NONE = 0
CC_FFMA = 1
CC_HFMA2 = 2
CC_HALF2 = 3
CC_FP32_OTHER = 4

#: Instructions that reach the engine's ALU/FMA source-fetch section and
#: therefore read + replace the operand reuse cache.
_PARTICIPATING = frozenset({
    "FFMA", "HFMA2", "HADD2", "HMUL2", "FADD", "FMUL", "FMNMX", "MUFU",
    "IADD3", "IMAD", "LOP3", "SHF", "MOV", "SEL", "CS2R", "POPC",
})

# Operand tags for DecodedInstr.srcs entries.
SRC_REG = 0   # (SRC_REG, reg_index, negated)
SRC_IMM = 1   # (SRC_IMM, bits)
SRC_CONST = 2  # (SRC_CONST, offset)


class DecodedInstr:
    """Replay-facing record of one instruction (operands resolved)."""

    __slots__ = (
        "kind", "name", "flags", "guard_idx", "guard_neg", "dest",
        "srcs", "src_reg_indices", "mem_base", "mem_offset", "mem_width",
        "mem_extended", "is_load", "sr_id", "setp_cmp", "setp_bool",
        "setp_u32", "setp_dest", "setp_src_idx", "setp_src_neg",
        "pack_mask", "bra_target", "imad_wide", "imad_u32", "shf_left",
        "lop3_op", "mufu_fn",
    )

    def __init__(self) -> None:
        self.kind = K_UNSUPPORTED
        self.flags = ()
        self.guard_idx = 7
        self.guard_neg = False
        self.dest = RZ
        self.srcs = ()
        self.src_reg_indices = ()
        self.mem_base = RZ
        self.mem_offset = 0
        self.mem_width = 4
        self.mem_extended = False
        self.is_load = False
        self.sr_id = 0
        self.setp_cmp = "EQ"
        self.setp_bool = "AND"
        self.setp_u32 = False
        self.setp_dest = 7
        self.setp_src_idx = 7
        self.setp_src_neg = False
        self.pack_mask = 0x7F
        self.bra_target = 0
        self.imad_wide = False
        self.imad_u32 = False
        self.shf_left = False
        self.lop3_op = "AND"
        self.mufu_fn = ""


def _decode_src(op) -> tuple:
    if isinstance(op, Reg):
        return (SRC_REG, op.index, op.negated)
    if isinstance(op, Imm):
        return (SRC_IMM, op.bits)
    if isinstance(op, Const):
        return (SRC_CONST, op.offset)
    raise SimulatorError(f"cannot evaluate operand {op!r}")


def _bank_conflict(src_regs: tuple, cache: dict) -> bool:
    """The engine's bank rule: >=3 distinct uncached sources, one bank."""
    banks = []
    seen = set()
    for slot, idx in src_regs:
        if cache.get(slot) == idx:
            continue
        if idx in seen:
            continue
        seen.add(idx)
        banks.append(idx & 1)
    return len(banks) >= 3 and len(set(banks)) == 1


class DecodedProgram:
    """Flat per-instruction arrays + replay records for one program."""

    def __init__(self, program: list[Instruction]):
        n = len(program)
        self.n = n
        self.program = program
        # Control fields (timing loop).
        self.stall: list[int] = [0] * n
        self.yield_flag: list[bool] = [False] * n
        self.write_bar: list[int] = [NO_BARRIER] * n
        self.read_bar: list[int] = [NO_BARRIER] * n
        self.wait_mask: list[int] = [0] * n
        # Scheduling / bookkeeping.
        self.pipe: list[int] = [PIPE_NONE] * n
        self.base_cycles: list[int] = [1] * n  # static pipe occupancy
        self.base_lat: list[int] = [0] * n     # static variable latency
        self.kind: list[int] = [K_UNSUPPORTED] * n
        self.name: list[str] = [""] * n
        self.cclass: list[int] = [CC_NONE] * n
        self.is_mem: list[bool] = [False] * n
        # Reuse cache / bank conflicts.
        self.participating: list[bool] = [False] * n
        self.conflict_cleared: list[bool] = [False] * n
        self.reuse_map: list[dict] = [{}] * n
        self._src_regs: list[tuple] = [()] * n
        self._conflict_memo: dict[tuple[int, int], bool] = {}
        # Replay records.
        self.instrs: list[DecodedInstr] = []

        for i, instr in enumerate(program):
            self._decode_one(i, instr)

    # ------------------------------------------------------------------
    def conflict_cached(self, i: int, prev: int) -> bool:
        """Bank conflict of instruction *i* given that the reuse cache
        holds the flags of (dynamically previous) instruction *prev*."""
        key = (i, prev)
        hit = self._conflict_memo.get(key)
        if hit is None:
            hit = _bank_conflict(self._src_regs[i], self.reuse_map[prev])
            self._conflict_memo[key] = hit
        return hit

    # ------------------------------------------------------------------
    def _decode_one(self, i: int, instr: Instruction) -> None:
        spec = instr.spec
        ctl = instr.control
        self.stall[i] = ctl.stall
        self.yield_flag[i] = ctl.yield_flag
        self.write_bar[i] = ctl.write_bar
        self.read_bar[i] = ctl.read_bar
        self.wait_mask[i] = ctl.wait_mask
        self.pipe[i] = PIPE_IDS[spec.pipe]
        self.name[i] = instr.name

        d = DecodedInstr()
        d.name = instr.name
        d.flags = instr.flags
        d.guard_idx = instr.guard.index
        d.guard_neg = instr.guard.negated
        if instr.dest is not None:
            d.dest = instr.dest.index
        self.instrs.append(d)

        name = instr.name
        if name == "EXIT":
            d.kind = K_EXIT
        elif name == "BRA":
            d.kind = K_BRA
            d.bra_target = int(instr.target)
        elif name == "BAR":
            d.kind = K_BAR
        elif name == "NOP":
            d.kind = K_NOP
        elif name == "S2R":
            d.kind = K_S2R
            sr = next(f for f in instr.flags if f.startswith("SR_"))
            d.sr_id = SPECIAL_REGISTERS[sr]
            self.base_cycles[i] = 1
            self.base_lat[i] = 12
        elif spec.is_load or spec.is_store:
            d.is_load = spec.is_load
            d.mem_width = width_of(instr.flags)
            if instr.mem is not None:
                d.mem_base = instr.mem.base.index
                d.mem_offset = instr.mem.offset
            d.mem_extended = "E" in instr.flags
            if not spec.is_load:
                d.srcs = (_decode_src(instr.srcs[-1]),)
            if spec.mem_space == "global":
                d.kind = K_MEM_GLOBAL
                self.is_mem[i] = True
            elif spec.mem_space == "shared":
                d.kind = K_MEM_SHARED
                self.is_mem[i] = True
            elif spec.mem_space == "constant":
                d.kind = K_MEM_CONST
                self.base_cycles[i] = 1
                self.base_lat[i] = 8
            else:
                d.kind = K_UNSUPPORTED
        elif name == "ISETP":
            d.kind = K_ISETP
            d.srcs = tuple(_decode_src(op) for op in instr.srcs)
            d.setp_cmp = next((f for f in instr.flags if f in SETP_CMP), "EQ")
            d.setp_bool = next((f for f in instr.flags if f in SETP_BOOL), "AND")
            d.setp_u32 = "U32" in instr.flags
            d.setp_dest = instr.dest_preds[0].index
            d.setp_src_idx = instr.src_pred.index
            d.setp_src_neg = instr.src_pred.negated
            self.base_cycles[i] = 2
        elif name == "P2R":
            d.kind = K_P2R
            d.pack_mask = (
                instr.srcs[0].bits if isinstance(instr.srcs[0], Imm) else 0x7F
            )
            self.base_cycles[i] = 2
        elif name == "R2P":
            d.kind = K_R2P
            d.srcs = (_decode_src(instr.srcs[0]),)
            d.pack_mask = instr.srcs[1].bits
            self.base_cycles[i] = 2
        elif name in _PARTICIPATING:
            d.kind = K_ALU
            d.srcs = tuple(_decode_src(op) for op in instr.srcs)
            if name == "IMAD":
                d.imad_wide = "WIDE" in instr.flags
                d.imad_u32 = "U32" in instr.flags
            elif name == "SHF":
                d.shf_left = "L" in instr.flags
            elif name == "LOP3":
                d.lop3_op = next(
                    (f for f in instr.flags if f in ("AND", "OR", "XOR")), "AND"
                )
            elif name == "MUFU":
                if "RCP" in instr.flags:
                    d.mufu_fn = "RCP"
                elif "RSQ" in instr.flags:
                    d.mufu_fn = "RSQ"
                else:
                    d.kind = K_UNSUPPORTED
            self.base_cycles[i] = 2
            if name == "MUFU":
                self.base_lat[i] = 17
        else:
            d.kind = K_UNSUPPORTED

        self.kind[i] = d.kind

        # Counter classes for the fma pipe.
        if self.pipe[i] == PIPE_FMA:
            self.cclass[i] = {
                "FFMA": CC_FFMA, "HFMA2": CC_HFMA2,
                "HADD2": CC_HALF2, "HMUL2": CC_HALF2,
            }.get(name, CC_FP32_OTHER)

        # Reuse-cache participation + static bank-conflict variants.
        if name in _PARTICIPATING:
            self.participating[i] = True
            src_regs = tuple(
                (slot, op.index)
                for slot, op in enumerate(instr.srcs)
                if isinstance(op, Reg) and not op.is_rz
            )
            self._src_regs[i] = src_regs
            self.reuse_map[i] = {
                slot: op.index
                for slot, op in enumerate(instr.srcs)
                if isinstance(op, Reg) and ctl.reuse & (1 << slot)
            }
            self.conflict_cleared[i] = _bank_conflict(src_regs, {})
            d.src_reg_indices = src_regs


# ---------------------------------------------------------------------------
# Decode cache: programs are immutable once assembled, so decoding is
# keyed by object identity.  Strong references keep ids stable.
# ---------------------------------------------------------------------------
_DECODE_CACHE: dict[int, tuple[list, DecodedProgram]] = {}
_DECODE_CACHE_MAX = 64


def decode_program(program: list[Instruction]) -> DecodedProgram:
    key = id(program)
    hit = _DECODE_CACHE.get(key)
    if hit is not None and hit[0] is program:
        return hit[1]
    decoded = DecodedProgram(program)
    if len(_DECODE_CACHE) >= _DECODE_CACHE_MAX:
        _DECODE_CACHE.pop(next(iter(_DECODE_CACHE)))
    _DECODE_CACHE[key] = (program, decoded)
    return decoded


_COPIED_FIELDS = (
    "stall", "yield_flag", "write_bar", "read_bar", "wait_mask",
    "pipe", "base_cycles", "base_lat", "kind", "name", "cclass",
    "is_mem", "participating", "conflict_cleared", "reuse_map",
    "_src_regs",
)


def derive_decode(
    sib_program: list[Instruction],
    new_program: list[Instruction],
    idx: int,
) -> DecodedProgram:
    """Decode *new_program* by patching its sibling's decode at *idx*.

    The two programs must be identical except for the instruction at
    *idx* (the trip-count immediate of a derived build).  Everything
    else — including the bank-conflict memo, which is keyed on register
    sources and reuse flags, never immediates — carries over verbatim,
    so only the one changed instruction is re-decoded.  The result is
    registered in the decode cache under *new_program*'s identity.
    """
    sib = decode_program(sib_program)
    dp = DecodedProgram.__new__(DecodedProgram)
    dp.n = sib.n
    dp.program = new_program
    for f in _COPIED_FIELDS:
        setattr(dp, f, list(getattr(sib, f)))
    dp._conflict_memo = sib._conflict_memo  # shared: identical family-wide
    dp.instrs = sib.instrs[:idx]
    dp._decode_one(idx, new_program[idx])  # appends at position idx
    dp.instrs.extend(sib.instrs[idx + 1:])
    if len(_DECODE_CACHE) >= _DECODE_CACHE_MAX:
        _DECODE_CACHE.pop(next(iter(_DECODE_CACHE)))
    _DECODE_CACHE[id(new_program)] = (new_program, dp)
    return dp
