"""Cycle-approximate Volta/Turing GPU simulator (the hardware substitute).

See DESIGN.md §2 for what is modelled and why it preserves the paper's
SASS-level effects (yield flag, LDG/STS spacing, bank conflicts,
register banks, occupancy).
"""

from .arch import (
    DEVICE_ALIASES,
    DEVICE_ENV_VAR,
    DEVICES,
    LATENCY_BOUNDS,
    RTX2070,
    V100,
    DeviceSpec,
    canonical_device_key,
    device_key,
    register_device,
    resolve_device,
    validate_device,
)
from .counters import Counters
from .engine import ExecResult, ExecutionContext, execute
from .launch import (
    LaunchResult,
    PreparedKernel,
    build_const_bank,
    estimate_grid_time,
    prepare_kernel,
    run_grid,
    simulate_batch,
    simulate_resident_blocks,
)
from .memory import (
    GlobalMemory,
    SharedMemory,
    SmemAccessReport,
    bank_conflict_report,
    coalesced_sectors,
)
from .profiler import ProfileReport, ProfileSection, profile_report
from .sm import BlockSpec, SMSimulator
from .warp import WarpState

__all__ = [
    "BlockSpec",
    "Counters",
    "DEVICES",
    "DEVICE_ALIASES",
    "DEVICE_ENV_VAR",
    "DeviceSpec",
    "LATENCY_BOUNDS",
    "ExecResult",
    "ExecutionContext",
    "GlobalMemory",
    "LaunchResult",
    "PreparedKernel",
    "ProfileReport",
    "ProfileSection",
    "RTX2070",
    "SMSimulator",
    "SharedMemory",
    "SmemAccessReport",
    "V100",
    "WarpState",
    "bank_conflict_report",
    "build_const_bank",
    "canonical_device_key",
    "coalesced_sectors",
    "device_key",
    "estimate_grid_time",
    "execute",
    "prepare_kernel",
    "profile_report",
    "register_device",
    "resolve_device",
    "run_grid",
    "simulate_batch",
    "simulate_resident_blocks",
    "validate_device",
]
