"""Cycle-level SM simulation: warp schedulers, pipes, scoreboards.

The model (per the Volta/Turing references the paper builds on):

* one SM = 4 scheduler partitions; each issues ≤1 instruction/cycle from
  its resident warps (warp *w* lives on partition ``w % 4``);
* each partition owns a 16-lane FP32 pipe and an INT pipe — a 32-thread
  warp instruction occupies its pipe for 2 cycles (+1 on a register-bank
  conflict, §5.2.2);
* the LSU (global) and MIO (shared/S2R/MUFU) pipes are shared per SM; a
  conflict-free ``LDS.128`` costs 4 MIO cycles (4 phases, §4.3), an
  n-way bank conflict adds n−1 cycles per phase;
* DRAM bandwidth is a per-SM fair share consumed in 32-byte sectors;
* the **yield flag** steers warp selection exactly as §5.1.4/§6.1
  describe: while the last-issued instruction's flag says "stay", the
  scheduler keeps issuing from the same warp; a switch (requested by the
  flag or forced by a stall) costs one extra issue cycle and clears the
  reuse cache;
* the six scoreboard barriers gate variable-latency results; stall
  counts delay the issuing warp.

Multiple thread blocks can be resident at once (the §7.1 occupancy
argument: V100 fits two 48 KB-smem blocks per SM, Turing only one) —
their warps interleave on the same schedulers but own separate shared
memory and CTA barriers.
"""

from __future__ import annotations

import dataclasses
import heapq
import os

import numpy as np

from ..common.errors import SimDeadlock
from ..sass.control import NO_BARRIER
from ..sass.instruction import Instruction
from .arch import DeviceSpec
from .counters import Counters
from .engine import ExecutionContext, execute
from .memory import SECTOR_BYTES, GlobalMemory, SharedMemory
from .warp import WarpState

MAX_CYCLES = 100_000_000


@dataclasses.dataclass
class BlockSpec:
    """One thread block to make resident on the simulated SM."""

    block_idx: int  # blockIdx.x
    num_warps: int
    const_bank: np.ndarray  # uint8, constant bank 0 image (params at 0x160)
    smem_bytes: int
    block_idx_y: int = 0
    block_idx_z: int = 0


class _Scheduler:
    __slots__ = ("warps", "preferred", "last_issued", "next_free", "rr", "charged")

    def __init__(self):
        self.warps: list[int] = []
        self.preferred: int | None = None
        self.last_issued: int | None = None
        self.next_free = 0
        self.rr = 0
        self.charged = False  # the one-cycle switch bubble was paid


class SMSimulator:
    """Runs a program's warps to completion and collects counters."""

    def __init__(
        self,
        device: DeviceSpec,
        program: list[Instruction],
        gmem: GlobalMemory,
    ):
        self.device = device
        self.program = program
        self.gmem = gmem
        self.counters = Counters()

    # ------------------------------------------------------------------
    def run(self, blocks: list[BlockSpec]) -> Counters:
        if os.environ.get("REPRO_SIM_ENGINE", "fast") != "reference":
            from .fastsim import fast_run

            self.counters = fast_run(
                self.device, self.program, self.gmem, blocks
            )
            return self.counters
        return self._run_reference(blocks)

    def _run_reference(self, blocks: list[BlockSpec]) -> Counters:
        """The original interleaved execute+schedule loop.

        Kept as the semantic oracle: the fast engine's timing loop is a
        port of this function, and the cycle-equivalence tests compare
        the two counter-for-counter (``REPRO_SIM_ENGINE=reference``
        selects it at runtime).
        """
        device = self.device
        program = self.program
        counters = self.counters

        warps: list[WarpState] = []
        contexts: list[ExecutionContext] = []
        block_of: list[int] = []
        bar_needed: list[int] = []
        for b_pos, block in enumerate(blocks):
            smem = SharedMemory(max(block.smem_bytes, 16))
            ctx = ExecutionContext(
                self.gmem, smem, block.const_bank, block.block_idx, device,
                block_idx_y=block.block_idx_y, block_idx_z=block.block_idx_z,
            )
            contexts.append(ctx)
            bar_needed.append(block.num_warps)
            for w in range(block.num_warps):
                warp = WarpState(w, block=b_pos)
                warps.append(warp)
                block_of.append(b_pos)

        schedulers = [_Scheduler() for _ in range(device.schedulers_per_sm)]
        for i in range(len(warps)):
            schedulers[i % len(schedulers)].warps.append(i)

        fma_busy = [0] * len(schedulers)
        alu_busy = [0] * len(schedulers)
        lsu_busy = 0
        mio_busy = 0
        dram_free = 0.0
        l2_free = 0.0
        sector_cost = SECTOR_BYTES / device.dram_bytes_per_cycle_per_sm
        l2_sector_cost = SECTOR_BYTES / (
            device.l2_gbps / device.clock_ghz / device.num_sms
        )

        events: list[tuple[int, int, int]] = []  # (time, warp idx, barrier)
        mshr: list[int] = []  # completion times of in-flight global accesses
        bar_count = [0] * len(blocks)
        now = 0
        live = len(warps)

        def eligible(widx: int) -> Instruction | None:
            w = warps[widx]
            if w.done or w.at_bar or w.ready_at > now:
                return None
            instr = program[w.pc]
            if not w.waits_satisfied(instr.control.wait_mask):
                return None
            return instr

        while live > 0:
            if now > MAX_CYCLES:
                raise SimDeadlock(f"no completion after {MAX_CYCLES} cycles")
            while events and events[0][0] <= now:
                _, widx, barrier = heapq.heappop(events)
                warps[widx].barrier_cnt[barrier] -= 1
            while mshr and mshr[0] <= now:
                heapq.heappop(mshr)

            issued_any = False
            mshr_full = len(mshr) >= device.lsu_queue_depth
            for s_idx, sched in enumerate(schedulers):
                if sched.next_free > now:
                    continue
                choice: int | None = None
                switched = False
                # "Stay" preference: while the last instruction's yield bit
                # said stay, keep issuing from the same warp.
                if sched.preferred is not None:
                    instr = eligible(sched.preferred)
                    if instr is not None and self._pipe_free(
                        instr, s_idx, fma_busy, alu_busy, lsu_busy, mio_busy,
                        now, mshr_full,
                    ):
                        choice = sched.preferred
                if choice is None:
                    n = len(sched.warps)
                    for step in range(n):
                        widx = sched.warps[(sched.rr + 1 + step) % n]
                        instr = eligible(widx)
                        if instr is None:
                            continue
                        if not self._pipe_free(
                            instr, s_idx, fma_busy, alu_busy, lsu_busy, mio_busy,
                            now, mshr_full,
                        ):
                            continue
                        choice = widx
                        # A yield-flagged instruction makes the next issue
                        # from this scheduler pay one extra cycle (§5.1.4);
                        # a switch forced by a stall or scoreboard wait is
                        # free (preferred stays set in that case).
                        switched = (
                            sched.preferred is None
                            and sched.last_issued is not None
                        )
                        break
                if choice is None:
                    counters.issue_idle_cycles += 1
                    continue
                if switched and not sched.charged:
                    # The yield-requested switch "takes one more clock
                    # cycle" (§5.1.4): a real bubble before the issue.
                    sched.charged = True
                    sched.next_free = now + 1
                    counters.warp_switches += 1
                    counters.switch_penalty_cycles += 1
                    continue
                sched.charged = False

                widx = choice
                warp = warps[widx]
                instr = program[warp.pc]
                if switched:
                    warps[sched.last_issued].clear_reuse()
                result = execute(instr, warp, contexts[block_of[widx]])

                # ---- timing bookkeeping ---------------------------------
                counters.instructions += 1
                warp.issued += 1
                if result.pipe == "fma":
                    fma_busy[s_idx] = now + result.pipe_cycles
                    counters.fma_pipe_busy += result.pipe_cycles
                    counters.fp32_instrs += 1
                    if instr.name == "FFMA":
                        counters.ffma_instrs += 1
                    elif instr.name == "HFMA2":
                        counters.hfma2_instrs += 1
                    elif instr.name in ("HADD2", "HMUL2"):
                        counters.half2_instrs += 1
                    if result.reg_bank_conflict:
                        counters.reg_bank_conflicts += 1
                elif result.pipe == "alu":
                    alu_busy[s_idx] = now + result.pipe_cycles
                    counters.alu_pipe_busy += result.pipe_cycles
                elif result.pipe == "lsu":
                    lsu_busy = now + result.pipe_cycles
                    counters.lsu_pipe_busy += result.pipe_cycles
                elif result.pipe == "mio":
                    mio_busy = now + result.pipe_cycles
                    counters.mio_pipe_busy += result.pipe_cycles
                    if result.smem_report is not None:
                        counters.smem_conflict_cycles += result.smem_report.conflicts
                counters.dram_sectors += result.dram_sectors
                counters.l2_sectors += result.l2_sectors

                # ---- scoreboard barriers --------------------------------
                delay = result.variable_latency
                if delay:
                    # An access can charge both buckets (a warp straddling
                    # the L2-resident boundary); it completes when its
                    # slowest bucket drains.
                    ready = float(now + delay)
                    if result.dram_sectors:
                        ready = max(
                            ready, dram_free + result.dram_sectors * sector_cost
                        )
                        dram_free = max(dram_free, float(now)) + (
                            result.dram_sectors * sector_cost
                        )
                    if result.l2_sectors:
                        ready = max(
                            ready, l2_free + result.l2_sectors * l2_sector_cost
                        )
                        l2_free = max(l2_free, float(now)) + (
                            result.l2_sectors * l2_sector_cost
                        )
                    delay = int(ready) - now
                    if result.pipe == "lsu":
                        heapq.heappush(mshr, now + delay)
                    for bar in (instr.control.write_bar, instr.control.read_bar):
                        if bar != NO_BARRIER:
                            warp.barrier_cnt[bar] += 1
                            heapq.heappush(events, (now + delay, widx, bar))

                # ---- control flow ---------------------------------------
                if result.exited:
                    warp.done = True
                    live -= 1
                    # Volta arrival semantics: an exited warp no longer
                    # counts toward its block's barrier.  If it was the
                    # last straggler, release the warps already waiting.
                    b = block_of[widx]
                    bar_needed[b] -= 1
                    if bar_count[b] and bar_count[b] >= bar_needed[b]:
                        bar_count[b] = 0
                        for other_idx, other in enumerate(warps):
                            if block_of[other_idx] == b:
                                other.at_bar = False
                elif result.barrier_sync:
                    b = block_of[widx]
                    bar_count[b] += 1
                    warp.at_bar = True
                    warp.pc += 1
                    if bar_count[b] >= bar_needed[b]:
                        bar_count[b] = 0
                        for other_idx, other in enumerate(warps):
                            if block_of[other_idx] == b:
                                other.at_bar = False
                elif result.branch_target is not None:
                    warp.pc = result.branch_target
                else:
                    warp.pc += 1

                warp.ready_at = now + max(instr.control.stall, 1)
                sched.rr = sched.warps.index(widx)
                # The switch's one-cycle cost was already paid by the
                # ``charged`` bubble above; the issue itself is normal.
                sched.next_free = now + 1
                sched.last_issued = widx
                if instr.control.yield_flag:
                    # Yield: prefer other warps next and forfeit the reuse
                    # cache (§6.1's two costs of the flag).
                    sched.preferred = None
                    warp.clear_reuse()
                else:
                    sched.preferred = widx
                issued_any = True

            # Count how many warps are blocked on scoreboards (diagnostics).
            if not issued_any:
                for w in warps:
                    if not w.done and not w.at_bar and w.ready_at <= now:
                        counters.barrier_wait_cycles += 1
            now += 1

        counters.cycles = now
        return counters

    # ------------------------------------------------------------------
    @staticmethod
    def _pipe_free(
        instr, s_idx, fma_busy, alu_busy, lsu_busy, mio_busy, now, mshr_full=False
    ) -> bool:
        pipe = instr.spec.pipe
        if pipe == "fma":
            return fma_busy[s_idx] <= now
        if pipe == "alu":
            return alu_busy[s_idx] <= now
        if pipe == "lsu":
            return lsu_busy <= now and not mshr_full
        if pipe == "mio":
            return mio_busy <= now
        return True
