"""Fast SM simulation: vectorized functional replay + trace-driven timing.

The reference loop in :mod:`repro.gpusim.sm` interleaves *semantics*
(``engine.execute`` — NumPy over one warp's 32 lanes) with *scheduling*
(pure Python over cycles).  Per dynamic instruction that costs tens of
microseconds, almost all of it loop-invariant object inspection.

This module splits the two concerns:

1. **Functional replay** (:class:`_Replay`): all resident warps execute
   the pre-decoded program (:mod:`repro.gpusim.decode`) in lockstep
   *groups* over a ``(256, nwarps, 32)`` register file, so one NumPy op
   covers every warp at the same pc.  Groups split on per-warp-uniform
   divergence (predicated ``EXIT``/``BRA``) and synchronize at
   ``BAR.SYNC`` in barrier-phase order — valid for the data-race-free
   kernels this simulator targets (the §5.1.4 control-code contract the
   assembler's hazard checker enforces).  Intra-warp divergence raises
   :class:`SimulatorError` exactly like the reference engine.  The
   replay emits, per warp, a trace of instruction instances with their
   dynamic timing footprint (LSU occupancy, DRAM/L2 sectors, shared-
   memory conflict cycles).

2. **Timing loop** (:func:`_timed_run`): a scalar pass that replays the
   reference scheduler decision-for-decision — yield/stay preference,
   round-robin scan, switch bubbles, scoreboard barriers, MSHR queue,
   DRAM/L2 bandwidth shaping — against the traces.  Because every
   per-instance quantity was precomputed, one issue costs a handful of
   list indexings; idle stretches are skipped arithmetically (the idle
   and barrier-wait counters are integrated in closed form over the
   skipped window).  Counters match the reference loop exactly; the
   cycle-equivalence tests in ``tests/gpusim/test_fast_engine.py`` pin
   that bit-for-bit.

Engine selection lives in :meth:`repro.gpusim.sm.SMSimulator.run`
(``REPRO_SIM_ENGINE=fast|reference``, default fast).
"""

from __future__ import annotations

import gc
import heapq

import numpy as np

from ..common.errors import SimDeadlock, SimMemoryFault, SimulatorError
from ..sass.control import NO_BARRIER
from .arch import DeviceSpec
from .counters import Counters
from .decode import (
    CC_FFMA,
    CC_HALF2,
    CC_HFMA2,
    K_ALU,
    K_BAR,
    K_BRA,
    K_EXIT,
    K_MEM_CONST,
    K_MEM_GLOBAL,
    K_MEM_SHARED,
    K_NOP,
    K_P2R,
    K_R2P,
    K_S2R,
    K_ISETP,
    PIPE_ALU,
    PIPE_FMA,
    PIPE_LSU,
    PIPE_MIO,
    SRC_CONST,
    SRC_IMM,
    SRC_REG,
    DecodedProgram,
    decode_program,
)
from .memory import SECTOR_BYTES, GlobalMemory

_U32 = np.uint32
_SIGN = np.uint32(0x80000000)


def _max_cycles() -> int:
    """MAX_CYCLES is read dynamically so tests can monkeypatch it."""
    from . import sm

    return sm.MAX_CYCLES


_BIG = np.int64(1) << np.int64(62)


def _classify_group(
    gmem: GlobalMemory, addrs: np.ndarray, width: int, full: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ``GlobalMemory.classify_sectors`` over a (g, 32) group.

    Per warp: the unique 32-byte sectors its active lanes touch, split
    into L2-resident and streaming counts — same union (begin sectors +
    end sector per lane) as ``memory.sector_ids``.
    """
    g = addrs.shape[0]
    offs = np.arange(0, width, SECTOR_BYTES, dtype=np.int64)
    sectors = np.concatenate(
        [
            (addrs[:, :, None] + offs[None, None, :]) // SECTOR_BYTES,
            ((addrs + width - 1) // SECTOR_BYTES)[:, :, None],
        ],
        axis=2,
    ).reshape(g, -1)
    valid = np.repeat(full, offs.size + 1, axis=1)
    sectors = np.where(valid, sectors, _BIG)
    sectors.sort(axis=1)
    valid = sectors < _BIG
    uniq = valid.copy()
    uniq[:, 1:] &= sectors[:, 1:] != sectors[:, :-1]
    base = sectors * SECTOR_BYTES
    resident = np.zeros_like(valid)
    for lo, hi in gmem._l2_resident:
        resident |= (base >= lo) & (base < hi)
    l2 = (uniq & resident).sum(axis=1)
    dram = uniq.sum(axis=1) - l2
    return dram.astype(np.int64), l2.astype(np.int64)


def _conflict_cycles_group(
    addrs: np.ndarray, width: int, full: np.ndarray
) -> tuple[np.ndarray, int]:
    """Vectorized ``memory.bank_conflict_report`` over a (g, 32) group.

    Returns per-warp serialized cycles plus the phase count; conflicts
    are ``cycles - phases``.  An all-inactive warp (or phase) still
    consumes its phase slots, exactly like the scalar version.
    """
    g = addrs.shape[0]
    phases = width // 4
    lanes_per_phase = 32 // phases
    words_per_lane = width // 4
    offs = np.arange(words_per_lane, dtype=np.int64)
    rowid = np.arange(g, dtype=np.int64)[:, None]
    total = np.zeros(g, dtype=np.int64)
    for p in range(phases):
        lanes = slice(p * lanes_per_phase, (p + 1) * lanes_per_phase)
        words = (
            addrs[:, lanes, None] // 4 + offs[None, None, :]
        ).reshape(g, -1)
        valid = np.repeat(full[:, lanes], words_per_lane, axis=1)
        words = np.where(valid, words, _BIG)
        words.sort(axis=1)
        valid = words < _BIG
        uniq = valid.copy()
        uniq[:, 1:] &= words[:, 1:] != words[:, :-1]
        banks = words % 32
        cnt = np.bincount(
            (rowid * 32 + banks).ravel(),
            weights=uniq.ravel(),
            minlength=g * 32,
        ).reshape(g, 32)
        total += np.maximum(cnt.max(axis=1).astype(np.int64), 1)
    return total, phases


# Candidate schedules of one problem share the synthetic buffer arena,
# so global accesses with the same addresses classify identically — and
# trip-count siblings repeat their first-iteration addresses exactly.
# Keyed on the L2-residency ranges too, since those decide the split.
_CLASSIFY_MEMO: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
_CLASSIFY_MEMO_MAX = 4096


def _classify_cached(
    gmem: GlobalMemory, addrs: np.ndarray, width: int, full: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    key = (
        width, tuple(gmem._l2_resident), addrs.tobytes(), full.tobytes(),
    )
    hit = _CLASSIFY_MEMO.get(key)
    if hit is None:
        if len(_CLASSIFY_MEMO) >= _CLASSIFY_MEMO_MAX:
            _CLASSIFY_MEMO.clear()
        dram, l2 = _classify_group(gmem, addrs, width, full)
        dram.setflags(write=False)
        l2.setflags(write=False)
        hit = (dram, l2)
        _CLASSIFY_MEMO[key] = hit
    return hit


# The double-buffered main loop touches the same shared-memory address
# pattern every iteration, so conflict analysis is re-run on identical
# inputs thousands of times per search.  The report is a pure function
# of (addrs, width, active mask) — memoize it module-wide.
_CONFLICT_MEMO: dict[tuple, tuple[np.ndarray, int]] = {}
_CONFLICT_MEMO_MAX = 4096


def _conflict_cycles_cached(
    addrs: np.ndarray, width: int, full: np.ndarray
) -> tuple[np.ndarray, int]:
    key = (width, addrs.tobytes(), full.tobytes())
    hit = _CONFLICT_MEMO.get(key)
    if hit is None:
        if len(_CONFLICT_MEMO) >= _CONFLICT_MEMO_MAX:
            _CONFLICT_MEMO.clear()
        total, phases = _conflict_cycles_group(addrs, width, full)
        total.setflags(write=False)
        hit = (total, phases)
        _CONFLICT_MEMO[key] = hit
    return hit


# ---------------------------------------------------------------------------
# Functional replay
# ---------------------------------------------------------------------------


class _Segment:
    """A run of instructions shared verbatim by a set of warps."""

    __slots__ = ("steps", "dyn")

    def __init__(self) -> None:
        self.steps: list[int] = []
        # step index -> (pipe_cycles, var_lat, dram, l2, smem_conf) arrays
        self.dyn: dict[int, tuple] = {}


class _Group:
    """A set of warps in lockstep at one pc."""

    __slots__ = ("pc", "warps", "seg", "count")

    def __init__(self, pc: int, warps: np.ndarray, count: int) -> None:
        self.pc = pc
        self.warps = warps
        self.seg = _Segment()
        self.count = count  # instances executed before this segment (cap)


class _Replay:
    def __init__(self, dp: DecodedProgram, device: DeviceSpec | None,
                 gmem: GlobalMemory, blocks) -> None:
        self.dp = dp
        self.device = device
        self.gmem = gmem
        nw = sum(b.num_warps for b in blocks)
        self.nw = nw
        self.regs = np.zeros((256, nw, 32), dtype=_U32)
        self.preds = np.zeros((8, nw, 32), dtype=bool)
        self.preds[7] = True
        self.lane = np.arange(32, dtype=_U32)

        block_of = np.empty(nw, dtype=np.int64)
        wid = np.empty(nw, dtype=_U32)
        bx = np.empty(nw, dtype=_U32)
        by = np.empty(nw, dtype=_U32)
        bz = np.empty(nw, dtype=_U32)
        w0 = 0
        for b_pos, block in enumerate(blocks):
            for w in range(block.num_warps):
                block_of[w0] = b_pos
                wid[w0] = w
                bx[w0] = block.block_idx
                by[w0] = block.block_idx_y
                bz[w0] = block.block_idx_z
                w0 += 1
        self.block_of = block_of
        self.wid = wid
        self.bx, self.by, self.bz = bx, by, bz

        self.smem_sizes = [max(b.smem_bytes, 16) for b in blocks]
        self.smem_size = max(self.smem_sizes)
        self.smem = np.zeros((len(blocks), self.smem_size), dtype=np.uint8)
        self.const = np.stack([b.const_bank for b in blocks])
        self._const_u32_cache: dict[int, np.ndarray] = {}

        self.done = np.zeros(nw, dtype=bool)
        self.live = [b.num_warps for b in blocks]
        self.arrived = [0] * len(blocks)
        # per block: suspended (pc, warps, count) awaiting barrier release
        self.suspended: list[list[tuple[int, np.ndarray, int]]] = [
            [] for _ in blocks
        ]
        self.chains: list[list[tuple[_Segment, int]]] = [[] for _ in range(nw)]
        self.ready: list[_Group] = []

    # -- group management ---------------------------------------------------
    def _spawn(self, pc: int, warps: np.ndarray, count: int) -> None:
        g = _Group(pc, warps, count)
        for pos, w in enumerate(warps):
            self.chains[w].append((g.seg, pos))
        self.ready.append(g)

    def _finish(self, warps: np.ndarray) -> None:
        self.done[warps] = True
        for b, cnt in zip(*np.unique(self.block_of[warps], return_counts=True)):
            self.live[int(b)] -= int(cnt)

    def run(self) -> None:
        self._spawn(0, np.arange(self.nw, dtype=np.int64), 0)
        while True:
            while self.ready:
                self._run_group(self.ready.pop())
            # Barrier-release sweep: Volta arrival semantics — a block
            # releases once every *live* warp has arrived (exited warps
            # no longer count).
            released = False
            for b in range(len(self.live)):
                if self.arrived[b] and self.arrived[b] >= self.live[b]:
                    entries = self.suspended[b]
                    self.suspended[b] = []
                    self.arrived[b] = 0
                    by_pc: dict[int, list] = {}
                    for pc, warps, count in entries:
                        by_pc.setdefault(pc, []).append((warps, count))
                    for pc, parts in by_pc.items():
                        warps = np.concatenate([p[0] for p in parts])
                        count = max(p[1] for p in parts)
                        self._spawn(pc, warps, count)
                    released = True
            if not released:
                break
        if not self.done.all():
            raise SimDeadlock(
                "warps stalled at BAR.SYNC with no live warp able to arrive"
            )

    # -- operand access -----------------------------------------------------
    def _const_u32(self, offset: int) -> np.ndarray:
        hit = self._const_u32_cache.get(offset)
        if hit is None:
            hit = (
                self.const[:, offset : offset + 4].copy().view(_U32).ravel()
            )
            self._const_u32_cache[offset] = hit
        return hit

    def _mask(self, d, warps: np.ndarray):
        """Guard mask over the group, or None for unpredicated."""
        if d.guard_idx == 7 and not d.guard_neg:
            return None
        m = self.preds[d.guard_idx][warps]
        return ~m if d.guard_neg else m

    def _fetch(self, src, warps: np.ndarray):
        t = src[0]
        if t == SRC_REG:
            v = self.regs[src[1]][warps]
            if src[2]:
                v = v ^ _SIGN
            return v
        if t == SRC_IMM:
            return np.uint32(src[1])
        # constant: one u32 per block, broadcast over lanes
        return self._const_u32(src[1])[self.block_of[warps]][:, None]

    def _write_reg(self, idx: int, warps: np.ndarray, vals, mask) -> None:
        if idx == 255:
            return
        row = self.regs[idx]
        if mask is None:
            row[warps] = vals
        else:
            sub = row[warps]
            np.copyto(sub, vals, where=mask, casting="unsafe")
            row[warps] = sub

    def _write_pred(self, idx: int, warps: np.ndarray, vals, mask) -> None:
        if idx == 7:
            return
        row = self.preds[idx]
        sub = row[warps]
        if mask is None:
            sub[:] = vals
        else:
            np.copyto(sub, vals, where=mask)
        row[warps] = sub

    # -- group execution ----------------------------------------------------
    def _run_group(self, g: _Group) -> None:
        dp = self.dp
        instrs = dp.instrs
        kinds = dp.kind
        steps = g.seg.steps
        warps = g.warps
        pc = g.pc
        cap = _max_cycles() + 2
        n_steps = 0
        while True:
            if g.count + n_steps > cap:
                raise SimDeadlock(
                    f"warp executed more than {cap} instructions"
                )
            d = instrs[pc]
            k = kinds[pc]
            if k <= K_R2P and k != K_MEM_GLOBAL and k != K_MEM_SHARED:
                # Pure register-file ops: no trace dynamics.
                steps.append(pc)
                n_steps += 1
                if k == K_ALU:
                    self._exec_alu(d, warps)
                elif k == K_ISETP:
                    self._exec_isetp(d, warps)
                elif k == K_S2R:
                    self._exec_s2r(d, warps)
                elif k == K_MEM_CONST:
                    self._exec_ldc(d, warps)
                elif k == K_P2R:
                    self._exec_p2r(d, warps)
                else:
                    self._exec_r2p(d, warps)
                pc += 1
                continue
            if k == K_MEM_GLOBAL or k == K_MEM_SHARED:
                steps.append(pc)
                n_steps += 1
                if k == K_MEM_GLOBAL:
                    dyn = self._exec_gmem(d, warps)
                else:
                    dyn = self._exec_smem(d, warps)
                g.seg.dyn[len(steps) - 1] = dyn
                pc += 1
                continue
            if k == K_NOP:
                steps.append(pc)
                n_steps += 1
                pc += 1
                continue
            if k == K_EXIT:
                mask = self._mask(d, warps)
                steps.append(pc)
                n_steps += 1
                if mask is None:
                    self._finish(warps)
                    return
                alln = mask.all(axis=1)
                anyn = mask.any(axis=1)
                if (anyn & ~alln).any():
                    raise SimulatorError(
                        "divergent EXIT: this simulator supports predication, "
                        "not independent thread scheduling"
                    )
                if alln.all():
                    self._finish(warps)
                    return
                if not alln.any():
                    pc += 1
                    continue
                self._finish(warps[alln])
                self._spawn(pc + 1, warps[~alln], g.count + n_steps)
                return
            if k == K_BRA:
                mask = self._mask(d, warps)
                steps.append(pc)
                n_steps += 1
                target = pc + 1 + d.bra_target
                if mask is None:
                    pc = target
                    continue
                taken = mask.all(axis=1)
                anyn = mask.any(axis=1)
                if (anyn & ~taken).any():
                    raise SimulatorError(
                        "divergent BRA is not supported; predicate instead"
                    )
                if taken.all():
                    pc = target
                    continue
                if not taken.any():
                    pc += 1
                    continue
                self._spawn(target, warps[taken], g.count + n_steps)
                self._spawn(pc + 1, warps[~taken], g.count + n_steps)
                return
            if k == K_BAR:
                steps.append(pc)
                n_steps += 1
                count = g.count + n_steps
                blocks = self.block_of[warps]
                for b in np.unique(blocks):
                    sel = warps[blocks == b]
                    self.arrived[int(b)] += len(sel)
                    self.suspended[int(b)].append((pc + 1, sel, count))
                return
            inst = self.dp.program[pc]
            raise SimulatorError(
                f"instruction {inst.name} has no execution semantics"
            )

    # -- per-kind executors -------------------------------------------------
    def _exec_s2r(self, d, warps: np.ndarray) -> None:
        mask = self._mask(d, warps)
        g = len(warps)
        sr = d.sr_id
        if sr == 0:
            vals = self.wid[warps][:, None] * _U32(32) + self.lane[None, :]
        elif sr in (1, 2):
            vals = np.zeros((g, 32), dtype=_U32)
        elif sr == 3:
            vals = np.broadcast_to(self.bx[warps][:, None], (g, 32))
        elif sr == 4:
            vals = np.broadcast_to(self.by[warps][:, None], (g, 32))
        elif sr == 5:
            vals = np.broadcast_to(self.bz[warps][:, None], (g, 32))
        elif sr == 6:
            vals = np.broadcast_to(self.lane[None, :], (g, 32))
        else:
            vals = np.broadcast_to(self.wid[warps][:, None], (g, 32))
        self._write_reg(d.dest, warps, vals, mask)

    def _addrs(self, d, warps: np.ndarray) -> np.ndarray:
        base = d.mem_base
        if base == 255:
            return np.full((len(warps), 32), d.mem_offset, dtype=np.int64)
        lo = self.regs[base][warps].astype(np.int64)
        if d.mem_extended:
            hi = (
                self.regs[base + 1][warps].astype(np.int64)
                if base + 1 < 256
                else 0
            )
            lo = lo | (hi << 32)
        return lo + d.mem_offset

    def _exec_gmem(self, d, warps: np.ndarray) -> tuple:
        g = len(warps)
        mask = self._mask(d, warps)
        full = np.ones((g, 32), dtype=bool) if mask is None else mask
        addrs = self._addrs(d, warps)
        width = d.mem_width
        gmem = self.gmem
        dev = self.device
        act = addrs[full]
        if act.size and (
            act.min() < 256
            or act.max() + width > gmem.size
            or np.any(act % width)
        ):
            # Faithful fault: re-check warp by warp for the message.
            for j in range(g):
                active = addrs[j][full[j]]
                if active.size:
                    self._check_gmem_lanes(active, width)
        dram, l2 = _classify_cached(gmem, addrs, width, full)
        cyc = np.maximum(1, full.sum(axis=1, dtype=np.int64) * width // 128)
        if not d.is_load:
            lat = np.full(g, 20, dtype=np.int64)
        elif dev is None:
            lat = np.full(g, 200, dtype=np.int64)
        else:
            lat = np.where(
                (l2 > 0) & (dram == 0),
                dev.lat_gmem_l2_hit,
                dev.lat_gmem_l2_miss,
            )
        nwords = width // 4
        offsets = np.arange(width, dtype=np.int64)
        if d.is_load:
            vals = np.zeros((g, 32, nwords), dtype=_U32)
            sel = full
            if sel.any():
                idx = addrs[sel][:, None] + offsets[None, :]
                vals[sel] = (
                    gmem.data[idx].view(_U32).reshape(-1, nwords)
                )
            for i in range(nwords):
                self._write_reg(d.dest + i, warps, vals[:, :, i], mask)
        else:
            data_reg = d.srcs[0][1]
            if full.any():
                data = np.stack(
                    [self.regs[data_reg + i][warps] for i in range(nwords)],
                    axis=2,
                )
                raw = (
                    np.ascontiguousarray(data[full])
                    .view(np.uint8)
                    .reshape(-1, width)
                )
                idx = addrs[full][:, None] + offsets[None, :]
                gmem.data[idx] = raw
        return (cyc, lat, dram, l2, np.zeros(g, dtype=np.int64))

    def _check_gmem_lanes(self, addrs: np.ndarray, width: int) -> None:
        if addrs.min() < 256 or addrs.max() + width > self.gmem.size:
            bad = addrs[(addrs < 256) | (addrs + width > self.gmem.size)][0]
            raise SimMemoryFault(
                f"global lane access at {int(bad):#x} out of bounds"
            )
        if np.any(addrs % width):
            bad = int(addrs[addrs % width != 0][0])
            raise SimMemoryFault(
                f"misaligned {width}-byte global access at {bad:#x}"
            )

    def _exec_smem(self, d, warps: np.ndarray) -> tuple:
        g = len(warps)
        mask = self._mask(d, warps)
        full = np.ones((g, 32), dtype=bool) if mask is None else mask
        addrs = self._addrs(d, warps)
        width = d.mem_width
        size = self.smem_size
        blocks = self.block_of[warps]
        base_lat = (
            (self.device.lat_smem if self.device else 19) if d.is_load else 10
        )
        sizes = np.array(
            [self.smem_sizes[int(b)] for b in blocks], dtype=np.int64
        )
        bad = full & ((addrs < 0) | (addrs + width > sizes[:, None]))
        if bad.any() or np.any(addrs[full] % width):
            for j in range(g):
                active = addrs[j][full[j]]
                if active.size:
                    self._check_smem_lanes(active, width, int(sizes[j]))
        cyc, phases = _conflict_cycles_cached(addrs, width, full)
        sconf = cyc - phases
        lat = base_lat + sconf
        nwords = width // 4
        offsets = np.arange(width, dtype=np.int64)
        flat = self.smem.reshape(-1)
        block_base = (self.block_of[warps] * size)[:, None]
        if d.is_load:
            vals = np.zeros((g, 32, nwords), dtype=_U32)
            if full.any():
                idx = (addrs + block_base)[full][:, None] + offsets[None, :]
                vals[full] = flat[idx].view(_U32).reshape(-1, nwords)
            for i in range(nwords):
                self._write_reg(d.dest + i, warps, vals[:, :, i], mask)
        else:
            data_reg = d.srcs[0][1]
            if full.any():
                data = np.stack(
                    [self.regs[data_reg + i][warps] for i in range(nwords)],
                    axis=2,
                )
                raw = (
                    np.ascontiguousarray(data[full])
                    .view(np.uint8)
                    .reshape(-1, width)
                )
                idx = (addrs + block_base)[full][:, None] + offsets[None, :]
                flat[idx] = raw
        return (
            cyc, lat, np.zeros(g, dtype=np.int64),
            np.zeros(g, dtype=np.int64), sconf,
        )

    def _check_smem_lanes(self, addrs: np.ndarray, width: int, size: int) -> None:
        if addrs.min() < 0 or addrs.max() + width > size:
            bad = int(addrs[(addrs < 0) | (addrs + width > size)][0])
            raise SimMemoryFault(
                f"shared access at {bad:#x} outside the {size}-byte block"
            )
        if np.any(addrs % width):
            bad = int(addrs[addrs % width != 0][0])
            raise SimMemoryFault(
                f"misaligned {width}-byte shared access at {bad:#x}"
            )

    def _exec_ldc(self, d, warps: np.ndarray) -> None:
        g = len(warps)
        mask = self._mask(d, warps)
        full = np.ones((g, 32), dtype=bool) if mask is None else mask
        addrs = self._addrs(d, warps)
        width = d.mem_width
        nwords = width // 4
        vals = np.zeros((g, 32, nwords), dtype=_U32)
        if full.any():
            offsets = np.arange(width, dtype=np.int64)
            cbase = (self.block_of[warps] * self.const.shape[1])[:, None]
            idx = (addrs + cbase)[full][:, None] + offsets[None, :]
            vals[full] = (
                self.const.reshape(-1)[idx].view(_U32).reshape(-1, nwords)
            )
        for i in range(nwords):
            self._write_reg(d.dest + i, warps, vals[:, :, i], mask)

    def _exec_p2r(self, d, warps: np.ndarray) -> None:
        mask = self._mask(d, warps)
        vals = np.zeros((len(warps), 32), dtype=_U32)
        for i in range(7):
            if d.pack_mask & (1 << i):
                vals |= self.preds[i][warps].astype(_U32) << _U32(i)
        self._write_reg(d.dest, warps, vals, mask)

    def _exec_r2p(self, d, warps: np.ndarray) -> None:
        mask = self._mask(d, warps)
        src = self.regs[d.srcs[0][1]][warps]
        for i in range(7):
            if d.pack_mask & (1 << i):
                self._write_pred(
                    i, warps, (src >> _U32(i)) & _U32(1) != 0, mask
                )

    def _exec_isetp(self, d, warps: np.ndarray) -> None:
        mask = self._mask(d, warps)
        a = self._fetch(d.srcs[0], warps)
        b = self._fetch(d.srcs[1], warps)
        if d.setp_u32:
            a_cmp = (
                np.uint64(a) if np.isscalar(a) or a.ndim == 0
                else a.astype(np.uint64)
            )
            b_cmp = (
                np.uint64(b) if np.isscalar(b) or b.ndim == 0
                else b.astype(np.uint64)
            )
        else:
            a_cmp = _s32(a)
            b_cmp = _s32(b)
        cmp = d.setp_cmp
        if cmp == "EQ":
            result = a_cmp == b_cmp
        elif cmp == "NE":
            result = a_cmp != b_cmp
        elif cmp == "LT":
            result = a_cmp < b_cmp
        elif cmp == "LE":
            result = a_cmp <= b_cmp
        elif cmp == "GT":
            result = a_cmp > b_cmp
        else:
            result = a_cmp >= b_cmp
        combine = self.preds[d.setp_src_idx][warps]
        if d.setp_src_neg:
            combine = ~combine
        if d.setp_bool == "AND":
            result = result & combine
        elif d.setp_bool == "OR":
            result = result | combine
        else:
            result = result ^ combine
        self._write_pred(d.setp_dest, warps, result, mask)

    def _exec_alu(self, d, warps: np.ndarray) -> None:
        mask = self._mask(d, warps)
        name = d.name
        srcs = [self._fetch(s, warps) for s in d.srcs]

        if name == "FFMA":
            out = _f32u(_f32(srcs[0]) * _f32(srcs[1]) + _f32(srcs[2]))
        elif name in ("HFMA2", "HADD2", "HMUL2"):
            halves = [_f16(s, len(warps)) for s in srcs]
            if name == "HFMA2":
                res = halves[0] * halves[1] + halves[2]
            elif name == "HADD2":
                res = halves[0] + halves[1]
            else:
                res = halves[0] * halves[1]
            out = np.ascontiguousarray(res.astype(np.float16)).view(_U32)
        elif name == "FADD":
            out = _f32u(_f32(srcs[0]) + _f32(srcs[1]))
        elif name == "FMUL":
            out = _f32u(_f32(srcs[0]) * _f32(srcs[1]))
        elif name == "FMNMX":
            out = _f32u(np.maximum(_f32(srcs[0]), _f32(srcs[1])))
        elif name == "MUFU":
            x = _f32(srcs[0])
            if d.mufu_fn == "RCP":
                with np.errstate(divide="ignore"):
                    out = _f32u(np.float32(1.0) / x)
            else:
                with np.errstate(divide="ignore", invalid="ignore"):
                    out = _f32u(np.float32(1.0) / np.sqrt(x))
        elif name == "IADD3":
            out = _wrap_u32(srcs[0] + srcs[1] + srcs[2])
        elif name == "IMAD":
            if d.imad_wide:
                if d.imad_u32:
                    prod = _u64(srcs[0]) * _u64(srcs[1])
                else:
                    prod = _s32(srcs[0]).astype(np.int64) * _s32(
                        srcs[1]
                    ).astype(np.int64)
                c_src = d.srcs[2]
                if c_src[0] == SRC_REG and c_src[1] != 255:
                    base = c_src[1]
                    lo = self.regs[base][warps].astype(np.int64)
                    hi = (
                        self.regs[base + 1][warps].astype(np.int64)
                        if base + 1 < 256
                        else 0
                    )
                    addend = lo | (hi << 32)
                else:
                    addend = _i64(srcs[2])
                total = (prod.astype(np.int64) + addend).astype(np.uint64)
                self._write_reg(
                    d.dest, warps, (total & np.uint64(0xFFFFFFFF)).astype(_U32),
                    mask,
                )
                self._write_reg(
                    d.dest + 1, warps, (total >> np.uint64(32)).astype(_U32),
                    mask,
                )
                return
            out = _wrap_u32(srcs[0] * srcs[1] + srcs[2])
        elif name == "LOP3":
            a, b, c = srcs
            if d.lop3_op == "AND":
                out = (a & b) ^ c
            elif d.lop3_op == "OR":
                out = (a | b) ^ c
            else:
                out = a ^ b ^ c
        elif name == "SHF":
            a, sh, c = srcs
            sh = sh & _U32(31)
            if d.shf_left:
                hi_in = np.where(sh > 0, c >> ((_U32(32) - sh) & _U32(31)), _U32(0))
                out = ((a << sh) | hi_in).astype(_U32)
            else:
                lo_shift = a >> sh
                hi_in = np.where(sh > 0, c << ((_U32(32) - sh) & _U32(31)), _U32(0))
                out = (lo_shift | hi_in).astype(_U32)
        elif name == "MOV":
            out = srcs[0]
        elif name == "SEL":
            out = srcs[0]
        elif name == "CS2R":
            out = np.zeros((len(warps), 32), dtype=_U32)
        elif name == "POPC":
            v = np.ascontiguousarray(srcs[0])
            out = (
                np.unpackbits(v.view(np.uint8))
                .reshape(v.shape + (32,))
                .sum(axis=-1)
                .astype(_U32)
            )
        else:  # pragma: no cover — decode marks these unsupported
            raise SimulatorError(f"instruction {name} has no execution semantics")
        self._write_reg(d.dest, warps, out, mask)


def _f32(v):
    if isinstance(v, np.ndarray):
        return np.ascontiguousarray(v).view(np.float32)
    return np.array(v, dtype=_U32).view(np.float32)[()]


def _f32u(v):
    return np.asarray(v, dtype=np.float32).view(_U32)


def _f16(v, g: int):
    if isinstance(v, np.ndarray):
        return np.ascontiguousarray(v).view(np.float16)
    return np.full((g, 32), v, dtype=_U32).view(np.float16)


def _s32(v):
    if isinstance(v, np.ndarray):
        return v.view(np.int32)
    return np.array(v, dtype=_U32).view(np.int32)[()]


def _u64(v):
    if isinstance(v, np.ndarray):
        return v.astype(np.uint64)
    return np.uint64(v)


def _i64(v):
    if isinstance(v, np.ndarray):
        return v.astype(np.int64)
    return np.int64(int(v))


def _wrap_u32(v):
    if isinstance(v, np.ndarray):
        return v.astype(_U32) if v.dtype != _U32 else v
    return np.uint32(v & 0xFFFFFFFF)


# ---------------------------------------------------------------------------
# Trace-driven timing
# ---------------------------------------------------------------------------


#: Index layout of one trace-instance tuple (see ``_assemble_traces``).
#: (i, wait_bits, pipe, pipe_cycles, var_lat, dram, l2, sconf,
#:  stall, yield, write_bar, read_bar, participating, conflict_cleared,
#:  cclass, is_bar)
_T_LEN = 16


def _assemble_traces(dp: DecodedProgram, replay: _Replay) -> list[list[tuple]]:
    """Per-warp instance-tuple lists.

    Each instance is one flat tuple carrying everything the timing loop
    reads — one list index + unpack per issue instead of a dozen array
    lookups.  Instances of the same static instruction share a single
    tuple object; only memory ops (whose footprint is dynamic) get
    per-instance copies with the replay-recorded values patched in.
    """
    wait_bits = [
        tuple(b for b in range(6) if wm >> b & 1) for wm in dp.wait_mask
    ]
    static = [
        (
            i,
            wait_bits[i],
            dp.pipe[i],
            dp.base_cycles[i],
            dp.base_lat[i],
            0,
            0,
            0,
            dp.stall[i],
            dp.yield_flag[i],
            dp.write_bar[i],
            dp.read_bar[i],
            dp.participating[i],
            dp.conflict_cleared[i],
            dp.cclass[i],
            dp.kind[i] == K_BAR,
        )
        for i in range(dp.n)
    ]
    traces: list[list[tuple]] = []
    for w in range(replay.nw):
        trace: list[tuple] = []
        for seg, pos in replay.chains[w]:
            offset = len(trace)
            trace.extend(static[i] for i in seg.steps)
            for step, (c_, la_, dr_, l2_, sc_) in seg.dyn.items():
                t = static[seg.steps[step]]
                trace[offset + step] = (
                    t[0], t[1], t[2],
                    int(c_[pos]), int(la_[pos]),
                    int(dr_[pos]), int(l2_[pos]), int(sc_[pos]),
                    t[8], t[9], t[10], t[11], t[12], t[13], t[14], t[15],
                )
        traces.append(trace)
    return traces


def _timed_run(
    device: DeviceSpec,
    dp: DecodedProgram,
    traces,
    block_of: list[int],
    num_blocks: int,
    bar_needed: list[int],
) -> Counters:
    """Replay the reference scheduler against pre-computed traces.

    This function is a line-for-line port of the loop in
    :meth:`repro.gpusim.sm.SMSimulator.run`; any change there must be
    mirrored here (the cycle-equivalence tests will catch drift).
    """
    nw = len(traces)
    max_cycles = _max_cycles()
    conflict_cached = dp.conflict_cached
    conflict_memo = dp._conflict_memo
    # Hot-loop local bindings: the issue loop touches these once or more
    # per issued instruction, and LOAD_FAST beats LOAD_GLOBAL.
    heappush = heapq.heappush
    heappop = heapq.heappop
    pipe_fma = PIPE_FMA
    pipe_alu = PIPE_ALU
    pipe_lsu = PIPE_LSU
    pipe_mio = PIPE_MIO
    cc_ffma = CC_FFMA
    cc_hfma2 = CC_HFMA2
    cc_half2 = CC_HALF2
    no_barrier = NO_BARRIER

    # Warp state (plain lists — scalar access dominates).
    ptr = [0] * nw
    seq_len = [len(t) for t in traces]
    # Current trace tuple per warp (every trace ends with EXIT, so it is
    # never empty): one list index in the eligibility scan instead of
    # two.
    cur = [t[0] for t in traces]
    ready_at = [0] * nw
    done = [False] * nw
    at_bar = [False] * nw
    bar_cnt = [[0] * 6 for _ in range(nw)]
    reuse_valid = [False] * nw
    last_part = [-1] * nw

    n_sched = device.schedulers_per_sm
    sched_warps: list[list[int]] = [[] for _ in range(n_sched)]
    pos_in_sched = [0] * nw
    for w in range(nw):
        s = w % n_sched
        pos_in_sched[w] = len(sched_warps[s])
        sched_warps[s].append(w)
    preferred: list[int | None] = [None] * n_sched
    last_issued: list[int | None] = [None] * n_sched
    next_free = [0] * n_sched
    rr = [0] * n_sched
    charged = [False] * n_sched

    fma_busy = [0] * n_sched
    alu_busy = [0] * n_sched
    lsu_busy = 0
    mio_busy = 0
    dram_free = 0.0
    l2_free = 0.0
    sector_cost = SECTOR_BYTES / device.dram_bytes_per_cycle_per_sm
    l2_sector_cost = SECTOR_BYTES / (
        device.l2_gbps / device.clock_ghz / device.num_sms
    )

    events: list[tuple[int, int, int]] = []
    mshr: list[int] = []
    mshr_depth = device.lsu_queue_depth
    bar_count = [0] * num_blocks
    bar_needed = list(bar_needed)
    now = 0
    live = nw

    c = Counters()
    c_instr = 0
    c_ffma = 0
    c_fp32 = 0
    c_hfma2 = 0
    c_half2 = 0
    c_fma_busy = 0
    c_alu_busy = 0
    c_lsu_busy = 0
    c_mio_busy = 0
    c_dram = 0
    c_l2 = 0
    c_sconf = 0
    c_rbc = 0
    c_switch = 0
    c_switch_pen = 0
    c_idle = 0
    c_barwait = 0

    while live > 0:
        if now > max_cycles:
            raise SimDeadlock(f"no completion after {max_cycles} cycles")
        while events and events[0][0] <= now:
            _, widx, barrier = heappop(events)
            bar_cnt[widx][barrier] -= 1
        while mshr and mshr[0] <= now:
            heappop(mshr)

        issued_any = False
        mshr_full = len(mshr) >= mshr_depth
        for s_idx in range(n_sched):
            if next_free[s_idx] > now:
                continue
            choice = -1
            switched = False
            pref = preferred[s_idx]
            if pref is not None:
                w = pref
                if not done[w] and not at_bar[w] and ready_at[w] <= now:
                    t = cur[w]
                    ok = True
                    wbits = t[1]
                    if wbits:
                        bc = bar_cnt[w]
                        for b in wbits:
                            if bc[b] > 0:
                                ok = False
                                break
                    if ok:
                        p = t[2]
                        if p == pipe_fma:
                            ok = fma_busy[s_idx] <= now
                        elif p == pipe_alu:
                            ok = alu_busy[s_idx] <= now
                        elif p == pipe_lsu:
                            ok = lsu_busy <= now and not mshr_full
                        elif p == pipe_mio:
                            ok = mio_busy <= now
                        if ok:
                            choice = w
            if choice < 0:
                warps_s = sched_warps[s_idx]
                n = len(warps_s)
                base = rr[s_idx] + 1
                for step in range(n):
                    w = warps_s[(base + step) % n]
                    if done[w] or at_bar[w] or ready_at[w] > now:
                        continue
                    t = cur[w]
                    wbits = t[1]
                    if wbits:
                        bc = bar_cnt[w]
                        blocked = False
                        for b in wbits:
                            if bc[b] > 0:
                                blocked = True
                                break
                        if blocked:
                            continue
                    p = t[2]
                    if p == pipe_fma:
                        if fma_busy[s_idx] > now:
                            continue
                    elif p == pipe_alu:
                        if alu_busy[s_idx] > now:
                            continue
                    elif p == pipe_lsu:
                        if lsu_busy > now or mshr_full:
                            continue
                    elif p == pipe_mio:
                        if mio_busy > now:
                            continue
                    choice = w
                    switched = (
                        preferred[s_idx] is None
                        and last_issued[s_idx] is not None
                    )
                    break
            if choice < 0:
                c_idle += 1
                continue
            if switched and not charged[s_idx]:
                charged[s_idx] = True
                next_free[s_idx] = now + 1
                c_switch += 1
                c_switch_pen += 1
                continue
            charged[s_idx] = False

            widx = choice
            k = ptr[widx]
            if switched:
                reuse_valid[last_issued[s_idx]] = False

            # ---- "execute": everything dynamic comes from the trace -----
            (
                i, _wbits, p, pipe_cycles, delay, dram_sec, l2_sec, sconf,
                st, yflag, wb, rb, part, confl0, cc, is_bar,
            ) = cur[widx]

            conflict = False
            if part:
                prev = last_part[widx]
                if reuse_valid[widx] and prev >= 0:
                    conflict = conflict_memo.get((i, prev))
                    if conflict is None:
                        conflict = conflict_cached(i, prev)
                else:
                    conflict = confl0
                last_part[widx] = i
                reuse_valid[widx] = True

            # ---- timing bookkeeping ------------------------------------
            c_instr += 1
            if p == pipe_fma:
                if conflict:
                    pipe_cycles += 1
                    c_rbc += 1
                fma_busy[s_idx] = now + pipe_cycles
                c_fma_busy += pipe_cycles
                c_fp32 += 1
                if cc == cc_ffma:
                    c_ffma += 1
                elif cc == cc_hfma2:
                    c_hfma2 += 1
                elif cc == cc_half2:
                    c_half2 += 1
            elif p == pipe_alu:
                alu_busy[s_idx] = now + pipe_cycles
                c_alu_busy += pipe_cycles
            elif p == pipe_lsu:
                lsu_busy = now + pipe_cycles
                c_lsu_busy += pipe_cycles
            elif p == pipe_mio:
                mio_busy = now + pipe_cycles
                c_mio_busy += pipe_cycles
                c_sconf += sconf
            c_dram += dram_sec
            c_l2 += l2_sec

            # ---- scoreboard barriers -----------------------------------
            if delay:
                ready = float(now + delay)
                if dram_sec:
                    ready = max(ready, dram_free + dram_sec * sector_cost)
                    dram_free = (
                        max(dram_free, float(now)) + dram_sec * sector_cost
                    )
                if l2_sec:
                    ready = max(ready, l2_free + l2_sec * l2_sector_cost)
                    l2_free = (
                        max(l2_free, float(now)) + l2_sec * l2_sector_cost
                    )
                delay = int(ready) - now
                if p == pipe_lsu:
                    heappush(mshr, now + delay)
                if wb != no_barrier:
                    bar_cnt[widx][wb] += 1
                    heappush(events, (now + delay, widx, wb))
                if rb != no_barrier:
                    bar_cnt[widx][rb] += 1
                    heappush(events, (now + delay, widx, rb))

            # ---- control flow ------------------------------------------
            if k + 1 >= seq_len[widx]:
                # The trace ends at the warp's EXIT.
                done[widx] = True
                live -= 1
                b = block_of[widx]
                bar_needed[b] -= 1
                if bar_count[b] and bar_count[b] >= bar_needed[b]:
                    bar_count[b] = 0
                    for other in range(nw):
                        if block_of[other] == b:
                            at_bar[other] = False
            else:
                ptr[widx] = k + 1
                cur[widx] = traces[widx][k + 1]
                if is_bar:
                    b = block_of[widx]
                    bar_count[b] += 1
                    at_bar[widx] = True
                    if bar_count[b] >= bar_needed[b]:
                        bar_count[b] = 0
                        for other in range(nw):
                            if block_of[other] == b:
                                at_bar[other] = False

            ready_at[widx] = now + (st if st > 1 else 1)
            rr[s_idx] = pos_in_sched[widx]
            next_free[s_idx] = now + 1
            last_issued[s_idx] = widx
            if yflag:
                preferred[s_idx] = None
                reuse_valid[widx] = False
            else:
                preferred[s_idx] = widx
            issued_any = True

        if issued_any:
            now += 1
            continue

        # Nothing issued: account this cycle, then skip ahead to the
        # next time any scheduler input can change.
        for w in range(nw):
            if not done[w] and not at_bar[w] and ready_at[w] <= now:
                c_barwait += 1

        horizon = None
        if events:
            t = events[0][0]
            if t > now and (horizon is None or t < horizon):
                horizon = t
        if mshr:
            t = mshr[0]
            if t > now and (horizon is None or t < horizon):
                horizon = t
        for t in next_free:
            if t > now and (horizon is None or t < horizon):
                horizon = t
        for w in range(nw):
            if not done[w] and not at_bar[w]:
                t = ready_at[w]
                if t > now and (horizon is None or t < horizon):
                    horizon = t
        for t in fma_busy:
            if t > now and (horizon is None or t < horizon):
                horizon = t
        for t in alu_busy:
            if t > now and (horizon is None or t < horizon):
                horizon = t
        if lsu_busy > now and (horizon is None or lsu_busy < horizon):
            horizon = lsu_busy
        if mio_busy > now and (horizon is None or mio_busy < horizon):
            horizon = mio_busy
        if horizon is None:
            # No pending event can ever unblock an eligible warp — the
            # reference loop would spin to MAX_CYCLES and raise.
            raise SimDeadlock(
                f"no completion after {max_cycles} cycles"
            )
        if horizon > now + 1:
            if horizon > max_cycles + 1:
                horizon = max_cycles + 1
            a, b_end = now + 1, horizon
            span = b_end - a
            # issue_idle: schedulers keep failing until the horizon.
            for t in next_free:
                c_idle += span if t <= a else max(0, b_end - t)
            # barrier_wait: per warp, cycles with ready_at satisfied.
            for w in range(nw):
                if not done[w] and not at_bar[w]:
                    t = ready_at[w]
                    c_barwait += span if t <= a else max(0, b_end - t)
            now = b_end
        else:
            now += 1

    c.cycles = now
    c.instructions = c_instr
    c.ffma_instrs = c_ffma
    c.fp32_instrs = c_fp32
    c.hfma2_instrs = c_hfma2
    c.half2_instrs = c_half2
    c.fma_pipe_busy = c_fma_busy
    c.alu_pipe_busy = c_alu_busy
    c.lsu_pipe_busy = c_lsu_busy
    c.mio_pipe_busy = c_mio_busy
    c.dram_sectors = c_dram
    c.l2_sectors = c_l2
    c.smem_conflict_cycles = c_sconf
    c.reg_bank_conflicts = c_rbc
    c.warp_switches = c_switch
    c.switch_penalty_cycles = c_switch_pen
    c.issue_idle_cycles = c_idle
    c.barrier_wait_cycles = c_barwait
    return c


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def fast_run(device: DeviceSpec, program, gmem: GlobalMemory, blocks) -> Counters:
    """Run one SM round (same contract as ``SMSimulator.run``)."""
    # Replay and timing allocate millions of short-lived containers
    # (trace tuples, numpy views); cyclic-GC passes over them cost more
    # than the garbage they could ever reclaim here, so pause collection
    # for the duration.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        dp = decode_program(program)
        replay = _Replay(dp, device, gmem, blocks)
        replay.run()
        traces = _assemble_traces(dp, replay)
        block_of = [int(b) for b in replay.block_of]
        bar_needed = [b.num_warps for b in blocks]
        return _timed_run(device, dp, traces, block_of, len(blocks), bar_needed)
    finally:
        if gc_was_enabled:
            gc.enable()
