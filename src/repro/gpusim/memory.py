"""Simulated memory: flat global memory and banked shared memory.

Global memory is a byte-addressed image with a bump allocator.  Timing
is handled by the SM (latency + bandwidth accounting); this module
provides the functional accesses plus the **coalescing analysis**: a
warp's 32 addresses are grouped into 32-byte sectors, and the sector
count is both the DRAM traffic and the LSU occupancy of the access —
the paper's layout work (§4) is precisely about making this count
minimal (4 sectors per 128-byte warp access).

Shared memory implements the 32-bank × 4-byte structure with the
conflict rules of §4.3: 32-bit accesses follow the classic one-phase
rule with same-word broadcast; 64/128-bit accesses are serialized into
2/4 word transactions, each of which follows the 32-bit rule (see
:func:`bank_conflict_report` for how this calibrates against the
paper's Fig. 3 profiling observation).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.errors import SimMemoryFault

SECTOR_BYTES = 32
NUM_BANKS = 32
BANK_BYTES = 4


class GlobalMemory:
    """Byte-addressed global memory with a bump allocator.

    Address 0 is kept unmapped so that a null pointer dereference faults
    instead of silently reading allocation #0.
    """

    def __init__(self, size: int = 64 * 1024 * 1024):
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)
        self._cursor = 256  # leave a null guard page
        self._l2_resident: list[tuple[int, int]] = []

    # ---- allocation ------------------------------------------------------
    def alloc(self, nbytes: int, align: int = 256, l2_resident: bool = False) -> int:
        """Bump-allocate.

        ``l2_resident=True`` marks the region as one whose working set
        fits the L2 cache across the launch (e.g. the transformed-filter
        workspace, re-read by every tile block — the paper's §3.3 "a
        certain level of L2 hit rate" argument).  Loads from resident
        regions are charged to L2 bandwidth, others to DRAM.
        """
        addr = (self._cursor + align - 1) // align * align
        if addr + nbytes > self.size:
            raise SimMemoryFault(
                f"global memory exhausted: need {nbytes} B at {addr:#x}"
            )
        self._cursor = addr + nbytes
        if l2_resident:
            self._l2_resident.append((addr, addr + nbytes))
        return addr

    def alloc_array(
        self, array: np.ndarray, align: int = 256, l2_resident: bool = False
    ) -> int:
        addr = self.alloc(array.nbytes, align, l2_resident=l2_resident)
        self.write_array(addr, array)
        return addr

    def is_l2_resident(self, addr: int) -> bool:
        return any(lo <= addr < hi for lo, hi in self._l2_resident)

    def resident_sector_mask(self, sectors: np.ndarray) -> np.ndarray:
        """Per-sector L2 residency (sector classified by its base address)."""
        base = sectors * SECTOR_BYTES
        resident = np.zeros(sectors.size, dtype=bool)
        for lo, hi in self._l2_resident:
            resident |= (base >= lo) & (base < hi)
        return resident

    def classify_sectors(
        self, addrs: np.ndarray, width: int, mask: np.ndarray
    ) -> tuple[int, int]:
        """(dram_sectors, l2_sectors) of one warp access, sector by sector.

        A warp whose lanes straddle the boundary of the L2-resident
        working set charges each 32-byte sector to the side it actually
        lives on, instead of classifying the whole access by one lane.
        """
        sectors = sector_ids(addrs, width, mask)
        if sectors.size == 0:
            return 0, 0
        n_l2 = int(self.resident_sector_mask(sectors).sum())
        return int(sectors.size) - n_l2, n_l2

    # ---- host-side array IO ------------------------------------------------
    def write_array(self, addr: int, array: np.ndarray) -> None:
        raw = np.ascontiguousarray(array).view(np.uint8).ravel()
        self._check(addr, raw.size)
        self.data[addr : addr + raw.size] = raw

    def read_array(self, addr: int, shape, dtype=np.float32) -> np.ndarray:
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        self._check(addr, nbytes)
        return (
            self.data[addr : addr + nbytes].copy().view(dtype).reshape(shape)
        )

    # ---- warp-level access (vectorized over lanes) --------------------------
    def load_warp(self, addrs: np.ndarray, width: int, mask: np.ndarray) -> np.ndarray:
        """Load ``width`` bytes per active lane; returns (lanes, width//4) u32."""
        lanes = addrs.size
        out = np.zeros((lanes, width // 4), dtype=np.uint32)
        active = np.nonzero(mask)[0]
        if active.size:
            self._check_lanes(addrs[active], width)
            offsets = np.arange(width, dtype=np.int64)
            idx = addrs[active][:, None] + offsets[None, :]
            raw = self.data[idx]  # (n_active, width)
            out[active] = raw.view(np.uint32).reshape(active.size, width // 4)
        return out

    def store_warp(
        self, addrs: np.ndarray, values: np.ndarray, width: int, mask: np.ndarray
    ) -> None:
        """Store ``width`` bytes per active lane from (lanes, width//4) u32."""
        active = np.nonzero(mask)[0]
        if not active.size:
            return
        self._check_lanes(addrs[active], width)
        raw = values[active].astype(np.uint32).view(np.uint8).reshape(active.size, width)
        offsets = np.arange(width, dtype=np.int64)
        idx = addrs[active][:, None] + offsets[None, :]
        # np.ufunc.at not needed: CUDA leaves overlapping same-cycle stores
        # undefined; last-writer-wins matches plain fancy assignment.
        self.data[idx] = raw

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 256 or addr + nbytes > self.size:
            raise SimMemoryFault(f"global access [{addr:#x}, +{nbytes}) out of bounds")

    def _check_lanes(self, addrs: np.ndarray, width: int) -> None:
        if addrs.min() < 256 or addrs.max() + width > self.size:
            bad = addrs[(addrs < 256) | (addrs + width > self.size)][0]
            raise SimMemoryFault(f"global lane access at {int(bad):#x} out of bounds")
        if np.any(addrs % width):
            bad = int(addrs[addrs % width != 0][0])
            raise SimMemoryFault(
                f"misaligned {width}-byte global access at {bad:#x}"
            )


def sector_ids(addrs: np.ndarray, width: int, mask: np.ndarray) -> np.ndarray:
    """Unique 32-byte sector indices a warp access touches."""
    active = addrs[mask]
    if active.size == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.arange(0, width, SECTOR_BYTES, dtype=np.int64)
    sectors = ((active[:, None] + offsets[None, :]) // SECTOR_BYTES).ravel()
    # A lane access spanning into the next sector (unaligned) touches it too;
    # alignment is enforced, so begin/end sectors suffice.
    end_sectors = (active + width - 1) // SECTOR_BYTES
    return np.union1d(sectors, end_sectors)


def coalesced_sectors(addrs: np.ndarray, width: int, mask: np.ndarray) -> int:
    """Number of 32-byte sectors a warp access touches (its DRAM traffic)."""
    return int(sector_ids(addrs, width, mask).size)


@dataclasses.dataclass
class SmemAccessReport:
    """Timing-relevant outcome of one warp-level shared-memory access."""

    phases: int
    cycles: int  # sum over phases of the max bank multiplicity

    @property
    def conflicts(self) -> int:
        """Extra cycles lost to bank conflicts (0 = conflict-free)."""
        return self.cycles - self.phases


class SharedMemory:
    """Per-block scratchpad with bank-conflict accounting."""

    def __init__(self, size: int):
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)

    def load_warp(
        self, addrs: np.ndarray, width: int, mask: np.ndarray
    ) -> tuple[np.ndarray, SmemAccessReport]:
        lanes = addrs.size
        out = np.zeros((lanes, width // 4), dtype=np.uint32)
        active = np.nonzero(mask)[0]
        if active.size:
            self._check(addrs[active], width)
            offsets = np.arange(width, dtype=np.int64)
            idx = addrs[active][:, None] + offsets[None, :]
            out[active] = (
                self.data[idx].view(np.uint32).reshape(active.size, width // 4)
            )
        return out, bank_conflict_report(addrs, width, mask)

    def store_warp(
        self, addrs: np.ndarray, values: np.ndarray, width: int, mask: np.ndarray
    ) -> SmemAccessReport:
        active = np.nonzero(mask)[0]
        if active.size:
            self._check(addrs[active], width)
            raw = (
                values[active].astype(np.uint32).view(np.uint8).reshape(active.size, width)
            )
            offsets = np.arange(width, dtype=np.int64)
            idx = addrs[active][:, None] + offsets[None, :]
            self.data[idx] = raw
        return bank_conflict_report(addrs, width, mask)

    def read_array(self, addr: int, shape, dtype=np.float32) -> np.ndarray:
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        return self.data[addr : addr + nbytes].copy().view(dtype).reshape(shape)

    def write_array(self, addr: int, array: np.ndarray) -> None:
        raw = np.ascontiguousarray(array).view(np.uint8).ravel()
        self.data[addr : addr + raw.size] = raw

    def _check(self, addrs: np.ndarray, width: int) -> None:
        if addrs.min() < 0 or addrs.max() + width > self.size:
            bad = int(addrs[(addrs < 0) | (addrs + width > self.size)][0])
            raise SimMemoryFault(
                f"shared access at {bad:#x} outside the {self.size}-byte block"
            )
        if np.any(addrs % width):
            bad = int(addrs[addrs % width != 0][0])
            raise SimMemoryFault(f"misaligned {width}-byte shared access at {bad:#x}")


def bank_conflict_report(
    addrs: np.ndarray, width: int, mask: np.ndarray
) -> SmemAccessReport:
    """Phase count and serialized cycles for one warp shared-memory access.

    Model: a ``width``-byte access is served in ``width/4`` phases of
    ``128/width × 4`` consecutive lanes (8 lanes per phase for LDS.128),
    each phase moving 128 bytes.  Within a phase the classic 32-bit rule
    applies to all the words the phase's lanes touch: same-word accesses
    broadcast, distinct words in the same bank serialize.

    Calibration against §4.3's profiling observations: the Fig. 3 lane
    arrangement (with its 8-fold duplicated input segments) is
    conflict-free; a fully sequential 512-byte warp access is
    conflict-free; but layouts whose lanes straddle shared-memory rows a
    multiple of 128 bytes apart serialize — "other patterns do lead to
    bank conflict" despite the CUDA manual's broadcast paragraph.
    """
    phases = width // BANK_BYTES
    lanes_per_phase = 32 // phases
    if not mask.any():
        return SmemAccessReport(phases=phases, cycles=phases)
    cycles = 0
    words_per_lane = width // BANK_BYTES
    lane_ids = np.arange(addrs.size)
    offsets = np.arange(words_per_lane, dtype=np.int64)
    for p in range(phases):
        sel = (lane_ids // lanes_per_phase == p) & mask
        if not sel.any():
            cycles += 1  # the phase slot is still consumed
            continue
        words = np.unique(
            (addrs[sel][:, None] // BANK_BYTES + offsets[None, :]).ravel()
        )
        banks = words % NUM_BANKS
        multiplicity = int(np.bincount(banks, minlength=NUM_BANKS).max())
        cycles += max(multiplicity, 1)
    return SmemAccessReport(phases=phases, cycles=cycles)
