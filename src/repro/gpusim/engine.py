"""Functional + timing execution of one warp instruction.

:func:`execute` applies an instruction's architectural effects to a
:class:`~repro.gpusim.warp.WarpState` (vectorized over the 32 lanes) and
returns an :class:`ExecResult` describing its timing footprint — which
pipe it occupies and for how long, how many DRAM sectors it moves, and
whether a scoreboard barrier completes later.  The SM cycle loop in
:mod:`repro.gpusim.sm` is pure scheduling; all semantics live here.

Values are written at issue time.  Timing correctness relies on the
control codes (the Volta/Turing contract, §5.1.4); run the assembler
with ``strict=True`` to prove a kernel never consumes a value before its
stall/barrier cover — the simulator then reports faithful timing *and*
bit-accurate results.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.errors import SimulatorError
from ..sass.instruction import Instruction
from ..sass.isa import RZ, SETP_BOOL, SETP_CMP, SPECIAL_REGISTERS, width_of
from ..sass.operands import Const, Imm, Reg
from .memory import SmemAccessReport
from .warp import WarpState

_U32 = np.uint32


@dataclasses.dataclass
class ExecResult:
    """Timing footprint of one issued warp instruction."""

    pipe: str  # "fma" | "alu" | "lsu" | "mio" | "branch" | "none"
    pipe_cycles: int = 1
    variable_latency: int = 0  # >0: barrier completes this many cycles later
    dram_sectors: int = 0
    l2_sectors: int = 0  # sectors served from the L2-resident working set
    smem_report: SmemAccessReport | None = None
    reg_bank_conflict: bool = False
    branch_target: int | None = None  # absolute pc (taken branch)
    exited: bool = False
    barrier_sync: bool = False


class ExecutionContext:
    """Per-block resources an instruction may touch."""

    def __init__(self, gmem, smem, const_bank: np.ndarray, block_idx: int = 0,
                 device=None, block_idx_y: int = 0, block_idx_z: int = 0):
        self.gmem = gmem
        self.smem = smem
        self.const_bank = const_bank  # uint8 view of constant bank 0
        self.block_idx = block_idx
        self.block_idx_y = block_idx_y
        self.block_idx_z = block_idx_z
        self.device = device

    def const_u32(self, offset: int) -> int:
        return int(self.const_bank[offset : offset + 4].view(_U32)[0])


def _src_value(warp: WarpState, ctx: ExecutionContext, op) -> np.ndarray:
    """Fetch a source operand as a (32,) uint32 vector."""
    if isinstance(op, Reg):
        value = warp.read_reg(op.index)
        if op.negated:  # float source negation: flip the sign bit
            value = value ^ np.uint32(0x80000000)
        return value
    if isinstance(op, Imm):
        return np.full(32, op.bits, dtype=_U32)
    if isinstance(op, Const):
        return np.full(32, ctx.const_u32(op.offset), dtype=_U32)
    raise SimulatorError(f"cannot evaluate operand {op!r}")


def _as_f32(v: np.ndarray) -> np.ndarray:
    return v.view(np.float32)


def _from_f32(v: np.ndarray) -> np.ndarray:
    return np.asarray(v, dtype=np.float32).view(_U32)


def _as_s32(v: np.ndarray) -> np.ndarray:
    return v.view(np.int32)


def _register_bank_conflict(instr: Instruction, warp: WarpState) -> bool:
    """Paper footnote 6: all register sources in one 64-bit bank ⇒ +1 cycle.

    Reuse-cached operands are served by the cache, not the bank.  The
    cache is keyed by operand slot: a ``.reuse`` flag on slot *s* makes
    the register available to the *next* instruction's slot *s*.
    """
    banks: list[int] = []
    seen: set[int] = set()
    for slot, op in enumerate(instr.srcs):
        if not isinstance(op, Reg) or op.is_rz:
            continue
        if warp.reuse_cache.get(slot) == op.index:
            continue  # served from the reuse cache
        if op.index in seen:
            continue  # one physical read feeds both operands
        seen.add(op.index)
        banks.append(op.index & 1)
    conflict = len(banks) >= 3 and len(set(banks)) == 1
    # Update the cache from this instruction's reuse flags.
    new_cache: dict[int, int] = {}
    for slot, op in enumerate(instr.srcs):
        if isinstance(op, Reg) and instr.control.reuse & (1 << slot):
            new_cache[slot] = op.index
    warp.reuse_cache = new_cache
    return conflict


def execute(instr: Instruction, warp: WarpState, ctx: ExecutionContext) -> ExecResult:
    name = instr.name
    spec = instr.spec
    mask = warp.read_pred(instr.guard.index, instr.guard.negated)

    # ---- control ----------------------------------------------------------
    if name == "EXIT":
        if mask.all():
            return ExecResult("branch", exited=True)
        if not mask.any():
            return ExecResult("branch")
        raise SimulatorError(
            "divergent EXIT: this simulator supports predication, not "
            "independent thread scheduling"
        )
    if name == "BRA":
        taken = bool(mask.all())
        if mask.any() and not taken:
            raise SimulatorError("divergent BRA is not supported; predicate instead")
        target = warp.pc + 1 + int(instr.target) if taken else None
        return ExecResult("branch", branch_target=target)
    if name == "BAR":
        return ExecResult("branch", barrier_sync=True)
    if name == "NOP":
        return ExecResult("none")

    # ---- special registers ---------------------------------------------------
    if name == "S2R":
        sr = next(f for f in instr.flags if f.startswith("SR_"))
        sr_id = SPECIAL_REGISTERS[sr]
        if sr_id == 0:
            vals = warp.tids.astype(_U32)
        elif sr_id in (1, 2):
            vals = np.zeros(32, dtype=_U32)  # 1-D blocks only
        elif sr_id == 3:
            vals = np.full(32, ctx.block_idx, dtype=_U32)
        elif sr_id == 4:
            vals = np.full(32, ctx.block_idx_y, dtype=_U32)
        elif sr_id == 5:
            vals = np.full(32, ctx.block_idx_z, dtype=_U32)
        elif sr_id == 6:
            vals = warp.lane_ids.astype(_U32)
        else:
            vals = np.full(32, warp.warp_id, dtype=_U32)
        warp.write_reg(instr.dest.index, vals, mask)
        return ExecResult("mio", pipe_cycles=1, variable_latency=12)

    # ---- memory -----------------------------------------------------------
    if spec.is_load or spec.is_store:
        width = width_of(instr.flags)
        base = instr.mem.base.index
        if base == RZ:
            addrs = np.full(32, instr.mem.offset, dtype=np.int64)
        elif "E" in instr.flags:
            addrs = warp.read_addr64(base) + instr.mem.offset
        else:
            addrs = warp.read_reg(base).astype(np.int64) + instr.mem.offset
        if spec.mem_space == "global":
            # Each 32-byte sector is classified individually: a warp
            # straddling the L2-resident working set charges only its
            # resident sectors to L2 and the rest to DRAM.
            dram_sectors, l2_sectors = ctx.gmem.classify_sectors(addrs, width, mask)
            cycles = max(1, (int(mask.sum()) * width) // 128)
            if spec.is_load:
                vals = ctx.gmem.load_warp(addrs, width, mask)
                for i in range(width // 4):
                    warp.write_reg(instr.dest.index + i, vals[:, i], mask)
            else:
                data = np.stack(
                    [warp.read_reg(instr.srcs[-1].index + i) for i in range(width // 4)],
                    axis=1,
                )
                ctx.gmem.store_warp(addrs, data, width, mask)
            if spec.is_store:
                # The read-dependence barrier of a store clears once the
                # source registers are consumed into the store queue —
                # quickly — while the written sectors still charge DRAM.
                lat = 20
            elif ctx.device is None:
                lat = 200
            else:
                # The consumer waits for the access's slowest sector, so
                # one DRAM sector makes the whole load an L2 miss.
                lat = (
                    ctx.device.lat_gmem_l2_hit
                    if l2_sectors and not dram_sectors
                    else ctx.device.lat_gmem_l2_miss
                )
            return ExecResult(
                "lsu",
                pipe_cycles=cycles,
                variable_latency=lat,
                dram_sectors=dram_sectors,
                l2_sectors=l2_sectors,
            )
        if spec.mem_space == "shared":
            if spec.is_load:
                vals, report = ctx.smem.load_warp(addrs, width, mask)
                for i in range(width // 4):
                    warp.write_reg(instr.dest.index + i, vals[:, i], mask)
                lat = ctx.device.lat_smem if ctx.device else 19
            else:
                data = np.stack(
                    [warp.read_reg(instr.srcs[-1].index + i) for i in range(width // 4)],
                    axis=1,
                )
                report = ctx.smem.store_warp(addrs, data, width, mask)
                lat = 10
            return ExecResult(
                "mio",
                pipe_cycles=report.cycles,
                variable_latency=lat + (report.cycles - report.phases),
                smem_report=report,
            )
        if spec.mem_space == "constant":
            vals = np.zeros((32, width // 4), dtype=_U32)
            active = np.nonzero(mask)[0]
            for lane in active:
                off = int(addrs[lane])
                vals[lane] = ctx.const_bank[off : off + width].view(_U32)
            for i in range(width // 4):
                warp.write_reg(instr.dest.index + i, vals[:, i], mask)
            return ExecResult("mio", pipe_cycles=1, variable_latency=8)
        raise SimulatorError(f"unhandled memory space {spec.mem_space}")

    # ---- predicate pack/unpack (§3.5) ---------------------------------------
    if name == "P2R":
        pack_mask = instr.srcs[0].bits if isinstance(instr.srcs[0], Imm) else 0x7F
        vals = np.zeros(32, dtype=_U32)
        for i in range(7):
            if pack_mask & (1 << i):
                vals |= warp.preds[i].astype(_U32) << _U32(i)
        warp.write_reg(instr.dest.index, vals, mask)
        return ExecResult("alu", pipe_cycles=2)
    if name == "R2P":
        src = warp.read_reg(instr.srcs[0].index)
        unpack = instr.srcs[1].bits
        for i in range(7):
            if unpack & (1 << i):
                warp.write_pred(i, (src >> _U32(i)) & _U32(1) != 0, mask)
        return ExecResult("alu", pipe_cycles=2)

    # ---- predicate compare ----------------------------------------------------
    if name == "ISETP":
        a = _src_value(warp, ctx, instr.srcs[0])
        b = _src_value(warp, ctx, instr.srcs[1])
        if "U32" in instr.flags:
            a_cmp, b_cmp = a.astype(np.uint64), b.astype(np.uint64)
        else:
            a_cmp, b_cmp = _as_s32(a), _as_s32(b)
        cmp_name = next((f for f in instr.flags if f in SETP_CMP), "EQ")
        result = {
            "EQ": a_cmp == b_cmp,
            "NE": a_cmp != b_cmp,
            "LT": a_cmp < b_cmp,
            "LE": a_cmp <= b_cmp,
            "GT": a_cmp > b_cmp,
            "GE": a_cmp >= b_cmp,
        }[cmp_name]
        combine = warp.read_pred(instr.src_pred.index, instr.src_pred.negated)
        bool_name = next((f for f in instr.flags if f in SETP_BOOL), "AND")
        if bool_name == "AND":
            result = result & combine
        elif bool_name == "OR":
            result = result | combine
        else:
            result = result ^ combine
        warp.write_pred(instr.dest_preds[0].index, result, mask)
        return ExecResult("alu", pipe_cycles=2)

    # ---- ALU / FMA ---------------------------------------------------------
    srcs = [_src_value(warp, ctx, op) for op in instr.srcs]
    conflict = _register_bank_conflict(instr, warp)

    if name == "FFMA":
        a, b, c = (_as_f32(s) for s in srcs)
        out = _from_f32(a * b + c)
        pipe, cycles = "fma", 2
    elif name in ("HFMA2", "HADD2", "HMUL2"):
        # Packed fp16: each lane's 32-bit register is two half values.
        halves = [np.ascontiguousarray(s).view(np.float16) for s in srcs]
        if name == "HFMA2":
            res = halves[0] * halves[1] + halves[2]
        elif name == "HADD2":
            res = halves[0] + halves[1]
        else:
            res = halves[0] * halves[1]
        out = np.ascontiguousarray(res.astype(np.float16)).view(_U32)
        pipe, cycles = "fma", 2
    elif name == "FADD":
        out = _from_f32(_as_f32(srcs[0]) + _as_f32(srcs[1]))
        pipe, cycles = "fma", 2
    elif name == "FMUL":
        out = _from_f32(_as_f32(srcs[0]) * _as_f32(srcs[1]))
        pipe, cycles = "fma", 2
    elif name == "FMNMX":
        out = _from_f32(np.maximum(_as_f32(srcs[0]), _as_f32(srcs[1])))
        pipe, cycles = "fma", 2
    elif name == "MUFU":
        x = _as_f32(srcs[0])
        if "RCP" in instr.flags:
            with np.errstate(divide="ignore"):
                out = _from_f32(1.0 / x)
        elif "RSQ" in instr.flags:
            with np.errstate(divide="ignore", invalid="ignore"):
                out = _from_f32(1.0 / np.sqrt(x))
        else:
            raise SimulatorError(f"MUFU function {instr.flags} not implemented")
        warp.write_reg(instr.dest.index, out, mask)
        return ExecResult("mio", pipe_cycles=2, variable_latency=17)
    elif name == "IADD3":
        out = (srcs[0] + srcs[1] + srcs[2]).astype(_U32)
        pipe, cycles = "alu", 2
    elif name == "IMAD":
        if "WIDE" in instr.flags:
            if "U32" in instr.flags:
                prod = srcs[0].astype(np.uint64) * srcs[1].astype(np.uint64)
            else:
                prod = _as_s32(srcs[0]).astype(np.int64) * _as_s32(srcs[1]).astype(
                    np.int64
                )
            c_op = instr.srcs[2]
            if isinstance(c_op, Reg) and not c_op.is_rz:
                addend = warp.read_addr64(c_op.index)
            else:
                addend = srcs[2].astype(np.int64)
            total = (prod.astype(np.int64) + addend).astype(np.uint64)
            warp.write_reg(instr.dest.index, (total & 0xFFFFFFFF).astype(_U32), mask)
            warp.write_reg(instr.dest.index + 1, (total >> 32).astype(_U32), mask)
            return ExecResult("alu", pipe_cycles=2, reg_bank_conflict=conflict)
        out = (srcs[0] * srcs[1] + srcs[2]).astype(_U32)
        pipe, cycles = "alu", 2
    elif name == "LOP3":
        op_name = next((f for f in instr.flags if f in ("AND", "OR", "XOR")), "AND")
        a, b, c = srcs
        if op_name == "AND":
            out = (a & b) ^ c
        elif op_name == "OR":
            out = (a | b) ^ c
        else:
            out = a ^ b ^ c
        pipe, cycles = "alu", 2
    elif name == "SHF":
        a, sh, c = srcs
        sh = sh & _U32(31)
        if "L" in instr.flags:
            hi_in = np.where(sh > 0, c >> ((_U32(32) - sh) & _U32(31)), _U32(0))
            out = ((a << sh) | hi_in).astype(_U32)
        else:
            lo_shift = a >> sh
            hi_in = np.where(sh > 0, c << ((_U32(32) - sh) & _U32(31)), _U32(0))
            out = (lo_shift | hi_in).astype(_U32)
        pipe, cycles = "alu", 2
    elif name == "MOV":
        out = srcs[0]
        pipe, cycles = "alu", 2
    elif name == "SEL":
        out = srcs[0]  # predicate-select source not modelled; see DESIGN.md
        pipe, cycles = "alu", 2
    elif name == "CS2R":
        out = np.zeros(32, dtype=_U32)
        pipe, cycles = "alu", 2
    elif name == "POPC":
        out = np.array([bin(int(v)).count("1") for v in srcs[0]], dtype=_U32)
        pipe, cycles = "alu", 2
    else:
        raise SimulatorError(f"instruction {name} has no execution semantics")

    warp.write_reg(instr.dest.index, out, mask)
    return ExecResult(
        pipe, pipe_cycles=cycles + (1 if conflict and pipe == "fma" else 0),
        reg_bank_conflict=conflict,
    )
