"""Performance counters collected by the SM simulator.

The quantities the paper reports map directly onto these fields:

* main-loop TFLOPS (Figs. 7-9) = ``flops / (cycles / clock)``;
* Speed-Of-Light SM% (Figs. 10-11) = :meth:`Counters.sol` — the achieved
  fraction of FP32-pipe utilization, which is what Nsight Compute's
  ``SM [%]`` reduces to for an FFMA-bound kernel;
* bank conflicts and register-bank conflicts back the §4.3 claims.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class Counters:
    cycles: int = 0
    instructions: int = 0
    ffma_instrs: int = 0  # warp-level FFMA count
    fp32_instrs: int = 0  # all fp32-pipe warp instructions
    hfma2_instrs: int = 0  # packed-half FMA (4 flops per lane, §8.3)
    half2_instrs: int = 0  # other packed-half ops (2 flops per lane)
    fma_pipe_busy: int = 0  # scheduler-partition FP32 pipe busy cycles
    alu_pipe_busy: int = 0
    lsu_pipe_busy: int = 0
    mio_pipe_busy: int = 0
    dram_sectors: int = 0
    l2_sectors: int = 0
    smem_conflict_cycles: int = 0
    reg_bank_conflicts: int = 0
    warp_switches: int = 0
    switch_penalty_cycles: int = 0
    issue_idle_cycles: int = 0  # scheduler cycles with nothing eligible
    barrier_wait_cycles: int = 0

    # ------------------------------------------------------------------
    @property
    def flops(self) -> int:
        """Flops executed (FFMA = 2/lane, HFMA2 = 4, HADD2/HMUL2 = 2,
        other float ops 1)."""
        plain = self.fp32_instrs - self.ffma_instrs - self.hfma2_instrs - self.half2_instrs
        return 32 * (
            2 * self.ffma_instrs
            + 4 * self.hfma2_instrs
            + 2 * self.half2_instrs
            + plain
        )

    def seconds(self, clock_ghz: float) -> float:
        return self.cycles / (clock_ghz * 1e9)

    def tflops_per_sm(self, clock_ghz: float) -> float:
        """Achieved TFLOPS of the simulated SM."""
        if self.cycles == 0:
            return 0.0
        return self.flops / self.seconds(clock_ghz) / 1e12

    def sol(self, schedulers: int = 4) -> float:
        """FP32 pipe utilization (0..1): busy cycles over capacity."""
        if self.cycles == 0:
            return 0.0
        return self.fma_pipe_busy / (self.cycles * schedulers)

    def merge(self, other: "Counters") -> None:
        for field in dataclasses.fields(self):
            name = field.name
            if name == "cycles":
                self.cycles = max(self.cycles, other.cycles)
            else:
                setattr(self, name, getattr(self, name) + getattr(other, name))
