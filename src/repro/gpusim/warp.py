"""Per-warp architectural state.

Registers are held as a (256, 32) uint32 array — one row per register,
one column per lane — so a warp instruction is one vectorized NumPy
operation over its 32 lanes (the SIMT execution model, literally).
R255 is RZ and always reads zero; predicates are a (8, 32) bool array
with P7 = PT pinned true.

The warp also owns the microarchitectural bits the paper's SASS-level
experiments hinge on: the six scoreboard wait-barrier counters and the
operand **reuse cache** (two 64-bit register banks mean an FFMA whose
three sources share a bank pays one extra cycle unless a source comes
from the reuse cache — §5.2.2, Fig. 4).
"""

from __future__ import annotations

import numpy as np

from ..sass.isa import NUM_WAIT_BARRIERS, RZ


class WarpState:
    __slots__ = (
        "warp_id",
        "lane_ids",
        "tids",
        "block",
        "pc",
        "ready_at",
        "barrier_cnt",
        "done",
        "at_bar",
        "regs",
        "preds",
        "reuse_cache",
        "issued",
    )

    def __init__(self, warp_id: int, block, num_regs: int = 256):
        self.warp_id = warp_id
        self.block = block
        self.lane_ids = np.arange(32, dtype=np.int32)
        self.tids = warp_id * 32 + self.lane_ids  # threadIdx.x (1-D blocks)
        self.pc = 0
        self.ready_at = 0
        self.barrier_cnt = [0] * NUM_WAIT_BARRIERS
        self.done = False
        self.at_bar = False
        self.regs = np.zeros((256, 32), dtype=np.uint32)
        self.preds = np.zeros((8, 32), dtype=bool)
        self.preds[7] = True  # PT
        self.reuse_cache: dict[int, int] = {}  # operand slot -> register index
        self.issued = 0

    # ---- register access --------------------------------------------------
    def read_reg(self, idx: int) -> np.ndarray:
        return self.regs[idx]

    def read_reg_f32(self, idx: int) -> np.ndarray:
        return self.regs[idx].view(np.float32)

    def write_reg(self, idx: int, values: np.ndarray, mask: np.ndarray) -> None:
        if idx == RZ:
            return
        if mask.all():
            self.regs[idx] = values.astype(np.uint32, copy=False)
        else:
            self.regs[idx][mask] = values.astype(np.uint32, copy=False)[mask]

    def read_addr64(self, base: int) -> np.ndarray:
        """64-bit address from the (base, base+1) register pair."""
        lo = self.regs[base].astype(np.int64)
        hi = self.regs[base + 1].astype(np.int64) if base + 1 < 256 else 0
        return lo | (hi << 32)

    # ---- predicates --------------------------------------------------------
    def read_pred(self, idx: int, negated: bool = False) -> np.ndarray:
        values = self.preds[idx]
        return ~values if negated else values

    def write_pred(self, idx: int, values: np.ndarray, mask: np.ndarray) -> None:
        if idx == 7:
            return  # PT is read-only
        self.preds[idx][mask] = values[mask]

    # ---- scoreboard ---------------------------------------------------------
    def waits_satisfied(self, wait_mask: int) -> bool:
        for i in range(NUM_WAIT_BARRIERS):
            if wait_mask & (1 << i) and self.barrier_cnt[i] > 0:
                return False
        return True

    def clear_reuse(self) -> None:
        self.reuse_cache.clear()
