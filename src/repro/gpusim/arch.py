"""Device specifications for the simulated GPUs.

The two devices of the paper's evaluation:

* **Tesla V100** (Volta, GV100): 80 SMs, 64 FP32 lanes/SM, 1.53 GHz →
  15.7 TFLOPS peak FP32 (the number printed on Fig. 2), 900 GB/s HBM2,
  up to 96 KB shared memory per SM.
* **GeForce RTX 2070** (Turing, TU106): 36 SMs, 64 FP32 lanes/SM,
  1.62 GHz boost → ≈7.5 TFLOPS, 448 GB/s GDDR6, 64 KB shared memory per
  SM (the Turing limit that halves occupancy vs V100 for 48 KB blocks,
  §7.1).

Both architectures share the SM front end this simulator models: 4 warp
schedulers per SM, one instruction issued per scheduler per cycle, a
16-lane FP32 pipe per scheduler partition (a 32-thread warp instruction
occupies it for 2 cycles), two 64-bit register banks, 6 scoreboard
barriers and up to 255 registers per thread.
"""

from __future__ import annotations

import dataclasses
import math

from ..common.errors import SimLaunchError


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    name: str
    arch: str  # "volta" | "turing"
    num_sms: int
    clock_ghz: float
    fp32_lanes_per_sm: int = 64
    schedulers_per_sm: int = 4
    max_warps_per_sm: int = 64  # Turing: 32
    max_threads_per_block: int = 1024
    registers_per_sm: int = 65536
    max_registers_per_thread: int = 255
    smem_per_sm: int = 96 * 1024  # Turing: 64 KB
    smem_per_block: int = 96 * 1024
    dram_gbps: float = 900.0
    l2_bytes: int = 6 * 1024 * 1024
    l2_gbps: float = 2500.0  # Fig. 2's L2 roofline
    # LSU queue: warp-level global accesses that may be in flight per SM
    # before further LDG/STG issue stalls (the §6.2 "overwhelm the
    # load/store unit" mechanism behind the LDG-interleave study).
    lsu_queue_depth: int = 64
    # Latencies (cycles), after Jia et al. [5] / Mei & Chu [13].
    lat_gmem_l2_hit: int = 193
    lat_gmem_l2_miss: int = 375
    lat_smem: int = 19
    lat_s2r: int = 12
    lat_mufu: int = 17

    @property
    def peak_fp32_tflops(self) -> float:
        """2 flops × lanes × SMs × clock."""
        return 2 * self.fp32_lanes_per_sm * self.num_sms * self.clock_ghz / 1e3

    @property
    def warps_per_scheduler(self) -> int:
        return self.max_warps_per_sm // self.schedulers_per_sm

    @property
    def dram_bytes_per_cycle_per_sm(self) -> float:
        """Fair-share DRAM bandwidth per SM, in bytes per SM clock."""
        return self.dram_gbps / self.clock_ghz / self.num_sms

    # ------------------------------------------------------------------
    def occupancy(
        self, threads_per_block: int, registers_per_thread: int, smem_bytes: int
    ) -> int:
        """Concurrent thread blocks per SM (the §7.1 occupancy argument)."""
        if threads_per_block > self.max_threads_per_block:
            raise SimLaunchError(
                f"{threads_per_block} threads/block exceeds the limit "
                f"{self.max_threads_per_block}"
            )
        if registers_per_thread > self.max_registers_per_thread:
            raise SimLaunchError(
                f"{registers_per_thread} registers/thread exceeds "
                f"{self.max_registers_per_thread}"
            )
        if smem_bytes > self.smem_per_block:
            raise SimLaunchError(
                f"{smem_bytes} B shared memory exceeds the per-block limit "
                f"{self.smem_per_block} on {self.name}"
            )
        warps = math.ceil(threads_per_block / 32)
        by_warps = self.max_warps_per_sm // warps
        # The register file allocates per warp in 256-register granules.
        regs_per_warp = max(registers_per_thread, 1) * 32
        by_regs = self.registers_per_sm // (regs_per_warp * warps)
        by_smem = (
            self.smem_per_sm // smem_bytes if smem_bytes > 0 else self.max_warps_per_sm
        )
        return max(0, min(by_warps, by_regs, by_smem))


V100 = DeviceSpec(
    name="Tesla V100",
    arch="volta",
    num_sms=80,
    clock_ghz=1.53,
    max_warps_per_sm=64,
    smem_per_sm=96 * 1024,
    smem_per_block=96 * 1024,
    dram_gbps=900.0,
    l2_bytes=6 * 1024 * 1024,
)

RTX2070 = DeviceSpec(
    name="GeForce RTX 2070",
    arch="turing",
    num_sms=36,
    clock_ghz=1.62,
    max_warps_per_sm=32,
    smem_per_sm=64 * 1024,
    smem_per_block=64 * 1024,
    dram_gbps=448.0,
    l2_bytes=4 * 1024 * 1024,
    l2_gbps=1200.0,
    lat_gmem_l2_hit=188,
    lat_gmem_l2_miss=296,
)

DEVICES = {"V100": V100, "RTX2070": RTX2070}
