"""Device specifications for the simulated GPUs.

The two devices of the paper's evaluation:

* **Tesla V100** (Volta, GV100): 80 SMs, 64 FP32 lanes/SM, 1.53 GHz →
  15.7 TFLOPS peak FP32 (the number printed on Fig. 2), 900 GB/s HBM2,
  up to 96 KB shared memory per SM.
* **GeForce RTX 2070** (Turing, TU106): 36 SMs, 64 FP32 lanes/SM,
  1.62 GHz boost → ≈7.5 TFLOPS, 448 GB/s GDDR6, 64 KB shared memory per
  SM (the Turing limit that halves occupancy vs V100 for 48 KB blocks,
  §7.1).

Both architectures share the SM front end this simulator models: 4 warp
schedulers per SM, one instruction issued per scheduler per cycle, a
16-lane FP32 pipe per scheduler partition (a 32-thread warp instruction
occupies it for 2 cycles), two 64-bit register banks, 6 scoreboard
barriers and up to 255 registers per thread.
"""

from __future__ import annotations

import dataclasses
import math
import os

from ..common.errors import DeviceError, SimLaunchError


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    name: str
    arch: str  # "volta" | "turing"
    num_sms: int
    clock_ghz: float
    fp32_lanes_per_sm: int = 64
    schedulers_per_sm: int = 4
    max_warps_per_sm: int = 64  # Turing: 32
    max_threads_per_block: int = 1024
    registers_per_sm: int = 65536
    max_registers_per_thread: int = 255
    smem_per_sm: int = 96 * 1024  # Turing: 64 KB
    smem_per_block: int = 96 * 1024
    dram_gbps: float = 900.0
    l2_bytes: int = 6 * 1024 * 1024
    l2_gbps: float = 2500.0  # Fig. 2's L2 roofline
    # LSU queue: warp-level global accesses that may be in flight per SM
    # before further LDG/STG issue stalls (the §6.2 "overwhelm the
    # load/store unit" mechanism behind the LDG-interleave study).
    lsu_queue_depth: int = 64
    # Latencies (cycles), after Jia et al. [5] / Mei & Chu [13].
    lat_gmem_l2_hit: int = 193
    lat_gmem_l2_miss: int = 375
    lat_smem: int = 19
    lat_s2r: int = 12
    lat_mufu: int = 17

    @property
    def peak_fp32_tflops(self) -> float:
        """2 flops × lanes × SMs × clock."""
        return 2 * self.fp32_lanes_per_sm * self.num_sms * self.clock_ghz / 1e3

    @property
    def warps_per_scheduler(self) -> int:
        return self.max_warps_per_sm // self.schedulers_per_sm

    @property
    def dram_bytes_per_cycle_per_sm(self) -> float:
        """Fair-share DRAM bandwidth per SM, in bytes per SM clock."""
        return self.dram_gbps / self.clock_ghz / self.num_sms

    # ------------------------------------------------------------------
    def occupancy(
        self, threads_per_block: int, registers_per_thread: int, smem_bytes: int
    ) -> int:
        """Concurrent thread blocks per SM (the §7.1 occupancy argument)."""
        if threads_per_block > self.max_threads_per_block:
            raise SimLaunchError(
                f"{threads_per_block} threads/block exceeds the limit "
                f"{self.max_threads_per_block}"
            )
        if registers_per_thread > self.max_registers_per_thread:
            raise SimLaunchError(
                f"{registers_per_thread} registers/thread exceeds "
                f"{self.max_registers_per_thread}"
            )
        if smem_bytes > self.smem_per_block:
            raise SimLaunchError(
                f"{smem_bytes} B shared memory exceeds the per-block limit "
                f"{self.smem_per_block} on {self.name}"
            )
        warps = math.ceil(threads_per_block / 32)
        by_warps = self.max_warps_per_sm // warps
        # The register file allocates per warp in 256-register granules.
        regs_per_warp = max(registers_per_thread, 1) * 32
        by_regs = self.registers_per_sm // (regs_per_warp * warps)
        by_smem = (
            self.smem_per_sm // smem_bytes if smem_bytes > 0 else self.max_warps_per_sm
        )
        return max(0, min(by_warps, by_regs, by_smem))

    def to_dict(self) -> dict:
        """Every simulator-visible constant, for baseline fingerprints.

        The perf-regression gate embeds this export in each checked-in
        baseline so that editing a device constant (an SM count, a
        latency) invalidates the baseline loudly instead of silently
        comparing cycles produced by two different machines.
        """
        payload = dataclasses.asdict(self)
        payload["peak_fp32_tflops"] = round(self.peak_fp32_tflops, 3)
        return payload


V100 = DeviceSpec(
    name="Tesla V100",
    arch="volta",
    num_sms=80,
    clock_ghz=1.53,
    max_warps_per_sm=64,
    smem_per_sm=96 * 1024,
    smem_per_block=96 * 1024,
    dram_gbps=900.0,
    l2_bytes=6 * 1024 * 1024,
)

RTX2070 = DeviceSpec(
    name="GeForce RTX 2070",
    arch="turing",
    num_sms=36,
    clock_ghz=1.62,
    max_warps_per_sm=32,
    smem_per_sm=64 * 1024,
    smem_per_block=64 * 1024,
    dram_gbps=448.0,
    l2_bytes=4 * 1024 * 1024,
    l2_gbps=1200.0,
    lat_gmem_l2_hit=188,
    lat_gmem_l2_miss=296,
)

DEVICES = {"V100": V100, "RTX2070": RTX2070}

#: Informal names accepted by :func:`resolve_device` beside registry
#: keys and full spec names (all matched case-insensitively).
DEVICE_ALIASES = {
    "volta": "V100",
    "gv100": "V100",
    "tesla v100": "V100",
    "turing": "RTX2070",
    "tu106": "RTX2070",
    "2070": "RTX2070",
    "geforce rtx 2070": "RTX2070",
}

#: Environment variable consulted by :func:`resolve_device` when no
#: device is given — the fleet knob CI's device matrix sets per job.
DEVICE_ENV_VAR = "REPRO_DEVICE"

#: Latency windows (cycles) the registry enforces per architecture,
#: after the microbenchmarking literature: Volta from the Citadel study
#: (Jia et al., "Dissecting the NVIDIA Volta GPU Architecture via
#: Microbenchmarking" — shared ≈19, L2 ≈193, DRAM ≈375 cycles) and
#: Turing from its follow-up (L2 ≈188, DRAM ≈296) plus Mei & Chu.  A
#: spec whose latencies drift outside these windows would make every
#: simulated cycle count — and every checked-in baseline — quietly
#: wrong, so registration fails instead.
LATENCY_BOUNDS = {
    "volta": {
        "lat_gmem_l2_hit": (180, 220),
        "lat_gmem_l2_miss": (350, 450),
        "lat_smem": (19, 28),
        "lat_s2r": (6, 20),
        "lat_mufu": (10, 30),
    },
    "turing": {
        "lat_gmem_l2_hit": (160, 215),
        "lat_gmem_l2_miss": (280, 440),
        "lat_smem": (19, 30),
        "lat_s2r": (6, 20),
        "lat_mufu": (10, 30),
    },
}


def validate_device(spec: DeviceSpec) -> None:
    """Sanity-check *spec* before it can enter the registry.

    Raises :class:`~repro.common.errors.DeviceError` on a non-positive
    structural constant or a latency outside the architecture's
    microbenchmarked window (:data:`LATENCY_BOUNDS`).  Architectures
    without a published window (a future arch string) skip the latency
    check but still validate structure.
    """
    for field in ("num_sms", "clock_ghz", "fp32_lanes_per_sm",
                  "schedulers_per_sm", "max_warps_per_sm",
                  "max_threads_per_block", "registers_per_sm",
                  "smem_per_sm", "smem_per_block", "dram_gbps",
                  "l2_bytes", "lsu_queue_depth"):
        value = getattr(spec, field)
        if value <= 0:
            raise DeviceError(
                f"device {spec.name!r}: {field} must be positive, got {value}"
            )
    if spec.smem_per_block > spec.smem_per_sm:
        raise DeviceError(
            f"device {spec.name!r}: smem_per_block ({spec.smem_per_block}) "
            f"exceeds smem_per_sm ({spec.smem_per_sm})"
        )
    bounds = LATENCY_BOUNDS.get(spec.arch)
    if bounds is None:
        return
    for field, (lo, hi) in bounds.items():
        value = getattr(spec, field)
        if not lo <= value <= hi:
            raise DeviceError(
                f"device {spec.name!r}: {field}={value} outside the "
                f"microbenchmarked {spec.arch} window [{lo}, {hi}] "
                "(see gpusim.arch.LATENCY_BOUNDS)"
            )


def register_device(key: str, spec: DeviceSpec) -> DeviceSpec:
    """Add *spec* to the registry under *key* (validated first).

    Re-registering an existing key with a different spec raises — a
    silently replaced device would invalidate every baseline keyed on
    that name.
    """
    if not key:
        raise DeviceError("device registry key must be non-empty")
    validate_device(spec)
    existing = DEVICES.get(key)
    if existing is not None and existing != spec:
        raise DeviceError(
            f"device key {key!r} is already registered with a different "
            "spec; pick a new key instead of redefining an existing device"
        )
    DEVICES[key] = spec
    return spec


def device_key(spec: DeviceSpec) -> str | None:
    """The registry key of *spec* (``None`` for unregistered specs)."""
    for key, known in DEVICES.items():
        if known == spec:
            return key
    return None


def canonical_device_key(name: str) -> str:
    """Resolve any accepted device name to its registry key.

    Accepts registry keys (any case), full spec names ("Tesla V100")
    and :data:`DEVICE_ALIASES` ("volta", "turing", ...).  Raises
    :class:`~repro.common.errors.DeviceError` naming the known devices
    otherwise.
    """
    for key in DEVICES:
        if key.lower() == name.lower():
            return key
    for key, spec in DEVICES.items():
        if spec.name.lower() == name.lower():
            return key
    alias = DEVICE_ALIASES.get(name.lower())
    if alias is not None and alias in DEVICES:
        return alias
    raise DeviceError(
        f"unknown device {name!r}; known devices: {sorted(DEVICES)} "
        f"(aliases: {sorted(DEVICE_ALIASES)})"
    )


def resolve_device(device: DeviceSpec | str | None = None) -> DeviceSpec:
    """The :class:`DeviceSpec` for *device*, however it was named.

    * a :class:`DeviceSpec` passes through unchanged;
    * a string resolves via :func:`canonical_device_key`;
    * ``None`` consults the ``REPRO_DEVICE`` environment variable, and
      falls back to V100 (the historical default) when unset.
    """
    if isinstance(device, DeviceSpec):
        return device
    if device is None:
        env = os.environ.get(DEVICE_ENV_VAR)
        if not env:
            return V100
        device = env
    if not isinstance(device, str):
        raise DeviceError(
            f"device must be a DeviceSpec, a name, or None; got {device!r}"
        )
    return DEVICES[canonical_device_key(device)]
