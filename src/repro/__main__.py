"""Single console entry point: ``python -m repro <command>``.

Commands::

    python -m repro sass ...       # assemble/disassemble/lint SASS
    python -m repro kernels ...    # generate the paper's kernels
    python -m repro session ...    # run an InferenceSession end to end
    python -m repro sched ...      # search the SASS schedule space
    python -m repro serve ...      # async serving frontend demo

``python -m repro.sass`` and ``python -m repro.kernels`` keep working as
thin aliases of the first two; ``session`` is the unified runtime's CLI
(see ``repro.runtime.cli``) and ``sched`` the schedule autotuner's
(see ``repro.sched.cli``).
"""

from __future__ import annotations

import sys

COMMANDS = ("sass", "kernels", "session", "sched", "serve")

_USAGE = (
    "usage: python -m repro {sass,kernels,session,sched,serve} ...\n"
    "\n"
    "  sass      assemble, disassemble and inspect Volta/Turing SASS\n"
    "  kernels   generate the paper's SASS kernels\n"
    "  session   plan and run a layer stack through the unified runtime\n"
    "  sched     autotune the fused kernel's SASS instruction schedule\n"
    "  serve     demo the async serving frontend with dynamic batching\n"
)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    # Dispatch by hand (not one big argparse tree) so each sub-CLI keeps
    # its own parser, --help text and exit codes unchanged.
    if command == "sass":
        from .sass.__main__ import main as sass_main

        return sass_main(rest)
    if command == "kernels":
        from .kernels.__main__ import main as kernels_main

        return kernels_main(rest)
    if command == "session":
        from .runtime.cli import main as session_main

        return session_main(["session", *rest])
    if command == "sched":
        from .sched.cli import main as sched_main

        return sched_main(rest)
    if command == "serve":
        from .serving.cli import main as serve_main

        return serve_main(["serve", *rest])
    print(f"unknown command {command!r}\n{_USAGE}", end="", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
