"""Serving-policy knobs for the async batching frontend.

One frozen dataclass so a deployment's batching policy is a value you
can log, diff and put in a benchmark artifact.  The three core knobs are
the classic dynamic-batching triple (Clipper's adaptive batching, see
PAPERS.md): how large a batch may grow (``max_batch``), how long the
oldest request may wait for companions (``max_queue_delay_s``), and how
deep a signature's queue may get before admission control sheds load
(``max_queue_depth``).
"""

from __future__ import annotations

import dataclasses

from ..common.errors import ServingError


@dataclasses.dataclass(frozen=True)
class ServingConfig:
    """Policy for one :class:`~repro.serving.frontend.ServingFrontend`.

    Attributes
    ----------
    max_batch: upper bound on the batch dimension N a formed batch may
        reach (the paper's whole thesis is that N drives throughput —
        this is how far the frontend will push it per dispatch).
    max_queue_delay_s: deadline-driven flush — the oldest queued request
        is never *held open* waiting for companions longer than this.
        (Its end-to-end latency can still exceed the deadline while a
        previous batch of the same signature is executing; that time is
        backpressure, not batching delay.)
    max_queue_depth: per-signature admission bound; a submit that finds
        the queue at this depth is rejected with
        :class:`~repro.common.errors.BackpressureError` (``queue_full``).
    dispatch_workers: threads executing batched dispatches, i.e. how
        many *different* signatures may be in flight at once (batches of
        one signature always serialize so a tenant's arena accounting
        stays honest).
    mode: session mode compiled for formed batches — ``AUTO_HEURISTIC``
        (default), ``AUTO``, or a concrete algorithm name.
    workspace_limit_bytes: per-tenant arena budget (``None`` =
        unlimited).  Batch formation is budget-aware: the effective
        batch cap per model is the largest N whose planned workspace
        still fits, and a dispatch that loses the race anyway surfaces
        as typed backpressure, never a raw ``WorkspaceLimitError``.
    deadline_slack_s: tolerance when auditing the flush deadline; a
        not-full batch that slept past ``max_queue_delay_s`` by more
        than this counts as a ``deadline_overshoots`` policy violation
        in the metrics (CI fails on any).
    """

    max_batch: int = 32
    max_queue_delay_s: float = 0.002
    max_queue_depth: int = 1024
    dispatch_workers: int = 1
    mode: str = "AUTO_HEURISTIC"
    workspace_limit_bytes: int | None = None
    deadline_slack_s: float = 0.050

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_queue_delay_s < 0:
            raise ServingError(
                f"max_queue_delay_s must be >= 0, got {self.max_queue_delay_s}"
            )
        if self.max_queue_depth < 1:
            raise ServingError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.dispatch_workers < 1:
            raise ServingError(
                f"dispatch_workers must be >= 1, got {self.dispatch_workers}"
            )
        if self.workspace_limit_bytes is not None and self.workspace_limit_bytes < 0:
            raise ServingError(
                "workspace_limit_bytes must be >= 0 or None, "
                f"got {self.workspace_limit_bytes}"
            )
        if self.deadline_slack_s < 0:
            raise ServingError(
                f"deadline_slack_s must be >= 0, got {self.deadline_slack_s}"
            )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)
