"""Multi-device fleet routing: place each model on the device that wins.

The paper evaluates on two machines (Tesla V100 and RTX 2070) and its
§7.1 occupancy analysis is explicitly per-device: the same 48 KB fused
kernel keeps two blocks resident on Volta's 96 KB SMs but only one on
Turing's 64 KB.  A serving deployment therefore faces a *placement*
problem — which simulated device should host which model — and the
right input to that decision is the same machinery the runtime already
trusts: the schedule search's measured main-loop cycles, the kernel
generators' launch metadata, and :meth:`DeviceSpec.occupancy`.

:class:`FleetRouter` owns one :class:`~repro.serving.frontend.ServingFrontend`
per device plus a per-device *planning*
:class:`~repro.runtime.ExecutionContext` whose
:class:`~repro.sched.ScheduleBook` memoizes each device's searched
schedule.  ``register_model`` estimates the model's steady-state cost on
every device:

* fused-eligible layers (3×3 / pad-1 / stride-1) are costed with the
  wave model — ``waves × iters × winner_cycles / clock`` — using the
  device's **own searched schedule** winner and the generator's real
  launch metadata (grid, registers, shared memory), so the estimate is
  workspace- and occupancy-aware;
* everything else falls back to the calibrated analytical models
  (:func:`repro.perfmodel.selection.predicted_time`), with workspace
  exclusions from :func:`~repro.perfmodel.selection.rank_algorithms`.

Placement is **greedy load-aware**: the model goes to the device
minimizing ``accumulated_load + cost`` — a pure fastest-device argmin
would park the whole fleet on the V100; balancing against accumulated
load is what makes a heterogeneous fleet actually serve from both
machines.  Every decision is traced (a ``"route"`` span on the chosen
device's planning context) and exported by :meth:`FleetRouter.stats`.

Cross-device *migration* cost — what a schedule tuned on one device
loses on another — is quantified separately by
:func:`repro.sched.crossdev.validate_plan_on`.
"""

from __future__ import annotations

import dataclasses
import math

from ..common.errors import ReproError, ServingError
from ..gpusim.arch import DeviceSpec, canonical_device_key, resolve_device
from ..runtime.context import ExecutionContext
from .config import ServingConfig
from .frontend import ModelSpec, ServingFrontend

#: Fused tile families the router costs with the wave model, mapped from
#: the dispatcher algorithm names ``rank_algorithms`` emits.
_FUSED_FAMILIES = {"WINOGRAD": "f22", "WINOGRAD_F44": "f44"}


@dataclasses.dataclass(frozen=True)
class RoutingDecision:
    """One model's placement: every device's bid and who won.

    ``costs`` holds the estimated steady-state seconds per device for a
    full ``max_batch`` pass of the model's layer stack; ``loads`` the
    accumulated load on each device *before* this placement.  The chosen
    device minimizes ``loads + costs``.  ``notes`` records per-device
    costing caveats (workspace exclusions, occupancy fallbacks).
    """

    tenant: str
    model: str
    device: str
    costs: dict[str, float]
    loads: dict[str, float]
    notes: dict[str, list[str]]

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "model": self.model,
            "device": self.device,
            "costs": dict(self.costs),
            "loads": dict(self.loads),
            "notes": {k: list(v) for k, v in self.notes.items()},
        }


class _FleetDevice:
    """One device's slice of the fleet: frontend, planning context, load."""

    def __init__(self, key: str, spec: DeviceSpec, config: ServingConfig):
        self.key = key
        self.spec = spec
        self.frontend = ServingFrontend(config, device=spec)
        # The planning context is routing-only state: its schedule book
        # memoizes this device's search so costing N models pays for at
        # most one search per tile family.  Tenant isolation is unaffected
        # — serving traffic runs in the frontend's per-tenant contexts.
        self.planning = ExecutionContext(device=spec)
        self.load_s = 0.0


class FleetRouter:
    """Routes models onto a fleet of simulated devices; serves through them.

    Usage::

        router = FleetRouter(("V100", "RTX2070"),
                             ServingConfig(max_batch=32))
        router.register_model("tenant-a", model)     # placed + registered
        outs = await router.submit("tenant-a", model.name, image)
        print(router.stats()["routing"])
        await router.close()

    ``search_config`` defaults to each family's full searchable grid via
    :meth:`~repro.sched.ScheduleSearchConfig.for_tile`; pass a quick
    config (e.g. ``ScheduleSearchConfig(space=QUICK_SPACE)``) to keep
    placement cheap.  ``cost_fn(model, device_key, spec) -> seconds``
    overrides the built-in estimator entirely (tests use this to pin
    routing behavior without running searches).
    """

    def __init__(
        self,
        devices=("V100", "RTX2070"),
        config: ServingConfig | None = None,
        *,
        search_config=None,
        cost_fn=None,
    ):
        if not devices:
            raise ServingError("FleetRouter needs at least one device")
        self.config = config or ServingConfig()
        self.search_config = search_config
        self._cost_fn = cost_fn
        self._devices: dict[str, _FleetDevice] = {}
        for dev in devices:
            if isinstance(dev, DeviceSpec):
                from ..gpusim.arch import device_key

                key = device_key(dev) or dev.name
                spec = dev
            else:
                key = canonical_device_key(dev)
                spec = resolve_device(key)
            if key in self._devices:
                raise ServingError(f"duplicate fleet device {key!r}")
            self._devices[key] = _FleetDevice(key, spec, self.config)
        self._placements: dict[tuple[str, str], str] = {}
        self._decisions: list[RoutingDecision] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def device_keys(self) -> list[str]:
        return list(self._devices)

    def planning_context(self, device: str) -> ExecutionContext:
        """The named device's routing context (schedule book lives here)."""
        return self._device(device).planning

    def frontend(self, device: str) -> ServingFrontend:
        """The named device's serving frontend."""
        return self._device(device).frontend

    def placement(self, tenant: str, model: str) -> str:
        """Which device key serves ``tenant/model``."""
        try:
            return self._placements[(tenant, model)]
        except KeyError:
            raise ServingError(
                f"no placement for {tenant!r}/{model!r}; register it first"
            ) from None

    def _device(self, device: str) -> _FleetDevice:
        key = canonical_device_key(device)
        try:
            return self._devices[key]
        except KeyError:
            raise ServingError(
                f"device {key!r} is not part of this fleet "
                f"(fleet: {sorted(self._devices)})"
            ) from None

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def _fused_layer_cost(self, dev: _FleetDevice, prob, family: str) -> float:
        """Wave-model seconds of one fused layer on *dev*.

        Uses the device's own searched schedule winner (memoized on the
        planning context's book) and the generator's launch metadata, so
        two devices bid with their genuinely different occupancies and
        measured main-loop throughputs.
        """
        from ..kernels.winograd_fused import kernel_for_tile
        from ..sched.search import ensure_schedule
        from ..winograd.tilespec import get_tile

        spec = get_tile(family)
        result = ensure_schedule(
            device=dev.spec, config=self.search_config,
            context=dev.planning, tile=spec,
        )
        tunables = result.best.schedule.to_tunables(None, spec)
        gen = kernel_for_tile(prob, spec, tunables)
        blocks = gen.grid[0] * gen.grid[1]
        occupancy = dev.spec.occupancy(256, gen.num_regs, gen.launch_smem_bytes)
        if occupancy < 1:
            raise ServingError(
                f"{family} kernel cannot be resident on {dev.key} "
                f"({gen.launch_smem_bytes} B smem/block)"
            )
        iters = prob.c // spec.bc
        waves = math.ceil(blocks / (dev.spec.num_sms * occupancy))
        cycles = waves * iters * result.best.cycles_per_iter
        return cycles / (dev.spec.clock_ghz * 1e9)

    def _model_cost(self, model: ModelSpec, dev: _FleetDevice) -> tuple[float, list[str]]:
        """(estimated seconds, costing notes) for a full-batch pass."""
        from ..perfmodel.selection import predicted_time, rank_algorithms

        total = 0.0
        notes: list[str] = []
        limit = self.config.workspace_limit_bytes
        for prob in model.problems:
            batched = prob.with_batch(self.config.max_batch)
            ranked, excluded = rank_algorithms(batched, dev.spec, limit)
            for algo, reason in excluded.items():
                if "workspace" in reason:
                    notes.append(f"{batched.label()}: {algo} excluded ({reason})")
            best = math.inf
            for algo in ranked:
                family = _FUSED_FAMILIES.get(algo)
                if family is not None:
                    try:
                        est = self._fused_layer_cost(dev, batched, family)
                    except ReproError as exc:
                        notes.append(f"{batched.label()}: {algo} -> model ({exc})")
                        est = predicted_time(batched, dev.spec, algo)
                else:
                    est = predicted_time(batched, dev.spec, algo)
                best = min(best, est)
            total += best
        return total, notes

    # ------------------------------------------------------------------
    # Placement + registration
    # ------------------------------------------------------------------
    def place(self, tenant: str, model: ModelSpec) -> RoutingDecision:
        """Pick a device for *model*: argmin(accumulated load + cost).

        Pure costing + bookkeeping — does not register the model (see
        :meth:`register_model` for the one-call path).
        """
        costs: dict[str, float] = {}
        notes: dict[str, list[str]] = {}
        for key, dev in self._devices.items():
            if self._cost_fn is not None:
                costs[key] = float(self._cost_fn(model, key, dev.spec))
                notes[key] = []
            else:
                costs[key], notes[key] = self._model_cost(model, dev)
        loads = {key: dev.load_s for key, dev in self._devices.items()}
        chosen = min(costs, key=lambda k: (loads[k] + costs[k], k))
        decision = RoutingDecision(
            tenant=tenant,
            model=model.name,
            device=chosen,
            costs=costs,
            loads=loads,
            notes=notes,
        )
        dev = self._devices[chosen]
        dev.load_s += costs[chosen]
        with dev.planning.span(
            "route", f"{tenant}/{model.name}", device=chosen,
            cost_s=costs[chosen],
        ) as span:
            span["alternatives"] = {
                k: loads[k] + costs[k] for k in costs if k != chosen
            }
        self._decisions.append(decision)
        return decision

    def register_model(self, tenant: str, model: ModelSpec) -> RoutingDecision:
        """Place *model* and register it with the winning device's frontend."""
        key = (tenant, model.name)
        if key in self._placements:
            raise ServingError(
                f"tenant {tenant!r} already has a model named {model.name!r}"
            )
        decision = self.place(tenant, model)
        self._devices[decision.device].frontend.register_model(tenant, model)
        self._placements[key] = decision.device
        return decision

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    async def submit(self, tenant: str, model: str, inputs):
        """Route one request to the device serving ``tenant/model``."""
        device = self.placement(tenant, model)
        return await self._devices[device].frontend.submit(tenant, model, inputs)

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Routing decisions plus every device frontend's serving stats."""
        return {
            "devices": {
                key: {
                    "device": dev.spec.name,
                    "load_s": dev.load_s,
                    "models": sum(
                        1 for d in self._placements.values() if d == key
                    ),
                    "serving": dev.frontend.stats(),
                }
                for key, dev in self._devices.items()
            },
            "routing": [d.to_dict() for d in self._decisions],
        }

    async def close(self) -> None:
        for dev in self._devices.values():
            await dev.frontend.close()

    async def __aenter__(self) -> "FleetRouter":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
