"""Async serving frontend: dynamic batching over the unified runtime.

The paper's central result is that the batch dimension N is what drives
Winograd throughput on GPUs (§7: one image's tiles cannot fill the
machine; a stack of them can).  The runtime below this module only
*executes* batches it is handed — this module is the layer that
**creates** them from concurrent single-image traffic, the way Clipper
does it (adaptive batch formation under a latency deadline; PAPERS.md):

1. Clients ``await frontend.submit(tenant, model, image)`` with N=1
   inputs.  Each (tenant, model) pair — the *layer-stack signature* —
   has its own queue.
2. A per-signature flusher coalesces queued requests into one batched
   :class:`~repro.common.problem.ConvProblem` stack, flushing when the
   batch reaches ``max_batch`` **or** the oldest request has waited
   ``max_queue_delay_s``, whichever comes first.
3. The formed batch runs through a cached
   :class:`~repro.runtime.session.InferenceSession` compiled for that
   batch size, inside the **tenant's own**
   :class:`~repro.runtime.context.ExecutionContext` — plan caches,
   schedule books, dispatch stats and the workspace arena never cross
   tenants.
4. Admission control sheds load instead of degrading everyone: a full
   signature queue or a dispatch that would blow the tenant's
   :class:`~repro.runtime.arena.WorkspaceArena` budget resolves the
   affected requests with a typed
   :class:`~repro.common.errors.BackpressureError` — a raw
   :class:`~repro.common.errors.WorkspaceLimitError` never reaches a
   client.

Everything observable lands in :class:`~repro.serving.metrics.ServingMetrics`
(:meth:`ServingFrontend.stats` exports it alongside each tenant's
dispatch stats and arena counters, and every batch records a ``batch``
trace span in the tenant's context).
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..common.errors import (
    BackpressureError,
    ReproError,
    ServingError,
    WorkspaceLimitError,
)
from ..common.problem import ConvProblem
from ..runtime.arena import _align
from ..runtime.context import ExecutionContext
from ..runtime.session import SESSION_MODES, InferenceSession
from .config import ServingConfig
from .metrics import ServingMetrics


@dataclasses.dataclass(frozen=True)
class ModelSpec:
    """One servable layer stack: N=1 problems plus their filters.

    Filters are part of the model (server-resident weights), not the
    request — that is what makes requests *batchable*: two requests to
    the same model differ only in their activations, so stacking them
    along N is exact.
    """

    name: str
    problems: tuple[ConvProblem, ...]
    filters: tuple[np.ndarray, ...]
    mode: str | None = None  # override the frontend-wide session mode

    def __post_init__(self) -> None:
        if not self.name:
            raise ServingError("ModelSpec needs a non-empty name")
        if not self.problems:
            raise ServingError(f"model {self.name!r} needs at least one layer")
        if len(self.problems) != len(self.filters):
            raise ServingError(
                f"model {self.name!r}: {len(self.problems)} layers but "
                f"{len(self.filters)} filters"
            )
        for prob, filt in zip(self.problems, self.filters):
            if not isinstance(prob, ConvProblem):
                raise ServingError(
                    f"model {self.name!r}: layers must be ConvProblem, got {prob!r}"
                )
            if prob.n != 1:
                raise ServingError(
                    f"model {self.name!r} layer {prob.label()}: serving models "
                    f"are single-image (n=1) stacks, got n={prob.n}; the "
                    "frontend forms the batch dimension"
                )
            expect = (prob.k, prob.c, prob.r, prob.s)
            if getattr(filt, "shape", None) != expect:
                raise ServingError(
                    f"model {self.name!r} layer {prob.label()}: filter shape "
                    f"{getattr(filt, 'shape', None)} != {expect}"
                )

    def signature(self) -> tuple:
        """The layer-stack signature batching keys on (geometry only)."""
        return tuple(
            (p.c, p.h, p.w, p.k, p.r, p.s, p.pad) for p in self.problems
        )


@dataclasses.dataclass
class _Request:
    """One queued single-image inference (internal)."""

    inputs: list[np.ndarray]  # one (1, C, H, W) activation per layer
    future: asyncio.Future
    submitted_at: float  # loop.time() at admission
    expires_at: float  # submitted_at + max_queue_delay_s


class _TenantState:
    """Per-tenant isolation unit: context, models, compiled sessions."""

    def __init__(self, name: str, context: ExecutionContext):
        self.name = name
        self.context = context
        self.models: dict[str, ModelSpec] = {}
        self.batch_caps: dict[str, int] = {}
        self.sessions: dict[tuple[str, int], InferenceSession] = {}
        self.lock = threading.Lock()  # sessions dict: dispatch threads race


class _SignatureQueue:
    """One (tenant, model) request queue plus its flusher task."""

    def __init__(self, frontend: "ServingFrontend", tenant: _TenantState,
                 model: ModelSpec):
        self.frontend = frontend
        self.tenant = tenant
        self.model = model
        self.key = (tenant.name, model.name)
        self.pending: collections.deque[_Request] = collections.deque()
        self.wake = asyncio.Event()
        self.task = asyncio.get_running_loop().create_task(
            self._run(), name=f"repro-serve-{tenant.name}-{model.name}"
        )

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        cfg = self.frontend.config
        metrics = self.frontend.metrics
        loop = asyncio.get_running_loop()
        cap = self.tenant.batch_caps[self.model.name]
        try:
            while True:
                while not self.pending:
                    self.wake.clear()
                    await self.wake.wait()
                # Batch window: grow until `cap` requests are queued or
                # the *oldest* request's deadline arrives.
                first = self.pending[0]
                slept = False
                while len(self.pending) < cap:
                    delay = first.expires_at - loop.time()
                    if delay <= 0:
                        break
                    slept = True
                    self.wake.clear()
                    try:
                        await asyncio.wait_for(self.wake.wait(), timeout=delay)
                    except asyncio.TimeoutError:
                        break
                if slept and len(self.pending) < cap:
                    # We held the batch open on purpose; audit how late
                    # the deadline flush actually fired.  (A flush with
                    # delay <= 0 up front was blocked behind a previous
                    # dispatch — backpressure, not a policy violation.)
                    overshoot = loop.time() - first.expires_at
                    if overshoot > cfg.deadline_slack_s:
                        metrics.deadline_overshoot()
                batch = [
                    self.pending.popleft()
                    for _ in range(min(cap, len(self.pending)))
                ]
                metrics.queue_depth_changed(self.key, len(self.pending))
                await self._dispatch(batch)
        except asyncio.CancelledError:
            self._fail_pending(ServingError("serving frontend closed"))
            raise

    def _fail_pending(self, exc: Exception) -> None:
        while self.pending:
            req = self.pending.popleft()
            if not req.future.done():
                req.future.set_exception(exc)
        self.frontend.metrics.queue_depth_changed(self.key, 0)

    # ------------------------------------------------------------------
    async def _dispatch(self, batch: list[_Request]) -> None:
        metrics = self.frontend.metrics
        loop = asyncio.get_running_loop()
        metrics.batch_dispatched(len(batch))
        try:
            outputs = await loop.run_in_executor(
                self.frontend._executor,
                self.frontend._run_batch,
                self.tenant, self.model, [req.inputs for req in batch],
            )
        except WorkspaceLimitError as exc:
            # The arena budget is admission policy, not a crash: shed
            # this batch as typed backpressure the client can retry.
            self._resolve_error(
                batch,
                BackpressureError(
                    f"batch of {len(batch)} for model {self.model.name!r} "
                    f"over the tenant workspace budget: {exc}",
                    reason="workspace_limit",
                ),
                rejected_reason="workspace_limit",
            )
            return
        except Exception as exc:  # noqa: BLE001 - server must outlive a batch
            for req in batch:
                metrics.request_failed()
            self._resolve_error(
                batch,
                exc if isinstance(exc, ReproError)
                else ServingError(f"batch execution failed: {exc!r}"),
            )
            return
        now = loop.time()
        for req, outs in zip(batch, outputs):
            metrics.request_completed(now - req.submitted_at)
            if not req.future.done():
                req.future.set_result(outs)

    def _resolve_error(self, batch, exc, rejected_reason: str | None = None):
        for req in batch:
            if rejected_reason is not None:
                self.frontend.metrics.request_rejected(rejected_reason)
            if not req.future.done():
                req.future.set_exception(exc)


class ServingFrontend:
    """Asyncio request frontend with per-signature dynamic batching.

    Usage::

        frontend = ServingFrontend(ServingConfig(max_batch=32,
                                                 max_queue_delay_s=0.002))
        frontend.register_model("tenant-a", ModelSpec(
            name="conv3", problems=(prob_n1,), filters=(weights,)))
        ...
        outs = await frontend.submit("tenant-a", "conv3", image)   # (C,H,W)
        await frontend.close()

    ``submit`` resolves to one output per layer, each shaped
    ``(K, H', W')`` — the request's slice of the batched stack.  Slicing
    a batch is numerically exact at the algorithm level; the batched
    kernel may order fp32 reductions differently than an N=1 call, so
    outputs match a solo run to ``repro.common.conv_tolerance``, not
    necessarily bit-for-bit.
    """

    def __init__(self, config: ServingConfig | None = None, *, device=None):
        self.config = config or ServingConfig()
        if device is None:
            self.device = None  # each tenant context resolves its own
        else:
            from ..gpusim.arch import resolve_device

            self.device = resolve_device(device)
        self.metrics = ServingMetrics()
        self._tenants: dict[str, _TenantState] = {}
        self._queues: dict[tuple[str, str], _SignatureQueue] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.dispatch_workers,
            thread_name_prefix="repro-serve",
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_model(self, tenant: str, model: ModelSpec) -> None:
        """Install *model* for *tenant* (creating the tenant on first use).

        Raises :class:`ServingError` if even a batch of one cannot fit
        the workspace budget — such a model could never be served, so
        the failure belongs at registration, not per request.
        """
        if self._closed:
            raise ServingError("serving frontend is closed")
        if not tenant:
            raise ServingError("tenant name must be non-empty")
        state = self._tenants.get(tenant)
        if state is None:
            ctx = ExecutionContext(
                device=self.device,
                workspace_limit_bytes=self.config.workspace_limit_bytes,
            )
            state = self._tenants[tenant] = _TenantState(tenant, ctx)
        if model.name in state.models:
            raise ServingError(
                f"tenant {tenant!r} already has a model named {model.name!r}"
            )
        cap = self._budget_batch_cap(model)
        if cap < 1:
            raise ServingError(
                f"model {model.name!r} cannot run even at batch 1 under the "
                f"{self.config.workspace_limit_bytes} B workspace budget"
            )
        state.models[model.name] = model
        state.batch_caps[model.name] = cap

    def _budget_batch_cap(self, model: ModelSpec) -> int:
        """Largest batch N whose planned workspace fits the arena budget.

        Only computable up front when the session mode forces a concrete
        algorithm (its closed-form workspace is monotone in N); the AUTO
        modes already exclude over-budget algorithms per layer at plan
        time, so they keep the configured ``max_batch``.
        """
        limit = self.config.workspace_limit_bytes
        mode = (model.mode or self.config.mode).upper()
        if limit is None or mode in SESSION_MODES:
            return self.config.max_batch
        from ..perfmodel.workspace import DISPATCH_WORKSPACE

        workspace = DISPATCH_WORKSPACE.get(mode)
        if workspace is None:
            return self.config.max_batch
        cap = 0
        for n in range(1, self.config.max_batch + 1):
            worst = max(
                _align(workspace(p.with_batch(n))) for p in model.problems
            )
            if worst > limit:
                break
            cap = n
        return cap

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    async def submit(self, tenant: str, model: str, inputs) -> list[np.ndarray]:
        """Queue one single-image request; resolves to per-layer outputs.

        *inputs* is one ``(C, H, W)`` (or ``(1, C, H, W)``) activation
        per layer — a bare array is accepted for single-layer models.
        Raises :class:`BackpressureError` when admission control sheds
        the request (full queue, workspace budget) and
        :class:`ServingError` on malformed submissions.
        """
        if self._closed:
            raise ServingError("serving frontend is closed")
        state = self._tenants.get(tenant)
        if state is None:
            raise ServingError(f"unknown tenant {tenant!r}")
        spec = state.models.get(model)
        if spec is None:
            raise ServingError(
                f"tenant {tenant!r} has no model {model!r}; registered: "
                f"{sorted(state.models)}"
            )
        images = self._normalize_inputs(spec, inputs)
        queue = self._queues.get((tenant, model))
        if queue is None:
            queue = self._queues[(tenant, model)] = _SignatureQueue(
                self, state, spec
            )
        if len(queue.pending) >= self.config.max_queue_depth:
            self.metrics.request_rejected("queue_full")
            raise BackpressureError(
                f"queue for {tenant!r}/{model!r} is at its "
                f"{self.config.max_queue_depth}-request depth bound",
                reason="queue_full",
            )
        loop = asyncio.get_running_loop()
        now = loop.time()
        request = _Request(
            inputs=images,
            future=loop.create_future(),
            submitted_at=now,
            expires_at=now + self.config.max_queue_delay_s,
        )
        self.metrics.request_submitted()
        queue.pending.append(request)
        self.metrics.queue_depth_changed(queue.key, len(queue.pending))
        queue.wake.set()
        return await request.future

    def _normalize_inputs(self, spec: ModelSpec, inputs) -> list[np.ndarray]:
        if isinstance(inputs, np.ndarray):
            inputs = [inputs]
        inputs = list(inputs)
        if len(inputs) != len(spec.problems):
            raise ServingError(
                f"model {spec.name!r} has {len(spec.problems)} layers but "
                f"got {len(inputs)} inputs"
            )
        images = []
        for prob, x in zip(spec.problems, inputs):
            expect = (prob.c, prob.h, prob.w)
            shape = getattr(x, "shape", None)
            if shape == expect:
                x = x[np.newaxis]
            elif shape != (1, *expect):
                raise ServingError(
                    f"model {spec.name!r} layer {prob.label()}: input shape "
                    f"{shape} != {expect} (or (1, *{expect}))"
                )
            images.append(np.ascontiguousarray(x))
        return images

    # ------------------------------------------------------------------
    # Batched execution (dispatch threads)
    # ------------------------------------------------------------------
    def _run_batch(self, tenant: _TenantState, model: ModelSpec,
                   inputs_list: list[list[np.ndarray]]) -> list[list[np.ndarray]]:
        batch = len(inputs_list)
        session = self._session(tenant, model, batch)
        stacked = [
            np.concatenate([images[i] for images in inputs_list], axis=0)
            for i in range(len(model.problems))
        ]
        with tenant.context.span(
            "batch", f"{tenant.name}/{model.name}", batch=batch
        ) as span:
            result = session.run(stacked, list(model.filters))
            span["seconds"] = result.total_seconds
        return [
            [layer_out[i] for layer_out in result.outputs]
            for i in range(batch)
        ]

    def _session(self, tenant: _TenantState, model: ModelSpec,
                 batch: int) -> InferenceSession:
        key = (model.name, batch)
        with tenant.lock:
            session = tenant.sessions.get(key)
            if session is None:
                session = InferenceSession(
                    [p.with_batch(batch) for p in model.problems],
                    mode=(model.mode or self.config.mode),
                    workspace_limit_bytes=self.config.workspace_limit_bytes,
                    context=tenant.context,
                    device=self.device,
                )
                tenant.sessions[key] = session
        return session

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def tenant_context(self, tenant: str) -> ExecutionContext:
        """The tenant's isolated context (for tests and trace export)."""
        state = self._tenants.get(tenant)
        if state is None:
            raise ServingError(f"unknown tenant {tenant!r}")
        return state.context

    def stats(self) -> dict:
        """Serving metrics alongside each tenant's runtime counters."""
        return {
            "config": self.config.to_dict(),
            "serving": self.metrics.snapshot().to_dict(),
            "tenants": {
                name: {
                    "models": sorted(state.models),
                    "batch_caps": dict(state.batch_caps),
                    "sessions_compiled": len(state.sessions),
                    "dispatch": dataclasses.asdict(state.context.dispatch_stats),
                    "arena": dataclasses.asdict(state.context.arena.stats()),
                    "trace_spans": len(state.context.tracer.spans()),
                }
                for name, state in self._tenants.items()
            },
        }

    async def close(self) -> None:
        """Cancel flushers, fail queued requests, release the executor."""
        if self._closed:
            return
        self._closed = True
        tasks = [queue.task for queue in self._queues.values()]
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "ServingFrontend":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
