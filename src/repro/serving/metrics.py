"""Serving observability: request/batch counters and latency percentiles.

The serving layer's analogue of :class:`repro.convolution.metrics.DispatchStats`
— one :class:`ServingMetrics` per frontend, thread-safe (counters are
bumped from the event loop *and* from dispatch threads), snapshot-only
reads.  Latencies go through a bounded reservoir so a long-lived server
keeps O(1) memory while p50/p99 stay faithful for any load test short
enough to fit the window (the bench's runs do).
"""

from __future__ import annotations

import collections
import dataclasses
import threading

#: Latency samples kept for percentile estimation (newest wins).  200k
#: floats ≈ 1.6 MB — roomy enough that the serving bench's full run is
#: computed over every sample, bounded enough for a resident server.
LATENCY_WINDOW = 200_000


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 on no samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


@dataclasses.dataclass
class ServingSnapshot:
    """Point-in-time copy of a frontend's serving counters.

    Attributes
    ----------
    requests_submitted: requests accepted into a queue.
    requests_completed: requests whose future resolved with an output.
    requests_rejected: shed by admission control, keyed by reason in
        :attr:`rejected_by_reason` (``queue_full`` / ``workspace_limit``).
    requests_failed: requests whose batch raised a non-backpressure error.
    batches: batched dispatches executed.
    batched_requests: total requests across all formed batches —
        ``batched_requests / batches`` is the mean formed batch size,
        the number that says whether dynamic batching is actually
        exploiting the paper's batch-dimension headroom.
    mean_batch_size / max_batch_size: formed-batch-size aggregates.
    queue_depth: current total queued requests across signatures.
    queue_depth_peak: high-water mark of any single signature queue.
    deadline_overshoots: not-full batches that slept past the configured
        flush deadline by more than the slack — policy violations.
    p50_latency_s / p99_latency_s / mean_latency_s / max_latency_s:
        request latency (submit to future-resolution) over the sample
        window.
    latency_samples: samples currently in the window.
    """

    requests_submitted: int = 0
    requests_completed: int = 0
    requests_rejected: int = 0
    rejected_by_reason: dict = dataclasses.field(default_factory=dict)
    requests_failed: int = 0
    batches: int = 0
    batched_requests: int = 0
    mean_batch_size: float = 0.0
    max_batch_size: int = 0
    queue_depth: int = 0
    queue_depth_peak: int = 0
    deadline_overshoots: int = 0
    p50_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    mean_latency_s: float = 0.0
    max_latency_s: float = 0.0
    latency_samples: int = 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class ServingMetrics:
    """Thread-safe accumulator behind :class:`ServingSnapshot`."""

    def __init__(self, latency_window: int = LATENCY_WINDOW):
        self._lock = threading.Lock()
        self._snap = ServingSnapshot()
        self._latencies: collections.deque[float] = collections.deque(
            maxlen=latency_window
        )
        self._queue_depths: dict[object, int] = {}

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def request_submitted(self) -> None:
        with self._lock:
            self._snap.requests_submitted += 1

    def request_completed(self, latency_s: float) -> None:
        with self._lock:
            self._snap.requests_completed += 1
            self._latencies.append(latency_s)

    def request_rejected(self, reason: str) -> None:
        with self._lock:
            self._snap.requests_rejected += 1
            by = self._snap.rejected_by_reason
            by[reason] = by.get(reason, 0) + 1

    def request_failed(self) -> None:
        with self._lock:
            self._snap.requests_failed += 1

    # ------------------------------------------------------------------
    # Batches and queues
    # ------------------------------------------------------------------
    def batch_dispatched(self, size: int) -> None:
        with self._lock:
            self._snap.batches += 1
            self._snap.batched_requests += size
            self._snap.max_batch_size = max(self._snap.max_batch_size, size)

    def deadline_overshoot(self) -> None:
        with self._lock:
            self._snap.deadline_overshoots += 1

    def queue_depth_changed(self, key: object, depth: int) -> None:
        """Gauge update for one signature queue (depth 0 forgets it)."""
        with self._lock:
            if depth <= 0:
                self._queue_depths.pop(key, None)
            else:
                self._queue_depths[key] = depth
                self._snap.queue_depth_peak = max(
                    self._snap.queue_depth_peak, depth
                )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def snapshot(self) -> ServingSnapshot:
        with self._lock:
            snap = dataclasses.replace(
                self._snap,
                rejected_by_reason=dict(self._snap.rejected_by_reason),
            )
            samples = list(self._latencies)
            snap.queue_depth = sum(self._queue_depths.values())
        snap.latency_samples = len(samples)
        if samples:
            snap.p50_latency_s = percentile(samples, 50)
            snap.p99_latency_s = percentile(samples, 99)
            snap.mean_latency_s = sum(samples) / len(samples)
            snap.max_latency_s = max(samples)
        if snap.batches:
            snap.mean_batch_size = snap.batched_requests / snap.batches
        return snap
