"""Closed-loop load generation for the serving frontend.

Shared by ``python -m repro serve`` (demo) and
``benchmarks/bench_serving.py`` (the artifact-producing load test): N
simulated clients, each a coroutine in a closed loop — submit one
single-image request, await its result, repeat — so offered load adapts
to service rate the way real synchronous callers do.  Backpressure
(:class:`~repro.common.errors.BackpressureError`) is counted and
retried after a short backoff rather than treated as failure: shedding
is the policy working, not the server breaking.
"""

from __future__ import annotations

import asyncio
import dataclasses

from ..common.errors import BackpressureError, ReproError
from .frontend import ServingFrontend

#: Backoff before a shed client retries; long enough to let a queue
#: drain one flush, short enough that the client stays "concurrent".
BACKPRESSURE_RETRY_S = 0.005


@dataclasses.dataclass
class LoadResult:
    """Outcome of one closed-loop run (client-side view)."""

    clients: int
    elapsed_s: float
    completed: int
    rejected: int
    failed: int
    throughput_rps: float

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


async def run_closed_loop(
    frontend: ServingFrontend,
    tenant: str,
    model: str,
    images,
    *,
    clients: int,
    duration_s: float | None = None,
    requests_per_client: int | None = None,
) -> LoadResult:
    """Drive *clients* concurrent closed-loop callers against *frontend*.

    Each client stops after *requests_per_client* completions or when
    *duration_s* of wall-clock has elapsed (whichever is given; both =
    whichever comes first).  *images* is a pool of pre-generated inputs
    cycled per client, so the load loop measures serving, not RNG.
    """
    if duration_s is None and requests_per_client is None:
        raise ValueError("need duration_s and/or requests_per_client")
    loop = asyncio.get_running_loop()
    start = loop.time()
    completed = rejected = failed = 0

    async def client(idx: int) -> None:
        nonlocal completed, rejected, failed
        done = 0
        while True:
            if duration_s is not None and loop.time() - start >= duration_s:
                return
            if requests_per_client is not None and done >= requests_per_client:
                return
            image = images[(idx + done) % len(images)]
            try:
                await frontend.submit(tenant, model, image)
                completed += 1
                done += 1
            except BackpressureError:
                rejected += 1
                await asyncio.sleep(BACKPRESSURE_RETRY_S)
            except ReproError:
                failed += 1
                done += 1

    await asyncio.gather(*[client(i) for i in range(clients)])
    elapsed = loop.time() - start
    return LoadResult(
        clients=clients,
        elapsed_s=elapsed,
        completed=completed,
        rejected=rejected,
        failed=failed,
        throughput_rps=completed / elapsed if elapsed > 0 else 0.0,
    )
