"""``python -m repro serve`` — demo the async batching frontend.

Spins up a :class:`~repro.serving.frontend.ServingFrontend`, registers
one model, drives it with closed-loop simulated clients and prints the
serving metrics (formed batch sizes, p50/p99 latency, backpressure
counts).  Examples::

    python -m repro serve                           # defaults: tiny layer
    python -m repro serve --clients 256 --duration 3 --max-batch 64
    python -m repro serve --layer Conv3 --mode AUTO_HEURISTIC
    python -m repro serve --device V100                 # fleet's other arch
    python -m repro serve --max-batch 1             # no-batching control
    python -m repro serve --json serve_stats.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from ..common.errors import ReproError
from ..common.problem import ConvProblem
from ..common.rng import make_rng, random_filter

#: The default demo layer: small enough that a laptop sustains hundreds
#: of clients, real enough that batching is visibly profitable.
DEMO_PROBLEM = ConvProblem(n=1, c=8, h=16, w=16, k=8, name="Demo")


def _problem(args: argparse.Namespace) -> ConvProblem:
    if args.layer is None:
        return DEMO_PROBLEM
    from ..models import resnet_layer

    return resnet_layer(args.layer, 1)


def _summary(stats: dict, load) -> str:
    from ..common.tables import format_table

    serving = stats["serving"]
    rows = [
        ("clients", load.clients),
        ("completed", load.completed),
        ("rejected (backpressure)", load.rejected),
        ("failed", load.failed),
        ("throughput req/s", f"{load.throughput_rps:.1f}"),
        ("batches", serving["batches"]),
        ("mean batch size", f"{serving['mean_batch_size']:.2f}"),
        ("max batch size", serving["max_batch_size"]),
        ("p50 latency ms", f"{serving['p50_latency_s'] * 1e3:.3f}"),
        ("p99 latency ms", f"{serving['p99_latency_s'] * 1e3:.3f}"),
        ("queue depth peak", serving["queue_depth_peak"]),
        ("deadline overshoots", serving["deadline_overshoots"]),
    ]
    return format_table(["metric", "value"], rows, title="repro serve")


async def _serve(args: argparse.Namespace) -> int:
    from ..gpusim.arch import resolve_device
    from . import ModelSpec, ServingConfig, ServingFrontend
    from .loadgen import run_closed_loop

    prob = _problem(args)
    config = ServingConfig(
        max_batch=args.max_batch,
        max_queue_delay_s=args.delay_ms / 1e3,
        max_queue_depth=args.queue_depth,
        dispatch_workers=args.dispatch_workers,
        mode=args.mode,
        workspace_limit_bytes=(
            args.workspace_limit_mb * (1 << 20)
            if args.workspace_limit_mb is not None else None
        ),
    )
    rng = make_rng(args.seed)
    weights = random_filter(prob, rng)
    images = [
        (rng.random((prob.c, prob.h, prob.w), dtype="float32") * 2 - 1)
        for _ in range(64)
    ]
    async with ServingFrontend(config, device=resolve_device(args.device)) as frontend:
        frontend.register_model(args.tenant, ModelSpec(
            name=prob.label(), problems=(prob,), filters=(weights,)))
        load = await run_closed_loop(
            frontend, args.tenant, prob.label(), images,
            clients=args.clients, duration_s=args.duration,
        )
        stats = frontend.stats()
    print(_summary(stats, load))
    if args.json:
        payload = {"load": load.to_dict(), **stats}
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    if load.failed:
        print(f"error: {load.failed} requests failed", file=sys.stderr)
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    try:
        return asyncio.run(_serve(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def add_serve_parser(sub) -> None:
    """Register the ``serve`` subcommand on an argparse subparsers obj."""
    p = sub.add_parser(
        "serve",
        help="demo the async serving frontend with dynamic batching",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("--clients", type=int, default=128,
                   help="concurrent simulated clients (default: 128)")
    p.add_argument("--duration", type=float, default=2.0,
                   help="seconds of closed-loop load (default: 2)")
    p.add_argument("--layer", default=None,
                   help="ResNet layer name served at n=1 "
                        "(default: a small demo layer)")
    p.add_argument("--device", default="RTX2070",
                   help="simulated device (registry name or alias; "
                        "default: RTX2070)")
    p.add_argument("--mode", default="GEMM",
                   help="session mode for formed batches (default: GEMM)")
    p.add_argument("--max-batch", type=int, default=32,
                   help="dynamic batching cap on N (default: 32)")
    p.add_argument("--delay-ms", type=float, default=2.0,
                   help="max queue delay before flush, ms (default: 2)")
    p.add_argument("--queue-depth", type=int, default=1024,
                   help="per-signature admission bound (default: 1024)")
    p.add_argument("--dispatch-workers", type=int, default=1,
                   help="concurrent batch-dispatch threads (default: 1)")
    p.add_argument("--workspace-limit-mb", type=int, default=None,
                   help="per-tenant arena budget in MiB")
    p.add_argument("--tenant", default="demo",
                   help="tenant name (default: demo)")
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed for weights/images (default: 0)")
    p.add_argument("--json", metavar="PATH",
                   help="write load + serving stats as JSON")
    p.set_defaults(func=cmd_serve)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve batched Winograd/conv inference over asyncio",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    add_serve_parser(sub)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(["serve", *sys.argv[1:]]))
