"""Async serving frontend with dynamic batching.

The layer that turns concurrent single-image (N=1) traffic into the
batched :class:`~repro.common.problem.ConvProblem` stacks the paper's
whole thesis is about: per-signature queues with deadline-driven flush
(:class:`ServingConfig`), per-tenant
:class:`~repro.runtime.context.ExecutionContext` isolation, admission
control against the tenant's workspace budget (typed
:class:`~repro.common.errors.BackpressureError`, never a raw
``WorkspaceLimitError``), and serving metrics with latency percentiles
(:class:`ServingMetrics`).  See ``docs/serving.md``.
"""

from .config import ServingConfig
from .fleet import FleetRouter, RoutingDecision
from .frontend import ModelSpec, ServingFrontend
from .metrics import LATENCY_WINDOW, ServingMetrics, ServingSnapshot, percentile

__all__ = [
    "LATENCY_WINDOW",
    "FleetRouter",
    "ModelSpec",
    "RoutingDecision",
    "ServingConfig",
    "ServingFrontend",
    "ServingMetrics",
    "ServingSnapshot",
    "percentile",
]
