"""Process-pool fan-out for independent, pure computations.

Promoted from ``benchmarks/parallel.py`` (which now re-exports these)
so the runtime's pipelined :class:`~repro.runtime.session.InferenceSession`
can use the same machinery as the benchmark suite.  Results come back in
**deterministic input order** (``ProcessPoolExecutor.map`` preserves
ordering regardless of completion order — a worker finishing early never
reorders a result series).

Sizing and fallbacks:

* worker count = ``min(REPRO_BENCH_WORKERS or os.cpu_count(), len(items))``;
* a pool of one worker (e.g. a single-core host), a single item, or
  ``REPRO_BENCH_PARALLEL=0`` short-circuits to plain serial execution in
  the parent process — no pool, no pickling, bit-identical results;
* the pool uses the ``fork`` start method (workers inherit the parent's
  ``sys.path``, imported modules and default :class:`ExecutionContext`);
  on platforms without ``fork`` the fan-out degrades to the serial path
  rather than guessing at spawn semantics.

Worker functions must live at module top level so they pickle by
reference.  Workers share the parent's on-disk simulation cache (writes
are atomic renames), so anything a worker simulates is also persisted
for future runs.  See ``docs/simulation_performance.md``.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor


def _parallel_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_PARALLEL", "1").lower() not in (
        "0", "false", "off", "no",
    )


def default_workers(num_items: int) -> int:
    """Pool size for *num_items* independent tasks (>= 1)."""
    if not _parallel_enabled():
        return 1
    env = os.environ.get("REPRO_BENCH_WORKERS")
    workers = int(env) if env else (os.cpu_count() or 1)
    return max(1, min(workers, num_items))


def parallel_map(fn, items, workers: int | None = None) -> list:
    """``[fn(item) for item in items]`` across a process pool.

    Results are returned in input order (deterministic); falls back to
    in-process serial execution when a pool cannot help (one worker, one
    item, parallelism disabled, or no ``fork`` support).
    """
    items = list(items)
    if workers is None:
        workers = default_workers(len(items))
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if "fork" not in multiprocessing.get_all_start_methods():
        return [fn(item) for item in items]
    ctx = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
        return list(pool.map(fn, items))
