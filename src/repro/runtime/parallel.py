"""Process-pool fan-out for independent, pure computations.

Promoted from ``benchmarks/parallel.py`` (which now re-exports these)
so the runtime's pipelined :class:`~repro.runtime.session.InferenceSession`
can use the same machinery as the benchmark suite.  Results come back in
**deterministic input order** (a worker finishing early never reorders a
result series).

Sizing and fallbacks:

* worker count = ``min(REPRO_BENCH_WORKERS or os.cpu_count(), len(items))``;
  a malformed or non-positive ``REPRO_BENCH_WORKERS`` falls back to
  ``os.cpu_count()`` with a :class:`RuntimeWarning` instead of crashing
  the caller (the variable is ambient configuration, not an argument);
* a pool of one worker (e.g. a single-core host), a single item, or
  ``REPRO_BENCH_PARALLEL=0`` short-circuits to plain serial execution in
  the parent process — no pool, no pickling, bit-identical results;
* the pool uses the ``fork`` start method (workers inherit the parent's
  ``sys.path``, imported modules and default :class:`ExecutionContext`);
  on platforms without ``fork`` the fan-out degrades to the serial path
  rather than guessing at spawn semantics.

Slot hooks: ``parallel_map(fn, items, on_start=..., on_done=...)`` calls
``on_start(index, item)`` in the parent immediately before an item is
handed to a worker slot and ``on_done(index)`` when that item's result
is in, with **at most ``workers`` items between the two at any moment**.
That bound is the contract the pipelined session's workspace accounting
is built on: a resource acquired in ``on_start`` (an arena reservation)
is held by at most ``workers`` in-flight items, never by the whole input
list.  Both hooks run in the parent process (``on_done`` possibly on an
executor callback thread — keep it thread-safe and non-blocking).

Worker functions must live at module top level so they pickle by
reference.  Workers share the parent's on-disk simulation cache (writes
are atomic renames), so anything a worker simulates is also persisted
for future runs.  See ``docs/simulation_performance.md``.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Callable


def _parallel_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_PARALLEL", "1").lower() not in (
        "0", "false", "off", "no",
    )


def _workers_from_env() -> int:
    """``REPRO_BENCH_WORKERS`` parsed defensively (>= 1, or cpu_count).

    The variable reaches us from shells, CI matrices and Makefiles, so
    trailing junk (``"auto"``, ``"8x"``) or a nonsensical bound
    (``"0"``, ``"-4"``) must degrade to the cpu-count default with a
    warning, not take down an inference run with a ``ValueError``.
    """
    fallback = os.cpu_count() or 1
    env = os.environ.get("REPRO_BENCH_WORKERS")
    if env is None or not env.strip():
        return fallback
    try:
        workers = int(env.strip())
    except ValueError:
        warnings.warn(
            f"REPRO_BENCH_WORKERS={env!r} is not an integer; "
            f"falling back to os.cpu_count()={fallback}",
            RuntimeWarning,
            stacklevel=3,
        )
        return fallback
    if workers < 1:
        warnings.warn(
            f"REPRO_BENCH_WORKERS={env!r} must be >= 1; "
            f"falling back to os.cpu_count()={fallback}",
            RuntimeWarning,
            stacklevel=3,
        )
        return fallback
    return workers


def default_workers(num_items: int) -> int:
    """Pool size for *num_items* independent tasks (>= 1)."""
    if not _parallel_enabled():
        return 1
    return max(1, min(_workers_from_env(), num_items))


def parallel_map(
    fn,
    items,
    workers: int | None = None,
    *,
    on_start: Callable[[int, object], None] | None = None,
    on_done: Callable[[int], None] | None = None,
) -> list:
    """``[fn(item) for item in items]`` across a process pool.

    Results are returned in input order (deterministic); falls back to
    in-process serial execution when a pool cannot help (one worker, one
    item, parallelism disabled, or no ``fork`` support).

    *on_start(index, item)* / *on_done(index)* bracket each item's stay
    in a worker slot, with at most *workers* items between the calls at
    any time (exactly one on the serial path).  ``on_done`` always runs,
    even when the item's ``fn`` raised; an ``on_start`` that raises
    aborts the map after in-flight items finish (and get their
    ``on_done``).
    """
    items = list(items)
    if workers is None:
        workers = default_workers(len(items))

    def _serial() -> list:
        results = []
        for i, item in enumerate(items):
            if on_start is not None:
                on_start(i, item)
            try:
                results.append(fn(item))
            finally:
                if on_done is not None:
                    on_done(i)
        return results

    if workers <= 1 or len(items) <= 1:
        return _serial()
    if "fork" not in multiprocessing.get_all_start_methods():
        return _serial()
    ctx = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
        if on_start is None and on_done is None:
            return list(pool.map(fn, items))
        # Bounded submission: a semaphore slot is taken before on_start
        # and returned from the future's done-callback, so no more than
        # `workers` items are ever between on_start and on_done.
        slots = threading.Semaphore(workers)
        futures = []

        def _finish(index: int, fut) -> None:
            try:
                if on_done is not None:
                    on_done(index)
            finally:
                slots.release()

        # An on_start that raises propagates out of the `with` block,
        # which joins the pool: in-flight items finish and their
        # done-callbacks fire before the caller sees the exception.
        for i, item in enumerate(items):
            slots.acquire()
            try:
                if on_start is not None:
                    on_start(i, item)
            except BaseException:
                slots.release()
                raise
            fut = pool.submit(fn, item)
            fut.add_done_callback(lambda f, index=i: _finish(index, f))
            futures.append(fut)
        results = [fut.result() for fut in futures]
        # result() can unblock marginally before the done-callback runs;
        # draining every slot proves all on_done hooks have completed,
        # so callers observe fully-released resources on return.
        for _ in range(workers):
            slots.acquire()
        return results
