"""Workspace arena: one reusable buffer for a whole network's workspaces.

The paper's workspace study (Fig. 14) prices each algorithm's global
scratch allocation per *call*; a serving system running a whole layer
stack cannot afford a fresh ``cudaMalloc`` per convolution.  cuDNN's
answer is the caller-owned workspace pointer; TVM's graph runtime and
maxDNN both fold every operator's scratch into one arena sized at the
plan's high-water mark.  :class:`WorkspaceArena` is that component for
this library: a bump allocator with a free list over a single growable
buffer, so a multi-layer :class:`~repro.runtime.session.InferenceSession`
reserves each layer's closed-form workspace
(``repro.perfmodel.workspace.dispatch_workspace_bytes``) from the same
bytes the previous layer just released.

Counters make the reuse observable — ``reserves``, ``reuses`` (a
reservation served from previously-used bytes), ``grows``, ``peak_bytes``
— and ``limit_bytes`` enforces a workspace budget at the arena level: a
reservation that would push concurrent usage past the budget raises
:class:`~repro.common.errors.WorkspaceLimitError` instead of silently
over-allocating, turning Fig. 14's per-dispatch filter into a process
invariant.
"""

from __future__ import annotations

import dataclasses
import threading

from ..common.errors import WorkspaceError, WorkspaceLimitError

#: Reservation offsets/sizes are rounded up to this many bytes, matching
#: the 256-byte alignment cudaMalloc guarantees.
ALIGNMENT = 256


def _align(nbytes: int, alignment: int = ALIGNMENT) -> int:
    return (nbytes + alignment - 1) // alignment * alignment


@dataclasses.dataclass
class ArenaStats:
    """Counters for one :class:`WorkspaceArena` (snapshot via ``stats()``).

    Attributes
    ----------
    reserves: reservations granted (including zero-byte ones).
    reuses: reservations whose bytes overlap a region some earlier
        reservation already used — the multi-layer "one buffer, many
        layers" win this arena exists for.
    grows: times the backing buffer had to be enlarged.
    releases: blocks returned to the arena.
    in_use_bytes: bytes currently reserved.
    peak_bytes: high-water mark of concurrently reserved bytes.
    capacity_bytes: current backing-buffer size.
    limit_bytes: the enforced budget (``None`` = unlimited).
    """

    reserves: int = 0
    reuses: int = 0
    grows: int = 0
    releases: int = 0
    in_use_bytes: int = 0
    peak_bytes: int = 0
    capacity_bytes: int = 0
    limit_bytes: int | None = None


class WorkspaceBlock:
    """One reservation; release it (or use it as a context manager)."""

    __slots__ = ("arena", "offset", "nbytes", "tag", "_released")

    def __init__(self, arena: "WorkspaceArena", offset: int, nbytes: int, tag: str):
        self.arena = arena
        self.offset = offset
        self.nbytes = nbytes
        self.tag = tag
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def view(self) -> memoryview:
        """Writable view of this block's bytes in the backing buffer."""
        if self._released:
            raise WorkspaceError(f"workspace block {self.tag!r} already released")
        return self.arena._view(self.offset, self.nbytes)

    def release(self) -> None:
        self.arena.release(self)

    def __enter__(self) -> "WorkspaceBlock":
        return self

    def __exit__(self, *exc) -> None:
        if not self._released:
            self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "released" if self._released else "live"
        return (
            f"WorkspaceBlock(tag={self.tag!r}, offset={self.offset}, "
            f"nbytes={self.nbytes}, {state})"
        )


class WorkspaceArena:
    """Bump/free-list allocator over one growable workspace buffer.

    Reservations are served first-fit from the free list (bytes earlier
    layers released), falling back to bumping the top of the buffer;
    released blocks coalesce with their free neighbours so sequential
    layer execution degenerates to the ideal case — every layer reuses
    offset 0 of a buffer sized at the network's largest workspace.
    Thread-safe: a pipelined session may reserve from worker threads.
    """

    def __init__(self, limit_bytes: int | None = None, alignment: int = ALIGNMENT):
        if limit_bytes is not None and limit_bytes < 0:
            raise WorkspaceError(f"limit_bytes must be >= 0 or None, got {limit_bytes}")
        if alignment < 1 or alignment & (alignment - 1):
            raise WorkspaceError(f"alignment must be a power of two, got {alignment}")
        self._lock = threading.RLock()
        self._alignment = alignment
        self._limit = limit_bytes
        self._buffer = bytearray()
        self._free: list[tuple[int, int]] = []  # sorted (offset, size)
        self._top = 0  # bump pointer: everything above is untouched capacity
        self._used_high_water = 0  # bytes [0, hw) have been reserved before
        self._stats = ArenaStats(limit_bytes=limit_bytes)

    # ------------------------------------------------------------------
    # Reservation
    # ------------------------------------------------------------------
    def reserve(self, nbytes: int, tag: str = "") -> WorkspaceBlock:
        """Reserve *nbytes* (rounded up to the alignment); returns a block.

        Raises :class:`WorkspaceLimitError` if the reservation would push
        concurrent usage past ``limit_bytes``.
        """
        if nbytes < 0:
            raise WorkspaceError(f"cannot reserve {nbytes} bytes")
        size = _align(nbytes, self._alignment)
        with self._lock:
            if self._limit is not None and self._stats.in_use_bytes + size > self._limit:
                raise WorkspaceLimitError(
                    f"workspace reservation {tag!r} of {size} B would raise "
                    f"arena usage to {self._stats.in_use_bytes + size} B, over "
                    f"the {self._limit} B limit"
                )
            offset = self._take_free(size)
            if offset is None:
                offset = self._top
                if offset + size > len(self._buffer):
                    self._grow(offset + size)
                self._top = offset + size
            self._stats.reserves += 1
            if size and offset < self._used_high_water:
                self._stats.reuses += 1
            self._used_high_water = max(self._used_high_water, offset + size)
            self._stats.in_use_bytes += size
            self._stats.peak_bytes = max(
                self._stats.peak_bytes, self._stats.in_use_bytes
            )
            return WorkspaceBlock(self, offset, size, tag)

    def _take_free(self, size: int) -> int | None:
        """First-fit over the free list; splits the block it takes from."""
        if size == 0:
            return self._top  # zero-byte blocks never occupy space
        for i, (offset, avail) in enumerate(self._free):
            if avail >= size:
                if avail == size:
                    del self._free[i]
                else:
                    self._free[i] = (offset + size, avail - size)
                return offset
        return None

    def _grow(self, needed: int) -> None:
        # Geometric growth amortizes repeated bumps; capacity itself is
        # not budgeted (only concurrent *usage* is), matching a high-water
        # -mark workspace that outlives any single layer.
        new_cap = max(needed, 2 * len(self._buffer))
        self._buffer.extend(bytes(new_cap - len(self._buffer)))
        self._stats.grows += 1
        self._stats.capacity_bytes = len(self._buffer)

    def reserve_capacity(self, nbytes: int) -> None:
        """Pre-size the buffer (e.g. to a compiled plan's high-water mark).

        Does not count as a ``grow``: sizing the arena from the closed-form
        workspace plan *is* the intended use, not a fallback.
        """
        size = _align(nbytes, self._alignment)
        with self._lock:
            if size > len(self._buffer):
                self._buffer.extend(bytes(size - len(self._buffer)))
                self._stats.capacity_bytes = len(self._buffer)

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------
    def release(self, block: WorkspaceBlock) -> None:
        with self._lock:
            if block._released:
                raise WorkspaceError(
                    f"workspace block {block.tag!r} released twice"
                )
            block._released = True
            self._stats.releases += 1
            self._stats.in_use_bytes -= block.nbytes
            if block.nbytes == 0:
                return
            self._insert_free(block.offset, block.nbytes)

    def _insert_free(self, offset: int, size: int) -> None:
        """Insert and coalesce; a free block ending at the top lowers it."""
        self._free.append((offset, size))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for off, sz in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + sz)
            else:
                merged.append((off, sz))
        if merged and merged[-1][0] + merged[-1][1] == self._top:
            self._top = merged.pop()[0]
        self._free = merged

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def _view(self, offset: int, nbytes: int) -> memoryview:
        with self._lock:
            return memoryview(self._buffer)[offset : offset + nbytes]

    @property
    def limit_bytes(self) -> int | None:
        return self._limit

    def set_limit(self, limit_bytes: int | None) -> None:
        """Change the budget (applies to future reservations only)."""
        if limit_bytes is not None and limit_bytes < 0:
            raise WorkspaceError(f"limit_bytes must be >= 0 or None, got {limit_bytes}")
        with self._lock:
            self._limit = limit_bytes
            self._stats.limit_bytes = limit_bytes

    def stats(self) -> ArenaStats:
        with self._lock:
            snap = dataclasses.replace(self._stats)
            snap.capacity_bytes = len(self._buffer)
            return snap

    def reset(self) -> None:
        """Drop the buffer, free list and every counter (fresh arena)."""
        with self._lock:
            self._buffer = bytearray()
            self._free = []
            self._top = 0
            self._used_high_water = 0
            self._stats = ArenaStats(limit_bytes=self._limit)
