"""Unified execution runtime.

Three layers, each owning what used to be module-global state:

- :class:`ExecutionContext` — device, kernel-build + simulation caches,
  plan cache, dispatch metrics, lint gate, workspace arena and trace
  hooks, with one :meth:`~ExecutionContext.reset` clearing them all.
- :class:`WorkspaceArena` — a bump/free-list allocator so multi-layer
  runs share one high-water-mark workspace buffer.
- :class:`InferenceSession` — compiles a layer stack into per-layer
  plans and executes it end to end (optionally pipelined).

``default_context()`` provides the process-wide context that keeps the
legacy module-level APIs (``repro.convolution.conv2d``, the cache
helpers in ``repro.kernels.cache``, ...) working unchanged;
``activate(ctx)`` scopes a different context to a ``with`` block.
"""

from .arena import ALIGNMENT, ArenaStats, WorkspaceArena, WorkspaceBlock
from .context import (
    ExecutionContext,
    TraceSpan,
    Tracer,
    activate,
    current_context,
    default_context,
)
from .parallel import default_workers, parallel_map
from .session import (
    InferenceSession,
    LayerPlan,
    LayerRun,
    SessionResult,
)

__all__ = [
    "ALIGNMENT",
    "ArenaStats",
    "ExecutionContext",
    "InferenceSession",
    "LayerPlan",
    "LayerRun",
    "SessionResult",
    "TraceSpan",
    "Tracer",
    "WorkspaceArena",
    "WorkspaceBlock",
    "activate",
    "current_context",
    "default_context",
    "default_workers",
    "parallel_map",
]
