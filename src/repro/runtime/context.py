"""ExecutionContext: one object owning every piece of runtime state.

Before this layer existed, execution state was scattered as module
globals: the plan cache and dispatch stats in ``repro.convolution``, the
kernel-build and simulation caches in ``repro.kernels.cache``, the lint
gate in ``repro.kernels.runner``.  Tests had to call three different
``reset_*``/``clear_*`` helpers to get a clean slate, and two workloads
in one process could not be isolated from each other at all.

:class:`ExecutionContext` inverts that ownership: *it* holds the device,
the caches, the stats, the lint gate, the workspace arena and the trace
hooks, and the legacy module-level helpers now delegate to the **default
context** (so every existing public API — ``conv2d``,
``get_dispatch_stats``, ``get_kernel_cache_stats`` … — behaves exactly
as before).  Code that wants isolation builds its own context and either
passes it explicitly (``conv2d(..., context=ctx)``) or activates it for
a dynamic extent::

    ctx = ExecutionContext(device=RTX2070)
    with activate(ctx):
        conv2d(x, f, algo="AUTO_HEURISTIC")   # uses ctx's plan cache
    ctx.reset()                                # one call clears everything

Tracing: every kernel build, plan selection and simulator launch records
a :class:`TraceSpan`; hooks added with :meth:`ExecutionContext.add_trace_hook`
observe spans as they complete, and :meth:`ExecutionContext.export_trace`
/ :meth:`write_trace` serialize the buffer as JSON (the artifact the
session benchmark uploads from CI).

(Unrelated to :class:`repro.gpusim.engine.ExecutionContext`, which is the
simulator's per-block instruction context; this one is the *library's*
execution context.)
"""

from __future__ import annotations

import collections
import contextlib
import dataclasses
import json
import os
import threading
import time
from typing import Callable, Iterator

from ..convolution.autotune import PlanCache
from ..convolution.metrics import DispatchStats
from ..gpusim.arch import DeviceSpec, resolve_device
from ..kernels.cache import KernelBuildCache, SimulationCache
from ..kernels.runner import LintGate
from .arena import WorkspaceArena

#: Trace buffer bound: old spans are dropped (and counted) rather than
#: letting a long-lived process grow the buffer without limit.
DEFAULT_TRACE_SPANS = 4096


@dataclasses.dataclass
class TraceSpan:
    """One timed region of runtime work (a build, a plan, a launch)."""

    kind: str  # "build" | "plan" | "launch" | "layer" | caller-defined
    label: str
    start: float  # time.perf_counter() at entry
    end: float
    attrs: dict

    @property
    def seconds(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "label": self.label,
            "start": self.start,
            "end": self.end,
            "seconds": self.seconds,
            "attrs": self.attrs,
        }


class Tracer:
    """Bounded span buffer plus observer hooks (thread-safe)."""

    def __init__(self, max_spans: int = DEFAULT_TRACE_SPANS):
        self._lock = threading.RLock()
        self._spans: collections.deque[TraceSpan] = collections.deque(maxlen=max_spans)
        self._hooks: list[Callable[[TraceSpan], None]] = []
        self.dropped = 0

    @contextlib.contextmanager
    def span(self, kind: str, label: str, **attrs) -> Iterator[dict]:
        """Record a span around the ``with`` body; yields the attrs dict
        so the body can attach results (e.g. the chosen algorithm)."""
        start = time.perf_counter()
        try:
            yield attrs
        finally:
            finished = TraceSpan(
                kind=kind, label=label, start=start,
                end=time.perf_counter(), attrs=attrs,
            )
            with self._lock:
                if len(self._spans) == self._spans.maxlen:
                    self.dropped += 1
                self._spans.append(finished)
                hooks = list(self._hooks)
            for hook in hooks:
                hook(finished)

    def add_hook(self, hook: Callable[[TraceSpan], None]) -> None:
        with self._lock:
            self._hooks.append(hook)

    def remove_hook(self, hook: Callable[[TraceSpan], None]) -> None:
        with self._lock:
            self._hooks.remove(hook)

    def spans(self) -> list[TraceSpan]:
        with self._lock:
            return list(self._spans)

    def export(self) -> list[dict]:
        return [span.to_dict() for span in self.spans()]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0


class ExecutionContext:
    """Owner of every piece of state one execution environment needs.

    Parameters
    ----------
    device: default device for AUTO dispatch and simulation — a
        :class:`DeviceSpec` or any name the
        :func:`~repro.gpusim.arch.resolve_device` registry accepts
        ("V100", "rtx2070", "turing", ...).  ``None`` resolves through
        the registry too: the ``REPRO_DEVICE`` environment variable if
        set, else V100 (the historical default).
    kernel_cache_entries / sim_cache_entries / plan_cache_entries:
        cache bounds; the kernel/sim defaults honour the existing
        ``REPRO_KERNEL_CACHE_SIZE`` / ``REPRO_SIM_CACHE_SIZE`` variables.
    workspace_limit_bytes: arena-level workspace budget (``None`` =
        unlimited); see :class:`~repro.runtime.arena.WorkspaceArena`.
    trace_spans: trace-buffer bound.
    schedule_search: a :class:`repro.sched.ScheduleSearchConfig` that
        opts AUTO dispatch into the SASS schedule search (``None`` =
        off; a per-call ``tune_schedule=True`` still searches with the
        default config).  Winners are memoized on :attr:`schedules`.
    """

    def __init__(
        self,
        device: DeviceSpec | str | None = None,
        *,
        kernel_cache_entries: int | None = None,
        sim_cache_entries: int | None = None,
        plan_cache_entries: int = 256,
        workspace_limit_bytes: int | None = None,
        trace_spans: int = DEFAULT_TRACE_SPANS,
        schedule_search=None,
    ):
        # Late import: repro.sched builds on the kernels/gpusim layers,
        # which must be importable before this module finishes loading.
        from ..sched.search import ScheduleBook

        self.device = resolve_device(device)
        self.schedule_search = schedule_search
        self.schedules = ScheduleBook()
        self.kernel_cache = KernelBuildCache(
            max_entries=kernel_cache_entries
            or int(os.environ.get("REPRO_KERNEL_CACHE_SIZE", "64"))
        )
        self.sim_cache = SimulationCache(
            max_entries=sim_cache_entries
            or int(os.environ.get("REPRO_SIM_CACHE_SIZE", "512"))
        )
        self.dispatch_stats = DispatchStats()
        self.plans = PlanCache(
            max_entries=plan_cache_entries, on_evict=self._count_plan_eviction
        )
        self.lint_gate = LintGate()
        self.arena = WorkspaceArena(limit_bytes=workspace_limit_bytes)
        self.tracer = Tracer(max_spans=trace_spans)

    def _count_plan_eviction(self) -> None:
        # Dereferenced at eviction time: reset() replaces dispatch_stats
        # and the counter must land on the *current* object.
        self.dispatch_stats.plan_evictions += 1

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def span(self, kind: str, label: str, **attrs):
        """``with ctx.span("build", "Conv3N32"): ...`` — time one region."""
        return self.tracer.span(kind, label, **attrs)

    def add_trace_hook(self, hook: Callable[[TraceSpan], None]) -> None:
        self.tracer.add_hook(hook)

    def remove_trace_hook(self, hook: Callable[[TraceSpan], None]) -> None:
        self.tracer.remove_hook(hook)

    def export_trace(self) -> list[dict]:
        """The span buffer as JSON-serializable dicts (oldest first)."""
        return self.tracer.export()

    def write_trace(self, path: str) -> None:
        """Dump :meth:`export_trace` as a JSON file."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.export_trace(), fh, indent=2)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear *every* piece of state this context owns, together.

        Replaces the three separate ``reset_*``/``clear_*`` call sites
        tests used to need (and the state they could forget): plan cache,
        kernel-build cache (+stats), simulation cache (+stats), dispatch
        stats, lint gate, arena, trace buffer and schedule book.
        """
        self.plans.clear()
        self.kernel_cache.clear()
        self.kernel_cache.reset_stats()
        self.sim_cache.clear()
        self.sim_cache.reset_stats()
        self.dispatch_stats = DispatchStats()
        self.lint_gate.clear()
        self.arena.reset()
        self.tracer.clear()
        self.schedules.clear()


# ---------------------------------------------------------------------------
# Default + active context plumbing
# ---------------------------------------------------------------------------
_DEFAULT: ExecutionContext | None = None
_DEFAULT_LOCK = threading.Lock()
_ACTIVE = threading.local()


def default_context() -> ExecutionContext:
    """The process-wide default context (created lazily, once).

    Owns what used to be the module-global caches/stats, so the legacy
    helpers (``get_dispatch_stats`` …) read and write it.
    """
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:
            if _DEFAULT is None:
                _DEFAULT = ExecutionContext()
    return _DEFAULT


def current_context() -> ExecutionContext:
    """The innermost :func:`activate`\\ d context, else the default."""
    stack = getattr(_ACTIVE, "stack", None)
    if stack:
        return stack[-1]
    return default_context()


@contextlib.contextmanager
def activate(ctx: ExecutionContext) -> Iterator[ExecutionContext]:
    """Make *ctx* the :func:`current_context` for the ``with`` body.

    Activation is per-thread and re-entrant (contexts stack); worker
    threads spawned inside the body do **not** inherit it — pass the
    context explicitly across thread boundaries.
    """
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        stack = _ACTIVE.stack = []
    stack.append(ctx)
    try:
        yield ctx
    finally:
        popped = stack.pop()
        assert popped is ctx, "unbalanced ExecutionContext activation"
