"""``python -m repro session`` — run an InferenceSession from the shell.

Examples::

    python -m repro session --layers Conv2,Conv3,Conv4,Conv5 --batch 32
    python -m repro session --model resnet --batch 32 --mode AUTO
    python -m repro session --layers Conv3 --batch 8 --pipeline \
        --trace trace.json --json result.json
"""

from __future__ import annotations

import argparse
import json
import sys

from ..common.errors import ReproError
from ..common.rng import make_rng, random_activation, random_filter
from .context import ExecutionContext
from .session import InferenceSession

RESNET_LAYERS = ("Conv2", "Conv3", "Conv4", "Conv5")


def _problems(args: argparse.Namespace):
    from ..models import resnet_layer, vgg_layers

    if args.model == "vgg":
        return vgg_layers(args.batch)
    names = [s.strip() for s in args.layers.split(",") if s.strip()]
    if not names:
        raise SystemExit("--layers needs at least one layer name")
    return [resnet_layer(name, args.batch) for name in names]


def cmd_session(args: argparse.Namespace) -> int:
    problems = _problems(args)
    ctx = ExecutionContext(
        workspace_limit_bytes=(
            args.workspace_limit_mb * (1 << 20)
            if args.workspace_limit_mb is not None else None
        ),
    )
    session = InferenceSession(
        problems,
        mode=args.mode,
        workspace_limit_bytes=ctx.arena.stats().limit_bytes,
        context=ctx,
    )
    rng = make_rng(args.seed)
    inputs = [random_activation(p, rng) for p in problems]
    filters = [random_filter(p, rng) for p in problems]
    try:
        result = session.run(inputs, filters, pipeline=args.pipeline)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(result.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"wrote {args.json}")
    if args.trace:
        ctx.write_trace(args.trace)
        print(f"wrote {args.trace} ({len(ctx.export_trace())} spans)")
    return 0


def add_session_parser(sub) -> None:
    """Register the ``session`` subcommand on an argparse subparsers obj."""
    p = sub.add_parser(
        "session",
        help="plan and run a layer stack through the unified runtime",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("--model", default="resnet", choices=["resnet", "vgg"],
                   help="layer table (default: resnet Table 1)")
    p.add_argument("--layers", default=",".join(RESNET_LAYERS),
                   help="comma-separated ResNet layer names "
                        "(default: Conv2,Conv3,Conv4,Conv5; ignored for vgg)")
    p.add_argument("--batch", type=int, default=32,
                   help="batch size N (default: 32)")
    p.add_argument("--mode", default="AUTO_HEURISTIC",
                   help="AUTO, AUTO_HEURISTIC or a concrete algorithm "
                        "(default: AUTO_HEURISTIC)")
    p.add_argument("--pipeline", action="store_true",
                   help="fan layers out over the process pool")
    p.add_argument("--workspace-limit-mb", type=int, default=None,
                   help="arena + selection workspace budget in MiB")
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed for the synthetic tensors (default: 0)")
    p.add_argument("--json", metavar="PATH",
                   help="write per-layer/end-to-end stats as JSON")
    p.add_argument("--trace", metavar="PATH",
                   help="write the context's trace spans as JSON")
    p.set_defaults(func=cmd_session)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro session",
        description="Run an InferenceSession over a CNN layer stack",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    add_session_parser(sub)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(["session", *sys.argv[1:]]))
