"""InferenceSession: compile a layer stack once, execute it end to end.

The paper evaluates its kernel on whole ResNet/VGG layer stacks
(Table 1, Figs. 10-13); this module turns that evaluation into a
runnable inference path, the way cuDNN callers and TVM's graph runtime
do it:

1. **compile** — every layer's :class:`ConvProblem` goes through the
   perfmodel-driven selector (or timed trials, or a forced algorithm)
   exactly once, producing a :class:`LayerPlan` with the chosen
   algorithm, its fallback order and its closed-form workspace size
   (``repro.perfmodel.workspace``).  The context's
   :class:`~repro.runtime.arena.WorkspaceArena` is pre-sized to the
   plan's high-water mark.
2. **run** — each layer executes through :func:`repro.convolution.conv2d`
   with its planned algorithm while its workspace is reserved from the
   arena, so the whole network shares one buffer whose peak is the
   *largest single layer's* workspace, not the sum.  Optional pipelined
   execution fans independent layers over the
   :mod:`repro.runtime.parallel` process pool (deterministic output
   order, serial fallback).

Outputs are bit-identical to calling ``conv2d`` per layer with the same
algorithm — the session adds planning, reuse and observability, never
numerics.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from ..common.errors import ConvConfigError
from ..common.problem import ConvProblem
from .arena import ArenaStats
from .context import ExecutionContext, activate, current_context

#: Selection modes accepted by :class:`InferenceSession` on top of any
#: concrete algorithm name from ``repro.convolution.ALGORITHMS``.
SESSION_MODES = ("AUTO", "AUTO_HEURISTIC")

#: Winograd tile family each algorithm executes on (``None`` for
#: non-Winograd algorithms).  DWM decomposes onto f22-family parts.
TILE_FOR_ALGO = {
    "WINOGRAD": "f22",
    "WINOGRAD_NONFUSED": "f22",
    "WINOGRAD_DWM": "f22",
    "WINOGRAD_F44": "f44",
}


@dataclasses.dataclass(frozen=True)
class LayerPlan:
    """One layer's compiled execution decision.

    ``tile`` is the Winograd tile family the chosen algorithm executes
    on ("f22" / "f44"; ``None`` for non-Winograd algorithms).
    ``schedule`` is the SASS schedule the ``repro.sched`` search chose
    for a fused-kernel layer compiled with ``tune_schedule``; ``None``
    when tuning was off or another algorithm won.
    """

    prob: ConvProblem
    algo: str
    workspace_bytes: int
    predicted_seconds: float
    fallbacks: tuple[str, ...] = ()
    excluded: dict = dataclasses.field(default_factory=dict)
    schedule: object | None = None  # repro.sched.Schedule when tuned
    tile: str | None = None

    def to_dict(self) -> dict:
        return {
            "layer": self.prob.label(),
            "algo": self.algo,
            "tile": self.tile,
            "workspace_bytes": self.workspace_bytes,
            "predicted_seconds": self.predicted_seconds,
            "fallbacks": list(self.fallbacks),
            "excluded": dict(self.excluded),
            "schedule": self.schedule.to_dict() if self.schedule else None,
        }


@dataclasses.dataclass
class LayerRun:
    """Measured execution of one layer.

    Two clocks, deliberately kept apart:

    ``seconds`` is **worker compute time** — the wall-clock around the
    ``conv2d`` call in whichever process executed the layer.  Pipelined
    layers run concurrently, so these overlap and their sum can
    legitimately exceed ``SessionResult.total_seconds``; comparing the
    sum against the total is *not* a slowdown measurement.

    ``latency_seconds`` is **parent-side queue-to-done latency** — from
    the moment the parent handed the layer to an execution slot (which
    is also when its workspace was reserved) until its result was back.
    It includes pickling and pool round-trip overhead, so it is the
    number a serving caller waits for; on the serial path the two clocks
    measure nearly the same region and differ only by reservation and
    dispatch bookkeeping.
    """

    layer: str
    algo: str
    seconds: float
    workspace_bytes: int
    output_shape: tuple
    latency_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "layer": self.layer,
            "algo": self.algo,
            "seconds": self.seconds,
            "latency_seconds": self.latency_seconds,
            "workspace_bytes": self.workspace_bytes,
            "output_shape": list(self.output_shape),
        }


@dataclasses.dataclass
class SessionResult:
    """Per-layer and end-to-end statistics of one session run.

    ``total_seconds`` is parent wall-clock around the whole run.  Each
    :class:`LayerRun` carries two per-layer clocks: ``seconds`` (worker
    compute time — overlapping under pipelining, so the per-layer sum
    may exceed ``total_seconds``) and ``latency_seconds`` (parent-side
    queue-to-done latency, which is what ``total_seconds`` decomposes
    into).  See :class:`LayerRun` for the distinction.
    """

    layers: list[LayerRun]
    outputs: list[np.ndarray]
    total_seconds: float
    arena: ArenaStats
    pipelined: bool

    def to_dict(self) -> dict:
        """JSON-serializable stats (outputs excluded — they are tensors)."""
        return {
            "layers": [run.to_dict() for run in self.layers],
            "total_seconds": self.total_seconds,
            "pipelined": self.pipelined,
            "arena": dataclasses.asdict(self.arena),
        }

    def summary(self) -> str:
        from ..common.tables import format_table

        rows = [
            (run.layer, run.algo, run.workspace_bytes / (1024 * 1024),
             run.seconds * 1e3)
            for run in self.layers
        ]
        table = format_table(
            ["layer", "algo", "workspace MB", "ms"], rows,
            title="InferenceSession", float_fmt="{:.3f}",
        )
        a = self.arena
        return (
            f"{table}\n"
            f"end-to-end: {self.total_seconds * 1e3:.3f} ms over "
            f"{len(self.layers)} layers"
            f"{' (pipelined)' if self.pipelined else ''}\n"
            f"arena: peak {a.peak_bytes / (1024 * 1024):.3f} MB, "
            f"{a.reserves} reserves, {a.reuses} reuses, {a.grows} grows"
        )


def _pipeline_layer_worker(args):
    """Execute one layer in a pool worker (top level: pickles by name)."""
    prob, algo, x, f = args
    from ..convolution import conv2d

    t0 = time.perf_counter()
    y = conv2d(x, f, pad=prob.pad, stride=prob.stride, algo=algo)
    return y, time.perf_counter() - t0


class InferenceSession:
    """Compile a list of :class:`ConvProblem` layers; execute them as one.

    Parameters
    ----------
    problems: the layer stack (e.g. ``repro.models.paper_layers()``).
    mode: ``"AUTO_HEURISTIC"`` (default — perfmodel-ranked, no data
        touched at compile time), ``"AUTO"`` (timed trials on the first
        run's tensors), or any concrete algorithm name to force it for
        every layer.
    workspace_limit_bytes: excluded candidates whose closed-form
        workspace exceeds this budget; also installed as the arena's
        enforced limit.
    context: the owning :class:`ExecutionContext` (default: current).
    device: ranking device (default: the context's device).
    tune_schedule: run the ``repro.sched`` schedule-space search for
        WINOGRAD layers at compile time and record the winner on each
        :class:`LayerPlan`; ``None`` (default) defers to whether the
        context carries a ``schedule_search`` config.
    """

    def __init__(
        self,
        problems,
        *,
        mode: str = "AUTO_HEURISTIC",
        workspace_limit_bytes: int | None = None,
        context: ExecutionContext | None = None,
        device=None,
        tune_schedule: bool | None = None,
    ):
        problems = list(problems)
        if not problems:
            raise ConvConfigError("InferenceSession needs at least one layer")
        for prob in problems:
            if not isinstance(prob, ConvProblem):
                raise ConvConfigError(
                    f"layers must be ConvProblem instances, got {prob!r}"
                )
        from ..convolution.api import ALGORITHMS

        mode = mode.upper()
        if mode not in SESSION_MODES + ALGORITHMS:
            raise ConvConfigError(
                f"unknown session mode {mode!r}; choose from "
                f"{SESSION_MODES + ALGORITHMS}"
            )
        self.problems = problems
        self.mode = mode
        self.workspace_limit_bytes = workspace_limit_bytes
        self.context = context or current_context()
        if device is None:
            self.device = self.context.device
        else:
            from ..gpusim.arch import resolve_device

            self.device = resolve_device(device)
        if tune_schedule is None:
            tune_schedule = self.context.schedule_search is not None
        self.tune_schedule = tune_schedule
        self._plans: list[LayerPlan] | None = None
        if workspace_limit_bytes is not None:
            self.context.arena.set_limit(workspace_limit_bytes)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self, calibration=None) -> list[LayerPlan]:
        """Select an algorithm and workspace size for every layer (once).

        ``mode="AUTO"`` needs *calibration* — ``(inputs, filters)``
        sample tensors, one pair per layer — because its selection runs
        timed trials on real data (``run()`` passes its own tensors
        automatically).  The other modes compile without touching data.
        """
        if self._plans is not None:
            return self._plans
        from ..perfmodel.selection import rank_algorithms
        from ..perfmodel.workspace import dispatch_workspace_bytes

        plans: list[LayerPlan] = []
        with activate(self.context):
            for i, prob in enumerate(self.problems):
                with self.context.span(
                    "plan", prob.label(), mode=self.mode
                ) as span:
                    plan = self._plan_layer(
                        prob, rank_algorithms, dispatch_workspace_bytes,
                        calibration[0][i] if calibration else None,
                        calibration[1][i] if calibration else None,
                    )
                    span["algo"] = plan.algo
                    if plan.tile is not None:
                        span["tile"] = plan.tile
                    if plan.schedule is not None:
                        span["schedule"] = plan.schedule.label()
                plans.append(plan)
            # One buffer sized at the network's high-water mark: the core
            # of the arena story (not counted as a runtime "grow").
            self.context.arena.reserve_capacity(
                max(plan.workspace_bytes for plan in plans)
            )
        self._plans = plans
        return plans

    def _plan_layer(self, prob, rank_algorithms, workspace_bytes, x, f) -> LayerPlan:
        from ..perfmodel.selection import predicted_time

        if self.mode == "AUTO":
            if x is None or f is None:
                raise ConvConfigError(
                    'mode="AUTO" compiles from timed trials: pass '
                    "calibration=(inputs, filters) to compile(), or let "
                    "run() compile with its own tensors"
                )
            from ..convolution import conv2d
            from ..convolution.autotune import PlanKey

            conv2d(
                x, f, pad=prob.pad, stride=prob.stride, algo="AUTO",
                workspace_limit_bytes=self.workspace_limit_bytes,
                device=self.device, context=self.context,
                tune_schedule=self.tune_schedule,
            )
            key = PlanKey.from_problem(
                prob, np.result_type(x, f), self.workspace_limit_bytes,
                self.device.name, "AUTO",
            )
            plan = self.context.plans.lookup(key)
            assert plan is not None, "AUTO dispatch must have cached a plan"
            return LayerPlan(
                prob=prob,
                algo=plan.algo,
                workspace_bytes=workspace_bytes(prob, plan.algo),
                predicted_seconds=plan.trial_times.get(plan.algo, 0.0),
                fallbacks=plan.fallbacks,
                excluded=dict(plan.excluded),
                schedule=plan.schedule,
                tile=TILE_FOR_ALGO.get(plan.algo),
            )

        ranked, excluded = rank_algorithms(
            prob, self.device, self.workspace_limit_bytes
        )
        if self.mode == "AUTO_HEURISTIC":
            if not ranked:
                raise ConvConfigError(
                    f"no algorithm eligible for {prob} under workspace "
                    f"limit {self.workspace_limit_bytes}; excluded: {excluded}"
                )
            algo, fallbacks = ranked[0], tuple(ranked[1:])
        else:  # a forced concrete algorithm
            algo, fallbacks = self.mode, ()
            if algo in excluded:
                raise ConvConfigError(
                    f"forced algorithm {algo} cannot run {prob}: "
                    f"{excluded[algo]}"
                )
        schedule = None
        if self.tune_schedule and algo in ("WINOGRAD", "WINOGRAD_F44"):
            from ..sched import ScheduleSearchConfig, ensure_schedule

            config = self.context.schedule_search or ScheduleSearchConfig()
            schedule = ensure_schedule(
                device=self.device, config=config, context=self.context,
                tile=TILE_FOR_ALGO[algo],
            ).best.schedule
        return LayerPlan(
            prob=prob,
            algo=algo,
            workspace_bytes=workspace_bytes(prob, algo),
            predicted_seconds=predicted_time(prob, self.device, algo),
            fallbacks=fallbacks,
            excluded=excluded,
            schedule=schedule,
            tile=TILE_FOR_ALGO.get(algo),
        )

    @property
    def plans(self) -> list[LayerPlan] | None:
        """The compiled per-layer plans (``None`` before compilation)."""
        return self._plans

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, inputs, filters, *, pipeline: bool = False) -> SessionResult:
        """Execute every layer; returns outputs plus per-layer/e2e stats.

        *inputs* and *filters* are sequences with one NCHW activation
        and one KCRS filter per layer (the paper's layers are evaluated
        independently; chain outputs yourself for a sequential network).
        With ``pipeline=True`` the (independent) layers fan out over the
        process pool; a layer's workspace is reserved only while it
        occupies a pool slot, so the arena's peak (and the enforced
        budget) reflect the true concurrent residency at the effective
        worker count — never more than ``workers`` workspaces at once.
        """
        inputs, filters = list(inputs), list(filters)
        if len(inputs) != len(self.problems) or len(filters) != len(self.problems):
            raise ConvConfigError(
                f"session has {len(self.problems)} layers but got "
                f"{len(inputs)} inputs / {len(filters)} filters"
            )
        for prob, x, f in zip(self.problems, inputs, filters):
            expect_x = (prob.n, prob.c, prob.h, prob.w)
            expect_f = (prob.k, prob.c, prob.r, prob.s)
            if getattr(x, "shape", None) != expect_x:
                raise ConvConfigError(
                    f"layer {prob.label()}: input shape "
                    f"{getattr(x, 'shape', None)} != {expect_x}"
                )
            if getattr(f, "shape", None) != expect_f:
                raise ConvConfigError(
                    f"layer {prob.label()}: filter shape "
                    f"{getattr(f, 'shape', None)} != {expect_f}"
                )
        plans = self.compile(calibration=(inputs, filters))

        with activate(self.context):
            t0 = time.perf_counter()
            if pipeline and len(self.problems) > 1:
                runs, outputs = self._run_pipelined(plans, inputs, filters)
            else:
                runs, outputs = self._run_serial(plans, inputs, filters)
            total = time.perf_counter() - t0
        return SessionResult(
            layers=runs,
            outputs=outputs,
            total_seconds=total,
            arena=self.context.arena.stats(),
            pipelined=pipeline and len(self.problems) > 1,
        )

    def _run_serial(self, plans, inputs, filters):
        from ..convolution import conv2d

        runs: list[LayerRun] = []
        outputs: list[np.ndarray] = []
        for plan, x, f in zip(plans, inputs, filters):
            label = plan.prob.label()
            queued = time.perf_counter()
            with self.context.span("layer", label, algo=plan.algo):
                with self.context.arena.reserve(plan.workspace_bytes, tag=label):
                    t0 = time.perf_counter()
                    y = conv2d(
                        x, f, pad=plan.prob.pad, stride=plan.prob.stride,
                        algo=plan.algo,
                    )
                    dt = time.perf_counter() - t0
            runs.append(LayerRun(
                label, plan.algo, dt, plan.workspace_bytes, y.shape,
                latency_seconds=time.perf_counter() - queued,
            ))
            outputs.append(y)
        return runs, outputs

    def _run_pipelined(self, plans, inputs, filters):
        from .parallel import default_workers, parallel_map

        # Concurrent residency tracks *actual* concurrency: a layer's
        # workspace is reserved in on_start — i.e. only while the layer
        # occupies one of the pool's `workers` slots — and released in
        # on_done.  Reserving every layer up front would charge the
        # arena (and its enforced budget) for phantom concurrency the
        # pool can never reach, spuriously tripping WorkspaceLimitError
        # on sessions that fit the budget at the true pool width.
        workers = default_workers(len(plans))
        arena = self.context.arena
        blocks: list = [None] * len(plans)
        queued = [0.0] * len(plans)
        latency = [0.0] * len(plans)

        def on_start(i, _item):
            queued[i] = time.perf_counter()
            blocks[i] = arena.reserve(
                plans[i].workspace_bytes, tag=plans[i].prob.label()
            )

        def on_done(i):
            latency[i] = time.perf_counter() - queued[i]
            block = blocks[i]
            if block is not None and not block.released:
                block.release()

        results = parallel_map(
            _pipeline_layer_worker,
            [
                (plan.prob, plan.algo, x, f)
                for plan, x, f in zip(plans, inputs, filters)
            ],
            workers=workers,
            on_start=on_start,
            on_done=on_done,
        )
        runs = [
            LayerRun(
                plan.prob.label(), plan.algo, dt, plan.workspace_bytes, y.shape,
                latency_seconds=latency[i],
            )
            for i, (plan, (y, dt)) in enumerate(zip(plans, results))
        ]
        return runs, [y for y, _ in results]
