"""repro — reproduction of "Optimizing Batched Winograd Convolution on GPUs".

Yan, Wang & Chu, PPoPP '20 (DOI 10.1145/3332466.3374520), rebuilt in
pure Python: the Winograd algebra and every cuDNN baseline
(:mod:`repro.winograd`, :mod:`repro.convolution`), a reimplementation of
the paper's TuringAs SASS assembler (:mod:`repro.sass`), a
cycle-approximate Volta/Turing GPU simulator (:mod:`repro.gpusim`), the
paper's SASS kernels as parameterized generators (:mod:`repro.kernels`),
and the analytical models plus calibrated baselines that regenerate the
evaluation's tables and figures (:mod:`repro.perfmodel`).

Start with :func:`repro.convolution.conv2d` for the algorithms, or
:func:`repro.kernels.run_fused_sass_conv` for the full paper stack.
See DESIGN.md and EXPERIMENTS.md at the repository root.
"""

__version__ = "1.0.0"

__all__ = [
    "common",
    "convolution",
    "gpusim",
    "kernels",
    "models",
    "perfmodel",
    "sass",
    "winograd",
]
