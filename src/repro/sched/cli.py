"""``python -m repro sched`` — search the SASS schedule space.

Examples::

    python -m repro sched search                      # full §6 grid, V100
    python -m repro sched search --device RTX2070 --quick
    python -m repro sched search --batch 8 --json result.json --trace t.json
    python -m repro sched space --quick               # list the candidates

``search`` runs the successive-halving tuner, reports the winning
schedule plus the Fig. 7-9 orderings, then plans the requested Table-1
layers with ``tune_schedule`` so the winner lands in the plan cache and
the session trace.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import TYPE_CHECKING, Any

from ..common.errors import ReproError
from ..gpusim.arch import DEVICES, DeviceSpec
from .search import (
    ScheduleSearchConfig,
    SearchBudget,
    SearchResult,
    ensure_schedule,
    paper_ordering,
)
from .space import DEFAULT_SPACE, QUICK_SPACE, ScheduleSpace

if TYPE_CHECKING:
    from ..runtime import ExecutionContext

TABLE1_LAYERS = ("Conv2", "Conv3", "Conv4", "Conv5")


def _space(args: argparse.Namespace) -> ScheduleSpace:
    return QUICK_SPACE if args.quick else DEFAULT_SPACE


def _print_result(result: SearchResult, ordering: dict) -> None:
    from ..common.tables import format_table

    rows = [
        (score.schedule.label(), score.iters, score.cycles_per_iter,
         score.tflops)
        for score in result.ranking()
    ]
    print(format_table(
        ["schedule", "iters", "cycles/iter", "TFLOPS"], rows,
        title=f"final rung ({result.device})", float_fmt="{:.2f}",
    ))
    print(
        f"winner: {result.best.schedule.label()} "
        f"({result.best.cycles_per_iter:.0f} cycles/iter) — "
        f"{result.evaluations} evaluations over {len(result.rungs)} rungs, "
        f"{result.lint_gated} candidates lint-gated"
    )
    if result.pruned:
        print(
            f"statically pruned before rung 0 ({len(result.pruned)}): "
            + ", ".join(result.pruned)
        )
    ratios = {k: v for k, v in ordering.items() if k != "anchor"}
    if ratios:
        print(f"paper ordering (vs {ordering['anchor']}, rung-0 cycles):")
        for name, ratio in ratios.items():
            print(f"  {name:22s} {ratio:.4f}x")


def _plan_layers(
    args: argparse.Namespace, ctx: ExecutionContext, device: DeviceSpec
) -> list[dict]:
    from ..common.rng import make_rng, random_activation, random_filter
    from ..convolution import conv2d
    from ..models import resnet_layer

    names = [s.strip() for s in args.layers.split(",") if s.strip()]
    if not names:
        raise SystemExit("--layers needs at least one layer name")
    rng = make_rng(args.seed)
    rows = []
    for name in names:
        prob = resnet_layer(name, args.batch)
        x = random_activation(prob, rng)
        f = random_filter(prob, rng)
        conv2d(
            x, f, pad=prob.pad, algo=args.mode, device=device,
            context=ctx, tune_schedule=True,
        )
        rows.append(prob)
    from ..convolution.autotune import TUNED_TILE_FOR_ALGO

    plans = ctx.plans.snapshot()
    report = []
    for prob in rows:
        for key, plan in plans.items():
            if (key.n, key.c, key.h, key.w, key.k) == (
                    prob.n, prob.c, prob.h, prob.w, prob.k):
                report.append({
                    "layer": prob.label(),
                    "algo": plan.algo,
                    "tile": TUNED_TILE_FOR_ALGO.get(plan.algo),
                    "schedule": (
                        plan.schedule.to_dict() if plan.schedule else None
                    ),
                    "schedule_label": (
                        plan.schedule.label() if plan.schedule else "-"
                    ),
                })
                break
    return report


def cmd_search(args: argparse.Namespace) -> int:
    from ..runtime import ExecutionContext

    device = DEVICES[args.device]
    space = _space(args)
    budget = SearchBudget(
        base_iters=args.base_iters, iters_step=args.iters_step,
        eta=args.eta, max_rungs=args.rungs,
        prune_margin=args.prune_margin,
    )
    config = ScheduleSearchConfig(space=space, budget=budget)
    ctx = ExecutionContext(device=device, schedule_search=config)
    print(
        f"searching {len(space)} schedules on {device.name} "
        f"(eta={budget.eta}, rungs={budget.max_rungs}, "
        f"base iters={budget.base_iters})..."
    )
    try:
        result = ensure_schedule(device=device, config=config, context=ctx)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    ordering = paper_ordering(result)
    _print_result(result, ordering)

    layers: list[dict] = []
    if not args.no_layers:
        try:
            layers = _plan_layers(args, ctx, device)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        from ..common.tables import format_table

        print(format_table(
            ["layer", "algo", "tile", "schedule"],
            [(r["layer"], r["algo"], r["tile"] or "-", r["schedule_label"])
             for r in layers],
            title=f"plans (mode={args.mode}, batch={args.batch})",
        ))

    if args.json:
        payload = {
            "search": result.to_dict(),
            "paper_ordering": ordering,
            "layers": layers,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    if args.trace:
        ctx.write_trace(args.trace)
        print(f"wrote {args.trace} ({len(ctx.export_trace())} spans)")
    return 0


def cmd_space(args: argparse.Namespace) -> int:
    space = _space(args)
    print(f"{len(space)} candidates [{space.signature()}]:")
    for schedule in space.candidates():
        print(f"  {schedule.label()}")
    return 0


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--quick", action="store_true",
                   help="the 12-point CI subset instead of the full 54-point grid")


def add_sched_parsers(sub: Any) -> None:
    """Register ``search`` and ``space`` on an argparse subparsers obj."""
    p = sub.add_parser(
        "search",
        help="run the successive-halving schedule search",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_common(p)
    p.add_argument("--device", default="V100", choices=sorted(DEVICES),
                   help="simulated device (default: V100)")
    p.add_argument("--eta", type=int, default=3,
                   help="keep ceil(n/eta) candidates per rung (default: 3)")
    p.add_argument("--rungs", type=int, default=3,
                   help="maximum successive-halving rungs (default: 3)")
    p.add_argument("--base-iters", type=int, default=3,
                   help="rung-0 main-loop iterations (default: 3)")
    p.add_argument("--iters-step", type=int, default=2,
                   help="extra iterations per rung (default: 2)")
    p.add_argument("--prune-margin", type=float, default=None,
                   metavar="RATIO",
                   help="statically prune candidates whose serialized "
                        "issue-cycle cost exceeds RATIO x the cheapest "
                        "candidate's before any simulation (e.g. 1.05; "
                        "default: no pruning)")
    p.add_argument("--layers", default=",".join(TABLE1_LAYERS),
                   help="Table-1 layers to plan with the winner "
                        "(default: Conv2,Conv3,Conv4,Conv5)")
    p.add_argument("--batch", type=int, default=32,
                   help="batch size N for the planned layers (default: 32)")
    p.add_argument("--mode", default="AUTO_HEURISTIC",
                   choices=["AUTO", "AUTO_HEURISTIC"],
                   help="dispatch mode for the planned layers")
    p.add_argument("--no-layers", action="store_true",
                   help="search only; skip planning the Table-1 layers")
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed for the layer tensors (default: 0)")
    p.add_argument("--json", metavar="PATH",
                   help="write the search result + plans as JSON")
    p.add_argument("--trace", metavar="PATH",
                   help="write the context's trace spans as JSON")
    p.set_defaults(func=cmd_search)

    q = sub.add_parser("space", help="list the schedule candidates")
    _add_common(q)
    q.set_defaults(func=cmd_space)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro sched",
        description="Autotune the fused kernel's SASS instruction schedule",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    add_sched_parsers(sub)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
