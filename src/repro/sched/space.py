"""The SASS schedule-space: §6's scheduling knobs as first-class data.

The paper's enabling result is that *instruction scheduling* — not
algorithm or tiling — is worth double-digit percent on the fused
kernel's main loop: the yield-flag strategy (Fig. 7, ~1.1×), the LDG
interleave distance (Fig. 8, up to 1.24×) and the STS interleave
distance (Fig. 9, ~2%).  :class:`Schedule` packages those knobs (plus
the §3.4 fragment double-buffer depth) as one hashable search point,
and :class:`ScheduleSpace` enumerates the candidate grid the
:mod:`repro.sched.search` tuner prunes.

A :class:`Schedule` is deliberately *not* a
:class:`~repro.kernels.winograd_f22.Tunables`: ``Tunables`` also carries
structural knobs (``bk``, ``smem_layout``, ``use_p2r``) that change the
kernel's resource shape and are selected by the planner, not the
scheduler.  :meth:`Schedule.to_tunables` grafts a schedule onto any
structural base.
"""

from __future__ import annotations

import dataclasses
import itertools

from ..common.errors import ConvConfigError
from ..kernels.schedules import YIELD_STRATEGIES
from ..kernels.winograd_fused import Tunables, default_tunables
from ..winograd.tilespec import get_tile

#: The four Tunables fields a Schedule owns (everything else on
#: Tunables is structure, not schedule).
SCHEDULE_FIELDS = (
    "yield_strategy", "ldg_interleave", "sts_interleave", "double_buffer",
)


@dataclasses.dataclass(frozen=True)
class Schedule:
    """One point of the SASS instruction-scheduling space (§6, §3.4).

    Fields map one-to-one onto the paper's studies:

    * ``yield_strategy`` — Fig. 7: ``natural`` (never clear the stay
      bit; the paper's kernel), ``nvcc8`` / ``cudnn7`` (a forced warp
      switch every 8 / 7 float instructions);
    * ``ldg_interleave`` — Fig. 8: FFMAs between global prefetch loads
      (cuDNN ≈ 2, the paper 8);
    * ``sts_interleave`` — Fig. 9: FFMAs between shared-memory staging
      stores (NVCC/cuDNN ≈ 2, the paper 6);
    * ``double_buffer`` — §3.4: fragment register buffer depth (2 =
      the paper's ping-pong, 1 = single-buffered ablation).
    """

    yield_strategy: str = "natural"
    ldg_interleave: int = 8
    sts_interleave: int = 6
    double_buffer: int = 2

    def __post_init__(self) -> None:
        if self.yield_strategy not in YIELD_STRATEGIES:
            raise ConvConfigError(
                f"unknown yield strategy {self.yield_strategy!r}; "
                f"use one of {YIELD_STRATEGIES}"
            )
        for field in ("ldg_interleave", "sts_interleave"):
            value = getattr(self, field)
            if not isinstance(value, int) or value < 1:
                raise ConvConfigError(f"{field} must be an int >= 1, got {value!r}")
        if self.double_buffer not in (1, 2):
            raise ConvConfigError(
                f"double_buffer must be 1 or 2, got {self.double_buffer!r}"
            )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_tunables(self, base: Tunables | None = None, tile=None) -> Tunables:
        """Graft this schedule onto *base*'s structural knobs.

        With no explicit *base*, the structural knobs come from the tile
        family's defaults (:func:`~repro.kernels.winograd_fused.default_tunables`),
        so an f44 schedule lands on ``F44Tunables`` — whose structural
        invariants (bk=16, transposed staging, mandatory ping-pong) then
        validate the graft.
        """
        base = base or default_tunables(tile)
        return dataclasses.replace(
            base, **{field: getattr(self, field) for field in SCHEDULE_FIELDS}
        )

    @classmethod
    def from_tunables(cls, tunables: Tunables) -> "Schedule":
        """The schedule-shaped projection of a full ``Tunables``."""
        return cls(**{field: getattr(tunables, field) for field in SCHEDULE_FIELDS})

    def label(self) -> str:
        """Compact display name, e.g. ``yield=natural/ldg8/sts6/db2``."""
        return (
            f"yield={self.yield_strategy}/ldg{self.ldg_interleave}"
            f"/sts{self.sts_interleave}/db{self.double_buffer}"
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "Schedule":
        unknown = set(payload) - set(SCHEDULE_FIELDS)
        if unknown:
            raise ConvConfigError(f"unknown Schedule fields: {sorted(unknown)}")
        return cls(**payload)


#: The schedule the paper ships (natural yield, LDG8, STS6, ping-pong).
PAPER_SCHEDULE = Schedule()

#: cuDNN's inferred schedule (§6): yield every 7, LDG every 2, STS every 2.
CUDNN_SCHEDULE = Schedule(yield_strategy="cudnn7", ldg_interleave=2, sts_interleave=2)


@dataclasses.dataclass(frozen=True)
class ScheduleSpace:
    """A cartesian grid of :class:`Schedule` candidates.

    The defaults span exactly the values the paper sweeps in
    Figs. 7-9 plus the two buffer depths — 54 candidates, which is why
    the tuner prunes with successive halving instead of measuring every
    point at full budget.
    """

    yield_strategies: tuple[str, ...] = YIELD_STRATEGIES
    ldg_interleaves: tuple[int, ...] = (2, 4, 8)
    sts_interleaves: tuple[int, ...] = (2, 4, 6)
    double_buffers: tuple[int, ...] = (1, 2)

    def __post_init__(self) -> None:
        for name in ("yield_strategies", "ldg_interleaves",
                     "sts_interleaves", "double_buffers"):
            values = getattr(self, name)
            if not values:
                raise ConvConfigError(f"ScheduleSpace.{name} must be non-empty")
            if len(set(values)) != len(values):
                raise ConvConfigError(f"ScheduleSpace.{name} has duplicates: {values}")
        # Validate every axis value by constructing one Schedule per value.
        for ys in self.yield_strategies:
            Schedule(yield_strategy=ys)
        for ldg in self.ldg_interleaves:
            Schedule(ldg_interleave=ldg)
        for sts in self.sts_interleaves:
            Schedule(sts_interleave=sts)
        for db in self.double_buffers:
            Schedule(double_buffer=db)

    def __len__(self) -> int:
        return (
            len(self.yield_strategies) * len(self.ldg_interleaves)
            * len(self.sts_interleaves) * len(self.double_buffers)
        )

    def candidates(self) -> list[Schedule]:
        """Every grid point, in deterministic axis-major order."""
        return [
            Schedule(yield_strategy=ys, ldg_interleave=ldg,
                     sts_interleave=sts, double_buffer=db)
            for ys, ldg, sts, db in itertools.product(
                self.yield_strategies, self.ldg_interleaves,
                self.sts_interleaves, self.double_buffers,
            )
        ]

    def __contains__(self, schedule: Schedule) -> bool:
        return (
            schedule.yield_strategy in self.yield_strategies
            and schedule.ldg_interleave in self.ldg_interleaves
            and schedule.sts_interleave in self.sts_interleaves
            and schedule.double_buffer in self.double_buffers
        )

    def signature(self) -> str:
        """Stable identity string (memo keys for per-context search results)."""
        return (
            f"yield:{','.join(self.yield_strategies)}"
            f"|ldg:{','.join(map(str, self.ldg_interleaves))}"
            f"|sts:{','.join(map(str, self.sts_interleaves))}"
            f"|db:{','.join(map(str, self.double_buffers))}"
        )

    def axis_variants(self, field: str, base: Schedule = PAPER_SCHEDULE) -> dict:
        """Schedules varying one axis with the others pinned to *base*.

        This is how the Fig. 7-9 benchmarks and the tuner share one
        vocabulary: ``axis_variants("ldg_interleave")`` yields the
        Fig. 8 sweep ``{"ldg2": ..., "ldg4": ..., "ldg8": ...}``.
        """
        axes = {
            "yield_strategy": ("yield_strategies", lambda v: f"yield={v}"),
            "ldg_interleave": ("ldg_interleaves", lambda v: f"ldg{v}"),
            "sts_interleave": ("sts_interleaves", lambda v: f"sts{v}"),
            "double_buffer": ("double_buffers", lambda v: f"db{v}"),
        }
        if field not in axes:
            raise ConvConfigError(
                f"unknown schedule axis {field!r}; use one of {sorted(axes)}"
            )
        attr, fmt = axes[field]
        return {
            fmt(value): dataclasses.replace(base, **{field: value})
            for value in getattr(self, attr)
        }


#: The full §6 grid (54 points).
DEFAULT_SPACE = ScheduleSpace()

#: A 12-point subset for CI / --quick runs: the Fig. 7 yield axis with
#: the extreme LDG/STS distances, paper buffering only.
QUICK_SPACE = ScheduleSpace(
    ldg_interleaves=(2, 8), sts_interleaves=(2, 6), double_buffers=(2,)
)

#: The F(4×4,3×3) grid: the f44 generator's larger fragments make the
#: single-buffered ablation structurally infeasible (``F44Tunables``
#: pins ``double_buffer=2``), so that axis collapses — 27 points.
F44_SPACE = ScheduleSpace(double_buffers=(2,))


def space_for_tile(tile=None) -> ScheduleSpace:
    """The searchable schedule grid for one tile family.

    f22 gets the full §6 grid; f44 drops the ``double_buffer=1`` axis
    its structural invariants forbid.  This is what keeps per-family
    searches from lint-failing on candidates the generator would reject
    at construction time.
    """
    return F44_SPACE if get_tile(tile).name == "f44" else DEFAULT_SPACE
