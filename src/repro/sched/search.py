"""Schedule-space autotuner: successive halving over SASS schedules.

maxDNN (Lavin 2015) and the Citadel Volta microbenchmarking study treat
the *instruction schedule* as the optimization target; TuringAs exists
to make that space writable.  This module makes it **searchable**: every
:class:`~repro.sched.space.Schedule` candidate is generated through the
existing ``kernels``/``sass`` pipeline, statically vetted by sasslint,
scored with the simulator in the loop (gpusim), and pruned with a plain
successive-halving schedule instead of an exhaustive sweep:

* rung 0 measures **every** candidate at the cheapest budget the
  differential microbenchmark allows (3 main-loop iterations);
* each following rung keeps the best ``1/eta`` fraction and re-measures
  at a larger iteration budget, so the expensive, high-fidelity
  simulations are spent only on surviving candidates.

Repeated points are (nearly) free: kernel builds come from the
:class:`~repro.kernels.cache.KernelBuildCache` and simulations from the
two-tier :class:`~repro.kernels.cache.SimulationCache` — and because a
rung-``r+1`` measurement at ``iters`` reuses the rung-``r`` simulation
at ``iters - 2`` as its differential baseline, promotion never repays
for cycles already simulated.

Every candidate evaluation records a ``"sched"`` trace span on the
:class:`~repro.runtime.ExecutionContext`, so a search is fully
observable in the session JSON trace.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from collections.abc import Iterable
from typing import TYPE_CHECKING, Any

from ..common.errors import ConvConfigError
from ..gpusim.arch import DeviceSpec
from ..kernels.cache import build_fused_kernel
from ..kernels.runner import (
    ensure_lint_clean,
    lint_family_key,
    measure_main_loop,
    prefetch_main_loop_sims,
)
from ..kernels.winograd_fused import Tunables
from ..winograd.tilespec import get_tile
from .space import (
    DEFAULT_SPACE,
    PAPER_SCHEDULE,
    Schedule,
    ScheduleSpace,
    space_for_tile,
)

if TYPE_CHECKING:
    from ..common.problem import ConvProblem
    from ..runtime import ExecutionContext
    from ..sass.analysis import StaticReport


def _ctx(context: ExecutionContext | None = None) -> ExecutionContext:
    if context is not None:
        return context
    from ..runtime import current_context

    return current_context()


def _surrogate_problem() -> ConvProblem:
    # The main loop's per-iteration cost is layer-independent at fixed
    # tunables (§4: same block shape); the layer model's mid-size
    # surrogate keeps each simulation small.
    from ..perfmodel.layer_model import _SURROGATE

    return _SURROGATE


@dataclasses.dataclass(frozen=True)
class SearchBudget:
    """Successive-halving knobs (see ``docs/schedules.md``).

    ``base_iters`` is the rung-0 simulated main-loop iteration count
    (the differential measurement needs >= 3); every later rung adds
    ``iters_step`` iterations.  Each rung keeps ``ceil(n / eta)``
    survivors, stopping after ``max_rungs`` rungs or when a single
    candidate remains.

    ``prune_margin`` opts into the static pre-simulation pruner: before
    rung 0, every candidate's lint-gated kernel build is also statically
    costed (:func:`repro.sass.analysis.static_report`'s serialized issue
    cycles), and candidates costing more than ``prune_margin`` times the
    cheapest candidate are dropped without ever being simulated.  The
    statically cheapest candidate always survives.  ``None`` (the
    default) disables pruning, so every candidate is measured — the
    perf-regression gate and the figure benchmarks rely on that full
    rung-0 coverage.
    """

    base_iters: int = 3
    iters_step: int = 2
    eta: int = 3
    max_rungs: int = 3
    num_blocks: int | None = None
    prune_margin: float | None = None

    def __post_init__(self) -> None:
        if self.base_iters < 3:
            raise ConvConfigError(
                f"base_iters must be >= 3 (differential measure), "
                f"got {self.base_iters}"
            )
        if self.iters_step < 1:
            raise ConvConfigError(f"iters_step must be >= 1, got {self.iters_step}")
        if self.eta < 2:
            raise ConvConfigError(f"eta must be >= 2, got {self.eta}")
        if self.max_rungs < 1:
            raise ConvConfigError(f"max_rungs must be >= 1, got {self.max_rungs}")
        if self.num_blocks is not None and self.num_blocks < 1:
            raise ConvConfigError(
                f"num_blocks must be >= 1 or None, got {self.num_blocks}"
            )
        if self.prune_margin is not None and self.prune_margin < 1.0:
            raise ConvConfigError(
                "prune_margin is a ratio to the cheapest candidate's "
                f"static cost and must be >= 1.0, got {self.prune_margin}"
            )

    def rung_iters(self, rung: int) -> int:
        return self.base_iters + rung * self.iters_step

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class ScheduleSearchConfig:
    """What a context-level opt-in to schedule search runs.

    ``tile`` names the kernel family the search targets ("f22" default);
    each family gets its own :class:`~repro.sched.ScheduleBook` entry,
    so a session dispatching both f22 and f44 layers pays for (at most)
    one search per family per device.
    """

    space: ScheduleSpace = DEFAULT_SPACE
    budget: SearchBudget = SearchBudget()
    base_tunables: Tunables | None = None
    tile: str = "f22"

    @classmethod
    def for_tile(cls, tile, budget: SearchBudget | None = None) -> "ScheduleSearchConfig":
        """A family-targeted config over that family's searchable grid."""
        spec = get_tile(tile)
        return cls(
            space=space_for_tile(spec),
            budget=budget or SearchBudget(),
            tile=spec.name,
        )

    def with_tile(self, tile) -> "ScheduleSearchConfig":
        """This config retargeted at another family.

        Same budget; the space and structural base are re-derived from
        the new family (a space or ``base_tunables`` chosen for one
        generator does not transfer to another's invariants).
        """
        spec = get_tile(tile)
        if spec.name == self.tile:
            return self
        return ScheduleSearchConfig(
            space=space_for_tile(spec), budget=self.budget, tile=spec.name
        )


@dataclasses.dataclass(frozen=True)
class CandidateScore:
    """One schedule's measured main-loop cost at one budget."""

    schedule: Schedule
    iters: int
    cycles_per_iter: float
    tflops: float
    sol: float

    def to_dict(self) -> dict:
        return {
            "schedule": self.schedule.to_dict(),
            "label": self.schedule.label(),
            "iters": self.iters,
            "cycles_per_iter": self.cycles_per_iter,
            "tflops": self.tflops,
            "sol": self.sol,
        }


@dataclasses.dataclass
class SearchResult:
    """Outcome of one successive-halving run."""

    device: str
    space_signature: str
    budget: SearchBudget
    rungs: list[list[CandidateScore]]  # per rung, ranked best-first
    best: CandidateScore
    evaluations: int
    lint_gated: int  # candidates statically vetted before scoring
    #: Labels of candidates the static pruner dropped before rung 0
    #: (empty unless ``SearchBudget.prune_margin`` opted in).
    pruned: list[str] = dataclasses.field(default_factory=list)
    #: Kernel family the search targeted ("f22" / "f44").
    tile: str = "f22"

    @property
    def schedule(self) -> Schedule:
        return self.best.schedule

    def ranking(self) -> list[CandidateScore]:
        """The final rung's scores, best first."""
        return list(self.rungs[-1])

    def score_for(self, schedule: Schedule) -> CandidateScore | None:
        """The *latest* (highest-budget) score of one candidate, if any."""
        for rung in reversed(self.rungs):
            for score in rung:
                if score.schedule == schedule:
                    return score
        return None

    def rung0_score_for(self, schedule: Schedule) -> CandidateScore | None:
        """The rung-0 score — the only rung where every candidate was
        measured at the *same* budget, so cross-candidate ratios are
        meaningful (simulated marginal cycles/iter drifts with the
        iteration budget, so scores from different rungs never compare)."""
        for score in self.rungs[0]:
            if score.schedule == schedule:
                return score
        return None

    def to_dict(self) -> dict:
        return {
            "device": self.device,
            "tile": self.tile,
            "space": self.space_signature,
            "budget": self.budget.to_dict(),
            "best": self.best.to_dict(),
            "evaluations": self.evaluations,
            "lint_gated": self.lint_gated,
            "pruned": list(self.pruned),
            "rungs": [[s.to_dict() for s in rung] for rung in self.rungs],
        }

    def validate_on(self, device, **kwargs):
        """Re-simulate this search's winner on another device.

        Convenience wrapper over
        :func:`repro.sched.crossdev.validate_plan_on`; see there for the
        penalty semantics and keyword arguments.
        """
        from .crossdev import validate_plan_on

        return validate_plan_on(self, device, **kwargs)


def evaluate_schedule(
    schedule: Schedule,
    device: DeviceSpec,
    *,
    iters: int = 3,
    num_blocks: int | None = None,
    base_tunables: Tunables | None = None,
    prob: ConvProblem | None = None,
    context: ExecutionContext | None = None,
    tile=None,
) -> CandidateScore:
    """Score one schedule with the simulator in the loop.

    Builds (or fetches) the main-loop-only kernel for the schedule's
    tunables — for the *tile* family, f22 by default — and measures
    steady-state cycles per bc-iteration; records a ``"sched"`` trace
    span carrying the result.  Lint gating happens on build via the
    context's :class:`~repro.kernels.runner.LintGate`.
    """
    ctx = _ctx(context)
    spec = get_tile(tile)
    prob = prob if prob is not None else _surrogate_problem()
    tunables = schedule.to_tunables(base_tunables, spec)
    with ctx.span(
        "sched", schedule.label(), device=device.name, iters=iters,
        tile=spec.name,
    ) as span:
        meas = measure_main_loop(
            prob, device=device, tunables=tunables, iters=iters,
            num_blocks=num_blocks, context=ctx, tile=spec,
        )
        span["cycles_per_iter"] = meas.cycles_per_iter
        span["tflops"] = meas.tflops
    return CandidateScore(
        schedule=schedule,
        iters=iters,
        cycles_per_iter=meas.cycles_per_iter,
        tflops=meas.tflops,
        sol=meas.sol,
    )


def prefetch_schedules(
    schedules: Iterable[Schedule],
    device: DeviceSpec,
    *,
    iters: int = 3,
    num_blocks: int | None = None,
    base_tunables: Tunables | None = None,
    prob: ConvProblem | None = None,
    context: ExecutionContext | None = None,
    tile=None,
) -> int:
    """Batch-simulate many schedules' differential runs ahead of scoring.

    Routes every uncached ``(schedule, iters)`` and ``(schedule,
    iters − 2)`` simulation through
    :func:`~repro.gpusim.launch.simulate_batch` (one shared decode +
    ``GlobalMemory`` image), so subsequent :func:`evaluate_schedule`
    calls are pure cache hits.  Returns the number of simulations run.
    """
    spec = get_tile(tile)
    prob = prob if prob is not None else _surrogate_problem()
    return prefetch_main_loop_sims(
        prob,
        device,
        [s.to_tunables(base_tunables, spec) for s in schedules],
        (iters, iters - 2),
        num_blocks=num_blocks,
        context=context,
        tile=spec,
    )


def lint_gate_candidate(
    schedule: Schedule,
    device: DeviceSpec,
    *,
    iters: int = 3,
    base_tunables: Tunables | None = None,
    prob: ConvProblem | None = None,
    context: ExecutionContext | None = None,
    tile=None,
) -> None:
    """Statically vet one candidate's generated SASS (sasslint).

    Raises :class:`~repro.common.errors.LintError` on any error-severity
    diagnostic.  Builds through the kernel-build cache, so a vetted
    candidate's later measurement reuses the assembled kernel.
    """
    ctx = _ctx(context)
    spec = get_tile(tile)
    prob = prob if prob is not None else _surrogate_problem()
    tunables = schedule.to_tunables(base_tunables, spec)
    kernel = build_fused_kernel(
        prob, tunables, device.name,
        main_loop_only=True, iters=iters, tile=spec, context=ctx,
    )
    ensure_lint_clean(
        kernel, context=ctx,
        family=lint_family_key(prob, device, tunables, tile=spec),
    )


def static_cost_candidate(
    schedule: Schedule,
    device: DeviceSpec,
    *,
    iters: int = 3,
    base_tunables: Tunables | None = None,
    prob: ConvProblem | None = None,
    context: ExecutionContext | None = None,
    tile=None,
) -> StaticReport:
    """The static issue-cost report of one candidate's main-loop kernel.

    Returns :class:`repro.sass.analysis.StaticReport`.  Builds through
    the kernel-build cache, so on the search path (after
    :func:`lint_gate_candidate`) this re-costs an already-assembled
    kernel — no extra assembly.  ``static_issue_cycles`` is the
    serialized per-warp issue cost the simulator will charge: candidates
    with identical instruction streams but different control codes
    (yield strategies, interleaves, buffering depths) differ statically
    in exactly that quantity, which is what makes pre-simulation pruning
    sound for *this* space.
    """
    from ..sass.analysis import AnalysisContext, static_report

    ctx = _ctx(context)
    spec = get_tile(tile)
    prob = prob if prob is not None else _surrogate_problem()
    tunables = schedule.to_tunables(base_tunables, spec)
    kernel = build_fused_kernel(
        prob, tunables, device.name,
        main_loop_only=True, iters=iters, tile=spec, context=ctx,
    )
    return static_report(
        AnalysisContext(instructions=kernel.instructions, meta=kernel.meta)
    )


def prune_candidates(
    candidates: list[Schedule],
    device: DeviceSpec,
    margin: float,
    *,
    iters: int = 3,
    base_tunables: Tunables | None = None,
    prob: ConvProblem | None = None,
    context: ExecutionContext | None = None,
    tile=None,
) -> tuple[list[Schedule], list[str]]:
    """Split *candidates* into (survivors, pruned labels) by static cost.

    A candidate is pruned when its ``static_issue_cycles`` exceeds
    ``margin`` times the cheapest candidate's — it cannot plausibly win
    rung 0, so simulating it would be wasted budget.  The cheapest
    candidate always survives, so the result is never empty.
    """
    costs = {
        schedule.label(): static_cost_candidate(
            schedule, device, iters=iters,
            base_tunables=base_tunables, prob=prob, context=context,
            tile=tile,
        ).static_issue_cycles
        for schedule in candidates
    }
    floor = min(costs.values())
    survivors: list[Schedule] = []
    pruned: list[str] = []
    for schedule in candidates:
        if costs[schedule.label()] > margin * floor:
            pruned.append(schedule.label())
        else:
            survivors.append(schedule)
    return survivors, pruned


def successive_halving(
    space: ScheduleSpace | None = None,
    device: DeviceSpec | None = None,
    *,
    budget: SearchBudget | None = None,
    base_tunables: Tunables | None = None,
    prob: ConvProblem | None = None,
    candidates: list[Schedule] | None = None,
    context: ExecutionContext | None = None,
    tile=None,
) -> SearchResult:
    """Prune *space* down to one winning :class:`Schedule`.

    Rung 0 lint-gates and measures every candidate at ``base_iters``;
    each later rung keeps the best ``ceil(n / eta)`` and re-measures at
    a larger iteration budget.  Ranking is by steady-state cycles per
    main-loop iteration (ascending), with the schedule label as a
    deterministic tie-break.  Returns the full rung history so callers
    (figures, the perf gate, the CLI) can read every intermediate score.
    """
    from ..runtime import activate

    ctx = _ctx(context)
    device = device or ctx.device
    budget = budget or SearchBudget()
    spec = get_tile(tile)
    if candidates is None:
        space = space or space_for_tile(spec)
        candidates = space.candidates()
        signature = space.signature()
    else:
        candidates = list(candidates)
        signature = f"explicit:{len(candidates)}"
    if not candidates:
        raise ConvConfigError("schedule search needs at least one candidate")

    rungs: list[list[CandidateScore]] = []
    evaluations = 0
    with activate(ctx):
        with ctx.span(
            "sched_search", signature, device=device.name,
            candidates=len(candidates), tile=spec.name,
        ) as span:
            for candidate in candidates:
                lint_gate_candidate(
                    candidate, device, iters=budget.rung_iters(0),
                    base_tunables=base_tunables, prob=prob, context=ctx,
                    tile=spec,
                )
            lint_gated = len(candidates)

            pruned: list[str] = []
            if budget.prune_margin is not None and len(candidates) > 1:
                candidates, pruned = prune_candidates(
                    candidates, device, budget.prune_margin,
                    iters=budget.rung_iters(0),
                    base_tunables=base_tunables, prob=prob, context=ctx,
                    tile=spec,
                )
                span["pruned"] = len(pruned)

            survivors = candidates
            for rung in range(budget.max_rungs):
                iters = budget.rung_iters(rung)
                # Batch the rung's simulations through one shared decode
                # + GlobalMemory image; the per-candidate scoring below
                # then runs entirely against the simulation cache.
                prefetch_schedules(
                    survivors, device, iters=iters,
                    num_blocks=budget.num_blocks,
                    base_tunables=base_tunables, prob=prob, context=ctx,
                    tile=spec,
                )
                scores = [
                    evaluate_schedule(
                        s, device, iters=iters, num_blocks=budget.num_blocks,
                        base_tunables=base_tunables, prob=prob, context=ctx,
                        tile=spec,
                    )
                    for s in survivors
                ]
                evaluations += len(scores)
                scores.sort(key=lambda s: (s.cycles_per_iter, s.schedule.label()))
                rungs.append(scores)
                if len(scores) == 1:
                    break
                keep = max(1, math.ceil(len(scores) / budget.eta))
                if rung == budget.max_rungs - 1:
                    break
                survivors = [s.schedule for s in scores[:keep]]
            span["evaluations"] = evaluations
            span["best"] = rungs[-1][0].schedule.label()

    return SearchResult(
        device=device.name,
        space_signature=signature,
        budget=budget,
        rungs=rungs,
        best=rungs[-1][0],
        evaluations=evaluations,
        lint_gated=lint_gated,
        pruned=pruned,
        tile=spec.name,
    )


class ScheduleBook:
    """Per-context memo of search winners, keyed by (device, space, budget).

    One :class:`~repro.runtime.ExecutionContext` owns one book; the
    AUTO dispatch path and :class:`~repro.runtime.InferenceSession`
    consult it so a whole layer stack pays for at most one search per
    device.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[tuple, SearchResult] = {}

    @staticmethod
    def _key(device_name: str, config: ScheduleSearchConfig) -> tuple:
        return (
            device_name, config.tile, config.space.signature(),
            config.budget, config.base_tunables,
        )

    def get_or_search(self, device: DeviceSpec, config: ScheduleSearchConfig,
                      context: ExecutionContext | None = None) -> SearchResult:
        key = self._key(device.name, config)
        with self._lock:
            result = self._entries.get(key)
        if result is not None:
            return result
        # Search outside the lock (it is long); a concurrent duplicate
        # search is wasteful but harmless — last writer wins with an
        # identical (deterministic) result.
        result = successive_halving(
            config.space, device, budget=config.budget,
            base_tunables=config.base_tunables, context=context,
            tile=config.tile,
        )
        with self._lock:
            self._entries.setdefault(key, result)
            return self._entries[key]

    def lookup(self, device_name: str, config: ScheduleSearchConfig) -> SearchResult | None:
        with self._lock:
            return self._entries.get(self._key(device_name, config))

    def results(self) -> list[SearchResult]:
        with self._lock:
            return list(self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


def ensure_schedule(
    device: DeviceSpec | None = None,
    config: ScheduleSearchConfig | None = None,
    context: ExecutionContext | None = None,
    tile=None,
) -> SearchResult:
    """The context's memoized search result for *device* (searching once).

    *config* defaults to the context's ``schedule_search`` configuration
    (or a fresh :class:`ScheduleSearchConfig` if the context has none).
    An explicit *tile* retargets the config at that kernel family
    (:meth:`ScheduleSearchConfig.with_tile`), so f22 and f44 layers each
    get their own memoized search.
    """
    ctx = _ctx(context)
    device = device or ctx.device
    config = config or getattr(ctx, "schedule_search", None) or ScheduleSearchConfig()
    if tile is not None:
        config = config.with_tile(tile)
    return ctx.schedules.get_or_search(device, config, context=ctx)


def paper_ordering(result: SearchResult) -> dict:
    """The Fig. 7-9 orderings extracted from one search's rung-0 scores.

    Returns ratio entries (>1.0 means the paper's choice wins) for every
    axis the searched space covered, anchored at :data:`PAPER_SCHEDULE`:

    * ``natural_over_nvcc8`` / ``natural_over_cudnn7`` — Fig. 7;
    * ``ldg8_over_ldg2`` — Fig. 8 (paper: up to 1.24×);
    * ``sts6_over_sts2`` — Fig. 9 (paper: ~1.02×);
    * ``db2_over_db1`` — the §3.4 double-buffer ablation.

    Ratios are cycles(worse) / cycles(paper's choice), i.e. the
    simulated main-loop *throughput* advantage of the paper's setting.
    """

    def cycles(**kwargs: Any) -> float | None:
        score = result.rung0_score_for(dataclasses.replace(PAPER_SCHEDULE, **kwargs))
        return score.cycles_per_iter if score else None

    base = cycles()
    report: dict = {"anchor": PAPER_SCHEDULE.label()}
    if base is None:
        return report
    pairs = {
        "natural_over_nvcc8": cycles(yield_strategy="nvcc8"),
        "natural_over_cudnn7": cycles(yield_strategy="cudnn7"),
        "ldg8_over_ldg2": cycles(ldg_interleave=2),
        "sts6_over_sts2": cycles(sts_interleave=2),
        "db2_over_db1": cycles(double_buffer=1),
    }
    for name, other in pairs.items():
        if other is not None:
            report[name] = other / base
    return report
