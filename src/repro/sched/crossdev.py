"""Cross-device schedule validation: what a plan tuned elsewhere costs.

The paper evaluates every result on *both* Tesla V100 (Volta) and RTX
2070 (Turing), and §7.1's occupancy argument (96 KB vs 64 KB shared
memory per SM) predicts the two machines can genuinely prefer different
schedules.  This module quantifies that: :func:`validate_plan_on`
re-simulates a schedule tuned on one device against another device's
own searched optimum and reports the **penalty** — how much slower the
foreign schedule runs than the best schedule known for the target
device.

Measurement discipline: simulated marginal cycles per main-loop
iteration drift with the iteration budget, so cross-candidate ratios
are only meaningful at a *fixed* budget where every candidate was
measured — which is exactly the search's rung 0 (see
``SearchResult.rung0_score_for``).  Validation therefore evaluates the
foreign schedule at the rung-0 budget and compares it against the
target device's rung-0 floor, reusing the target's (memoized) search.

This is the decision input for fleet routing
(:class:`repro.serving.fleet.FleetRouter`): a plan that validates with
a near-zero penalty can migrate devices freely; one with a real penalty
should be re-tuned on arrival.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from ..common.errors import ConvConfigError
from ..gpusim.arch import DeviceSpec, device_key, resolve_device
from .search import (
    ScheduleSearchConfig,
    SearchResult,
    ensure_schedule,
    evaluate_schedule,
)
from .space import Schedule

if TYPE_CHECKING:
    from ..runtime import ExecutionContext


@dataclasses.dataclass(frozen=True)
class CrossDeviceReport:
    """One schedule's measured cost away from the device it was tuned on.

    ``penalty_pct`` is the headline number: how many percent slower the
    foreign schedule's main loop runs on ``validated_on`` than that
    device's own best rung-0 candidate.  Zero means the schedule
    transfers perfectly (both devices agree on the winner); positive
    means a plan migrated across the fleet without re-tuning leaves
    cycles on the table.
    """

    schedule: Schedule
    tile: str
    tuned_on: str
    validated_on: str
    iters: int
    tuned_cycles: float  # the schedule on its home device
    foreign_cycles: float  # the schedule re-simulated on validated_on
    foreign_best: str  # validated_on's own rung-0 floor (label)
    foreign_best_cycles: float

    @property
    def penalty_pct(self) -> float:
        """Percent slowdown vs the target device's own best schedule."""
        return (self.foreign_cycles / self.foreign_best_cycles - 1.0) * 100.0

    def to_dict(self) -> dict:
        return {
            "schedule": self.schedule.label(),
            "tile": self.tile,
            "tuned_on": self.tuned_on,
            "validated_on": self.validated_on,
            "iters": self.iters,
            "tuned_cycles": self.tuned_cycles,
            "foreign_cycles": self.foreign_cycles,
            "foreign_best": self.foreign_best,
            "foreign_best_cycles": self.foreign_best_cycles,
            "penalty_pct": self.penalty_pct,
        }


def _plan_schedule(plan) -> tuple[Schedule, str | None, str | None]:
    """(schedule, tile, tuned_on device name) extracted from *plan*.

    Accepts a :class:`~repro.sched.search.SearchResult`, a
    :class:`~repro.runtime.session.LayerPlan` (or anything carrying
    ``schedule``/``tile`` attributes), or a bare :class:`Schedule`.
    """
    if isinstance(plan, SearchResult):
        return plan.best.schedule, plan.tile, plan.device
    if isinstance(plan, Schedule):
        return plan, None, None
    schedule = getattr(plan, "schedule", None)
    if isinstance(schedule, Schedule):
        return schedule, getattr(plan, "tile", None), None
    raise ConvConfigError(
        "validate_plan_on needs a SearchResult, a LayerPlan with a tuned "
        f"schedule, or a Schedule; got {plan!r}"
    )


def validate_plan_on(
    plan,
    device: DeviceSpec | str,
    *,
    tuned_on: DeviceSpec | str | None = None,
    tile=None,
    config: ScheduleSearchConfig | None = None,
    context: ExecutionContext | None = None,
) -> CrossDeviceReport:
    """Re-simulate *plan*'s schedule on *device*; report the penalty.

    Parameters
    ----------
    plan: a :class:`~repro.sched.search.SearchResult` (carries its own
        schedule, tile and home device), a
        :class:`~repro.runtime.session.LayerPlan` with a tuned
        schedule, or a bare :class:`Schedule`.
    device: the target device to validate against (spec or any
        registry name).
    tuned_on: the home device (required when *plan* does not carry one).
    tile: kernel family override (required for a bare
        :class:`Schedule`; defaults to the plan's own tile).
    config: the search configuration used to find the target device's
        own optimum (defaults to the context's ``schedule_search``
        config, else the family's full grid).  The target search is
        memoized on the context's :class:`~repro.sched.ScheduleBook`,
        so validating many plans against one device pays for one
        search.
    """
    schedule, plan_tile, plan_device = _plan_schedule(plan)
    tile = tile if tile is not None else plan_tile
    home = resolve_device(tuned_on if tuned_on is not None else plan_device)
    target = resolve_device(device)

    # The target device's own (memoized) search supplies both the rung-0
    # floor and the canonical tile/budget to measure the plan at.
    foreign_result = ensure_schedule(
        device=target, config=config, context=context, tile=tile,
    )
    tile = foreign_result.tile
    iters = foreign_result.budget.base_iters
    # with_tile() drops base_tunables when retargeting families, so only
    # reuse the config's base when the search actually ran with it.
    base_tunables = None
    if config is not None and config.tile == foreign_result.tile:
        base_tunables = config.base_tunables
    foreign = evaluate_schedule(
        schedule, target, iters=iters, context=context, tile=tile,
        base_tunables=base_tunables,
    )
    native = evaluate_schedule(
        schedule, home, iters=iters, context=context, tile=tile,
        base_tunables=base_tunables,
    )
    floor = foreign_result.rungs[0][0]
    # The foreign schedule itself may sit outside the searched grid and
    # beat the grid floor; the floor is then whichever is cheaper, so
    # the penalty is never negative by construction artifacts.
    if foreign.cycles_per_iter < floor.cycles_per_iter:
        floor = foreign
    return CrossDeviceReport(
        schedule=schedule,
        tile=foreign_result.tile,
        tuned_on=device_key(home) or home.name,
        validated_on=device_key(target) or target.name,
        iters=iters,
        tuned_cycles=native.cycles_per_iter,
        foreign_cycles=foreign.cycles_per_iter,
        foreign_best=floor.schedule.label(),
        foreign_best_cycles=floor.cycles_per_iter,
    )


def cross_validate(
    results: dict[str, SearchResult],
    *,
    config: ScheduleSearchConfig | None = None,
    contexts: dict[str, ExecutionContext] | None = None,
) -> list[CrossDeviceReport]:
    """Validate every search winner on every *other* device.

    *results* maps device keys to their own searches (one tile family);
    *contexts* optionally maps device keys to the contexts whose
    schedule books memoize those searches.  Returns one report per
    ordered device pair — the Table-5-style cross-arch matrix.
    """
    reports: list[CrossDeviceReport] = []
    for src_key, result in results.items():
        for dst_key in results:
            if dst_key == src_key:
                continue
            ctx = (contexts or {}).get(dst_key)
            reports.append(
                validate_plan_on(
                    result, dst_key, config=config, context=ctx,
                )
            )
    return reports
