"""Schedule-space autotuning for the fused kernel's SASS instruction
schedule (§6): the search space (:mod:`repro.sched.space`), the
successive-halving tuner (:mod:`repro.sched.search`) and the
``python -m repro sched`` CLI (:mod:`repro.sched.cli`).
"""

from .crossdev import CrossDeviceReport, cross_validate, validate_plan_on
from .search import (
    CandidateScore,
    ScheduleBook,
    ScheduleSearchConfig,
    SearchBudget,
    SearchResult,
    ensure_schedule,
    evaluate_schedule,
    paper_ordering,
    prefetch_schedules,
    prune_candidates,
    static_cost_candidate,
    successive_halving,
)
from .space import (
    CUDNN_SCHEDULE,
    DEFAULT_SPACE,
    F44_SPACE,
    PAPER_SCHEDULE,
    QUICK_SPACE,
    SCHEDULE_FIELDS,
    Schedule,
    ScheduleSpace,
    space_for_tile,
)

__all__ = [
    "CUDNN_SCHEDULE",
    "CandidateScore",
    "CrossDeviceReport",
    "DEFAULT_SPACE",
    "F44_SPACE",
    "PAPER_SCHEDULE",
    "QUICK_SPACE",
    "SCHEDULE_FIELDS",
    "Schedule",
    "ScheduleBook",
    "ScheduleSearchConfig",
    "ScheduleSpace",
    "SearchBudget",
    "SearchResult",
    "cross_validate",
    "ensure_schedule",
    "evaluate_schedule",
    "paper_ordering",
    "prefetch_schedules",
    "prune_candidates",
    "space_for_tile",
    "static_cost_candidate",
    "successive_halving",
    "validate_plan_on",
]
