"""Winograd / Cook-Toom minimal filtering transforms.

The paper (§2.1) uses F(2×2, 3×3) with the transform matrices

    AT = [[1, 1, 1, 0],
          [0, 1, -1, -1]]

    G  = [[1, 0, 0],
          [1/2, 1/2, 1/2],
          [1/2, -1/2, 1/2],
          [0, 0, 1]]

    BT = [[1, 0, -1, 0],
          [0, 1, 1, 0],
          [0, -1, 1, 0],
          [0, 1, 0, -1]]

and refers to Lavin & Gray [11] / Winograd [26] for F(4×4, 3×3) and the
other variants.  This module provides:

* the exact published matrices for F(2,3) and F(4,3) (`f23()`, `f43()`);
* a general Cook-Toom constructor (`cook_toom`) that builds a provably
  correct F(m, r) algorithm from any set of distinct interpolation
  points, using exact rational arithmetic — the data-transform matrix
  ``BT`` is *solved for* from the algorithm's defining identity rather
  than transcribed, so construction bugs are structurally impossible;
* 2-D nesting helpers (``Y = AT [ (G F Gᵀ) ⊙ (BT I B) ] A``), vectorized
  over arbitrary leading batch dimensions.

Everything downstream (reference conv, fused kernel model, SASS kernel
generator) pulls its constants from here.
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction
from typing import Sequence

import numpy as np

from ..common.errors import ConvConfigError

# ---------------------------------------------------------------------------
# Exact rational linear algebra (tiny, n <= ~10)
# ---------------------------------------------------------------------------
FracMatrix = list[list[Fraction]]


def _frac_matmul(a: FracMatrix, b: FracMatrix) -> FracMatrix:
    rows, inner, cols = len(a), len(b), len(b[0])
    assert len(a[0]) == inner
    return [
        [sum((a[i][t] * b[t][j] for t in range(inner)), Fraction(0)) for j in range(cols)]
        for i in range(rows)
    ]


def _frac_transpose(a: FracMatrix) -> FracMatrix:
    return [list(col) for col in zip(*a)]


def _frac_solve(a: FracMatrix, rhs: FracMatrix) -> FracMatrix:
    """Solve A X = RHS exactly by Gauss-Jordan elimination (A square, n×n)."""
    n = len(a)
    # Augment.
    m = [list(a[i]) + list(rhs[i]) for i in range(n)]
    width = len(m[0])
    for col in range(n):
        pivot = next((r for r in range(col, n) if m[r][col] != 0), None)
        if pivot is None:
            raise ConvConfigError("singular system while constructing Winograd transform")
        m[col], m[pivot] = m[pivot], m[col]
        inv = Fraction(1) / m[col][col]
        m[col] = [v * inv for v in m[col]]
        for r in range(n):
            if r != col and m[r][col] != 0:
                factor = m[r][col]
                m[r] = [m[r][j] - factor * m[col][j] for j in range(width)]
    return [row[n:] for row in m]


def _to_float(a: FracMatrix, dtype=np.float64) -> np.ndarray:
    return np.array([[float(v) for v in row] for row in a], dtype=dtype)


# ---------------------------------------------------------------------------
# Transform container
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class WinogradTransform:
    """A 1-D minimal filtering algorithm F(m, r) and its nesting helpers.

    Attributes
    ----------
    m: outputs per tile.
    r: filter taps.
    at: output transform, shape ``(m, alpha)``.
    g: filter transform, shape ``(alpha, r)``.
    bt: data transform, shape ``(alpha, alpha)``.
    """

    m: int
    r: int
    at: np.ndarray
    g: np.ndarray
    bt: np.ndarray

    @property
    def alpha(self) -> int:
        """Transformed tile size m + r - 1 (the "4" of 4×4 tiles)."""
        return self.m + self.r - 1

    def __post_init__(self) -> None:
        alpha = self.m + self.r - 1
        if self.at.shape != (self.m, alpha):
            raise ConvConfigError(f"AT must be {(self.m, alpha)}, got {self.at.shape}")
        if self.g.shape != (alpha, self.r):
            raise ConvConfigError(f"G must be {(alpha, self.r)}, got {self.g.shape}")
        if self.bt.shape != (alpha, alpha):
            raise ConvConfigError(f"BT must be {(alpha, alpha)}, got {self.bt.shape}")

    # -- 1-D identity check -------------------------------------------------
    def check_identity(self, rng: np.random.Generator | None = None) -> float:
        """Max abs error of ``AT[(Gg)⊙(BTd)]`` vs direct 1-D correlation."""
        rng = rng or np.random.default_rng(7)
        d = rng.standard_normal(self.alpha)
        g = rng.standard_normal(self.r)
        fast = self.at @ ((self.g @ g) * (self.bt @ d))
        direct = np.array(
            [sum(d[j + i] * g[i] for i in range(self.r)) for j in range(self.m)]
        )
        return float(np.max(np.abs(fast - direct)))

    # -- 2-D nesting, vectorized over leading dims --------------------------
    def transform_filter(self, f: np.ndarray) -> np.ndarray:
        """``G F Gᵀ`` for trailing (r, r) dims; leading dims are batched."""
        return np.einsum("ij,...jk,lk->...il", self.g, f, self.g, optimize=True)

    def transform_input(self, d: np.ndarray) -> np.ndarray:
        """``Bᵀ I B`` for trailing (alpha, alpha) dims."""
        return np.einsum("ij,...jk,lk->...il", self.bt, d, self.bt, optimize=True)

    def transform_output(self, o: np.ndarray) -> np.ndarray:
        """``Aᵀ Ô A`` for trailing (alpha, alpha) dims."""
        return np.einsum("ij,...jk,lk->...il", self.at, o, self.at, optimize=True)

    # -- instruction accounting (paper §2.1) --------------------------------
    def tile_multiplies_2d(self) -> int:
        """Element-wise multiplies per 2-D tile (16 for F(2,3))."""
        return self.alpha * self.alpha

    def direct_multiplies_2d(self) -> int:
        """Multiplies a direct conv spends on the same m×m outputs (36)."""
        return self.m * self.m * self.r * self.r

    def reduction_2d(self) -> float:
        """Arithmetic reduction factor (2.25 for F(2,3))."""
        return self.direct_multiplies_2d() / self.tile_multiplies_2d()


# ---------------------------------------------------------------------------
# Published matrices
# ---------------------------------------------------------------------------
def f23(dtype=np.float32) -> WinogradTransform:
    """F(2, 3) exactly as printed in the paper (§2.1, Eqs. 2-3)."""
    at = np.array([[1, 1, 1, 0], [0, 1, -1, -1]], dtype=dtype)
    g = np.array(
        [[1, 0, 0], [0.5, 0.5, 0.5], [0.5, -0.5, 0.5], [0, 0, 1]], dtype=dtype
    )
    bt = np.array(
        [[1, 0, -1, 0], [0, 1, 1, 0], [0, -1, 1, 0], [0, 1, 0, -1]], dtype=dtype
    )
    return WinogradTransform(2, 3, at, g, bt)


def f43(dtype=np.float32) -> WinogradTransform:
    """F(4, 3) as published by Lavin & Gray (points 0, ±1, ±2, ∞)."""
    at = np.array(
        [
            [1, 1, 1, 1, 1, 0],
            [0, 1, -1, 2, -2, 0],
            [0, 1, 1, 4, 4, 0],
            [0, 1, -1, 8, -8, 1],
        ],
        dtype=dtype,
    )
    g = np.array(
        [
            [1 / 4, 0, 0],
            [-1 / 6, -1 / 6, -1 / 6],
            [-1 / 6, 1 / 6, -1 / 6],
            [1 / 24, 1 / 12, 1 / 6],
            [1 / 24, -1 / 12, 1 / 6],
            [0, 0, 1],
        ],
        dtype=dtype,
    )
    bt = np.array(
        [
            [4, 0, -5, 0, 1, 0],
            [0, -4, -4, 1, 1, 0],
            [0, 4, -4, -1, 1, 0],
            [0, -2, -1, 2, 1, 0],
            [0, 2, -1, -2, 1, 0],
            [0, 4, 0, -5, 0, 1],
        ],
        dtype=dtype,
    )
    return WinogradTransform(4, 3, at, g, bt)


DEFAULT_POINTS: dict[int, tuple] = {
    # alpha - 1 finite interpolation points; the last point is implicitly ∞.
    1: (0,),
    2: (0, 1),
    3: (0, 1, -1),
    4: (0, 1, -1, 2),
    5: (0, 1, -1, 2, -2),
    6: (0, 1, -1, 2, -2, Fraction(1, 2)),
    7: (0, 1, -1, 2, -2, Fraction(1, 2), Fraction(-1, 2)),
    8: (0, 1, -1, 2, -2, Fraction(1, 2), Fraction(-1, 2), 4),
    9: (0, 1, -1, 2, -2, Fraction(1, 2), Fraction(-1, 2), 4, -4),
}


def cook_toom(
    m: int,
    r: int,
    points: Sequence | None = None,
    dtype=np.float64,
) -> WinogradTransform:
    """Construct F(m, r) from interpolation points (plus the point at ∞).

    ``AT`` and ``G`` are the standard Vandermonde / scaled-Vandermonde
    forms; ``BT`` is then the *unique* matrix making the minimal
    filtering identity hold for all data and filters, found by solving
    the identity's normal equations in exact rational arithmetic.  The
    result is verified (exactly, over ℚ) before being returned.
    """
    if m < 1 or r < 1:
        raise ConvConfigError("m and r must be >= 1")
    alpha = m + r - 1
    if points is None:
        if alpha - 1 not in DEFAULT_POINTS:
            raise ConvConfigError(
                f"no default points for alpha={alpha}; pass `points` explicitly"
            )
        points = DEFAULT_POINTS[alpha - 1]
    pts = [Fraction(p) for p in points]
    if len(pts) != alpha - 1:
        raise ConvConfigError(
            f"need {alpha - 1} finite points for F({m},{r}), got {len(pts)}"
        )
    if len(set(pts)) != len(pts):
        raise ConvConfigError("interpolation points must be distinct")

    # AT: Vandermonde rows over the finite points, plus the ∞ column which
    # picks out the leading coefficient (active only in the last output row).
    at: FracMatrix = [
        [pts[j] ** i for j in range(alpha - 1)] + [Fraction(int(i == m - 1))]
        for i in range(m)
    ]
    # G: evaluate the filter polynomial at each point, scaled by the node
    # polynomial derivative (Lavin's convention); ∞ row takes the top tap.
    g: FracMatrix = []
    for i in range(alpha - 1):
        n_i = Fraction(1)
        for k in range(alpha - 1):
            if k != i:
                n_i *= pts[i] - pts[k]
        g.append([pts[i] ** j / n_i for j in range(r)])
    g.append([Fraction(0)] * (r - 1) + [Fraction(1)])

    # Solve for BT from the defining identity:
    #   sum_p AT[j,p] * G[p,i] * BT[p,l]  ==  [l == j + i]
    # Rows of the coefficient matrix are indexed by (j, i); unknown columns
    # of BT are solved one output index l at a time via normal equations.
    k_rows: FracMatrix = []  # (m*r, alpha)
    for j in range(m):
        for i in range(r):
            k_rows.append([at[j][p] * g[p][i] for p in range(alpha)])
    kt = _frac_transpose(k_rows)  # (alpha, m*r)
    gram = _frac_matmul(kt, k_rows)  # (alpha, alpha)
    rhs: FracMatrix = []
    for p in range(alpha):
        row = []
        for l in range(alpha):
            acc = Fraction(0)
            idx = 0
            for j in range(m):
                for i in range(r):
                    if j + i == l:
                        acc += kt[p][idx]
                    idx += 1
            row.append(acc)
        rhs.append(row)
    bt = _frac_solve(gram, rhs)  # (alpha, alpha); column l solves index l

    # Exact verification of the identity over the rationals.
    idx = 0
    for j in range(m):
        for i in range(r):
            for l in range(alpha):
                acc = sum(
                    (k_rows[idx][p] * bt[p][l] for p in range(alpha)), Fraction(0)
                )
                if acc != Fraction(int(l == j + i)):
                    raise ConvConfigError(
                        f"Cook-Toom identity failed at (j={j}, i={i}, l={l}); "
                        "the chosen points do not admit a minimal algorithm"
                    )
            idx += 1

    return WinogradTransform(
        m, r, _to_float(at, dtype), _to_float(g, dtype), _to_float(bt, dtype)
    )


def get_transform(m: int, r: int = 3, dtype=np.float32) -> WinogradTransform:
    """The transform used throughout the library for F(m×m, r×r).

    F(2,3) and F(4,3) return the exact published matrices (bit-identical
    to the paper / Lavin & Gray); other sizes are constructed on the fly.
    """
    if (m, r) == (2, 3):
        return f23(dtype)
    if (m, r) == (4, 3):
        return f43(dtype)
    t = cook_toom(m, r)
    return WinogradTransform(
        m, r, t.at.astype(dtype), t.g.astype(dtype), t.bt.astype(dtype)
    )


# Float-op counts from the paper §2.1 for F(2,3) (used by the roofline).
PAPER_FTF_FLOPS = 28  # filter transform float instructions per tile
PAPER_ITF_FLOPS = 32  # input transform float additions per tile
PAPER_OTF_FLOPS = 24  # output transform float additions per tile
