"""Frozen tile descriptors for the F(m×m, r×r) Winograd family.

Everything downstream of the transforms — tiling geometry, the numpy
fused model, the SASS kernel generators, the dispatcher, the schedule
autotuner and the inference session — used to hard-code m=2 / alpha=4.
A :class:`TileSpec` makes the tile an explicit, hashable parameter:

* ``m``/``r``/``alpha`` — the F(m×m, r×r) geometry (alpha = m + r − 1);
* ``name`` — the family key used in cache keys, schedule books, trace
  spans and benchmark artifacts ("f22", "f44", ...);
* ``bk``/``bn``/``bc`` — the default kernel blocking for this family
  (the paper's §4 choice for f22; the best feasible blocking from
  ``perfmodel.f44_study`` for f44);
* ``transform()`` — the exact transform matrices (lazy; numpy arrays
  are not hashable, so they are not fields).

``TILE_F22``/``TILE_F44`` are the two shipped families; ``get_tile``
resolves either a name or a spec, so every refactored layer can accept
``tile: TileSpec | str``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.errors import ConvConfigError
from .transforms import WinogradTransform, get_transform


@dataclasses.dataclass(frozen=True)
class TileSpec:
    """One member of the F(m×m, r×r) family, with its kernel blocking."""

    m: int
    r: int
    name: str
    bk: int
    bn: int
    bc: int

    def __post_init__(self) -> None:
        if self.m < 1 or self.r < 1:
            raise ConvConfigError(f"F({self.m},{self.r}) needs m, r >= 1")
        if min(self.bk, self.bn, self.bc) < 1:
            raise ConvConfigError(
                f"blocking ({self.bk}, {self.bn}, {self.bc}) must be positive"
            )

    @property
    def alpha(self) -> int:
        """Transformed tile size m + r − 1 (4 for f22, 6 for f44)."""
        return self.m + self.r - 1

    @property
    def elements(self) -> int:
        """Predicate bits / transformed elements per 2-D tile (alpha²)."""
        return self.alpha * self.alpha

    @property
    def mask_words(self) -> int:
        """32-bit registers needed to hold one tile's predicate mask.

        F(2×2,3×3) fits its 16 bits in one register (the paper's single
        P2R); F(4×4,3×3) needs 36 bits, i.e. two words.
        """
        return -(-self.elements // 32)

    def transform(self, dtype=np.float32) -> WinogradTransform:
        """The exact transform matrices for this tile (lazily built)."""
        return get_transform(self.m, self.r, dtype)

    def reduction_2d(self) -> float:
        """Arithmetic reduction vs direct (2.25 for f22, 4 for f44)."""
        return (self.m * self.m * self.r * self.r) / float(self.elements)

    def tiles_along(self, extent: int) -> int:
        """Number of m-strided tiles covering one output extent."""
        return -(-extent // self.m)

    def label(self) -> str:
        return f"F({self.m}x{self.m},{self.r}x{self.r})"


#: The paper's §4 kernel: F(2×2,3×3), bk=64 / bn=32 / bc=8.
TILE_F22 = TileSpec(m=2, r=3, name="f22", bk=64, bn=32, bc=8)

#: §8.1's next step: F(4×4,3×3) at the best feasible blocking from
#: ``perfmodel.f44_study`` (bk=16 / bn=32 / bc=8 under the 253-register
#: and 64 KB shared-memory ceilings; see ``docs/winograd_tiles.md``).
TILE_F44 = TileSpec(m=4, r=3, name="f44", bk=16, bn=32, bc=8)

#: Registry of shipped tile families, keyed by family name.
TILE_FAMILIES: dict[str, TileSpec] = {
    TILE_F22.name: TILE_F22,
    TILE_F44.name: TILE_F44,
}


def get_tile(tile: "TileSpec | str | None" = None) -> TileSpec:
    """Resolve a tile argument: a spec, a family name, or None (f22)."""
    if tile is None:
        return TILE_F22
    if isinstance(tile, TileSpec):
        return tile
    try:
        return TILE_FAMILIES[tile]
    except KeyError:
        raise ConvConfigError(
            f"unknown tile family {tile!r}; known: {sorted(TILE_FAMILIES)}"
        ) from None
