"""Reference Winograd convolution (the validation oracle).

A straightforward, fully vectorized implementation of the four-step
algorithm of §3.1 for any F(m×m, r×r): filter transform, input
transform, element-wise multiply-accumulate over channels, output
transform.  No blocking, no layout tricks — this is the ground truth
that the fused pipeline, the non-fused variant and the simulated SASS
kernel are all tested against (which is itself validated against direct
convolution).
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ConvConfigError, LayoutError
from .transforms import WinogradTransform, get_transform


def winograd_conv2d_nchw(
    x: np.ndarray,
    f: np.ndarray,
    m: int = 2,
    pad: int = 1,
    transform: WinogradTransform | None = None,
) -> np.ndarray:
    """Winograd convolution, NCHW activations and KCRS filters.

    Parameters
    ----------
    x: activations (N, C, H, W).
    f: filters (K, C, R, S) with R == S.
    m: output tile size (2 → F(2×2,3×3), 4 → F(4×4,3×3), ...).
    pad: symmetric zero padding.

    Returns
    -------
    (N, K, H', W') output, H' = H + 2·pad − R + 1.
    """
    if x.ndim != 4 or f.ndim != 4:
        raise LayoutError("x must be NCHW and f must be KCRS")
    n, c, h, w = x.shape
    k, cf, r, s = f.shape
    if cf != c:
        raise ConvConfigError(f"channel mismatch: input C={c}, filter C={cf}")
    if r != s:
        raise ConvConfigError("Winograd path requires square filters")
    t = transform or get_transform(m, r, dtype=x.dtype)
    alpha = t.alpha
    out_h = h + 2 * pad - r + 1
    out_w = w + 2 * pad - s + 1
    th = -(-out_h // m)
    tw = -(-out_w // m)

    # Pad so the tiling covers the whole output; right/bottom extra covers
    # partial tiles (assembled output is cropped at the end).
    pad_h = (th - 1) * m + alpha - h - pad
    pad_w = (tw - 1) * m + alpha - w - pad
    xp = np.pad(x, ((0, 0), (0, 0), (pad, max(pad_h, 0)), (pad, max(pad_w, 0))))

    # Extract overlapping alpha×alpha windows with stride m:
    # (N, C, th, tw, alpha, alpha).
    win = np.lib.stride_tricks.sliding_window_view(xp, (alpha, alpha), axis=(2, 3))
    win = win[:, :, ::m, ::m][:, :, :th, :tw]

    f_t = t.transform_filter(f.astype(x.dtype, copy=False))  # (K, C, a, a)
    i_t = t.transform_input(win)  # (N, C, th, tw, a, a)

    # EWMM + channel accumulation (Eq. 7), batched over the alpha² points.
    o_t = np.einsum("ncpqxy,kcxy->nkpqxy", i_t, f_t, optimize=True)

    o = t.transform_output(o_t)  # (N, K, th, tw, m, m)

    # Assemble tiles and crop the overhang.
    y = o.transpose(0, 1, 2, 4, 3, 5).reshape(n, k, th * m, tw * m)
    return np.ascontiguousarray(y[:, :, :out_h, :out_w])
