"""Non-fused Winograd convolution (cuDNN's WINOGRAD_NONFUSED, §8/§9).

The non-fused strategy stores the *transformed* input and output in
global-memory workspace and runs the element-wise-multiply step as a
library batched GEMM.  It is easier to implement and can use the
F(4×4, 3×3) variant (4× multiplication reduction), but pays 2.25× input
inflation in DRAM traffic — the trade the paper's §8.1 break-even
analysis quantifies.

This implementation reports its workspace consumption so Figure 14 and
the break-even bench can be generated from real allocation numbers.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..common.errors import ConvConfigError, LayoutError
from ..common.problem import ConvProblem
from .tiling import tile_index_grid
from .transforms import WinogradTransform, get_transform


@dataclasses.dataclass
class NonFusedRunStats:
    """Workspace and traffic accounting for one non-fused invocation."""

    workspace_bytes: int = 0
    transformed_input_bytes: int = 0
    transformed_filter_bytes: int = 0
    transformed_output_bytes: int = 0
    gemm_flops: int = 0


class NonFusedWinogradConv:
    """Scatter-transform → batched GEMM → gather-transform pipeline.

    Defaults to F(4×4, 3×3) like cuDNN's non-fused algorithm; any tile
    size supported by :mod:`repro.winograd.transforms` works.
    """

    def __init__(self, m: int = 4, transform: WinogradTransform | None = None):
        self.transform = transform or get_transform(m, 3, dtype=np.float32)
        self.m = self.transform.m

    def run(
        self, x_chwn: np.ndarray, f_crsk: np.ndarray, prob: ConvProblem | None = None
    ) -> tuple[np.ndarray, NonFusedRunStats]:
        if x_chwn.ndim != 4:
            raise LayoutError(f"expected CHWN input, got {x_chwn.shape}")
        c, h, w, n = x_chwn.shape
        if f_crsk.ndim != 4 or f_crsk.shape[0] != c:
            raise LayoutError(f"expected CRSK filters with C={c}, got {f_crsk.shape}")
        if f_crsk.shape[1:3] != (3, 3):
            raise ConvConfigError("non-fused pipeline implements 3×3 filters")
        k = f_crsk.shape[3]
        if prob is None:
            prob = ConvProblem(n=n, c=c, h=h, w=w, k=k)
        t = self.transform
        alpha, m, pad = t.alpha, t.m, prob.pad

        th, tw = prob.tiles_h(m), prob.tiles_w(m)
        tile_r, tile_c, tile_n = tile_index_grid(th, tw, n)
        total = tile_r.size
        stats = NonFusedRunStats()

        # ---- scatter step 1: transformed filters, (alpha², C, K) ----------
        f = np.transpose(f_crsk, (0, 3, 1, 2))  # (C, K, 3, 3)
        u = t.transform_filter(f)  # (C, K, a, a)
        u = u.transpose(2, 3, 0, 1).reshape(alpha * alpha, c, k)
        stats.transformed_filter_bytes = u.nbytes

        # ---- scatter step 2: transformed input, (alpha², C, total) --------
        arange_a = np.arange(alpha)
        rows = tile_r[:, None] * m - pad + arange_a[None, :]
        cols = tile_c[:, None] * m - pad + arange_a[None, :]
        mask = ((rows >= 0) & (rows < h))[:, :, None] & ((cols >= 0) & (cols < w))[
            :, None, :
        ]
        rows_cl = np.clip(rows, 0, h - 1)
        cols_cl = np.clip(cols, 0, w - 1)
        tiles = x_chwn[
            :, rows_cl[:, :, None], cols_cl[:, None, :], tile_n[:, None, None]
        ]  # (C, total, a, a)
        tiles = np.where(mask[None], tiles, np.float32(0))
        v = t.transform_input(tiles)  # (C, total, a, a)
        v = v.transpose(2, 3, 0, 1).reshape(alpha * alpha, c, total)
        stats.transformed_input_bytes = v.nbytes

        # ---- batched GEMM over the alpha² points ---------------------------
        # (a², K, total) = (a², K, C) @ (a², C, total)
        o_hat = np.einsum("pck,pcn->pkn", u, v, optimize=True)
        stats.gemm_flops = 2 * alpha * alpha * k * c * total
        stats.transformed_output_bytes = o_hat.nbytes

        # ---- gather: output transform + assemble ---------------------------
        o = t.transform_output(
            o_hat.reshape(alpha, alpha, k, total).transpose(2, 3, 0, 1)
        )  # (K, total, m, m)
        y = np.zeros((k, prob.out_h, prob.out_w, n), dtype=np.float32)
        # Vectorized scatter: tiles are disjoint in (row, col, batch).
        out_r = tile_r[:, None] * m + np.arange(m)[None, :]  # (total, m)
        out_c = tile_c[:, None] * m + np.arange(m)[None, :]
        ok = (out_r[:, :, None] < prob.out_h) & (out_c[:, None, :] < prob.out_w)
        rr = np.clip(out_r, 0, prob.out_h - 1)
        cc = np.clip(out_c, 0, prob.out_w - 1)
        flat_t, flat_r, flat_c = np.nonzero(ok)
        y[:, rr[flat_t, flat_r], cc[flat_t, flat_c], tile_n[flat_t]] = o[
            :, flat_t, flat_r, flat_c
        ]

        stats.workspace_bytes = (
            stats.transformed_input_bytes
            + stats.transformed_filter_bytes
            + stats.transformed_output_bytes
        )
        return y, stats

    def __call__(self, x_chwn: np.ndarray, f_crsk: np.ndarray) -> np.ndarray:
        y, _ = self.run(x_chwn, f_crsk)
        return y

    def workspace_bytes(self, prob: ConvProblem) -> int:
        """Workspace this pipeline would allocate for *prob* (no data)."""
        alpha = self.transform.alpha
        total = prob.total_tiles(self.m)
        a2 = alpha * alpha
        return 4 * a2 * (
            prob.c * total + prob.c * prob.k + prob.k * total
        )
