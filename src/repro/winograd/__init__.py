"""Winograd convolution: transforms, reference oracle, fused & non-fused pipelines."""

from .fused import (
    CUDNN_CONFIG,
    PAPER_CONFIG,
    BlockConfig,
    FusedRunStats,
    FusedWinogradConv,
    tile_block_config,
)
from .fused_nchw import FusedWinogradConvNCHW, warp_load_sectors
from .nonfused import NonFusedRunStats, NonFusedWinogradConv
from .reference import winograd_conv2d_nchw
from .tilespec import TILE_F22, TILE_F44, TILE_FAMILIES, TileSpec, get_tile
from .tiling import (
    gather_input_tiles_chwn,
    mask_words,
    pack_mask,
    scatter_output_tiles_khwn,
    tile_index_grid,
    unpack_mask,
    zero_pad_mask,
)
from .transforms import (
    PAPER_FTF_FLOPS,
    PAPER_ITF_FLOPS,
    PAPER_OTF_FLOPS,
    WinogradTransform,
    cook_toom,
    f23,
    f43,
    get_transform,
)

__all__ = [
    "BlockConfig",
    "CUDNN_CONFIG",
    "FusedRunStats",
    "FusedWinogradConv",
    "FusedWinogradConvNCHW",
    "NonFusedRunStats",
    "NonFusedWinogradConv",
    "PAPER_CONFIG",
    "PAPER_FTF_FLOPS",
    "PAPER_ITF_FLOPS",
    "PAPER_OTF_FLOPS",
    "TILE_F22",
    "TILE_F44",
    "TILE_FAMILIES",
    "TileSpec",
    "WinogradTransform",
    "cook_toom",
    "f23",
    "f43",
    "gather_input_tiles_chwn",
    "get_tile",
    "get_transform",
    "mask_words",
    "pack_mask",
    "scatter_output_tiles_khwn",
    "tile_block_config",
    "tile_index_grid",
    "unpack_mask",
    "warp_load_sectors",
    "winograd_conv2d_nchw",
    "zero_pad_mask",
]
