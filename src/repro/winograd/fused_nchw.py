"""NCHW-layout port of the fused pipeline (paper §8.4).

"The implementation in this work can be ported to NCHW layout with
little effort.  For example, each thread block can load and transform a
16×8 input tile (32 of 2×2 tiles) to make the global load fully
coalesced.  The offsets of global and shared memory accesses need to be
recomputed, while all other optimizations can be adopted."

The change versus :class:`~repro.winograd.fused.FusedWinogradConv` is
exactly the tile-to-block mapping: instead of a block's 32 tiles being
32 consecutive *batch* elements of one (h̃, w̃) position (CHWN: batch is
the fast axis), they form an 8×4 patch of tile positions inside one
image — a 16×8 pixel window whose rows are contiguous in NCHW, so a
warp's loads still coalesce.  Everything downstream of the gather (the
transforms, the 16-batched GEMM, the blocking arithmetic) is shared
with the CHWN pipeline, demonstrating §8.4's claim in code.

:func:`warp_load_sectors` quantifies the claim: it counts the 32-byte
sectors one warp's 32 tile-loads touch per tile element under each
layout/mapping combination — both chosen mappings hit the 4-sector
optimum; the naive mismatched pairings do not.
"""

from __future__ import annotations

import math

import numpy as np

from ..common.errors import LayoutError
from ..common.problem import ConvProblem
from .fused import PAPER_CONFIG, BlockConfig, FusedWinogradConv

TILE_PATCH_W = 4  # tiles per block along width  → 8-pixel window
TILE_PATCH_H = 8  # tiles per block along height → 16-pixel window


class FusedWinogradConvNCHW(FusedWinogradConv):
    """The fused pipeline reading NCHW activations directly."""

    def run_nchw(self, x_nchw: np.ndarray, f_transformed: np.ndarray,
                 prob: ConvProblem | None = None):
        """Like :meth:`run`, but the activations stay in NCHW.

        Internally the gather indexes the NCHW tensor with the §8.4
        spatial-patch mapping; the output is returned as NKHW (the
        layout NCHW frameworks expect back).
        """
        if x_nchw.ndim != 4:
            raise LayoutError(f"expected NCHW input, got {x_nchw.shape}")
        n, c, h, w = x_nchw.shape
        k = f_transformed.shape[3]
        prob = prob or ConvProblem(n=n, c=c, h=h, w=w, k=k)
        t = self.transform
        alpha, m, pad = t.alpha, t.m, prob.pad
        cfg = self.config
        th, tw = prob.tiles_h(m), prob.tiles_w(m)

        # §8.4 block mapping: one image, an 8×4 patch of tile positions.
        patches_h = math.ceil(th / TILE_PATCH_H)
        patches_w = math.ceil(tw / TILE_PATCH_W)
        n_blocks_k = math.ceil(k / cfg.bk)
        y = np.zeros((n, k, prob.out_h, prob.out_w), dtype=np.float32)
        arange_a = np.arange(alpha)

        for img in range(n):
            for ph in range(patches_h):
                for pw in range(patches_w):
                    tiles_r = np.repeat(
                        ph * TILE_PATCH_H + np.arange(TILE_PATCH_H), TILE_PATCH_W
                    )
                    tiles_c = np.tile(
                        pw * TILE_PATCH_W + np.arange(TILE_PATCH_W), TILE_PATCH_H
                    )
                    valid = (tiles_r < th) & (tiles_c < tw)
                    rows = tiles_r[:, None] * m - pad + arange_a[None, :]
                    cols = tiles_c[:, None] * m - pad + arange_a[None, :]
                    mask = (
                        ((rows >= 0) & (rows < h))[:, :, None]
                        & ((cols >= 0) & (cols < w))[:, None, :]
                        & valid[:, None, None]
                    )
                    rows_cl = np.clip(rows, 0, h - 1)
                    cols_cl = np.clip(cols, 0, w - 1)
                    for kb in range(n_blocks_k):
                        k0, k_hi = kb * cfg.bk, min((kb + 1) * cfg.bk, k)
                        acc = np.zeros(
                            (alpha * alpha, k_hi - k0, 32), dtype=np.float32
                        )
                        for c0 in range(0, c, cfg.bc):
                            c_hi = min(c0 + cfg.bc, c)
                            chan = np.arange(c0, c_hi)[:, None, None, None]
                            tiles = x_nchw[
                                img, chan,
                                rows_cl[None, :, :, None],
                                cols_cl[None, :, None, :],
                            ]  # (bc, 32, a, a)
                            tiles = np.where(
                                mask[None], tiles, np.float32(0)
                            )
                            i_t = t.transform_input(tiles)
                            i_smem = i_t.transpose(2, 3, 0, 1).reshape(
                                alpha * alpha, c_hi - c0, 32
                            )
                            f_smem = f_transformed[
                                c0:c_hi, :, :, k0:k_hi
                            ].transpose(1, 2, 0, 3).reshape(
                                alpha * alpha, c_hi - c0, k_hi - k0
                            )
                            acc += np.einsum(
                                "pck,pcn->pkn", f_smem, i_smem, optimize=True
                            ).astype(np.float32)
                        o_hat = acc.reshape(
                            alpha, alpha, k_hi - k0, 32
                        ).transpose(2, 3, 0, 1)
                        o = t.transform_output(o_hat)
                        for j in range(32):
                            if not valid[j]:
                                continue
                            r0 = tiles_r[j] * m
                            c0w = tiles_c[j] * m
                            rmax = min(m, prob.out_h - r0)
                            cmax = min(m, prob.out_w - c0w)
                            y[img, k0:k_hi, r0 : r0 + rmax, c0w : c0w + cmax] = o[
                                :, j, :rmax, :cmax
                            ]
        return y


def warp_load_sectors(
    prob: ConvProblem, layout: str, mapping: str, element: tuple[int, int] = (1, 1)
) -> int:
    """32-byte sectors one warp touches loading tile element *element*.

    ``layout`` ∈ {"CHWN", "NCHW"}; ``mapping`` ∈ {"batch", "patch"} — the
    CHWN kernel's batch-fastest tile assignment vs. §8.4's 8×4 spatial
    patch.  The matched pairs (CHWN+batch, NCHW+patch) coalesce to 4
    sectors; the mismatched pairs scatter.
    """
    x, y = element
    n, h, w = prob.n, prob.h, prob.w
    if mapping == "batch":
        tile_r = np.zeros(32, dtype=np.int64) + 2  # one (h̃, w̃), 32 batches
        tile_c = np.zeros(32, dtype=np.int64) + 2
        batch = np.arange(32, dtype=np.int64)
    elif mapping == "patch":
        tile_r = 2 + np.repeat(np.arange(TILE_PATCH_H), TILE_PATCH_W)
        tile_c = 2 + np.tile(np.arange(TILE_PATCH_W), TILE_PATCH_H)
        batch = np.zeros(32, dtype=np.int64)
    else:
        raise LayoutError(f"unknown mapping {mapping!r}")
    rows = tile_r * 2 - prob.pad + x
    cols = tile_c * 2 - prob.pad + y
    if layout == "CHWN":
        addrs = 4 * (((0 * h + rows) * w + cols) * n + batch)
    elif layout == "NCHW":
        addrs = 4 * (((batch * 1 + 0) * h + rows) * w + cols)
    else:
        raise LayoutError(f"unknown layout {layout!r}")
    return int(np.unique(addrs // 32).size)
