"""The paper's fused F(2×2, 3×3) Winograd convolution pipeline.

This is a faithful algorithm-level model of the SASS kernel (§3-§4),
vectorized with NumPy *inside* each simulated thread block but keeping
the exact decomposition of Algorithm 1:

* a separate **filter-transform kernel** (FTF) producing the CR'S'K
  workspace (§4.1) — the only global workspace the implementation needs;
* a grid of thread blocks, each owning ``bk × bn`` output tiles (Fig. 1);
* a **main loop** over channels in steps of ``bc`` that gathers and
  transforms ``bn×bc`` input tiles (ITF, implicit zero padding) and
  accumulates the 16-batched ``bk × bn × bc`` GEMM (EWMM, Eq. 9-10);
* an **output transform** (OTF) that turns the accumulators into m×m
  output tiles and scatters them (with crop) into the KHWN output.

Because every global address and mask is computed the way the kernel
computes them, this module doubles as the functional specification for
``repro.kernels.winograd_f22`` and the workload model for
``repro.perfmodel``.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..common.errors import ConvConfigError, LayoutError
from ..common.problem import ConvProblem
from .tiling import tile_index_grid
from .transforms import (
    PAPER_ITF_FLOPS,
    PAPER_OTF_FLOPS,
    WinogradTransform,
    get_transform,
)


@dataclasses.dataclass(frozen=True)
class BlockConfig:
    """Two-level cache blocking parameters (§3.2-§3.3, Table 7).

    The paper's configuration is ``bk=64, bn=32, bc=8`` with 256 threads;
    cuDNN/Neon use ``bk=32``.  ``bn`` must stay 32 (one tile per thread
    per iteration) and ``bk`` ∈ {32, 64} are the cases analyzed.
    """

    bk: int = 64
    bn: int = 32
    bc: int = 8
    threads: int = 256

    def __post_init__(self) -> None:
        if self.bk <= 0 or self.bn <= 0 or self.bc <= 0:
            raise ConvConfigError("block sizes must be positive")
        if self.threads <= 0:
            raise ConvConfigError(
                f"threads must be a positive thread count, got {self.threads}"
            )
        work = 16 * self.bk * self.bn * self.bc
        if work % self.threads:
            raise ConvConfigError(
                f"threads={self.threads} must evenly divide the per-iteration "
                f"FFMA work 16·bk·bn·bc = {work}"
            )

    @property
    def output_tiles_per_block(self) -> int:
        """bk·bn output tiles per thread block (2048 for the paper's config)."""
        return self.bk * self.bn

    @property
    def smem_filter_bytes(self) -> int:
        """(16, bc, bk) fp32 transformed-filter buffer (32 KB at bk=64)."""
        return 16 * self.bc * self.bk * 4

    @property
    def smem_input_bytes(self) -> int:
        """(16, bc, bn) fp32 transformed-input buffer (16 KB)."""
        return 16 * self.bc * self.bn * 4

    @property
    def smem_main_loop_bytes(self) -> int:
        return self.smem_filter_bytes + self.smem_input_bytes

    @property
    def ffma_per_thread_per_iter(self) -> int:
        """FFMAs per thread per bc-iteration (1024 in the paper, §4.2-§4.3)."""
        return self.output_tiles_per_block * 16 * self.bc // self.threads

    def arithmetic_intensity(self) -> float:
        """Main-loop flops per global byte (8 at bk=32 → 10.67 at bk=64, §3.3).

        Per iteration a block loads (bn + bk)·bc tiles of 16 floats and
        performs 16·bk·bn·bc FMA (2 flops each).
        """
        flops = 2 * 16 * self.bk * self.bn * self.bc
        gmem = 16 * (self.bk + self.bn) * self.bc * 4
        return flops / gmem


PAPER_CONFIG = BlockConfig(bk=64, bn=32, bc=8, threads=256)
CUDNN_CONFIG = BlockConfig(bk=32, bn=32, bc=8, threads=256)


@dataclasses.dataclass
class FusedRunStats:
    """Work accounting for one fused-kernel invocation."""

    grid_blocks: int = 0
    main_loop_iters_per_block: int = 0
    ffma_total: int = 0
    itf_fadd_total: int = 0
    otf_fadd_total: int = 0
    gmem_load_bytes: int = 0
    gmem_store_bytes: int = 0
    effective_flops: int = 0

    @property
    def total_main_loop_iters(self) -> int:
        return self.grid_blocks * self.main_loop_iters_per_block


class FusedWinogradConv:
    """Fused F(2×2, 3×3) Winograd convolution (the paper's kernel, modelled).

    Usage::

        conv = FusedWinogradConv()
        f_t = conv.transform_filters(f_crsk)           # separate FTF kernel
        y_khwn, stats = conv.run(x_chwn, f_t, prob)    # fused main kernel
        y_khwn = conv(x_chwn, f_crsk)                  # both steps

    Inputs are CHWN activations and CRSK filters; output is KHWN
    (Table 4's global-memory layouts).
    """

    def __init__(
        self,
        config: BlockConfig = PAPER_CONFIG,
        transform: WinogradTransform | None = None,
    ):
        self.config = config
        self.transform = transform or get_transform(2, 3, dtype=np.float32)
        if self.transform.m != 2 or self.transform.r != 3:
            raise ConvConfigError("the fused pipeline implements F(2×2, 3×3) only")

    # ------------------------------------------------------------------
    # FTF kernel (§4.1)
    # ------------------------------------------------------------------
    def transform_filters(self, f_crsk: np.ndarray) -> np.ndarray:
        """GFGᵀ for every (c, k): (C, 3, 3, K) → (C, 4, 4, K) workspace."""
        if f_crsk.ndim != 4 or f_crsk.shape[1:3] != (3, 3):
            raise LayoutError(f"expected CRSK 3×3 filters, got {f_crsk.shape}")
        # Move K next to C so the transform's trailing dims are (3, 3).
        f = np.transpose(f_crsk, (0, 3, 1, 2))  # (C, K, 3, 3)
        f_t = self.transform.transform_filter(f)  # (C, K, 4, 4)
        return np.ascontiguousarray(np.transpose(f_t, (0, 2, 3, 1)))  # (C,4,4,K)

    # ------------------------------------------------------------------
    # Fused main kernel
    # ------------------------------------------------------------------
    def run(
        self,
        x_chwn: np.ndarray,
        f_transformed: np.ndarray,
        prob: ConvProblem | None = None,
    ) -> tuple[np.ndarray, FusedRunStats]:
        """Run the fused kernel given a pre-transformed filter workspace."""
        if x_chwn.ndim != 4:
            raise LayoutError(f"expected CHWN input, got {x_chwn.shape}")
        c, h, w, n = x_chwn.shape
        if f_transformed.shape[:3] != (c, 4, 4):
            raise LayoutError(
                f"expected (C,4,4,K) transformed filters, got {f_transformed.shape}"
            )
        k = f_transformed.shape[3]
        if prob is None:
            prob = ConvProblem(n=n, c=c, h=h, w=w, k=k)
        cfg = self.config
        t = self.transform
        alpha = t.alpha  # 4
        m = t.m  # 2
        pad = prob.pad

        th, tw = prob.tiles_h(m), prob.tiles_w(m)
        tile_r, tile_c, tile_n = tile_index_grid(th, tw, n)
        total_tiles = tile_r.size

        n_blocks_tiles = math.ceil(total_tiles / cfg.bn)
        n_blocks_k = math.ceil(k / cfg.bk)
        iters = math.ceil(c / cfg.bc)

        y = np.zeros((k, prob.out_h, prob.out_w, n), dtype=np.float32)

        stats = FusedRunStats(
            grid_blocks=n_blocks_tiles * n_blocks_k,
            main_loop_iters_per_block=iters,
        )

        arange_a = np.arange(alpha)
        for tb in range(n_blocks_tiles):
            g0 = tb * cfg.bn
            g_idx = np.arange(g0, min(g0 + cfg.bn, total_tiles))
            bn_real = g_idx.size
            rows = tile_r[g_idx][:, None] * m - pad + arange_a[None, :]  # (bn, a)
            cols = tile_c[g_idx][:, None] * m - pad + arange_a[None, :]
            batch = tile_n[g_idx]
            mask = ((rows >= 0) & (rows < h))[:, :, None] & (
                (cols >= 0) & (cols < w)
            )[:, None, :]  # (bn, a, a) — the precomputed predicate masks (§3.5)
            rows_cl = np.clip(rows, 0, h - 1)
            cols_cl = np.clip(cols, 0, w - 1)

            for kb in range(n_blocks_k):
                k0 = kb * cfg.bk
                k_hi = min(k0 + cfg.bk, k)
                bk_real = k_hi - k0
                acc = np.zeros((alpha * alpha, bk_real, bn_real), dtype=np.float32)

                for c0 in range(0, c, cfg.bc):
                    c_hi = min(c0 + cfg.bc, c)
                    # --- gather bn×bc input tiles with implicit zero pad ---
                    tiles = x_chwn[
                        c0:c_hi,
                        rows_cl[:, :, None],
                        cols_cl[:, None, :],
                        batch[:, None, None],
                    ]  # (bc, bn, a, a)
                    tiles = np.where(mask[None], tiles, np.float32(0))
                    # --- ITF: 32 FADDs per tile per thread (§4.2) ---
                    tiles_t = t.transform_input(tiles)  # (bc, bn, a, a)
                    i_smem = tiles_t.transpose(2, 3, 0, 1).reshape(
                        alpha * alpha, c_hi - c0, bn_real
                    )  # the (16, bc, bn) shared buffer of Table 4
                    f_smem = f_transformed[c0:c_hi, :, :, k0:k_hi].transpose(
                        1, 2, 0, 3
                    ).reshape(alpha * alpha, c_hi - c0, bk_real)  # (16, bc, bk)
                    # --- EWMM as 16-batched GEMM (Eq. 9) ---
                    acc += np.einsum(
                        "pck,pcn->pkn", f_smem, i_smem, optimize=True
                    ).astype(np.float32)
                    stats.gmem_load_bytes += (
                        tiles.size + f_smem.size
                    ) * 4
                    stats.ffma_total += 16 * bk_real * bn_real * (c_hi - c0)
                    stats.itf_fadd_total += PAPER_ITF_FLOPS * (c_hi - c0) * bn_real

                # --- OTF: transpose via smem, transform, predicated store ---
                o_hat = acc.reshape(alpha, alpha, bk_real, bn_real).transpose(
                    2, 3, 0, 1
                )  # (bk, bn, a, a)
                o = t.transform_output(o_hat)  # (bk, bn, m, m)
                stats.otf_fadd_total += PAPER_OTF_FLOPS * bk_real * bn_real
                for j, g in enumerate(g_idx):
                    r0 = tile_r[g] * m
                    c0w = tile_c[g] * m
                    rmax = min(m, prob.out_h - r0)
                    cmax = min(m, prob.out_w - c0w)
                    y[k0:k_hi, r0 : r0 + rmax, c0w : c0w + cmax, batch[j]] = o[
                        :, j, :rmax, :cmax
                    ]
                    stats.gmem_store_bytes += bk_real * rmax * cmax * 4

        stats.effective_flops = prob.direct_flops
        return y, stats

    def __call__(self, x_chwn: np.ndarray, f_crsk: np.ndarray) -> np.ndarray:
        """FTF + fused kernel; returns the KHWN output only."""
        f_t = self.transform_filters(f_crsk)
        y, _ = self.run(x_chwn, f_t)
        return y

    # ------------------------------------------------------------------
    # Workload introspection for the perf model / kernel generator
    # ------------------------------------------------------------------
    def workload(self, prob: ConvProblem) -> dict:
        """Static per-launch work description (no data needed)."""
        cfg = self.config
        th, tw = prob.tiles_h(2), prob.tiles_w(2)
        total_tiles = th * tw * prob.n
        blocks = math.ceil(total_tiles / cfg.bn) * math.ceil(prob.k / cfg.bk)
        iters = math.ceil(prob.c / cfg.bc)
        return {
            "blocks": blocks,
            "iters_per_block": iters,
            "threads_per_block": cfg.threads,
            "warps_per_block": cfg.threads // 32,
            "ffma_per_thread_per_iter": cfg.ffma_per_thread_per_iter,
            "itf_fadd_per_thread_per_iter": PAPER_ITF_FLOPS,
            "effective_flops": prob.direct_flops,
            "smem_bytes_per_block": cfg.smem_main_loop_bytes,
            "arithmetic_intensity": cfg.arithmetic_intensity(),
        }
