"""The paper's fused Winograd convolution pipeline, tile-parameterized.

This is a faithful algorithm-level model of the SASS kernels (§3-§4),
vectorized with NumPy *inside* each simulated thread block but keeping
the exact decomposition of Algorithm 1:

* a separate **filter-transform kernel** (FTF) producing the CR'S'K
  workspace (§4.1) — the only global workspace the implementation needs;
* a grid of thread blocks, each owning ``bk × bn`` output tiles (Fig. 1);
* a **main loop** over channels in steps of ``bc`` that gathers and
  transforms ``bn×bc`` input tiles (ITF, implicit zero padding) and
  accumulates the alpha²-batched ``bk × bn × bc`` GEMM (EWMM, Eq. 9-10);
* an **output transform** (OTF) that turns the accumulators into m×m
  output tiles and scatters them (with crop) into the KHWN output.

The tile is an explicit :class:`~repro.winograd.tilespec.TileSpec`
parameter: ``TILE_F22`` reproduces the paper's F(2×2,3×3) kernel
(alpha² = 16 batched GEMMs), ``TILE_F44`` the §8.1 F(4×4,3×3) variant
(alpha² = 36) at the best feasible blocking from
``perfmodel.f44_study``.  Because every global address and mask is
computed the way the kernels compute them, this module doubles as the
functional specification for ``repro.kernels.winograd_fused`` and the
workload model for ``repro.perfmodel``.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..common.errors import ConvConfigError, LayoutError
from ..common.problem import ConvProblem
from .tilespec import TILE_F22, TileSpec, get_tile
from .tiling import tile_index_grid
from .transforms import (
    PAPER_ITF_FLOPS,
    PAPER_OTF_FLOPS,
    WinogradTransform,
)


@dataclasses.dataclass(frozen=True)
class BlockConfig:
    """Two-level cache blocking parameters (§3.2-§3.3, Table 7).

    The paper's F(2×2,3×3) configuration is ``bk=64, bn=32, bc=8`` with
    256 threads; cuDNN/Neon use ``bk=32``.  ``elements`` is the batched
    GEMM count alpha² (16 for f22, 36 for f44) — the per-iteration work
    and shared-memory footprints scale with it.
    """

    bk: int = 64
    bn: int = 32
    bc: int = 8
    threads: int = 256
    elements: int = 16

    def __post_init__(self) -> None:
        if self.bk <= 0 or self.bn <= 0 or self.bc <= 0:
            raise ConvConfigError("block sizes must be positive")
        if self.threads <= 0:
            raise ConvConfigError(
                f"threads must be a positive thread count, got {self.threads}"
            )
        if self.elements <= 0:
            raise ConvConfigError(
                f"elements must be a positive alpha², got {self.elements}"
            )
        work = self.elements * self.bk * self.bn * self.bc
        if work % self.threads:
            raise ConvConfigError(
                f"threads={self.threads} must evenly divide the per-iteration "
                f"FFMA work alpha²·bk·bn·bc = {work}"
            )

    @property
    def output_tiles_per_block(self) -> int:
        """bk·bn output tiles per thread block (2048 for the paper's config)."""
        return self.bk * self.bn

    @property
    def smem_filter_bytes(self) -> int:
        """(alpha², bc, bk) fp32 transformed-filter buffer (32 KB at f22/bk=64)."""
        return self.elements * self.bc * self.bk * 4

    @property
    def smem_input_bytes(self) -> int:
        """(alpha², bc, bn) fp32 transformed-input buffer (16 KB at f22)."""
        return self.elements * self.bc * self.bn * 4

    @property
    def smem_main_loop_bytes(self) -> int:
        return self.smem_filter_bytes + self.smem_input_bytes

    @property
    def ffma_per_thread_per_iter(self) -> int:
        """FFMAs per thread per bc-iteration (1024 in the paper, §4.2-§4.3)."""
        return self.output_tiles_per_block * self.elements * self.bc // self.threads

    def arithmetic_intensity(self) -> float:
        """Main-loop flops per global byte (8 at bk=32 → 10.67 at bk=64, §3.3).

        Per iteration a block loads (bn + bk)·bc tiles of alpha² floats
        and performs alpha²·bk·bn·bc FMA (2 flops each).
        """
        flops = 2 * self.elements * self.bk * self.bn * self.bc
        gmem = self.elements * (self.bk + self.bn) * self.bc * 4
        return flops / gmem


PAPER_CONFIG = BlockConfig(bk=64, bn=32, bc=8, threads=256)
CUDNN_CONFIG = BlockConfig(bk=32, bn=32, bc=8, threads=256)


def tile_block_config(tile: TileSpec) -> BlockConfig:
    """The default :class:`BlockConfig` for a tile family's blocking."""
    return BlockConfig(
        bk=tile.bk, bn=tile.bn, bc=tile.bc, threads=256, elements=tile.elements
    )


def _itf_fadds_per_tile(t: WinogradTransform) -> int:
    """ITF float adds per tile: the paper's §2.1 count for F(2,3), a
    structural two-pass bound (alpha² outputs × (alpha−1) adds × 2
    passes) for other tiles."""
    if (t.m, t.r) == (2, 3):
        return PAPER_ITF_FLOPS
    return 2 * t.alpha * t.alpha * (t.alpha - 1)


def _otf_fadds_per_tile(t: WinogradTransform) -> int:
    """OTF float adds per tile: §2.1's 24 for F(2,3), structural bound
    (column pass m·alpha + row pass m² outputs, (alpha−1) adds each)
    otherwise."""
    if (t.m, t.r) == (2, 3):
        return PAPER_OTF_FLOPS
    return (t.m * t.alpha + t.m * t.m) * (t.alpha - 1)


@dataclasses.dataclass
class FusedRunStats:
    """Work accounting for one fused-kernel invocation."""

    grid_blocks: int = 0
    main_loop_iters_per_block: int = 0
    ffma_total: int = 0
    itf_fadd_total: int = 0
    otf_fadd_total: int = 0
    gmem_load_bytes: int = 0
    gmem_store_bytes: int = 0
    effective_flops: int = 0

    @property
    def total_main_loop_iters(self) -> int:
        return self.grid_blocks * self.main_loop_iters_per_block


class FusedWinogradConv:
    """Fused F(m×m, r×r) Winograd convolution (the paper's kernel, modelled).

    Usage::

        conv = FusedWinogradConv()                     # F(2×2,3×3)
        conv = FusedWinogradConv(tile=TILE_F44)        # F(4×4,3×3)
        f_t = conv.transform_filters(f_crsk)           # separate FTF kernel
        y_khwn, stats = conv.run(x_chwn, f_t, prob)    # fused main kernel
        y_khwn = conv(x_chwn, f_crsk)                  # both steps

    Inputs are CHWN activations and CRSK filters; output is KHWN
    (Table 4's global-memory layouts).
    """

    def __init__(
        self,
        config: BlockConfig | None = None,
        transform: WinogradTransform | None = None,
        tile: TileSpec | str | None = None,
    ):
        self.tile = get_tile(tile)
        self.transform = transform or self.tile.transform(dtype=np.float32)
        if (self.transform.m, self.transform.r) != (self.tile.m, self.tile.r):
            raise ConvConfigError(
                f"transform F({self.transform.m},{self.transform.r}) does not "
                f"match tile {self.tile.label()}"
            )
        if config is None:
            config = (
                PAPER_CONFIG if self.tile == TILE_F22 else tile_block_config(self.tile)
            )
        if config.elements != self.tile.elements:
            raise ConvConfigError(
                f"config batches {config.elements} GEMMs but "
                f"{self.tile.label()} needs alpha² = {self.tile.elements}"
            )
        self.config = config

    # ------------------------------------------------------------------
    # FTF kernel (§4.1)
    # ------------------------------------------------------------------
    def transform_filters(self, f_crsk: np.ndarray) -> np.ndarray:
        """GFGᵀ for every (c, k): (C, r, r, K) → (C, alpha, alpha, K)."""
        r = self.transform.r
        if f_crsk.ndim != 4 or f_crsk.shape[1:3] != (r, r):
            raise LayoutError(
                f"expected CRSK {r}×{r} filters, got {f_crsk.shape}"
            )
        # Move K next to C so the transform's trailing dims are (r, r).
        f = np.transpose(f_crsk, (0, 3, 1, 2))  # (C, K, r, r)
        f_t = self.transform.transform_filter(f)  # (C, K, alpha, alpha)
        return np.ascontiguousarray(np.transpose(f_t, (0, 2, 3, 1)))

    # ------------------------------------------------------------------
    # Fused main kernel
    # ------------------------------------------------------------------
    def run(
        self,
        x_chwn: np.ndarray,
        f_transformed: np.ndarray,
        prob: ConvProblem | None = None,
    ) -> tuple[np.ndarray, FusedRunStats]:
        """Run the fused kernel given a pre-transformed filter workspace."""
        if x_chwn.ndim != 4:
            raise LayoutError(f"expected CHWN input, got {x_chwn.shape}")
        c, h, w, n = x_chwn.shape
        t = self.transform
        alpha = t.alpha
        m = t.m
        if f_transformed.shape[:3] != (c, alpha, alpha):
            raise LayoutError(
                f"expected (C,{alpha},{alpha},K) transformed filters, "
                f"got {f_transformed.shape}"
            )
        k = f_transformed.shape[3]
        if prob is None:
            prob = ConvProblem(n=n, c=c, h=h, w=w, k=k)
        cfg = self.config
        pad = prob.pad
        elements = alpha * alpha
        itf_fadds = _itf_fadds_per_tile(t)
        otf_fadds = _otf_fadds_per_tile(t)

        th, tw = prob.tiles_h(m), prob.tiles_w(m)
        tile_r, tile_c, tile_n = tile_index_grid(th, tw, n)
        total_tiles = tile_r.size

        n_blocks_tiles = math.ceil(total_tiles / cfg.bn)
        n_blocks_k = math.ceil(k / cfg.bk)
        iters = math.ceil(c / cfg.bc)

        y = np.zeros((k, prob.out_h, prob.out_w, n), dtype=np.float32)

        stats = FusedRunStats(
            grid_blocks=n_blocks_tiles * n_blocks_k,
            main_loop_iters_per_block=iters,
        )

        arange_a = np.arange(alpha)
        for tb in range(n_blocks_tiles):
            g0 = tb * cfg.bn
            g_idx = np.arange(g0, min(g0 + cfg.bn, total_tiles))
            bn_real = g_idx.size
            rows = tile_r[g_idx][:, None] * m - pad + arange_a[None, :]  # (bn, a)
            cols = tile_c[g_idx][:, None] * m - pad + arange_a[None, :]
            batch = tile_n[g_idx]
            mask = ((rows >= 0) & (rows < h))[:, :, None] & (
                (cols >= 0) & (cols < w)
            )[:, None, :]  # (bn, a, a) — the precomputed predicate masks (§3.5)
            rows_cl = np.clip(rows, 0, h - 1)
            cols_cl = np.clip(cols, 0, w - 1)

            for kb in range(n_blocks_k):
                k0 = kb * cfg.bk
                k_hi = min(k0 + cfg.bk, k)
                bk_real = k_hi - k0
                acc = np.zeros((elements, bk_real, bn_real), dtype=np.float32)

                for c0 in range(0, c, cfg.bc):
                    c_hi = min(c0 + cfg.bc, c)
                    # --- gather bn×bc input tiles with implicit zero pad ---
                    tiles = x_chwn[
                        c0:c_hi,
                        rows_cl[:, :, None],
                        cols_cl[:, None, :],
                        batch[:, None, None],
                    ]  # (bc, bn, a, a)
                    tiles = np.where(mask[None], tiles, np.float32(0))
                    # --- ITF: per-tile BᵀIB adds (§4.2) ---
                    tiles_t = t.transform_input(tiles)  # (bc, bn, a, a)
                    i_smem = tiles_t.transpose(2, 3, 0, 1).reshape(
                        elements, c_hi - c0, bn_real
                    )  # the (alpha², bc, bn) shared buffer of Table 4
                    f_smem = f_transformed[c0:c_hi, :, :, k0:k_hi].transpose(
                        1, 2, 0, 3
                    ).reshape(elements, c_hi - c0, bk_real)  # (alpha², bc, bk)
                    # --- EWMM as alpha²-batched GEMM (Eq. 9) ---
                    acc += np.einsum(
                        "pck,pcn->pkn", f_smem, i_smem, optimize=True
                    ).astype(np.float32)
                    stats.gmem_load_bytes += (
                        tiles.size + f_smem.size
                    ) * 4
                    stats.ffma_total += elements * bk_real * bn_real * (c_hi - c0)
                    stats.itf_fadd_total += itf_fadds * (c_hi - c0) * bn_real
                # --- OTF: transpose via smem, transform, predicated store ---
                o_hat = acc.reshape(alpha, alpha, bk_real, bn_real).transpose(
                    2, 3, 0, 1
                )  # (bk, bn, a, a)
                o = t.transform_output(o_hat)  # (bk, bn, m, m)
                stats.otf_fadd_total += otf_fadds * bk_real * bn_real
                for j, g in enumerate(g_idx):
                    r0 = tile_r[g] * m
                    c0w = tile_c[g] * m
                    rmax = min(m, prob.out_h - r0)
                    cmax = min(m, prob.out_w - c0w)
                    y[k0:k_hi, r0 : r0 + rmax, c0w : c0w + cmax, batch[j]] = o[
                        :, j, :rmax, :cmax
                    ]
                    stats.gmem_store_bytes += bk_real * rmax * cmax * 4

        stats.effective_flops = prob.direct_flops
        return y, stats

    def __call__(self, x_chwn: np.ndarray, f_crsk: np.ndarray) -> np.ndarray:
        """FTF + fused kernel; returns the KHWN output only."""
        f_t = self.transform_filters(f_crsk)
        y, _ = self.run(x_chwn, f_t)
        return y

    # ------------------------------------------------------------------
    # Workload introspection for the perf model / kernel generator
    # ------------------------------------------------------------------
    def workload(self, prob: ConvProblem) -> dict:
        """Static per-launch work description (no data needed)."""
        cfg = self.config
        m = self.transform.m
        th, tw = prob.tiles_h(m), prob.tiles_w(m)
        total_tiles = th * tw * prob.n
        blocks = math.ceil(total_tiles / cfg.bn) * math.ceil(prob.k / cfg.bk)
        iters = math.ceil(prob.c / cfg.bc)
        return {
            "blocks": blocks,
            "iters_per_block": iters,
            "threads_per_block": cfg.threads,
            "warps_per_block": cfg.threads // 32,
            "ffma_per_thread_per_iter": cfg.ffma_per_thread_per_iter,
            "itf_fadd_per_thread_per_iter": _itf_fadds_per_tile(self.transform),
            "effective_flops": prob.direct_flops,
            "smem_bytes_per_block": cfg.smem_main_loop_bytes,
            "arithmetic_intensity": cfg.arithmetic_intensity(),
        }
