"""Tile geometry and implicit zero-padding (paper §3.5), tile-generic.

The kernel never materializes a padded input.  Every (tile-row h̃,
tile-col w̃) pair maps to a window of the *unpadded* input starting at
``(h̃·m - pad, w̃·m - pad)``; elements that fall outside ``[0, H) × [0, W)``
are zeros.  Because each thread always loads the tile at the same
``(h̃, w̃)``, the alpha² in-bounds booleans can be precomputed once —
the predicate mask the paper packs into a register with P2R.

Geometry (alpha, m, pad) is an explicit parameter of every helper here:
F(2×2,3×3) works on 4×4 windows with 16-bit masks, F(4×4,3×3) on 6×6
windows whose 36-bit masks no longer fit one register — ``pack_mask``
returns one 32-bit word per 32 predicates, exactly the register words
the SASS prologue materializes (one P2R word for f22, two for f44).

This module provides that mask computation and the gather/scatter
helpers shared by the reference and fused implementations.  The gathers
are written against the CHWN layout with flat indices + masks rather
than ``np.pad`` so they compute the *same addresses* the SASS kernel
generators emit.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import LayoutError

#: Predicate bits per mask register word (a 32-bit GPR filled by P2R).
MASK_WORD_BITS = 32


def tile_origin(tile_idx: int, m: int, pad: int) -> int:
    """First input row/col (possibly negative) covered by a tile index."""
    return tile_idx * m - pad


def zero_pad_mask(
    h_tile: int, w_tile: int, h: int, w: int, alpha: int, m: int, pad: int
) -> np.ndarray:
    """The (alpha, alpha) bool mask of in-bounds elements for one tile.

    ``True`` means the element is inside the real input and must be
    loaded; ``False`` means implicit zero.  For F(2×2, 3×3) this is the
    16-bool mask of §3.5 — more than the 7 hardware predicate registers,
    hence the P2R/R2P packing trick; F(4×4, 3×3) has 36 bools spanning
    two mask words.
    """
    rows = tile_origin(h_tile, m, pad) + np.arange(alpha)
    cols = tile_origin(w_tile, m, pad) + np.arange(alpha)
    return ((rows >= 0) & (rows < h))[:, None] & ((cols >= 0) & (cols < w))[None, :]


def mask_words(num_bits: int) -> int:
    """Number of 32-bit register words holding *num_bits* predicates."""
    if num_bits < 0:
        raise LayoutError(f"mask cannot have {num_bits} bits")
    return max(1, -(-num_bits // MASK_WORD_BITS))


def pack_mask(mask: np.ndarray) -> tuple[int, ...]:
    """Pack a bool mask into 32-bit words, row-major, bit i = element i.

    Mirrors what ``P2R`` produces after the per-element ``ISETP`` chain:
    word w holds elements ``32·w .. 32·w + 31``.  A 4×4 f22 mask packs
    into one word; a 6×6 f44 mask (36 bits) into two — element 35 is
    bit 3 of the second word.
    """
    flat = np.asarray(mask, dtype=bool).ravel()
    words = [0] * mask_words(flat.size)
    for i, bit in enumerate(flat):
        if bit:
            words[i // MASK_WORD_BITS] |= 1 << (i % MASK_WORD_BITS)
    return tuple(words)


def unpack_mask(words, shape: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`pack_mask` (what ``R2P`` restores in the loop).

    Accepts the word tuple :func:`pack_mask` returns, or a bare int for
    single-word masks.  Raises :class:`LayoutError` when the word count
    does not cover *shape*.
    """
    size = int(np.prod(shape))
    if isinstance(words, (int, np.integer)):
        words = (int(words),)
    words = tuple(int(w) for w in words)
    if len(words) < mask_words(size):
        raise LayoutError(
            f"mask shape {shape} needs {mask_words(size)} words, got {len(words)}"
        )
    for w in words:
        if not (0 <= w < (1 << MASK_WORD_BITS)):
            raise LayoutError(f"mask word {w:#x} does not fit a 32-bit register")
    bits = [
        (words[i // MASK_WORD_BITS] >> (i % MASK_WORD_BITS)) & 1 for i in range(size)
    ]
    return np.array(bits, dtype=bool).reshape(shape)


def gather_input_tiles_chwn(
    x_chwn: np.ndarray,
    tile_rows: np.ndarray,
    tile_cols: np.ndarray,
    alpha: int,
    m: int,
    pad: int,
) -> np.ndarray:
    """Gather input tiles from a CHWN tensor with implicit zero padding.

    Parameters
    ----------
    x_chwn: input activations, layout (C, H, W, N).
    tile_rows, tile_cols: 1-D integer arrays of tile indices (same length
        T); element t selects the tile at (tile_rows[t], tile_cols[t]).
    alpha, m, pad: the tile geometry (explicit — no hidden f22 default).

    Returns
    -------
    Array of shape (C, T, alpha, alpha, N): for every channel and tile,
    the alpha×alpha window with out-of-bounds elements set to zero.
    """
    if x_chwn.ndim != 4:
        raise LayoutError(f"expected CHWN input, got shape {x_chwn.shape}")
    c, h, w, n = x_chwn.shape
    tile_rows = np.asarray(tile_rows)
    tile_cols = np.asarray(tile_cols)
    rows = tile_rows[:, None] * m - pad + np.arange(alpha)[None, :]  # (T, alpha)
    cols = tile_cols[:, None] * m - pad + np.arange(alpha)[None, :]  # (T, alpha)
    row_ok = (rows >= 0) & (rows < h)
    col_ok = (cols >= 0) & (cols < w)
    mask = row_ok[:, :, None] & col_ok[:, None, :]  # (T, alpha, alpha)
    rows_c = np.clip(rows, 0, h - 1)
    cols_c = np.clip(cols, 0, w - 1)
    # Fancy-gather: (C, T, alpha, alpha, N).
    tiles = x_chwn[:, rows_c[:, :, None], cols_c[:, None, :], :]
    tiles = np.where(mask[None, :, :, :, None], tiles, np.zeros((), x_chwn.dtype))
    return tiles


def scatter_output_tiles_khwn(
    y_khwn: np.ndarray,
    tiles: np.ndarray,
    tile_rows: np.ndarray,
    tile_cols: np.ndarray,
    m: int,
) -> None:
    """Scatter m×m output tiles into a KHWN tensor, cropping overhang.

    ``tiles`` has shape (K_local..., T, m, m, N) matching the gather's
    (T, m, m, N) trailing layout; rows/cols landing past the output edge
    (the "one more pixel" of a 7×7 Conv5 output, §7.3 observation 2) are
    discarded, exactly as the kernel's predicated stores do.
    """
    k, h, w, n = y_khwn.shape
    tile_rows = np.asarray(tile_rows)
    tile_cols = np.asarray(tile_cols)
    for t in range(tile_rows.size):
        r0 = tile_rows[t] * m
        c0 = tile_cols[t] * m
        rmax = min(m, h - r0)
        cmax = min(m, w - c0)
        if rmax <= 0 or cmax <= 0:
            continue
        y_khwn[:, r0 : r0 + rmax, c0 : c0 + cmax, :] = tiles[
            ..., t, :rmax, :cmax, :
        ]


def tile_index_grid(tiles_h: int, tiles_w: int, n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Enumerate the N·⌈H/m⌉·⌈W/m⌉ global tiles in the kernel's order.

    The kernel's "input tiles" dimension (Fig. 1 x-axis, ``N * #tiles``)
    is batch-fastest: consecutive global tile indices differ in batch
    first (that is what makes a warp's 32 loads coalesce in CHWN).
    Returns (tile_row, tile_col, batch) arrays of length tiles_h·tiles_w·n.
    """
    hh, ww, nn = np.meshgrid(
        np.arange(tiles_h), np.arange(tiles_w), np.arange(n), indexing="ij"
    )
    return hh.ravel(), ww.ravel(), nn.ravel()
