"""Tile geometry and implicit zero-padding (paper §3.5).

The kernel never materializes a padded input.  Every (tile-row h̃,
tile-col w̃) pair maps to a window of the *unpadded* input starting at
``(h̃·m - pad, w̃·m - pad)``; elements that fall outside ``[0, H) × [0, W)``
are zeros.  Because each thread always loads the tile at the same
``(h̃, w̃)``, the 4×4 = 16 in-bounds booleans can be precomputed once —
the predicate mask the paper packs into one register with P2R.

This module provides that mask computation and the gather/scatter
helpers shared by the reference and fused implementations.  The gathers
are written against the CHWN layout with flat indices + masks rather
than ``np.pad`` so they compute the *same addresses* the SASS kernel
generator emits.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import LayoutError


def tile_origin(tile_idx: int, m: int, pad: int) -> int:
    """First input row/col (possibly negative) covered by a tile index."""
    return tile_idx * m - pad


def zero_pad_mask(
    h_tile: int, w_tile: int, h: int, w: int, alpha: int = 4, m: int = 2, pad: int = 1
) -> np.ndarray:
    """The (alpha, alpha) bool mask of in-bounds elements for one tile.

    ``True`` means the element is inside the real input and must be
    loaded; ``False`` means implicit zero.  For F(2×2, 3×3) this is the
    16-bool mask of §3.5 — more than the 7 hardware predicate registers,
    hence the P2R/R2P packing trick.
    """
    rows = tile_origin(h_tile, m, pad) + np.arange(alpha)
    cols = tile_origin(w_tile, m, pad) + np.arange(alpha)
    return ((rows >= 0) & (rows < h))[:, None] & ((cols >= 0) & (cols < w))[None, :]


def pack_mask(mask: np.ndarray) -> int:
    """Pack a bool mask into an int, row-major, bit i = element i.

    Mirrors what ``P2R`` produces after the per-element ``ISETP`` chain:
    one 32-bit register holding all 16 predicates of a 4×4 tile.
    """
    flat = np.asarray(mask, dtype=bool).ravel()
    if flat.size > 32:
        raise LayoutError(f"mask has {flat.size} bits; register holds at most 32")
    value = 0
    for i, bit in enumerate(flat):
        if bit:
            value |= 1 << i
    return value


def unpack_mask(value: int, shape: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`pack_mask` (what ``R2P`` restores in the loop)."""
    size = int(np.prod(shape))
    if size > 32:
        raise LayoutError(f"mask shape {shape} exceeds 32 bits")
    bits = [(value >> i) & 1 for i in range(size)]
    return np.array(bits, dtype=bool).reshape(shape)


def gather_input_tiles_chwn(
    x_chwn: np.ndarray,
    tile_rows: np.ndarray,
    tile_cols: np.ndarray,
    alpha: int = 4,
    m: int = 2,
    pad: int = 1,
) -> np.ndarray:
    """Gather input tiles from a CHWN tensor with implicit zero padding.

    Parameters
    ----------
    x_chwn: input activations, layout (C, H, W, N).
    tile_rows, tile_cols: 1-D integer arrays of tile indices (same length
        T); element t selects the tile at (tile_rows[t], tile_cols[t]).

    Returns
    -------
    Array of shape (C, T, alpha, alpha, N): for every channel and tile,
    the alpha×alpha window with out-of-bounds elements set to zero.
    """
    if x_chwn.ndim != 4:
        raise LayoutError(f"expected CHWN input, got shape {x_chwn.shape}")
    c, h, w, n = x_chwn.shape
    tile_rows = np.asarray(tile_rows)
    tile_cols = np.asarray(tile_cols)
    rows = tile_rows[:, None] * m - pad + np.arange(alpha)[None, :]  # (T, alpha)
    cols = tile_cols[:, None] * m - pad + np.arange(alpha)[None, :]  # (T, alpha)
    row_ok = (rows >= 0) & (rows < h)
    col_ok = (cols >= 0) & (cols < w)
    mask = row_ok[:, :, None] & col_ok[:, None, :]  # (T, alpha, alpha)
    rows_c = np.clip(rows, 0, h - 1)
    cols_c = np.clip(cols, 0, w - 1)
    # Fancy-gather: (C, T, alpha, alpha, N).
    tiles = x_chwn[:, rows_c[:, :, None], cols_c[:, None, :], :]
    tiles = np.where(mask[None, :, :, :, None], tiles, np.zeros((), x_chwn.dtype))
    return tiles


def scatter_output_tiles_khwn(
    y_khwn: np.ndarray,
    tiles: np.ndarray,
    tile_rows: np.ndarray,
    tile_cols: np.ndarray,
    m: int = 2,
) -> None:
    """Scatter m×m output tiles into a KHWN tensor, cropping overhang.

    ``tiles`` has shape (K_local..., T, m, m, N) matching the gather's
    (T, m, m, N) trailing layout; rows/cols landing past the output edge
    (the "one more pixel" of a 7×7 Conv5 output, §7.3 observation 2) are
    discarded, exactly as the kernel's predicated stores do.
    """
    k, h, w, n = y_khwn.shape
    tile_rows = np.asarray(tile_rows)
    tile_cols = np.asarray(tile_cols)
    for t in range(tile_rows.size):
        r0 = tile_rows[t] * m
        c0 = tile_cols[t] * m
        rmax = min(m, h - r0)
        cmax = min(m, w - c0)
        if rmax <= 0 or cmax <= 0:
            continue
        y_khwn[:, r0 : r0 + rmax, c0 : c0 + cmax, :] = tiles[
            ..., t, :rmax, :cmax, :
        ]


def tile_index_grid(tiles_h: int, tiles_w: int, n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Enumerate the N·⌈H/m⌉·⌈W/m⌉ global tiles in the kernel's order.

    The kernel's "input tiles" dimension (Fig. 1 x-axis, ``N * #tiles``)
    is batch-fastest: consecutive global tile indices differ in batch
    first (that is what makes a warp's 32 loads coalesce in CHWN).
    Returns (tile_row, tile_col, batch) arrays of length tiles_h·tiles_w·n.
    """
    hh, ww, nn = np.meshgrid(
        np.arange(tiles_h), np.arange(tiles_w), np.arange(n), indexing="ij"
    )
    return hh.ravel(), ww.ravel(), nn.ravel()
