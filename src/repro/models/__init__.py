"""CNN layer tables used as workloads (ResNet Table 1, VGG-19)."""

from .resnet import (
    PAPER_BATCH_SIZES,
    RESNET_LAYER_SHAPES,
    paper_layers,
    paper_layers_batch_major,
    resnet_layer,
)
from .vgg import VGG19_LAYER_SHAPES, vgg_layer, vgg_layers

__all__ = [
    "PAPER_BATCH_SIZES",
    "RESNET_LAYER_SHAPES",
    "VGG19_LAYER_SHAPES",
    "paper_layers",
    "paper_layers_batch_major",
    "resnet_layer",
    "vgg_layer",
    "vgg_layers",
]
