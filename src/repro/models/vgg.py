"""VGG-19 3×3 layers.

The paper motivates Winograd with VGG ("16 out of 19 layers are 3×3")
and states the kernel peaks when N is a multiple of 32, K a multiple of
64 and C a multiple of 8 — true for every VGG layer below.  Used by the
generality example and the break-even sweep.
"""

from __future__ import annotations

from ..common import ConvProblem

# (stage, repeat): input channels, output channels, spatial size at 224x224.
VGG19_LAYER_SHAPES = {
    "VggConv1_2": dict(h=224, w=224, c=64, k=64),
    "VggConv2_1": dict(h=112, w=112, c=64, k=128),
    "VggConv2_2": dict(h=112, w=112, c=128, k=128),
    "VggConv3_1": dict(h=56, w=56, c=128, k=256),
    "VggConv3_2": dict(h=56, w=56, c=256, k=256),
    "VggConv4_1": dict(h=28, w=28, c=256, k=512),
    "VggConv4_2": dict(h=28, w=28, c=512, k=512),
    "VggConv5_1": dict(h=14, w=14, c=512, k=512),
}


def vgg_layer(name: str, n: int) -> ConvProblem:
    shape = VGG19_LAYER_SHAPES[name]
    return ConvProblem(n=n, r=3, s=3, pad=1, name=f"{name}N{n}", **shape)


def vgg_layers(n: int = 32) -> list[ConvProblem]:
    return [vgg_layer(name, n) for name in VGG19_LAYER_SHAPES]
