"""The paper's workload: all 3×3 convolutional layers of ResNet (Table 1).

Every evaluation table and figure in the paper sweeps these four layers at
batch sizes {32, 64, 96, 128}, labelled ``ConvxNn`` (e.g. ``Conv2N32``).
"""

from __future__ import annotations

from ..common import ConvProblem

# Table 1: Output(H×W), Filter (C, R×S, K).  Pad 1, stride 1, so the input
# spatial size equals the output spatial size.
RESNET_LAYER_SHAPES = {
    "Conv2": dict(h=56, w=56, c=64, k=64),
    "Conv3": dict(h=28, w=28, c=128, k=128),
    "Conv4": dict(h=14, w=14, c=256, k=256),
    "Conv5": dict(h=7, w=7, c=512, k=512),
}

PAPER_BATCH_SIZES = (32, 64, 96, 128)


def resnet_layer(name: str, n: int) -> ConvProblem:
    """One ResNet 3×3 layer, e.g. ``resnet_layer("Conv2", 32)``."""
    shape = RESNET_LAYER_SHAPES[name]
    return ConvProblem(n=n, r=3, s=3, pad=1, name=f"{name}N{n}", **shape)


def paper_layers(batch_sizes=PAPER_BATCH_SIZES) -> list[ConvProblem]:
    """The 16 (layer, batch) points of the evaluation, in paper order.

    The paper orders the x-axis of Figures 7-11 layer-major
    (Conv2N32..Conv2N128, Conv3N32, ...).
    """
    return [
        resnet_layer(layer, n)
        for layer in RESNET_LAYER_SHAPES
        for n in batch_sizes
    ]


def paper_layers_batch_major(batch_sizes=PAPER_BATCH_SIZES) -> list[ConvProblem]:
    """Same 16 points ordered batch-major (the row order of Table 2/6)."""
    return [
        resnet_layer(layer, n)
        for n in batch_sizes
        for layer in RESNET_LAYER_SHAPES
    ]
