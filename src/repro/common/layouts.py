"""Tensor layout conversions.

The paper's kernel reads input in **CHWN** ("batch fastest") so that 32
consecutive threads load 32 consecutive batch elements — a fully coalesced
128-byte transaction — and writes output in **KHWN**.  Host frameworks use
NCHW.  These helpers convert between the layouts and validate shapes, so
every implementation states its expected layout explicitly instead of
guessing from array shapes.

All converters return C-contiguous arrays: downstream code (the simulator's
flat memory image, the tile gather in `winograd.fused`) indexes into flat
buffers and needs deterministic strides.
"""

from __future__ import annotations

import numpy as np

from .errors import LayoutError


def _require_rank(a: np.ndarray, rank: int, what: str) -> None:
    if a.ndim != rank:
        raise LayoutError(f"{what} must have rank {rank}, got shape {a.shape}")


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------
def nchw_to_chwn(x: np.ndarray) -> np.ndarray:
    """NCHW → CHWN (the kernel's global-memory input layout, Table 4)."""
    _require_rank(x, 4, "activation")
    return np.ascontiguousarray(np.transpose(x, (1, 2, 3, 0)))


def chwn_to_nchw(x: np.ndarray) -> np.ndarray:
    """CHWN → NCHW."""
    _require_rank(x, 4, "activation")
    return np.ascontiguousarray(np.transpose(x, (3, 0, 1, 2)))


def nchw_to_nhwc(x: np.ndarray) -> np.ndarray:
    _require_rank(x, 4, "activation")
    return np.ascontiguousarray(np.transpose(x, (0, 2, 3, 1)))


def nhwc_to_nchw(x: np.ndarray) -> np.ndarray:
    _require_rank(x, 4, "activation")
    return np.ascontiguousarray(np.transpose(x, (0, 3, 1, 2)))


# ---------------------------------------------------------------------------
# Outputs: the kernel produces KHWN (filter-major), hosts want NKHW
# ---------------------------------------------------------------------------
def khwn_to_nkhw(y: np.ndarray) -> np.ndarray:
    _require_rank(y, 4, "output")
    return np.ascontiguousarray(np.transpose(y, (3, 0, 1, 2)))


def nkhw_to_khwn(y: np.ndarray) -> np.ndarray:
    _require_rank(y, 4, "output")
    return np.ascontiguousarray(np.transpose(y, (1, 2, 3, 0)))


# ---------------------------------------------------------------------------
# Filters: frameworks store KCRS; the kernel reads CRSK ("k fastest") so a
# warp's 32 threads load 32 consecutive filters (coalesced); the transformed
# filter is stored CR'S'K (Table 4).
# ---------------------------------------------------------------------------
def kcrs_to_crsk(f: np.ndarray) -> np.ndarray:
    _require_rank(f, 4, "filter")
    return np.ascontiguousarray(np.transpose(f, (1, 2, 3, 0)))


def crsk_to_kcrs(f: np.ndarray) -> np.ndarray:
    _require_rank(f, 4, "filter")
    return np.ascontiguousarray(np.transpose(f, (3, 0, 1, 2)))


LAYOUT_DOC = {
    "Input": ("(C,H,W,N)", "GMEM"),
    "Filter": ("(C,R,S,K)", "GMEM"),
    "Transformed filter": ("(C,R',S',K)", "GMEM"),
    "Local input buffer": ("(16, bc, bn)", "SMEM"),
    "Local filter buffer": ("(16, bc, bk)", "SMEM"),
    "Local output buffer": ("(16, 2, 8, bn')", "SMEM"),
    "Output": ("(K,H,W,N)", "GMEM"),
}
"""Table 4 of the paper, kept as data so benches can print it verbatim."""
