"""Exception hierarchy shared by every subpackage.

A single root (:class:`ReproError`) lets callers catch anything raised by
this library without masking unrelated bugs, while the per-domain
subclasses keep error reporting precise (assembler syntax errors are not
simulator faults, and vice versa).
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of every exception raised deliberately by this library."""


class LayoutError(ReproError):
    """A tensor did not match the layout an operation requires."""


class ConvConfigError(ReproError):
    """A convolution problem specification is inconsistent or unsupported."""


class AssemblerError(ReproError):
    """Root for SASS assembly failures."""


class SassSyntaxError(AssemblerError):
    """The SASS source text could not be parsed.

    Carries the 1-based source line for error reporting.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(AssemblerError):
    """An instruction was parsed but cannot be encoded (bad operand, range)."""


class RegisterBudgetError(AssemblerError):
    """A kernel exceeds the per-thread register limit (255/253 usable)."""


class LintError(AssemblerError):
    """Static analysis found error-severity diagnostics in a kernel.

    Raised by the launch gate in :mod:`repro.kernels.runner` and by
    ``python -m repro.sass lint`` callers; carries the diagnostics for
    programmatic inspection.
    """

    def __init__(self, message: str, diagnostics: list | None = None):
        self.diagnostics = diagnostics or []
        super().__init__(message)


class SimulatorError(ReproError):
    """Root for GPU simulator faults."""


class SimMemoryFault(SimulatorError):
    """Out-of-bounds or misaligned access in simulated memory."""


class SimLaunchError(SimulatorError):
    """Kernel launch configuration exceeds device limits."""


class DeviceError(SimulatorError):
    """Device registry failure: unknown device name, or a registered
    :class:`~repro.gpusim.arch.DeviceSpec` whose latency model fails
    validation against the microbenchmarked bounds."""


class SimDeadlock(SimulatorError):
    """The simulator made no forward progress (barrier/scoreboard deadlock)."""


class ModelError(ReproError):
    """Analytical performance model was queried outside its domain."""


class WorkspaceError(ReproError):
    """Misuse of the runtime workspace arena (double release, bad size)."""


class WorkspaceLimitError(WorkspaceError):
    """A workspace reservation would exceed the arena's byte budget."""


class ServingError(ReproError):
    """Root for the async serving frontend's failures."""


class BackpressureError(ServingError):
    """A request was shed by admission control instead of served.

    The serving layer's typed load-shedding response: raised to the
    *caller of one request* when the per-signature queue is at its depth
    bound, or when executing the request's batch would push the tenant's
    :class:`~repro.runtime.arena.WorkspaceArena` past its byte budget
    (the arena's :class:`WorkspaceLimitError` is translated into this,
    never propagated raw).  ``reason`` is machine-readable so clients
    can implement retry policy: ``"queue_full"`` (transient — retry
    after a delay) or ``"workspace_limit"``.
    """

    def __init__(self, message: str, *, reason: str = "overloaded"):
        self.reason = reason
        super().__init__(message)
