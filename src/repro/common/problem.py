"""Convolution problem specification.

Everything in the paper is parameterized by one tuple: batch ``N``, input
channels ``C``, spatial size ``H × W``, filter count ``K`` and filter size
``R × S`` (always 3 × 3 for Winograd F(2×2, 3×3)), with implicit "SAME"
padding of 1 and stride 1, matching all 3×3 ResNet layers (Table 1).

:class:`ConvProblem` is the single currency passed between the NumPy
implementations, the kernel generators, the simulator launch helpers and
the analytical models; all derived quantities (tile counts, FLOPs,
workspace sizes) live here so the formulas are written exactly once.
"""

from __future__ import annotations

import dataclasses
import math

from .errors import ConvConfigError


@dataclasses.dataclass(frozen=True)
class ConvProblem:
    """A batched 2-D convolution problem, NCHW semantics.

    Attributes
    ----------
    n: batch size.
    c: input channels.
    h, w: input spatial height / width (also output size: stride 1, pad 1).
    k: number of filters (output channels).
    r, s: filter height / width.
    pad: symmetric zero padding (1 for "SAME" 3×3).
    stride: convolution stride (only 1 is used in the paper).
    name: optional human-readable label, e.g. ``"Conv2N32"``.
    """

    n: int
    c: int
    h: int
    w: int
    k: int
    r: int = 3
    s: int = 3
    pad: int = 1
    stride: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        for field in ("n", "c", "h", "w", "k", "r", "s"):
            value = getattr(self, field)
            if not isinstance(value, int) or value <= 0:
                raise ConvConfigError(f"{field} must be a positive int, got {value!r}")
        if self.pad < 0:
            raise ConvConfigError(f"pad must be >= 0, got {self.pad}")
        if self.stride not in (1, 2):
            # The paper's kernels are stride-1; stride 2 is admitted for
            # the DWM decomposition path, which lowers it to stride-1
            # polyphase sub-problems (see ``repro.convolution.dwm``).
            raise ConvConfigError(
                f"only stride 1 (paper) and stride 2 (DWM decomposition) "
                f"are supported, got {self.stride}"
            )

    # ------------------------------------------------------------------
    # Output geometry
    # ------------------------------------------------------------------
    @property
    def out_h(self) -> int:
        """Output height: ⌊(H + 2·pad − R) / stride⌋ + 1."""
        return (self.h + 2 * self.pad - self.r) // self.stride + 1

    @property
    def out_w(self) -> int:
        """Output width: ⌊(W + 2·pad − S) / stride⌋ + 1."""
        return (self.w + 2 * self.pad - self.s) // self.stride + 1

    # ------------------------------------------------------------------
    # Winograd F(m×m, r×r) tiling
    # ------------------------------------------------------------------
    def tiles_h(self, m: int = 2) -> int:
        """Number of output tiles along height for F(m×m, 3×3)."""
        return math.ceil(self.out_h / m)

    def tiles_w(self, m: int = 2) -> int:
        """Number of output tiles along width for F(m×m, 3×3)."""
        return math.ceil(self.out_w / m)

    def tiles_per_image(self, m: int = 2) -> int:
        return self.tiles_h(m) * self.tiles_w(m)

    def total_tiles(self, m: int = 2) -> int:
        """⌈H/m⌉⌈W/m⌉·N — the EWMM "rows" dimension of §3.2."""
        return self.tiles_per_image(m) * self.n

    # ------------------------------------------------------------------
    # Work accounting
    # ------------------------------------------------------------------
    @property
    def direct_flops(self) -> int:
        """2·N·C·H'·W'·K·R·S multiply-adds counted as 2 flops each.

        This is the conventional "convolution FLOPs" figure used for
        TFLOPS reporting throughout the paper (effective FLOPs — the
        Winograd kernel performs fewer actual multiplications but is
        credited with the direct-conv count, which is how an "up to 93%
        of device peak" claim exceeding 1/2.25 of peak is possible).
        """
        return 2 * self.n * self.c * self.out_h * self.out_w * self.k * self.r * self.s

    def winograd_multiplies(self, m: int = 2) -> int:
        """Actual element-wise multiplies performed by F(m×m, 3×3)."""
        t = m + self.r - 1  # transformed tile edge
        return self.total_tiles(m) * self.c * self.k * t * t

    def arithmetic_reduction(self, m: int = 2) -> float:
        """Multiplication reduction factor vs direct conv (≈2.25 for m=2)."""
        direct_muls = self.n * self.c * self.out_h * self.out_w * self.k * self.r * self.s
        return direct_muls / self.winograd_multiplies(m)

    # ------------------------------------------------------------------
    # Byte accounting (fp32)
    # ------------------------------------------------------------------
    @property
    def input_bytes(self) -> int:
        return 4 * self.n * self.c * self.h * self.w

    @property
    def filter_bytes(self) -> int:
        return 4 * self.k * self.c * self.r * self.s

    @property
    def output_bytes(self) -> int:
        return 4 * self.n * self.k * self.out_h * self.out_w

    def transformed_filter_bytes(self, m: int = 2) -> int:
        """Workspace holding GFGᵀ for every (c, k): C·K·t² floats."""
        t = m + self.r - 1
        return 4 * self.c * self.k * t * t

    # ------------------------------------------------------------------
    def with_batch(self, n: int) -> "ConvProblem":
        """Same layer at a different batch size (keeps the layer name stem)."""
        stem = self.name.split("N")[0] if self.name else ""
        label = f"{stem}N{n}" if stem else ""
        return dataclasses.replace(self, n=n, name=label)

    def label(self) -> str:
        return self.name or f"conv{self.c}x{self.h}x{self.w}k{self.k}n{self.n}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConvProblem({self.label()}: N={self.n} C={self.c} "
            f"{self.h}x{self.w} K={self.k} {self.r}x{self.s} pad={self.pad})"
        )
