"""Plain-text table rendering for the benchmark harness.

The paper reports its evaluation as tables (Tables 2, 6, 7) and heat-map
style grids (Figures 12-14).  The benches print the same rows with this
tiny formatter instead of pulling in a plotting stack: the reproduction
target is the numbers, and text tables diff cleanly in CI.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned ASCII table.

    Floats are formatted with *float_fmt*; everything else with ``str``.
    """
    str_rows = []
    for row in rows:
        str_rows.append(
            [float_fmt.format(v) if isinstance(v, float) else str(v) for v in row]
        )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def format_grid(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values,
    title: str = "",
    float_fmt: str = "{:.2f}",
) -> str:
    """Render a labelled 2-D grid (the shape of the paper's Figures 12-14)."""
    rows = [[rl, *vals] for rl, vals in zip(row_labels, values)]
    return format_table(["", *col_labels], rows, title=title, float_fmt=float_fmt)


def series_summary(name: str, values: Sequence[float]) -> str:
    """One-line min/mean/max summary used when a figure is a curve."""
    lo, hi = min(values), max(values)
    mean = sum(values) / len(values)
    return f"{name}: min={lo:.3f} mean={mean:.3f} max={hi:.3f} (n={len(values)})"
