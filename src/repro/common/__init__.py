"""Shared substrate: problem specs, layouts, errors, RNG, table printing."""

from .errors import (
    AssemblerError,
    ConvConfigError,
    EncodingError,
    LayoutError,
    ModelError,
    RegisterBudgetError,
    ReproError,
    SassSyntaxError,
    SimDeadlock,
    SimLaunchError,
    SimMemoryFault,
    SimulatorError,
    WorkspaceError,
    WorkspaceLimitError,
)
from .layouts import (
    chwn_to_nchw,
    crsk_to_kcrs,
    kcrs_to_crsk,
    khwn_to_nkhw,
    nchw_to_chwn,
    nchw_to_nhwc,
    nhwc_to_nchw,
    nkhw_to_khwn,
)
from .problem import ConvProblem
from .rng import conv_tolerance, make_rng, random_activation, random_filter
from .tables import format_grid, format_table, series_summary

__all__ = [
    "AssemblerError",
    "ConvConfigError",
    "ConvProblem",
    "EncodingError",
    "LayoutError",
    "ModelError",
    "RegisterBudgetError",
    "ReproError",
    "SassSyntaxError",
    "SimDeadlock",
    "SimLaunchError",
    "SimMemoryFault",
    "SimulatorError",
    "WorkspaceError",
    "WorkspaceLimitError",
    "chwn_to_nchw",
    "conv_tolerance",
    "crsk_to_kcrs",
    "format_grid",
    "format_table",
    "kcrs_to_crsk",
    "khwn_to_nkhw",
    "make_rng",
    "nchw_to_chwn",
    "nchw_to_nhwc",
    "nhwc_to_nchw",
    "nkhw_to_khwn",
    "random_activation",
    "random_filter",
    "series_summary",
]
