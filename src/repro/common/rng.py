"""Deterministic random test-data generation.

Every test and benchmark draws data through :func:`make_rng` /
:func:`random_activation` / :func:`random_filter` so results are
reproducible run-to-run and machine-to-machine.  Values are kept small
(±1) so fp32 Winograd round-off stays well inside the tolerances the
tests assert.
"""

from __future__ import annotations

import numpy as np

from .problem import ConvProblem

DEFAULT_SEED = 0x5A55  # "SASS"


def make_rng(seed: int | None = None) -> np.random.Generator:
    """A PCG64 generator with the library-wide default seed."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def random_activation(
    prob: ConvProblem, rng: np.random.Generator | None = None, dtype=np.float32
) -> np.ndarray:
    """NCHW activation with entries in [-1, 1)."""
    rng = rng or make_rng()
    shape = (prob.n, prob.c, prob.h, prob.w)
    return (rng.random(shape, dtype=np.float32) * 2.0 - 1.0).astype(dtype, copy=False)


def random_filter(
    prob: ConvProblem, rng: np.random.Generator | None = None, dtype=np.float32
) -> np.ndarray:
    """KCRS filter with entries in [-1, 1)."""
    rng = rng or make_rng()
    shape = (prob.k, prob.c, prob.r, prob.s)
    return (rng.random(shape, dtype=np.float32) * 2.0 - 1.0).astype(dtype, copy=False)


def conv_tolerance(prob: ConvProblem) -> float:
    """Absolute tolerance for comparing fp32 convolution implementations.

    The reduction over ``C·R·S`` terms accumulates round-off roughly with
    the square root of the term count; Winograd's transforms add a small
    constant factor on top (its ill-conditioning grows with tile size,
    but F(2×2) and F(4×4) are benign).
    """
    terms = prob.c * prob.r * prob.s
    return 2e-5 * max(1.0, terms**0.5)
