"""Observability for the autotuning dispatcher.

One :class:`DispatchStats` per :class:`repro.runtime.ExecutionContext`
(the process-wide default context unless one is activated) accumulates
per-call counters for every ``conv2d(algo="AUTO"/"AUTO_HEURISTIC")``
dispatch: plan-cache
hits and misses, timed trials run (with per-algorithm wall times),
algorithms chosen, candidates excluded by the workspace budget or shape
restrictions, and runtime fallbacks taken when an algorithm raised.

``get_dispatch_stats()`` returns an independent snapshot so callers can
diff two readings without the dispatcher mutating their copy;
``reset_dispatch_stats()`` zeroes the live counters (e.g. between
benchmark phases).
"""

from __future__ import annotations

import copy
import dataclasses

# Per-algorithm trial history is capped: a long-lived process autotuning
# many shapes must not accumulate one float per trial forever.  Running
# aggregates (count/sum/min/max) keep full-precision statistics.
TRIAL_HISTORY_CAP = 32


@dataclasses.dataclass
class TrialAggregate:
    """Running aggregate of one algorithm's trial wall-times (never trimmed)."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclasses.dataclass
class DispatchStats:
    """Counters for the AUTO / AUTO_HEURISTIC dispatch paths.

    Attributes
    ----------
    calls: dispatched ``conv2d`` invocations, keyed further by mode in
        :attr:`calls_by_mode`.
    cache_hits / cache_misses: plan-cache outcomes; a hit executes the
        memoized plan and runs **zero** new trials.
    plan_evictions: plans dropped by the plan cache's size bound.
    trials_run: timed candidate executions performed by ``AUTO`` misses.
    fallbacks: times a selected algorithm raised at execution and the
        dispatcher fell through to the next candidate.
    trial_times: per-algorithm wall-clock seconds of *recent* trials
        (the newest :data:`TRIAL_HISTORY_CAP` per algorithm; the
        unbounded history lives on only as :attr:`trial_stats`
        aggregates so long-lived processes don't leak).
    trial_stats: per-algorithm running count/sum/min/max over **all**
        trials ever run, regardless of the history cap.
    chosen: how often each algorithm ended up serving a call.
    excluded: candidates rejected *before* execution (workspace budget
        or unsupported shape), counted per algorithm.
    errors: candidates that raised during execution, per algorithm.
    """

    calls: int = 0
    calls_by_mode: dict[str, int] = dataclasses.field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    plan_evictions: int = 0
    trials_run: int = 0
    fallbacks: int = 0
    trial_times: dict[str, list[float]] = dataclasses.field(default_factory=dict)
    trial_stats: dict[str, TrialAggregate] = dataclasses.field(default_factory=dict)
    chosen: dict[str, int] = dataclasses.field(default_factory=dict)
    excluded: dict[str, int] = dataclasses.field(default_factory=dict)
    errors: dict[str, int] = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------------
    # Recording (used by repro.convolution.autotune)
    # ------------------------------------------------------------------
    def record_call(self, mode: str) -> None:
        self.calls += 1
        self.calls_by_mode[mode] = self.calls_by_mode.get(mode, 0) + 1

    def record_trial(self, algo: str, seconds: float) -> None:
        self.trials_run += 1
        history = self.trial_times.setdefault(algo, [])
        history.append(seconds)
        del history[:-TRIAL_HISTORY_CAP]
        self.trial_stats.setdefault(algo, TrialAggregate()).record(seconds)

    def record_choice(self, algo: str) -> None:
        self.chosen[algo] = self.chosen.get(algo, 0) + 1

    def record_exclusion(self, algo: str) -> None:
        self.excluded[algo] = self.excluded.get(algo, 0) + 1

    def record_error(self, algo: str) -> None:
        self.errors[algo] = self.errors.get(algo, 0) + 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Plan-cache hit rate over all dispatched calls (0.0 when idle)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def mean_trial_time(self, algo: str) -> float:
        """Mean over *all* trials ever run (from the running aggregates,
        so the answer is exact even after the recent-history cap trims
        :attr:`trial_times`)."""
        agg = self.trial_stats.get(algo)
        return agg.mean if agg else 0.0

    def snapshot(self) -> "DispatchStats":
        return copy.deepcopy(self)


def live_dispatch_stats() -> DispatchStats:
    """The current context's mutable instance (for the dispatcher itself).

    Ownership moved to :class:`repro.runtime.ExecutionContext`; this
    accessor (and the two below) read whichever context is active, which
    is the process-wide default unless one was explicitly activated.
    """
    from ..runtime import current_context

    return current_context().dispatch_stats


def get_dispatch_stats() -> DispatchStats:
    """An independent snapshot of the dispatch counters."""
    return live_dispatch_stats().snapshot()


def reset_dispatch_stats() -> None:
    """Zero every counter (the live object is replaced, not mutated)."""
    from ..runtime import current_context

    current_context().dispatch_stats = DispatchStats()
