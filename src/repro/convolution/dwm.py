"""Decomposable Winograd Method (DWM): large/strided filters via F(m,3).

The paper's kernels (and the fast Winograd algorithms generally) want
small stride-1 filters — F(2×2,3×3)/F(4×4,3×3) cover exactly the 3×3
stride-1 layers of Table 1.  DWM extends that coverage by *decomposing*
a problem the tiles cannot run into a sum of problems they can:

* **Large filters** (R > 3, e.g. 5×5): the filter taps are split into
  row/column chunks of at most 3.  A 5×5 becomes four sub-filters —
  3×3, 3×2, 2×3 and 2×2 — each zero-padded to 3×3 and applied to the
  correspondingly shifted input window.
* **Stride 2**: polyphase decomposition.  Taps with row ≡ a, col ≡ b
  (mod 2) form one stride-1 sub-filter applied to the (a, b)-phase
  subsampling of the padded input; a 3×3 stride-2 conv becomes four
  stride-1 parts (2×2, 2×1, 1×2, 1×1).

Both rules compose (a 7×7 stride-2 filter first splits into ≤4-wide
phases, then into ≤3 chunks).  Every part is a VALID (pad-0) 3×3
convolution on an explicit slice of the padded input, so each one runs
through :class:`~repro.winograd.fused.FusedWinogradConv` — the same
fused pipeline the dispatcher uses for native 3×3 layers — and the
partial outputs sum exactly to the direct-convolution result.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..common.errors import ConvConfigError, LayoutError
from ..common.layouts import kcrs_to_crsk, khwn_to_nkhw, nchw_to_chwn
from ..common.problem import ConvProblem
from ..winograd.fused import FusedWinogradConv
from ..winograd.tilespec import TileSpec, get_tile

#: Largest sub-filter edge the fused F(m×m, 3×3) kernels accept.
FILTER_CHUNK = 3


@dataclasses.dataclass(frozen=True)
class DWMPart:
    """One stride-1 ≤3×3 sub-problem of a decomposed convolution.

    ``phase`` is the stride-polyphase (row, col) residue; ``row0/col0``
    index the chunk origin *within the phase's subsampled filter*;
    ``rows/cols`` are the true chunk extent before zero-padding to 3×3.
    """

    phase: tuple[int, int]
    row0: int
    col0: int
    rows: int
    cols: int

    def label(self) -> str:
        a, b = self.phase
        return f"ph{a}{b}+{self.row0},{self.col0}:{self.rows}x{self.cols}"


@dataclasses.dataclass(frozen=True)
class DWMPlan:
    """The full decomposition of an (R×S, pad, stride) problem."""

    r: int
    s: int
    pad: int
    stride: int
    parts: tuple[DWMPart, ...]

    @property
    def num_parts(self) -> int:
        return len(self.parts)

    @property
    def is_trivial(self) -> bool:
        """True when the problem was already a native 3×3 stride-1 conv."""
        return self.num_parts == 1 and self.parts[0].rows == self.r

    def label(self) -> str:
        return (
            f"DWM({self.r}x{self.s},pad={self.pad},stride={self.stride})"
            f"->{self.num_parts} part(s)"
        )


def dwm_plan(r: int, s: int, pad: int, stride: int = 1) -> DWMPlan:
    """Decompose an R×S / stride problem into stride-1 ≤3×3 parts."""
    if r < 1 or s < 1:
        raise ConvConfigError(f"filter must be at least 1x1, got {r}x{s}")
    if stride not in (1, 2):
        raise ConvConfigError(
            f"DWM supports stride 1 and 2, got stride={stride}"
        )
    parts: list[DWMPart] = []
    for a in range(stride):
        phase_rows = math.ceil((r - a) / stride)
        if phase_rows <= 0:
            continue
        for b in range(stride):
            phase_cols = math.ceil((s - b) / stride)
            if phase_cols <= 0:
                continue
            for row0 in range(0, phase_rows, FILTER_CHUNK):
                for col0 in range(0, phase_cols, FILTER_CHUNK):
                    parts.append(
                        DWMPart(
                            phase=(a, b),
                            row0=row0,
                            col0=col0,
                            rows=min(FILTER_CHUNK, phase_rows - row0),
                            cols=min(FILTER_CHUNK, phase_cols - col0),
                        )
                    )
    return DWMPlan(r=r, s=s, pad=pad, stride=stride, parts=tuple(parts))


def _part_subfilter(f: np.ndarray, plan: DWMPlan, part: DWMPart) -> np.ndarray:
    """The part's KCRS sub-filter, zero-padded to 3×3 (top-left)."""
    k, c = f.shape[:2]
    a, b = part.phase
    sigma = plan.stride
    g = np.zeros((k, c, FILTER_CHUNK, FILTER_CHUNK), dtype=f.dtype)
    row_taps = a + sigma * (part.row0 + np.arange(part.rows))
    col_taps = b + sigma * (part.col0 + np.arange(part.cols))
    g[:, :, : part.rows, : part.cols] = f[:, :, row_taps[:, None], col_taps[None, :]]
    return g


def _part_input(
    xp: np.ndarray, plan: DWMPlan, part: DWMPart, out_h: int, out_w: int
) -> np.ndarray:
    """The part's NCHW input window: phase-subsample, shift, zero-extend.

    The window is exactly (out_h + 2, out_w + 2) so a VALID 3×3 conv on
    it yields the (out_h, out_w) partial output.  Trailing rows/cols past
    the subsampled input are zero — they are only ever multiplied by the
    zero-padding taps of the sub-filter.
    """
    a, b = part.phase
    sigma = plan.stride
    sub = xp[:, :, a::sigma, b::sigma]
    need_h = out_h + FILTER_CHUNK - 1
    need_w = out_w + FILTER_CHUNK - 1
    win = sub[:, :, part.row0 : part.row0 + need_h, part.col0 : part.col0 + need_w]
    grow_h = need_h - win.shape[2]
    grow_w = need_w - win.shape[3]
    if grow_h > 0 or grow_w > 0:
        win = np.pad(win, ((0, 0), (0, 0), (0, max(grow_h, 0)), (0, max(grow_w, 0))))
    return win


def dwm_conv2d(
    x: np.ndarray,
    f: np.ndarray,
    pad: int = 1,
    stride: int = 1,
    tile: TileSpec | str | None = None,
) -> np.ndarray:
    """Convolution by DWM decomposition; every part runs fused Winograd.

    Parameters
    ----------
    x: activations (N, C, H, W).
    f: filters (K, C, R, S) with R == S (square, as everywhere else).
    pad: symmetric zero padding.
    stride: 1 or 2 (stride 2 is lowered polyphase).
    tile: the Winograd tile family the parts run on (default F(2×2,3×3)).

    Returns
    -------
    (N, K, H', W') output with H' = ⌊(H + 2·pad − R)/stride⌋ + 1.
    """
    y, _ = dwm_conv2d_with_plan(x, f, pad=pad, stride=stride, tile=tile)
    return y


def dwm_conv2d_with_plan(
    x: np.ndarray,
    f: np.ndarray,
    pad: int = 1,
    stride: int = 1,
    tile: TileSpec | str | None = None,
) -> tuple[np.ndarray, DWMPlan]:
    """:func:`dwm_conv2d` that also returns the :class:`DWMPlan` used."""
    if x.ndim != 4 or f.ndim != 4:
        raise LayoutError("x must be NCHW and f must be KCRS")
    n, c, h, w = x.shape
    k, cf, r, s = f.shape
    if cf != c:
        raise ConvConfigError(f"channel mismatch: input C={c}, filter C={cf}")
    if r != s:
        raise ConvConfigError("DWM path requires square filters")
    tile_spec = get_tile(tile)
    plan = dwm_plan(r, s, pad, stride)
    out_h = (h + 2 * pad - r) // stride + 1
    out_w = (w + 2 * pad - s) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ConvConfigError(
            f"filter {r}x{s} with pad={pad} stride={stride} does not fit "
            f"the {h}x{w} input"
        )

    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    conv = FusedWinogradConv(tile=tile_spec)
    y = np.zeros((n, k, out_h, out_w), dtype=np.float32)
    for part in plan.parts:
        g = _part_subfilter(f, plan, part)
        win = _part_input(xp, plan, part, out_h, out_w)
        # VALID conv: the window already carries the shifted padding, so
        # the part is a pad-0 3×3 problem for the fused pipeline.
        prob = ConvProblem(
            n=n, c=c, h=win.shape[2], w=win.shape[3], k=k, pad=0,
            name=f"dwm:{part.label()}",
        )
        f_t = conv.transform_filters(kcrs_to_crsk(g))
        y_khwn, _ = conv.run(nchw_to_chwn(win.astype(np.float32)), f_t, prob)
        y += khwn_to_nkhw(y_khwn)
    return y, plan
