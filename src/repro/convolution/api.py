"""Unified convolution entry point.

``conv2d(x, f, algo=...)`` mirrors cuDNN's forward-algorithm enum (the
column labels of the paper's Figures 12-14) plus this library's Winograd
pipelines.  All algorithms take NCHW activations and KCRS filters and
return NCHW output, converting to the kernel-native layouts internally,
so callers can swap algorithms without touching their data.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..common.errors import ConvConfigError
from ..common.layouts import kcrs_to_crsk, khwn_to_nkhw, nchw_to_chwn
from ..winograd.fused import FusedWinogradConv
from ..winograd.nonfused import NonFusedWinogradConv
from ..winograd.reference import winograd_conv2d_nchw
from .direct import direct_conv2d
from .fft import fft_conv2d, fft_tiling_conv2d
from .im2col import gemm_conv2d, implicit_gemm_conv2d

ALGORITHMS = (
    "DIRECT",
    "GEMM",
    "IMPLICIT_GEMM",
    "IMPLICIT_PRECOMP_GEMM",
    "FFT",
    "FFT_TILING",
    "WINOGRAD",            # this library's fused F(2×2, 3×3) kernel
    "WINOGRAD_NONFUSED",   # F(4×4, 3×3) with global workspace
    "WINOGRAD_REFERENCE",  # plain oracle implementation
)


def conv2d(
    x: np.ndarray, f: np.ndarray, pad: int = 1, algo: str = "WINOGRAD"
) -> np.ndarray:
    """Batched 2-D convolution with a selectable algorithm.

    Parameters
    ----------
    x: activations (N, C, H, W).
    f: filters (K, C, R, S).
    pad: symmetric zero padding (1 for the paper's layers).
    algo: one of :data:`ALGORITHMS`.
    """
    algo = algo.upper()
    if algo not in ALGORITHMS:
        raise ConvConfigError(f"unknown algorithm {algo!r}; choose from {ALGORITHMS}")
    if algo == "DIRECT":
        return direct_conv2d(x, f, pad)
    if algo == "GEMM":
        return gemm_conv2d(x, f, pad)[0]
    if algo == "IMPLICIT_GEMM":
        return implicit_gemm_conv2d(x, f, pad, precomputed_offsets=False)[0]
    if algo == "IMPLICIT_PRECOMP_GEMM":
        return implicit_gemm_conv2d(x, f, pad, precomputed_offsets=True)[0]
    if algo == "FFT":
        return fft_conv2d(x, f, pad)[0]
    if algo == "FFT_TILING":
        return fft_tiling_conv2d(x, f, pad)[0]
    if algo == "WINOGRAD_REFERENCE":
        return winograd_conv2d_nchw(x, f, m=2, pad=pad)

    if pad != 1 or f.shape[2:] != (3, 3):
        raise ConvConfigError(
            f"{algo} implements the paper's 3×3/pad-1 case; "
            "use WINOGRAD_REFERENCE or DIRECT for other shapes"
        )
    x_chwn = nchw_to_chwn(x)
    f_crsk = kcrs_to_crsk(f)
    if algo == "WINOGRAD":
        y_khwn = FusedWinogradConv()(x_chwn, f_crsk)
    else:  # WINOGRAD_NONFUSED
        y_khwn = NonFusedWinogradConv(m=4)(x_chwn, f_crsk)
    return khwn_to_nkhw(y_khwn)


def get_algorithm(algo: str) -> Callable[..., np.ndarray]:
    """Curried form of :func:`conv2d` for benchmarking loops."""
    def run(x: np.ndarray, f: np.ndarray, pad: int = 1) -> np.ndarray:
        return conv2d(x, f, pad=pad, algo=algo)

    run.__name__ = f"conv2d_{algo.lower()}"
    return run
