"""Unified convolution entry point.

``conv2d(x, f, algo=...)`` mirrors cuDNN's forward-algorithm enum (the
column labels of the paper's Figures 12-14) plus this library's Winograd
pipelines.  All algorithms take NCHW activations and KCRS filters and
return NCHW output, converting to the kernel-native layouts internally,
so callers can swap algorithms without touching their data.

Two *meta*-algorithms dispatch automatically (see
``repro.convolution.autotune``): ``AUTO`` runs timed trials of the
eligible candidates and memoizes the winner in a plan cache, and
``AUTO_HEURISTIC`` picks from the calibrated ``repro.perfmodel`` time
models without touching the data — cuDNN's ``Find`` vs ``Get``
selectors, respectively.  Both honour ``workspace_limit_bytes``
(Fig. 14's workspace-limited selection) and fall back algorithm by
algorithm, ultimately to ``DIRECT``, if a candidate cannot run.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..common.errors import ConvConfigError
from ..common.layouts import kcrs_to_crsk, khwn_to_nkhw, nchw_to_chwn
from ..winograd.fused import FusedWinogradConv
from ..winograd.nonfused import NonFusedWinogradConv
from ..winograd.reference import winograd_conv2d_nchw
from ..winograd.tilespec import TILE_F44
from .direct import direct_conv2d
from .dwm import dwm_conv2d_with_plan
from .fft import fft_conv2d, fft_tiling_conv2d
from .im2col import gemm_conv2d, implicit_gemm_conv2d

ALGORITHMS = (
    "DIRECT",
    "GEMM",
    "IMPLICIT_GEMM",
    "IMPLICIT_PRECOMP_GEMM",
    "FFT",
    "FFT_TILING",
    "WINOGRAD",            # this library's fused F(2×2, 3×3) kernel (4×4 tiles)
    "WINOGRAD_F44",        # fused F(4×4, 3×3) kernel (6×6 transformed tiles)
    "WINOGRAD_DWM",        # decomposed: large/strided filters via F(m, 3) parts
    "WINOGRAD_NONFUSED",   # non-fused F(4×4, 3×3) with global workspace
    "WINOGRAD_REFERENCE",  # plain oracle implementation (any F(m×m, r×r))
)

# Automatic selection modes layered on top of the concrete ALGORITHMS.
META_ALGORITHMS = (
    "AUTO",            # measured: timed trials, plan-cached winner
    "AUTO_HEURISTIC",  # model-ranked: no trials, perfmodel prediction
)


def _validate_conv_inputs(
    x: np.ndarray, f: np.ndarray, pad: int, stride: int = 1
) -> None:
    """Reject malformed problems up front, at the call site.

    Without this, a channel mismatch or a 3-D activation surfaces as a
    NumPy broadcast error deep inside whichever algorithm ran — far from
    the caller's mistake and different per algorithm.
    """
    x_shape = getattr(x, "shape", None)
    f_shape = getattr(f, "shape", None)
    if not isinstance(x, np.ndarray) or x.ndim != 4:
        raise ConvConfigError(
            f"x must be a 4-D NCHW ndarray, got shape {x_shape!r}"
        )
    if not isinstance(f, np.ndarray) or f.ndim != 4:
        raise ConvConfigError(
            f"f must be a 4-D KCRS ndarray, got shape {f_shape!r}"
        )
    if x.shape[1] != f.shape[1]:
        raise ConvConfigError(
            f"channel mismatch: x (N,C,H,W)={x.shape} has C={x.shape[1]} "
            f"but f (K,C,R,S)={f.shape} has C={f.shape[1]}"
        )
    if isinstance(pad, bool) or not isinstance(pad, (int, np.integer)):
        raise ConvConfigError(f"pad must be a non-negative int, got {pad!r}")
    if pad < 0:
        raise ConvConfigError(f"pad must be >= 0, got {pad}")
    if isinstance(stride, bool) or not isinstance(stride, (int, np.integer)):
        raise ConvConfigError(f"stride must be 1 or 2, got {stride!r}")
    if stride not in (1, 2):
        raise ConvConfigError(f"stride must be 1 or 2, got {stride}")
    n, c, h, w = x.shape
    k, _, r, s = f.shape
    if min(n, c, h, w, k, r, s) < 1:
        raise ConvConfigError(
            f"empty tensor dimension: x={x.shape}, f={f.shape}"
        )
    if (h + 2 * pad - r) // stride + 1 < 1 or (w + 2 * pad - s) // stride + 1 < 1:
        raise ConvConfigError(
            f"filter {r}x{s} with pad={pad} stride={stride} does not fit "
            f"the {h}x{w} input (output would be empty)"
        )


def _run_concrete(
    algo: str, x: np.ndarray, f: np.ndarray, pad: int, stride: int = 1
) -> np.ndarray:
    """Execute one concrete algorithm (no AUTO handling, no validation)."""
    if stride != 1 and algo not in ("DIRECT", "WINOGRAD_DWM"):
        raise ConvConfigError(
            f"{algo} implements stride-1 convolution; use WINOGRAD_DWM "
            "(polyphase decomposition) or DIRECT for stride 2"
        )
    if algo == "DIRECT":
        return direct_conv2d(x, f, pad, stride)
    if algo == "WINOGRAD_DWM":
        from ..runtime import current_context

        ctx = current_context()
        with ctx.span("dwm", f"{f.shape[2]}x{f.shape[3]}/s{stride}") as span:
            y, plan = dwm_conv2d_with_plan(x, f, pad=pad, stride=stride)
            span["plan"] = plan.label()
            span["parts"] = plan.num_parts
        return y
    if algo == "GEMM":
        return gemm_conv2d(x, f, pad)[0]
    if algo == "IMPLICIT_GEMM":
        return implicit_gemm_conv2d(x, f, pad, precomputed_offsets=False)[0]
    if algo == "IMPLICIT_PRECOMP_GEMM":
        return implicit_gemm_conv2d(x, f, pad, precomputed_offsets=True)[0]
    if algo == "FFT":
        return fft_conv2d(x, f, pad)[0]
    if algo == "FFT_TILING":
        return fft_tiling_conv2d(x, f, pad)[0]
    if algo == "WINOGRAD_REFERENCE":
        return winograd_conv2d_nchw(x, f, m=2, pad=pad)

    if pad != 1 or f.shape[2:] != (3, 3):
        raise ConvConfigError(
            f"{algo} implements the paper's 3×3/pad-1 case; use WINOGRAD_DWM "
            "to decompose larger (or strided) filters, or "
            "WINOGRAD_REFERENCE/DIRECT"
        )
    x_chwn = nchw_to_chwn(x)
    f_crsk = kcrs_to_crsk(f)
    if algo == "WINOGRAD":
        y_khwn = FusedWinogradConv()(x_chwn, f_crsk)
    elif algo == "WINOGRAD_F44":
        y_khwn = FusedWinogradConv(tile=TILE_F44)(x_chwn, f_crsk)
    else:  # WINOGRAD_NONFUSED
        y_khwn = NonFusedWinogradConv(m=4)(x_chwn, f_crsk)
    return khwn_to_nkhw(y_khwn)


def conv2d(
    x: np.ndarray,
    f: np.ndarray,
    pad: int = 1,
    algo: str = "WINOGRAD",
    *,
    stride: int = 1,
    workspace_limit_bytes: int | None = None,
    device=None,
    context=None,
    tune_schedule: bool | None = None,
) -> np.ndarray:
    """Batched 2-D convolution with a selectable (or automatic) algorithm.

    Parameters
    ----------
    x: activations (N, C, H, W).
    f: filters (K, C, R, S).
    pad: symmetric zero padding (1 for the paper's layers).
    algo: one of :data:`ALGORITHMS`, or a :data:`META_ALGORITHMS` mode
        (``"AUTO"`` / ``"AUTO_HEURISTIC"``) that selects among them.
    stride: 1 (the paper's layers) or 2; stride 2 runs only through
        ``WINOGRAD_DWM`` (polyphase decomposition into stride-1 parts),
        ``DIRECT``, or the AUTO modes which route between those.
    workspace_limit_bytes: AUTO modes only — exclude candidates whose
        global workspace (``perfmodel.dispatch_workspace_bytes``)
        exceeds this budget; ``None`` means unlimited.
    device: AUTO modes only — the :class:`repro.gpusim.arch.DeviceSpec`
        the heuristic time models rank for (default: the context's
        device, V100 unless configured otherwise).
    context: the :class:`repro.runtime.ExecutionContext` supplying the
        plan cache, dispatch stats and trace hooks (default: the current
        context — the process-wide default unless one is activated).
    tune_schedule: AUTO modes only — run the ``repro.sched``
        schedule-space search for a WINOGRAD winner and store the chosen
        :class:`~repro.sched.Schedule` on the cached plan.  ``None``
        (default) defers to the context's ``schedule_search`` config.
    """
    if not isinstance(algo, str):
        raise ConvConfigError(f"algo must be a string, got {algo!r}")
    algo = algo.upper()
    if algo not in ALGORITHMS + META_ALGORITHMS:
        raise ConvConfigError(
            f"unknown algorithm {algo!r}; choose from "
            f"{ALGORITHMS + META_ALGORITHMS}"
        )
    _validate_conv_inputs(x, f, pad, stride)
    if algo in META_ALGORITHMS:
        from .autotune import autotune_conv2d

        return autotune_conv2d(
            x, f, pad, mode=algo, stride=stride,
            workspace_limit_bytes=workspace_limit_bytes, device=device,
            context=context, tune_schedule=tune_schedule,
        )
    if (workspace_limit_bytes is not None or device is not None
            or tune_schedule is not None):
        raise ConvConfigError(
            "workspace_limit_bytes/device/tune_schedule only apply to the "
            f"AUTO modes; algo={algo!r} was requested explicitly"
        )
    if context is not None:
        from ..runtime import activate

        with activate(context):
            return _run_concrete(algo, x, f, pad, stride)
    return _run_concrete(algo, x, f, pad, stride)


def get_algorithm(algo: str) -> Callable[..., np.ndarray]:
    """Curried form of :func:`conv2d` for benchmarking loops.

    The returned callable carries ``__name__``/``__qualname__``/
    ``__doc__`` (so ``pytest-benchmark`` labels and ``help()`` work) and
    exposes the bound algorithm as ``.algo``.
    """
    if not isinstance(algo, str):
        raise ConvConfigError(f"algo must be a string, got {algo!r}")
    algo_u = algo.upper()
    if algo_u not in ALGORITHMS + META_ALGORITHMS:
        raise ConvConfigError(
            f"unknown algorithm {algo!r}; choose from "
            f"{ALGORITHMS + META_ALGORITHMS}"
        )

    def run(x: np.ndarray, f: np.ndarray, pad: int = 1, **kwargs) -> np.ndarray:
        return conv2d(x, f, pad=pad, algo=algo_u, **kwargs)

    run.__name__ = f"conv2d_{algo_u.lower()}"
    run.__qualname__ = run.__name__
    run.__doc__ = (
        f"conv2d specialised to algo={algo_u!r}.\n\n{conv2d.__doc__}"
    )
    run.__wrapped__ = conv2d
    run.algo = algo_u
    return run
