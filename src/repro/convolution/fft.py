"""FFT-based convolution (cuDNN ``FFT`` and ``FFT_TILING``).

Convolution in the spatial domain is element-wise multiplication in the
frequency domain.  cuDNN's ``FFT`` transforms the whole (padded) image;
``FFT_TILING`` decomposes the image into overlapping tiles transformed
at a fixed FFT size, trading workspace for cache behaviour.  Both pay a
large complex-valued workspace (Fig. 14's FFT columns are tens to
hundreds of MB) which is why Winograd wins at 3×3.

Correlation vs convolution: CNN "convolution" is correlation, so the
filter is conjugated in the frequency domain (equivalently flipped).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.errors import ConvConfigError, LayoutError


@dataclasses.dataclass
class FftRunStats:
    workspace_bytes: int = 0
    fft_size: tuple[int, int] = (0, 0)
    tiles: int = 1


def _check(x: np.ndarray, f: np.ndarray) -> None:
    if x.ndim != 4 or f.ndim != 4:
        raise LayoutError("x must be NCHW and f must be KCRS")
    if x.shape[1] != f.shape[1]:
        raise ConvConfigError("channel mismatch between input and filters")


def fft_conv2d(
    x: np.ndarray, f: np.ndarray, pad: int = 1
) -> tuple[np.ndarray, FftRunStats]:
    """Whole-image FFT convolution (cuDNN ``FFT``)."""
    _check(x, f)
    n, c, h, w = x.shape
    k, _, r, s = f.shape
    out_h = h + 2 * pad - r + 1
    out_w = w + 2 * pad - s + 1
    fh, fw = h + 2 * pad, w + 2 * pad

    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    xf = np.fft.rfft2(xp, s=(fh, fw))  # (N, C, fh, fw/2+1)
    ff = np.conj(np.fft.rfft2(f, s=(fh, fw)))  # (K, C, ...) conj → correlation
    yf = np.einsum("nchw,kchw->nkhw", xf, ff, optimize=True)
    y = np.fft.irfft2(yf, s=(fh, fw))[:, :, :out_h, :out_w]

    # Workspace: frequency-domain copies of input, filters and output.
    ws = xf.nbytes + ff.nbytes + yf.nbytes
    return (
        np.ascontiguousarray(y.astype(x.dtype, copy=False)),
        FftRunStats(workspace_bytes=ws, fft_size=(fh, fw)),
    )


def fft_tiling_conv2d(
    x: np.ndarray, f: np.ndarray, pad: int = 1, tile: int = 32
) -> tuple[np.ndarray, FftRunStats]:
    """Tiled FFT convolution (cuDNN ``FFT_TILING``), overlap-save.

    The image is cut into ``tile×tile`` output tiles; each transforms a
    ``(tile+r-1)`` square.  Workspace scales with the tile count times
    the fixed FFT size instead of the image size.
    """
    _check(x, f)
    n, c, h, w = x.shape
    k, _, r, s = f.shape
    out_h = h + 2 * pad - r + 1
    out_w = w + 2 * pad - s + 1
    ext = tile + r - 1  # input extent feeding one output tile
    fh = fw = int(2 ** np.ceil(np.log2(ext)))

    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    ff = np.conj(np.fft.rfft2(f, s=(fh, fw)))
    y = np.zeros((n, k, out_h, out_w), dtype=x.dtype)
    tiles = 0
    ws_tile = 0
    for t0 in range(0, out_h, tile):
        for t1 in range(0, out_w, tile):
            th = min(tile, out_h - t0)
            tw = min(tile, out_w - t1)
            patch = xp[:, :, t0 : t0 + th + r - 1, t1 : t1 + tw + s - 1]
            xf = np.fft.rfft2(patch, s=(fh, fw))
            yf = np.einsum("nchw,kchw->nkhw", xf, ff, optimize=True)
            yt = np.fft.irfft2(yf, s=(fh, fw))[:, :, :th, :tw]
            y[:, :, t0 : t0 + th, t1 : t1 + tw] = yt
            tiles += 1
            ws_tile = max(ws_tile, xf.nbytes + yf.nbytes)
    return (
        np.ascontiguousarray(y),
        FftRunStats(workspace_bytes=ws_tile + ff.nbytes, fft_size=(fh, fw), tiles=tiles),
    )
