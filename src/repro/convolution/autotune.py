"""Autotuning dispatch for ``conv2d``: AUTO and AUTO_HEURISTIC.

The paper's evaluation (Figs. 12-14, Table 7) is a study in *algorithm
selection*: which of cuDNN's convolution algorithms wins per layer,
under what workspace budget, and where the fused kernel's break-even
points lie.  This module turns that study into a runtime component,
mirroring cuDNN's own two selectors:

* ``AUTO_HEURISTIC`` — ``cudnnGetConvolutionForwardAlgorithm``: rank the
  candidates with the calibrated ``repro.perfmodel`` time models,
  filtered by the caller's ``workspace_limit_bytes`` budget (Fig. 14's
  workspace-limited selection), and run the predicted winner.  No data
  is touched during selection.
* ``AUTO`` — ``cudnnFindConvolutionForwardAlgorithm``: run timed trials
  of every surviving candidate on the actual tensors and keep the
  measured winner.

Either way the decision is memoized in a **plan cache** keyed by the
problem signature (N, C, H, W, K, R, S, pad, dtype, workspace limit,
device, mode), so repeated calls on the same shape execute the chosen
algorithm directly — a cache hit runs **zero** new trials.

The dispatcher is robust by construction: a candidate that raises (e.g.
the fused kernel on a non-3×3/pad≠1 shape that slipped past the
structural filter) is recorded as ineligible and selection falls through
to the next candidate; ``DIRECT`` — workspace-free and
shape-unrestricted — terminates every chain.  Every decision is
observable through :func:`repro.convolution.get_dispatch_stats`.
"""

from __future__ import annotations

import collections
import copy
import dataclasses
import threading
import time

import numpy as np

from ..common.errors import ConvConfigError, ReproError
from ..common.problem import ConvProblem

AUTO_MODES = ("AUTO", "AUTO_HEURISTIC")


@dataclasses.dataclass(frozen=True)
class PlanKey:
    """The problem signature that identifies one plan-cache entry."""

    n: int
    c: int
    h: int
    w: int
    k: int
    r: int
    s: int
    pad: int
    stride: int
    dtype: str
    workspace_limit: int | None
    device: str
    mode: str

    @classmethod
    def from_problem(
        cls,
        prob: ConvProblem,
        dtype: np.dtype,
        workspace_limit: int | None,
        device_name: str,
        mode: str,
    ) -> "PlanKey":
        return cls(
            n=prob.n, c=prob.c, h=prob.h, w=prob.w, k=prob.k,
            r=prob.r, s=prob.s, pad=prob.pad, stride=prob.stride,
            dtype=np.dtype(dtype).name,
            workspace_limit=workspace_limit,
            device=device_name,
            mode=mode,
        )


@dataclasses.dataclass
class ConvPlan:
    """A memoized selection decision for one problem signature.

    ``fallbacks`` is the remaining try-order *after* ``algo``: if the
    chosen algorithm ever raises on a later call, the plan heals itself
    by promoting the next entry instead of re-running selection.

    ``schedule`` is the SASS instruction schedule
    (:class:`repro.sched.Schedule`) chosen by the schedule-space search
    when dispatch ran with ``tune_schedule`` and the winning algorithm
    is the fused Winograd kernel; ``None`` otherwise.
    """

    key: PlanKey
    algo: str
    fallbacks: tuple[str, ...]
    source: str  # "measured" (AUTO) | "heuristic" (AUTO_HEURISTIC)
    trial_times: dict[str, float] = dataclasses.field(default_factory=dict)
    predicted_times: dict[str, float] = dataclasses.field(default_factory=dict)
    excluded: dict[str, str] = dataclasses.field(default_factory=dict)
    hits: int = 0
    schedule: object | None = None  # repro.sched.Schedule when tuned


class PlanCache:
    """The live plan cache: an LRU of :class:`ConvPlan` by :class:`PlanKey`.

    Lock-guarded (conv2d may be called from worker threads) and bounded,
    so a long-lived process serving arbitrary shapes cannot grow it
    without limit.  Plans are published whole — the self-heal path in
    :func:`_run_plan` replaces an entry with a fresh ``ConvPlan`` instead
    of mutating the cached one.  Each :class:`repro.runtime.ExecutionContext`
    owns one instance; ``on_evict`` lets the owner count evictions on its
    dispatch stats.
    """

    def __init__(self, max_entries: int = 256, on_evict=None):
        if max_entries < 1:
            raise ConvConfigError(
                f"plan cache limit must be >= 1, got {max_entries}"
            )
        self._lock = threading.RLock()
        self._entries: collections.OrderedDict[PlanKey, ConvPlan] = (
            collections.OrderedDict()
        )
        self._max_entries = max_entries
        self._on_evict = on_evict

    def lookup(self, key: PlanKey) -> ConvPlan | None:
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.move_to_end(key)
            return plan

    def store(self, key: PlanKey, plan: ConvPlan) -> None:
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            self._evict_over_limit()

    def snapshot(self) -> dict[PlanKey, ConvPlan]:
        """A deep-copied snapshot (keys → plans).

        Deep-copied so the returned plans never alias the live entries:
        the dispatcher may heal or evict concurrently, and callers may
        freely poke at the snapshot without corrupting future dispatches.
        """
        with self._lock:
            return copy.deepcopy(dict(self._entries))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def set_limit(self, max_entries: int) -> None:
        """Bound the cache (oldest entries evict first); min 1."""
        if max_entries < 1:
            raise ConvConfigError(
                f"plan cache limit must be >= 1, got {max_entries}"
            )
        with self._lock:
            self._max_entries = max_entries
            self._evict_over_limit()

    def _evict_over_limit(self) -> None:
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
            if self._on_evict is not None:
                self._on_evict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def _current_plans() -> PlanCache:
    from ..runtime import current_context

    return current_context().plans


def get_plan_cache() -> dict[PlanKey, ConvPlan]:
    """Deep-copied snapshot of the current context's plan cache."""
    return _current_plans().snapshot()


def clear_plan_cache() -> None:
    _current_plans().clear()


def set_plan_cache_limit(max_entries: int) -> None:
    """Bound the current context's plan cache (oldest evict first); min 1."""
    _current_plans().set_limit(max_entries)


def _execute(
    algo: str, x: np.ndarray, f: np.ndarray, pad: int, stride: int = 1
) -> np.ndarray:
    # Late import: api.py imports this module for the AUTO branch.
    from .api import _run_concrete

    return _run_concrete(algo, x, f, pad, stride)


def _select_candidates(prob, device, workspace_limit):
    # perfmodel pulls in the kernel generator and simulator packages;
    # importing it lazily keeps ``import repro.convolution`` light for
    # callers that never dispatch automatically.
    from ..perfmodel.selection import predicted_time, rank_algorithms

    ranked, excluded = rank_algorithms(prob, device, workspace_limit)
    predictions = {a: predicted_time(prob, device, a) for a in ranked}
    return ranked, excluded, predictions


#: Fused-SASS algorithms whose plans carry a tuned schedule, and the
#: kernel family each one's search targets.
TUNED_TILE_FOR_ALGO = {"WINOGRAD": "f22", "WINOGRAD_F44": "f44"}


def _tune_plan_schedule(plan: ConvPlan, device, ctx) -> None:
    """Attach the schedule-search winner to a fused-kernel plan (in place).

    The search runs over the winning algorithm's tile family (f22 for
    WINOGRAD, f44 for WINOGRAD_F44) and is memoized on the context's
    :class:`repro.sched.ScheduleBook`, so only the first plan per
    (device, tile, space, budget) pays for it — everything after is a
    lookup.  Runs strictly behind the plan cache: cached plans that
    already carry a schedule never re-enter here.
    """
    from ..sched import ScheduleSearchConfig, ensure_schedule

    config = ctx.schedule_search or ScheduleSearchConfig()
    config = config.with_tile(TUNED_TILE_FOR_ALGO[plan.algo])
    result = ensure_schedule(device=device, config=config, context=ctx)
    plan.schedule = result.best.schedule


def autotune_conv2d(
    x: np.ndarray,
    f: np.ndarray,
    pad: int,
    mode: str,
    stride: int = 1,
    workspace_limit_bytes: int | None = None,
    device=None,
    context=None,
    tune_schedule: bool | None = None,
) -> np.ndarray:
    """Dispatch one convolution through the AUTO/AUTO_HEURISTIC pipeline.

    Called by :func:`repro.convolution.conv2d` after input validation;
    not intended as a public entry point (use ``conv2d(algo="AUTO")``).
    All mutable state (plan cache, dispatch stats) lives on *context*
    (default: the current :class:`repro.runtime.ExecutionContext`).

    ``tune_schedule`` opts the WINOGRAD winner into the SASS
    schedule-space search (``repro.sched``); ``None`` defers to whether
    the context carries a ``schedule_search`` config.
    """
    from ..runtime import activate, current_context

    if mode not in AUTO_MODES:
        raise ConvConfigError(f"unknown auto mode {mode!r}; choose from {AUTO_MODES}")
    if workspace_limit_bytes is not None and workspace_limit_bytes < 0:
        raise ConvConfigError(
            f"workspace_limit_bytes must be >= 0 or None, got {workspace_limit_bytes}"
        )
    ctx = context if context is not None else current_context()
    with activate(ctx):
        if device is None:
            device = ctx.device
        else:
            from ..gpusim.arch import resolve_device

            device = resolve_device(device)
        if tune_schedule is None:
            tune_schedule = ctx.schedule_search is not None
        stats = ctx.dispatch_stats
        stats.record_call(mode)

        n, c, h, w = x.shape
        k, _, r, s = f.shape
        prob = ConvProblem(n=n, c=c, h=h, w=w, k=k, r=r, s=s, pad=pad, stride=stride)
        key = PlanKey.from_problem(
            prob, np.result_type(x, f), workspace_limit_bytes, device.name, mode
        )

        plan = ctx.plans.lookup(key)
        if plan is not None:
            stats.cache_hits += 1
            plan.hits += 1
            if (
                tune_schedule
                and plan.schedule is None
                and plan.algo in TUNED_TILE_FOR_ALGO
            ):
                # A plan cached before tuning was enabled: attach the
                # (memoized) winner so later snapshots see it too.
                _tune_plan_schedule(plan, device, ctx)
            return _run_plan(plan, x, f, pad, stride, stats, ctx.plans)

        stats.cache_misses += 1
        with ctx.span("plan", prob.label(), mode=mode, device=device.name) as span:
            ranked, excluded, predictions = _select_candidates(
                prob, device, workspace_limit_bytes
            )
            for algo in excluded:
                stats.record_exclusion(algo)
            if not ranked:  # cannot happen while DIRECT is a candidate; be loud
                raise ConvConfigError(
                    f"no convolution algorithm eligible for {prob} "
                    f"under workspace limit {workspace_limit_bytes}; "
                    f"excluded: {excluded}"
                )

            if mode == "AUTO":
                plan, y = _measure_plan(
                    key, ranked, excluded, predictions, x, f, pad, stride, stats
                )
            else:
                plan, y = _heuristic_plan(
                    key, ranked, excluded, predictions, x, f, pad, stride, stats
                )
            span["algo"] = plan.algo
            if tune_schedule and plan.algo in TUNED_TILE_FOR_ALGO:
                _tune_plan_schedule(plan, device, ctx)
                span["schedule"] = plan.schedule.label()
                span["tile"] = TUNED_TILE_FOR_ALGO[plan.algo]
        ctx.plans.store(key, plan)
        stats.record_choice(plan.algo)
        return y


def _measure_plan(key, ranked, excluded, predictions, x, f, pad, stride, stats):
    """AUTO: timed trials of every surviving candidate; keep the winner."""
    trial_times: dict[str, float] = {}
    best_algo = None
    best_y = None
    for algo in ranked:
        t0 = time.perf_counter()
        try:
            y = _execute(algo, x, f, pad, stride)
        except ReproError as exc:
            excluded[algo] = f"raised during trial: {exc}"
            stats.record_error(algo)
            stats.fallbacks += 1
            continue
        elapsed = time.perf_counter() - t0
        trial_times[algo] = elapsed
        stats.record_trial(algo, elapsed)
        if best_algo is None or elapsed < trial_times[best_algo]:
            best_algo, best_y = algo, y
    if best_algo is None:
        raise ConvConfigError(
            f"every candidate algorithm failed for signature {key}; "
            f"reasons: {excluded}"
        )
    order = sorted(trial_times, key=trial_times.__getitem__)
    plan = ConvPlan(
        key=key,
        algo=best_algo,
        fallbacks=tuple(a for a in order if a != best_algo),
        source="measured",
        trial_times=trial_times,
        predicted_times=predictions,
        excluded=excluded,
    )
    return plan, best_y


def _heuristic_plan(key, ranked, excluded, predictions, x, f, pad, stride, stats):
    """AUTO_HEURISTIC: run the model's pick, falling through on failure."""
    for i, algo in enumerate(ranked):
        try:
            y = _execute(algo, x, f, pad, stride)
        except ReproError as exc:
            excluded[algo] = f"raised during dispatch: {exc}"
            stats.record_error(algo)
            stats.fallbacks += 1
            continue
        plan = ConvPlan(
            key=key,
            algo=algo,
            fallbacks=tuple(ranked[i + 1:]),
            source="heuristic",
            predicted_times=predictions,
            excluded=excluded,
        )
        return plan, y
    raise ConvConfigError(
        f"every candidate algorithm failed for signature {key}; "
        f"reasons: {excluded}"
    )


def _run_plan(
    plan: ConvPlan, x, f, pad, stride, stats, plans: PlanCache
) -> np.ndarray:
    """Execute a cached plan, self-healing if its chosen algorithm raises.

    Healing never mutates the cached ``ConvPlan``: new exclusions are
    collected locally and a *replacement* plan is published to the cache
    once the promoted algorithm is known, so snapshots taken earlier (or
    concurrently, from other threads) stay internally consistent.
    """
    algo, fallbacks = plan.algo, plan.fallbacks
    new_exclusions: dict[str, str] = {}
    while True:
        try:
            y = _execute(algo, x, f, pad, stride)
        except ReproError as exc:
            stats.record_error(algo)
            stats.fallbacks += 1
            new_exclusions[algo] = f"raised on cached dispatch: {exc}"
            if not fallbacks:
                _publish_healed(plan, algo, fallbacks, new_exclusions, plans)
                raise ConvConfigError(
                    f"cached plan for {plan.key} exhausted every fallback; "
                    f"reasons: {dict(plan.excluded, **new_exclusions)}"
                ) from exc
            algo, fallbacks = fallbacks[0], fallbacks[1:]
            stats.record_choice(algo)
            continue
        if algo != plan.algo:
            _publish_healed(plan, algo, fallbacks, new_exclusions, plans)
        return y


def _publish_healed(
    plan: ConvPlan, algo: str, fallbacks: tuple[str, ...],
    new_exclusions: dict[str, str], plans: PlanCache,
) -> None:
    """Replace the cached entry with a healed copy of *plan*."""
    healed = ConvPlan(
        key=plan.key,
        algo=algo,
        fallbacks=fallbacks,
        source=plan.source,
        trial_times=dict(plan.trial_times),
        predicted_times=dict(plan.predicted_times),
        excluded=dict(plan.excluded, **new_exclusions),
        hits=plan.hits,
        # The schedule was tuned for the demoted algorithm's tile family;
        # a heal never carries it onto the promoted algorithm (a cache
        # hit with tuning enabled re-attaches the right family's winner).
        schedule=None,
    )
    plans.store(plan.key, healed)
