"""Autotuning dispatch for ``conv2d``: AUTO and AUTO_HEURISTIC.

The paper's evaluation (Figs. 12-14, Table 7) is a study in *algorithm
selection*: which of cuDNN's convolution algorithms wins per layer,
under what workspace budget, and where the fused kernel's break-even
points lie.  This module turns that study into a runtime component,
mirroring cuDNN's own two selectors:

* ``AUTO_HEURISTIC`` — ``cudnnGetConvolutionForwardAlgorithm``: rank the
  candidates with the calibrated ``repro.perfmodel`` time models,
  filtered by the caller's ``workspace_limit_bytes`` budget (Fig. 14's
  workspace-limited selection), and run the predicted winner.  No data
  is touched during selection.
* ``AUTO`` — ``cudnnFindConvolutionForwardAlgorithm``: run timed trials
  of every surviving candidate on the actual tensors and keep the
  measured winner.

Either way the decision is memoized in a **plan cache** keyed by the
problem signature (N, C, H, W, K, R, S, pad, dtype, workspace limit,
device, mode), so repeated calls on the same shape execute the chosen
algorithm directly — a cache hit runs **zero** new trials.

The dispatcher is robust by construction: a candidate that raises (e.g.
the fused kernel on a non-3×3/pad≠1 shape that slipped past the
structural filter) is recorded as ineligible and selection falls through
to the next candidate; ``DIRECT`` — workspace-free and
shape-unrestricted — terminates every chain.  Every decision is
observable through :func:`repro.convolution.get_dispatch_stats`.
"""

from __future__ import annotations

import collections
import copy
import dataclasses
import threading
import time

import numpy as np

from ..common.errors import ConvConfigError, ReproError
from ..common.problem import ConvProblem
from .metrics import live_dispatch_stats

AUTO_MODES = ("AUTO", "AUTO_HEURISTIC")


@dataclasses.dataclass(frozen=True)
class PlanKey:
    """The problem signature that identifies one plan-cache entry."""

    n: int
    c: int
    h: int
    w: int
    k: int
    r: int
    s: int
    pad: int
    dtype: str
    workspace_limit: int | None
    device: str
    mode: str

    @classmethod
    def from_problem(
        cls,
        prob: ConvProblem,
        dtype: np.dtype,
        workspace_limit: int | None,
        device_name: str,
        mode: str,
    ) -> "PlanKey":
        return cls(
            n=prob.n, c=prob.c, h=prob.h, w=prob.w, k=prob.k,
            r=prob.r, s=prob.s, pad=prob.pad,
            dtype=np.dtype(dtype).name,
            workspace_limit=workspace_limit,
            device=device_name,
            mode=mode,
        )


@dataclasses.dataclass
class ConvPlan:
    """A memoized selection decision for one problem signature.

    ``fallbacks`` is the remaining try-order *after* ``algo``: if the
    chosen algorithm ever raises on a later call, the plan heals itself
    by promoting the next entry instead of re-running selection.
    """

    key: PlanKey
    algo: str
    fallbacks: tuple[str, ...]
    source: str  # "measured" (AUTO) | "heuristic" (AUTO_HEURISTIC)
    trial_times: dict[str, float] = dataclasses.field(default_factory=dict)
    predicted_times: dict[str, float] = dataclasses.field(default_factory=dict)
    excluded: dict[str, str] = dataclasses.field(default_factory=dict)
    hits: int = 0


# The live plan cache: LRU-ordered, guarded by a lock (conv2d may be
# called from worker threads), bounded so a long-lived process serving
# arbitrary shapes cannot grow it without limit.  Plans are published
# whole — the self-heal path in :func:`_run_plan` replaces an entry
# with a fresh ``ConvPlan`` instead of mutating the cached one.
_PLAN_CACHE: collections.OrderedDict[PlanKey, ConvPlan] = collections.OrderedDict()
_PLAN_LOCK = threading.RLock()
_PLAN_CACHE_MAX = 256


def get_plan_cache() -> dict[PlanKey, ConvPlan]:
    """A deep-copied snapshot of the plan cache (keys → plans).

    Deep-copied so the returned plans never alias the live entries: the
    dispatcher may heal or evict concurrently, and callers may freely
    poke at the snapshot without corrupting future dispatches.
    """
    with _PLAN_LOCK:
        return copy.deepcopy(dict(_PLAN_CACHE))


def clear_plan_cache() -> None:
    with _PLAN_LOCK:
        _PLAN_CACHE.clear()


def set_plan_cache_limit(max_entries: int) -> None:
    """Bound the plan cache (oldest entries evict first); min 1."""
    global _PLAN_CACHE_MAX
    if max_entries < 1:
        raise ConvConfigError(f"plan cache limit must be >= 1, got {max_entries}")
    with _PLAN_LOCK:
        _PLAN_CACHE_MAX = max_entries
        _evict_over_limit()


def _evict_over_limit() -> None:
    while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
        _PLAN_CACHE.popitem(last=False)
        live_dispatch_stats().plan_evictions += 1


def _cache_lookup(key: PlanKey) -> ConvPlan | None:
    with _PLAN_LOCK:
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            _PLAN_CACHE.move_to_end(key)
        return plan


def _cache_store(key: PlanKey, plan: ConvPlan) -> None:
    with _PLAN_LOCK:
        _PLAN_CACHE[key] = plan
        _PLAN_CACHE.move_to_end(key)
        _evict_over_limit()


def _default_device():
    from ..gpusim import V100

    return V100


def _execute(algo: str, x: np.ndarray, f: np.ndarray, pad: int) -> np.ndarray:
    # Late import: api.py imports this module for the AUTO branch.
    from .api import _run_concrete

    return _run_concrete(algo, x, f, pad)


def _select_candidates(prob, device, workspace_limit):
    # perfmodel pulls in the kernel generator and simulator packages;
    # importing it lazily keeps ``import repro.convolution`` light for
    # callers that never dispatch automatically.
    from ..perfmodel.selection import predicted_time, rank_algorithms

    ranked, excluded = rank_algorithms(prob, device, workspace_limit)
    predictions = {a: predicted_time(prob, device, a) for a in ranked}
    return ranked, excluded, predictions


def autotune_conv2d(
    x: np.ndarray,
    f: np.ndarray,
    pad: int,
    mode: str,
    workspace_limit_bytes: int | None = None,
    device=None,
) -> np.ndarray:
    """Dispatch one convolution through the AUTO/AUTO_HEURISTIC pipeline.

    Called by :func:`repro.convolution.conv2d` after input validation;
    not intended as a public entry point (use ``conv2d(algo="AUTO")``).
    """
    if mode not in AUTO_MODES:
        raise ConvConfigError(f"unknown auto mode {mode!r}; choose from {AUTO_MODES}")
    if workspace_limit_bytes is not None and workspace_limit_bytes < 0:
        raise ConvConfigError(
            f"workspace_limit_bytes must be >= 0 or None, got {workspace_limit_bytes}"
        )
    device = device or _default_device()
    stats = live_dispatch_stats()
    stats.record_call(mode)

    n, c, h, w = x.shape
    k, _, r, s = f.shape
    prob = ConvProblem(n=n, c=c, h=h, w=w, k=k, r=r, s=s, pad=pad)
    key = PlanKey.from_problem(
        prob, np.result_type(x, f), workspace_limit_bytes, device.name, mode
    )

    plan = _cache_lookup(key)
    if plan is not None:
        stats.cache_hits += 1
        plan.hits += 1
        return _run_plan(plan, x, f, pad, stats)

    stats.cache_misses += 1
    ranked, excluded, predictions = _select_candidates(
        prob, device, workspace_limit_bytes
    )
    for algo in excluded:
        stats.record_exclusion(algo)
    if not ranked:  # cannot happen while DIRECT is a candidate; be loud anyway
        raise ConvConfigError(
            f"no convolution algorithm eligible for {prob} "
            f"under workspace limit {workspace_limit_bytes}; excluded: {excluded}"
        )

    if mode == "AUTO":
        plan, y = _measure_plan(key, ranked, excluded, predictions, x, f, pad, stats)
    else:
        plan, y = _heuristic_plan(key, ranked, excluded, predictions, x, f, pad, stats)
    _cache_store(key, plan)
    stats.record_choice(plan.algo)
    return y


def _measure_plan(key, ranked, excluded, predictions, x, f, pad, stats):
    """AUTO: timed trials of every surviving candidate; keep the winner."""
    trial_times: dict[str, float] = {}
    best_algo = None
    best_y = None
    for algo in ranked:
        t0 = time.perf_counter()
        try:
            y = _execute(algo, x, f, pad)
        except ReproError as exc:
            excluded[algo] = f"raised during trial: {exc}"
            stats.record_error(algo)
            stats.fallbacks += 1
            continue
        elapsed = time.perf_counter() - t0
        trial_times[algo] = elapsed
        stats.record_trial(algo, elapsed)
        if best_algo is None or elapsed < trial_times[best_algo]:
            best_algo, best_y = algo, y
    if best_algo is None:
        raise ConvConfigError(
            f"every candidate algorithm failed for signature {key}; "
            f"reasons: {excluded}"
        )
    order = sorted(trial_times, key=trial_times.__getitem__)
    plan = ConvPlan(
        key=key,
        algo=best_algo,
        fallbacks=tuple(a for a in order if a != best_algo),
        source="measured",
        trial_times=trial_times,
        predicted_times=predictions,
        excluded=excluded,
    )
    return plan, best_y


def _heuristic_plan(key, ranked, excluded, predictions, x, f, pad, stats):
    """AUTO_HEURISTIC: run the model's pick, falling through on failure."""
    for i, algo in enumerate(ranked):
        try:
            y = _execute(algo, x, f, pad)
        except ReproError as exc:
            excluded[algo] = f"raised during dispatch: {exc}"
            stats.record_error(algo)
            stats.fallbacks += 1
            continue
        plan = ConvPlan(
            key=key,
            algo=algo,
            fallbacks=tuple(ranked[i + 1:]),
            source="heuristic",
            predicted_times=predictions,
            excluded=excluded,
        )
        return plan, y
    raise ConvConfigError(
        f"every candidate algorithm failed for signature {key}; "
        f"reasons: {excluded}"
    )


def _run_plan(plan: ConvPlan, x, f, pad, stats) -> np.ndarray:
    """Execute a cached plan, self-healing if its chosen algorithm raises.

    Healing never mutates the cached ``ConvPlan``: new exclusions are
    collected locally and a *replacement* plan is published to the cache
    once the promoted algorithm is known, so snapshots taken earlier (or
    concurrently, from other threads) stay internally consistent.
    """
    algo, fallbacks = plan.algo, plan.fallbacks
    new_exclusions: dict[str, str] = {}
    while True:
        try:
            y = _execute(algo, x, f, pad)
        except ReproError as exc:
            stats.record_error(algo)
            stats.fallbacks += 1
            new_exclusions[algo] = f"raised on cached dispatch: {exc}"
            if not fallbacks:
                _publish_healed(plan, algo, fallbacks, new_exclusions)
                raise ConvConfigError(
                    f"cached plan for {plan.key} exhausted every fallback; "
                    f"reasons: {dict(plan.excluded, **new_exclusions)}"
                ) from exc
            algo, fallbacks = fallbacks[0], fallbacks[1:]
            stats.record_choice(algo)
            continue
        if algo != plan.algo:
            _publish_healed(plan, algo, fallbacks, new_exclusions)
        return y


def _publish_healed(
    plan: ConvPlan, algo: str, fallbacks: tuple[str, ...],
    new_exclusions: dict[str, str],
) -> None:
    """Replace the cached entry with a healed copy of *plan*."""
    healed = ConvPlan(
        key=plan.key,
        algo=algo,
        fallbacks=fallbacks,
        source=plan.source,
        trial_times=dict(plan.trial_times),
        predicted_times=dict(plan.predicted_times),
        excluded=dict(plan.excluded, **new_exclusions),
        hits=plan.hits,
    )
    _cache_store(plan.key, healed)
