"""GEMM-based convolution: explicit im2col and implicit-GEMM variants.

cuDNN's three GEMM algorithms differ in how the (C·R·S, N·H'·W') matrix
comes to exist:

* ``GEMM``            — explicit im2col: materialize the matrix in a
                        global workspace, then one big GEMM;
* ``IMPLICIT_GEMM``   — form matrix sub-tiles on the fly inside the
                        kernel, zero workspace, recomputing filter
                        offsets per tile;
* ``IMPLICIT_PRECOMP_GEMM`` — like implicit GEMM but with precomputed
                        offset indices (a tiny workspace), the fastest of
                        the three and the baseline the paper compares
                        Winograd against (Table 2).

Functionally all three compute Eq. 4; here they share the result path
but differ in the workspace accounting they report, so Figure 14's
workspace columns come from real allocation formulas.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.errors import ConvConfigError, LayoutError
from ..common.problem import ConvProblem


@dataclasses.dataclass
class GemmRunStats:
    workspace_bytes: int = 0
    gemm_m: int = 0
    gemm_n: int = 0
    gemm_k: int = 0

    @property
    def gemm_flops(self) -> int:
        return 2 * self.gemm_m * self.gemm_n * self.gemm_k


def im2col(x: np.ndarray, r: int, s: int, pad: int = 1) -> np.ndarray:
    """Lower NCHW activations to the (N·H'·W', C·R·S) patch matrix."""
    if x.ndim != 4:
        raise LayoutError(f"expected NCHW input, got {x.shape}")
    n, c, h, w = x.shape
    out_h = h + 2 * pad - r + 1
    out_w = w + 2 * pad - s + 1
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    win = np.lib.stride_tricks.sliding_window_view(xp, (r, s), axis=(2, 3))
    # (N, C, H', W', r, s) → (N, H', W', C, r, s) → (N·H'·W', C·r·s)
    cols = win.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * r * s)
    return np.ascontiguousarray(cols)


def gemm_conv2d(
    x: np.ndarray, f: np.ndarray, pad: int = 1, prob: ConvProblem | None = None
) -> tuple[np.ndarray, GemmRunStats]:
    """Explicit im2col + GEMM (cuDNN ``GEMM`` algorithm)."""
    if f.ndim != 4:
        raise LayoutError(f"expected KCRS filters, got {f.shape}")
    n, c, h, w = x.shape
    k, cf, r, s = f.shape
    if cf != c:
        raise ConvConfigError(f"channel mismatch C={c} vs {cf}")
    out_h = h + 2 * pad - r + 1
    out_w = w + 2 * pad - s + 1
    cols = im2col(x, r, s, pad)  # (N·H'·W', C·r·s)
    fmat = f.reshape(k, c * r * s)
    y = cols @ fmat.T  # (N·H'·W', K)
    y = y.reshape(n, out_h, out_w, k).transpose(0, 3, 1, 2)
    stats = GemmRunStats(
        workspace_bytes=cols.nbytes,
        gemm_m=n * out_h * out_w,
        gemm_n=k,
        gemm_k=c * r * s,
    )
    return np.ascontiguousarray(y), stats


def implicit_gemm_conv2d(
    x: np.ndarray,
    f: np.ndarray,
    pad: int = 1,
    precomputed_offsets: bool = True,
    tile_m: int = 128,
) -> tuple[np.ndarray, GemmRunStats]:
    """Implicit GEMM: patch tiles are formed on the fly, never stored.

    ``precomputed_offsets=True`` models IMPLICIT_PRECOMP_GEMM (offsets
    built once into a small index workspace); ``False`` models
    IMPLICIT_GEMM (zero workspace, offsets recomputed per tile).
    """
    n, c, h, w = x.shape
    k, cf, r, s = f.shape
    if cf != c:
        raise ConvConfigError(f"channel mismatch C={c} vs {cf}")
    out_h = h + 2 * pad - r + 1
    out_w = w + 2 * pad - s + 1
    rows_total = n * out_h * out_w
    fmat = f.reshape(k, c * r * s).T  # (C·r·s, K)

    # Precompute (or, conceptually, recompute per tile) gather indices of
    # one output pixel's patch relative to the padded image.
    offs_h = np.repeat(np.arange(r), s)
    offs_w = np.tile(np.arange(s), r)
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))

    y = np.empty((rows_total, k), dtype=np.result_type(x, f))
    row_ids = np.arange(rows_total)
    pix = row_ids % (out_h * out_w)
    img = row_ids // (out_h * out_w)
    ph = pix // out_w
    pw = pix % out_w
    for m0 in range(0, rows_total, tile_m):
        sel = slice(m0, min(m0 + tile_m, rows_total))
        # Gather the (tile, C·r·s) patch tile directly from gmem.
        hh = ph[sel][:, None] + offs_h[None, :]  # (tile, r·s)
        ww = pw[sel][:, None] + offs_w[None, :]
        patch = xp[img[sel][:, None, None], np.arange(c)[None, :, None], hh[:, None, :], ww[:, None, :]]
        y[sel] = patch.reshape(sel.stop - sel.start, c * r * s) @ fmat

    y = y.reshape(n, out_h, out_w, k).transpose(0, 3, 1, 2)
    workspace = 4 * c * r * s if precomputed_offsets else 0
    stats = GemmRunStats(
        workspace_bytes=workspace,
        gemm_m=rows_total,
        gemm_n=k,
        gemm_k=c * r * s,
    )
    return np.ascontiguousarray(y), stats
