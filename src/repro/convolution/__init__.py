"""Convolution algorithms: direct, GEMM-based, FFT-based, and the dispatcher."""

from .api import ALGORITHMS, conv2d, get_algorithm
from .direct import direct_conv2d, direct_conv2d_naive
from .fft import FftRunStats, fft_conv2d, fft_tiling_conv2d
from .im2col import GemmRunStats, gemm_conv2d, im2col, implicit_gemm_conv2d

__all__ = [
    "ALGORITHMS",
    "FftRunStats",
    "GemmRunStats",
    "conv2d",
    "direct_conv2d",
    "direct_conv2d_naive",
    "fft_conv2d",
    "fft_tiling_conv2d",
    "gemm_conv2d",
    "get_algorithm",
    "im2col",
    "implicit_gemm_conv2d",
]
