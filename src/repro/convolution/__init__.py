"""Convolution algorithms: direct, GEMM-based, FFT-based, and the dispatcher."""

from .api import ALGORITHMS, META_ALGORITHMS, conv2d, get_algorithm
from .autotune import (
    AUTO_MODES,
    ConvPlan,
    PlanKey,
    autotune_conv2d,
    clear_plan_cache,
    get_plan_cache,
    set_plan_cache_limit,
)
from .direct import direct_conv2d, direct_conv2d_naive
from .dwm import DWMPart, DWMPlan, dwm_conv2d, dwm_conv2d_with_plan, dwm_plan
from .fft import FftRunStats, fft_conv2d, fft_tiling_conv2d
from .im2col import GemmRunStats, gemm_conv2d, im2col, implicit_gemm_conv2d
from .metrics import (
    TRIAL_HISTORY_CAP,
    DispatchStats,
    TrialAggregate,
    get_dispatch_stats,
    reset_dispatch_stats,
)

__all__ = [
    "ALGORITHMS",
    "AUTO_MODES",
    "ConvPlan",
    "DispatchStats",
    "DWMPart",
    "DWMPlan",
    "FftRunStats",
    "GemmRunStats",
    "META_ALGORITHMS",
    "PlanKey",
    "TRIAL_HISTORY_CAP",
    "TrialAggregate",
    "autotune_conv2d",
    "clear_plan_cache",
    "conv2d",
    "direct_conv2d",
    "direct_conv2d_naive",
    "dwm_conv2d",
    "dwm_conv2d_with_plan",
    "dwm_plan",
    "fft_conv2d",
    "fft_tiling_conv2d",
    "gemm_conv2d",
    "get_algorithm",
    "get_dispatch_stats",
    "get_plan_cache",
    "im2col",
    "implicit_gemm_conv2d",
    "reset_dispatch_stats",
    "set_plan_cache_limit",
]
