"""Direct convolution (Eq. 4) — the arithmetic ground truth.

Two implementations:

* :func:`direct_conv2d_naive` — quadruple loop, literally Eq. 4.  Used
  only in tests on tiny shapes, where being obviously correct matters
  more than speed.
* :func:`direct_conv2d` — vectorized shift-and-accumulate over the R×S
  taps (a loop of 9 for 3×3), the implementation every other algorithm
  in the library is validated against.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ConvConfigError, LayoutError


def _check(x: np.ndarray, f: np.ndarray) -> None:
    if x.ndim != 4 or f.ndim != 4:
        raise LayoutError("x must be NCHW and f must be KCRS")
    if x.shape[1] != f.shape[1]:
        raise ConvConfigError(
            f"channel mismatch: input C={x.shape[1]}, filter C={f.shape[1]}"
        )


def direct_conv2d_naive(
    x: np.ndarray, f: np.ndarray, pad: int = 1, stride: int = 1
) -> np.ndarray:
    """O[k,h,w,n] = Σ_{r,s,c} I[c,σh+r,σw+s,n]·F[c,r,s,k] — NCHW in/out."""
    _check(x, f)
    n, c, h, w = x.shape
    k, _, r, s = f.shape
    out_h = (h + 2 * pad - r) // stride + 1
    out_w = (w + 2 * pad - s) // stride + 1
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    y = np.zeros((n, k, out_h, out_w), dtype=np.result_type(x, f))
    for nn in range(n):
        for kk in range(k):
            for hh in range(out_h):
                for ww in range(out_w):
                    acc = 0.0
                    for cc in range(c):
                        for rr in range(r):
                            for ss in range(s):
                                acc += (
                                    xp[nn, cc, hh * stride + rr, ww * stride + ss]
                                    * f[kk, cc, rr, ss]
                                )
                    y[nn, kk, hh, ww] = acc
    return y


def direct_conv2d(
    x: np.ndarray, f: np.ndarray, pad: int = 1, stride: int = 1
) -> np.ndarray:
    """Vectorized direct convolution: one shifted GEMM per filter tap."""
    _check(x, f)
    n, c, h, w = x.shape
    k, _, r, s = f.shape
    out_h = (h + 2 * pad - r) // stride + 1
    out_w = (w + 2 * pad - s) // stride + 1
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    acc = np.zeros((n, k, out_h, out_w), dtype=np.float64)
    for rr in range(r):
        for ss in range(s):
            window = xp[
                :,
                :,
                rr : rr + (out_h - 1) * stride + 1 : stride,
                ss : ss + (out_w - 1) * stride + 1 : stride,
            ]
            # (N, C, H', W') × (K, C) accumulated in fp64 for a tight oracle.
            acc += np.einsum(
                "nchw,kc->nkhw", window, f[:, :, rr, ss], optimize=True
            )
    return acc.astype(np.result_type(x, f), copy=False)
