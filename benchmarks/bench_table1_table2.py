"""Table 1 (the workload) and Table 2 (cuDNN Winograd ÷ cuDNN GEMM, V100).

Table 2 is the paper's motivation measurement: cuDNN's Winograd only
reaches ~1.4× over GEMM-based convolution instead of the theoretical
2.25×.  Our cuDNN-Winograd baseline is anchored to this table (see
DESIGN.md §2), so the reproduction check here is that the *GEMM-side*
structure (per-layer utilization, Conv5 collapse) recreates the row
pattern.
"""

from harness import DEVICES, cudnn_layer_time, emit, paper_vs_measured_table

from repro.common import format_table
from repro.models import RESNET_LAYER_SHAPES, paper_layers
from repro.perfmodel import PAPER_TABLE2_V100


def table1_text() -> str:
    rows = [
        (name, f"{s['h']}x{s['w']}", f"[{s['c']}, 3x3, {s['k']}]")
        for name, s in RESNET_LAYER_SHAPES.items()
    ]
    return format_table(
        ["Layer", "Output(HxW)", "Filter (C,RxS,K)"], rows,
        title="Table 1: all 3x3 convolutional layers in ResNet",
    )


def table2_rows():
    rows = []
    for prob in paper_layers():
        wino = cudnn_layer_time(prob.name, "V100", "WINOGRAD")
        gemm = cudnn_layer_time(prob.name, "V100", "IMPLICIT_PRECOMP_GEMM")
        rows.append((prob.name, PAPER_TABLE2_V100[prob.name], gemm / wino))
    return rows


def test_table1(benchmark):
    benchmark.pedantic(table1_text, rounds=1, iterations=1)
    emit("table1", table1_text())


def test_table2(benchmark):
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)
    text = paper_vs_measured_table(
        "Table 2: cuDNN Winograd speedup over cuDNN GEMM on V100",
        rows,
        headers=("layer", "paper", "model"),
    )
    emit("table2", text)
    # Shape assertions: Conv2-4 beat GEMM; Conv5 degrades with batch.
    by_name = {name: val for name, _, val in rows}
    assert all(by_name[f"Conv{l}N64"] > 1.2 for l in (2, 3, 4))
    assert by_name["Conv5N96"] < 1.1


if __name__ == "__main__":
    print(table1_text())
    for row in table2_rows():
        print(row)
