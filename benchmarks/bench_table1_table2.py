"""Table 1 (the workload) and Table 2 (cuDNN Winograd ÷ cuDNN GEMM, V100).

Table 2 is the paper's motivation measurement: cuDNN's Winograd only
reaches ~1.4× over GEMM-based convolution instead of the theoretical
2.25×.  Our cuDNN-Winograd baseline is anchored to this table (see
DESIGN.md §2), so the reproduction check here is that the *GEMM-side*
structure (per-layer utilization, Conv5 collapse) recreates the row
pattern.
"""

import json
import os

from harness import DEVICES, RESULTS_DIR, cudnn_layer_time, emit, paper_vs_measured_table

from repro.common import ConvProblem, format_table
from repro.models import RESNET_LAYER_SHAPES, paper_layers
from repro.perfmodel import PAPER_TABLE2_V100, predicted_time, rank_algorithms


def table1_text() -> str:
    rows = [
        (name, f"{s['h']}x{s['w']}", f"[{s['c']}, 3x3, {s['k']}]")
        for name, s in RESNET_LAYER_SHAPES.items()
    ]
    return format_table(
        ["Layer", "Output(HxW)", "Filter (C,RxS,K)"], rows,
        title="Table 1: all 3x3 convolutional layers in ResNet",
    )


def table2_rows():
    rows = []
    for prob in paper_layers():
        wino = cudnn_layer_time(prob.name, "V100", "WINOGRAD")
        gemm = cudnn_layer_time(prob.name, "V100", "IMPLICIT_PRECOMP_GEMM")
        rows.append((prob.name, PAPER_TABLE2_V100[prob.name], gemm / wino))
    return rows


def test_table1(benchmark):
    benchmark.pedantic(table1_text, rounds=1, iterations=1)
    emit("table1", table1_text())


# ---------------------------------------------------------------------------
# Per-layer tile-family comparison (the §8.1 variant study)
# ---------------------------------------------------------------------------
#: dispatcher algorithm → tile-variant column name
TILE_VARIANTS = (
    ("WINOGRAD", "f22"),
    ("WINOGRAD_F44", "f44"),
    ("WINOGRAD_DWM", "dwm"),
)

#: a Table-1-style layer the tile kernels cannot run natively: DWM must
#: decompose it (5×5 stride-2, the classic detection-backbone stem)
DWM_SHOWCASE = ConvProblem(
    n=32, c=64, h=56, w=56, k=64, r=5, s=5, pad=2, stride=2,
    name="Stem5x5s2N32",
)


def tile_variant_rows(device_key="V100"):
    """Predicted ms for each tile variant per layer, plus the winner.

    The winner is what AUTO_HEURISTIC would pick *among the tile
    families* (the full dispatcher additionally ranks the cuDNN-style
    baselines); ``None`` marks a variant that cannot run the shape.
    """
    device = DEVICES[device_key]
    algos = tuple(a for a, _ in TILE_VARIANTS)
    rows = []
    for prob in list(paper_layers()) + [DWM_SHOWCASE]:
        ranked, _ = rank_algorithms(prob, device, candidates=algos)
        times = {}
        for algo, variant in TILE_VARIANTS:
            times[variant] = (
                predicted_time(prob, device, algo) * 1e3
                if algo in ranked else None
            )
        chosen = dict(TILE_VARIANTS)[ranked[0]] if ranked else "-"
        rows.append({"layer": prob.name, **times, "chosen": chosen})
    return rows


def test_tile_variants(benchmark):
    rows = benchmark.pedantic(tile_variant_rows, rounds=1, iterations=1)
    fmt = lambda v: f"{v:.3f}" if v is not None else "-"
    text = format_table(
        ["layer", "f22 (ms)", "f44 (ms)", "dwm (ms)", "chosen"],
        [(r["layer"], fmt(r["f22"]), fmt(r["f44"]), fmt(r["dwm"]),
          r["chosen"]) for r in rows],
        title="Tile variants: predicted time per family, V100",
    )
    emit("tiles_v100", text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_tiles_v100.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"device": "V100", "layers": rows}, fh, indent=2)
    by_name = {r["layer"]: r for r in rows}
    # the 3×3 layers split between the fused families; the strided 5×5
    # layer is only reachable by decomposition
    assert {r["chosen"] for r in rows} >= {"f44", "dwm"}
    assert by_name["Stem5x5s2N32"]["chosen"] == "dwm"
    assert by_name["Stem5x5s2N32"]["f22"] is None
    assert all(
        r["f22"] is not None and r["f44"] is not None
        for r in rows if r["layer"] != "Stem5x5s2N32"
    )


def test_table2(benchmark):
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)
    text = paper_vs_measured_table(
        "Table 2: cuDNN Winograd speedup over cuDNN GEMM on V100",
        rows,
        headers=("layer", "paper", "model"),
    )
    emit("table2", text)
    # Shape assertions: Conv2-4 beat GEMM; Conv5 degrades with batch.
    by_name = {name: val for name, _, val in rows}
    assert all(by_name[f"Conv{l}N64"] > 1.2 for l in (2, 3, 4))
    assert by_name["Conv5N96"] < 1.1


if __name__ == "__main__":
    print(table1_text())
    for row in table2_rows():
        print(row)
