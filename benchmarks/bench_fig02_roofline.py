"""Figure 2: the V100 global-memory roofline of the Winograd steps.

Prints each labelled point of the figure with its arithmetic intensity
and attainable TFLOPS under the DRAM (900 GB/s) and L2 (2.5 TB/s)
ceilings, reproducing the figure's two claims: the transform steps are
deeply memory-bound, and raising bk from 32 to 64 lifts the EWMM step's
intensity by 33% (8 → 10.67 flops/byte), making it compute-bound once
the L2 carries the filter traffic.
"""

import math

from harness import emit

from repro.common import format_table
from repro.gpusim import V100
from repro.perfmodel import gemm_step_intensity, roofline_table


def rows():
    table = []
    for r in roofline_table(V100):
        table.append(
            (
                r["step"],
                f"2^{math.log2(r['intensity']):+.1f}",
                r["dram_tflops"],
                r["l2_tflops"],
                r["bound@dram"],
                r["bound@l2"],
            )
        )
    return table


def test_fig02_roofline(benchmark):
    table = benchmark.pedantic(rows, rounds=1, iterations=1)
    text = format_table(
        ["step", "ops:bytes", "DRAM-TFLOPS", "L2-TFLOPS", "@DRAM", "@L2"],
        table,
        title=f"Figure 2: V100 roofline (peak {V100.peak_fp32_tflops:.1f} TFLOPS)",
    )
    emit("fig02_roofline", text)
    gain = gemm_step_intensity(64) / gemm_step_intensity(32)
    assert abs(gain - 4 / 3) < 1e-9  # §3.3's +33%


if __name__ == "__main__":
    for r in rows():
        print(r)
