"""Ablations of the design choices DESIGN.md calls out (A1-A3).

A1 — cache-block size: bk=64 vs bk=32 main-loop throughput plus the
     §3.3 arithmetic-intensity argument.
A2 — predicate packing: P2R/R2P-packed masks vs per-iteration
     recomputation; also shows that *holding* 16 mask booleans in
     registers is impossible inside the 253-register budget (the paper's
     register-spilling observation).
A3 — shared-memory layout: the Table-4 transposed buffers vs the naive
     tile-major layout (why the kernel transposes through smem at all).
"""

from harness import emit, main_loop_measurement

from repro.common import ConvProblem, format_table
from repro.kernels import Tunables, WinogradF22Kernel
from repro.perfmodel import gemm_step_intensity

PROB = ConvProblem(n=32, c=64, h=28, w=28, k=64)


def blocking_rows():
    b64 = main_loop_measurement("RTX2070", bk=64)
    b32 = main_loop_measurement("RTX2070", bk=32)
    return [
        ("main-loop TFLOPS", b32.tflops, b64.tflops),
        ("cycles / bc-iteration", b32.cycles_per_iter, b64.cycles_per_iter),
        ("FFMAs / thread / iteration", 512.0, 1024.0),
        ("arithmetic intensity (flops/B)", gemm_step_intensity(32),
         gemm_step_intensity(64)),
        ("input loads per flop (rel.)", 2.0, 1.0),
    ]


def p2r_rows():
    packed = main_loop_measurement("RTX2070", use_p2r=True)
    recompute = main_loop_measurement("RTX2070", use_p2r=False)
    gen = WinogradF22Kernel(PROB, Tunables())
    no_pack_registers = gen.num_regs + 16 - 1  # 16 bools, minus the mask reg
    return [
        ("cycles / iteration", recompute.cycles_per_iter, packed.cycles_per_iter),
        ("extra ALU ops / iteration", 40, 8),
        ("registers if bools held in regs", no_pack_registers,
         gen.num_regs),
    ]


def layout_rows():
    good = main_loop_measurement("RTX2070", smem_layout="transposed")
    bad = main_loop_measurement("RTX2070", smem_layout="tile_major")
    return [
        ("cycles / iteration", bad.cycles_per_iter, good.cycles_per_iter),
        ("smem conflict cycles (run)", bad.counters.smem_conflict_cycles,
         good.counters.smem_conflict_cycles),
        ("main-loop TFLOPS", bad.tflops, good.tflops),
    ]


def test_ablation_blocking(benchmark):
    rows = benchmark.pedantic(blocking_rows, rounds=1, iterations=1)
    emit("ablation_a1_blocking", format_table(
        ["metric", "bk=32", "bk=64"], rows,
        title="Ablation A1: cache block size (RTX2070 main loop)",
    ))
    assert rows[0][2] > rows[0][1]  # bk=64 faster


def test_ablation_p2r(benchmark):
    rows = benchmark.pedantic(p2r_rows, rounds=1, iterations=1)
    emit("ablation_a2_p2r", format_table(
        ["metric", "no P2R (recompute)", "P2R packed"], rows,
        title="Ablation A2: zero-padding mask handling (§3.5)",
    ))
    # Holding the 16 booleans in registers would blow the 253 budget.
    assert rows[2][1] > 255
    assert rows[0][2] <= rows[0][1] * 1.02


def test_ablation_smem_layout(benchmark):
    rows = benchmark.pedantic(layout_rows, rounds=1, iterations=1)
    emit("ablation_a3_layout", format_table(
        ["metric", "tile-major", "transposed (Table 4)"], rows,
        title="Ablation A3: shared-memory fragment layout (§4.3)",
    ))
    assert rows[1][2] == 0  # the paper layout is conflict-free
    assert rows[1][1] > 0
    assert rows[0][1] > 1.4 * rows[0][2]


if __name__ == "__main__":
    print(blocking_rows())
    print(p2r_rows())
    print(layout_rows())
