"""Autotuning dispatcher: workspace-limited selection + plan-cache rates.

Two result blocks:

* a Fig. 14-style table showing, for every Table 1 layer at N=32, which
  algorithm ``AUTO_HEURISTIC`` selects as the workspace budget tightens
  from unlimited down to 0 bytes — the runtime re-enactment of the
  paper's workspace-limited selection discussion (the fused kernel's
  tiny 16·K·C workspace is exactly why it survives budgets that evict
  FFT and explicit GEMM);
* a plan-cache report from real ``conv2d(algo="AUTO")`` dispatches:
  trials run on the first call per signature, hit rate once shapes
  repeat, and the per-algorithm mean trial times behind the choice.
"""

from harness import emit

from repro.common import ConvProblem, format_table, make_rng, random_activation, random_filter
from repro.convolution import (
    clear_plan_cache,
    conv2d,
    get_dispatch_stats,
    reset_dispatch_stats,
)
from repro.gpusim import V100
from repro.models import resnet_layer
from repro.perfmodel import dispatch_workspace_bytes, rank_algorithms

MB = 1024 * 1024
BUDGETS = (None, 256 * MB, 32 * MB, 2 * MB, 0)
LAYERS = ("Conv2", "Conv3", "Conv4", "Conv5")


def _budget_label(budget):
    return "unlimited" if budget is None else f"{budget // MB} MB"


def selection_grid():
    """layer → budget → (chosen algorithm, its workspace MB)."""
    out = {}
    for layer in LAYERS:
        prob = resnet_layer(layer, 32)
        row = {}
        for budget in BUDGETS:
            ranked, _ = rank_algorithms(prob, V100, budget)
            chosen = ranked[0]
            row[budget] = (chosen, dispatch_workspace_bytes(prob, chosen) / MB)
        out[layer] = row
    return out


def cache_report(repeats: int = 3):
    """Dispatch a small shape sweep through AUTO, twice-plus, and report."""
    reset_dispatch_stats()
    clear_plan_cache()
    rng = make_rng(42)
    problems = [
        ConvProblem(n=2, c=8, h=12, w=12, k=8),
        ConvProblem(n=2, c=8, h=9, w=7, k=8),          # non-square
        ConvProblem(n=1, c=4, h=10, w=10, k=4, r=5, s=5, pad=2),  # no Winograd
    ]
    for prob in problems:
        x = random_activation(prob, rng)
        f = random_filter(prob, rng)
        for _ in range(repeats):
            conv2d(x, f, pad=prob.pad, algo="AUTO")
    return get_dispatch_stats()


def _run():
    grid = selection_grid()
    rows = []
    for layer, row in grid.items():
        for budget, (algo, ws_mb) in row.items():
            rows.append((f"{layer}N32", _budget_label(budget), algo, round(ws_mb, 2)))
    text = format_table(
        ["layer", "workspace budget", "heuristic choice", "chosen ws MB"],
        rows,
        title="Autotune: workspace-limited selection (AUTO_HEURISTIC, V100)",
    )
    emit("autotune_selection", text)

    stats = cache_report()
    rows = [
        ("dispatched calls", stats.calls),
        ("plan-cache hits", stats.cache_hits),
        ("plan-cache misses", stats.cache_misses),
        ("hit rate", round(stats.hit_rate, 3)),
        ("trials run", stats.trials_run),
        ("fallbacks taken", stats.fallbacks),
    ] + [
        (f"mean trial ms [{algo}]", round(stats.mean_trial_time(algo) * 1e3, 3))
        for algo in sorted(stats.trial_times)
    ]
    text = format_table(
        ["metric", "value"], rows, title="Autotune: plan-cache behaviour (AUTO)"
    )
    emit("autotune_plan_cache", text)
    return grid, stats


def test_autotune_dispatch(benchmark):
    grid, stats = benchmark.pedantic(_run, rounds=1, iterations=1)
    for layer in LAYERS:
        # Unlimited budget: the model picks this library's fused kernel
        # on every Table 1 layer (Figs. 12-13's headline result) — the
        # F(4x4,3x3) family once its projected time wins (§8.1); tighter
        # budgets demote it to F(2x2,3x3) first (smaller workspace).
        assert grid[layer][None][0] == "WINOGRAD_F44"
        # Zero budget: only workspace-free algorithms survive.
        assert grid[layer][0][0] in ("IMPLICIT_GEMM", "DIRECT")
    # 3 signatures × 3 repeats → 3 misses, 6 hits, trials only on misses.
    assert stats.cache_misses == 3
    assert stats.cache_hits == 6
    assert stats.hit_rate == 6 / 9
    assert stats.trials_run > 0


if __name__ == "__main__":
    _run()
