"""Cross-architecture benchmark: schedule portability + fleet routing.

The paper's Table 5 compares the same kernels across Tesla V100 and
RTX 2070.  This benchmark reproduces that comparison for the *schedule
search* layer of the stack and exercises the fleet router on top of it:

1. **Per-device searches** — run the successive-halving schedule search
   for both tile families on every fleet device (memoized per device on
   a planning :class:`~repro.runtime.ExecutionContext`).
2. **Cross-device validation** — re-simulate each device's winning
   schedule on every *other* device
   (:func:`repro.sched.crossdev.validate_plan_on`) and record the
   penalty against the target's own rung-0 floor.  A nonzero penalty is
   the empirical core of the multi-device story: the two architectures
   genuinely rank schedules differently (the f44 family shows it; the
   f22 grid happens to order identically on both).
3. **Fleet routing** — place the four Table-1 ResNet layer stacks
   (Conv2-Conv5 at n=1, served at ``--max-batch``) onto the fleet with
   :class:`repro.serving.FleetRouter` and record every routing decision.

Writes ``<out-dir>/BENCH_crossarch.json`` and exits nonzero unless the
run demonstrates both fleet properties: at least one model routed to
*each* device, and at least one cross-device validation with a positive
penalty.

Usage::

    python benchmarks/bench_crossarch.py --quick          # CI smoke
    python benchmarks/bench_crossarch.py                  # full spaces
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from repro.models.resnet import RESNET_LAYER_SHAPES, resnet_layer
from repro.sched import (
    QUICK_SPACE,
    ScheduleSearchConfig,
    ensure_schedule,
    validate_plan_on,
)
from repro.serving import FleetRouter, ModelSpec, ServingConfig

TABLE1_STACKS = tuple(RESNET_LAYER_SHAPES)  # Conv2..Conv5


def run(devices: tuple[str, ...], quick: bool, max_batch: int) -> dict:
    search_config = (
        ScheduleSearchConfig(space=QUICK_SPACE) if quick else None
    )
    router = FleetRouter(
        devices,
        ServingConfig(max_batch=max_batch),
        search_config=search_config,
    )

    # 1. Per-device searches, both families, on the router's own
    # planning contexts — the routing step below reuses every result.
    searches: dict[str, dict[str, dict]] = {}
    results: dict[str, dict] = {}
    for key in router.device_keys:
        ctx = router.planning_context(key)
        searches[key] = {}
        results[key] = {}
        for tile in ("f22", "f44"):
            result = ensure_schedule(
                device=ctx.device, config=search_config, context=ctx,
                tile=tile,
            )
            results[key][tile] = result
            searches[key][tile] = {
                "winner": result.best.schedule.label(),
                "cycles_per_iter": result.best.cycles_per_iter,
                "space": result.space_signature,
                "evaluations": result.evaluations,
            }

    # 2. Cross-device validation: every winner on every other device.
    validations = []
    for src in router.device_keys:
        for dst in router.device_keys:
            if dst == src:
                continue
            for tile in ("f22", "f44"):
                report = validate_plan_on(
                    results[src][tile], dst,
                    config=search_config,
                    context=router.planning_context(dst),
                )
                validations.append(report.to_dict())

    # 3. Fleet-route the Table-1 layer stacks.
    routing = []
    for name in TABLE1_STACKS:
        prob = resnet_layer(name, n=1)
        filters = (np.zeros((prob.k, prob.c, 3, 3), dtype=np.float32),)
        decision = router.register_model(
            "bench", ModelSpec(name=name.lower(), problems=(prob,),
                               filters=filters),
        )
        routing.append(decision.to_dict())

    placements = {d["device"] for d in routing}
    max_penalty = max((v["penalty_pct"] for v in validations), default=0.0)
    return {
        "devices": list(router.device_keys),
        "profile": "quick" if quick else "full",
        "max_batch": max_batch,
        "searches": searches,
        "validations": validations,
        "routing": routing,
        "summary": {
            "devices_used": sorted(placements),
            "all_devices_used": placements == set(router.device_keys),
            "max_penalty_pct": max_penalty,
            "nonzero_penalty": max_penalty > 0.0,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--devices", nargs="+", default=["V100", "RTX2070"],
                        help="fleet devices (default: V100 RTX2070)")
    parser.add_argument("--quick", action="store_true",
                        help="QUICK_SPACE searches (the CI smoke profile)")
    parser.add_argument("--max-batch", type=int, default=32,
                        help="served batch size the routing costs assume "
                             "(default: 32)")
    parser.add_argument("--out-dir", default=os.path.join(
                            os.path.dirname(__file__), "results"),
                        help="where BENCH_crossarch.json lands "
                             "(default: results/)")
    args = parser.parse_args(argv)

    payload = run(tuple(args.devices), args.quick, args.max_batch)

    os.makedirs(args.out_dir, exist_ok=True)
    out = os.path.join(args.out_dir, "BENCH_crossarch.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    summary = payload["summary"]
    print(f"wrote {out}")
    print(f"  devices used by routing: {', '.join(summary['devices_used'])}")
    for v in payload["validations"]:
        print(f"  [{v['tile']}] {v['tuned_on']} -> {v['validated_on']}: "
              f"{v['schedule']} penalty {v['penalty_pct']:+.2f}%")
    ok = True
    if not summary["all_devices_used"]:
        print("error: fleet routing left a device idle "
              f"(used: {summary['devices_used']})", file=sys.stderr)
        ok = False
    if not summary["nonzero_penalty"]:
        print("error: no cross-device validation produced a positive "
              "penalty — schedule portability is not being exercised",
              file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
