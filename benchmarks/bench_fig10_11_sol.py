"""Figures 10-11: Speed-Of-Light (SM%) on RTX2070 and V100.

For every layer: the main-loop SOL and the whole-kernel ("Total") SOL,
from the simulated kernel through the layer model.  The paper's shape
targets: main loop ≥ total; both high (main 87.5-93%); visible dips at
Conv4N32/Conv5N32 where the grid is too small to fill the device
("there are not enough thread blocks to keep the GPU busy"), recovering
as the batch grows.
"""

from harness import emit, layer_result, prewarm_layer_measurements

from repro.common import format_grid
from repro.models import paper_layers

LAYERS = [p.name for p in paper_layers()]


def sol_series(device_name):
    # The heavy per-device measurement triple can come from a pool
    # worker (and the persistent simulation cache); the per-layer
    # extrapolation below is pure arithmetic once it is seeded.
    prewarm_layer_measurements([device_name])
    main, total = [], []
    for layer in LAYERS:
        r = layer_result(layer, device_name)
        main.append(100 * r.sol_main_loop)
        total.append(100 * r.sol_total)
    return main, total


def _run(device_name, fig):
    main, total = sol_series(device_name)
    text = format_grid(
        ["Total", "Main loop"],
        LAYERS,
        [[f"{v:.1f}" for v in total], [f"{v:.1f}" for v in main]],
        title=f"Figure {fig}: Speed of Light (SOL %) on {device_name}",
    )
    emit(f"fig{fig}_sol_{device_name.lower()}", text)
    return main, total


def test_fig10_sol_rtx2070(benchmark):
    main, total = benchmark.pedantic(_run, args=("RTX2070", 10),
                                     rounds=1, iterations=1)
    by = dict(zip(LAYERS, main))
    assert all(m >= t - 1e-6 for m, t in zip(main, total))
    # Small-batch dip and recovery (§7.2).
    assert by["Conv5N32"] < by["Conv5N128"]
    assert max(main) > 80


def test_fig11_sol_v100(benchmark):
    main, total = benchmark.pedantic(_run, args=("V100", 11),
                                     rounds=1, iterations=1)
    by = dict(zip(LAYERS, main))
    assert by["Conv4N32"] < by["Conv4N128"]
    assert max(main) > 80


if __name__ == "__main__":
    for dev in ("RTX2070", "V100"):
        print(dev, sol_series(dev))
