"""Closed-loop load test of the async serving frontend.

The paper's thesis is that the batch dimension N drives Winograd
throughput; ``repro.serving`` exploits it at the serving level by
coalescing concurrent single-image requests into batched stacks.  This
bench quantifies that: the same closed-loop client population is driven
against (a) the dynamic-batching frontend and (b) a ``max_batch=1``
control — identical runtime, zero batch formation — and both runs land
in one artifact with throughput and p50/p99 latency:

    PYTHONPATH=src python benchmarks/bench_serving.py           # full: 1000 clients
    PYTHONPATH=src python benchmarks/bench_serving.py --quick   # CI smoke

Artifact: ``results/BENCH_serving_rtx2070.json`` (``_quick`` suffix with
``--quick`` so a smoke run never overwrites the full measurement).

The bench *fails* (non-zero exit) on any request error, any
deadline-policy violation (a not-full batch held open past
``max_queue_delay_s`` + slack), or a mean formed batch size <= 1; the
full run additionally requires batched throughput to beat the control.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys

from harness import RESULTS_DIR, emit, format_table

from repro.common import ConvProblem, make_rng, random_filter
from repro.gpusim import RTX2070
from repro.serving import ModelSpec, ServingConfig, ServingFrontend
from repro.serving.loadgen import run_closed_loop

#: Served layer: one image's tiles cannot fill a GPU (the paper's
#: point); small enough here that a CPU host sustains 1000 clients.
PROBLEM = ConvProblem(n=1, c=8, h=16, w=16, k=8, name="Serve")

DEVICE = RTX2070
#: Artifact slug (DEVICE.name is the marketing string "GeForce RTX 2070").
DEVICE_SLUG = "rtx2070"


async def _run_load(config: ServingConfig, *, clients: int,
                    duration_s: float, seed: int = 0) -> dict:
    rng = make_rng(seed)
    weights = random_filter(PROBLEM, rng)
    images = [
        (rng.random((PROBLEM.c, PROBLEM.h, PROBLEM.w), dtype="float32") * 2 - 1)
        for _ in range(128)
    ]
    async with ServingFrontend(config, device=DEVICE) as frontend:
        frontend.register_model("bench", ModelSpec(
            name=PROBLEM.label(), problems=(PROBLEM,), filters=(weights,)))
        load = await run_closed_loop(
            frontend, "bench", PROBLEM.label(), images,
            clients=clients, duration_s=duration_s,
        )
        stats = frontend.stats()
    return {
        "config": config.to_dict(),
        "load": load.to_dict(),
        "serving": stats["serving"],
        "arena": stats["tenants"]["bench"]["arena"],
        "dispatch": {
            key: stats["tenants"]["bench"]["dispatch"][key]
            for key in ("calls", "cache_hits", "cache_misses", "chosen")
        },
    }


def run_bench(clients: int, duration_s: float, max_batch: int,
              delay_ms: float, mode: str) -> dict:
    batched_cfg = ServingConfig(
        max_batch=max_batch, max_queue_delay_s=delay_ms / 1e3,
        max_queue_depth=4 * clients, mode=mode,
    )
    control_cfg = ServingConfig(
        max_batch=1, max_queue_delay_s=0.0,
        max_queue_depth=4 * clients, mode=mode,
    )
    batched = asyncio.run(_run_load(
        batched_cfg, clients=clients, duration_s=duration_s))
    control = asyncio.run(_run_load(
        control_cfg, clients=clients, duration_s=duration_s))
    control_rps = control["load"]["throughput_rps"]
    return {
        "bench": "serving",
        "device": DEVICE.name,
        "problem": {
            "label": PROBLEM.label(), "c": PROBLEM.c, "h": PROBLEM.h,
            "w": PROBLEM.w, "k": PROBLEM.k,
        },
        "clients": clients,
        "duration_s": duration_s,
        "runs": {"batched": batched, "control_nobatch": control},
        "speedup_vs_control": (
            batched["load"]["throughput_rps"] / control_rps
            if control_rps else float("inf")
        ),
    }


def check_payload(payload: dict, *, full: bool) -> list[str]:
    """Policy/error audit; returns human-readable violations (CI gate)."""
    violations = []
    for name, run in payload["runs"].items():
        if run["load"]["failed"]:
            violations.append(f"{name}: {run['load']['failed']} request errors")
        if run["serving"]["requests_failed"]:
            violations.append(
                f"{name}: {run['serving']['requests_failed']} failed in dispatch")
        if run["serving"]["deadline_overshoots"]:
            violations.append(
                f"{name}: {run['serving']['deadline_overshoots']} "
                "deadline-policy violations")
    batched = payload["runs"]["batched"]["serving"]
    if batched["mean_batch_size"] <= 1.0:
        violations.append(
            f"batched run formed mean batch {batched['mean_batch_size']:.2f} "
            "<= 1: dynamic batching did nothing")
    if full and payload["speedup_vs_control"] <= 1.0:
        violations.append(
            f"batched throughput not above control "
            f"(speedup {payload['speedup_vs_control']:.2f}x)")
    return violations


def _table(payload: dict) -> str:
    rows = []
    for name, run in payload["runs"].items():
        serving, load = run["serving"], run["load"]
        rows.append((
            name, load["completed"], f"{load['throughput_rps']:.0f}",
            f"{serving['mean_batch_size']:.2f}", serving["max_batch_size"],
            f"{serving['p50_latency_s'] * 1e3:.2f}",
            f"{serving['p99_latency_s'] * 1e3:.2f}",
            load["rejected"], serving["deadline_overshoots"],
        ))
    table = format_table(
        ["run", "completed", "req/s", "mean batch", "max batch",
         "p50 ms", "p99 ms", "shed", "overshoot"],
        rows, title=f"Serving load test: {payload['clients']} clients, "
                    f"{payload['duration_s']:.1f}s each run",
    )
    return (f"{table}\n"
            f"batched vs no-batching control: "
            f"{payload['speedup_vs_control']:.2f}x throughput")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="bounded clients/duration for CI smoke runs")
    parser.add_argument("--clients", type=int, default=None,
                        help="concurrent clients (default: 1000, quick: 64)")
    parser.add_argument("--duration", type=float, default=None,
                        help="seconds per run (default: 5, quick: 1)")
    parser.add_argument("--max-batch", type=int, default=None,
                        help="batching cap (default: 64, quick: 16)")
    parser.add_argument("--delay-ms", type=float, default=2.0,
                        help="max queue delay before flush (default: 2 ms)")
    parser.add_argument("--mode", default="GEMM",
                        help="session mode for batches (default: GEMM)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="artifact path (default: results/BENCH_serving_"
                             "rtx2070[_quick].json)")
    args = parser.parse_args(argv)
    clients = args.clients or (64 if args.quick else 1000)
    duration = args.duration or (1.0 if args.quick else 5.0)
    max_batch = args.max_batch or (16 if args.quick else 64)

    payload = run_bench(clients, duration, max_batch, args.delay_ms, args.mode)
    emit(f"Serving load test ({clients} clients)", _table(payload))

    suffix = "_quick" if args.quick else ""
    path = args.json or os.path.join(
        RESULTS_DIR, f"BENCH_serving_{DEVICE_SLUG}{suffix}.json")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    violations = check_payload(payload, full=not args.quick)
    payload["violations"] = violations
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {path}")
    if violations:
        for line in violations:
            print(f"VIOLATION: {line}", file=sys.stderr)
        return 1
    return 0


def test_serving_load_quick(benchmark):
    payload = benchmark.pedantic(
        lambda: run_bench(32, 0.5, 8, 2.0, "GEMM"), rounds=1, iterations=1
    )
    assert not check_payload(payload, full=False)
    assert payload["runs"]["batched"]["serving"]["mean_batch_size"] > 1.0


if __name__ == "__main__":
    sys.exit(main())
