"""Process-pool fan-out for independent benchmark simulations.

The pool machinery now lives in :mod:`repro.runtime.parallel` (the
pipelined ``InferenceSession`` uses it too); this module re-exports it
for the benchmark scripts and keeps the benchmark-specific top-level
workers.  Each (layer × strategy × device) measurement is an
independent, pure computation, and results come back in deterministic
input order; ``REPRO_BENCH_PARALLEL=0`` / ``REPRO_BENCH_WORKERS`` are
honoured as before.  See ``docs/simulation_performance.md``.
"""

from __future__ import annotations

from repro.runtime.parallel import (  # noqa: F401
    _parallel_enabled,
    default_workers,
    parallel_map,
)


# ---------------------------------------------------------------------------
# Top-level workers (picklable by reference) for the benchmark harness.
# ---------------------------------------------------------------------------
def main_loop_worker(args):
    """Compute one (device, tunables) main-loop measurement."""
    device_name, tunables = args
    from repro.gpusim import DEVICES
    from repro.kernels import measure_main_loop
    from repro.perfmodel.layer_model import _SURROGATE

    return measure_main_loop(
        _SURROGATE, device=DEVICES[device_name], tunables=tunables
    )


def layer_measurements_worker(args):
    """Compute one device's (main, overhead, overhead_fma) triple."""
    device_name, tunables = args
    from repro.gpusim import DEVICES
    from repro.perfmodel.layer_model import _measurements

    main, overhead, overhead_fma = _measurements(DEVICES[device_name], tunables)
    return main, overhead, overhead_fma
