"""Figures 12-13: speedup of our kernel over all other cuDNN algorithms.

One grid per device (16 layers × 6 algorithms), printed next to the
paper's cell values.  Shape targets: FFT collapses on Conv5; explicit
GEMM is worst on Conv2; IMPLICIT_PRECOMP is the strongest baseline
(≈2×); WINOGRAD_NONFUSED is the only algorithm that beats us, and only
on Conv5 (the §8.1 break-even at K≈129).
"""

from harness import cudnn_layer_time, emit, layer_result

from repro.common import format_table
from repro.models import paper_layers
from repro.perfmodel import (
    ALGO_ORDER,
    PAPER_FIG12_RTX2070,
    PAPER_FIG13_V100,
)

LAYERS = [p.name for p in paper_layers()]
PAPER = {"RTX2070": PAPER_FIG12_RTX2070, "V100": PAPER_FIG13_V100}


def grid(device_name):
    out = {}
    for layer in LAYERS:
        ours = layer_result(layer, device_name).time_s
        out[layer] = [
            cudnn_layer_time(layer, device_name, algo) / ours
            for algo in ALGO_ORDER
        ]
    return out


def _run(device_name, fig):
    data = grid(device_name)
    rows = []
    for layer in LAYERS:
        for algo, measured in zip(ALGO_ORDER, data[layer]):
            paper = PAPER[device_name][layer][ALGO_ORDER.index(algo)]
            rows.append((layer, algo, paper, measured))
    text = format_table(
        ["layer", "algorithm", "paper", "measured"], rows,
        title=f"Figure {fig}: speedup over all cuDNN algorithms ({device_name})",
    )
    emit(f"fig{fig}_algorithms_{device_name.lower()}", text)
    return data


def _assert_shape(data):
    ffts = {l: data[l][ALGO_ORDER.index("FFT")] for l in LAYERS}
    nonfused = {l: data[l][ALGO_ORDER.index("WINOGRAD_NONFUSED")] for l in LAYERS}
    ipg = {l: data[l][ALGO_ORDER.index("IMPLICIT_PRECOMP_GEMM")] for l in LAYERS}
    # FFT worst on Conv5 (small spectra).
    assert ffts["Conv5N32"] > ffts["Conv3N64"]
    # We beat every algorithm except non-fused Winograd on Conv5.
    for layer in ("Conv2N64", "Conv3N64", "Conv4N64"):
        assert all(v > 0.95 for v in data[layer])
    assert nonfused["Conv5N64"] < 1.0  # the F(4×4) crossover (§8.1)
    assert nonfused["Conv2N64"] > 1.0
    # IMPLICIT_PRECOMP is the strongest GEMM baseline.
    gemm = {l: data[l][ALGO_ORDER.index("GEMM")] for l in LAYERS}
    assert all(gemm[l] > ipg[l] for l in LAYERS)


def test_fig12_rtx2070(benchmark):
    data = benchmark.pedantic(_run, args=("RTX2070", 12), rounds=1, iterations=1)
    _assert_shape(data)


def test_fig13_v100(benchmark):
    data = benchmark.pedantic(_run, args=("V100", 13), rounds=1, iterations=1)
    _assert_shape(data)


if __name__ == "__main__":
    _run("V100", 13)
