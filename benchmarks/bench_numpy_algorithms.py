"""Wall-clock microbenchmarks of the NumPy algorithm implementations.

Not a paper figure: these time this library's own CPU implementations
(the functional layer under the simulator) with pytest-benchmark's real
timing loop, so performance regressions in the NumPy pipelines are
caught.  The shape is a scaled-down Conv3.
"""

import pytest

from repro.common import ConvProblem, kcrs_to_crsk, make_rng, nchw_to_chwn, random_activation, random_filter
from repro.convolution import (
    direct_conv2d,
    fft_conv2d,
    gemm_conv2d,
    implicit_gemm_conv2d,
)
from repro.winograd import FusedWinogradConv, NonFusedWinogradConv, winograd_conv2d_nchw

PROB = ConvProblem(n=4, c=32, h=28, w=28, k=32, name="mini-Conv3")
RNG = make_rng(0)
X = random_activation(PROB, RNG)
F = random_filter(PROB, RNG)
X_CHWN = nchw_to_chwn(X)
F_CRSK = kcrs_to_crsk(F)


def test_bench_direct(benchmark):
    benchmark(direct_conv2d, X, F)


def test_bench_gemm(benchmark):
    benchmark(lambda: gemm_conv2d(X, F)[0])


def test_bench_implicit_gemm(benchmark):
    benchmark(lambda: implicit_gemm_conv2d(X, F)[0])


def test_bench_fft(benchmark):
    benchmark(lambda: fft_conv2d(X, F)[0])


def test_bench_winograd_reference_f2(benchmark):
    benchmark(winograd_conv2d_nchw, X, F, 2)


def test_bench_winograd_reference_f4(benchmark):
    benchmark(winograd_conv2d_nchw, X, F, 4)


def test_bench_winograd_fused_pipeline(benchmark):
    conv = FusedWinogradConv()
    f_t = conv.transform_filters(F_CRSK)
    benchmark(lambda: conv.run(X_CHWN, f_t, PROB)[0])


def test_bench_winograd_nonfused_pipeline(benchmark):
    conv = NonFusedWinogradConv(m=4)
    benchmark(lambda: conv.run(X_CHWN, F_CRSK, PROB)[0])


def test_bench_sass_assembler(benchmark):
    """Assembling the full Winograd kernel (the TuringAs hot path)."""
    from repro.common import ConvProblem as CP
    from repro.kernels import WinogradF22Kernel

    gen = WinogradF22Kernel(CP(n=32, c=16, h=8, w=8, k=64))
    benchmark(gen.build)
