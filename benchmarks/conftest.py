"""Benchmark suite configuration."""

import os
import sys

# Make `harness` importable when pytest runs from the repository root.
sys.path.insert(0, os.path.dirname(__file__))
