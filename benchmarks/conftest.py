"""Benchmark suite configuration."""

import os
import sys

# Make `harness` importable when pytest runs from the repository root.
sys.path.insert(0, os.path.dirname(__file__))

# Persist simulation results between benchmark runs (repeated sweeps
# replay bit-identical counters instead of re-simulating; any edit to
# the generator/simulator sources invalidates the entries via the code
# fingerprint).  REPRO_SIM_CACHE=0 disables caching outright.
os.environ.setdefault(
    "REPRO_SIM_CACHE_DIR", os.path.join(os.path.dirname(__file__), ".simcache")
)
