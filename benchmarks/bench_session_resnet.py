"""End-to-end InferenceSession over the paper's ResNet layers (Table 1).

Plans and runs the four 3×3 ResNet layers through the unified runtime:
one ExecutionContext, one workspace arena shared by every layer, and a
JSON trace of the plan/build/layer spans.

    PYTHONPATH=src python benchmarks/bench_session_resnet.py            # N=32
    PYTHONPATH=src python benchmarks/bench_session_resnet.py --quick    # tiny N
    PYTHONPATH=src python benchmarks/bench_session_resnet.py \
        --trace results/session_resnet_trace.json

``--quick`` shrinks the batch so the CI smoke job finishes in seconds;
the layer stack, selection mode and trace structure are identical.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from harness import RESULTS_DIR, emit, format_table

from repro.common.rng import make_rng, random_activation, random_filter
from repro.models import resnet_layer
from repro.runtime import ExecutionContext, InferenceSession

LAYERS = ("Conv2", "Conv3", "Conv4", "Conv5")


def run_session(batch: int, mode: str = "AUTO_HEURISTIC", pipeline: bool = False):
    """Run the four-layer stack; returns (result, plans, context)."""
    problems = [resnet_layer(name, batch) for name in LAYERS]
    ctx = ExecutionContext()
    session = InferenceSession(problems, mode=mode, context=ctx)
    rng = make_rng(0)
    inputs = [random_activation(p, rng) for p in problems]
    filters = [random_filter(p, rng) for p in problems]
    result = session.run(inputs, filters, pipeline=pipeline)
    return result, session.plans, ctx


def session_table(result, plans) -> str:
    rows = [
        (run.layer, run.algo, ",".join(plan.fallbacks) or "-",
         run.workspace_bytes / (1 << 20), run.seconds * 1e3)
        for run, plan in zip(result.layers, plans)
    ]
    a = result.arena
    table = format_table(
        ["layer", "algo", "fallbacks", "workspace MB", "ms"], rows,
        title="InferenceSession: ResNet 3x3 layers",
    )
    return (
        f"{table}\n"
        f"end-to-end: {result.total_seconds * 1e3:.3f} ms over "
        f"{len(result.layers)} layers"
        f"{' (pipelined)' if result.pipelined else ''}\n"
        f"arena: peak {a.peak_bytes / (1 << 20):.3f} MB, "
        f"{a.reserves} reserves, {a.reuses} reuses, {a.grows} grows"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny batch for CI smoke runs")
    parser.add_argument("--batch", type=int, default=None,
                        help="batch size N (default: 32, or 2 with --quick)")
    parser.add_argument("--mode", default="AUTO_HEURISTIC",
                        help="session mode (default: AUTO_HEURISTIC)")
    parser.add_argument("--pipeline", action="store_true",
                        help="fan layers out over the process pool")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="trace JSON path (default: "
                             "results/session_resnet_trace.json)")
    args = parser.parse_args(argv)
    batch = args.batch or (2 if args.quick else 32)

    result, plans, ctx = run_session(batch, mode=args.mode,
                                     pipeline=args.pipeline)
    emit(f"Session: ResNet layers N={batch}", session_table(result, plans))

    trace_path = args.trace or os.path.join(
        RESULTS_DIR, "session_resnet_trace.json"
    )
    os.makedirs(os.path.dirname(trace_path) or ".", exist_ok=True)
    payload = {
        "batch": batch,
        "mode": args.mode,
        "session": result.to_dict(),
        "spans": ctx.export_trace(),
    }
    with open(trace_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {trace_path} ({len(payload['spans'])} spans)")
    return 0


def test_session_resnet_quick(benchmark):
    result, plans, _ = benchmark.pedantic(
        lambda: run_session(2), rounds=1, iterations=1
    )
    assert len(result.layers) == len(LAYERS)
    assert result.arena.peak_bytes == max(p.workspace_bytes for p in plans)


if __name__ == "__main__":
    sys.exit(main())
