"""§8.1's future work, quantified: the fused F(4×4, 3×3) design space.

Enumerates candidate blockings under the Volta/Turing register and
shared-memory limits, shows that the F(2×2) kernel's (64, 32, 8)
blocking cannot be transplanted (the 36-batched EWMM blows the
253-register budget), picks the best feasible configuration, and
projects its layer-level speedup over our fused F(2×2) kernel.
"""

from harness import emit

from repro.common import format_table
from repro.gpusim import RTX2070, V100
from repro.models import resnet_layer
from repro.perfmodel.f44_study import (
    best_feasible,
    enumerate_blockings,
    f22_reference_blocking_infeasible,
    projected_speedup_over_f22,
)


def _run():
    rows = []
    for b in enumerate_blockings():
        rows.append((
            f"({b.bk},{b.bn},{b.bc})",
            b.registers,
            f"{b.smem_bytes // 1024}K",
            f"{b.arithmetic_intensity:.1f}",
            "yes" if b.feasible else "no",
        ))
    table = format_table(
        ["(bk,bn,bc)", "regs/thread", "smem", "flops/B", "feasible"],
        rows,
        title="Fused F(4x4,3x3) blocking candidates (256 threads)",
    )
    transplant = f22_reference_blocking_infeasible()
    best = best_feasible()
    lines = [table, ""]
    lines.append(
        f"F(2x2)'s (64,32,8) transplanted: {transplant.registers} registers "
        f"(> {253}) and {transplant.smem_bytes // 1024} KB smem — infeasible, "
        "which is why the paper defers the fused F(4x4)."
    )
    from repro.perfmodel.f44_study import attainable_sol

    lines.append(
        f"best feasible: ({best.bk},{best.bn},{best.bc}) at "
        f"{best.arithmetic_intensity:.1f} flops/B, {best.registers} regs — "
        "every feasible blocking is MEMORY-bound (F(2x2)'s is 10.67 flops/B)"
    )
    for dev in (V100, RTX2070):
        p = resnet_layer("Conv3", 64)
        s = projected_speedup_over_f22(p, dev)
        lines.append(
            f"projected fused-F(4x4) on {dev.name} Conv3N64: attainable "
            f"SOL {100 * attainable_sol(best, dev):.0f}% -> {s:.2f}x over our F(2x2)"
        )
    text = "\n".join(lines)
    emit("f44_study", text)
    return transplant, best


def test_f44_design_study(benchmark):
    transplant, best = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert not transplant.feasible  # the §8.1 obstacle, made concrete
    assert best is not None and best.feasible
    # Every feasible blocking is memory-bound — below F(2×2)'s 10.67.
    assert best.arithmetic_intensity < 10.67
    p = resnet_layer("Conv3", 64)
    s = projected_speedup_over_f22(p, V100)
    assert 1.0 < s < 1.9  # ≈ 4/2.25 discounted by overcompute and SOL cap


if __name__ == "__main__":
    _run()
