"""Shared machinery for the reproduction benchmarks.

Each ``bench_*.py`` regenerates one of the paper's tables or figures:
it prints the same rows/series the paper reports (side by side with the
paper's values where the text gives them) and exposes the underlying
computation to pytest-benchmark.

Simulator measurements are cached at module level so a full
``pytest benchmarks/ --benchmark-only`` run re-uses each main-loop /
layer-model simulation instead of repeating it per figure.
"""

from __future__ import annotations

import functools
import io
import os
import re
import sys

from repro.common import format_table
from repro.gpusim import RTX2070, V100
from repro.kernels import Tunables, measure_main_loop
from repro.models import paper_layers
from repro.perfmodel import cudnn_time, our_layer_performance

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

DEVICES = {"V100": V100, "RTX2070": RTX2070}

# The main loop's per-iteration cost is layer-independent at fixed
# tunables (same block shape, §4); a mid-size surrogate keeps the
# simulation fast.  Layer-to-layer variation in the figures comes from
# grid utilization (tail waves) and iteration counts.
from repro.perfmodel.layer_model import _SURROGATE  # noqa: E402


@functools.lru_cache(maxsize=None)
def main_loop_measurement(device_name: str, **tunable_kwargs):
    device = DEVICES[device_name]
    surrogate = _SURROGATE
    tunables = Tunables(**dict(tunable_kwargs))
    return measure_main_loop(surrogate, device=device, tunables=tunables)


@functools.lru_cache(maxsize=None)
def layer_result(layer_name: str, device_name: str):
    prob = next(p for p in paper_layers() if p.name == layer_name)
    return our_layer_performance(prob, DEVICES[device_name])


@functools.lru_cache(maxsize=None)
def cudnn_layer_time(layer_name: str, device_name: str, algo: str) -> float:
    prob = next(p for p in paper_layers() if p.name == layer_name)
    return cudnn_time(prob, DEVICES[device_name], algo)


def grid_utilization(prob, device, tunables=Tunables()):
    """Tail-wave utilization of the fused kernel's launch (Figs. 7-11)."""
    import math

    from repro.kernels import WinogradF22Kernel

    gen = WinogradF22Kernel(prob, tunables)
    blocks = gen.grid[0] * gen.grid[1]
    waves = math.ceil(blocks / device.num_sms)
    return blocks / (waves * device.num_sms)


def main_loop_tflops(layer_name: str, device_name: str, **tunable_kwargs) -> float:
    """Device-level main-loop TFLOPS for one layer (the Fig. 7-9 y-axis)."""
    prob = next(p for p in paper_layers() if p.name == layer_name)
    meas = main_loop_measurement(device_name, **tunable_kwargs)
    util = grid_utilization(prob, DEVICES[device_name],
                            Tunables(**dict(tunable_kwargs)))
    return meas.tflops * util


# Slug → title of every result emitted this run, to refuse silent
# overwrites when two distinct titles sanitize to the same filename.
_EMITTED: dict = {}


def result_slug(title: str) -> str:
    """Filesystem-safe slug for a result title (lowercase, [a-z0-9._-])."""
    slug = re.sub(r"[^a-z0-9._-]+", "_", title.lower()).strip("._-")
    return slug or "untitled"


def emit(title: str, text: str) -> None:
    """Print a result block and archive it under benchmarks/results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    slug = result_slug(title)
    previous = _EMITTED.get(slug)
    if previous is not None and previous != title:
        raise RuntimeError(
            f"benchmark result collision: titles {previous!r} and {title!r} "
            f"both slugify to {slug!r}; rename one"
        )
    _EMITTED[slug] = title
    with open(os.path.join(RESULTS_DIR, f"{slug}.txt"), "w") as fh:
        fh.write(text + "\n")


def paper_vs_measured_table(title, rows, headers=("item", "paper", "measured")):
    return format_table(list(headers), rows, title=title)
