"""Shared machinery for the reproduction benchmarks.

Each ``bench_*.py`` regenerates one of the paper's tables or figures:
it prints the same rows/series the paper reports (side by side with the
paper's values where the text gives them) and exposes the underlying
computation to pytest-benchmark.

Simulator measurements are cached at module level so a full
``pytest benchmarks/ --benchmark-only`` run re-uses each main-loop /
layer-model simulation instead of repeating it per figure.  The memo is
keyed by the canonical ``(device, Tunables)`` pair — sweeps that spell
the same configuration differently (``yield_strategy="natural"`` vs the
default) share one measurement — and can be pre-warmed through the
``benchmarks/parallel.py`` process pool (``prewarm_*`` below), with the
persistent simulation cache (``repro.kernels.get_sim_cache_stats``)
making repeated sweeps nearly free.
"""

from __future__ import annotations

import functools
import io
import os
import re
import sys

import parallel
from repro.common import format_table
from repro.gpusim import RTX2070, V100
from repro.kernels import Tunables, measure_main_loop
from repro.models import paper_layers
from repro.perfmodel import cudnn_time, our_layer_performance
from repro.perfmodel.layer_model import prime_measurement_cache

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

DEVICES = {"V100": V100, "RTX2070": RTX2070}

# The main loop's per-iteration cost is layer-independent at fixed
# tunables (same block shape, §4); a mid-size surrogate keeps the
# simulation fast.  Layer-to-layer variation in the figures comes from
# grid utilization (tail waves) and iteration counts.
from repro.perfmodel.layer_model import _SURROGATE  # noqa: E402

# (device name, Tunables) → MainLoopMeasurement.  A dict rather than an
# lru_cache so the parallel prewarm can seed it with worker results.
_MEASUREMENTS: dict = {}


def seed_main_loop_measurement(device_name: str, tunables: Tunables, meas) -> None:
    _MEASUREMENTS[(device_name, tunables)] = meas


def main_loop_measurement(device_name: str, context=None, **tunable_kwargs):
    """Memoized main-loop measurement for one (device, tunables) pair.

    *context* is the :class:`repro.runtime.ExecutionContext` supplying
    the build/simulation caches and trace spans (default: the current
    context, so existing callers are unchanged).
    """
    tunables = Tunables(**dict(tunable_kwargs))
    key = (device_name, tunables)
    if key not in _MEASUREMENTS:
        _MEASUREMENTS[key] = measure_main_loop(
            _SURROGATE, device=DEVICES[device_name], tunables=tunables,
            context=context,
        )
    return _MEASUREMENTS[key]


def prewarm_main_loop_measurements(device_name: str, variant_kwargs) -> int:
    """Fan the not-yet-measured variants out over the process pool.

    ``variant_kwargs`` is an iterable of tunable-kwargs dicts (the values
    of a sweep's ``variants`` mapping).  Distinct spellings of the same
    ``Tunables`` dedupe to one task; results seed the measurement memo
    in deterministic order.  Returns the number of tasks computed.
    """
    pending: list = []
    for kwargs in variant_kwargs:
        tunables = Tunables(**dict(kwargs))
        key = (device_name, tunables)
        if key not in _MEASUREMENTS and (device_name, tunables) not in pending:
            pending.append((device_name, tunables))
    results = parallel.parallel_map(parallel.main_loop_worker, pending)
    for (dev, tunables), meas in zip(pending, results):
        seed_main_loop_measurement(dev, tunables, meas)
    return len(pending)


def schedule_measurement(device_name: str, schedule, context=None):
    """Memoized main-loop measurement for one :class:`repro.sched.Schedule`.

    The schedule-first twin of :func:`main_loop_measurement`: figures and
    the ``repro.sched`` tuner describe configurations with the same
    vocabulary, and because a ``Schedule``'s fields are ``Tunables``
    fields, both share one memo entry per canonical configuration.
    """
    return main_loop_measurement(device_name, context=context, **schedule.to_dict())


def prewarm_schedule_measurements(device_name: str, schedules) -> int:
    """Fan not-yet-measured schedules out over the process pool."""
    return prewarm_main_loop_measurements(
        device_name, [s.to_dict() for s in schedules]
    )


def schedule_tflops(layer_name: str, device_name: str, schedule) -> float:
    """Device-level main-loop TFLOPS of one layer under one schedule."""
    return main_loop_tflops(layer_name, device_name, **schedule.to_dict())


def prewarm_layer_measurements(device_names, tunables: Tunables | None = None) -> int:
    """Fan the per-device layer-model measurement triples out in parallel."""
    tunables = tunables or Tunables()
    pending = [(name, tunables) for name in device_names]
    results = parallel.parallel_map(parallel.layer_measurements_worker, pending)
    for (name, tun), (main, overhead, overhead_fma) in zip(pending, results):
        prime_measurement_cache(name, tun, main, overhead, overhead_fma)
    return len(pending)


@functools.lru_cache(maxsize=None)
def layer_result(layer_name: str, device_name: str):
    prob = next(p for p in paper_layers() if p.name == layer_name)
    return our_layer_performance(prob, DEVICES[device_name])


@functools.lru_cache(maxsize=None)
def cudnn_layer_time(layer_name: str, device_name: str, algo: str) -> float:
    prob = next(p for p in paper_layers() if p.name == layer_name)
    return cudnn_time(prob, DEVICES[device_name], algo)


def grid_utilization(prob, device, tunables: Tunables | None = None):
    """Tail-wave utilization of the fused kernel's launch (Figs. 7-11)."""
    import math

    tunables = tunables or Tunables()

    from repro.kernels import WinogradF22Kernel

    gen = WinogradF22Kernel(prob, tunables)
    blocks = gen.grid[0] * gen.grid[1]
    waves = math.ceil(blocks / device.num_sms)
    return blocks / (waves * device.num_sms)


def main_loop_tflops(layer_name: str, device_name: str, **tunable_kwargs) -> float:
    """Device-level main-loop TFLOPS for one layer (the Fig. 7-9 y-axis)."""
    prob = next(p for p in paper_layers() if p.name == layer_name)
    meas = main_loop_measurement(device_name, **tunable_kwargs)
    util = grid_utilization(prob, DEVICES[device_name],
                            Tunables(**dict(tunable_kwargs)))
    return meas.tflops * util


# Slug → title of every result emitted this run, to refuse silent
# overwrites when two distinct titles sanitize to the same filename.
_EMITTED: dict = {}


def result_slug(title: str) -> str:
    """Filesystem-safe slug for a result title (lowercase, [a-z0-9._-])."""
    slug = re.sub(r"[^a-z0-9._-]+", "_", title.lower()).strip("._-")
    return slug or "untitled"


def emit(title: str, text: str) -> None:
    """Print a result block and archive it under benchmarks/results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    slug = result_slug(title)
    previous = _EMITTED.get(slug)
    if previous is not None and previous != title:
        raise RuntimeError(
            f"benchmark result collision: titles {previous!r} and {title!r} "
            f"both slugify to {slug!r}; rename one"
        )
    _EMITTED[slug] = title
    with open(os.path.join(RESULTS_DIR, f"{slug}.txt"), "w") as fh:
        fh.write(text + "\n")


def paper_vs_measured_table(title, rows, headers=("item", "paper", "measured")):
    return format_table(list(headers), rows, title=title)
