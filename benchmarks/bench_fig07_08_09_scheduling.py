"""Figures 7-9: the SASS-level scheduling studies.

Main-loop throughput (device TFLOPS; the y-axis ceiling is the FP32
peak) on the 16 ResNet layer points under:

* Fig. 7 — yield-flag strategies {cuDNN, NVCC, Natural} (paper: Natural
  ≈1.09×/1.11× over the compiler heuristics);
* Fig. 8 — LDG interleave distance {2, 4, 8} (paper: LDG8 up to 1.24×);
* Fig. 9 — STS interleave distance {2, 4, 6} (paper: STS6 ≈ +2%).

The per-iteration main-loop cost is measured on the simulated RTX 2070
SM per configuration; the per-layer series applies each layer's grid
(tail-wave) utilization, which is what differentiates layers in the
paper's plots.
"""

import pytest
from harness import (
    emit,
    main_loop_measurement,
    main_loop_tflops,
    prewarm_main_loop_measurements,
)

from repro.common import format_grid
from repro.models import paper_layers

LAYERS = [p.name for p in paper_layers()]


def _sweep(variants: dict):
    # Fan the independent per-strategy measurements out across the
    # process pool first (serial fallback on one core); the per-layer
    # loop below then only applies grid utilization to memoized results.
    prewarm_main_loop_measurements("RTX2070", variants.values())
    series = {}
    for label, kwargs in variants.items():
        series[label] = [
            main_loop_tflops(layer, "RTX2070", **kwargs) for layer in LAYERS
        ]
    return series


def _emit_figure(name, title, series, paper_claim):
    rows = [[f"{v:.2f}" for v in vals] for vals in series.values()]
    text = format_grid(list(series.keys()), LAYERS, rows, title=title)
    text += f"\n{paper_claim}"
    emit(name, text)
    return series


def test_fig07_yield_strategies(benchmark):
    variants = {
        "cuDNN": dict(yield_strategy="cudnn7"),
        "NVCC": dict(yield_strategy="nvcc8"),
        "Natural": dict(yield_strategy="natural"),
    }
    series = benchmark.pedantic(_sweep, args=(variants,), rounds=1, iterations=1)
    nat = main_loop_measurement("RTX2070", yield_strategy="natural")
    nv = main_loop_measurement("RTX2070", yield_strategy="nvcc8")
    cd = main_loop_measurement("RTX2070", yield_strategy="cudnn7")
    claim = (
        f"Natural over NVCC: {nv.cycles_per_iter / nat.cycles_per_iter:.3f}x "
        f"(paper 1.09x); over cuDNN: "
        f"{cd.cycles_per_iter / nat.cycles_per_iter:.3f}x (paper 1.11x)"
    )
    _emit_figure("fig07_yield", "Figure 7: main-loop TFLOPS by yield strategy "
                 "(RTX2070)", series, claim)
    assert nat.cycles_per_iter < nv.cycles_per_iter
    assert nat.cycles_per_iter < cd.cycles_per_iter


def test_fig08_ldg_interleave(benchmark):
    variants = {f"LDG{n}": dict(ldg_interleave=n) for n in (2, 4, 8)}
    series = benchmark.pedantic(_sweep, args=(variants,), rounds=1, iterations=1)
    l2 = main_loop_measurement("RTX2070", ldg_interleave=2)
    l8 = main_loop_measurement("RTX2070", ldg_interleave=8)
    claim = (
        f"LDG8 over LDG2: {l2.cycles_per_iter / l8.cycles_per_iter:.3f}x "
        "(paper: up to 1.24x)"
    )
    _emit_figure("fig08_ldg", "Figure 8: main-loop TFLOPS by LDG scheduling "
                 "(RTX2070)", series, claim)
    assert l2.cycles_per_iter > l8.cycles_per_iter * 1.05


def test_fig09_sts_interleave(benchmark):
    variants = {f"STS{n}": dict(sts_interleave=n) for n in (2, 4, 6)}
    series = benchmark.pedantic(_sweep, args=(variants,), rounds=1, iterations=1)
    s2 = main_loop_measurement("RTX2070", sts_interleave=2)
    s6 = main_loop_measurement("RTX2070", sts_interleave=6)
    ratio = s2.cycles_per_iter / s6.cycles_per_iter
    claim = f"STS6 over STS2: {ratio:.3f}x (paper: ~1.02x)"
    _emit_figure("fig09_sts", "Figure 9: main-loop TFLOPS by STS scheduling "
                 "(RTX2070)", series, claim)
    # The paper's effect is ~2%; assert ours stays in a sane band.
    assert 0.95 < ratio < 1.10


if __name__ == "__main__":
    for layer in LAYERS[:4]:
        print(layer, f"{main_loop_tflops(layer, 'RTX2070'):.2f} TFLOPS")
