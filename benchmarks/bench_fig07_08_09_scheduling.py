"""Figures 7-9: the SASS-level scheduling studies.

Main-loop throughput (device TFLOPS; the y-axis ceiling is the FP32
peak) on the 16 ResNet layer points under:

* Fig. 7 — yield-flag strategies {cuDNN, NVCC, Natural} (paper: Natural
  ≈1.09×/1.11× over the compiler heuristics);
* Fig. 8 — LDG interleave distance {2, 4, 8} (paper: LDG8 up to 1.24×);
* Fig. 9 — STS interleave distance {2, 4, 6} (paper: STS6 ≈ +2%).

Each figure is one axis of the ``repro.sched`` schedule space
(``DEFAULT_SPACE.axis_variants``), measured through the same
``Schedule`` → ``Tunables`` → simulator path the successive-halving
tuner scores candidates with — figures and tuner share one vocabulary
and one measurement cache.  The per-layer series applies each layer's
grid (tail-wave) utilization, which is what differentiates layers in
the paper's plots.
"""

import pytest
from harness import (
    emit,
    prewarm_schedule_measurements,
    schedule_measurement,
    schedule_tflops,
)

from repro.common import format_grid
from repro.models import paper_layers
from repro.sched import DEFAULT_SPACE, PAPER_SCHEDULE, QUICK_SPACE

LAYERS = [p.name for p in paper_layers()]


def _sweep(variants: dict):
    # Fan the independent per-schedule measurements out across the
    # process pool first (serial fallback on one core); the per-layer
    # loop below then only applies grid utilization to memoized results.
    prewarm_schedule_measurements("RTX2070", variants.values())
    series = {}
    for label, schedule in variants.items():
        series[label] = [
            schedule_tflops(layer, "RTX2070", schedule) for layer in LAYERS
        ]
    return series


def _emit_figure(name, title, series, paper_claim):
    rows = [[f"{v:.2f}" for v in vals] for vals in series.values()]
    text = format_grid(list(series.keys()), LAYERS, rows, title=title)
    text += f"\n{paper_claim}"
    emit(name, text)
    return series


def _cycles(schedule) -> float:
    return schedule_measurement("RTX2070", schedule).cycles_per_iter


def test_fig07_yield_strategies(benchmark):
    axis = DEFAULT_SPACE.axis_variants("yield_strategy")
    variants = {
        "cuDNN": axis["yield=cudnn7"],
        "NVCC": axis["yield=nvcc8"],
        "Natural": axis["yield=natural"],
    }
    series = benchmark.pedantic(_sweep, args=(variants,), rounds=1, iterations=1)
    nat, nv, cd = (_cycles(variants[k]) for k in ("Natural", "NVCC", "cuDNN"))
    claim = (
        f"Natural over NVCC: {nv / nat:.3f}x (paper 1.09x); "
        f"over cuDNN: {cd / nat:.3f}x (paper 1.11x)"
    )
    _emit_figure("fig07_yield", "Figure 7: main-loop TFLOPS by yield strategy "
                 "(RTX2070)", series, claim)
    assert nat < nv
    assert nat < cd


def test_fig08_ldg_interleave(benchmark):
    variants = DEFAULT_SPACE.axis_variants("ldg_interleave")
    series = benchmark.pedantic(_sweep, args=(variants,), rounds=1, iterations=1)
    l2, l8 = _cycles(variants["ldg2"]), _cycles(variants["ldg8"])
    claim = f"LDG8 over LDG2: {l2 / l8:.3f}x (paper: up to 1.24x)"
    _emit_figure("fig08_ldg", "Figure 8: main-loop TFLOPS by LDG scheduling "
                 "(RTX2070)", series, claim)
    assert l2 > l8 * 1.05


def test_fig09_sts_interleave(benchmark):
    variants = DEFAULT_SPACE.axis_variants("sts_interleave")
    series = benchmark.pedantic(_sweep, args=(variants,), rounds=1, iterations=1)
    s2, s6 = _cycles(variants["sts2"]), _cycles(variants["sts6"])
    ratio = s2 / s6
    claim = f"STS6 over STS2: {ratio:.3f}x (paper: ~1.02x)"
    _emit_figure("fig09_sts", "Figure 9: main-loop TFLOPS by STS scheduling "
                 "(RTX2070)", series, claim)
    # The paper's effect is ~2%; assert ours stays in a sane band.
    assert 0.95 < ratio < 1.10


@pytest.mark.slow
def test_schedule_search_agrees_with_figures(benchmark):
    """The tuner's winner is the schedule the figures argue for."""
    from repro.gpusim import RTX2070
    from repro.runtime import ExecutionContext
    from repro.sched import SearchBudget, paper_ordering, successive_halving

    ctx = ExecutionContext(device=RTX2070)
    result = benchmark.pedantic(
        successive_halving,
        args=(QUICK_SPACE, RTX2070),
        kwargs=dict(budget=SearchBudget(max_rungs=2), context=ctx),
        rounds=1, iterations=1,
    )
    ordering = paper_ordering(result)
    lines = ["Schedule search vs Figures 7-9 (RTX2070, quick space)",
             f"winner: {result.best.schedule.label()} "
             f"({result.evaluations} evaluations, "
             f"{result.lint_gated} candidates lint-gated)"]
    lines += [f"{k}: {v:.4f}x" for k, v in ordering.items() if k != "anchor"]
    emit("sched_search", "\n".join(lines))
    assert result.best.schedule == PAPER_SCHEDULE
    assert ordering["ldg8_over_ldg2"] > 1.05
    assert ordering["natural_over_nvcc8"] > 1.0
    assert ordering["natural_over_cudnn7"] > 1.0


if __name__ == "__main__":
    for layer in LAYERS[:4]:
        print(layer, f"{schedule_tflops(layer, 'RTX2070', PAPER_SCHEDULE):.2f} TFLOPS")
