"""Wall-clock benchmark for the simulator fast path.

Times the two CI-critical simulation workloads end to end, cold and
warm, and writes ``BENCH_simspeed_<engine>.json`` next to the other
benchmark artifacts so the speedup is tracked in CI like the cycle
baselines:

* ``perf_regression`` — the quick schedule-search gate
  (``benchmarks/perf_regression.py --quick``);
* ``fig07_08_09`` — the Fig. 7-9 scheduling sweeps
  (``benchmarks/bench_fig07_08_09_scheduling.py``).

Each run happens in a fresh subprocess.  *Cold* points the two-tier
simulation cache at an empty directory, so every kernel is built,
linted, decoded and simulated from scratch; *warm* repeats the run
against the now-populated cache.  ``--engines fast,reference`` also
times the per-cycle reference loop and reports the cold speedup ratio
(the fast engine is the default everywhere; the reference loop remains
the equivalence oracle).

Usage::

    python benchmarks/bench_simspeed.py                    # fast engine
    python benchmarks/bench_simspeed.py --engines fast,reference
    python benchmarks/bench_simspeed.py --skip-fig         # quickest
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

PATHS = {
    "perf_regression": [
        sys.executable, "benchmarks/perf_regression.py", "--quick",
    ],
    "fig07_08_09": [
        sys.executable, "-m", "pytest",
        "benchmarks/bench_fig07_08_09_scheduling.py",
        "-q", "-p", "no:cacheprovider", "--benchmark-disable",
    ],
}


def _timed_run(cmd: list[str], env: dict[str, str]) -> float:
    t0 = time.perf_counter()
    proc = subprocess.run(
        cmd, cwd=ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    elapsed = time.perf_counter() - t0
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout.decode(errors="replace"))
        raise SystemExit(f"{' '.join(cmd)} exited {proc.returncode}")
    return elapsed


def measure_engine(engine: str, path_names: list[str]) -> dict:
    measurements: dict[str, dict[str, float]] = {}
    for name in path_names:
        with tempfile.TemporaryDirectory(prefix=f"simspeed-{name}-") as cache:
            env = os.environ.copy()
            env["PYTHONPATH"] = "src"
            env["REPRO_SIM_ENGINE"] = engine
            env["REPRO_SIM_CACHE_DIR"] = cache
            cold = _timed_run(PATHS[name], env)
            warm = _timed_run(PATHS[name], env)
        measurements[name] = {
            "cold_s": round(cold, 3), "warm_s": round(warm, 3),
        }
        print(f"{engine:>9s} {name}: cold {cold:6.2f}s  warm {warm:6.2f}s")
    return measurements


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--engines", default="fast",
        help="comma-separated REPRO_SIM_ENGINE values to time",
    )
    parser.add_argument(
        "--skip-fig", action="store_true",
        help="time only the perf_regression path",
    )
    parser.add_argument("--out-dir", default=RESULTS_DIR)
    args = parser.parse_args(argv)

    path_names = ["perf_regression"]
    if not args.skip_fig:
        path_names.append("fig07_08_09")

    engines = [e.strip() for e in args.engines.split(",") if e.strip()]
    by_engine = {e: measure_engine(e, path_names) for e in engines}

    os.makedirs(args.out_dir, exist_ok=True)
    for engine, measurements in by_engine.items():
        payload = {"engine": engine, "paths": measurements}
        if engine != "reference" and "reference" in by_engine:
            payload["cold_speedup_vs_reference"] = {
                name: round(
                    by_engine["reference"][name]["cold_s"]
                    / measurements[name]["cold_s"],
                    2,
                )
                for name in measurements
            }
        out = os.path.join(args.out_dir, f"BENCH_simspeed_{engine}.json")
        with open(out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
