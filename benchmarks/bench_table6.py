"""Table 6: speedup of our kernel over cuDNN's Winograd convolution.

Our side is the simulator-driven layer model; the cuDNN side is the
Table-2-anchored baseline (DESIGN.md §2).  Paper: up to 2.65× / avg
1.96× on RTX2070, up to 2.13× / avg 1.5× on V100, with Conv5 the
biggest win and Turing beating Volta across the board.
"""

from harness import cudnn_layer_time, emit, layer_result

from repro.common import format_table
from repro.models import paper_layers
from repro.perfmodel import PAPER_TABLE6

LAYERS = [p.name for p in paper_layers()]


def speedups(device_name):
    out = {}
    for layer in LAYERS:
        ours = layer_result(layer, device_name).time_s
        cudnn = cudnn_layer_time(layer, device_name, "WINOGRAD")
        out[layer] = cudnn / ours
    return out


def _run():
    rows = []
    result = {}
    for device in ("RTX2070", "V100"):
        s = speedups(device)
        result[device] = s
        for layer in LAYERS:
            rows.append((device, layer, PAPER_TABLE6[device][layer], s[layer]))
    text = format_table(
        ["device", "layer", "paper", "measured"], rows,
        title="Table 6: speedup over cuDNN's Winograd convolution",
    )
    avg_r = sum(result["RTX2070"].values()) / 16
    avg_v = sum(result["V100"].values()) / 16
    text += (
        f"\naverages: RTX2070 {avg_r:.2f}x (paper 1.96x), "
        f"V100 {avg_v:.2f}x (paper 1.5x)"
    )
    emit("table6", text)
    return result


def test_table6(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    for device in ("RTX2070", "V100"):
        s = result[device]
        assert all(v > 1.0 for v in s.values()), device
        # Conv5 dominates (§7.1).
        conv5 = sum(s[f"Conv5N{n}"] for n in (32, 64, 96, 128)) / 4
        conv3 = sum(s[f"Conv3N{n}"] for n in (32, 64, 96, 128)) / 4
        assert conv5 > conv3
    avg_r = sum(result["RTX2070"].values()) / 16
    avg_v = sum(result["V100"].values()) / 16
    assert avg_r > avg_v  # Turing speedups exceed Volta's


if __name__ == "__main__":
    _run()
