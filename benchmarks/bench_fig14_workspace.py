"""Figure 14: workspace (MB) required by each algorithm.

Regenerated from this library's allocation formulas (the closed forms of
the implementations' ``workspace_bytes``), printed against the paper's
cell values.  Exact agreement is expected for explicit GEMM (im2col is
im2col) and for our kernel's 16·K·C filter workspace (0.25/1/4/16 MB);
FFT and non-fused Winograd agree in magnitude but not byte-for-byte
(cuDNN's padding differs).
"""

from harness import emit

from repro.common import format_table
from repro.models import paper_layers
from repro.perfmodel import (
    ALGO_ORDER,
    PAPER_FIG14_WORKSPACE_MB,
    workspace_mb,
)

LAYERS = [p.name for p in paper_layers()]


def grid():
    out = {}
    for prob in paper_layers():
        out[prob.name] = {
            algo: workspace_mb(prob, algo) for algo in ALGO_ORDER
        } | {"OURS": workspace_mb(prob, "OURS")}
    return out


def _run():
    data = grid()
    rows = []
    for layer in LAYERS:
        for algo in ALGO_ORDER:
            paper = PAPER_FIG14_WORKSPACE_MB[layer][ALGO_ORDER.index(algo)]
            rows.append((layer, algo, paper, data[layer][algo]))
        rows.append((layer, "OURS", "-", data[layer]["OURS"]))
    text = format_table(
        ["layer", "algorithm", "paper MB", "measured MB"], rows,
        title="Figure 14: workspace required per algorithm (MB)",
    )
    emit("fig14_workspace", text)
    return data


def test_fig14_workspace(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)
    # Exact matches where the formula is forced: explicit GEMM and ours.
    for layer in LAYERS:
        paper_gemm = PAPER_FIG14_WORKSPACE_MB[layer][ALGO_ORDER.index("GEMM")]
        assert abs(data[layer]["GEMM"] - paper_gemm) / paper_gemm < 0.01
        assert data[layer]["IMPLICIT_GEMM"] == 0.0
    assert data["Conv2N32"]["OURS"] == 0.25
    assert data["Conv5N32"]["OURS"] == 16.0
    # Orders of magnitude: FFT/ FFT_TILING dwarf everything on Conv5.
    assert data["Conv5N128"]["FFT_TILING"] > data["Conv5N128"]["GEMM"]


if __name__ == "__main__":
    _run()
