"""Static pre-simulation pruning: how much search budget it saves.

Runs the successive-halving schedule search twice on fresh contexts —
once with ``SearchBudget.prune_margin`` enabled, once without — and
reports what the static pruner bought: candidates dropped before any
simulation, simulator evaluations avoided, and wall-clock saved.

The run doubles as a safety gate:

* the pruned search must find the **same winner** as the full search
  (pruning may only drop losers);
* the known-best schedule (:data:`repro.sched.PAPER_SCHEDULE`) must
  never be pruned;
* with the default margin the pruner must actually prune something on
  the full space (the 1.05 margin separates the ``natural`` yield
  candidates, all within ~1.02x of the statically cheapest, from the
  ``nvcc8``/``cudnn7`` ablations at >= 1.07x) — if nothing is prunable
  the run says so and still passes.

Any violated invariant exits non-zero, so CI can run this as a gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_prune.py            # full space
    PYTHONPATH=src python benchmarks/bench_prune.py --quick
    PYTHONPATH=src python benchmarks/bench_prune.py --margin 1.02
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.gpusim import DEVICES
from repro.runtime import ExecutionContext
from repro.sched import (
    DEFAULT_SPACE,
    PAPER_SCHEDULE,
    QUICK_SPACE,
    SearchBudget,
    successive_halving,
)

#: Empirical margin for DEFAULT_SPACE (see module docstring): keeps all
#: ``natural`` candidates, prunes the yield-strategy ablations.
DEFAULT_MARGIN = 1.05


def _search(space, device, budget):
    ctx = ExecutionContext(device=device)
    start = time.perf_counter()
    result = successive_halving(space, device, budget=budget, context=ctx)
    return result, time.perf_counter() - start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--device", default="RTX2070", choices=sorted(DEVICES),
                        help="simulated device (default: RTX2070)")
    parser.add_argument("--quick", action="store_true",
                        help="QUICK_SPACE + 2 rungs instead of the full grid")
    parser.add_argument("--margin", type=float, default=DEFAULT_MARGIN,
                        help=f"static prune margin (default: {DEFAULT_MARGIN})")
    parser.add_argument("--out-dir", default=os.path.join(
                            os.path.dirname(__file__), "results"),
                        help="where BENCH_*.json lands (default: results/)")
    args = parser.parse_args(argv)

    device = DEVICES[args.device]
    space = QUICK_SPACE if args.quick else DEFAULT_SPACE
    max_rungs = 2 if args.quick else 3
    base = SearchBudget(max_rungs=max_rungs)
    pruning = SearchBudget(max_rungs=max_rungs, prune_margin=args.margin)

    print(f"searching {len(space)} schedules on {device.name} "
          f"with and without static pruning (margin {args.margin})...")
    pruned_result, pruned_secs = _search(space, device, pruning)
    full_result, full_secs = _search(space, device, base)

    failures: list[str] = []
    best_full = full_result.best.schedule.label()
    best_pruned = pruned_result.best.schedule.label()
    if best_full != best_pruned:
        failures.append(
            f"winner changed under pruning: {best_full} -> {best_pruned}"
        )
    known_best = PAPER_SCHEDULE.label()
    if known_best in pruned_result.pruned:
        failures.append(f"known-best schedule {known_best} was pruned")
    if best_full != known_best:
        failures.append(
            f"full search winner {best_full} is not the known best "
            f"{known_best} (regression upstream of the pruner)"
        )

    saved_evals = full_result.evaluations - pruned_result.evaluations
    saved_secs = full_secs - pruned_secs
    print(f"pruned {len(pruned_result.pruned)}/{len(space)} candidates "
          f"before rung 0")
    if pruned_result.pruned:
        print("  " + ", ".join(pruned_result.pruned))
    else:
        print("  none prunable at this margin")
    print(f"evaluations: {full_result.evaluations} -> "
          f"{pruned_result.evaluations} ({saved_evals} avoided)")
    print(f"wall-clock:  {full_secs:.1f}s -> {pruned_secs:.1f}s "
          f"({saved_secs:+.1f}s, both cold caches)")
    print(f"winner:      {best_pruned} (both runs)")

    payload = {
        "device": args.device,
        "space": full_result.space_signature,
        "margin": args.margin,
        "winner_full": best_full,
        "winner_pruned": best_pruned,
        "pruned": pruned_result.pruned,
        "evaluations_full": full_result.evaluations,
        "evaluations_pruned": pruned_result.evaluations,
        "seconds_full": round(full_secs, 3),
        "seconds_pruned": round(pruned_secs, 3),
        "failures": failures,
    }
    os.makedirs(args.out_dir, exist_ok=True)
    out = os.path.join(args.out_dir, f"BENCH_prune_{args.device.lower()}.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {out}")

    if failures:
        print("\nPRUNE GATE FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("prune gate OK: pruning changed nothing but the cost")
    return 0


if __name__ == "__main__":
    sys.exit(main())
