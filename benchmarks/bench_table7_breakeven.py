"""Table 7 (kernel parameters) and the §8.1 break-even analysis.

Table 7 compares our kernel's resource configuration against cuDNN's;
both columns come from the actual kernel generators, not hand-typed
constants.  The break-even bench sweeps K and reports where the fused
F(2×2) and non-fused F(4×4) models cross (paper: K = 129 on V100,
K = 127 on RTX2070 with its sheet peak).
"""

from harness import emit

from repro.common import ConvProblem, format_table
from repro.gpusim import RTX2070, V100
from repro.kernels import Tunables, WinogradF22Kernel
from repro.perfmodel import break_even_k, faster_variant

PROB = ConvProblem(n=32, c=64, h=28, w=28, k=64)


def table7_rows():
    ours = WinogradF22Kernel(PROB, Tunables(bk=64))
    cudnn_like = WinogradF22Kernel(
        ConvProblem(n=32, c=64, h=28, w=28, k=64), Tunables(bk=32)
    )
    rows = [
        ("(bk, bn, bc)", "(64, 32, 8)", "(32, 32, 8)"),
        ("Threads per block", 256, 256),
        ("SMEM per block (KB)", ours.smem_bytes // 1024,
         "48 (cuDNN)  /  " + str(cudnn_like.smem_bytes // 1024) + " (our bk=32 model)"),
        ("Registers per thread", ours.num_regs, "126 (cuDNN)"),
        ("Registers per block", ours.num_regs * 256, 126 * 256),
    ]
    return rows


def breakeven_rows():
    rows = []
    for dev, paper_k in ((V100, 129), (RTX2070, 127)):
        k_star = break_even_k(dev)
        rows.append((dev.name, paper_k, k_star))
    return rows


def test_table7(benchmark):
    rows = benchmark.pedantic(table7_rows, rounds=1, iterations=1)
    text = format_table(
        ["Parameter", "Ours", "cuDNN's"], rows,
        title="Table 7: kernel parameters (ours vs cuDNN 7.6.1 Winograd)",
    )
    emit("table7", text)
    assert rows[3][1] == 253  # the full Table-5 budget


def test_breakeven(benchmark):
    rows = benchmark.pedantic(breakeven_rows, rounds=1, iterations=1)
    text = format_table(
        ["device", "paper K*", "model K*"], rows,
        title="Section 8.1: fused-vs-nonfused break-even filter count",
    )
    # Verify the flip around the crossover on V100.
    below = ConvProblem(n=32, c=64, h=28, w=28, k=96)
    above = ConvProblem(n=32, c=64, h=28, w=28, k=256)
    text += (
        f"\nK=96 → {faster_variant(below, V100)}; "
        f"K=256 → {faster_variant(above, V100)}"
    )
    emit("breakeven", text)
    assert abs(rows[0][2] - 129) < 3
    assert abs(rows[1][2] - 127) < 6
    assert faster_variant(below, V100) == "fused_f2x2"
    assert faster_variant(above, V100) == "nonfused_f4x4"


if __name__ == "__main__":
    print(table7_rows())
    print(breakeven_rows())
