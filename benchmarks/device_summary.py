"""Render a device × tile-family summary table from perf-gate artifacts.

Reads every ``BENCH_sched_regression_<device>.json`` the perf gate wrote
(see ``perf_regression.py``) and emits a GitHub-flavored markdown table
of each device's winning schedule and its simulated main-loop
cycles-per-iteration, per tile family — the nightly workflow appends it
to ``$GITHUB_STEP_SUMMARY``.

Usage::

    python benchmarks/device_summary.py benchmarks/results/BENCH_sched_regression_*.json
    python benchmarks/device_summary.py --dir benchmarks/results
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys


def load_rows(paths: list[str]) -> list[dict]:
    rows = []
    for path in sorted(paths):
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        device = payload.get("device", os.path.basename(path))
        profile = payload.get("profile", "?")
        for family, fam in sorted(payload.get("families", {}).items()):
            winner = fam.get("winner", "?")
            cycles = fam.get("metrics", {}).get(winner)
            rows.append({
                "device": device,
                "profile": profile,
                "family": family,
                "winner": winner,
                "cycles": cycles,
                "metrics": len(fam.get("metrics", {})),
            })
    return rows


def render(rows: list[dict]) -> str:
    lines = [
        "## Schedule search, device × tile family",
        "",
        "| device | profile | family | winner | cycles/iter | gated metrics |",
        "|---|---|---|---|---:|---:|",
    ]
    for row in rows:
        cycles = f"{row['cycles']:.0f}" if row["cycles"] is not None else "?"
        lines.append(
            f"| {row['device']} | {row['profile']} | {row['family']} "
            f"| `{row['winner']}` | {cycles} | {row['metrics']} |"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("paths", nargs="*",
                        help="BENCH_sched_regression_*.json files")
    parser.add_argument("--dir", default=None,
                        help="glob BENCH_sched_regression_*.json under this "
                             "directory instead of listing paths")
    args = parser.parse_args(argv)

    paths = list(args.paths)
    if args.dir:
        paths.extend(glob.glob(
            os.path.join(args.dir, "BENCH_sched_regression_*.json")
        ))
    if not paths:
        print("error: no BENCH_sched_regression_*.json inputs",
              file=sys.stderr)
        return 1
    print(render(load_rows(paths)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
