"""CI driver for the `sass-lint` job: lint every shipped kernel.

Assembles the generated winograd_f22 (full kernel and main-loop
microbenchmark variant, across the tunables the benchmarks sweep), the
batched GEMM and the filter-transform kernels, runs the static analyzer
on each, prints the text reports, writes the ``--json`` reports to a
directory for the CI artifact, and exits non-zero if any kernel has an
error-severity diagnostic.

Usage::

    PYTHONPATH=src python benchmarks/lint_kernels.py [--json-dir DIR]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.common.problem import ConvProblem
from repro.kernels.ftf import FilterTransformKernel
from repro.kernels.gemm import BatchedGemmKernel
from repro.kernels.winograd_f22 import Tunables, WinogradF22Kernel
from repro.sass.analysis import errors, lint_kernel, render_json, render_text

PROB = ConvProblem(n=32, c=64, h=28, w=28, k=64)

TUNABLE_SWEEP = [
    ("default", Tunables()),
    ("nvcc8", Tunables(yield_strategy="nvcc8")),
    ("cudnn7", Tunables(yield_strategy="cudnn7")),
    ("tile_major", Tunables(smem_layout="tile_major")),
    ("bk32", Tunables(bk=32)),
    ("no_p2r", Tunables(use_p2r=False)),
]


def shipped_kernels():
    for label, tunables in TUNABLE_SWEEP:
        yield (
            f"winograd_f22[{label}]",
            WinogradF22Kernel(PROB, tunables).build(),
        )
        yield (
            f"winograd_f22_main_loop[{label}]",
            WinogradF22Kernel(PROB, tunables).build(
                main_loop_only=True, iters=2
            ),
        )
    yield "batched_gemm", BatchedGemmKernel(16, 64, 32, 16).build()
    yield "ftf", FilterTransformKernel(PROB).build()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json-dir", default=None,
                        help="write one <kernel>.json report per kernel")
    args = parser.parse_args(argv)

    json_dir = None
    if args.json_dir:
        json_dir = pathlib.Path(args.json_dir)
        json_dir.mkdir(parents=True, exist_ok=True)

    failed = []
    for name, kernel in shipped_kernels():
        diagnostics = lint_kernel(kernel)
        print(render_text(diagnostics, kernel_name=name))
        print()
        if json_dir is not None:
            safe = name.replace("[", ".").replace("]", "")
            (json_dir / f"{safe}.json").write_text(
                render_json(diagnostics, kernel_name=name) + "\n"
            )
        if errors(diagnostics):
            failed.append(name)

    if failed:
        print(f"FAIL: error-severity diagnostics in: {', '.join(failed)}")
        return 1
    print("OK: all shipped kernels lint clean of errors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
