"""CI driver for the `sass-lint` job: lint every shipped kernel.

Assembles the generated winograd_f22 and winograd_f44 kernels (full
kernel and main-loop microbenchmark variant; f22 across the tunables
the benchmarks sweep), the batched GEMM and the filter-transform
kernels, **plus the main-loop kernel of every candidate in both
schedule-search spaces** (the 54-point ``DEFAULT_SPACE`` grid and the
27-point ``F44_SPACE`` the autotuner walks per family), runs the static analyzer
on each, prints the text reports, writes the ``--json`` reports to a
directory for the CI artifact, and exits non-zero if any kernel has a
diagnostic at or above ``--fail-on`` severity (default: ``error``).

Usage::

    PYTHONPATH=src python benchmarks/lint_kernels.py [--json-dir DIR]
    PYTHONPATH=src python benchmarks/lint_kernels.py --no-space   # faster
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.common.problem import ConvProblem
from repro.kernels.ftf import FilterTransformKernel
from repro.kernels.gemm import BatchedGemmKernel
from repro.kernels.winograd_f22 import Tunables, WinogradF22Kernel
from repro.kernels.winograd_fused import WinogradF44Kernel, default_tunables
from repro.sass.analysis import (
    Severity,
    lint_kernel,
    max_severity,
    render_json,
    render_text,
)
from repro.sched import DEFAULT_SPACE, F44_SPACE

PROB = ConvProblem(n=32, c=64, h=28, w=28, k=64)

TUNABLE_SWEEP = [
    ("default", Tunables()),
    ("nvcc8", Tunables(yield_strategy="nvcc8")),
    ("cudnn7", Tunables(yield_strategy="cudnn7")),
    ("tile_major", Tunables(smem_layout="tile_major")),
    ("bk32", Tunables(bk=32)),
    ("no_p2r", Tunables(use_p2r=False)),
]


def shipped_kernels():
    for label, tunables in TUNABLE_SWEEP:
        yield (
            f"winograd_f22[{label}]",
            WinogradF22Kernel(PROB, tunables).build(),
        )
        yield (
            f"winograd_f22_main_loop[{label}]",
            WinogradF22Kernel(PROB, tunables).build(
                main_loop_only=True, iters=2
            ),
        )
    f44 = default_tunables("f44")
    yield "winograd_f44[default]", WinogradF44Kernel(PROB, f44).build()
    yield (
        "winograd_f44_main_loop[default]",
        WinogradF44Kernel(PROB, f44).build(main_loop_only=True, iters=2),
    )
    yield "batched_gemm", BatchedGemmKernel(16, 64, 32, 16).build()
    yield "ftf", FilterTransformKernel(PROB).build()


def space_kernels():
    """Main-loop kernels for every autotuner candidate.

    The schedule search lint-gates candidates lazily on each run; this
    sweep is the eager CI version, so a pass regression that only trips
    on (say) ``db1`` single-buffering fails the lint job, not a user's
    search.
    """
    for schedule in DEFAULT_SPACE.candidates():
        yield (
            f"sched[{schedule.label()}]",
            WinogradF22Kernel(PROB, schedule.to_tunables()).build(
                main_loop_only=True, iters=2
            ),
        )
    # the F(4×4,3×3) family searches its own (smaller) space
    for schedule in F44_SPACE.candidates():
        yield (
            f"sched_f44[{schedule.label()}]",
            WinogradF44Kernel(PROB, schedule.to_tunables(tile="f44")).build(
                main_loop_only=True, iters=2
            ),
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json-dir", default=None,
                        help="write one <kernel>.json report per kernel")
    parser.add_argument("--fail-on", choices=["error", "warning"],
                        default="error",
                        help="lowest severity that fails the job "
                             "(default: error)")
    parser.add_argument("--no-space", action="store_true",
                        help="skip the 54-candidate schedule-space sweep")
    args = parser.parse_args(argv)

    json_dir = None
    if args.json_dir:
        json_dir = pathlib.Path(args.json_dir)
        json_dir.mkdir(parents=True, exist_ok=True)

    threshold = Severity(args.fail_on)
    kernels = list(shipped_kernels())
    if not args.no_space:
        kernels.extend(space_kernels())

    failed = []
    for name, kernel in kernels:
        diagnostics = lint_kernel(kernel)
        print(render_text(diagnostics, kernel_name=name))
        print()
        if json_dir is not None:
            safe = name.replace("[", ".").replace("]", "").replace("/", "_")
            (json_dir / f"{safe}.json").write_text(
                render_json(diagnostics, kernel_name=name) + "\n"
            )
        worst = max_severity(diagnostics)
        if worst is not None and worst.rank >= threshold.rank:
            failed.append(name)

    if failed:
        print(f"FAIL: {args.fail_on}-severity diagnostics in: "
              f"{', '.join(failed)}")
        return 1
    print(f"OK: all {len(kernels)} kernels lint clean at "
          f"{args.fail_on} severity")
    return 0


if __name__ == "__main__":
    sys.exit(main())
