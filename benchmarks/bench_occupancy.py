"""§7.1's occupancy argument, simulated.

"The shared memory of V100 can be configured to 96KB, while the shared
memory on RTX2070 is limited to 64KB.  cuDNN's Winograd convolution
needs 48KB shared memory per block.  Each SM can hold 2 thread blocks
on V100 but only 1 on RTX2070.  More concurrent thread blocks give the
warp scheduler chance to switch to other warps to hide latency."

This bench measures exactly that with the bk=32 (cuDNN-like) kernel:
the same main loop with one vs two resident blocks per SM.  The
per-SM-throughput ratio is the simulated counterpart of the single
Turing-degradation constant (1.30) the cuDNN baseline model uses —
printed side by side for validation.
"""

from harness import emit

from repro.common import ConvProblem, format_table
from repro.gpusim import GlobalMemory, V100, simulate_resident_blocks
from repro.kernels import Tunables, WinogradF22Kernel
from repro.perfmodel.cudnn_model import TURING_WINOGRAD_PENALTY

PROB = ConvProblem(n=32, c=48, h=16, w=16, k=32)
CUDNN_LIKE = Tunables(bk=32, yield_strategy="cudnn7", ldg_interleave=2,
                      sts_interleave=2)


def _measure(blocks: int, iters: int):
    gen = WinogradF22Kernel(PROB, CUDNN_LIKE)
    kernel = gen.build(main_loop_only=True, iters=iters)
    gmem = GlobalMemory(128 << 20)
    params = {
        "in_ptr": gmem.alloc(4 * (PROB.c + 8) * PROB.h * PROB.w * PROB.n),
        "fil_ptr": gmem.alloc(4 * (PROB.c + 8) * 16 * PROB.k, l2_resident=True),
        "out_ptr": gmem.alloc(4 * PROB.k * PROB.out_h * PROB.out_w * PROB.n),
    }
    return simulate_resident_blocks(
        kernel, V100, params=params, gmem=gmem, threads_per_block=256,
        num_blocks=blocks,
    ).counters


def occupancy_ratio():
    out = {}
    for blocks in (1, 2):
        long_run = _measure(blocks, 4)
        short_run = _measure(blocks, 2)
        d_cycles = long_run.cycles - short_run.cycles
        d_ffma = long_run.ffma_instrs - short_run.ffma_instrs
        out[blocks] = d_ffma / d_cycles  # warp-FFMAs per SM cycle
    return out


def _run():
    rates = occupancy_ratio()
    ratio = rates[2] / rates[1]
    rows = [
        ("1 resident block (Turing, 64 KB smem)", rates[1]),
        ("2 resident blocks (V100, 96 KB smem)", rates[2]),
        ("throughput ratio (simulated)", ratio),
        ("baseline model's Turing penalty", TURING_WINOGRAD_PENALTY),
    ]
    text = format_table(
        ["configuration", "FFMA / SM-cycle"], rows,
        title="§7.1: occupancy effect on the cuDNN-like bk=32 main loop",
        float_fmt="{:.3f}",
    )
    emit("occupancy", text)
    return rates, ratio


def test_occupancy_effect(benchmark):
    rates, ratio = benchmark.pedantic(_run, rounds=1, iterations=1)
    # Two resident blocks hide latency better: strictly faster per SM,
    # in the neighbourhood of the model's 1.30 constant.
    assert ratio > 1.02
    assert ratio < 1.8


if __name__ == "__main__":
    _run()
