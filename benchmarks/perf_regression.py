"""CI perf-regression gate for the simulated main-loop cycle counts.

Runs the ``repro.sched`` schedule search plus the Fig. 7-9 axis sweeps,
then compares every measured cycles-per-iteration metric against the
checked-in ``benchmarks/baselines/sched_<device>.json``:

* a metric more than ``--tolerance`` (default 10%) *slower* than its
  baseline fails the gate (exit 1);
* a metric more than ``--tolerance`` *faster* is reported as an
  improvement — rerun with ``--update-baselines`` to lock it in;
* a changed search winner fails the gate (the simulator is
  deterministic, so the winner only moves when the code does);
* both tile families (f22 and f44) are measured, and a baseline with no
  metrics for a measured family fails loudly — a shipped kernel family
  must never run un-gated.

The fresh measurements are always written to
``<out-dir>/BENCH_sched_regression_<device>.json`` so CI can upload
them as an artifact whether the gate passes or fails.

``--inject-regression PCT`` inflates every measured cycle count by
PCT percent before comparing — the knob used to demonstrate that the
gate actually fails (e.g. ``--inject-regression 15`` against a 10%
tolerance).

Usage::

    python benchmarks/perf_regression.py --quick                # CI gate
    python benchmarks/perf_regression.py --quick --update-baselines
    python benchmarks/perf_regression.py --quick --inject-regression 15
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.gpusim import DEVICES
from repro.runtime import ExecutionContext
from repro.sched import (
    DEFAULT_SPACE,
    F44_SPACE,
    PAPER_SCHEDULE,
    QUICK_SPACE,
    SCHEDULE_FIELDS,
    SearchBudget,
    evaluate_schedule,
    prefetch_schedules,
    successive_halving,
)

BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines")

#: Both shipped tile families are gated; a baseline that predates one of
#: them fails loudly instead of silently skipping the new kernels.
GATED_FAMILIES = ("f22", "f44")


def _slug(device_key: str) -> str:
    return device_key.lower()


def baseline_path(device_key: str) -> str:
    return os.path.join(BASELINE_DIR, f"sched_{_slug(device_key)}.json")


def _collect_family(device, tile: str, space, budget, ctx,
                    axis_sweeps: bool) -> dict:
    """One tile family's gated metrics: rung-0 search scores (+ sweeps)."""
    result = successive_halving(space, device, budget=budget, context=ctx,
                                tile=tile)
    metrics: dict[str, float] = {
        score.schedule.label(): score.cycles_per_iter
        for score in result.rungs[0]
    }
    # Every space candidate must land in the baseline even if a future
    # budget turns on the static pruner (pruned candidates never reach
    # rung 0); the gate's whole point is full-space coverage.
    pending: dict[str, object] = {}
    for schedule in space.candidates():
        label = schedule.label()
        if label not in metrics:
            pending[label] = schedule
    # The Fig. 7-9 sweeps (plus the §3.4 double-buffer ablation): axis
    # variants around the paper schedule, measured at the same budget —
    # cached points are free, the rest complete the figure coverage.
    # They are f22 figures (the db1 ablation cannot even assemble on the
    # f44 fragments), so the f44 gate covers its space only.
    if axis_sweeps:
        for field in SCHEDULE_FIELDS:
            for schedule in DEFAULT_SPACE.axis_variants(
                    field, PAPER_SCHEDULE).values():
                label = schedule.label()
                if label not in metrics and label not in pending:
                    pending[label] = schedule
    prefetch_schedules(
        list(pending.values()), device, iters=budget.base_iters, context=ctx,
        tile=tile,
    )
    for label, schedule in pending.items():
        metrics[label] = evaluate_schedule(
            schedule, device, iters=budget.base_iters, context=ctx, tile=tile,
        ).cycles_per_iter
    return {
        "space": result.space_signature,
        "winner": result.best.schedule.label(),
        "metrics": metrics,
    }


def collect_metrics(device_key: str, quick: bool) -> dict:
    """Measure every gated metric fresh; returns the payload dict.

    Metrics are the rung-0 scores of the schedule search (every
    candidate at the same budget) plus the Fig. 7-9 axis variants, all
    simulated cycles per main-loop iteration — deterministic, so any
    drift is a code change, not noise.  Both tile families are measured:
    ``f22`` walks its full space + sweeps, ``f44`` its own space.
    """
    device = DEVICES[device_key]
    budget = SearchBudget(max_rungs=2 if quick else 3)
    ctx = ExecutionContext(device=device)
    # QUICK_SPACE pins double_buffer=2, so it is a valid f44 subset too.
    spaces = {
        "f22": QUICK_SPACE if quick else DEFAULT_SPACE,
        "f44": QUICK_SPACE if quick else F44_SPACE,
    }
    families = {
        tile: _collect_family(device, tile, spaces[tile], budget, ctx,
                              axis_sweeps=(tile == "f22"))
        for tile in GATED_FAMILIES
    }
    return {
        "device": device_key,
        "iters": budget.base_iters,
        "families": families,
    }


def migrate_baseline(baseline: dict) -> dict:
    """Lift a pre-tile-family (flat) baseline into the families schema.

    Old baselines carried a single implicit f22 metric set; they migrate
    to ``{"families": {"f22": ...}}`` so the family-coverage check below
    reports the *actual* problem (no f44 baseline) instead of a schema
    crash.
    """
    if "families" in baseline:
        return baseline
    return {
        "device": baseline.get("device"),
        "iters": baseline.get("iters"),
        "families": {
            "f22": {
                "space": baseline.get("space"),
                "winner": baseline.get("winner"),
                "metrics": baseline.get("metrics", {}),
            }
        },
    }


def compare(fresh: dict, baseline: dict, tolerance: float) -> tuple[list, list]:
    """(regressions, notes) from comparing *fresh* against *baseline*.

    Regressions are gate failures: slower-than-tolerance metrics,
    metrics that disappeared, a changed search winner, or a whole tile
    family the baseline never measured (a silently un-gated kernel is
    exactly the regression this script exists to prevent).  Notes are
    informational: improvements beyond tolerance and brand-new metrics.
    """
    regressions: list[str] = []
    notes: list[str] = []
    for family, fresh_fam in fresh["families"].items():
        base_fam = baseline["families"].get(family)
        if base_fam is None:
            regressions.append(
                f"baseline has no metrics for measured tile family "
                f"'{family}' — its kernels are running un-gated; rerun "
                "with --update-baselines to cover it"
            )
            continue
        if fresh_fam["winner"] != base_fam["winner"]:
            regressions.append(
                f"[{family}] search winner changed: "
                f"{base_fam['winner']} -> {fresh_fam['winner']}"
            )
        for label, base_cycles in base_fam["metrics"].items():
            cycles = fresh_fam["metrics"].get(label)
            if cycles is None:
                regressions.append(f"[{family}] metric disappeared: {label}")
                continue
            ratio = cycles / base_cycles
            if ratio > 1.0 + tolerance:
                regressions.append(
                    f"[{family}] {label}: {cycles:.0f} cycles vs baseline "
                    f"{base_cycles:.0f} ({(ratio - 1) * 100:+.1f}%)"
                )
            elif ratio < 1.0 - tolerance:
                notes.append(
                    f"improvement [{family}] {label}: {cycles:.0f} cycles "
                    f"vs baseline {base_cycles:.0f} "
                    f"({(ratio - 1) * 100:+.1f}%) — "
                    "rerun with --update-baselines to lock it in"
                )
        for label in fresh_fam["metrics"]:
            if label not in base_fam["metrics"]:
                notes.append(
                    f"new metric (no baseline yet): [{family}] {label}"
                )
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--device", default="RTX2070", choices=sorted(DEVICES),
                        help="simulated device (default: RTX2070)")
    parser.add_argument("--quick", action="store_true",
                        help="QUICK_SPACE + 2 rungs (the CI configuration)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional slowdown (default: 0.10)")
    parser.add_argument("--update-baselines", action="store_true",
                        help="write the fresh metrics as the new baseline")
    parser.add_argument("--inject-regression", type=float, default=None,
                        metavar="PCT",
                        help="inflate measured cycles by PCT%% (gate self-test)")
    parser.add_argument("--out-dir", default=os.path.join(
                            os.path.dirname(__file__), "results"),
                        help="where BENCH_*.json lands (default: results/)")
    args = parser.parse_args(argv)

    fresh = collect_metrics(args.device, args.quick)
    if args.inject_regression is not None:
        factor = 1.0 + args.inject_regression / 100.0
        for fam in fresh["families"].values():
            fam["metrics"] = {
                label: cycles * factor
                for label, cycles in fam["metrics"].items()
            }
        fresh["injected_regression_pct"] = args.inject_regression
        print(f"injected a synthetic {args.inject_regression:+.1f}% on every metric")

    os.makedirs(args.out_dir, exist_ok=True)
    bench_path = os.path.join(
        args.out_dir, f"BENCH_sched_regression_{_slug(args.device)}.json"
    )
    with open(bench_path, "w", encoding="utf-8") as fh:
        json.dump(fresh, fh, indent=2, sort_keys=True)
    summary = ", ".join(
        f"{family}: {len(fam['metrics'])} metrics, winner {fam['winner']}"
        for family, fam in fresh["families"].items()
    )
    print(f"wrote {bench_path} ({summary})")

    if args.update_baselines:
        os.makedirs(BASELINE_DIR, exist_ok=True)
        with open(baseline_path(args.device), "w", encoding="utf-8") as fh:
            json.dump(fresh, fh, indent=2, sort_keys=True)
        print(f"updated {baseline_path(args.device)}")
        return 0

    path = baseline_path(args.device)
    if not os.path.exists(path):
        print(f"error: no baseline at {path}; run with --update-baselines first",
              file=sys.stderr)
        return 2
    with open(path, encoding="utf-8") as fh:
        baseline = migrate_baseline(json.load(fh))
    if baseline.get("iters") != fresh["iters"]:
        print(f"error: baseline {path} was generated at a different budget "
              f"({baseline.get('iters')} iters vs {fresh['iters']}); "
              "regenerate it with --update-baselines", file=sys.stderr)
        return 2
    for family, fam in fresh["families"].items():
        base_fam = baseline["families"].get(family)
        if base_fam is not None and base_fam.get("space") != fam["space"]:
            print(f"error: baseline {path} covers a different {family} "
                  f"space ({base_fam.get('space')} vs {fam['space']}); "
                  "regenerate it with --update-baselines", file=sys.stderr)
            return 2

    regressions, notes = compare(fresh, baseline, args.tolerance)
    for note in notes:
        print(f"note: {note}")
    if regressions:
        print(f"\nPERF REGRESSION ({len(regressions)} metric(s) beyond "
              f"{args.tolerance * 100:.0f}% tolerance):", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    gated = sum(len(f["metrics"]) for f in baseline["families"].values())
    print(f"perf gate OK: {gated} metrics across "
          f"{len(baseline['families'])} tile families within "
          f"{args.tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
